(** Live Gaifman graph — the compile-time graph artifacts kept as
    updatable structures instead of build-once snapshots, so a tuple
    insert/delete can be turned into a *localized* recompile.

    Three layers, matching what the one-shot pipeline computes once:

    - {b edges with multiplicities}: each undirected edge counts how many
      tuple pair-incidences induce it, so deleting a tuple removes the
      Gaifman edge only when no other tuple still covers it;
    - {b a pinned coloring}: the TFA low-treedepth coloring (which bakes
      in the fraternal-augmentation orientation) is attached once per
      full compile and deliberately {e not} recomputed per update — the
      color classes are what make affected-region reporting possible.
      When the pinned witness degrades past the compiled depth bound the
      caller falls back to a full recompile with a fresh coloring (the
      amortization trigger in [Engine.Compile.recompile_local]);
    - {b per-color-subset elimination forests}: cached per compiled
      subset and invalidated precisely. A structural update touching
      vertex set [V] affects exactly the subsets containing {e every}
      color of [V] — a constraint tuple ranges over whole color classes
      and an edge lies in an induced subgraph iff both endpoint colors
      are in the subset, so subsets missing a touched color compile to
      the same gates as before.

    Pure stdlib on purpose: the [graphs] library sits below [robust] and
    [obs], so domain violations raise [Invalid_argument] here and the
    engine layers wrap them. *)

type t = {
  n : int;
  adj : (int, int) Hashtbl.t array;  (** neighbor → pair-incidence count *)
  mutable m : int;  (** distinct edges *)
  mutable coloring : Tfa.coloring option;  (** pinned by the full compile *)
  forests : (int list, Forest.t * int array) Hashtbl.t;
      (** color subset → (forest over local indices, local → vertex) *)
}

let create ~n =
  if n < 0 then invalid_arg "Live.create: negative domain size";
  {
    n;
    adj = Array.init n (fun _ -> Hashtbl.create 4);
    m = 0;
    coloring = None;
    forests = Hashtbl.create 16;
  }

let n t = t.n
let m t = t.m

let check_vertex t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Live: vertex %d out of [0, %d)" v t.n)

let multiplicity t u v =
  check_vertex t u;
  check_vertex t v;
  match Hashtbl.find_opt t.adj.(u) v with Some c -> c | None -> 0

let has_edge t u v = multiplicity t u v > 0

(** Record one pair-incidence of the undirected edge [u]–[v] (self-loops
    are ignored, as in the Gaifman graph). Returns [true] iff a new edge
    appeared — i.e. the incidence count went 0 → 1. *)
let add_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then false
  else begin
    let c = match Hashtbl.find_opt t.adj.(u) v with Some c -> c | None -> 0 in
    Hashtbl.replace t.adj.(u) v (c + 1);
    Hashtbl.replace t.adj.(v) u (c + 1);
    if c = 0 then begin
      t.m <- t.m + 1;
      true
    end
    else false
  end

(** Remove one pair-incidence; [true] iff the edge disappeared (count
    1 → 0). Removing an absent incidence is a bookkeeping bug upstream,
    so it raises rather than saturating at zero. *)
let remove_edge t u v =
  check_vertex t u;
  check_vertex t v;
  if u = v then false
  else
    match Hashtbl.find_opt t.adj.(u) v with
    | None | Some 0 ->
        invalid_arg (Printf.sprintf "Live.remove_edge: edge %d-%d not present" u v)
    | Some 1 ->
        Hashtbl.remove t.adj.(u) v;
        Hashtbl.remove t.adj.(v) u;
        t.m <- t.m - 1;
        true
    | Some c ->
        Hashtbl.replace t.adj.(u) v (c - 1);
        Hashtbl.replace t.adj.(v) u (c - 1);
        false

(** Sorted, duplicate-free neighbor list (the [Graph.neighbors] contract). *)
let neighbors t v =
  check_vertex t v;
  List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) t.adj.(v) [])

let degree t v =
  check_vertex t v;
  Hashtbl.length t.adj.(v)

(** Immutable snapshot of the current edge set (multiplicities dropped). *)
let snapshot t : Graph.t =
  let edges = ref [] in
  Array.iteri
    (fun u tbl -> Hashtbl.iter (fun v _ -> if u < v then edges := (u, v) :: !edges) tbl)
    t.adj;
  Graph.of_edges ~n:t.n !edges

(** Pin a coloring (from a full compile); drops every cached forest. *)
let set_coloring t (c : Tfa.coloring) =
  if Array.length c.Tfa.color <> t.n then
    invalid_arg "Live.set_coloring: coloring size does not match the graph";
  t.coloring <- Some c;
  Hashtbl.reset t.forests

let coloring t = t.coloring

(** Colors of a touched vertex set under the pinned coloring, sorted and
    duplicate-free — the affected-region fingerprint of an update. *)
let colors_of t verts =
  match t.coloring with
  | None -> invalid_arg "Live.colors_of: no coloring pinned"
  | Some c ->
      List.sort_uniq compare
        (List.map
           (fun v ->
             check_vertex t v;
             c.Tfa.color.(v))
           verts)

(** Does a structural update touching exactly [touched_colors] affect the
    compiled color subset [subset]? Yes iff every touched color is in the
    subset (see the module header for why). *)
let subset_affected ~touched_colors subset =
  touched_colors <> [] && List.for_all (fun c -> List.mem c subset) touched_colors

(** Drop the cached forests of every subset affected by [touched_colors];
    returns the invalidated subsets (sorted). *)
let invalidate t ~touched_colors =
  let affected =
    Hashtbl.fold
      (fun s _ acc -> if subset_affected ~touched_colors s then s :: acc else acc)
      t.forests []
  in
  List.iter (Hashtbl.remove t.forests) affected;
  List.sort compare affected

(** The elimination forest of the subgraph induced by [verts] (the color
    classes of [subset]), cached under [subset] until invalidated. Returns
    the forest over local indices plus the local → vertex mapping. The
    induced subgraph is rebuilt canonically ([Graph.of_edges] sorts), so
    the forest is deterministic regardless of update history. *)
let forest t subset ~verts : Forest.t * int array =
  match Hashtbl.find_opt t.forests subset with
  | Some cached -> cached
  | None ->
      let verts = List.sort_uniq compare verts in
      List.iter (check_vertex t) verts;
      let orig = Array.of_list verts in
      let k = Array.length orig in
      let local = Hashtbl.create (2 * k) in
      Array.iteri (fun i v -> Hashtbl.replace local v i) orig;
      let edges = ref [] in
      Array.iteri
        (fun i v ->
          Hashtbl.iter
            (fun w _ ->
              if w > v then
                match Hashtbl.find_opt local w with
                | Some j -> edges := (i, j) :: !edges
                | None -> ())
            t.adj.(v))
        orig;
      let sub = Graph.of_edges ~n:k !edges in
      let entry = (Treedepth.best_forest sub, orig) in
      Hashtbl.replace t.forests subset entry;
      entry

(** Number of cached subset forests (observability for tests/stats). *)
let cached_forests t = Hashtbl.length t.forests
