(** Optimization pass pipeline over circuits (the "optimize once, consume
    everywhere" layer between {!Engine.Compile} and its consumers).

    Theorem 6 compiles one circuit that serves every semiring; this module
    shrinks that circuit {e before} it is evaluated, maintained
    ({!Circuits.Dyn}), enumerated ({!Fo_enum}) or interpreted in the free
    semiring ({!Provenance}). Every rewrite is safe in {e every} semiring
    containing the circuit's constants, because only the 0/1 identity and
    annihilation axioms plus associativity/commutativity are used:

    - {b fold} — identity folding: drop [zero] summands and [one] factors,
      collapse [Add [||]] to [zero] and [Mul [||]] to [one] (the explicit
      fold-seed convention of {!Circuits.Circuit.eval}), annihilate any
      [Mul] containing a [zero] factor, and alias single-child [Add]/[Mul]
      gates to their child.
    - {b cse} — hash-consing / common-subexpression elimination: merge
      structurally equal [Input], [Const], [Add], [Mul] and [Perm] gates.
      [Add]/[Mul] children are compared as multisets (all semirings here
      are commutative); children are {e never} deduplicated, since
      [a + a ≠ a] outside idempotent semirings.
    - {b dce} — dead-gate elimination: drop every gate outside the output
      cone and compact ids.
    - {b balance} — fan-in rebalancing: split gates wider than
      {!balance_cap} into trees of fan-in at most [balance_cap], capping
      the depth any later binary rebalance ({!Circuits.Dyn} in General
      mode) can add.

    Each pass emits a remap table (old gate id → new gate id, [-1] for
    gates dropped by dce); {!run} composes them so callers holding gate
    ids into the pre-optimization circuit can translate them. [input_ids]
    are rebuilt by the builder's own hash-consing, so every consumer that
    addresses the circuit through weight keys needs no translation at
    all. Gate creation order stays a topological order — each pass emits
    children before parents — which {!Circuits.Dyn} relies on (and
    {!Circuits.Circuit.finish} now validates). *)

module Circuit = Circuits.Circuit

type pass = Fold | Cse | Dce | Balance

let pass_name = function
  | Fold -> "fold"
  | Cse -> "cse"
  | Dce -> "dce"
  | Balance -> "balance"

(** The default pipeline run by {!Engine.Compile}: identity folding first
    (it creates the duplicate constants cse merges), hash-consing, then a
    sweep of everything the first two passes orphaned, then fan-in caps. *)
let default_passes = [ Fold; Cse; Dce; Balance ]

(** The identity pipeline ([--opt=none]): hand the raw compiler output
    downstream. *)
let none : pass list = []

(** Maximum fan-in [balance] leaves behind. Wide gates become
    [balance_cap]-ary trees, so the depth added by any later binary
    rebalance is log₂(cap) per original level instead of log₂(fan-in). *)
let balance_cap = 8

(* Per-pass shrink observables (scope "opt"): the gauges hold the most
   recent run's totals, the per-pass counters accumulate gates removed
   across runs (negative contributions are possible for balance, which
   spends gates to cap fan-in). *)
let m_runs = Obs.counter ~scope:"opt" "runs"
let g_gates_before = Obs.gauge ~scope:"opt" "gates_before"
let g_gates_after = Obs.gauge ~scope:"opt" "gates_after"

let pass_counters =
  List.map
    (fun p ->
      ( pass_name p,
        ( Obs.counter ~scope:"opt" ("pass_" ^ pass_name p ^ "_runs"),
          Obs.counter ~scope:"opt" ("pass_" ^ pass_name p ^ "_gates_removed") ) ))
    [ Fold; Cse; Dce; Balance ]

(** Gate/edge/depth shrink of one pass application, in pipeline order. *)
type delta = {
  dpass : string;
  gates_before : int;
  gates_after : int;
  edges_before : int;
  edges_after : int;
  depth_before : int;
  depth_after : int;
}

(** The per-pass shrink table of one {!run} (recorded in
    {!Engine.Compile.meta} and printed by [sparseq explain]). *)
type report = {
  deltas : delta list;
  r_gates_before : int;
  r_gates_after : int;
  r_edges_before : int;
  r_edges_after : int;
  r_depth_before : int;
  r_depth_after : int;
}

let empty_report (s : Circuit.stats) =
  {
    deltas = [];
    r_gates_before = s.Circuit.gates;
    r_gates_after = s.Circuit.gates;
    r_edges_before = s.Circuit.edges;
    r_edges_after = s.Circuit.edges;
    r_depth_before = s.Circuit.depth;
    r_depth_after = s.Circuit.depth;
  }

let shrink_pct ~before ~after =
  if before = 0 then 0. else 100. *. float_of_int (before - after) /. float_of_int before

let pp_report fmt (r : report) =
  let arrow before after = Printf.sprintf "%d->%d" before after in
  Format.fprintf fmt "@[<v>%-8s %17s %17s %11s %7s@," "pass" "gates" "edges" "depth"
    "shrink";
  List.iter
    (fun d ->
      Format.fprintf fmt "%-8s %17s %17s %11s %6.1f%%@," d.dpass
        (arrow d.gates_before d.gates_after)
        (arrow d.edges_before d.edges_after)
        (arrow d.depth_before d.depth_after)
        (shrink_pct ~before:d.gates_before ~after:d.gates_after))
    r.deltas;
  Format.fprintf fmt "%-8s %17s %17s %11s %6.1f%%@]" "total"
    (arrow r.r_gates_before r.r_gates_after)
    (arrow r.r_edges_before r.r_edges_after)
    (arrow r.r_depth_before r.r_depth_after)
    (shrink_pct ~before:r.r_gates_before ~after:r.r_gates_after)

(** An optimized circuit with its remap table (old gate id → new gate id,
    [-1] for dead gates) and the per-pass shrink report. *)
type 'a optimized = { circuit : 'a Circuit.t; remap : int array; report : report }

(* --- fold: identity folding --- *)

(* Value class of a gate, tracked bottom-up so parents can fold without
   re-inspecting children: statically [zero], statically [one], or
   unknown. Only [Const] gates seed the classes — [Input] values are
   unknown by definition and [Perm]/composite gates are never classified
   (their value depends on inputs). *)
type cls = CZero | COne | COther

let fold (type a) ~(zero : a) ~(one : a) ~(equal : a -> a -> bool) (c : a Circuit.t) :
    a Circuit.t * int array =
  let n = Array.length c.Circuit.nodes in
  let b = Circuit.builder () in
  let remap = Array.make n (-1) in
  let cls = Array.make n COther in
  let zero_g = ref (-1) and one_g = ref (-1) in
  let emit_zero () =
    if !zero_g < 0 then zero_g := Circuit.const b zero;
    !zero_g
  in
  let emit_one () =
    if !one_g < 0 then one_g := Circuit.const b one;
    !one_g
  in
  Array.iteri
    (fun id node ->
      let nid, k =
        match node with
        | Circuit.Input key -> (Circuit.input b key, COther)
        | Circuit.Const s ->
            if equal s zero then (emit_zero (), CZero)
            else if equal s one then (emit_one (), COne)
            else (Circuit.const b s, COther)
        | Circuit.Add gs -> (
            (* drop zero summands; Add [||] is the fold-seed zero *)
            match List.filter (fun g -> cls.(g) <> CZero) (Array.to_list gs) with
            | [] -> (emit_zero (), CZero)
            | [ g ] -> (remap.(g), cls.(g))
            | kept ->
                ( Circuit.push b
                    (Circuit.Add (Array.of_list (List.map (fun g -> remap.(g)) kept))),
                  COther ))
        | Circuit.Mul gs ->
            if Array.exists (fun g -> cls.(g) = CZero) gs then (emit_zero (), CZero)
            else (
              (* drop one factors; Mul [||] is the fold-seed one *)
              match List.filter (fun g -> cls.(g) <> COne) (Array.to_list gs) with
              | [] -> (emit_one (), COne)
              | [ g ] -> (remap.(g), cls.(g))
              | kept ->
                  ( Circuit.push b
                      (Circuit.Mul (Array.of_list (List.map (fun g -> remap.(g)) kept))),
                    COther ))
        | Circuit.Perm rows ->
            (Circuit.perm b (Array.map (Array.map (fun g -> remap.(g))) rows), COther)
      in
      remap.(id) <- nid;
      cls.(id) <- k)
    c.Circuit.nodes;
  (Circuit.finish b ~output:remap.(c.Circuit.output), remap)

(* --- cse: hash-consing of structurally equal gates --- *)

(* Canonical key of a gate over already-remapped children. Add/Mul
   children are sorted in the key only (commutativity makes the multiset
   canonical); the emitted gate keeps its original child order. [Const]
   gates are matched with the caller's [equal] through a linear table —
   the polymorphic hash cannot be trusted to agree with a custom
   equality, and compiled circuits carry a handful of distinct constants
   at most. *)
type key =
  | KAdd of int list
  | KMul of int list
  | KPerm of int array array

let cse (type a) ~(equal : a -> a -> bool) (c : a Circuit.t) : a Circuit.t * int array =
  let n = Array.length c.Circuit.nodes in
  let b = Circuit.builder () in
  let remap = Array.make n (-1) in
  let tbl : (key, int) Hashtbl.t = Hashtbl.create (max 256 (n / 2)) in
  let consts : (a * int) list ref = ref [] in
  let consed k emit =
    match Hashtbl.find_opt tbl k with
    | Some g -> g
    | None ->
        let g = emit () in
        Hashtbl.replace tbl k g;
        g
  in
  Array.iteri
    (fun id node ->
      remap.(id) <-
        (match node with
        | Circuit.Input key -> Circuit.input b key (* builder hash-conses inputs *)
        | Circuit.Const s -> (
            match List.find_opt (fun (v, _) -> equal v s) !consts with
            | Some (_, g) -> g
            | None ->
                let g = Circuit.const b s in
                consts := (s, g) :: !consts;
                g)
        | Circuit.Add gs ->
            let mapped = Array.map (fun g -> remap.(g)) gs in
            consed
              (KAdd (List.sort compare (Array.to_list mapped)))
              (fun () -> Circuit.push b (Circuit.Add mapped))
        | Circuit.Mul gs ->
            let mapped = Array.map (fun g -> remap.(g)) gs in
            consed
              (KMul (List.sort compare (Array.to_list mapped)))
              (fun () -> Circuit.push b (Circuit.Mul mapped))
        | Circuit.Perm rows ->
            let mapped = Array.map (Array.map (fun g -> remap.(g))) rows in
            consed (KPerm mapped) (fun () -> Circuit.perm b mapped)))
    c.Circuit.nodes;
  (Circuit.finish b ~output:remap.(c.Circuit.output), remap)

(* --- dce: dead-gate elimination from the output cone --- *)

let dce (c : 'a Circuit.t) : 'a Circuit.t * int array =
  let n = Array.length c.Circuit.nodes in
  let live = Array.make n false in
  live.(c.Circuit.output) <- true;
  (* gate ids are topological, so one backward sweep marks the cone *)
  for id = n - 1 downto 0 do
    if live.(id) then
      match c.Circuit.nodes.(id) with
      | Circuit.Input _ | Circuit.Const _ -> ()
      | Circuit.Add gs | Circuit.Mul gs -> Array.iter (fun g -> live.(g) <- true) gs
      | Circuit.Perm rows -> Array.iter (Array.iter (fun g -> live.(g) <- true)) rows
  done;
  let b = Circuit.builder () in
  let remap = Array.make n (-1) in
  Array.iteri
    (fun id node ->
      if live.(id) then
        remap.(id) <-
          (match node with
          | Circuit.Input key -> Circuit.input b key
          | Circuit.Const s -> Circuit.const b s
          | Circuit.Add gs -> Circuit.push b (Circuit.Add (Array.map (fun g -> remap.(g)) gs))
          | Circuit.Mul gs -> Circuit.push b (Circuit.Mul (Array.map (fun g -> remap.(g)) gs))
          | Circuit.Perm rows ->
              Circuit.perm b (Array.map (Array.map (fun g -> remap.(g))) rows)))
    c.Circuit.nodes;
  (Circuit.finish b ~output:remap.(c.Circuit.output), remap)

(* --- balance: cap fan-in by splitting wide gates into trees --- *)

let balance (c : 'a Circuit.t) : 'a Circuit.t * int array =
  let n = Array.length c.Circuit.nodes in
  let b = Circuit.builder () in
  let remap = Array.make n (-1) in
  (* Chunk [gs] into groups of at most [balance_cap], emit a gate per
     group, recurse on the group gates: a [balance_cap]-ary tree of depth
     ⌈log_cap fan-in⌉. Children are emitted before parents, preserving
     the topological order. *)
  let rec tree mk gs =
    let len = Array.length gs in
    if len <= balance_cap then mk gs
    else begin
      let nchunks = (len + balance_cap - 1) / balance_cap in
      let chunks =
        Array.init nchunks (fun i ->
            let lo = i * balance_cap in
            mk (Array.sub gs lo (min balance_cap (len - lo))))
      in
      tree mk chunks
    end
  in
  Array.iteri
    (fun id node ->
      remap.(id) <-
        (match node with
        | Circuit.Input key -> Circuit.input b key
        | Circuit.Const s -> Circuit.const b s
        | Circuit.Add gs ->
            tree
              (fun l -> Circuit.push b (Circuit.Add l))
              (Array.map (fun g -> remap.(g)) gs)
        | Circuit.Mul gs ->
            tree
              (fun l -> Circuit.push b (Circuit.Mul l))
              (Array.map (fun g -> remap.(g)) gs)
        | Circuit.Perm rows ->
            Circuit.perm b (Array.map (Array.map (fun g -> remap.(g))) rows)))
    c.Circuit.nodes;
  (Circuit.finish b ~output:remap.(c.Circuit.output), remap)

(* --- the pipeline --- *)

(* Compose remaps: [r1] old → mid, [r2] mid → new; dropped stays dropped. *)
let compose r1 r2 = Array.map (fun m -> if m < 0 then -1 else r2.(m)) r1

(** Run the pipeline. [equal] decides constant equality for identity
    folding and hash-consing; it defaults to structural equality, which
    is correct for every first-order constant type — pass the semiring's
    own [equal] (as {!Engine.Eval.prepare} does) when constants have
    non-canonical representations. The result's value agrees with the
    input circuit's in every commutative semiring where [zero]/[one] are
    the additive/multiplicative identities and [zero] annihilates. *)
let run (type a) ?(passes = default_passes) ~(zero : a) ~(one : a)
    ?(equal : a -> a -> bool = ( = )) (c : a Circuit.t) : a optimized =
  let s0 = Circuit.stats c in
  if passes = [] then
    {
      circuit = c;
      remap = Array.init (Array.length c.Circuit.nodes) Fun.id;
      report = empty_report s0;
    }
  else
    Obs.Trace.span ~scope:"opt" "optimize"
      ~attrs:[ ("gates", Obs.Trace.I s0.Circuit.gates) ]
    @@ fun () ->
    Obs.Counter.incr m_runs;
    Obs.Gauge.set_int g_gates_before s0.Circuit.gates;
    let c, remap, s_final, deltas_rev =
      List.fold_left
        (fun (c, remap, before, acc) pass ->
          let name = pass_name pass in
          Obs.Trace.span ~scope:"opt" name
            ~attrs:[ ("gates_before", Obs.Trace.I before.Circuit.gates) ]
          @@ fun () ->
          let c', r =
            match pass with
            | Fold -> fold ~zero ~one ~equal c
            | Cse -> cse ~equal c
            | Dce -> dce c
            | Balance -> balance c
          in
          let after = Circuit.stats c' in
          Obs.Trace.add_attr "gates_after" (Obs.Trace.I after.Circuit.gates);
          let runs, removed = List.assoc name pass_counters in
          Obs.Counter.incr runs;
          Obs.Counter.add removed (before.Circuit.gates - after.Circuit.gates);
          let d =
            {
              dpass = name;
              gates_before = before.Circuit.gates;
              gates_after = after.Circuit.gates;
              edges_before = before.Circuit.edges;
              edges_after = after.Circuit.edges;
              depth_before = before.Circuit.depth;
              depth_after = after.Circuit.depth;
            }
          in
          (c', compose remap r, after, d :: acc))
        (c, Array.init (Array.length c.Circuit.nodes) Fun.id, s0, [])
        passes
    in
    Obs.Gauge.set_int g_gates_after s_final.Circuit.gates;
    Obs.Trace.add_attr "gates_after" (Obs.Trace.I s_final.Circuit.gates);
    {
      circuit = c;
      remap;
      report =
        {
          deltas = List.rev deltas_rev;
          r_gates_before = s0.Circuit.gates;
          r_gates_after = s_final.Circuit.gates;
          r_edges_before = s0.Circuit.edges;
          r_edges_after = s_final.Circuit.edges;
          r_depth_before = s0.Circuit.depth;
          r_depth_after = s_final.Circuit.depth;
        };
    }
