(** Dynamically-typed semiring values and first-class semiring descriptors.

    Nested weighted queries (Section 7) mix several semirings inside one
    formula, so the nested-query evaluator works over a single universal
    value type. Each semiring is a {!descr} record; a separate type checker
    in [lib/nested] guarantees that well-typed formulas never mix values
    from different descriptors at runtime. *)

type t =
  | B of bool  (** boolean semiring B *)
  | I of int  (** ℕ, ℤ, or ℤ/kℤ on machine ints *)
  | Q of Rat.t  (** exact rationals *)
  | T of Instances.extended  (** min-plus / min-max values over ℕ ∪ {∞} *)
  | M of Tropical.maxplus  (** max-plus values over ℤ ∪ {−∞} *)
  | RM of Rat.t option  (** rational max-plus: ℚ ∪ {−∞}, [None] = −∞ *)

let equal a b =
  match (a, b) with
  | B x, B y -> Bool.equal x y
  | I x, I y -> Int.equal x y
  | Q x, Q y -> Rat.equal x y
  | T x, T y -> Instances.equal_extended x y
  | M x, M y -> Tropical.Max_plus.equal x y
  | RM None, RM None -> true
  | RM (Some x), RM (Some y) -> Rat.equal x y
  | _ -> false

let pp fmt = function
  | B b -> Format.pp_print_bool fmt b
  | I i -> Format.pp_print_int fmt i
  | Q q -> Rat.pp fmt q
  | T e -> Instances.pp_extended fmt e
  | M m -> Tropical.Max_plus.pp fmt m
  | RM None -> Format.pp_print_string fmt "−∞"
  | RM (Some q) -> Rat.pp fmt q

let to_string v = Format.asprintf "%a" pp v

exception Type_error of string

let type_error what v = raise (Type_error (Printf.sprintf "%s: got %s" what (to_string v)))
let as_bool = function B b -> b | v -> type_error "expected bool" v
let as_int = function I i -> i | v -> type_error "expected int" v
let as_rat = function Q q -> q | v -> type_error "expected rational" v

(** How circuit updates may be accelerated for this semiring (Section 4). *)
type kind =
  | General  (** logarithmic updates (Corollary 13) *)
  | Ring of (t -> t)  (** additive inverse: constant updates (Corollary 17) *)
  | Finite of t list  (** counting gates: constant updates (Corollary 20) *)

type descr = {
  name : string;  (** identity for type checking; two descriptors with the same name are the same semiring *)
  zero : t;
  one : t;
  add : t -> t -> t;
  mul : t -> t -> t;
  kind : kind;
}

let same_sr a b = String.equal a.name b.name

(** Package a static semiring module as a dynamic descriptor. *)
let of_module (type a) ~name ~inject ~project ?neg ?elements
    (module S : Intf.BASIC with type t = a) : descr =
  let lift2 f x y = inject (f (project x) (project y)) in
  let kind =
    match (neg, elements) with
    | Some n, _ -> Ring (fun x -> inject (n (project x)))
    | None, Some es -> Finite (List.map inject es)
    | None, None -> General
  in
  { name; zero = inject S.zero; one = inject S.one; add = lift2 S.add; mul = lift2 S.mul; kind }

let bool_sr : descr =
  of_module ~name:"bool" ~inject:(fun b -> B b) ~project:as_bool
    ~elements:Instances.Bool.elements
    (module Instances.Bool)

let nat_sr : descr =
  of_module ~name:"nat" ~inject:(fun i -> I i) ~project:as_int (module Instances.Nat)

let int_sr : descr =
  of_module ~name:"int" ~inject:(fun i -> I i) ~project:as_int
    ~neg:Instances.Int_ring.neg
    (module Instances.Int_ring)

let rat_sr : descr =
  of_module ~name:"rat" ~inject:(fun q -> Q q) ~project:as_rat ~neg:Rat.Ring.neg
    (module Rat.Ring)

let min_plus_sr : descr =
  of_module ~name:"min-plus"
    ~inject:(fun e -> T e)
    ~project:(function T e -> e | v -> type_error "expected tropical" v)
    (module Tropical.Min_plus)

let max_plus_sr : descr =
  of_module ~name:"max-plus"
    ~inject:(fun m -> M m)
    ~project:(function M m -> m | v -> type_error "expected max-plus" v)
    (module Tropical.Max_plus)

let min_max_sr : descr =
  of_module ~name:"min-max"
    ~inject:(fun e -> T e)
    ~project:(function T e -> e | v -> type_error "expected min-max" v)
    (module Instances.Min_max)

(** (ℚ ∪ {−∞}, max, +) — the outer semiring of the neighbor-average
    example in the paper's introduction. *)
let rat_max_sr : descr =
  {
    name = "rat-max";
    zero = RM None;
    one = RM (Some Rat.zero);
    add =
      (fun a b ->
        match (a, b) with
        | RM None, x | x, RM None -> x
        | RM (Some p), RM (Some q) -> RM (Some (if Rat.compare p q >= 0 then p else q))
        | v, _ -> type_error "rat-max add" v);
    mul =
      (fun a b ->
        match (a, b) with
        | RM None, _ | _, RM None -> RM None
        | RM (Some p), RM (Some q) -> RM (Some (Rat.add p q))
        | v, _ -> type_error "rat-max mul" v);
    kind = General;
  }

let zmod_sr k : descr =
  let module Z = Zmod.Make (struct let modulus = k end) in
  of_module
    ~name:(Printf.sprintf "zmod%d" k)
    ~inject:(fun i -> I i) ~project:as_int ~elements:Z.elements
    (module Z)

(** First-class operations for a descriptor (feeds the runtime-semiring
    permanent and circuit engines). *)
let ops_of_descr (d : descr) : t Intf.ops =
  {
    Intf.zero = d.zero;
    one = d.one;
    add = d.add;
    mul = d.mul;
    equal;
    neg = (match d.kind with Ring n -> Some n | _ -> None);
    elements = (match d.kind with Finite es -> Some es | _ -> None);
    repr = Boxed_repr;
  }

(** Connectives c : S₁ × ⋯ × Sₖ → S transferring between semirings
    (Section 7). The argument and output descriptors drive type checking. *)
type connective = {
  cname : string;
  args : descr list;
  out : descr;
  apply : t list -> t;
}

let binop_int_bool cname f =
  {
    cname;
    args = [ nat_sr; nat_sr ];
    out = bool_sr;
    apply = (function [ I a; I b ] -> B (f a b) | _ -> raise (Type_error cname));
  }

let lt = binop_int_bool "<" ( < )
let leq = binop_int_bool "<=" ( <= )
let gt = binop_int_bool ">" ( > )
let geq = binop_int_bool ">=" ( >= )
let eq_int = binop_int_bool "=" ( = )

(** Total division on ℚ, with p/0 = 0 as in the paper. *)
let div_rat =
  {
    cname = "/";
    args = [ rat_sr; rat_sr ];
    out = rat_sr;
    apply =
      (function
      | [ Q a; Q b ] -> Q (Rat.div_total a b) | _ -> raise (Type_error "/"));
  }

(** Division ℕ × ℕ → ℚ, as in the neighbor-average example of Section 1. *)
let div_nat_rat =
  {
    cname = "div_nat";
    args = [ nat_sr; nat_sr ];
    out = rat_sr;
    apply =
      (function
      | [ I a; I b ] -> Q (Rat.div_total (Rat.of_int a) (Rat.of_int b))
      | _ -> raise (Type_error "div_nat"));
  }

(** ℕ → max-plus embedding, used to aggregate rationals' numerators is not
    needed; this maps a natural to the max-plus value with the same weight. *)
let nat_to_max_plus =
  {
    cname = "to_max_plus";
    args = [ nat_sr ];
    out = max_plus_sr;
    apply =
      (function [ I a ] -> M (Tropical.MFin a) | _ -> raise (Type_error "to_max_plus"));
  }

(** Iverson bracket [·]_S : B → S for a target semiring. *)
let iverson (s : descr) =
  {
    cname = "[·]_" ^ s.name;
    args = [ bool_sr ];
    out = s;
    apply =
      (function [ B b ] -> (if b then s.one else s.zero) | _ -> raise (Type_error "iverson"));
  }

(** ℚ → rational max-plus embedding (for the neighbor-average example). *)
let rat_to_rat_max =
  {
    cname = "to_rat_max";
    args = [ rat_sr ];
    out = rat_max_sr;
    apply = (function [ Q q ] -> RM (Some q) | _ -> raise (Type_error "to_rat_max"));
  }
