(** Signatures for commutative semirings (paper, Section 2).

    All semirings in this library are commutative: both [add] and [mul] are
    commutative and associative, [mul] distributes over [add], [zero] is
    neutral for [add] and absorbing for [mul], [one] is neutral for [mul]. *)

module type BASIC = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** A ring additionally has additive inverses, enabling the constant-time
    update strategies of Lemma 15 / Corollary 17. *)
module type RING = sig
  include BASIC

  val neg : t -> t
  val sub : t -> t -> t
end

(** A finite semiring lists its elements, enabling the counting-gate
    strategy of Lemma 18 / Corollary 20. *)
module type FINITE = sig
  include BASIC

  val elements : t list
end

(** Runtime-representation witness: [Machine_int] certifies that the
    carrier is OCaml's immediate [int], which lets value planes live in
    unboxed {!Bigarray} storage (no GC scanning, no float-array check on
    access) in the compact circuit runtime. The witness is opt-in —
    [ops_of_module] cannot see through the abstraction, so callers that
    know their semiring is int-carried (ℕ, ℤ, ℤ/m) assert it with
    {!with_int_repr}. [Boxed_repr] is always sound. *)
type _ repr = Machine_int : int repr | Boxed_repr : 'a repr

(** First-class semiring operations, for components that choose the
    semiring at runtime (the nested-query evaluator of Section 7 mixes
    several semirings inside one formula). [neg] is present for rings,
    [elements] for finite semirings — these unlock the constant-update
    strategies of Corollaries 17 and 20. *)
type 'a ops = {
  zero : 'a;
  one : 'a;
  add : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  neg : ('a -> 'a) option;
  elements : 'a list option;
  repr : 'a repr;
}

let ops_of_module (type a) (module S : BASIC with type t = a) : a ops =
  {
    zero = S.zero;
    one = S.one;
    add = S.add;
    mul = S.mul;
    equal = S.equal;
    neg = None;
    elements = None;
    repr = Boxed_repr;
  }

let ops_of_ring (type a) (module R : RING with type t = a) : a ops =
  { (ops_of_module (module R)) with neg = Some R.neg }

let ops_of_finite (type a) (module F : FINITE with type t = a) : a ops =
  { (ops_of_module (module F)) with elements = Some F.elements }

(** Brand an int-carried [ops] with the {!Machine_int} witness; the type
    restricts this to carriers that really are [int]. *)
let with_int_repr (o : int ops) : int ops = { o with repr = Machine_int }

(** Iterated sum [n · s = s + ... + s] ([n] times), with [0 · s = zero]. *)
let iterate (type a) (module S : BASIC with type t = a) (n : int) (s : a) : a =
  let rec go acc n = if n <= 0 then acc else go (S.add acc s) (n - 1) in
  go S.zero n

(** Iterated product [s^n], with [s^0 = one]. *)
let power (type a) (module S : BASIC with type t = a) (s : a) (n : int) : a =
  let rec go acc n = if n <= 0 then acc else go (S.mul acc s) (n - 1) in
  go S.one n

(** Sum of a list. *)
let sum (type a) (module S : BASIC with type t = a) (l : a list) : a =
  List.fold_left S.add S.zero l

(** Product of a list. *)
let product (type a) (module S : BASIC with type t = a) (l : a list) : a =
  List.fold_left S.mul S.one l
