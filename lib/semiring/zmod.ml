(** The finite ring ℤ/kℤ. Finite semirings admit constant-time circuit
    updates via counting gates (Lemma 18, Corollary 20); ℤ/kℤ is the
    canonical test case because the lasso of Claim 2 is a pure cycle. *)

module Make (M : sig
  val modulus : int
end) : sig
  include Intf.RING with type t = int
  include Intf.FINITE with type t := int

  val of_int : int -> int
end = struct
  type t = int

  let () = if M.modulus < 1 then invalid_arg "Zmod: modulus must be >= 1"
  let m = M.modulus
  let of_int x = ((x mod m) + m) mod m
  let zero = 0
  let one = of_int 1
  let add a b = (a + b) mod m
  let mul a b = a * b mod m
  let neg a = of_int (-a)
  let sub a b = of_int (a - b)
  let equal = Int.equal
  let elements = List.init m Fun.id
  let pp = Format.pp_print_int
end

module Z2 = Make (struct let modulus = 2 end)
module Z3 = Make (struct let modulus = 3 end)
module Z4 = Make (struct let modulus = 4 end)
module Z6 = Make (struct let modulus = 6 end)
