(** Zero-dependency metrics for the engine's complexity claims.

    Every theorem the repo reproduces is stated in terms of measurable
    circuit parameters — gate count, depth, fan-out, permanent rows
    (Theorem 6), per-update reach-out (Theorem 8, Corollaries 13/17/20),
    per-answer delay (Theorems 22/24) — yet a claim that is not measured
    cannot be regressed against. This module is the measurement layer:

    - {!Counter} — monotone event counts (updates applied, budgets fired);
    - {!Gauge} — last-written values (gates, depth of the latest circuit);
    - {!Histogram} — log₂-bucketed magnitude distributions, used for
      latencies in nanoseconds and for per-answer work counts; every
      histogram also maintains a sliding window (last {!Window.slots}
      epochs) so a regression in the recent past is visible next to the
      whole-run aggregate;
    - {!Timer} — sugar for timing a thunk into a histogram;
    - {!Runtime} — a [Gc.quick_stat] delta sampler (allocation rates,
      collection counts, heap size) under the "runtime" scope;
    - a global registry of named scopes ("compile", "dyn", "perm", …) with
      {!snapshot} (machine-readable JSON, no external JSON library),
      {!snapshot_human}, and {!Openmetrics.render} (Prometheus-scrapeable
      text exposition, plus an atomic periodic file writer) dumps.

    All write paths are gated on a single mutable flag ({!set_enabled}):
    when disabled, an instrumented operation costs one load and branch, so
    the engine's hot paths stay within the ≤5% overhead budget. Metrics
    are process-global and domain-safe: counters, gauges and histogram
    cells are [Atomic]-backed, so concurrent writers (the parallel
    evaluator's pooled domains included) never tear or lose updates. *)

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let is_enabled () = !enabled_flag

(** Wall-clock nanoseconds (µs resolution; the finest portable clock the
    sealed environment provides). The clock is indirect so tests can
    simulate a non-monotonic wall clock ({!set_clock}). *)
let default_clock () = Unix.gettimeofday () *. 1e9

let clock = ref default_clock
let now_ns () = !clock ()

(** Override the clock (tests only); [None] restores the wall clock. *)
let set_clock c = clock := Option.value ~default:default_clock c

(** Nanoseconds elapsed since [t0], clamped to 0: the wall clock is not
    monotonic, and a backwards step mid-measurement must not record a
    negative (or, once bucketed, garbage) duration. *)
let elapsed_ns t0 =
  let d = now_ns () -. t0 in
  if Float.is_nan d || d < 0. then 0. else d

(* --- hand-rolled JSON (the environment has no Yojson) --- *)

module Json = struct
  type t =
    | Null
    | B of bool
    | I of int
    | F of float
    | S of string
    | A of t list
    | O of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (** The token a float serializes to. NaN (no meaningful magnitude) maps
      to [null]; infinities clamp to the largest finite float, so a
      diverging gauge still shows up as a number rather than poisoning the
      document with a bare [inf] token. Every emitted token re-parses. *)
  let float_token f =
    if Float.is_nan f then "null"
    else if f = Float.infinity then Printf.sprintf "%.17g" Float.max_float
    else if f = Float.neg_infinity then Printf.sprintf "%.17g" (-.Float.max_float)
    else Printf.sprintf "%.12g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | B b -> Buffer.add_string buf (if b then "true" else "false")
    | I i -> Buffer.add_string buf (string_of_int i)
    | F f -> Buffer.add_string buf (float_token f)
    | S s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | A xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | O fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf x)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf
end

(* --- atomic float cells --- *)

(* Read-modify-write on a boxed-float atomic. An OCaml immediate int has
   63 bits, so a float's 64 bits cannot be packed into an [int Atomic.t];
   instead the cell holds the boxed float and [Atomic.set] is an atomic
   pointer swap — no torn writes. [compare_and_set] compares boxes
   physically: a failed CAS only ever means another write landed in
   between, so the loop retries from a fresh read and can never succeed
   with a lost update. *)
let atomic_add_float (a : float Atomic.t) x =
  if x <> 0. then begin
    let rec go () =
      let cur = Atomic.get a in
      if not (Atomic.compare_and_set a cur (cur +. x)) then begin
        Domain.cpu_relax ();
        go ()
      end
    in
    go ()
  end

(* Improve-only bounds: write only when [v] beats the current bound, so
   the loop stops as soon as the cell is at least as tight. *)
let atomic_min_float (a : float Atomic.t) v =
  let rec go () =
    let cur = Atomic.get a in
    if v < cur && not (Atomic.compare_and_set a cur v) then begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let atomic_max_float (a : float Atomic.t) v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

(* --- the sliding-window epoch clock --- *)

(** Global epoch clock for the sliding-window side of every histogram.

    Time is cut into fixed-length epochs; each histogram keeps a ring of
    {!slots} per-epoch sub-histograms, and "the window" is the union of
    the sub-histograms whose epoch tag lies in the last {!slots} epochs.
    The epoch only advances when {!tick} is called — snapshot paths
    ({!snapshot_json}, {!Openmetrics.render}, the periodic writer) drive
    it, so there is no background thread and a test with an injected
    clock ({!set_clock}) steps epochs deterministically. *)
module Window = struct
  (** Ring size: the window spans the last 8 epochs (with the default
      1s epoch length, an 8-second sliding window). *)
  let slots = 8

  let cur_epoch = Atomic.make 0
  let epoch_len = ref 1e9 (* ns *)
  let epoch_start = ref Float.nan (* anchored lazily by the first tick *)

  (** Epoch length in milliseconds (default 1000). *)
  let set_epoch_ms ms = epoch_len := float_of_int (max 1 ms) *. 1e6

  let epoch_ms () = int_of_float (!epoch_len /. 1e6)
  let current_epoch () = Atomic.get cur_epoch

  (** Advance the epoch to match the clock. Multiple elapsed epochs are
      caught up in one step; a backwards clock step re-anchors the epoch
      start without rewinding the epoch counter (epochs are monotone).
      Meant to be called from snapshot paths, not from hot loops. *)
  let tick () =
    let now = now_ns () in
    if Float.is_nan !epoch_start then epoch_start := now
    else begin
      let d = now -. !epoch_start in
      if d < 0. then epoch_start := now
      else if d >= !epoch_len then begin
        let k = int_of_float (d /. !epoch_len) in
        ignore (Atomic.fetch_and_add cur_epoch k);
        epoch_start := !epoch_start +. (float_of_int k *. !epoch_len)
      end
    end

  (** Rewind the epoch clock (tests only). Histograms observed before the
      reset keep stale slot tags; reset them too ({!Histogram.reset}) or
      use fresh histograms. *)
  let reset () =
    Atomic.set cur_epoch 0;
    epoch_start := Float.nan
end

(* --- metric kinds --- *)

module Counter = struct
  (* [Atomic] value: counters are bumped from every domain (the parallel
     evaluator's workers included), and a plain read-modify-write loses
     increments under contention. The [enabled_flag] check stays first so
     the disabled path is a single load, as before. *)
  type t = { name : string; v : int Atomic.t }

  let make name = { name; v = Atomic.make 0 }
  let incr t = if !enabled_flag then Atomic.incr t.v
  let add t n = if !enabled_flag then ignore (Atomic.fetch_and_add t.v n)
  let get t = Atomic.get t.v
  let reset t = Atomic.set t.v 0
  let name t = t.name

  (** A single-writer front for a counter on paths too hot for one atomic
      RMW per event: bumps accumulate in a plain cell and flush to the
      shared counter in blocks of 64, so the published total lags by at
      most 63 — diagnostic-grade, like the blocked [dyn/updates] counter.
      Safe only where all bumps come from one domain at a time (the wave
      engines are single-writer); a concurrent bump can drop a tick,
      never corrupt the counter. *)
  module Local = struct
    type counter = t
    type t = { c : counter; mutable pending : int }

    let make c = { c; pending = 0 }

    let bump t =
      let p = t.pending + 1 in
      if p land 63 = 0 then begin
        t.pending <- 0;
        add t.c 64
      end
      else t.pending <- p
  end
end

module Gauge = struct
  (* Boxed-float [Atomic]: a gauge written from a worker domain while the
     main domain snapshots must not tear. The 63-bit immediate int cannot
     carry a float's 64 bits, so the cell holds the box and [set] swaps
     the pointer atomically. *)
  type t = { name : string; v : float Atomic.t }

  let make name = { name; v = Atomic.make 0. }
  let set t x = if !enabled_flag then Atomic.set t.v x
  let set_int t i = set t (float_of_int i)
  let get t = Atomic.get t.v
  let reset t = Atomic.set t.v 0.
  let name t = t.name
end

(** Log₂-scale histogram over non-negative magnitudes (latencies in
    nanoseconds, per-answer work counts, …). Bucket 0 holds values in
    [0, 1); bucket i ≥ 1 holds [2^(i−1), 2^i). 64 buckets cover every
    magnitude a float can meaningfully carry here.

    Next to the cumulative series, each histogram keeps a ring of
    {!Window.slots} per-epoch sub-histograms; {!window_stats} merges the
    live slots into sliding-window count/sum/p50/p99. All cells are
    [Atomic]-backed: cumulative totals are exact under concurrent
    observers; the windowed series is exact single-domain and best-effort
    at epoch boundaries (a slot being recycled while another domain
    observes into it may misplace that one boundary observation). *)
module Histogram = struct
  let nbuckets = 64

  type t = {
    name : string;
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum : float Atomic.t;
    min_v : float Atomic.t; (* +inf when empty *)
    max_v : float Atomic.t; (* -inf when empty *)
    (* the sliding-window ring: slot e mod slots carries epoch e's
       sub-histogram, tagged with e (min_int = never used) *)
    w_epoch : int Atomic.t array;
    w_buckets : int Atomic.t array; (* slots × nbuckets, flattened *)
    w_sums : float Atomic.t array;
    w_maxs : float Atomic.t array;
    w_rotate : Mutex.t; (* serialises slot recycling, nothing else *)
  }

  let make name =
    {
      name;
      buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum = Atomic.make 0.;
      min_v = Atomic.make Float.infinity;
      max_v = Atomic.make Float.neg_infinity;
      w_epoch = Array.init Window.slots (fun _ -> Atomic.make min_int);
      w_buckets = Array.init (Window.slots * nbuckets) (fun _ -> Atomic.make 0);
      w_sums = Array.init Window.slots (fun _ -> Atomic.make 0.);
      w_maxs = Array.init Window.slots (fun _ -> Atomic.make Float.neg_infinity);
      w_rotate = Mutex.create ();
    }

  (** Bucket index of a value: 0 for v < 1, else the exponent e with
      v ∈ [2^(e−1), 2^e), clamped to the last bucket. *)
  let bucket_of v =
    if Float.is_nan v || v < 1.0 then 0
    else
      let _, e = Float.frexp v in
      if e >= nbuckets then nbuckets - 1 else e

  (** Inclusive lower / exclusive upper bound of bucket [i]. *)
  let bucket_lower i = if i <= 0 then 0. else Float.ldexp 1. (i - 1)

  let bucket_upper i = Float.ldexp 1. i

  (* Recycle window slot [slot] for epoch [e]. The mutex (with the tag
     double-checked under it) makes the clear-then-retag sequence happen
     once per epoch change even when several domains hit the stale slot
     together. The tag is set last, so a concurrent observer either sees
     the old tag (and queues behind the mutex) or a fully-cleared slot. *)
  let rotate_slot t slot e =
    Mutex.lock t.w_rotate;
    if Atomic.get t.w_epoch.(slot) <> e then begin
      let base = slot * nbuckets in
      for i = 0 to nbuckets - 1 do
        Atomic.set t.w_buckets.(base + i) 0
      done;
      Atomic.set t.w_sums.(slot) 0.;
      Atomic.set t.w_maxs.(slot) Float.neg_infinity;
      Atomic.set t.w_epoch.(slot) e
    end;
    Mutex.unlock t.w_rotate

  let observe t v =
    if !enabled_flag then begin
      let v = if Float.is_nan v || v < 0. then 0. else v in
      let b = bucket_of v in
      ignore (Atomic.fetch_and_add t.buckets.(b) 1);
      ignore (Atomic.fetch_and_add t.count 1);
      atomic_add_float t.sum v;
      atomic_min_float t.min_v v;
      atomic_max_float t.max_v v;
      let e = Window.current_epoch () in
      let slot = e mod Window.slots in
      if Atomic.get t.w_epoch.(slot) <> e then rotate_slot t slot e;
      ignore (Atomic.fetch_and_add t.w_buckets.((slot * nbuckets) + b) 1);
      atomic_add_float t.w_sums.(slot) v;
      atomic_max_float t.w_maxs.(slot) v
    end

  let count t = Atomic.get t.count
  let sum t = Atomic.get t.sum
  let mean t = if count t = 0 then 0. else sum t /. float_of_int (count t)
  let min_value t = if count t = 0 then 0. else Atomic.get t.min_v
  let max_value t = if count t = 0 then 0. else Atomic.get t.max_v
  let bucket_count t i = Atomic.get t.buckets.(i)

  (** Quantile over any bucket-count view: the upper bound of the smallest
      bucket whose cumulative count reaches q·count (inclusive — a rank
      exactly equal to a bucket's cumulative count selects that bucket,
      not the one above), clamped to the observed maximum. 0 when empty. *)
  let quantile_over ~(bucket : int -> int) ~count ~max_v q =
    if count = 0 then 0.
    else begin
      let rank = Float.to_int (Float.ceil (q *. float_of_int count)) in
      let rank = if rank < 1 then 1 else if rank > count then count else rank in
      (* smallest i with cumulative count >= rank; the total reaches
         [count >= rank], so the scan stays in range — the index guard
         only matters if a concurrent observe tears count vs buckets *)
      let cum = ref (bucket 0) and i = ref 0 in
      while !cum < rank && !i < nbuckets - 1 do
        incr i;
        cum := !cum + bucket !i
      done;
      Float.min (bucket_upper !i) max_v
    end

  let quantile t q =
    quantile_over ~bucket:(fun i -> Atomic.get t.buckets.(i)) ~count:(count t)
      ~max_v:(max_value t) q

  let p50 t = quantile t 0.5
  let p99 t = quantile t 0.99

  (** Merged view of the sliding window (the last {!Window.slots} epochs,
      as of the current epoch — call {!Window.tick} first on snapshot
      paths). Count and quantiles come from one merged bucket array, so
      they are internally consistent. *)
  type wstats = { wcount : int; wsum : float; wp50 : float; wp99 : float; wmax : float }

  let window_stats t =
    let e = Window.current_epoch () in
    let counts = Array.make nbuckets 0 in
    let s = ref 0. and mx = ref Float.neg_infinity in
    for slot = 0 to Window.slots - 1 do
      let tag = Atomic.get t.w_epoch.(slot) in
      if tag <= e && tag > e - Window.slots then begin
        let base = slot * nbuckets in
        for i = 0 to nbuckets - 1 do
          counts.(i) <- counts.(i) + Atomic.get t.w_buckets.(base + i)
        done;
        s := !s +. Atomic.get t.w_sums.(slot);
        let m = Atomic.get t.w_maxs.(slot) in
        if m > !mx then mx := m
      end
    done;
    let n = Array.fold_left ( + ) 0 counts in
    let mx = if n = 0 then 0. else !mx in
    {
      wcount = n;
      wsum = (if n = 0 then 0. else !s);
      wmax = mx;
      wp50 = quantile_over ~bucket:(Array.get counts) ~count:n ~max_v:mx 0.5;
      wp99 = quantile_over ~bucket:(Array.get counts) ~count:n ~max_v:mx 0.99;
    }

  let window_count t = (window_stats t).wcount
  let window_sum t = (window_stats t).wsum
  let window_p50 t = (window_stats t).wp50
  let window_p99 t = (window_stats t).wp99

  let reset t =
    Array.iter (fun a -> Atomic.set a 0) t.buckets;
    Atomic.set t.count 0;
    Atomic.set t.sum 0.;
    Atomic.set t.min_v Float.infinity;
    Atomic.set t.max_v Float.neg_infinity;
    Mutex.lock t.w_rotate;
    Array.iter (fun a -> Atomic.set a min_int) t.w_epoch;
    Array.iter (fun a -> Atomic.set a 0) t.w_buckets;
    Array.iter (fun a -> Atomic.set a 0.) t.w_sums;
    Array.iter (fun a -> Atomic.set a Float.neg_infinity) t.w_maxs;
    Mutex.unlock t.w_rotate

  let name t = t.name
end

(** Timers are histograms of nanoseconds with a measuring combinator. *)
module Timer = struct
  type t = Histogram.t

  (** Run [f], recording its wall-clock duration (also on exceptions, so a
      failing phase still shows up in the dump). Durations are clamped at 0
      ({!elapsed_ns}): a backwards wall-clock step mid-call records an empty
      duration, not a garbage magnitude. *)
  let time (t : t) f =
    if not !enabled_flag then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> Histogram.observe t (elapsed_ns t0)) f
    end

  let observe_ns = Histogram.observe
end

(* --- the global registry: (scope, name) -> metric --- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string * string, metric) Hashtbl.t = Hashtbl.create 64

(* Registration happens lazily on first use from any instrumented path —
   including pooled worker domains — and a bare [Hashtbl] corrupts under
   concurrent insert. Every registry access goes through this mutex;
   metric {e updates} don't (the metric cells are atomic, and a registered
   metric record never moves). *)
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let full_name scope name = scope ^ "/" ^ name

let mismatch scope name =
  invalid_arg (Printf.sprintf "Obs: metric %s already registered with another type" (full_name scope name))

(** Find-or-create; a (scope, name) pair permanently denotes one metric of
    one kind, so modules can bind metrics at load time and tests can look
    the same metrics up by name. *)
let counter ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (C c) -> c
  | Some _ -> mismatch scope name
  | None ->
      let c = Counter.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (C c);
      c

let gauge ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (G g) -> g
  | Some _ -> mismatch scope name
  | None ->
      let g = Gauge.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (G g);
      g

let histogram ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (H h) -> h
  | Some _ -> mismatch scope name
  | None ->
      let h = Histogram.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (H h);
      h

let timer ~scope name : Timer.t = histogram ~scope name

let find ~scope name = with_registry @@ fun () -> Hashtbl.find_opt registry (scope, name)

let scopes () =
  with_registry @@ fun () ->
  Hashtbl.fold (fun (s, _) _ acc -> if List.mem s acc then acc else s :: acc) registry []
  |> List.sort compare

let reset_metric = function
  | C c -> Counter.reset c
  | G g -> Gauge.reset g
  | H h -> Histogram.reset h

(** Zero every metric in [scope] (they stay registered). *)
let reset_scope scope =
  with_registry @@ fun () ->
  Hashtbl.iter (fun (s, _) m -> if s = scope then reset_metric m) registry

let reset_all () =
  with_registry @@ fun () -> Hashtbl.iter (fun _ m -> reset_metric m) registry

(* A consistent (key, metric) listing, sorted by key only — metric
   payloads contain mutexes and atomics that polymorphic compare must
   never touch. Every dump (JSON, human, OpenMetrics) starts here, which
   is what makes two runs of the same seed diff cleanly. *)
let sorted_entries () =
  (with_registry @@ fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
  |> List.sort (fun ((sa, na), _) ((sb, nb), _) ->
         match compare (sa : string) sb with 0 -> compare (na : string) nb | c -> c)

(* --- snapshots --- *)

let metric_json = function
  | C c -> Json.O [ ("type", Json.S "counter"); ("value", Json.I (Counter.get c)) ]
  | G g -> Json.O [ ("type", Json.S "gauge"); ("value", Json.F (Gauge.get g)) ]
  | H h ->
      let buckets =
        List.filter_map
          (fun i ->
            let n = Histogram.bucket_count h i in
            if n = 0 then None
            else Some (Json.A [ Json.F (Histogram.bucket_upper i); Json.I n ]))
          (List.init Histogram.nbuckets Fun.id)
      in
      let w = Histogram.window_stats h in
      Json.O
        [
          ("type", Json.S "histogram");
          ("count", Json.I (Histogram.count h));
          ("sum", Json.F (Histogram.sum h));
          ("mean", Json.F (Histogram.mean h));
          ("min", Json.F (Histogram.min_value h));
          ("max", Json.F (Histogram.max_value h));
          ("p50", Json.F (Histogram.p50 h));
          ("p99", Json.F (Histogram.p99 h));
          ( "window",
            Json.O
              [
                ("count", Json.I w.Histogram.wcount);
                ("sum", Json.F w.Histogram.wsum);
                ("p50", Json.F w.Histogram.wp50);
                ("p99", Json.F w.Histogram.wp99);
                ("max", Json.F w.Histogram.wmax);
              ] );
          ("buckets", Json.A buckets);
        ]

(** The whole registry as one JSON object: scope → name → metric, with
    scopes and names sorted for deterministic output. Taking a snapshot
    advances the window epoch ({!Window.tick}) — the snapshot path is the
    epoch driver; there is no background thread. *)
let snapshot_json () =
  Window.tick ();
  let entries = sorted_entries () in
  let all_scopes = List.sort_uniq compare (List.map (fun ((s, _), _) -> s) entries) in
  let scope_objs =
    List.map
      (fun s ->
        let in_scope = List.filter (fun ((s', _), _) -> s' = s) entries in
        (s, Json.O (List.map (fun ((_, n), m) -> (n, metric_json m)) in_scope)))
      all_scopes
  in
  Json.O scope_objs

let snapshot () = Json.to_string (snapshot_json ())

(* --- runtime (GC / heap) telemetry --- *)

(** Zero-dependency runtime sampler: each {!sample} folds the delta since
    the previous sample of [Gc.quick_stat] into counters (allocation and
    collection totals under the "runtime" scope) and gauges (current and
    peak heap size). The first sample after {!reset} accounts the
    process-lifetime totals. Sampling is driven by the same paths that
    snapshot metrics (the periodic writer, bench phases, `stats --cost`);
    there is no background thread. *)
module Runtime = struct
  let last : Gc.stat option ref = ref None
  let reset () = last := None

  let sample () =
    if !enabled_flag then begin
      let s = Gc.quick_stat () in
      let dfloat f = match !last with None -> f s | Some p -> f s -. f p in
      let dint f = match !last with None -> f s | Some p -> f s - f p in
      let cadd name v = Counter.add (counter ~scope:"runtime" name) (max 0 v) in
      cadd "minor_words" (int_of_float (dfloat (fun (g : Gc.stat) -> g.minor_words)));
      cadd "promoted_words" (int_of_float (dfloat (fun (g : Gc.stat) -> g.promoted_words)));
      cadd "major_words" (int_of_float (dfloat (fun (g : Gc.stat) -> g.major_words)));
      cadd "minor_collections" (dint (fun (g : Gc.stat) -> g.minor_collections));
      cadd "major_collections" (dint (fun (g : Gc.stat) -> g.major_collections));
      cadd "compactions" (dint (fun (g : Gc.stat) -> g.compactions));
      cadd "forced_major_collections" (dint (fun (g : Gc.stat) -> g.forced_major_collections));
      Gauge.set_int (gauge ~scope:"runtime" "heap_words") s.heap_words;
      Gauge.set_int (gauge ~scope:"runtime" "top_heap_words") s.top_heap_words;
      last := Some s
    end
end

(* --- OpenMetrics / Prometheus text exposition --- *)

(** The registry as an OpenMetrics text exposition — the scrape surface a
    future [sparseqd] will serve at [/metrics], already consumable by
    Prometheus via file-based collection today:

    - counters → one [<family>_total] sample;
    - gauges → one [<family>] sample;
    - histograms → cumulative [<family>_bucket{le="…"}] samples (occupied
      buckets plus the mandatory [le="+Inf"], which equals
      [<family>_count]), [_sum], and [_count], with the sliding-window
      p50/p99/count exported as companion [_win_*] gauge families;
    - families sorted by name, [# EOF] terminated — the output of two
      identical registries is byte-identical.

    Metric names are [sparseq_<scope>_<name>] with non-[a-zA-Z0-9_]
    characters mapped to '_'. *)
module Openmetrics = struct
  let sanitize s =
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        let ok =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        in
        if not ok then Bytes.set b i '_')
      b;
    let s = Bytes.to_string b in
    if s = "" then "_" else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s else s

  let family ~scope ~name = "sparseq_" ^ sanitize scope ^ "_" ^ sanitize name

  (* Exposition floats: unlike JSON, the format has literal spellings for
     the specials, so nothing needs clamping. *)
  let float_str f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.17g" f

  let block ~fam ~kind ~scope ~name body =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind);
    Buffer.add_string buf (Printf.sprintf "# HELP %s sparseq metric %s\n" fam (full_name scope name));
    body buf;
    (fam, Buffer.contents buf)

  let gauge_block ~fam ~scope ~name v =
    block ~fam ~kind:"gauge" ~scope ~name (fun buf ->
        Buffer.add_string buf (Printf.sprintf "%s %s\n" fam (float_str v)))

  (* One registry entry as a list of (family, text) blocks; histograms
     expand to the histogram family plus the windowed companion gauges. *)
  let blocks_of ((scope, name), m) =
    let fam = family ~scope ~name in
    match m with
    | C c ->
        [
          block ~fam ~kind:"counter" ~scope ~name (fun buf ->
              Buffer.add_string buf (Printf.sprintf "%s_total %d\n" fam (Counter.get c)));
        ]
    | G g -> [ gauge_block ~fam ~scope ~name (Gauge.get g) ]
    | H h ->
        let w = Histogram.window_stats h in
        (* Cumulative counts from one pass over the buckets; the +Inf
           bucket and _count both use the bucket total, so the exposition
           is self-consistent even if a concurrent observe lands between
           reads of the bucket array and the count cell. *)
        let hist =
          block ~fam ~kind:"histogram" ~scope ~name (fun buf ->
              let cum = ref 0 in
              for i = 0 to Histogram.nbuckets - 1 do
                let n = Histogram.bucket_count h i in
                if n > 0 then begin
                  cum := !cum + n;
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" fam
                       (float_str (Histogram.bucket_upper i))
                       !cum)
                end
              done;
              Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" fam !cum);
              Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" fam (float_str (Histogram.sum h)));
              Buffer.add_string buf (Printf.sprintf "%s_count %d\n" fam !cum))
        in
        [
          hist;
          gauge_block ~fam:(fam ^ "_win_count") ~scope ~name (float_of_int w.Histogram.wcount);
          gauge_block ~fam:(fam ^ "_win_p50") ~scope ~name w.Histogram.wp50;
          gauge_block ~fam:(fam ^ "_win_p99") ~scope ~name w.Histogram.wp99;
        ]

  (** Render the whole registry. Advances the window epoch, like every
      snapshot path. *)
  let render () =
    Window.tick ();
    let blocks = List.concat_map blocks_of (sorted_entries ()) in
    let blocks = List.sort (fun (fa, _) (fb, _) -> compare (fa : string) fb) blocks in
    let buf = Buffer.create 4096 in
    List.iter (fun (_, text) -> Buffer.add_string buf text) blocks;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf

  (** Periodic exposition writer: [tick] re-renders into the target file
      at most once per interval, [write_now] unconditionally. Rewrites are
      atomic (temp file in the same directory, then rename), so a scraper
      reading mid-write sees the previous complete exposition, never a
      torn one. Each write also takes a {!Runtime} sample, so a scraped
      file carries fresh GC/heap numbers. *)
  module Writer = struct
    type t = {
      path : string;
      interval_ns : float;
      mutable last_write : float;
      mutable writes : int;
    }

    let create ~path ~interval_ms =
      { path; interval_ns = float_of_int (max 0 interval_ms) *. 1e6; last_write = Float.neg_infinity; writes = 0 }

    let write_now w =
      Runtime.sample ();
      let text = render () in
      let tmp = w.path ^ ".tmp" in
      let oc = open_out tmp in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Sys.rename tmp w.path;
      w.last_write <- now_ns ();
      w.writes <- w.writes + 1

    let tick w = if now_ns () -. w.last_write >= w.interval_ns then write_now w
    let writes w = w.writes
    let path w = w.path
  end

  (* The process-global installed writer: long-running loops (bench
     iterations, `stats --updates`, pagerank rounds) call [pulse] between
     operations — outside any timed region — and the CLI installs/flushes
     it around each subcommand. *)
  let installed : Writer.t option ref = ref None
  let install w = installed := Some w
  let uninstall () = installed := None
  let pulse () = match !installed with None -> () | Some w -> Writer.tick w
end

(* --- hierarchical span tracing + the post-mortem flight recorder --- *)

(** Zero-dependency hierarchical tracer. A {e span} is a named, scoped
    wall-clock interval with key/value attributes and a parent (the span
    that was open when it started); an {e event} is an instant record.
    Both are gated on the same single {!set_enabled} flag as the metrics,
    so the disabled cost of an instrumented operation stays one load and
    one branch. Every record carries the integer id of the domain that
    emitted it, so a post-mortem dump from a [--domains N] run attributes
    spans to workers.

    Finished records flow into two sinks:

    - an optional in-memory {e recording} ({!with_recording},
      {!start_recording}/{!stop_recording}), exported as Chrome
      trace-event JSON ({!to_chrome}, loadable in Perfetto /
      [chrome://tracing], one [tid] lane per domain) or folded into a
      span tree ({!forest_of}) for explain plans;
    - an always-on fixed-size ring — the {e flight recorder} — retaining
      the last N records for post-mortem dumps ({!dump_flight}), fired
      automatically when [Robust] raises a structured error or a dynamic
      circuit is poisoned mid-wave. *)
module Trace = struct
  type attr = I of int | F of float | S of string | B of bool

  type span = {
    id : int;
    parent : int;  (** id of the enclosing span, or -1 for roots *)
    dom : int;  (** id of the domain that opened the span *)
    name : string;
    scope : string;
    start_ns : float;
    mutable end_ns : float;
    mutable attrs : (string * attr) list;
    mutable err : string option;  (** the exception that ended the span *)
  }

  type event = {
    ev_parent : int;
    ev_dom : int;  (** id of the domain that emitted the event *)
    ev_name : string;
    ev_scope : string;
    ts_ns : float;
    ev_attrs : (string * attr) list;
  }

  type record = RSpan of span | REvent of event

  let record_ts = function RSpan s -> s.start_ns | REvent e -> e.ts_ns

  let self_dom () = (Domain.self () :> int)

  (* Atomic: span ids are allocated from any domain; a ref would hand two
     spans the same id under contention. The open-span stack stays a plain
     ref — span nesting is a per-caller notion and worker domains never
     open spans (they run plain gate chunks). *)
  let next_id = Atomic.make 0
  let fresh_id () = Atomic.fetch_and_add next_id 1 + 1
  let stack : span list ref = ref []

  (* --- sinks --- *)

  let collecting : record list ref option ref = ref None

  (* The flight ring: [flight_buf.(i)] for i < capacity, written at
     [flight_total mod capacity]; [flight_total] counts every record ever
     written, so tests can observe the wrap. *)
  let flight_buf = ref (Array.make 256 None)

  (* Atomic cursor: each emitter claims its slot with one fetch-and-add,
     so two domains never write the same ring cell for the same total. *)
  let flight_total = Atomic.make 0

  let flight_capacity () = Array.length !flight_buf

  (** Resize the ring (dropping its current contents). *)
  let set_flight_capacity n =
    let n = max 1 n in
    flight_buf := Array.make n None;
    Atomic.set flight_total 0

  let reset_flight () =
    Array.fill !flight_buf 0 (Array.length !flight_buf) None;
    Atomic.set flight_total 0

  let emit r =
    (match !collecting with Some acc -> acc := r :: !acc | None -> ());
    let buf = !flight_buf in
    let slot = Atomic.fetch_and_add flight_total 1 in
    buf.(slot mod Array.length buf) <- Some r

  (** The ring's current contents, oldest first. *)
  let flight_records () =
    let buf = !flight_buf in
    let cap = Array.length buf in
    let total = Atomic.get flight_total in
    let live = min total cap in
    let start = total - live in
    List.filter_map (fun i -> buf.((start + i) mod cap)) (List.init live Fun.id)

  (* --- span lifecycle --- *)

  let current_parent () = match !stack with s :: _ -> s.id | [] -> -1

  (* Pop [s] off the open-span stack; tolerate (and discard) deeper spans
     left open by a non-local exit, so one leaked span cannot misparent
     every later record. *)
  let pop_span s =
    let rec drop = function
      | top :: rest when top == s -> rest
      | _ :: rest -> drop rest
      | [] -> []
    in
    stack := drop !stack

  (** Run [f] inside a span. The span is finished (and recorded) even when
      [f] raises — the exception is noted on the span and re-raised. End
      times are clamped to the start time, so a backwards wall-clock step
      yields a zero-length span, not a negative one. *)
  let span ?(attrs = []) ~scope name f =
    if not !enabled_flag then f ()
    else begin
      let s =
        {
          id = fresh_id ();
          parent = current_parent ();
          dom = self_dom ();
          name;
          scope;
          start_ns = now_ns ();
          end_ns = 0.;
          attrs;
          err = None;
        }
      in
      stack := s :: !stack;
      Fun.protect
        ~finally:(fun () ->
          let e = now_ns () in
          s.end_ns <- (if e < s.start_ns then s.start_ns else e);
          pop_span s;
          emit (RSpan s))
        (fun () ->
          try f ()
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            s.err <- Some (Printexc.to_string e);
            Printexc.raise_with_backtrace e bt)
    end

  (** True while a recording sink is attached ({!with_recording} /
      {!start_recording}). Hot paths consult this to decide whether a
      per-operation span is worth its two clock reads. *)
  let is_recording () = !collecting <> None

  (** Hot-path variant of {!span} for sub-microsecond operations that run
      millions of times: a full span is opened only while a recording is
      being collected (traces stay complete) or when the caller marks
      this call [~force] (callers pass their systematic-sampling
      decision, so the flight ring keeps context around a crash). All
      other calls run [f] bare — and if [f] raises, the span is
      materialized post-hoc with the error attached, so a post-mortem
      flight dump always contains the fatal operation even though the
      healthy ones around it were skipped. The bare path costs two flag
      checks; the ≤5% telemetry budget on per-update workloads depends
      on it. *)
  let span_hot ?(force = false) ?attrs ~scope name f =
    if not !enabled_flag then f ()
    else if force || !collecting <> None then span ?attrs ~scope name f
    else
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        let t = now_ns () in
        emit
          (RSpan
             {
               id = fresh_id ();
               parent = current_parent ();
               dom = self_dom ();
               name;
               scope;
               start_ns = t;
               end_ns = t;
               attrs = Option.value ~default:[] attrs;
               err = Some (Printexc.to_string e);
             });
        Printexc.raise_with_backtrace e bt

  (** Attach an attribute to the innermost open span (no-op when disabled
      or outside every span). *)
  let add_attr key v =
    if !enabled_flag then
      match !stack with s :: _ -> s.attrs <- (key, v) :: s.attrs | [] -> ()

  (** Record an instant event under the innermost open span. *)
  let event ?(attrs = []) ~scope name =
    if !enabled_flag then
      emit
        (REvent
           {
             ev_parent = current_parent ();
             ev_dom = self_dom ();
             ev_name = name;
             ev_scope = scope;
             ts_ns = now_ns ();
             ev_attrs = attrs;
           })

  (** Record an already-measured interval (a span whose start was sampled
      by the caller, e.g. one enumeration step) without entering it. *)
  let complete ?(attrs = []) ~scope name ~start_ns =
    if !enabled_flag then begin
      let e = now_ns () in
      emit
        (RSpan
           {
             id = fresh_id ();
             parent = current_parent ();
             dom = self_dom ();
             name;
             scope;
             start_ns;
             end_ns = (if e < start_ns then start_ns else e);
             attrs;
             err = None;
           })
    end

  (* --- recordings --- *)

  let start_recording () = collecting := Some (ref [])

  (** Stop collecting; returns the recorded records in chronological
      (completion) order. Without a matching {!start_recording}: []. *)
  let stop_recording () =
    match !collecting with
    | None -> []
    | Some acc ->
        collecting := None;
        List.rev !acc

  (** [with_recording f] runs [f] with collection on; returns the result
      and the records. The previous recording (if any) is restored, and
      records collected here are also teed into it, so an enclosing
      recording (e.g. the CLI's [--trace] capture) still sees them. *)
  let with_recording f =
    let saved = !collecting in
    collecting := Some (ref []);
    let finish () =
      let records = stop_recording () in
      collecting := saved;
      (match saved with
      | Some acc -> acc := List.rev_append records !acc
      | None -> ());
      records
    in
    match f () with
    | r -> (r, finish ())
    | exception e ->
        ignore (finish ());
        raise e

  (* --- Chrome trace-event export --- *)

  let attr_json = function
    | I i -> Json.I i
    | F f -> Json.F f
    | S s -> Json.S s
    | B b -> Json.B b

  let args_json ~ids attrs err =
    Json.O
      (ids
      @ (match err with Some m -> [ ("raised", Json.S m) ] | None -> [])
      @ List.rev_map (fun (k, v) -> (k, attr_json v)) attrs)

  (** Records as a Chrome trace-event document (the JSON object form, with
      complete "X" events for spans and instant "i" events), loadable in
      Perfetto or [chrome://tracing]. Timestamps are microseconds, as the
      format requires; the emitting domain becomes the [tid], so a
      [--domains N] recording renders one lane per worker. *)
  let to_chrome (records : record list) : Json.t =
    let one = function
      | RSpan s ->
          Json.O
            [
              ("name", Json.S s.name);
              ("cat", Json.S s.scope);
              ("ph", Json.S "X");
              ("ts", Json.F (s.start_ns /. 1e3));
              ("dur", Json.F ((s.end_ns -. s.start_ns) /. 1e3));
              ("pid", Json.I 1);
              ("tid", Json.I s.dom);
              ( "args",
                args_json
                  ~ids:[ ("span_id", Json.I s.id); ("parent", Json.I s.parent) ]
                  s.attrs s.err );
            ]
      | REvent e ->
          Json.O
            [
              ("name", Json.S e.ev_name);
              ("cat", Json.S e.ev_scope);
              ("ph", Json.S "i");
              ("s", Json.S "t");
              ("ts", Json.F (e.ts_ns /. 1e3));
              ("pid", Json.I 1);
              ("tid", Json.I e.ev_dom);
              ("args", args_json ~ids:[ ("parent", Json.I e.ev_parent) ] e.ev_attrs None);
            ]
    in
    Json.O
      [
        ("traceEvents", Json.A (List.map one records));
        ("displayTimeUnit", Json.S "ns");
      ]

  (* --- span trees (explain plans) --- *)

  type tree = { sp : span; children : tree list }

  (** Fold a recording into its span forest: roots are the spans whose
      parent is not in the recording; children are ordered by start time.
      Events are dropped (they carry no duration). *)
  let forest_of (records : record list) : tree list =
    let spans = List.filter_map (function RSpan s -> Some s | REvent _ -> None) records in
    let ids = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace ids s.id ()) spans;
    let by_parent = Hashtbl.create 64 in
    List.iter
      (fun s ->
        if Hashtbl.mem ids s.parent then
          Hashtbl.replace by_parent s.parent
            (s :: Option.value ~default:[] (Hashtbl.find_opt by_parent s.parent)))
      spans;
    let rec build s =
      let kids =
        List.sort
          (fun a b -> compare a.start_ns b.start_ns)
          (Option.value ~default:[] (Hashtbl.find_opt by_parent s.id))
      in
      { sp = s; children = List.map build kids }
    in
    spans
    |> List.filter (fun s -> not (Hashtbl.mem ids s.parent))
    |> List.sort (fun a b -> compare a.start_ns b.start_ns)
    |> List.map build

  let duration_ns s = s.end_ns -. s.start_ns

  let attr_to_string = function
    | I i -> string_of_int i
    | F f -> Printf.sprintf "%.12g" f
    | S s -> s
    | B b -> string_of_bool b

  let attrs_to_string attrs =
    String.concat " "
      (List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k (attr_to_string v)) attrs)

  (** Human-readable span tree — the explain-plan surface. Each line is
      one span with its duration and attributes; nodes with children also
      report {e coverage}: how much of the parent interval its children
      account for. *)
  let render_forest ?(max_children = 12) (forest : tree list) : string =
    let buf = Buffer.create 1024 in
    let rec go indent { sp; children } =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3fms  %s%s\n" indent
           (max 1 (32 - String.length indent))
           (sp.scope ^ "/" ^ sp.name)
           (duration_ns sp /. 1e6)
           (attrs_to_string sp.attrs)
           (match sp.err with Some m -> "  RAISED " ^ m | None -> ""));
      let shown, hidden =
        if List.length children <= max_children then (children, [])
        else begin
          let by_dur =
            List.sort (fun a b -> compare (duration_ns b.sp) (duration_ns a.sp)) children
          in
          let top = List.filteri (fun i _ -> i < max_children) by_dur in
          ( List.filter (fun c -> List.memq c top) children,
            List.filteri (fun i _ -> i >= max_children) by_dur )
        end
      in
      List.iter (go (indent ^ "  ")) shown;
      if hidden <> [] then
        Buffer.add_string buf
          (Printf.sprintf "%s  … %d more spans (%.3fms)\n" indent (List.length hidden)
             (List.fold_left (fun a c -> a +. duration_ns c.sp) 0. hidden /. 1e6));
      if children <> [] && duration_ns sp > 0. then
        Buffer.add_string buf
          (Printf.sprintf "%s  (children cover %.1f%% of %s)\n" indent
             (100.
             *. List.fold_left (fun a c -> a +. duration_ns c.sp) 0. children
             /. duration_ns sp)
             sp.name)
    in
    List.iter (go "") forest;
    Buffer.contents buf

  (* --- the post-mortem dump --- *)

  type dump_dest = Silent | Stderr | File of string

  (* Where automatic dumps go. Library-embedding default: Silent (tests
     raise classified errors on purpose); the CLI and the bench harness
     arm Stderr. SPARSEQ_FLIGHT=stderr|PATH overrides either way. *)
  let flight_dest =
    ref
      (match Sys.getenv_opt "SPARSEQ_FLIGHT" with
      | Some "stderr" -> Stderr
      | Some "" | None -> Silent
      | Some path -> File path)

  let set_flight_dest d = flight_dest := d

  (** The flight recorder's contents as a report: the last N records,
      oldest first, timestamps relative to the first retained record. *)
  let flight_report ~reason () =
    let records = flight_records () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "=== sparseq flight recorder: %s (last %d of %d records) ===\n" reason
         (List.length records) (Atomic.get flight_total));
    (match records with
    | [] -> Buffer.add_string buf "  (no records; tracing disabled or nothing ran)\n"
    | first :: _ ->
        let t0 = record_ts first in
        List.iter
          (fun r ->
            match r with
            | RSpan s ->
                Buffer.add_string buf
                  (Printf.sprintf "  [+%10.3fms] span  %s/%s (id %d, parent %d, dom %d) %.3fms %s%s\n"
                     ((s.start_ns -. t0) /. 1e6)
                     s.scope s.name s.id s.parent s.dom (duration_ns s /. 1e6)
                     (attrs_to_string s.attrs)
                     (match s.err with Some m -> "  RAISED " ^ m | None -> ""))
            | REvent e ->
                Buffer.add_string buf
                  (Printf.sprintf "  [+%10.3fms] event %s/%s (parent %d, dom %d) %s\n"
                     ((e.ts_ns -. t0) /. 1e6)
                     e.ev_scope e.ev_name e.ev_parent e.ev_dom (attrs_to_string e.ev_attrs)))
          records);
    Buffer.add_string buf "=== end of flight recorder ===\n";
    Buffer.contents buf

  (** Dump the flight recorder to the configured destination. Called
      automatically on structured errors and mid-wave poisonings; safe to
      call by hand after any failure. *)
  let dump_flight ~reason () =
    match !flight_dest with
    | Silent -> ()
    | Stderr -> prerr_string (flight_report ~reason ())
    | File path ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (flight_report ~reason ()))

  (** Hook for [Robust]: record the structured error as an event and fire
      the post-mortem dump. *)
  let note_error ~kind msg =
    if !enabled_flag then begin
      event ~scope:"robust" ~attrs:[ ("kind", S kind); ("msg", S msg) ] "error";
      dump_flight ~reason:(kind ^ ": " ^ msg) ()
    end
end

(** Plain-text dump, one metric per line, sorted by (scope, name) so two
    runs of the same seed diff cleanly. Advances the window epoch, like
    every snapshot path. *)
let snapshot_human () =
  Window.tick ();
  let buf = Buffer.create 1024 in
  sorted_entries ()
  |> List.iter (fun ((scope, n), m) ->
         let name = full_name scope n in
         match m with
         | C c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name (Counter.get c))
         | G g -> Buffer.add_string buf (Printf.sprintf "%-40s %.12g\n" name (Gauge.get g))
         | H h ->
             let w = Histogram.window_stats h in
             Buffer.add_string buf
               (Printf.sprintf
                  "%-40s count=%d mean=%.0f p50=%.0f p99=%.0f max=%.0f win(count=%d p50=%.0f p99=%.0f)\n"
                  name (Histogram.count h) (Histogram.mean h) (Histogram.p50 h)
                  (Histogram.p99 h) (Histogram.max_value h) w.Histogram.wcount
                  w.Histogram.wp50 w.Histogram.wp99));
  Buffer.contents buf
