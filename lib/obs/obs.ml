(** Zero-dependency metrics for the engine's complexity claims.

    Every theorem the repo reproduces is stated in terms of measurable
    circuit parameters — gate count, depth, fan-out, permanent rows
    (Theorem 6), per-update reach-out (Theorem 8, Corollaries 13/17/20),
    per-answer delay (Theorems 22/24) — yet a claim that is not measured
    cannot be regressed against. This module is the measurement layer:

    - {!Counter} — monotone event counts (updates applied, budgets fired);
    - {!Gauge} — last-written values (gates, depth of the latest circuit);
    - {!Histogram} — log₂-bucketed magnitude distributions, used for
      latencies in nanoseconds and for per-answer work counts;
    - {!Timer} — sugar for timing a thunk into a histogram;
    - a global registry of named scopes ("compile", "dyn", "perm", …) with
      {!snapshot} (machine-readable JSON, no external JSON library) and
      {!snapshot_human} dumps.

    All write paths are gated on a single mutable flag ({!set_enabled}):
    when disabled, an instrumented operation costs one load and branch, so
    the engine's hot paths stay within the ≤5% overhead budget. Metrics are
    process-global and not thread-safe, matching the rest of the engine. *)

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let is_enabled () = !enabled_flag

(** Wall-clock nanoseconds (µs resolution; the finest portable clock the
    sealed environment provides). The clock is indirect so tests can
    simulate a non-monotonic wall clock ({!set_clock}). *)
let default_clock () = Unix.gettimeofday () *. 1e9

let clock = ref default_clock
let now_ns () = !clock ()

(** Override the clock (tests only); [None] restores the wall clock. *)
let set_clock c = clock := Option.value ~default:default_clock c

(** Nanoseconds elapsed since [t0], clamped to 0: the wall clock is not
    monotonic, and a backwards step mid-measurement must not record a
    negative (or, once bucketed, garbage) duration. *)
let elapsed_ns t0 =
  let d = now_ns () -. t0 in
  if Float.is_nan d || d < 0. then 0. else d

(* --- hand-rolled JSON (the environment has no Yojson) --- *)

module Json = struct
  type t =
    | Null
    | B of bool
    | I of int
    | F of float
    | S of string
    | A of t list
    | O of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (** The token a float serializes to. NaN (no meaningful magnitude) maps
      to [null]; infinities clamp to the largest finite float, so a
      diverging gauge still shows up as a number rather than poisoning the
      document with a bare [inf] token. Every emitted token re-parses. *)
  let float_token f =
    if Float.is_nan f then "null"
    else if f = Float.infinity then Printf.sprintf "%.17g" Float.max_float
    else if f = Float.neg_infinity then Printf.sprintf "%.17g" (-.Float.max_float)
    else Printf.sprintf "%.12g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | B b -> Buffer.add_string buf (if b then "true" else "false")
    | I i -> Buffer.add_string buf (string_of_int i)
    | F f -> Buffer.add_string buf (float_token f)
    | S s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | A xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | O fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf x)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf
end

(* --- metric kinds --- *)

module Counter = struct
  (* [Atomic] value: counters are bumped from every domain (the parallel
     evaluator's workers included), and a plain read-modify-write loses
     increments under contention. The [enabled_flag] check stays first so
     the disabled path is a single load, as before. *)
  type t = { name : string; v : int Atomic.t }

  let make name = { name; v = Atomic.make 0 }
  let incr t = if !enabled_flag then Atomic.incr t.v
  let add t n = if !enabled_flag then ignore (Atomic.fetch_and_add t.v n)
  let get t = Atomic.get t.v
  let reset t = Atomic.set t.v 0
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let make name = { name; v = 0. }
  let set t x = if !enabled_flag then t.v <- x
  let set_int t i = set t (float_of_int i)
  let get t = t.v
  let reset t = t.v <- 0.
  let name t = t.name
end

(** Log₂-scale histogram over non-negative magnitudes (latencies in
    nanoseconds, per-answer work counts, …). Bucket 0 holds values in
    [0, 1); bucket i ≥ 1 holds [2^(i−1), 2^i). 64 buckets cover every
    magnitude a float can meaningfully carry here. *)
module Histogram = struct
  let nbuckets = 64

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let make name =
    { name; buckets = Array.make nbuckets 0; count = 0; sum = 0.; min_v = 0.; max_v = 0. }

  (** Bucket index of a value: 0 for v < 1, else the exponent e with
      v ∈ [2^(e−1), 2^e), clamped to the last bucket. *)
  let bucket_of v =
    if Float.is_nan v || v < 1.0 then 0
    else
      let _, e = Float.frexp v in
      if e >= nbuckets then nbuckets - 1 else e

  (** Inclusive lower / exclusive upper bound of bucket [i]. *)
  let bucket_lower i = if i <= 0 then 0. else Float.ldexp 1. (i - 1)

  let bucket_upper i = Float.ldexp 1. i

  let observe t v =
    if !enabled_flag then begin
      let v = if Float.is_nan v || v < 0. then 0. else v in
      t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
      if t.count = 0 then begin
        t.min_v <- v;
        t.max_v <- v
      end
      else begin
        if v < t.min_v then t.min_v <- v;
        if v > t.max_v then t.max_v <- v
      end;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v
    end

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
  let min_value t = t.min_v
  let max_value t = t.max_v

  (** Quantile estimate: the upper bound of the smallest bucket whose
      cumulative count reaches q·count (inclusive — a rank exactly equal
      to a bucket's cumulative count selects that bucket, not the one
      above), clamped to the exact observed maximum. 0 when empty. *)
  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let rank = Float.to_int (Float.ceil (q *. float_of_int t.count)) in
      let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
      (* smallest i with cumulative count >= rank; the total reaches
         [count >= rank], so the scan stays in range — the index guard
         only matters if a concurrent observe tears count vs buckets *)
      let cum = ref t.buckets.(0) and i = ref 0 in
      while !cum < rank && !i < nbuckets - 1 do
        incr i;
        cum := !cum + t.buckets.(!i)
      done;
      Float.min (bucket_upper !i) t.max_v
    end

  let p50 t = quantile t 0.5
  let p99 t = quantile t 0.99

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_v <- 0.;
    t.max_v <- 0.

  let name t = t.name
end

(** Timers are histograms of nanoseconds with a measuring combinator. *)
module Timer = struct
  type t = Histogram.t

  (** Run [f], recording its wall-clock duration (also on exceptions, so a
      failing phase still shows up in the dump). Durations are clamped at 0
      ({!elapsed_ns}): a backwards wall-clock step mid-call records an empty
      duration, not a garbage magnitude. *)
  let time (t : t) f =
    if not !enabled_flag then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> Histogram.observe t (elapsed_ns t0)) f
    end

  let observe_ns = Histogram.observe
end

(* --- the global registry: (scope, name) -> metric --- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string * string, metric) Hashtbl.t = Hashtbl.create 64

(* Registration happens lazily on first use from any instrumented path —
   including pooled worker domains — and a bare [Hashtbl] corrupts under
   concurrent insert. Every registry access goes through this mutex;
   metric {e updates} don't (counters are atomic, and a registered metric
   record never moves). *)
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let full_name scope name = scope ^ "/" ^ name

let mismatch scope name =
  invalid_arg (Printf.sprintf "Obs: metric %s already registered with another type" (full_name scope name))

(** Find-or-create; a (scope, name) pair permanently denotes one metric of
    one kind, so modules can bind metrics at load time and tests can look
    the same metrics up by name. *)
let counter ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (C c) -> c
  | Some _ -> mismatch scope name
  | None ->
      let c = Counter.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (C c);
      c

let gauge ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (G g) -> g
  | Some _ -> mismatch scope name
  | None ->
      let g = Gauge.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (G g);
      g

let histogram ~scope name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry (scope, name) with
  | Some (H h) -> h
  | Some _ -> mismatch scope name
  | None ->
      let h = Histogram.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (H h);
      h

let timer ~scope name : Timer.t = histogram ~scope name

let find ~scope name = with_registry @@ fun () -> Hashtbl.find_opt registry (scope, name)

let scopes () =
  with_registry @@ fun () ->
  Hashtbl.fold (fun (s, _) _ acc -> if List.mem s acc then acc else s :: acc) registry []
  |> List.sort compare

let reset_metric = function
  | C c -> Counter.reset c
  | G g -> Gauge.reset g
  | H h -> Histogram.reset h

(** Zero every metric in [scope] (they stay registered). *)
let reset_scope scope =
  with_registry @@ fun () ->
  Hashtbl.iter (fun (s, _) m -> if s = scope then reset_metric m) registry

let reset_all () =
  with_registry @@ fun () -> Hashtbl.iter (fun _ m -> reset_metric m) registry

(* --- snapshots --- *)

let metric_json = function
  | C c -> Json.O [ ("type", Json.S "counter"); ("value", Json.I (Counter.get c)) ]
  | G g -> Json.O [ ("type", Json.S "gauge"); ("value", Json.F (Gauge.get g)) ]
  | H h ->
      let buckets =
        List.filter_map
          (fun i ->
            if h.Histogram.buckets.(i) = 0 then None
            else
              Some (Json.A [ Json.F (Histogram.bucket_upper i); Json.I h.Histogram.buckets.(i) ]))
          (List.init Histogram.nbuckets Fun.id)
      in
      Json.O
        [
          ("type", Json.S "histogram");
          ("count", Json.I (Histogram.count h));
          ("sum", Json.F (Histogram.sum h));
          ("mean", Json.F (Histogram.mean h));
          ("min", Json.F (Histogram.min_value h));
          ("max", Json.F (Histogram.max_value h));
          ("p50", Json.F (Histogram.p50 h));
          ("p99", Json.F (Histogram.p99 h));
          ("buckets", Json.A buckets);
        ]

(** The whole registry as one JSON object: scope → name → metric, with
    scopes and names sorted for deterministic output. *)
let snapshot_json () =
  (* grab a consistent entry list under the lock; format outside it *)
  let entries =
    with_registry @@ fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry []
  in
  let by_scope = Hashtbl.create 16 in
  List.iter
    (fun ((s, n), m) ->
      Hashtbl.replace by_scope s ((n, m) :: Option.value ~default:[] (Hashtbl.find_opt by_scope s)))
    entries;
  let all_scopes =
    List.sort_uniq compare (List.map (fun ((s, _), _) -> s) entries)
  in
  let scope_objs =
    List.map
      (fun s ->
        let entries = List.sort compare (Hashtbl.find by_scope s) in
        (s, Json.O (List.map (fun (n, m) -> (n, metric_json m)) entries)))
      all_scopes
  in
  Json.O scope_objs

let snapshot () = Json.to_string (snapshot_json ())

(* --- hierarchical span tracing + the post-mortem flight recorder --- *)

(** Zero-dependency hierarchical tracer. A {e span} is a named, scoped
    wall-clock interval with key/value attributes and a parent (the span
    that was open when it started); an {e event} is an instant record.
    Both are gated on the same single {!set_enabled} flag as the metrics,
    so the disabled cost of an instrumented operation stays one load and
    one branch.

    Finished records flow into two sinks:

    - an optional in-memory {e recording} ({!with_recording},
      {!start_recording}/{!stop_recording}), exported as Chrome
      trace-event JSON ({!to_chrome}, loadable in Perfetto /
      [chrome://tracing]) or folded into a span tree ({!forest_of}) for
      explain plans;
    - an always-on fixed-size ring — the {e flight recorder} — retaining
      the last N records for post-mortem dumps ({!dump_flight}), fired
      automatically when [Robust] raises a structured error or a dynamic
      circuit is poisoned mid-wave. *)
module Trace = struct
  type attr = I of int | F of float | S of string | B of bool

  type span = {
    id : int;
    parent : int;  (** id of the enclosing span, or -1 for roots *)
    name : string;
    scope : string;
    start_ns : float;
    mutable end_ns : float;
    mutable attrs : (string * attr) list;
    mutable err : string option;  (** the exception that ended the span *)
  }

  type event = {
    ev_parent : int;
    ev_name : string;
    ev_scope : string;
    ts_ns : float;
    ev_attrs : (string * attr) list;
  }

  type record = RSpan of span | REvent of event

  let record_ts = function RSpan s -> s.start_ns | REvent e -> e.ts_ns

  (* Atomic: span ids are allocated from any domain; a ref would hand two
     spans the same id under contention. The open-span stack stays a plain
     ref — span nesting is a per-caller notion and worker domains never
     open spans (they run plain gate chunks). *)
  let next_id = Atomic.make 0
  let fresh_id () = Atomic.fetch_and_add next_id 1 + 1
  let stack : span list ref = ref []

  (* --- sinks --- *)

  let collecting : record list ref option ref = ref None

  (* The flight ring: [flight_buf.(i)] for i < capacity, written at
     [flight_total mod capacity]; [flight_total] counts every record ever
     written, so tests can observe the wrap. *)
  let flight_buf = ref (Array.make 256 None)

  (* Atomic cursor: each emitter claims its slot with one fetch-and-add,
     so two domains never write the same ring cell for the same total. *)
  let flight_total = Atomic.make 0

  let flight_capacity () = Array.length !flight_buf

  (** Resize the ring (dropping its current contents). *)
  let set_flight_capacity n =
    let n = max 1 n in
    flight_buf := Array.make n None;
    Atomic.set flight_total 0

  let reset_flight () =
    Array.fill !flight_buf 0 (Array.length !flight_buf) None;
    Atomic.set flight_total 0

  let emit r =
    (match !collecting with Some acc -> acc := r :: !acc | None -> ());
    let buf = !flight_buf in
    let slot = Atomic.fetch_and_add flight_total 1 in
    buf.(slot mod Array.length buf) <- Some r

  (** The ring's current contents, oldest first. *)
  let flight_records () =
    let buf = !flight_buf in
    let cap = Array.length buf in
    let total = Atomic.get flight_total in
    let live = min total cap in
    let start = total - live in
    List.filter_map (fun i -> buf.((start + i) mod cap)) (List.init live Fun.id)

  (* --- span lifecycle --- *)

  let current_parent () = match !stack with s :: _ -> s.id | [] -> -1

  (* Pop [s] off the open-span stack; tolerate (and discard) deeper spans
     left open by a non-local exit, so one leaked span cannot misparent
     every later record. *)
  let pop_span s =
    let rec drop = function
      | top :: rest when top == s -> rest
      | _ :: rest -> drop rest
      | [] -> []
    in
    stack := drop !stack

  (** Run [f] inside a span. The span is finished (and recorded) even when
      [f] raises — the exception is noted on the span and re-raised. End
      times are clamped to the start time, so a backwards wall-clock step
      yields a zero-length span, not a negative one. *)
  let span ?(attrs = []) ~scope name f =
    if not !enabled_flag then f ()
    else begin
      let s =
        {
          id = fresh_id ();
          parent = current_parent ();
          name;
          scope;
          start_ns = now_ns ();
          end_ns = 0.;
          attrs;
          err = None;
        }
      in
      stack := s :: !stack;
      Fun.protect
        ~finally:(fun () ->
          let e = now_ns () in
          s.end_ns <- (if e < s.start_ns then s.start_ns else e);
          pop_span s;
          emit (RSpan s))
        (fun () ->
          try f ()
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            s.err <- Some (Printexc.to_string e);
            Printexc.raise_with_backtrace e bt)
    end

  (** Attach an attribute to the innermost open span (no-op when disabled
      or outside every span). *)
  let add_attr key v =
    if !enabled_flag then
      match !stack with s :: _ -> s.attrs <- (key, v) :: s.attrs | [] -> ()

  (** Record an instant event under the innermost open span. *)
  let event ?(attrs = []) ~scope name =
    if !enabled_flag then
      emit
        (REvent
           {
             ev_parent = current_parent ();
             ev_name = name;
             ev_scope = scope;
             ts_ns = now_ns ();
             ev_attrs = attrs;
           })

  (** Record an already-measured interval (a span whose start was sampled
      by the caller, e.g. one enumeration step) without entering it. *)
  let complete ?(attrs = []) ~scope name ~start_ns =
    if !enabled_flag then begin
      let e = now_ns () in
      emit
        (RSpan
           {
             id = fresh_id ();
             parent = current_parent ();
             name;
             scope;
             start_ns;
             end_ns = (if e < start_ns then start_ns else e);
             attrs;
             err = None;
           })
    end

  (* --- recordings --- *)

  let start_recording () = collecting := Some (ref [])

  (** Stop collecting; returns the recorded records in chronological
      (completion) order. Without a matching {!start_recording}: []. *)
  let stop_recording () =
    match !collecting with
    | None -> []
    | Some acc ->
        collecting := None;
        List.rev !acc

  (** [with_recording f] runs [f] with collection on; returns the result
      and the records. The previous recording (if any) is restored, and
      records collected here are also teed into it, so an enclosing
      recording (e.g. the CLI's [--trace] capture) still sees them. *)
  let with_recording f =
    let saved = !collecting in
    collecting := Some (ref []);
    let finish () =
      let records = stop_recording () in
      collecting := saved;
      (match saved with
      | Some acc -> acc := List.rev_append records !acc
      | None -> ());
      records
    in
    match f () with
    | r -> (r, finish ())
    | exception e ->
        ignore (finish ());
        raise e

  (* --- Chrome trace-event export --- *)

  let attr_json = function
    | I i -> Json.I i
    | F f -> Json.F f
    | S s -> Json.S s
    | B b -> Json.B b

  let args_json ~ids attrs err =
    Json.O
      (ids
      @ (match err with Some m -> [ ("raised", Json.S m) ] | None -> [])
      @ List.rev_map (fun (k, v) -> (k, attr_json v)) attrs)

  (** Records as a Chrome trace-event document (the JSON object form, with
      complete "X" events for spans and instant "i" events), loadable in
      Perfetto or [chrome://tracing]. Timestamps are microseconds, as the
      format requires. *)
  let to_chrome (records : record list) : Json.t =
    let one = function
      | RSpan s ->
          Json.O
            [
              ("name", Json.S s.name);
              ("cat", Json.S s.scope);
              ("ph", Json.S "X");
              ("ts", Json.F (s.start_ns /. 1e3));
              ("dur", Json.F ((s.end_ns -. s.start_ns) /. 1e3));
              ("pid", Json.I 1);
              ("tid", Json.I 1);
              ( "args",
                args_json
                  ~ids:[ ("span_id", Json.I s.id); ("parent", Json.I s.parent) ]
                  s.attrs s.err );
            ]
      | REvent e ->
          Json.O
            [
              ("name", Json.S e.ev_name);
              ("cat", Json.S e.ev_scope);
              ("ph", Json.S "i");
              ("s", Json.S "t");
              ("ts", Json.F (e.ts_ns /. 1e3));
              ("pid", Json.I 1);
              ("tid", Json.I 1);
              ("args", args_json ~ids:[ ("parent", Json.I e.ev_parent) ] e.ev_attrs None);
            ]
    in
    Json.O
      [
        ("traceEvents", Json.A (List.map one records));
        ("displayTimeUnit", Json.S "ns");
      ]

  (* --- span trees (explain plans) --- *)

  type tree = { sp : span; children : tree list }

  (** Fold a recording into its span forest: roots are the spans whose
      parent is not in the recording; children are ordered by start time.
      Events are dropped (they carry no duration). *)
  let forest_of (records : record list) : tree list =
    let spans = List.filter_map (function RSpan s -> Some s | REvent _ -> None) records in
    let ids = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace ids s.id ()) spans;
    let by_parent = Hashtbl.create 64 in
    List.iter
      (fun s ->
        if Hashtbl.mem ids s.parent then
          Hashtbl.replace by_parent s.parent
            (s :: Option.value ~default:[] (Hashtbl.find_opt by_parent s.parent)))
      spans;
    let rec build s =
      let kids =
        List.sort
          (fun a b -> compare a.start_ns b.start_ns)
          (Option.value ~default:[] (Hashtbl.find_opt by_parent s.id))
      in
      { sp = s; children = List.map build kids }
    in
    spans
    |> List.filter (fun s -> not (Hashtbl.mem ids s.parent))
    |> List.sort (fun a b -> compare a.start_ns b.start_ns)
    |> List.map build

  let duration_ns s = s.end_ns -. s.start_ns

  let attr_to_string = function
    | I i -> string_of_int i
    | F f -> Printf.sprintf "%.12g" f
    | S s -> s
    | B b -> string_of_bool b

  let attrs_to_string attrs =
    String.concat " "
      (List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k (attr_to_string v)) attrs)

  (** Human-readable span tree — the explain-plan surface. Each line is
      one span with its duration and attributes; nodes with children also
      report {e coverage}: how much of the parent interval its children
      account for. *)
  let render_forest ?(max_children = 12) (forest : tree list) : string =
    let buf = Buffer.create 1024 in
    let rec go indent { sp; children } =
      Buffer.add_string buf
        (Printf.sprintf "%s%-*s %10.3fms  %s%s\n" indent
           (max 1 (32 - String.length indent))
           (sp.scope ^ "/" ^ sp.name)
           (duration_ns sp /. 1e6)
           (attrs_to_string sp.attrs)
           (match sp.err with Some m -> "  RAISED " ^ m | None -> ""));
      let shown, hidden =
        if List.length children <= max_children then (children, [])
        else begin
          let by_dur =
            List.sort (fun a b -> compare (duration_ns b.sp) (duration_ns a.sp)) children
          in
          let top = List.filteri (fun i _ -> i < max_children) by_dur in
          ( List.filter (fun c -> List.memq c top) children,
            List.filteri (fun i _ -> i >= max_children) by_dur )
        end
      in
      List.iter (go (indent ^ "  ")) shown;
      if hidden <> [] then
        Buffer.add_string buf
          (Printf.sprintf "%s  … %d more spans (%.3fms)\n" indent (List.length hidden)
             (List.fold_left (fun a c -> a +. duration_ns c.sp) 0. hidden /. 1e6));
      if children <> [] && duration_ns sp > 0. then
        Buffer.add_string buf
          (Printf.sprintf "%s  (children cover %.1f%% of %s)\n" indent
             (100.
             *. List.fold_left (fun a c -> a +. duration_ns c.sp) 0. children
             /. duration_ns sp)
             sp.name)
    in
    List.iter (go "") forest;
    Buffer.contents buf

  (* --- the post-mortem dump --- *)

  type dump_dest = Silent | Stderr | File of string

  (* Where automatic dumps go. Library-embedding default: Silent (tests
     raise classified errors on purpose); the CLI and the bench harness
     arm Stderr. SPARSEQ_FLIGHT=stderr|PATH overrides either way. *)
  let flight_dest =
    ref
      (match Sys.getenv_opt "SPARSEQ_FLIGHT" with
      | Some "stderr" -> Stderr
      | Some "" | None -> Silent
      | Some path -> File path)

  let set_flight_dest d = flight_dest := d

  (** The flight recorder's contents as a report: the last N records,
      oldest first, timestamps relative to the first retained record. *)
  let flight_report ~reason () =
    let records = flight_records () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "=== sparseq flight recorder: %s (last %d of %d records) ===\n" reason
         (List.length records) (Atomic.get flight_total));
    (match records with
    | [] -> Buffer.add_string buf "  (no records; tracing disabled or nothing ran)\n"
    | first :: _ ->
        let t0 = record_ts first in
        List.iter
          (fun r ->
            match r with
            | RSpan s ->
                Buffer.add_string buf
                  (Printf.sprintf "  [+%10.3fms] span  %s/%s (id %d, parent %d) %.3fms %s%s\n"
                     ((s.start_ns -. t0) /. 1e6)
                     s.scope s.name s.id s.parent (duration_ns s /. 1e6)
                     (attrs_to_string s.attrs)
                     (match s.err with Some m -> "  RAISED " ^ m | None -> ""))
            | REvent e ->
                Buffer.add_string buf
                  (Printf.sprintf "  [+%10.3fms] event %s/%s (parent %d) %s\n"
                     ((e.ts_ns -. t0) /. 1e6)
                     e.ev_scope e.ev_name e.ev_parent (attrs_to_string e.ev_attrs)))
          records);
    Buffer.add_string buf "=== end of flight recorder ===\n";
    Buffer.contents buf

  (** Dump the flight recorder to the configured destination. Called
      automatically on structured errors and mid-wave poisonings; safe to
      call by hand after any failure. *)
  let dump_flight ~reason () =
    match !flight_dest with
    | Silent -> ()
    | Stderr -> prerr_string (flight_report ~reason ())
    | File path ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (flight_report ~reason ()))

  (** Hook for [Robust]: record the structured error as an event and fire
      the post-mortem dump. *)
  let note_error ~kind msg =
    if !enabled_flag then begin
      event ~scope:"robust" ~attrs:[ ("kind", S kind); ("msg", S msg) ] "error";
      dump_flight ~reason:(kind ^ ": " ^ msg) ()
    end
end

(** Plain-text dump, one metric per line. *)
let snapshot_human () =
  let buf = Buffer.create 1024 in
  (with_registry @@ fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
  |> List.sort compare
  |> List.iter (fun ((scope, n), m) ->
         let name = full_name scope n in
         match m with
         | C c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name (Counter.get c))
         | G g -> Buffer.add_string buf (Printf.sprintf "%-40s %.12g\n" name (Gauge.get g))
         | H h ->
             Buffer.add_string buf
               (Printf.sprintf "%-40s count=%d mean=%.0f p50=%.0f p99=%.0f max=%.0f\n" name
                  (Histogram.count h) (Histogram.mean h) (Histogram.p50 h) (Histogram.p99 h)
                  (Histogram.max_value h)));
  Buffer.contents buf
