(** Zero-dependency metrics for the engine's complexity claims.

    Every theorem the repo reproduces is stated in terms of measurable
    circuit parameters — gate count, depth, fan-out, permanent rows
    (Theorem 6), per-update reach-out (Theorem 8, Corollaries 13/17/20),
    per-answer delay (Theorems 22/24) — yet a claim that is not measured
    cannot be regressed against. This module is the measurement layer:

    - {!Counter} — monotone event counts (updates applied, budgets fired);
    - {!Gauge} — last-written values (gates, depth of the latest circuit);
    - {!Histogram} — log₂-bucketed magnitude distributions, used for
      latencies in nanoseconds and for per-answer work counts;
    - {!Timer} — sugar for timing a thunk into a histogram;
    - a global registry of named scopes ("compile", "dyn", "perm", …) with
      {!snapshot} (machine-readable JSON, no external JSON library) and
      {!snapshot_human} dumps.

    All write paths are gated on a single mutable flag ({!set_enabled}):
    when disabled, an instrumented operation costs one load and branch, so
    the engine's hot paths stay within the ≤5% overhead budget. Metrics are
    process-global and not thread-safe, matching the rest of the engine. *)

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let is_enabled () = !enabled_flag

(** Wall-clock nanoseconds (µs resolution; the finest portable clock the
    sealed environment provides). *)
let now_ns () = Unix.gettimeofday () *. 1e9

(* --- hand-rolled JSON (the environment has no Yojson) --- *)

module Json = struct
  type t =
    | Null
    | B of bool
    | I of int
    | F of float
    | S of string
    | A of t list
    | O of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | B b -> Buffer.add_string buf (if b then "true" else "false")
    | I i -> Buffer.add_string buf (string_of_int i)
    | F f ->
        (* NaN and infinities are not JSON numbers *)
        if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
        else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | S s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | A xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | O fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            write buf x)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf
end

(* --- metric kinds --- *)

module Counter = struct
  type t = { name : string; mutable v : int }

  let make name = { name; v = 0 }
  let incr t = if !enabled_flag then t.v <- t.v + 1
  let add t n = if !enabled_flag then t.v <- t.v + n
  let get t = t.v
  let reset t = t.v <- 0
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let make name = { name; v = 0. }
  let set t x = if !enabled_flag then t.v <- x
  let set_int t i = set t (float_of_int i)
  let get t = t.v
  let reset t = t.v <- 0.
  let name t = t.name
end

(** Log₂-scale histogram over non-negative magnitudes (latencies in
    nanoseconds, per-answer work counts, …). Bucket 0 holds values in
    [0, 1); bucket i ≥ 1 holds [2^(i−1), 2^i). 64 buckets cover every
    magnitude a float can meaningfully carry here. *)
module Histogram = struct
  let nbuckets = 64

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let make name =
    { name; buckets = Array.make nbuckets 0; count = 0; sum = 0.; min_v = 0.; max_v = 0. }

  (** Bucket index of a value: 0 for v < 1, else the exponent e with
      v ∈ [2^(e−1), 2^e), clamped to the last bucket. *)
  let bucket_of v =
    if Float.is_nan v || v < 1.0 then 0
    else
      let _, e = Float.frexp v in
      if e >= nbuckets then nbuckets - 1 else e

  (** Inclusive lower / exclusive upper bound of bucket [i]. *)
  let bucket_lower i = if i <= 0 then 0. else Float.ldexp 1. (i - 1)

  let bucket_upper i = Float.ldexp 1. i

  let observe t v =
    if !enabled_flag then begin
      let v = if Float.is_nan v || v < 0. then 0. else v in
      t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
      if t.count = 0 then begin
        t.min_v <- v;
        t.max_v <- v
      end
      else begin
        if v < t.min_v then t.min_v <- v;
        if v > t.max_v then t.max_v <- v
      end;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v
    end

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
  let min_value t = t.min_v
  let max_value t = t.max_v

  (** Quantile estimate: the upper bound of the smallest bucket whose
      cumulative count reaches q·count, clamped to the exact observed
      maximum. 0 when empty. *)
  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let rank = Float.to_int (Float.ceil (q *. float_of_int t.count)) in
      let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
      let cum = ref 0 and i = ref 0 in
      while !cum < rank && !i < nbuckets do
        cum := !cum + t.buckets.(!i);
        if !cum < rank then incr i
      done;
      Float.min (bucket_upper !i) t.max_v
    end

  let p50 t = quantile t 0.5
  let p99 t = quantile t 0.99

  let reset t =
    Array.fill t.buckets 0 nbuckets 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_v <- 0.;
    t.max_v <- 0.

  let name t = t.name
end

(** Timers are histograms of nanoseconds with a measuring combinator. *)
module Timer = struct
  type t = Histogram.t

  (** Run [f], recording its wall-clock duration (also on exceptions, so a
      failing phase still shows up in the dump). *)
  let time (t : t) f =
    if not !enabled_flag then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> Histogram.observe t (now_ns () -. t0)) f
    end

  let observe_ns = Histogram.observe
end

(* --- the global registry: (scope, name) -> metric --- *)

type metric = C of Counter.t | G of Gauge.t | H of Histogram.t

let registry : (string * string, metric) Hashtbl.t = Hashtbl.create 64

let full_name scope name = scope ^ "/" ^ name

let mismatch scope name =
  invalid_arg (Printf.sprintf "Obs: metric %s already registered with another type" (full_name scope name))

(** Find-or-create; a (scope, name) pair permanently denotes one metric of
    one kind, so modules can bind metrics at load time and tests can look
    the same metrics up by name. *)
let counter ~scope name =
  match Hashtbl.find_opt registry (scope, name) with
  | Some (C c) -> c
  | Some _ -> mismatch scope name
  | None ->
      let c = Counter.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (C c);
      c

let gauge ~scope name =
  match Hashtbl.find_opt registry (scope, name) with
  | Some (G g) -> g
  | Some _ -> mismatch scope name
  | None ->
      let g = Gauge.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (G g);
      g

let histogram ~scope name =
  match Hashtbl.find_opt registry (scope, name) with
  | Some (H h) -> h
  | Some _ -> mismatch scope name
  | None ->
      let h = Histogram.make (full_name scope name) in
      Hashtbl.replace registry (scope, name) (H h);
      h

let timer ~scope name : Timer.t = histogram ~scope name

let find ~scope name = Hashtbl.find_opt registry (scope, name)

let scopes () =
  Hashtbl.fold (fun (s, _) _ acc -> if List.mem s acc then acc else s :: acc) registry []
  |> List.sort compare

let reset_metric = function
  | C c -> Counter.reset c
  | G g -> Gauge.reset g
  | H h -> Histogram.reset h

(** Zero every metric in [scope] (they stay registered). *)
let reset_scope scope =
  Hashtbl.iter (fun (s, _) m -> if s = scope then reset_metric m) registry

let reset_all () = Hashtbl.iter (fun _ m -> reset_metric m) registry

(* --- snapshots --- *)

let metric_json = function
  | C c -> Json.O [ ("type", Json.S "counter"); ("value", Json.I (Counter.get c)) ]
  | G g -> Json.O [ ("type", Json.S "gauge"); ("value", Json.F (Gauge.get g)) ]
  | H h ->
      let buckets =
        List.filter_map
          (fun i ->
            if h.Histogram.buckets.(i) = 0 then None
            else
              Some (Json.A [ Json.F (Histogram.bucket_upper i); Json.I h.Histogram.buckets.(i) ]))
          (List.init Histogram.nbuckets Fun.id)
      in
      Json.O
        [
          ("type", Json.S "histogram");
          ("count", Json.I (Histogram.count h));
          ("sum", Json.F (Histogram.sum h));
          ("mean", Json.F (Histogram.mean h));
          ("min", Json.F (Histogram.min_value h));
          ("max", Json.F (Histogram.max_value h));
          ("p50", Json.F (Histogram.p50 h));
          ("p99", Json.F (Histogram.p99 h));
          ("buckets", Json.A buckets);
        ]

(** The whole registry as one JSON object: scope → name → metric, with
    scopes and names sorted for deterministic output. *)
let snapshot_json () =
  let by_scope = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (s, n) m ->
      Hashtbl.replace by_scope s ((n, m) :: Option.value ~default:[] (Hashtbl.find_opt by_scope s)))
    registry;
  let scope_objs =
    List.map
      (fun s ->
        let entries = List.sort compare (Hashtbl.find by_scope s) in
        (s, Json.O (List.map (fun (n, m) -> (n, metric_json m)) entries)))
      (scopes ())
  in
  Json.O scope_objs

let snapshot () = Json.to_string (snapshot_json ())

(** Plain-text dump, one metric per line. *)
let snapshot_human () =
  let buf = Buffer.create 1024 in
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry []
  |> List.sort compare
  |> List.iter (fun ((scope, n), m) ->
         let name = full_name scope n in
         match m with
         | C c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name (Counter.get c))
         | G g -> Buffer.add_string buf (Printf.sprintf "%-40s %.12g\n" name (Gauge.get g))
         | H h ->
             Buffer.add_string buf
               (Printf.sprintf "%-40s count=%d mean=%.0f p50=%.0f p99=%.0f max=%.0f\n" name
                  (Histogram.count h) (Histogram.mean h) (Histogram.p50 h) (Histogram.p99 h)
                  (Histogram.max_value h)));
  Buffer.contents buf
