(** Finite Σ-structures: a domain {0, …, n−1}, a set of tuples per relation
    symbol with O(1) membership, and total unary functions. This is the
    representation the paper assumes for classes of bounded expansion
    (Section 2): linear size, constant-time tuple membership. *)

type tuple = int list

type t = {
  schema : Schema.t;
  n : int;  (** domain size *)
  tuples : (string, (tuple, unit) Hashtbl.t) Hashtbl.t;
  funcs : (string, int array) Hashtbl.t;
}

let create schema ~n =
  let tuples = Hashtbl.create 16 in
  List.iter (fun (r, _) -> Hashtbl.replace tuples r (Hashtbl.create 64)) schema.Schema.rels;
  let funcs = Hashtbl.create 4 in
  List.iter (fun f -> Hashtbl.replace funcs f (Array.init n Fun.id)) schema.Schema.funcs;
  { schema; n; tuples; funcs }

let schema t = t.schema
let n t = t.n

let rel_table t r =
  match Hashtbl.find_opt t.tuples r with
  | Some tbl -> tbl
  | None -> Robust.bad_input "Instance: unknown relation %s" r

(* Validate on construction: an arity mismatch or out-of-range element id
   fails here with a clear [Bad_input], not as an out-of-bounds crash deep
   inside compilation. *)
let check_tuple t r tup =
  if not (Schema.has_rel t.schema r) then Robust.bad_input "Instance: unknown relation %s" r;
  let a = Schema.arity t.schema r in
  if List.length tup <> a then Robust.bad_input "Instance: %s expects arity %d" r a;
  List.iter
    (fun v ->
      if v < 0 || v >= t.n then
        Robust.bad_input "Instance: element %d out of domain [0, %d)" v t.n)
    tup

(** Add a tuple to relation [r]. A duplicate insert is rejected as
    [Robust.Bad_input]: structural deltas must be unambiguous — the
    incremental-maintenance layer needs every accepted insert to be a
    genuine change, not a silent last-write-wins overwrite. *)
let add t r tup =
  check_tuple t r tup;
  let tbl = rel_table t r in
  if Hashtbl.mem tbl tup then
    Robust.bad_input "Instance: duplicate tuple %s(%s)" r
      (String.concat "," (List.map string_of_int tup));
  Hashtbl.replace tbl tup ()

(** Remove a tuple from relation [r]. Idempotent. *)
let remove t r tup = Hashtbl.remove (rel_table t r) tup

(** O(1) tuple membership. *)
let mem t r tup = Hashtbl.mem (rel_table t r) tup

let cardinality t r = Hashtbl.length (rel_table t r)
let tuples t r = Hashtbl.fold (fun tup () acc -> tup :: acc) (rel_table t r) []
let iter_tuples t r f = Hashtbl.iter (fun tup () -> f tup) (rel_table t r)

(** Total number of tuples across all relations. *)
let size t =
  List.fold_left (fun acc (r, _) -> acc + cardinality t r) 0 t.schema.Schema.rels

let set_func t f tbl =
  if Array.length tbl <> t.n then
    Robust.bad_input "Instance.set_func: table length %d, domain size %d"
      (Array.length tbl) t.n;
  Array.iter
    (fun v ->
      if v < 0 || v >= t.n then
        Robust.bad_input "Instance.set_func: value %d out of domain [0, %d)" v t.n)
    tbl;
  Hashtbl.replace t.funcs f tbl

let func t f =
  match Hashtbl.find_opt t.funcs f with
  | Some tbl -> tbl
  | None -> Robust.bad_input "Instance: unknown function %s" f

let apply_func t f v = (func t f).(v)

(** Unordered element pairs of one tuple, each occurrence once — the unit
    of Gaifman-edge incidence. Both the snapshot graph and the live
    multiplicity counts are built from this same enumeration, so a later
    [delete] removes exactly the incidences its [insert] added. *)
let tuple_pairs (tup : tuple) (f : int -> int -> unit) =
  let rec pairs = function
    | [] -> ()
    | x :: rest ->
        List.iter (fun y -> if x <> y then f x y) rest;
        pairs rest
  in
  pairs tup

(** The Gaifman graph (Section 2): vertices are domain elements; distinct
    elements are adjacent iff they occur together in some tuple (function
    symbols contribute the graphs of the functions). *)
let gaifman t : Graphs.Graph.t =
  let edges = ref [] in
  List.iter
    (fun (r, a) ->
      if a >= 2 then
        iter_tuples t r (fun tup -> tuple_pairs tup (fun x y -> edges := (x, y) :: !edges)))
    t.schema.Schema.rels;
  List.iter
    (fun f ->
      let tbl = func t f in
      Array.iteri (fun v w -> if v <> w then edges := (v, w) :: !edges) tbl)
    t.schema.Schema.funcs;
  Graphs.Graph.of_edges ~n:t.n !edges

(** The Gaifman graph as a live, multiplicity-counted structure: one
    incidence per unordered element pair per tuple occurrence (plus the
    function graphs, one incidence each — functions are replaced whole by
    [set_func], never structurally updated, so their count never drops).
    The starting point for localized incremental recompiles. *)
let live_gaifman t : Graphs.Live.t =
  let live = Graphs.Live.create ~n:t.n in
  List.iter
    (fun (r, a) ->
      if a >= 2 then
        iter_tuples t r (fun tup ->
            tuple_pairs tup (fun x y -> ignore (Graphs.Live.add_edge live x y))))
    t.schema.Schema.rels;
  List.iter
    (fun f ->
      let tbl = func t f in
      Array.iteri (fun v w -> if v <> w then ignore (Graphs.Live.add_edge live v w)) tbl)
    t.schema.Schema.funcs;
  live

(** Is adding/removing this tuple Gaifman-preserving (Section 6)? A tuple
    may be added only if its elements already form a clique in the given
    Gaifman graph; removal always preserves the graph in our model (the
    graph is kept as the union over time). *)
let clique_in g tup =
  let rec pairs = function
    | [] -> true
    | x :: rest ->
        List.for_all (fun y -> x = y || Graphs.Graph.has_edge g x y) rest && pairs rest
  in
  pairs tup

(** Build a graph structure over {E/2} from an undirected graph, with both
    arc directions stored. *)
let of_graph ?(schema = Schema.graph_schema) (g : Graphs.Graph.t) =
  let t = create schema ~n:(Graphs.Graph.n g) in
  Graphs.Graph.iter_edges
    (fun u v ->
      add t "E" [ u; v ];
      add t "E" [ v; u ])
    g;
  t

(** Copy with one extra relation (fresh name) filled with [tuples] —
    used when materializing connective outputs and quantifier witnesses as
    database relations (Theorem 26 induction). *)
let with_relation t r ~arity tuples =
  let schema = Schema.add_rel t.schema (r, arity) in
  let deep_tuples = Hashtbl.create 16 in
  Hashtbl.iter (fun rel tbl -> Hashtbl.replace deep_tuples rel (Hashtbl.copy tbl)) t.tuples;
  let deep_funcs = Hashtbl.create 4 in
  Hashtbl.iter (fun f tbl -> Hashtbl.replace deep_funcs f (Array.copy tbl)) t.funcs;
  let t' = { t with schema; tuples = deep_tuples; funcs = deep_funcs } in
  Hashtbl.replace t'.tuples r (Hashtbl.create (List.length tuples * 2));
  (* materialized answer lists may repeat tuples; the relation is a set,
     so dedup here instead of inheriting [add]'s duplicate rejection *)
  List.iter
    (fun tup ->
      check_tuple t' r tup;
      Hashtbl.replace (rel_table t' r) tup ())
    tuples;
  t'

(** Deep copy (for baselines that mutate). *)
let copy t =
  let tuples = Hashtbl.create 16 in
  Hashtbl.iter (fun r tbl -> Hashtbl.replace tuples r (Hashtbl.copy tbl)) t.tuples;
  let funcs = Hashtbl.create 4 in
  Hashtbl.iter (fun f tbl -> Hashtbl.replace funcs f (Array.copy tbl)) t.funcs;
  { t with tuples; funcs }
