(** S-valued weight functions w : Aʳ → S (paper, Section 3). A weight
    function stores only its nonzero entries; per the paper's requirement,
    a weight of arity r ≥ 2 may be nonzero only on tuples that belong to
    some relation of that arity (so weights live on the Gaifman graph). *)

type 'a t = {
  name : string;
  arity : int;
  zero : 'a;
  table : (int list, 'a) Hashtbl.t;
}

(** Weight symbols beginning with this prefix are reserved for the engine's
    internal query variables (the closure trick in [Engine.Eval.prepare]),
    whose valuation is pinned to zero — a user weight named e.g.
    [__qv_total] would be silently dropped, so such names are rejected. *)
let reserved_prefix = "__qv"

let create ~name ~arity ~zero =
  if String.starts_with ~prefix:reserved_prefix name then
    Robust.bad_input "Weights.create: %s uses the reserved prefix %s (internal query variables)"
      name reserved_prefix;
  { name; arity; zero; table = Hashtbl.create 64 }

let name w = w.name
let arity w = w.arity

(** Look up the weight of a tuple; absent tuples weigh [zero]. *)
let get w tup = match Hashtbl.find_opt w.table tup with Some v -> v | None -> w.zero

(** Set the weight of a tuple (an "update" in the sense of Theorem 8). *)
let set w tup v =
  if List.length tup <> w.arity then
    Robust.bad_input "Weights.set: %s expects arity %d" w.name w.arity;
  Hashtbl.replace w.table tup v

let remove w tup = Hashtbl.remove w.table tup
let iter w f = Hashtbl.iter f w.table
let support w = Hashtbl.fold (fun tup _ acc -> tup :: acc) w.table []
let cardinality w = Hashtbl.length w.table

(** A collection of named weight functions over one semiring. *)
type 'a bundle = (string, 'a t) Hashtbl.t

let bundle (ws : 'a t list) : 'a bundle =
  let h = Hashtbl.create 8 in
  List.iter (fun w -> Hashtbl.replace h w.name w) ws;
  h

let find (b : 'a bundle) name =
  match Hashtbl.find_opt b name with
  | Some w -> w
  | None -> Robust.bad_input "Weights: unknown weight symbol %s" name

let mem_bundle (b : 'a bundle) name = Hashtbl.mem b name

(** Fill a unary weight from a function over the whole domain. *)
let fill_unary w ~n f =
  if w.arity <> 1 then Robust.bad_input "Weights.fill_unary: %s has arity %d, expected 1" w.name w.arity;
  for v = 0 to n - 1 do
    set w [ v ] (f v)
  done

(** Fill a weight from the tuples of a relation. *)
let fill_from_relation w (inst : Instance.t) rel f =
  Instance.iter_tuples inst rel (fun tup -> set w tup (f tup))
