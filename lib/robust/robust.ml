(** Structured errors and resource budgets for the compile → evaluate →
    update pipeline.

    Every failure the engine internals can produce is classified into one
    of five categories, so callers (the CLI, a service wrapper, the fuzz
    harness) can decide programmatically whether to reject the request,
    retry with different parameters, or degrade to the brute-force
    reference evaluator:

    - [Unsupported_fragment] — the query is outside the implemented
      fragment (too many variables per summand, unguarded quantification,
      a forest deeper than the compiler accepts, …). Degradable: the
      reference evaluator still computes the answer.
    - [Budget_exceeded] — a cooperative resource budget (gate count,
      wall-clock) fired during compilation. Degradable.
    - [Ill_typed] — a nested formula mixes semirings or misuses a
      connective. Not degradable: the query itself is meaningless.
    - [Bad_input] — malformed data: arity mismatches, out-of-domain
      elements, unknown relation/weight symbols, wrong query arity.
    - [Internal_divergence] — the engine caught itself misbehaving: the
      self-check found circuit and reference disagreeing, or a fault
      mid-update poisoned a dynamic circuit. Always a bug report. *)

type error =
  | Unsupported_fragment of string
  | Budget_exceeded of string
  | Ill_typed of string
  | Bad_input of string
  | Internal_divergence of string

exception Error of error

let constructor_name = function
  | Unsupported_fragment _ -> "unsupported-fragment"
  | Budget_exceeded _ -> "budget-exceeded"
  | Ill_typed _ -> "ill-typed"
  | Bad_input _ -> "bad-input"
  | Internal_divergence _ -> "internal-divergence"

let message = function
  | Unsupported_fragment m | Budget_exceeded m | Ill_typed m | Bad_input m
  | Internal_divergence m ->
      m

let to_string e = Printf.sprintf "%s: %s" (constructor_name e) (message e)
let pp_error fmt e = Format.pp_print_string fmt (to_string e)

(** Can the reference evaluator still answer after this error? *)
let degradable = function
  | Unsupported_fragment _ | Budget_exceeded _ -> true
  | Ill_typed _ | Bad_input _ | Internal_divergence _ -> false

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Robust.Error (" ^ to_string e ^ ")")
    | _ -> None)

(* Every classified failure is counted per category under the "robust"
   scope, so budget hits and degradations show up in metric snapshots
   rather than only as raised exceptions. *)
let raised_counters =
  List.map
    (fun e -> (constructor_name e, Obs.counter ~scope:"robust" ("raised_" ^ constructor_name e)))
    [
      Unsupported_fragment "";
      Budget_exceeded "";
      Ill_typed "";
      Bad_input "";
      Internal_divergence "";
    ]

let count_error e = Obs.Counter.incr (List.assoc (constructor_name e) raised_counters)

let error e =
  count_error e;
  (* Post-mortem hook: record the failure in the trace stream and flush
     the flight recorder (a no-op unless a dump destination is armed). *)
  Obs.Trace.note_error ~kind:(constructor_name e) (message e);
  raise (Error e)
let bad_input fmt = Printf.ksprintf (fun s -> error (Bad_input s)) fmt
let unsupported fmt = Printf.ksprintf (fun s -> error (Unsupported_fragment s)) fmt
let budget_exceeded fmt = Printf.ksprintf (fun s -> error (Budget_exceeded s)) fmt
let ill_typed fmt = Printf.ksprintf (fun s -> error (Ill_typed s)) fmt
let divergence fmt = Printf.ksprintf (fun s -> error (Internal_divergence s)) fmt

(* --- resource budgets --- *)

(** Limits enforced cooperatively during compilation: the compiler calls
    {!check} as gates are emitted and fails fast with [Budget_exceeded]
    instead of exhausting memory or stalling on a hostile query. *)
type budget = {
  max_gates : int option;  (** circuit gates the compiler may emit *)
  timeout_ms : int option;  (** wall-clock milliseconds for one compile *)
}

let budget ?max_gates ?timeout_ms () = { max_gates; timeout_ms }
let unlimited = { max_gates = None; timeout_ms = None }
let is_unlimited b = b.max_gates = None && b.timeout_ms = None

(** A running budget: the compile start time plus its limits. *)
type monitor = { b : budget; started : float }

let start b = { b; started = Unix.gettimeofday () }

let budget_checks = Obs.counter ~scope:"robust" "budget_checks"

(** Cooperative check-point; raises [Error (Budget_exceeded _)]. *)
let check m ~gates =
  Obs.Counter.incr budget_checks;
  (match m.b.max_gates with
  | Some limit when gates > limit ->
      budget_exceeded "compilation emitted %d gates, budget is %d" gates limit
  | _ -> ());
  match m.b.timeout_ms with
  | Some limit ->
      let elapsed_ms = (Unix.gettimeofday () -. m.started) *. 1000. in
      if elapsed_ms > float_of_int limit then
        budget_exceeded "compilation ran %.1f ms, budget is %d ms" elapsed_ms limit
  | None -> ()

(* --- exception classification --- *)

let contains_any msg subs =
  let lower = String.lowercase_ascii msg in
  List.exists
    (fun sub ->
      let ls = String.lowercase_ascii sub and n = String.length lower in
      let k = String.length ls in
      let rec go i = i + k <= n && (String.sub lower i k = ls || go (i + 1)) in
      go 0)
    subs

(* Legacy [invalid_arg]/[failwith] messages from the internals, sorted into
   the taxonomy by their phrasing. New code raises [Error] directly; this
   is the backstop for paths not yet converted. *)
let classify_message msg =
  if contains_any msg [ "not implemented"; "quantifier"; "supported"; "requires"; "exceeds" ]
  then Unsupported_fragment msg
  else if contains_any msg [ "too large"; "too many" ] then Budget_exceeded msg
  else if contains_any msg [ "semiring"; "boolean"; "type" ] then Ill_typed msg
  else Bad_input msg

(** Classify an arbitrary exception; [None] means "not ours, re-raise". *)
let classify_exn : exn -> error option = function
  | Error e -> Some e
  | Invalid_argument msg | Failure msg -> Some (classify_message msg)
  | Not_found -> Some (Bad_input "lookup failed (Not_found escaped the internals)")
  | Stack_overflow -> Some (Budget_exceeded "stack overflow")
  | Out_of_memory -> Some (Budget_exceeded "out of memory")
  | _ -> None

(** Run [f], converting classified exceptions into [Result.Error]. A
    [classify] hook runs first so callers can map their own exception
    constructors (e.g. [Nested.Ill_typed]) before the generic backstop;
    unrecognized exceptions propagate unchanged. *)
let protect ?(classify = fun _ -> None) (f : unit -> 'a) : ('a, error) result =
  try Ok (f ()) with
  | e -> (
      (* [Error _] was already counted at its raise site; count the legacy
         exceptions the classifiers convert here. *)
      let counted err = (match e with Error _ -> () | _ -> count_error err); Result.Error err in
      match classify e with
      | Some err -> counted err
      | None -> (
          match classify_exn e with
          | Some err -> counted err
          | None -> raise e))
