(** Bi-directional constant-access iterators (paper, Section 5).

    An iterator ranges over a conceptual finite sequence u₁, …, u_l and keeps
    a position i ∈ {0, 1, …, l}, where position 0 is the distinguished ⊥
    state. [current] returns [None] exactly at ⊥; [next] and [prev] move
    cyclically through the l + 1 positions, so a full enumeration is: start
    at ⊥ (or [reset]), call [next] then [current] until ⊥ comes around again.

    All combinators below preserve constant access time: each [next]/[prev]
    performs a number of primitive steps bounded by the (constant) size of
    the combinator expression, never by the length of the sequences. *)

type 'a t = {
  current : unit -> 'a option;
  next : unit -> unit;
  prev : unit -> unit;
  reset : unit -> unit;  (** return to the ⊥ position *)
  is_empty : unit -> bool;  (** true iff the sequence has no elements *)
}

(** Global work counter: every primitive movement of every combinator
    bumps it once, so the tick delta across one top-level [next] measures
    the touched work of producing one element — the observable behind the
    constant-delay claims of Theorems 22/24. A plain increment, cheap
    enough to leave unconditional. *)
let ticks = ref 0

let tick () = incr ticks

let current t = t.current ()
let next t = t.next ()
let prev t = t.prev ()
let reset t = t.reset ()
let is_empty t = t.is_empty ()

(** The empty iterator: permanently at ⊥. *)
let empty =
  {
    current = (fun () -> None);
    next = ignore;
    prev = ignore;
    reset = ignore;
    is_empty = (fun () -> true);
  }

(** Iterator over the elements of an array (in index order). *)
let of_array arr =
  let l = Array.length arr in
  let pos = ref 0 in
  {
    current = (fun () -> if !pos = 0 then None else Some arr.(!pos - 1));
    next = (fun () -> tick (); pos := (!pos + 1) mod (l + 1));
    prev = (fun () -> tick (); pos := (!pos + l) mod (l + 1));
    reset = (fun () -> pos := 0);
    is_empty = (fun () -> l = 0);
  }

let of_list l = of_array (Array.of_list l)

(** Single-element iterator. *)
let singleton v = of_array [| v |]

(** Map a function over an iterator's outputs. *)
let map f t = { t with current = (fun () -> Option.map f (t.current ())) }

(** Live view over a doubly-linked list. The iterator walks the list's
    current nodes; it must not be used across structural updates to the
    list (standard enumeration-phase semantics). *)
let of_dll (d : 'a Dll.t) =
  let pos : 'a Dll.node option ref = ref None in
  {
    current = (fun () -> Option.map (fun (n : 'a Dll.node) -> n.Dll.value) !pos);
    next =
      (fun () ->
        tick ();
        pos := (match !pos with None -> Dll.first d | Some n -> n.Dll.next));
    prev =
      (fun () ->
        tick ();
        pos := (match !pos with None -> Dll.last d | Some n -> n.Dll.prev));
    reset = (fun () -> pos := None);
    is_empty = (fun () -> Dll.is_empty d);
  }

(** Concatenation of a constant number of iterators. Empty components are
    skipped, so the delay is bounded by the number of components. *)
let concat (parts : 'a t list) =
  let parts = Array.of_list parts in
  let k = Array.length parts in
  (* active = -1 at ⊥, else index of the component whose element is current *)
  let active = ref (-1) in
  let rec advance_from j =
    if j >= k then begin
      active := -1 (* wrapped: every later component exhausted *)
    end
    else if parts.(j).is_empty () then advance_from (j + 1)
    else begin
      parts.(j).next ();
      match parts.(j).current () with
      | Some _ -> active := j
      | None -> advance_from (j + 1)
    end
  in
  let rec retreat_from j =
    if j < 0 then active := -1
    else if parts.(j).is_empty () then retreat_from (j - 1)
    else begin
      parts.(j).prev ();
      match parts.(j).current () with
      | Some _ -> active := j
      | None -> retreat_from (j - 1)
    end
  in
  {
    current =
      (fun () -> if !active < 0 then None else parts.(!active).current ());
    next =
      (fun () ->
        tick ();
        if !active < 0 then advance_from 0
        else begin
          let j = !active in
          parts.(j).next ();
          match parts.(j).current () with
          | Some _ -> ()
          | None -> advance_from (j + 1)
        end);
    prev =
      (fun () ->
        tick ();
        if !active < 0 then retreat_from (k - 1)
        else begin
          let j = !active in
          parts.(j).prev ();
          match parts.(j).current () with
          | Some _ -> ()
          | None -> retreat_from (j - 1)
        end);
    reset =
      (fun () ->
        Array.iter (fun p -> p.reset ()) parts;
        active := -1);
    is_empty = (fun () -> Array.for_all (fun p -> p.is_empty ()) parts);
  }

(** Lexicographic product: pairs (a, b) with [a] from the first iterator
    varying slowest. Both components must be resettable; delay is constant
    because advancing past the end of [b] costs O(1) sub-steps. *)
let product (a : 'a t) (b : 'b t) : ('a * 'b) t =
  let at_bot = ref true in
  let cur () =
    if !at_bot then None
    else
      match (a.current (), b.current ()) with
      | Some x, Some y -> Some (x, y)
      | _ -> None
  in
  let enter_first () =
    if a.is_empty () || b.is_empty () then at_bot := true
    else begin
      a.reset ();
      b.reset ();
      a.next ();
      b.next ();
      at_bot := false
    end
  in
  let enter_last () =
    if a.is_empty () || b.is_empty () then at_bot := true
    else begin
      a.reset ();
      b.reset ();
      a.prev ();
      b.prev ();
      at_bot := false
    end
  in
  {
    current = cur;
    next =
      (fun () ->
        tick ();
        if !at_bot then enter_first ()
        else begin
          b.next ();
          match b.current () with
          | Some _ -> ()
          | None ->
              a.next ();
              (match a.current () with
              | Some _ -> b.next () (* b to its first element *)
              | None -> at_bot := true)
        end);
    prev =
      (fun () ->
        tick ();
        if !at_bot then enter_last ()
        else begin
          b.prev ();
          match b.current () with
          | Some _ -> ()
          | None ->
              a.prev ();
              (match a.current () with
              | Some _ -> b.prev () (* b to its last element *)
              | None -> at_bot := true)
        end);
    reset =
      (fun () ->
        a.reset ();
        b.reset ();
        at_bot := true);
    is_empty = (fun () -> a.is_empty () || b.is_empty ());
  }

(** Dependent lexicographic product: pairs (a, b) where the iterator for
    [b] is built from [a] by [mk]. REQUIRES: [mk a] is nonempty for every
    [a] the outer iterator yields — this is exactly the guarantee that the
    column-choice structure of Lemma 39 provides, and it is what makes the
    delay constant. [mk] must run in constant time. *)
let dep_product (outer : 'a t) (mk : 'a -> 'b t) : ('a * 'b) t =
  let inner : 'b t ref = ref empty in
  let at_bot = ref true in
  let enter dir =
    (match dir with `Fwd -> outer.next () | `Bwd -> outer.prev ());
    match outer.current () with
    | None ->
        at_bot := true;
        inner := empty
    | Some a ->
        let it = mk a in
        it.reset ();
        (match dir with `Fwd -> it.next () | `Bwd -> it.prev ());
        inner := it;
        at_bot := false
  in
  {
    current =
      (fun () ->
        if !at_bot then None
        else
          match (outer.current (), !inner.current ()) with
          | Some a, Some b -> Some (a, b)
          | _ -> None);
    next =
      (fun () ->
        tick ();
        if !at_bot then begin
          outer.reset ();
          enter `Fwd
        end
        else begin
          !inner.next ();
          match !inner.current () with Some _ -> () | None -> enter `Fwd
        end);
    prev =
      (fun () ->
        tick ();
        if !at_bot then begin
          outer.reset ();
          enter `Bwd
        end
        else begin
          !inner.prev ();
          match !inner.current () with Some _ -> () | None -> enter `Bwd
        end);
    reset =
      (fun () ->
        outer.reset ();
        inner := empty;
        at_bot := true);
    is_empty = (fun () -> outer.is_empty ());
  }

(** A lazily-(re)built iterator: [make] is called at the first movement
    after each reset. Used where the underlying structure changes between
    enumeration phases (e.g. recursive permanent enumerators). *)
let suspend (make : unit -> 'a t) =
  let state = ref None in
  let force () =
    match !state with
    | Some it -> it
    | None ->
        let it = make () in
        state := Some it;
        it
  in
  {
    current = (fun () -> match !state with None -> None | Some it -> it.current ());
    next = (fun () -> tick (); (force ()).next ());
    prev = (fun () -> tick (); (force ()).prev ());
    reset = (fun () -> state := None);
    is_empty = (fun () -> (force ()).is_empty ());
  }

(** Drain an iterator into a list, starting from ⊥ (for tests: this is a
    full enumeration pass, not a constant-time operation). *)
let to_list t =
  t.reset ();
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    t.next ();
    match t.current () with
    | Some v -> acc := v :: !acc
    | None -> continue := false
  done;
  List.rev !acc

(** Drain backwards from ⊥ using [prev] (tests the bi-directionality). *)
let to_list_rev t =
  t.reset ();
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    t.prev ();
    match t.current () with
    | Some v -> acc := v :: !acc
    | None -> continue := false
  done;
  List.rev !acc

(** Number of elements (full pass). *)
let length t = List.length (to_list t)
