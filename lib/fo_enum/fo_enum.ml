(** Constant-delay enumeration of the answers to a first-order query
    (Theorem 24, re-proving Kazana–Segoufin).

    For a quantifier-free φ(x₁ … x_k), the free-semiring expression

        f = Σ_x̄ [φ(x̄)] · w₁(x₁) ⋯ w_k(x_k),    wᵢ(a) = the generator e(i,a),

    evaluates to the formal sum with exactly one monomial e(1,a₁)⋯e(k,a_k)
    per answer ā. Compiling f (Theorem 6, with boolean constants) and
    enumerating it through the provenance machinery (Theorem 22) yields the
    answers with constant delay and no repetitions, after linear-time
    preprocessing.

    Existential quantifiers whose subformula has at most one free variable
    are eliminated by pointwise materialization into fresh unary relations
    (the guarded fragment of the Theorem 26 induction); other quantifier
    patterns require the full quantifier elimination of Theorem 3 and are
    rejected (see DESIGN.md §3).

    With [~dynamic:true], relation literals are compiled as the v⁺/v⁻
    weights of Lemma 40, so Gaifman-preserving updates ({!set_tuple}) need
    no recompilation: the update is O(1) on the instance and the next
    enumerator reads the current data. *)

type gen = int * int  (** (variable position, element) *)

type t = {
  free_vars : string list;
  prov : gen Provenance.Prov_circuit.t;
  inst : Db.Instance.t;  (** shared; mutable through set_tuple when dynamic *)
  dynamic : bool;
}

let weight_sym i = Printf.sprintf "__enum%d" i

(* Theorem 24 observables (scope "fo_enum"): linear-time preprocessing and
   constant per-answer delay. [answer_work] is the per-answer iterator
   tick delta — the machine-independent form of the constant-delay claim;
   [answer_ns] its wall-clock shadow. *)
let m_prepares = Obs.counter ~scope:"fo_enum" "prepares"
let m_answers = Obs.counter ~scope:"fo_enum" "answers"
let m_updates = Obs.counter ~scope:"fo_enum" "updates"
let h_prepare_ns = Obs.histogram ~scope:"fo_enum" "prepare_ns"
let h_answer_ns = Obs.histogram ~scope:"fo_enum" "answer_ns"
let h_answer_work = Obs.histogram ~scope:"fo_enum" "answer_work"

(* Copy [inst] with one extra unary relation [r] filled by [holds]. *)
let with_unary_relation inst r holds =
  let n = Db.Instance.n inst in
  let schema = Db.Schema.add_rel (Db.Instance.schema inst) (r, 1) in
  let inst' = Db.Instance.create schema ~n in
  List.iter
    (fun (rel, _) ->
      if rel <> r then
        Db.Instance.iter_tuples inst rel (fun tup -> Db.Instance.add inst' rel tup))
    schema.Db.Schema.rels;
  for a = 0 to n - 1 do
    if holds a then Db.Instance.add inst' r [ a ]
  done;
  inst'

(** Replace ∃-subformulas with at most one free variable by materialized
    unary relations, bottom-up (the Theorem 26 induction restricted to
    guards). Returns the possibly extended instance and the quantifier-free
    rewriting. *)
let materialize_guarded (inst : Db.Instance.t) (f : Logic.Formula.t) :
    Db.Instance.t * Logic.Formula.t =
  if Logic.Formula.is_quantifier_free f then (inst, f)
  else begin
    let inst = ref inst in
    let counter = ref 0 in
    let rec go f =
      match f with
      | Logic.Formula.True | Logic.Formula.False | Logic.Formula.Rel _ | Logic.Formula.Eq _
        ->
          f
      | Logic.Formula.Not g -> Logic.Formula.Not (go g)
      | Logic.Formula.And gs -> Logic.Formula.And (List.map go gs)
      | Logic.Formula.Or gs -> Logic.Formula.Or (List.map go gs)
      | Logic.Formula.Forall (x, g) ->
          go (Logic.Formula.Not (Exists (x, Logic.Formula.Not g)))
      | Logic.Formula.Exists (x, g) -> (
          let g = go g in
          let n = Db.Instance.n !inst in
          let exists_with env =
            let rec any v = v < n && (Logic.Formula.holds !inst ((x, v) :: env) g || any (v + 1)) in
            any 0
          in
          match List.filter (fun y -> y <> x) (Logic.Formula.free_vars_unique g) with
          | [] -> if exists_with [] then Logic.Formula.True else Logic.Formula.False
          | [ y ] ->
              incr counter;
              let r = Printf.sprintf "__mat%d" !counter in
              inst := with_unary_relation !inst r (fun a -> exists_with [ (y, a) ]);
              Logic.Formula.Rel (r, [ Logic.Term.Var y ])
          | _ ->
              Robust.unsupported
                "Fo_enum: quantified subformula with 2+ free variables requires full \
                 quantifier elimination (not implemented; see DESIGN.md)")
    in
    let f' = go f in
    (!inst, f')
  end

(** Preprocess a first-order query for enumeration. [order] fixes the
    output component order (defaults to sorted free variables);
    [dynamic:true] compiles relations as Lemma 40 weights so that
    {!set_tuple} works without recompiling (requires φ quantifier-free). *)
let prepare ?order ?(dynamic = false) ?opt ?budget (inst : Db.Instance.t)
    (phi : Logic.Formula.t) : t =
  Obs.Counter.incr m_prepares;
  Obs.Trace.span ~scope:"fo_enum" "prepare"
    ~attrs:[ ("dynamic", Obs.Trace.B dynamic) ]
  @@ fun () ->
  Obs.Timer.time h_prepare_ns @@ fun () ->
  if dynamic && not (Logic.Formula.is_quantifier_free phi) then
    Robust.unsupported "Fo_enum: dynamic mode requires a quantifier-free query";
  let inst = if dynamic then Db.Instance.copy inst else inst in
  let inst, phi = materialize_guarded inst phi in
  let fv =
    match order with Some o -> o | None -> Logic.Formula.free_vars_unique phi
  in
  let expr =
    Logic.Expr.Sum
      ( fv,
        Logic.Expr.Mul
          (Logic.Expr.Guard phi
          :: List.mapi
               (fun i x -> Logic.Expr.Weight (weight_sym i, [ Logic.Term.Var x ]))
               fv) )
  in
  let dynamic_rels =
    if dynamic then List.map fst (Db.Instance.schema inst).Db.Schema.rels else []
  in
  let prov =
    Provenance.Prov_circuit.prepare ?opt ~dynamic_rels ?budget inst expr ~weight:(fun w tuple ->
        let starts p = String.length w >= String.length p && String.sub w 0 (String.length p) = p in
        let suffix p = String.sub w (String.length p) (String.length w - String.length p) in
        if starts "__enum" then begin
          let i = int_of_string (suffix "__enum") in
          match tuple with
          | [ a ] -> [ [ (i, a) ] ]
          | _ -> invalid_arg "Fo_enum: enumeration weights are unary"
        end
        else if starts "__pos_" then begin
          (* Lemma 40: v⁺_R = [R(ā)], read from the live instance *)
          if Db.Instance.mem inst (suffix "__pos_") tuple then [ [] ] else []
        end
        else if starts "__neg_" then begin
          if Db.Instance.mem inst (suffix "__neg_") tuple then [] else [ [] ]
        end
        else invalid_arg ("Fo_enum: unexpected weight " ^ w))
  in
  { free_vars = fv; prov; inst; dynamic }

(** Checked preparation: every exception the enumeration pipeline can
    raise — unguarded quantification, compile budgets, malformed instances
    — comes back as a classified [Robust.error] instead of escaping. *)
let prepare_checked ?order ?dynamic ?opt ?budget (inst : Db.Instance.t)
    (phi : Logic.Formula.t) : (t, Robust.error) result =
  Robust.protect
    ~classify:(function
      | Logic.Normal.Not_quantifier_free f ->
          Some
            (Robust.Unsupported_fragment
               (Format.asprintf "quantifier inside a compiled guard: %a" Logic.Formula.pp
                  f))
      | _ -> None)
    (fun () -> prepare ?order ?dynamic ?opt ?budget inst phi)

let free_vars t = t.free_vars

(** The (possibly copied/extended) instance the enumerator reads. *)
let instance t = t.inst

let meta t = Provenance.Prov_circuit.meta t.prov

(** Circuit parameters of the Theorem 22 preprocessing output (gate
    count, depth, permanent rows), for observability surfaces. *)
let stats t = Provenance.Prov_circuit.circuit_stats t.prov

(* decode a monomial into an answer tuple *)
let decode k (m : gen Provenance.Free.mono) : int array =
  let ans = Array.make k (-1) in
  List.iter (fun (i, a) -> ans.(i) <- a) m;
  ans

(* Wrap an answer iterator so each movement that lands on an answer
   records its delay and its iterator-tick work into the "fo_enum"
   histograms, and every [answer_sample_every]-th answer also as a trace
   span (sampled: a full enumeration can yield millions of answers, and
   the constant-delay claim needs only a sample to show up in Perfetto).
   Only built when metrics are enabled; the unobserved path is the raw
   iterator. *)
let answer_sample_every = 64

let observe_iter (it : 'a Enum.Iter.t) : 'a Enum.Iter.t =
  let observed move () =
    let t0 = Obs.now_ns () in
    let ticks0 = !Enum.Iter.ticks in
    move ();
    match it.Enum.Iter.current () with
    | Some _ ->
        Obs.Counter.incr m_answers;
        let work = !Enum.Iter.ticks - ticks0 in
        Obs.Histogram.observe h_answer_ns (Obs.elapsed_ns t0);
        Obs.Histogram.observe h_answer_work (float_of_int work);
        if Obs.Counter.get m_answers mod answer_sample_every = 0 then
          Obs.Trace.complete ~scope:"fo_enum" "answer" ~start_ns:t0
            ~attrs:[ ("work", Obs.Trace.I work) ]
    | None -> ()
  in
  {
    it with
    Enum.Iter.next = observed it.Enum.Iter.next;
    prev = observed it.Enum.Iter.prev;
  }

(** A fresh constant-delay enumerator over the answers (each exactly
    once). *)
let enumerate t : int array Enum.Iter.t =
  let it =
    Enum.Iter.map (decode (List.length t.free_vars)) (Provenance.Prov_circuit.enumerate t.prov)
  in
  if Obs.is_enabled () then observe_iter it else it

(** All answers as a list (a full enumeration pass, for tests and small
    outputs). *)
let answers t = Enum.Iter.to_list (enumerate t)

(** Gaifman-preserving update (dynamic mode only): add or remove a tuple
    of an existing relation whose elements already form a clique of the
    Gaifman graph. O(1) plus the clique check; enumerators created
    afterwards see the new data, with no recompilation. *)
let set_tuple t ?gaifman rel tuple present =
  if not t.dynamic then
    Robust.bad_input "Fo_enum.set_tuple: prepare with ~dynamic:true for updates";
  Obs.Counter.incr m_updates;
  if present then begin
    let g = match gaifman with Some g -> g | None -> Db.Instance.gaifman t.inst in
    if not (Db.Instance.clique_in g tuple) then
      Robust.bad_input "Fo_enum.set_tuple: tuple would change the Gaifman graph";
    (* set semantics: setting an already-present tuple is a no-op, unlike
       the strict [Instance.add] used by structural deltas *)
    if not (Db.Instance.mem t.inst rel tuple) then Db.Instance.add t.inst rel tuple
  end
  else Db.Instance.remove t.inst rel tuple
