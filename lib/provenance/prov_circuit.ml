(** Evaluation of circuits in the free semiring with iterator-represented
    elements (Theorem 22).

    The circuit is evaluated bottom-up into a DAG of iterators: additions
    become concatenations, multiplications become products mapped through
    monomial multiplication, and permanent gates become the constant-delay
    permanent enumerators of Lemma 23. Gates may be shared between parents
    (the optimizer's hash-consing makes sharing common even for non-leaf
    gates), but [build] constructs a {e fresh} iterator per reference —
    sharing in the circuit never aliases stateful iterators, so no
    iterator ever appears in two simultaneously-active positions.

    Constants must be the booleans 0 and 1 of the compilation (false ↦
    empty iterator, true ↦ the single empty monomial) — exactly what
    [Engine.Compile] emits when compiling with [~zero:false ~one:true]. *)

let eval (type g) (circuit : bool Circuits.Circuit.t)
    ~(leaf : Circuits.Circuit.input_key -> g Free.mono Enum.Iter.t) :
    g Free.mono Enum.Iter.t =
  let nodes = circuit.Circuits.Circuit.nodes in
  let rec build id : g Free.mono Enum.Iter.t =
    match nodes.(id) with
    | Circuits.Circuit.Input key -> leaf key
    | Circuits.Circuit.Const false -> Enum.Iter.empty
    | Circuits.Circuit.Const true -> Enum.Iter.singleton Free.mono_one
    | Circuits.Circuit.Add gs -> Enum.Iter.concat (List.map build (Array.to_list gs))
    | Circuits.Circuit.Mul gs ->
        Array.fold_left
          (fun acc g ->
            Enum.Iter.map (fun (a, b) -> Free.mono_mul a b) (Enum.Iter.product acc (build g)))
          (Enum.Iter.singleton Free.mono_one)
          gs
    | Circuits.Circuit.Perm rows ->
        let entries = Array.map (Array.map build) rows in
        Perm.Enum_perm.enumerate
          (Perm.Enum_perm.create ~mul:Free.mono_mul ~one:Free.mono_one entries)
  in
  build circuit.Circuits.Circuit.output

(** Prepared provenance query: compile once (linear time), then build
    monomial enumerators against the current weight valuation. A weight
    update is recorded in O(1); the next [enumerate] rebuilds the iterator
    DAG in time linear in the circuit (see DESIGN.md §3 for how this
    relates to the paper's fully-dynamic variant). *)
type 'g t = {
  circuit : bool Circuits.Circuit.t;
  meta : Engine.Compile.meta;
  weights : (Circuits.Circuit.input_key, 'g Free.mono list) Hashtbl.t;
      (** current value of each weight as an explicit monomial list *)
  default : Circuits.Circuit.input_key -> 'g Free.mono list;
}

(** [prepare inst expr ~weight] compiles Σ-expression [expr] (over boolean
    constants) and installs [weight] as the initial valuation: the list of
    monomials of each weight's value (often a singleton identifier). *)
let prepare ?opt ?(dynamic_rels = []) ?(budget = Robust.unlimited) (inst : Db.Instance.t)
    (expr : bool Logic.Expr.t) ~(weight : string -> int list -> 'g Free.mono list) :
    'g t =
  let circuit, meta =
    Engine.Compile.compile ~zero:false ~one:true ?opt ~dynamic_rels ~budget inst expr
  in
  {
    circuit;
    meta;
    weights = Hashtbl.create 256;
    default = (fun (w, tuple) -> weight w tuple);
  }

(** Update one weight to a new free-semiring value (list of monomials).
    O(1): recorded in an overlay consulted at the next enumeration. *)
let update t (w : string) (tuple : int list) (value : 'g Free.mono list) =
  Hashtbl.replace t.weights (w, tuple) value

let current t key =
  match Hashtbl.find_opt t.weights key with Some v -> v | None -> t.default key

(** A fresh constant-delay enumerator for the monomials of the query value
    under the current weights. *)
let enumerate t : 'g Free.mono Enum.Iter.t =
  eval t.circuit ~leaf:(fun key -> Enum.Iter.of_list (current t key))

let meta t = t.meta

(** Parameters of the compiled circuit the enumerators walk (the
    Theorem 22 preprocessing output), for observability surfaces. *)
let circuit_stats t = Circuits.Circuit.stats t.circuit
