(** The free commutative semiring F_A (provenance semiring, Section 5),
    in two representations:

    - {b explicit}: an element is a sorted list of monomials, each a sorted
      list of generators — exact but possibly huge; used as the test oracle
      and for provenance of small instances;
    - {b enumerated}: an element is an iterator over its monomials
      (repetitions allowed), the representation Theorem 22 computes with.

    Generators are polymorphic; FO enumeration instantiates them with
    (variable index, element) pairs, provenance analysis with edge or tuple
    identifiers. *)

type 'g mono = 'g list
(** A monomial: a multiset of generators, kept sorted. *)

let mono_one : 'g mono = []
let mono_mul (a : 'g mono) (b : 'g mono) : 'g mono = List.merge compare a b
let mono_of_list l = List.sort compare l

(** Explicit free-semiring elements: multisets of monomials as sorted
    lists. This IS a commutative semiring, packaged for reuse of the
    generic machinery (the test oracle for Theorem 22). *)
module Explicit = struct
  type 'g t = 'g mono list  (* sorted *)

  let zero : 'g t = []
  let one : 'g t = [ mono_one ]
  let of_mono m : 'g t = [ m ]
  let add (a : 'g t) (b : 'g t) : 'g t = List.merge compare a b

  let mul (a : 'g t) (b : 'g t) : 'g t =
    List.sort compare (List.concat_map (fun ma -> List.map (fun mb -> mono_mul ma mb) b) a)

  let equal a b = a = b

  let pp pp_gen fmt (x : 'g t) =
    match x with
    | [] -> Format.pp_print_string fmt "0"
    | _ ->
        Format.pp_print_list
          ~pp_sep:(fun f () -> Format.pp_print_string f " + ")
          (fun f m ->
            match m with
            | [] -> Format.pp_print_string f "1"
            | _ ->
                Format.pp_print_list
                  ~pp_sep:(fun f () -> Format.pp_print_string f "·")
                  pp_gen f m)
          fmt x

  (** First-class ops for a fixed generator type (for circuit evaluation
      as a test oracle). *)
  let ops () : 'g t Semiring.Intf.ops =
    {
      Semiring.Intf.zero;
      one;
      add;
      mul;
      equal;
      neg = None;
      elements = None;
      repr = Boxed_repr;
    }
end
