(** Constant-update permanent for finite semirings (Lemma 18 /
    Corollary 20). The permanent of a k × n matrix M depends only on the
    number of occurrences of each tuple c ∈ Sᵏ as a column of M: grouping
    the injective row→column assignments by the column *type* each row
    lands on,

      perm(M) = Σ over g : rows → types of
                  (Π over types t of P(n_t, size of g⁻¹(t))) · Π_r g(r)[r],

    where P(n, j) = n(n−1)⋯(n−j+1) counts ordered picks of distinct columns
    within a type. The integer scalings c · s exploit the lasso structure
    of the sequence (m · s)_m (Claim 2): it is ultimately periodic with
    preperiod and period at most the semiring size, so c · s is computed
    from c's saturated value and c mod lcm-of-periods in O(1) for a fixed
    semiring. Updates adjust two counters; queries are independent of n. *)

type 'a ctx = {
  ops : 'a Semiring.Intf.ops;
  elems : 'a array;
  lassos : (int * int * 'a array) array;  (** per element: preperiod, period, prefix *)
  modulus : int;  (** lcm of all periods *)
}

let index_of ctx x =
  let open Semiring.Intf in
  let n = Array.length ctx.elems in
  let rec go i =
    if i >= n then invalid_arg "Finite_perm: value not in elements"
    else if ctx.ops.equal ctx.elems.(i) x then i
    else go (i + 1)
  in
  go 0

let make_ctx (ops : 'a Semiring.Intf.ops) : 'a ctx =
  let open Semiring.Intf in
  let elems =
    match ops.elements with
    | Some es -> Array.of_list es
    | None -> invalid_arg "Finite permanent requires a finite semiring"
  in
  let lasso s =
    (* walk zero, s, 2s, ... until a repeat; O(|S|²) once per create *)
    let seq = ref [ ops.zero ] in
    let rec find cur len =
      let next = ops.add cur s in
      let arr = Array.of_list (List.rev !seq) in
      let rec scan j =
        if j >= Array.length arr then -1 else if ops.equal arr.(j) next then j else scan (j + 1)
      in
      let j = scan 0 in
      if j >= 0 then (j, len - j, arr)
      else begin
        seq := next :: !seq;
        find next (len + 1)
      end
    in
    find ops.zero 1
  in
  let lassos = Array.map lasso elems in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let lcm a b = a / gcd a b * b in
  let modulus = Array.fold_left (fun m (_, per, _) -> lcm m per) 1 lassos in
  { ops; elems; lassos; modulus }

(* Counts that may exceed machine range: saturated low part (enough to
   compare with preperiods) plus the value mod [ctx.modulus]. *)
type count = { low : int; modm : int }

let cap = 1 lsl 40
let count_of_int ctx n = { low = min n cap; modm = n mod ctx.modulus }

let count_mul ctx a b =
  {
    low = (if a.low >= cap || b.low >= cap || a.low * b.low >= cap then cap else a.low * b.low);
    modm = a.modm * b.modm mod ctx.modulus;
  }

(** c · s using the lasso of s. *)
let scale ctx (c : count) (s : 'a) : 'a =
  let ei = index_of ctx s in
  let pre, per, prefix = ctx.lassos.(ei) in
  if c.low < cap && c.low < pre + per then prefix.(c.low)
  else begin
    let r = (((c.modm - pre) mod per) + per) mod per in
    prefix.(pre + r)
  end

type 'a t = {
  ctx : 'a ctx;
  k : int;
  n : int;
  counts : int array;  (** per column-type index *)
  col_type : int array;  (** column → type index *)
  entries : int array array;  (** column → element indices, n × k *)
}

let ntypes ctx k =
  let ne = Array.length ctx.elems in
  let rec pow acc i = if i = 0 then acc else pow (acc * ne) (i - 1) in
  let t = pow 1 k in
  if t > 1 lsl 22 then invalid_arg "Finite_perm: |S|^k too large";
  t

let type_index ctx (col : int array) =
  let ne = Array.length ctx.elems in
  Array.fold_right (fun ei acc -> (acc * ne) + ei) col 0

let type_entry ctx tidx r =
  let ne = Array.length ctx.elems in
  let rec go t i = if i = 0 then t mod ne else go (t / ne) (i - 1) in
  ctx.elems.(go tidx r)

(* Gate-strategy counters (scope "perm"): the constant-update counting
   strategy of Corollary 20, and how many batched entry points amortize
   those updates. *)
let m_creates = Obs.counter ~scope:"perm" "finite_creates"
let m_sets = Obs.counter ~scope:"perm" "finite_sets"
let m_batches = Obs.counter ~scope:"perm" "finite_batches"

let create (ops : 'a Semiring.Intf.ops) (m : 'a array array) : 'a t =
  let ctx = make_ctx ops in
  let k = Array.length m in
  let n = if k = 0 then 0 else Array.length m.(0) in
  let counts = Array.make (ntypes ctx k) 0 in
  let entries = Array.init n (fun c -> Array.init k (fun r -> index_of ctx m.(r).(c))) in
  let col_type = Array.map (type_index ctx) entries in
  Array.iter (fun t -> counts.(t) <- counts.(t) + 1) col_type;
  Obs.Counter.incr m_creates;
  { ctx; k; n; counts; col_type; entries }

(** Undo log for transactional callers: prior entry indices, column types
    and counter moves are recorded as they happen; {!undo_apply} reverses
    them so the structure returns bit-for-bit to its pre-batch state. *)
type 'a undo = {
  mutable u_entries : (int * int * int) list;  (** (col, row, prior element index) *)
  mutable u_types : (int * int) list;  (** (col, prior type index) *)
  mutable u_counts : (int * int) list;  (** applied counter moves (old type, new type) *)
}

let undo_create () = { u_entries = []; u_types = []; u_counts = [] }

(** Reverse every logged mutation. Counter moves are each other's inverses
    regardless of order; entry and type restores run newest-first so the
    oldest (pre-transaction) value of a twice-logged cell wins. *)
let undo_apply t (u : 'a undo) =
  List.iter
    (fun (old_t, new_t) ->
      t.counts.(new_t) <- t.counts.(new_t) - 1;
      t.counts.(old_t) <- t.counts.(old_t) + 1)
    u.u_counts;
  List.iter (fun (c, tp) -> t.col_type.(c) <- tp) u.u_types;
  List.iter (fun (c, r, e) -> t.entries.(c).(r) <- e) u.u_entries;
  u.u_counts <- [];
  u.u_types <- [];
  u.u_entries <- []

let log_entry undo c r prior =
  match undo with Some u -> u.u_entries <- (c, r, prior) :: u.u_entries | None -> ()

let log_retype undo c old_t new_t =
  match undo with
  | Some u ->
      u.u_types <- (c, old_t) :: u.u_types;
      u.u_counts <- (old_t, new_t) :: u.u_counts
  | None -> ()

(* Single-entry core over a pre-resolved element index: bounds and value
   were validated (and the index computed) before any mutation. *)
(* single-entry sets happen once per touched permanent gate per wave —
   too hot for an atomic RMW each, so they count through the blocked
   single-writer front; multi-entry flushes publish exactly via [add] *)
let m_sets_local = Obs.Counter.Local.make m_sets

let set_idx t undo ~row ~col vi =
  Obs.Counter.Local.bump m_sets_local;
  let old_t = t.col_type.(col) in
  log_entry undo col row t.entries.(col).(row);
  t.entries.(col).(row) <- vi;
  let new_t = type_index t.ctx t.entries.(col) in
  if new_t <> old_t then begin
    log_retype undo col old_t new_t;
    t.counts.(old_t) <- t.counts.(old_t) - 1;
    t.counts.(new_t) <- t.counts.(new_t) + 1;
    t.col_type.(col) <- new_t
  end

let set_impl t undo ~row ~col v =
  if row < 0 || row >= t.k then invalid_arg "Finite_perm.set: bad row";
  if col < 0 || col >= t.n then invalid_arg "Finite_perm.set: bad col";
  let vi = index_of t.ctx v in
  set_idx t undo ~row ~col vi

(** O(1)-per-entry update (Corollary 20). *)
let set t ~row ~col v = set_impl t None ~row ~col v

(** Batched entry update: group writes by column, then adjust the type
    counters once per touched column instead of once per entry. Later
    entries win on duplicate (row, col) targets, matching sequential
    application order. Every update — bounds {e and} element membership —
    is validated before any column is written, so an [invalid_arg] leaves
    the structure untouched. *)
let set_many_impl t undo (updates : (int * int * 'a) list) =
  match updates with
  | [] -> ()
  | [ (row, col, v) ] -> set_impl t undo ~row ~col v
  | _ ->
      let writes = List.length updates in
      Obs.Counter.incr m_batches;
      (* one atomic add for the whole flush — a wave flushes one batch per
         touched permanent gate, and a per-entry incr put an atomic RMW on
         every pending write *)
      Obs.Counter.add m_sets writes;
      Obs.Trace.span_hot ~scope:"perm" "finite.flush"
        ~attrs:[ ("writes", Obs.Trace.I writes); ("k", Obs.Trace.I t.k) ]
      @@ fun () ->
      let resolved =
        List.map
          (fun (row, col, v) ->
            if row < 0 || row >= t.k then invalid_arg "Finite_perm.set_many: bad row";
            if col < 0 || col >= t.n then invalid_arg "Finite_perm.set_many: bad col";
            (row, col, index_of t.ctx v))
          updates
      in
      let by_col =
        List.stable_sort (fun (_, c1, _) (_, c2, _) -> Int.compare c1 c2) resolved
      in
      let rec run = function
        | [] -> ()
        | (row, col, vi) :: rest ->
            let old_t = t.col_type.(col) in
            log_entry undo col row t.entries.(col).(row);
            t.entries.(col).(row) <- vi;
            let rec eat = function
              | (r2, c2, v2) :: more when c2 = col ->
                  log_entry undo col r2 t.entries.(col).(r2);
                  t.entries.(col).(r2) <- v2;
                  eat more
              | more -> more
            in
            let rest = eat rest in
            let new_t = type_index t.ctx t.entries.(col) in
            if new_t <> old_t then begin
              log_retype undo col old_t new_t;
              t.counts.(old_t) <- t.counts.(old_t) - 1;
              t.counts.(new_t) <- t.counts.(new_t) + 1;
              t.col_type.(col) <- new_t
            end;
            run rest
      in
      run by_col

let set_many t updates = set_many_impl t None updates

(** Like {!set_many}, appending every prior cell to [u] before overwriting
    it — even a batch interrupted mid-flight stays fully covered by the
    log, so [undo_apply t u] restores the pre-batch structure exactly. *)
let set_many_logged t (u : 'a undo) updates = set_many_impl t (Some u) updates

let get t ~row ~col = t.ctx.elems.(t.entries.(col).(row))

(** Permanent from the counts: independent of n. *)
let perm t =
  let open Semiring.Intf in
  let ops = t.ctx.ops in
  if t.k = 0 then ops.one
  else begin
    let present = ref [] in
    Array.iteri (fun tidx c -> if c > 0 then present := tidx :: !present) t.counts;
    let present = !present in
    let acc = ref ops.zero in
    let assignment = Array.make t.k 0 in
    let rec go r =
      if r = t.k then begin
        let mult = Hashtbl.create 8 in
        Array.iter
          (fun tidx ->
            Hashtbl.replace mult tidx (1 + Option.value ~default:0 (Hashtbl.find_opt mult tidx)))
          assignment;
        let ways = ref (count_of_int t.ctx 1) in
        Hashtbl.iter
          (fun tidx j ->
            let n_t = t.counts.(tidx) in
            for i = 0 to j - 1 do
              ways := count_mul t.ctx !ways (count_of_int t.ctx (max 0 (n_t - i)))
            done)
          mult;
        let entry_prod = ref ops.one in
        Array.iteri
          (fun r tidx -> entry_prod := ops.mul !entry_prod (type_entry t.ctx tidx r))
          assignment;
        acc := ops.add !acc (scale t.ctx !ways !entry_prod)
      end
      else
        List.iter
          (fun tidx ->
            assignment.(r) <- tidx;
            go (r + 1))
          present
    in
    go 0;
    !acc
  end

(** Functor sugar over a statically-known finite semiring. *)
module Make (S : Semiring.Intf.FINITE) = struct
  type nonrec t = S.t t

  let ops = Semiring.Intf.ops_of_finite (module S)
  let create m = create ops m
  let perm = perm
  let set = set
  let set_many = set_many
  let get = get
end
