(** Dynamic permanent for arbitrary semirings — the computational content
    of Lemma 10 / Lemma 11. A balanced segment tree over the columns stores
    at every node, for each subset S of the k rows, the permanent of the
    submatrix (S × columns-under-the-node); merging two children is the
    subset convolution

        node.(S) = Σ over T ⊆ S of left.(T) · right.(S minus T),

    which is identity (3) of Lemma 10 applied recursively. Building costs
    O(3ᵏ n); a single-entry update recomputes one leaf-to-root path,
    O(3ᵏ log n) — the logarithmic update of Corollary 13, tight for general
    semirings by Proposition 14. *)

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  k : int;
  n : int;
  size : int;  (** number of leaves (≥ n, a power of two) *)
  nodes : 'a array array;  (** heap-ordered; nodes.(i).(mask) *)
  columns : 'a array array;  (** current column vectors, n × k *)
}

(* Gate-strategy counters (scope "perm"): how often the logarithmic
   segment-tree strategy is instantiated and hit by updates, and how many
   batched entry points amortize those updates. *)
let m_creates = Obs.counter ~scope:"perm" "segtree_creates"
let m_sets = Obs.counter ~scope:"perm" "segtree_sets"
let m_batches = Obs.counter ~scope:"perm" "segtree_batches"

let full t = (1 lsl t.k) - 1

let leaf_vector ops k col =
  let v = Array.make (1 lsl k) ops.Semiring.Intf.zero in
  v.(0) <- ops.Semiring.Intf.one;
  for r = 0 to k - 1 do
    v.(1 lsl r) <- col.(r)
  done;
  v

let neutral_vector ops k =
  let v = Array.make (1 lsl k) ops.Semiring.Intf.zero in
  v.(0) <- ops.Semiring.Intf.one;
  v

let merge ops k a b =
  let open Semiring.Intf in
  let res = Array.make (1 lsl k) ops.zero in
  let fullmask = (1 lsl k) - 1 in
  for mask = 0 to fullmask do
    let acc = ref ops.zero in
    List.iter
      (fun sub -> acc := ops.add !acc (ops.mul a.(sub) b.(mask lxor sub)))
      (Subsets.subsets_of mask);
    res.(mask) <- !acc
  done;
  res

(** Build from a k × n matrix given as rows. *)
let create (ops : 'a Semiring.Intf.ops) (m : 'a array array) : 'a t =
  let k = Array.length m in
  let n = if k = 0 then 0 else Array.length m.(0) in
  let size =
    let s = ref 1 in
    while !s < max n 1 do
      s := !s * 2
    done;
    !s
  in
  let columns = Array.init n (fun c -> Array.init k (fun r -> m.(r).(c))) in
  let nodes = Array.make (2 * size) (neutral_vector ops k) in
  for c = 0 to n - 1 do
    nodes.(size + c) <- leaf_vector ops k columns.(c)
  done;
  for c = n to size - 1 do
    nodes.(size + c) <- neutral_vector ops k
  done;
  for i = size - 1 downto 1 do
    nodes.(i) <- merge ops k nodes.(2 * i) nodes.((2 * i) + 1)
  done;
  Obs.Counter.incr m_creates;
  { ops; k; n; size; nodes; columns }

(** Current permanent: O(1) read at the root. *)
let perm t = t.nodes.(1).(full t)

(** Permanent of the submatrix restricted to the row subset [mask]. *)
let perm_rows t mask = t.nodes.(1).(mask land full t)

(* Rebuild the leaf-to-root paths of a sorted list of leaf indices from
   the current column vectors: rebuild each touched leaf once, then merge
   the touched internal nodes level by level. Shared by batched updates
   (hot path) and {!undo_apply} (cold path). *)
let rebuild_paths t (leaves : int list) =
  List.iter (fun i -> t.nodes.(i) <- leaf_vector t.ops t.k t.columns.(i - t.size)) leaves;
  (* Halving a sorted list keeps it sorted, so each level only needs an
     adjacent-duplicate sweep — no re-sorting while climbing. *)
  let rec dedup = function
    | a :: (b :: _ as rest) -> if a = b then dedup rest else a :: dedup rest
    | l -> l
  in
  let rec climb nodes =
    match dedup (List.filter_map (fun i -> if i > 1 then Some (i / 2) else None) nodes) with
    | [] -> ()
    | parents ->
        List.iter
          (fun i -> t.nodes.(i) <- merge t.ops t.k t.nodes.(2 * i) t.nodes.((2 * i) + 1))
          parents;
        climb parents
  in
  climb leaves

(** Undo log for transactional callers: every column write records the
    prior scalar before it is overwritten. Node arrays are {e not} logged —
    the hot path stays one cons per write, and {!undo_apply} (the cold
    path) rebuilds the touched leaf-to-root paths from the restored
    columns instead, which recovers the structure even when a batch died
    with only some of its nodes remerged. *)
type 'a undo = { mutable u_cols : (int * int * 'a) list }
    (** (col, row, prior scalar), newest first *)

let undo_create () = { u_cols = [] }

(** Restore every logged column cell (newest-first, so when the same cell
    was logged twice the oldest, pre-transaction value wins), then rebuild
    the touched paths from the restored columns. *)
let undo_apply t (u : 'a undo) =
  List.iter (fun (c, r, v) -> t.columns.(c).(r) <- v) u.u_cols;
  let leaves =
    List.sort_uniq Int.compare (List.map (fun (c, _, _) -> t.size + c) u.u_cols)
  in
  rebuild_paths t leaves;
  u.u_cols <- []

let log_col undo c r prior =
  match undo with Some u -> u.u_cols <- (c, r, prior) :: u.u_cols | None -> ()

(* single-entry sets happen once per touched permanent gate per wave —
   too hot for an atomic RMW each, so they count through the blocked
   single-writer front; multi-entry flushes publish exactly via [add] *)
let m_sets_local = Obs.Counter.Local.make m_sets

let set_impl t undo ~row ~col v =
  if row < 0 || row >= t.k then invalid_arg "Segtree.set: bad row";
  if col < 0 || col >= t.n then invalid_arg "Segtree.set: bad col";
  Obs.Counter.Local.bump m_sets_local;
  log_col undo col row t.columns.(col).(row);
  t.columns.(col).(row) <- v;
  let i = ref (t.size + col) in
  t.nodes.(!i) <- leaf_vector t.ops t.k t.columns.(col);
  i := !i / 2;
  while !i >= 1 do
    t.nodes.(!i) <- merge t.ops t.k t.nodes.(2 * !i) t.nodes.((2 * !i) + 1);
    i := !i / 2
  done

(** Update a single entry (Theorem 8's weight update): O(3ᵏ log n). *)
let set t ~row ~col v = set_impl t None ~row ~col v

(** Batched entry update: apply every write, rebuild each touched leaf
    once, then merge the touched internal nodes level by level — every
    leaf-to-root path segment is recomputed exactly once even when many
    entries (or many rows of the same column) change in one batch. Cost
    O(3ᵏ · touched-nodes) instead of O(3ᵏ · updates · log n) for the
    equivalent sequence of {!set}s; later entries win on duplicate
    (row, col) targets, matching sequential application order. Every
    update is validated before any column is written, so an [invalid_arg]
    leaves the structure untouched. *)
let set_many_impl t undo (updates : (int * int * 'a) list) =
  match updates with
  | [] -> ()
  | [ (row, col, v) ] -> set_impl t undo ~row ~col v
  | _ ->
      let writes = List.length updates in
      Obs.Counter.incr m_batches;
      (* one atomic add for the whole flush — a wave flushes one batch per
         touched permanent gate, and a per-entry incr put an atomic RMW on
         every pending write *)
      Obs.Counter.add m_sets writes;
      Obs.Trace.span_hot ~scope:"perm" "segtree.flush"
        ~attrs:[ ("writes", Obs.Trace.I writes); ("k", Obs.Trace.I t.k) ]
      @@ fun () ->
      List.iter
        (fun (row, col, _) ->
          if row < 0 || row >= t.k then invalid_arg "Segtree.set_many: bad row";
          if col < 0 || col >= t.n then invalid_arg "Segtree.set_many: bad col")
        updates;
      List.iter
        (fun (row, col, v) ->
          log_col undo col row t.columns.(col).(row);
          t.columns.(col).(row) <- v)
        updates;
      let leaves =
        List.sort_uniq Int.compare (List.map (fun (_, col, _) -> t.size + col) updates)
      in
      rebuild_paths t leaves

let set_many t updates = set_many_impl t None updates

(** Like {!set_many}, appending every prior cell to [u] before overwriting
    it — even a batch interrupted mid-flight stays fully covered by the
    log, so [undo_apply t u] restores the pre-batch structure exactly. *)
let set_many_logged t (u : 'a undo) updates = set_many_impl t (Some u) updates

let get t ~row ~col = t.columns.(col).(row)

(** Functor sugar over a statically-known semiring. *)
module Make (S : Semiring.Intf.BASIC) = struct
  type nonrec t = S.t t

  let ops = Semiring.Intf.ops_of_module (module S)
  let create m = create ops m
  let perm = perm
  let perm_rows = perm_rows
  let set = set
  let set_many = set_many
  let get = get
end
