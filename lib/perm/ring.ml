(** Constant-update permanent for rings (Lemma 15 / Corollary 17). By
    inclusion–exclusion over the coincidence pattern of the column choices,

      perm(M) = Σ over partitions P of the rows, of
                Π over blocks B in P, of (−1)^(size B − 1) · (size B − 1)! · s_B,

    where s_B = Σ_c Π over r in B of M[r,c] is a "power sum". The structure
    maintains the 2ᵏ−1 power sums; a single-entry update touches the 2ᵏ⁻¹
    sums containing that row (constant for fixed k), and the permanent is
    recomputed from the power sums in O_k(1). *)

(* Gate-strategy counters (scope "perm"): the constant-update power-sum
   strategy of Corollary 17, and how many batched entry points amortize
   those updates. *)
let m_creates = Obs.counter ~scope:"perm" "ring_creates"
let m_sets = Obs.counter ~scope:"perm" "ring_sets"
let m_batches = Obs.counter ~scope:"perm" "ring_batches"

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  neg : 'a -> 'a;
  k : int;
  n : int;
  sums : 'a array;  (** sums.(mask) = s_mask for nonzero masks *)
  columns : 'a array array;  (** n × k *)
  parts : (int * int) list list;  (** partitions as (block mask, coeff) lists *)
}

(* c · x for an integer c (|c| small, bounded by (k−1)!). *)
let int_mul t c x =
  let open Semiring.Intf in
  let rec go acc c = if c = 0 then acc else go (t.ops.add acc x) (c - 1) in
  if c >= 0 then go t.ops.zero c else t.neg (go t.ops.zero (-c))

let block_coeff mask =
  let b = Subsets.popcount mask in
  let sign = if (b - 1) mod 2 = 0 then 1 else -1 in
  sign * Subsets.factorial (b - 1)

let column_contrib ops k col mask =
  let open Semiring.Intf in
  let acc = ref ops.one in
  for r = 0 to k - 1 do
    if mask land (1 lsl r) <> 0 then acc := ops.mul !acc col.(r)
  done;
  !acc

let create (ops : 'a Semiring.Intf.ops) (m : 'a array array) : 'a t =
  let open Semiring.Intf in
  let neg =
    match ops.neg with
    | Some n -> n
    | None -> invalid_arg "Ring permanent requires a ring (no negation available)"
  in
  let k = Array.length m in
  let n = if k = 0 then 0 else Array.length m.(0) in
  let columns = Array.init n (fun c -> Array.init k (fun r -> m.(r).(c))) in
  let sums = Array.make (1 lsl k) ops.zero in
  for mask = 1 to (1 lsl k) - 1 do
    let acc = ref ops.zero in
    Array.iter (fun col -> acc := ops.add !acc (column_contrib ops k col mask)) columns;
    sums.(mask) <- !acc
  done;
  let parts =
    List.map
      (fun blocks -> List.map (fun b -> (b, block_coeff b)) blocks)
      (Subsets.partitions k)
  in
  Obs.Counter.incr m_creates;
  { ops; neg; k; n; sums; columns; parts }

(** Permanent from the power sums: O(Bell(k) · k), independent of n. *)
let perm t =
  let open Semiring.Intf in
  if t.k = 0 then t.ops.one
  else
    List.fold_left
      (fun acc part ->
        let term =
          List.fold_left
            (fun p (mask, coeff) -> t.ops.mul p (int_mul t coeff t.sums.(mask)))
            t.ops.one part
        in
        t.ops.add acc term)
      t.ops.zero t.parts

(** Undo log for transactional callers: prior column scalars are recorded
    before each overwrite, and the whole (small, 2ᵏ-entry) power-sum array
    is snapshotted once before the first sum is touched. {!undo_apply}
    restores both directly — bit-for-bit, without relying on the ring's
    negation being exactly invertible on the stored representation. *)
type 'a undo = {
  mutable u_cols : (int * int * 'a) list;  (** (col, row, prior scalar), newest first *)
  mutable u_sums : 'a array option;  (** pre-transaction power sums, copied once *)
}

let undo_create () = { u_cols = []; u_sums = None }

(** Restore every logged cell, newest-first so the oldest (pre-transaction)
    value of a twice-logged cell is written last and wins. *)
let undo_apply t (u : 'a undo) =
  (match u.u_sums with
  | Some s -> Array.blit s 0 t.sums 0 (Array.length s)
  | None -> ());
  List.iter (fun (c, r, x) -> t.columns.(c).(r) <- x) u.u_cols;
  u.u_sums <- None;
  u.u_cols <- []

let log_col undo c r prior =
  match undo with Some u -> u.u_cols <- (c, r, prior) :: u.u_cols | None -> ()

(* One snapshot covers every sum write of the transaction: the array has
   only 2ᵏ entries, so copying it once is cheaper than logging the masks
   touched by each column. *)
let log_sums undo t =
  match undo with
  | Some u -> if u.u_sums = None then u.u_sums <- Some (Array.copy t.sums)
  | None -> ()

(* single-entry sets happen once per touched permanent gate per wave —
   too hot for an atomic RMW each, so they count through the blocked
   single-writer front; multi-entry flushes publish exactly via [add] *)
let m_sets_local = Obs.Counter.Local.make m_sets

let set_impl t undo ~row ~col v =
  let open Semiring.Intf in
  if row < 0 || row >= t.k then invalid_arg "Ring_perm.set: bad row";
  if col < 0 || col >= t.n then invalid_arg "Ring_perm.set: bad col";
  Obs.Counter.Local.bump m_sets_local;
  log_sums undo t;
  let old_col = Array.copy t.columns.(col) in
  log_col undo col row t.columns.(col).(row);
  t.columns.(col).(row) <- v;
  for mask = 1 to (1 lsl t.k) - 1 do
    if mask land (1 lsl row) <> 0 then begin
      let old_term = column_contrib t.ops t.k old_col mask in
      let new_term = column_contrib t.ops t.k t.columns.(col) mask in
      t.sums.(mask) <- t.ops.add (t.ops.add t.sums.(mask) (t.neg old_term)) new_term
    end
  done

(** Constant-time single-entry update (Corollary 17). *)
let set t ~row ~col v = set_impl t None ~row ~col v

(** Batched entry update: group writes by column, then adjust each power
    sum once per touched column — masks are visited once with the combined
    changed-rows delta instead of once per entry. Later entries win on
    duplicate (row, col) targets, matching sequential application order.
    Every update is validated before any column is written, so an
    [invalid_arg] leaves the structure untouched. *)
let set_many_impl t undo (updates : (int * int * 'a) list) =
  match updates with
  | [] -> ()
  | [ (row, col, v) ] -> set_impl t undo ~row ~col v
  | _ ->
      let writes = List.length updates in
      Obs.Counter.incr m_batches;
      (* one atomic add for the whole flush — a wave flushes one batch per
         touched permanent gate, and a per-entry incr put an atomic RMW on
         every pending write *)
      Obs.Counter.add m_sets writes;
      Obs.Trace.span_hot ~scope:"perm" "ring.flush"
        ~attrs:[ ("writes", Obs.Trace.I writes); ("k", Obs.Trace.I t.k) ]
      @@ fun () ->
      List.iter
        (fun (row, col, _) ->
          if row < 0 || row >= t.k then invalid_arg "Ring_perm.set_many: bad row";
          if col < 0 || col >= t.n then invalid_arg "Ring_perm.set_many: bad col")
        updates;
      log_sums undo t;
      let by_col =
        List.stable_sort (fun (_, c1, _) (_, c2, _) -> Int.compare c1 c2) updates
      in
      let flush col old_col changed =
        for mask = 1 to (1 lsl t.k) - 1 do
          if mask land changed <> 0 then begin
            let old_term = column_contrib t.ops t.k old_col mask in
            let new_term = column_contrib t.ops t.k t.columns.(col) mask in
            t.sums.(mask) <-
              t.ops.Semiring.Intf.add
                (t.ops.Semiring.Intf.add t.sums.(mask) (t.neg old_term))
                new_term
          end
        done
      in
      let rec run = function
        | [] -> ()
        | (row, col, v) :: rest ->
            let old_col = Array.copy t.columns.(col) in
            log_col undo col row t.columns.(col).(row);
            t.columns.(col).(row) <- v;
            let changed = ref (1 lsl row) in
            let rec eat = function
              | (r2, c2, v2) :: more when c2 = col ->
                  log_col undo col r2 t.columns.(col).(r2);
                  t.columns.(col).(r2) <- v2;
                  changed := !changed lor (1 lsl r2);
                  eat more
              | more -> more
            in
            let rest = eat rest in
            flush col old_col !changed;
            run rest
      in
      run by_col

let set_many t updates = set_many_impl t None updates

(** Like {!set_many}, appending every prior cell to [u] before overwriting
    it — even a batch interrupted mid-flight stays fully covered by the
    log, so [undo_apply t u] restores the pre-batch structure exactly. *)
let set_many_logged t (u : 'a undo) updates = set_many_impl t (Some u) updates

let get t ~row ~col = t.columns.(col).(row)

(** Functor sugar over a statically-known ring. *)
module Make (R : Semiring.Intf.RING) = struct
  type nonrec t = R.t t

  let ops = Semiring.Intf.ops_of_ring (module R)
  let create m = create ops m
  let perm = perm
  let set = set
  let set_many = set_many
  let get = get
end
