(** Trusted brute-force evaluator — the degradation and verification
    target for the circuit pipeline.

    Circuit-based evaluators need a baseline that is obviously correct:
    this module evaluates weighted expressions and first-order queries
    directly from the semantics, by exhaustive iteration over valuations
    (exponential in the number of summed variables, linear per valuation).
    It is used two ways:

    - {b graceful degradation}: when compilation exceeds a resource budget
      or hits an unsupported fragment, checked entry points fall back to a
      {!prepared} reference state that still answers [value]/[query]/
      [update] — slowly, but correctly;
    - {b self-checking}: with [~self_check:true] (or [SPARSEQ_SELF_CHECK=1])
      the engine cross-validates circuit values against this evaluator and
      reports disagreement as [Robust.Internal_divergence].

    Promoted and generalized from the test oracles that previously lived in
    [test/test_fo.ml] and [test/test_nested.ml]. *)

(** Brute-force evaluation of a weighted expression over first-class
    semiring operations, under an environment for its free variables. *)
let eval (type a) (ops : a Semiring.Intf.ops) (inst : Db.Instance.t)
    (weights : a Db.Weights.bundle) ?(env = []) (expr : a Logic.Expr.t) : a =
  let open Semiring.Intf in
  let n = Db.Instance.n inst in
  let rec go env = function
    | Logic.Expr.Const s -> s
    | Logic.Expr.Weight (w, ts) ->
        Db.Weights.get (Db.Weights.find weights w)
          (List.map (Logic.Term.eval inst env) ts)
    | Logic.Expr.Guard f -> if Logic.Formula.holds inst env f then ops.one else ops.zero
    | Logic.Expr.Add fs -> List.fold_left (fun acc f -> ops.add acc (go env f)) ops.zero fs
    | Logic.Expr.Mul fs -> List.fold_left (fun acc f -> ops.mul acc (go env f)) ops.one fs
    | Logic.Expr.Sum ([], f) -> go env f
    | Logic.Expr.Sum (x :: xs, f) ->
        let acc = ref ops.zero in
        for v = 0 to n - 1 do
          acc := ops.add !acc (go ((x, v) :: env) (Logic.Expr.Sum (xs, f)))
        done;
        !acc
  in
  go env expr

(** All answers of a first-order query, by exhaustive search: the free
    variables (sorted, as everywhere in the engine) and the sorted answer
    tuples. The baseline for [Fo_enum]. *)
let answers (inst : Db.Instance.t) (phi : Logic.Formula.t) : string list * int list list
    =
  let fv = Logic.Formula.free_vars_unique phi in
  let n = Db.Instance.n inst in
  let rec go env = function
    | [] ->
        if Logic.Formula.holds inst env phi then
          [ List.map (fun x -> List.assoc x env) fv ]
        else []
    | x :: rest -> List.concat_map (fun a -> go ((x, a) :: env) rest) (List.init n Fun.id)
  in
  (fv, List.sort compare (go [] fv))

(** A reference-backed replacement for a prepared circuit: the same
    [value]/[query]/[update] surface as [Eval], answered by re-evaluation
    against the live instance and weights. *)
type 'a prepared = {
  ops : 'a Semiring.Intf.ops;
  inst : Db.Instance.t;
  weights : 'a Db.Weights.bundle;
  expr : 'a Logic.Expr.t;
  free_vars : string list;  (** in query-argument order *)
}

let prepare ops inst weights expr =
  { ops; inst; weights; expr; free_vars = Logic.Expr.free_vars_unique expr }

(** Value of a closed expression (0 for expressions with free variables,
    matching the closure trick of the circuit path). *)
let value r =
  if r.free_vars = [] then eval r.ops r.inst r.weights r.expr
  else r.ops.Semiring.Intf.zero

let query r (args : int list) =
  if List.length args <> List.length r.free_vars then
    Robust.bad_input "Reference.query: expected %d arguments, got %d"
      (List.length r.free_vars) (List.length args);
  eval r.ops r.inst r.weights ~env:(List.combine r.free_vars args) r.expr

(** Updates write through to the weight bundle; the next evaluation reads
    the new value (no incremental state to maintain). *)
let update r w tuple v = Db.Weights.set (Db.Weights.find r.weights w) tuple v
