(** Weighted query evaluation and maintenance (Theorem 8). [prepare]
    compiles the expression once (linear time); the result supports

    - [value] — the current value of a closed expression, O(1);
    - [query] — the value at a tuple, for expressions with free variables,
      implemented by 2·|x̄| temporary weight updates exactly as in the
      proof of Theorem 8;
    - [update] — change one weight, in O(log n) for general semirings and
      O(1) for rings and finite semirings (the Dyn strategies).

    Free variables are handled by the closure trick: f(x̄) becomes
    f′ = Σ_x̄ f · v₁(x₁) ⋯ v_k(x_k) for fresh query weights v_i that
    default to 0. *)

(** Structural-churn odometer of one prepared query: how many tuple
    inserts/deletes it absorbed, how many went through the localized
    splice vs. the full-recompile fallback, and the gate totals behind
    the localization claim (rebuilt ≪ carried on sparse instances). *)
type churn = {
  mutable ch_inserts : int;
  mutable ch_deletes : int;
  mutable ch_localized : int;  (** updates served by a localized splice *)
  mutable ch_fallbacks : int;  (** updates that forced a full recompile *)
  mutable ch_gates_rebuilt : int;  (** gates recomputed across all updates *)
  mutable ch_gates_carried : int;  (** gates carried over across all splices *)
}

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  mutable dyn : 'a Circuits.Dyn.t;
      (** replaced wholesale by a structural update: the splice builds the
          new runtime aside and the old one is retired on commit *)
  free_vars : string list;  (** in query-argument order *)
  mutable meta : Compile.meta;
  mutable circuit : 'a Circuits.Circuit.t;
  mutable plan : 'a Compile.plan;
      (** the compile plan behind [circuit] — segments, live graph, remap
          tables — that {!Compile.recompile_local} rebuilds from *)
  inst : Db.Instance.t;  (** the live instance; structural ops mutate it *)
  expr_closed : 'a Logic.Expr.t;  (** closed form, for fallback recompiles *)
  base_valuation : Circuits.Circuit.input_key -> 'a;
      (** weights-store valuation for input keys a new circuit introduces *)
  e_mode : Circuits.Dyn.mode option;
  e_backend : Circuits.Dyn.backend option;
  e_domains : int option;
  churn : churn;
  mutable upd_pending : int;
      (** engine/updates increments buffered here and flushed to the
          global counter in blocks of 32: one atomic add per 32 calls
          instead of one per call keeps {!update} inside the telemetry
          budget (the counter is diagnostic; ≤31 calls lag at any
          instant) *)
}

let query_weight i = Printf.sprintf "%s%d" Db.Weights.reserved_prefix i

(* Theorem 8 observables (scope "engine"): preparation is linear-time,
   per-tuple queries cost 2|x̄| temporary updates, and degradations to the
   reference evaluator are counted — not just raised. *)
let h_prepare_ns = Obs.histogram ~scope:"engine" "prepare_ns"
let h_query_ns = Obs.histogram ~scope:"engine" "query_ns"
let m_queries = Obs.counter ~scope:"engine" "queries"
let m_updates = Obs.counter ~scope:"engine" "updates"
let m_degraded = Obs.counter ~scope:"engine" "degraded"

(* Recovery observable (scope "dyn", next to rollbacks/repairs): update
   attempts re-run after a rolled-back or repaired wave. *)
let m_retries = Obs.counter ~scope:"dyn" "retries"

let prepare (type a) (ops : a Semiring.Intf.ops) ?mode ?backend ?domains ?opt ?tfa_rounds
    ?max_depth ?budget (inst : Db.Instance.t) (weights : a Db.Weights.bundle)
    (expr : a Logic.Expr.t) : a t =
  Obs.Trace.span ~scope:"engine" "prepare" @@ fun () ->
  Obs.Timer.time h_prepare_ns @@ fun () ->
  let open Semiring.Intf in
  List.iter
    (fun (w, _) ->
      if String.starts_with ~prefix:Db.Weights.reserved_prefix w then
        Robust.bad_input "Eval.prepare: weight symbol %s uses the reserved prefix %s" w
          Db.Weights.reserved_prefix)
    (Logic.Expr.weight_symbols expr);
  let fv = Logic.Expr.free_vars_unique expr in
  let expr_closed =
    if fv = [] then expr
    else
      Logic.Expr.Sum
        ( fv,
          Logic.Expr.Mul
            (expr
            :: List.mapi
                 (fun i x -> Logic.Expr.Weight (query_weight i, [ Logic.Term.Var x ]))
                 fv) )
  in
  let circuit, meta, plan =
    Compile.compile_plan ~zero:ops.zero ~one:ops.one ~equal:ops.equal ?opt ?tfa_rounds
      ?max_depth ?budget inst expr_closed
  in
  let valuation (w, tuple) =
    if String.starts_with ~prefix:Db.Weights.reserved_prefix w then ops.zero
    else Db.Weights.get (Db.Weights.find weights w) tuple
  in
  let dyn = Circuits.Dyn.create ?mode ?backend ?domains ops circuit valuation in
  {
    ops;
    dyn;
    free_vars = fv;
    meta;
    circuit;
    plan;
    inst;
    expr_closed;
    base_valuation = valuation;
    e_mode = mode;
    e_backend = backend;
    e_domains = domains;
    churn =
      {
        ch_inserts = 0;
        ch_deletes = 0;
        ch_localized = 0;
        ch_fallbacks = 0;
        ch_gates_rebuilt = 0;
        ch_gates_carried = 0;
      };
    upd_pending = 0;
  }

(** Value of a closed expression (or of the wrapped sum, which is 0 until
    queried, for expressions with free variables). *)
let value t = Circuits.Dyn.value t.dyn

(** Value at a tuple (one element per free variable, in the order of
    [free_vars]). *)
let query (type a) (t : a t) (args : int list) : a =
  if List.length args <> List.length t.free_vars then
    invalid_arg "Eval.query: wrong number of arguments";
  Obs.Counter.incr m_queries;
  Obs.Trace.span ~scope:"engine" "query" @@ fun () ->
  Obs.Timer.time h_query_ns @@ fun () ->
  let assignments =
    List.mapi (fun i a -> ((query_weight i, [ a ]), t.ops.Semiring.Intf.one)) args
  in
  Circuits.Dyn.with_temp t.dyn assignments (fun () -> Circuits.Dyn.value t.dyn)

(** Update one weight. Tuples that cannot affect the query (their weight
    is never read by the circuit) are ignored. *)
let update t w tuple v =
  let key = (w, tuple) in
  t.upd_pending <- t.upd_pending + 1;
  if t.upd_pending >= 32 then begin
    Obs.Counter.add m_updates t.upd_pending;
    t.upd_pending <- 0
  end;
  if Circuits.Dyn.has_input t.dyn key then Circuits.Dyn.set_input t.dyn key v

(** Batched weight updates: semantically equivalent to applying {!update}
    left to right (later writes to the same weight tuple win), but every
    circuit-relevant write propagates in a single {!Circuits.Dyn.set_inputs}
    wave, so gates shared between the updated weights recompute once per
    batch instead of once per update. *)
let update_many t (updates : (string * int list * 'a) list) =
  let total = ref 0 in
  let relevant =
    List.filter_map
      (fun (w, tuple, v) ->
        incr total;
        let key = (w, tuple) in
        if Circuits.Dyn.has_input t.dyn key then Some (key, v) else None)
      updates
  in
  (* one atomic add for the whole batch: a per-item Counter.incr is an
     atomic RMW per write and dominated sub-ms waves *)
  Obs.Counter.add m_updates !total;
  Circuits.Dyn.set_inputs t.dyn relevant

let meta t = t.meta
let stats t = Circuits.Circuit.stats t.circuit
let churn_stats t = t.churn

(* --- structural updates: tuple insert/delete --- *)

let m_inserts = Obs.counter ~scope:"engine" "inserts"
let m_deletes = Obs.counter ~scope:"engine" "deletes"
let m_localized = Obs.counter ~scope:"engine" "structural_localized"
let m_struct_fallbacks = Obs.counter ~scope:"engine" "structural_fallbacks"

(* Journal the committed structural op on whatever journal the (possibly
   just-replaced) structure carries, so a replay interleaves weight
   batches and tuple ops in commit order. *)
let journal_structural t ~insert rel tuple =
  match Circuits.Dyn.journal t.dyn with
  | Some j -> Circuits.Journal.append_structural j ~insert ~rel ~tup:tuple
  | None -> ()

(* The amortization fallback: the update grew a treedepth witness past
   the compiled bound, so recompile from scratch (fresh coloring, fresh
   plan — the instance already holds the new tuple set) and rebuild the
   dynamic structure seeded from the old one's input values. The journal,
   cost sink and gate odometer carry over; the full build is charged as
   this update's cost. *)
let full_recompile (t : 'a t) : unit =
  let plan = t.plan in
  let circuit, meta, plan' =
    Compile.compile_plan ~zero:plan.Compile.pl_zero ~one:plan.Compile.pl_one
      ~equal:plan.Compile.pl_equal ~opt:plan.Compile.pl_opt
      ~tfa_rounds:plan.Compile.pl_tfa_rounds ~max_depth:plan.Compile.pl_max_depth
      ~budget:plan.Compile.pl_budget ~dynamic_rels:plan.Compile.pl_dynamic_rels t.inst
      t.expr_closed
  in
  let old_dyn = t.dyn in
  let valuation key =
    match Circuits.Dyn.input_value old_dyn key with
    | Some v -> v
    | None -> t.base_valuation key
  in
  let dyn =
    Circuits.Dyn.create ?mode:t.e_mode ?backend:t.e_backend ?domains:t.e_domains t.ops
      circuit valuation
  in
  Circuits.Dyn.adopt_accounting ~from:old_dyn dyn;
  Circuits.Dyn.charge dyn (Circuits.Dyn.num_gates dyn);
  t.dyn <- dyn;
  t.circuit <- circuit;
  t.meta <- meta;
  t.plan <- plan'

(* One structural update: apply the tuple delta to the instance and the
   live Gaifman graph, run the localized recompile, splice the rebuilt
   circuit into the running structure (or fall back to a full recompile
   past the amortization trigger), journal the op. Transactional: any
   fault before commit reverts the instance and graph deltas, so the
   served state stays the pre-update one (the splice itself never mutates
   the old structure). *)
let structural (t : 'a t) ~insert rel tuple : unit =
  Obs.Trace.span ~scope:"engine" (if insert then "insert_tuple" else "delete_tuple")
  @@ fun () ->
  let live = t.plan.Compile.pl_live in
  let has_edges = List.length tuple >= 2 in
  (* 1. the instance delta — [add] rejects duplicates, and a delete of an
     absent tuple is equally ambiguous, so both directions validate *)
  if insert then Db.Instance.add t.inst rel tuple
  else if Db.Instance.mem t.inst rel tuple then Db.Instance.remove t.inst rel tuple
  else
    Robust.bad_input "Eval.delete_tuple: tuple %s(%s) not present" rel
      (String.concat "," (List.map string_of_int tuple));
  (* 2. mirror it in the live graph, one pair-incidence at a time — the
     same enumeration [Db.Instance.live_gaifman] seeded it with *)
  if has_edges then
    Db.Instance.tuple_pairs tuple (fun x y ->
        if insert then ignore (Graphs.Live.add_edge live x y)
        else ignore (Graphs.Live.remove_edge live x y));
  let revert () =
    if has_edges then
      Db.Instance.tuple_pairs tuple (fun x y ->
          if insert then ignore (Graphs.Live.remove_edge live x y)
          else ignore (Graphs.Live.add_edge live x y));
    if insert then Db.Instance.remove t.inst rel tuple else Db.Instance.add t.inst rel tuple;
    (* the recompile pre-flight may have cached forests against the now
       reverted graph; drop them so nothing stale survives the abort *)
    match Graphs.Live.coloring live with
    | Some _ ->
        ignore
          (Graphs.Live.invalidate live
             ~touched_colors:(Graphs.Live.colors_of live (List.sort_uniq compare tuple)))
    | None -> ()
  in
  let protect f = match f () with v -> v | exception e -> revert (); raise e in
  (match
     protect (fun () ->
         Compile.recompile_local t.plan ~touched:(List.sort_uniq compare tuple))
   with
  | Compile.Localized { circuit; meta; plan; carry; _ } ->
      let old_dyn = t.dyn in
      let valuation key =
        match Circuits.Dyn.input_value old_dyn key with
        | Some v -> v
        | None -> t.base_valuation key
      in
      let dyn, report = protect (fun () -> Circuits.Dyn.splice old_dyn circuit ~carry valuation) in
      t.dyn <- dyn;
      t.circuit <- circuit;
      t.meta <- meta;
      t.plan <- plan;
      t.churn.ch_localized <- t.churn.ch_localized + 1;
      t.churn.ch_gates_rebuilt <- t.churn.ch_gates_rebuilt + report.Circuits.Dyn.sp_rebuilt;
      t.churn.ch_gates_carried <- t.churn.ch_gates_carried + report.Circuits.Dyn.sp_carried;
      Obs.Counter.incr m_localized
  | Compile.Fallback _reason ->
      protect (fun () -> full_recompile t);
      t.churn.ch_fallbacks <- t.churn.ch_fallbacks + 1;
      t.churn.ch_gates_rebuilt <- t.churn.ch_gates_rebuilt + Circuits.Dyn.num_gates t.dyn;
      Obs.Counter.incr m_struct_fallbacks);
  if insert then begin
    t.churn.ch_inserts <- t.churn.ch_inserts + 1;
    Obs.Counter.incr m_inserts
  end
  else begin
    t.churn.ch_deletes <- t.churn.ch_deletes + 1;
    Obs.Counter.incr m_deletes
  end;
  journal_structural t ~insert rel tuple

(** Insert a tuple into relation [rel] and maintain the compiled circuit
    by a localized incremental recompile: only the color subsets whose
    subset contains every touched color are rebuilt; everything else is
    carried over by the splice. Duplicate inserts raise [Bad_input]. *)
let insert_tuple t rel tuple = structural t ~insert:true rel tuple

(** Delete a tuple; the exact inverse of {!insert_tuple} (deleting an
    absent tuple raises [Bad_input]). *)
let delete_tuple t rel tuple = structural t ~insert:false rel tuple

(** Attach (or return) the update journal of the backing structure; it
    survives structure replacements — splices inherit it, fallback
    rebuilds re-attach it — so one journal covers a whole churn history. *)
let enable_journal t = Circuits.Dyn.enable_journal t.dyn

(** Re-apply a journal's committed batches — weight waves {e and}
    structural ops — in commit order. Run against a freshly prepared [t]
    on the pre-journal instance and weights, this reconstructs the exact
    served state: values, circuit shape, plan. The structure's own
    journal is suspended for the duration (across structure replacements)
    so replayed batches are not re-appended. *)
let replay (t : 'a t) (j : 'a Circuits.Journal.t) : unit =
  (match Circuits.Journal.verify j with
  | Some seq -> Robust.bad_input "Eval.replay: journal batch %d fails its checksum" seq
  | None -> ());
  let saved = Circuits.Dyn.journal t.dyn in
  Circuits.Dyn.set_journal t.dyn None;
  Fun.protect
    ~finally:(fun () -> Circuits.Dyn.set_journal t.dyn saved)
    (fun () ->
      List.iter
        (fun b ->
          match Circuits.Journal.structural b with
          | Some s ->
              structural t ~insert:s.Circuits.Journal.s_insert s.Circuits.Journal.s_rel
                s.Circuits.Journal.s_tup
          | None ->
              Circuits.Dyn.set_inputs t.dyn
                (List.filter
                   (fun (key, _) -> Circuits.Dyn.has_input t.dyn key)
                   (Circuits.Journal.writes b)))
        (Circuits.Journal.batches j))

(** Per-operation cost attribution (Theorem 8 made inspectable): what one
    query or one update batch actually spent — wall time, gate
    recomputations (split per propagation wave), minor-heap allocation,
    and GC activity observed during the operation. The gate numbers come
    from the same [update_ops] odometer that feeds the cumulative "dyn"
    counters, so for any bracket of operations
    Σ [gates_visited] = Δ sparseq dyn/touched_gates — exactly; the bench
    and the test suite cross-check that identity. *)
module Cost = struct
  type t = {
    wall_ns : float;  (** wall-clock duration of the operation *)
    gates_visited : int;  (** gate recomputations (one-shot eval: gates evaluated) *)
    waves : int;  (** committed propagation waves (one-shot eval: 0) *)
    wave_touched : int list;  (** [gates_visited] split per wave, in wave order *)
    minor_words : float;  (** minor-heap words allocated *)
    gc_minor : int;  (** minor collections observed *)
    gc_major : int;  (** major collections observed *)
  }

  let zero =
    {
      wall_ns = 0.;
      gates_visited = 0;
      waves = 0;
      wave_touched = [];
      minor_words = 0.;
      gc_minor = 0;
      gc_major = 0;
    }

  (** Aggregate two reports (waves concatenate in order). *)
  let add a b =
    {
      wall_ns = a.wall_ns +. b.wall_ns;
      gates_visited = a.gates_visited + b.gates_visited;
      waves = a.waves + b.waves;
      wave_touched = a.wave_touched @ b.wave_touched;
      minor_words = a.minor_words +. b.minor_words;
      gc_minor = a.gc_minor + b.gc_minor;
      gc_major = a.gc_major + b.gc_major;
    }

  let to_json c =
    Obs.Json.O
      [
        ("wall_ns", Obs.Json.F c.wall_ns);
        ("gates_visited", Obs.Json.I c.gates_visited);
        ("waves", Obs.Json.I c.waves);
        ("wave_touched", Obs.Json.A (List.map (fun n -> Obs.Json.I n) c.wave_touched));
        ("minor_words", Obs.Json.F c.minor_words);
        ("gc_minor", Obs.Json.I c.gc_minor);
        ("gc_major", Obs.Json.I c.gc_major);
      ]

  let summary c =
    Printf.sprintf
      "wall %.0fns  gates %d in %d wave%s  minor_words %.0f  gc %d minor / %d major"
      c.wall_ns c.gates_visited c.waves
      (if c.waves = 1 then "" else "s")
      c.minor_words c.gc_minor c.gc_major
end

(** Measure [f]'s cost against [t]'s dynamic circuit: a per-wave cost sink
    is attached for the duration ({!Circuits.Dyn.set_cost_log}), the gate
    odometer and [Gc.quick_stat] are read on both sides. Detaches the sink
    on every exit path. Not reentrant (one sink at a time), matching the
    engine's single-writer update discipline. *)
let with_cost (t : 'a t) (f : unit -> 'b) : 'b * Cost.t =
  let sink = ref [] in
  Circuits.Dyn.set_cost_log t.dyn (Some sink);
  let finish () = Circuits.Dyn.set_cost_log t.dyn None in
  let ops0 = Circuits.Dyn.update_ops t.dyn in
  let g0 = Gc.quick_stat () in
  let t0 = Obs.now_ns () in
  match f () with
  | r ->
      let wall_ns = Obs.elapsed_ns t0 in
      let g1 = Gc.quick_stat () in
      finish ();
      let wave_touched = List.rev !sink in
      ( r,
        {
          Cost.wall_ns;
          gates_visited = Circuits.Dyn.update_ops t.dyn - ops0;
          waves = List.length wave_touched;
          wave_touched;
          minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
          gc_minor = g1.Gc.minor_collections - g0.Gc.minor_collections;
          gc_major = g1.Gc.major_collections - g0.Gc.major_collections;
        } )
  | exception e ->
      finish ();
      raise e

(** {!query} with its cost report (2 waves: flip the query weights, value,
    restore). *)
let query_cost (t : 'a t) (args : int list) : 'a * Cost.t = with_cost t (fun () -> query t args)

(** {!update_many} with its cost report (1 committed wave when anything
    changed). *)
let update_many_cost (t : 'a t) (updates : (string * int list * 'a) list) : Cost.t =
  let (), c = with_cost t (fun () -> update_many t updates) in
  c

(** One-shot static evaluation of a closed expression through the circuit
    pipeline (compile + one linear evaluation, no dynamic structures).
    [~backend:Compact] (the default) converts the optimized circuit to the
    CSR layout and evaluates over a flat value plane; [~backend:Boxed] is
    the pointer-graph evaluator, kept as the sequential twin.
    [~domains] > 1 (compact backend only) evaluates level-parallel on
    OCaml 5 domains via {!Circuits.Par}; [~domains:1] (the default) is the
    unchanged sequential path. [?cost] receives a {!Cost.t} for the
    evaluation proper (compile excluded): every gate is evaluated exactly
    once, so [gates_visited] is the circuit's gate count and [waves] 0. *)
let evaluate (type a) (ops : a Semiring.Intf.ops)
    ?(backend = Circuits.Dyn.Compact) ?(domains = 1) ?opt ?tfa_rounds ?max_depth ?budget
    ?(cost : Cost.t option ref option)
    (inst : Db.Instance.t) (weights : a Db.Weights.bundle) (expr : a Logic.Expr.t) : a =
  let open Semiring.Intf in
  let circuit, _ =
    Compile.compile ~zero:ops.zero ~one:ops.one ~equal:ops.equal ?opt ?tfa_rounds
      ?max_depth ?budget inst expr
  in
  let valuation (w, tuple) = Db.Weights.get (Db.Weights.find weights w) tuple in
  let run () =
    match backend with
    | Circuits.Dyn.Compact ->
        let cc = Circuits.Compact.of_circuit circuit in
        if domains > 1 then Circuits.Par.eval ~domains ops cc valuation
        else Circuits.Compact.eval ops cc valuation
    | Circuits.Dyn.Boxed -> Circuits.Circuit.eval ops circuit valuation
  in
  match cost with
  | None -> run ()
  | Some cell ->
      let g0 = Gc.quick_stat () in
      let t0 = Obs.now_ns () in
      let v = run () in
      let wall_ns = Obs.elapsed_ns t0 in
      let g1 = Gc.quick_stat () in
      cell :=
        Some
          {
            Cost.wall_ns;
            gates_visited = Array.length circuit.Circuits.Circuit.nodes;
            waves = 0;
            wave_touched = [];
            minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
            gc_minor = g1.Gc.minor_collections - g0.Gc.minor_collections;
            gc_major = g1.Gc.major_collections - g0.Gc.major_collections;
          };
      v

(* --- checked entry points (the robustness layer) --- *)

(** How a checked entry point reacts to a degradable compile failure
    ([Budget_exceeded] or [Unsupported_fragment]): [`Naive] falls back to
    the brute-force {!Reference} evaluator, [`Fail] returns the error. *)
type fallback = [ `Naive | `Fail ]

type 'a backend = Circuit of 'a t | Degraded of 'a Reference.prepared

(** How a checked entry point reacts to a fault mid-update-wave:
    - [`Fail] — report the error immediately; the wave was rolled back, so
      the circuit and the weights store still agree on the pre-update state.
    - [`Rollback] (default) — retry the update up to [retries] times with
      exponential backoff (transient faults vanish on a re-run); report the
      error, state rolled back, when the attempts are exhausted.
    - [`Repair] — like [`Rollback], but when a wave's own rollback failed
      (the structure is poisoned) rebuild it from the stored inputs with
      {!Circuits.Dyn.repair}, re-align the failed batch's inputs with the
      committed weights, and retry. *)
type recovery = [ `Rollback | `Repair | `Fail ]

(** A prepared query that can never escape an unclassified exception:
    either a compiled circuit or (after degradation) a reference state,
    plus the optional self-check configuration. *)
type 'a checked = {
  backend : 'a backend;
  degraded_because : Robust.error option;  (** why the reference backend is in use *)
  self_check : bool;
  sc_samples : int;
  recover : recovery;
  retries : int;  (** extra attempts after the first failed one *)
  backoff_ms : float;  (** base backoff; attempt i waits backoff·2ⁱ ms *)
  c_ops : 'a Semiring.Intf.ops;
  c_inst : Db.Instance.t;
  c_weights : 'a Db.Weights.bundle;
  c_expr : 'a Logic.Expr.t;
  c_fv : string list;
}

let degraded ck = ck.degraded_because
let checked_free_vars ck = ck.c_fv

let self_check_env () =
  match Sys.getenv_opt "SPARSEQ_SELF_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

(** [SPARSEQ_RECOVER] overrides the default recovery policy of every
    checked preparation that does not pass [~recover] explicitly. *)
let recover_env () : recovery option =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "SPARSEQ_RECOVER") with
  | Some "fail" -> Some `Fail
  | Some "rollback" -> Some `Rollback
  | Some "repair" -> Some `Repair
  | _ -> None

(* The waiter behind retry backoff, injectable so tests (and the chaos
   harness) can record the schedule instead of actually sleeping. *)
let default_retry_sleep seconds = if seconds > 0. then Unix.sleepf seconds
let retry_sleep : (float -> unit) ref = ref default_retry_sleep

let set_retry_sleep = function
  | Some f -> retry_sleep := f
  | None -> retry_sleep := default_retry_sleep

(* Classify engine exceptions beyond the generic Robust backstop; if the
   underlying dyn circuit got poisoned, that dominates every other reading
   of the failure. *)
let classify_engine (backend : 'a backend option) (e : exn) : Robust.error option =
  let base =
    match e with
    | Circuits.Dyn.Poisoned msg ->
        Some (Robust.Internal_divergence ("dynamic circuit poisoned: " ^ msg))
    | Circuits.Dyn.Rolled_back msg ->
        Some
          (Robust.Internal_divergence
             ("update fault rolled back, circuit state unchanged: " ^ msg))
    | Logic.Normal.Not_quantifier_free f ->
        Some
          (Robust.Unsupported_fragment
             (Format.asprintf "quantifier inside a compiled guard: %a" Logic.Formula.pp f))
    | _ -> Robust.classify_exn e
  in
  match backend with
  | Some (Circuit t) -> (
      match (base, Circuits.Dyn.poisoned t.dyn) with
      | Some (Robust.Internal_divergence _), _ | _, None -> base
      | Some err, Some _ ->
          Some
            (Robust.Internal_divergence
               (Printf.sprintf "update fault poisoned the circuit (%s)"
                  (Robust.to_string err)))
      | None, Some fault ->
          Some
            (Robust.Internal_divergence ("update fault poisoned the circuit: " ^ fault)))
  | _ -> base

(* Deterministic sample of query-argument tuples for the self-check. *)
let sample_args ~n ~k ~samples =
  if n = 0 || k = 0 then []
  else begin
    let state = ref 0x9e3779b9 in
    let next bound =
      state := (!state * 1103515245) + 12345;
      (!state land 0x3FFFFFFF) mod bound
    in
    List.init samples (fun _ -> List.init k (fun _ -> next n))
  end

(* Cross-validate the circuit against the reference evaluator on the
   current weights: the closed value, plus sampled query points when the
   expression has free variables. Raises [Internal_divergence]. *)
let self_check_now (ck : 'a checked) : unit =
  match ck.backend with
  | Degraded _ -> ()
  | Circuit t ->
      let ops = ck.c_ops in
      if ck.c_fv = [] then begin
        let got = value t in
        let want = Reference.eval ops ck.c_inst ck.c_weights ck.c_expr in
        if not (ops.Semiring.Intf.equal got want) then
          Robust.divergence "self-check: circuit value disagrees with reference evaluator"
      end
      else
        List.iter
          (fun args ->
            let got = query t args in
            let want =
              Reference.eval ops ck.c_inst ck.c_weights
                ~env:(List.combine ck.c_fv args) ck.c_expr
            in
            if not (ops.Semiring.Intf.equal got want) then
              Robust.divergence
                "self-check: circuit disagrees with reference at query (%s)"
                (String.concat "," (List.map string_of_int args)))
          (sample_args ~n:(Db.Instance.n ck.c_inst) ~k:(List.length ck.c_fv)
             ~samples:ck.sc_samples)

(** Checked preparation: classifies every exception the pipeline can raise
    into [Robust.error], and on a degradable failure (budget, unsupported
    fragment) with [~fallback:`Naive] (the default) transparently falls
    back to the brute-force reference evaluator. [~self_check:true] (or
    [SPARSEQ_SELF_CHECK=1]) cross-validates circuit values against the
    reference at preparation, on sampled query points, and after every
    {!update_checked}. *)
let prepare_checked (type a) (ops : a Semiring.Intf.ops) ?mode ?backend ?domains
    ?opt ?tfa_rounds ?max_depth ?budget ?(fallback : fallback = `Naive) ?self_check
    ?(self_check_samples = 4) ?(recover : recovery option) ?(retries = 2)
    ?(backoff_ms = 1.0) (inst : Db.Instance.t) (weights : a Db.Weights.bundle)
    (expr : a Logic.Expr.t) : (a checked, Robust.error) result =
  let self_check =
    match self_check with Some b -> b | None -> self_check_env ()
  in
  let recover =
    match recover with
    | Some r -> r
    | None -> ( match recover_env () with Some r -> r | None -> `Rollback)
  in
  let mk backend degraded_because =
    {
      backend;
      degraded_because;
      self_check;
      sc_samples = self_check_samples;
      recover;
      retries = max 0 retries;
      backoff_ms = max 0. backoff_ms;
      c_ops = ops;
      c_inst = inst;
      c_weights = weights;
      c_expr = expr;
      c_fv = Logic.Expr.free_vars_unique expr;
    }
  in
  match
    Robust.protect
      ~classify:(classify_engine None)
      (fun () ->
        prepare ops ?mode ?backend ?domains ?opt ?tfa_rounds ?max_depth ?budget inst
          weights expr)
  with
  | Ok t ->
      let ck = mk (Circuit t) None in
      if self_check then
        Robust.protect ~classify:(classify_engine (Some ck.backend)) (fun () ->
            self_check_now ck;
            ck)
      else Ok ck
  | Error e when Robust.degradable e && fallback = `Naive ->
      Obs.Counter.incr m_degraded;
      Robust.protect (fun () -> mk (Degraded (Reference.prepare ops inst weights expr)) (Some e))
  | Error e -> Error e

(** Current value of a checked query (with the self-check, when enabled). *)
let value_checked (ck : 'a checked) : ('a, Robust.error) result =
  Robust.protect
    ~classify:(classify_engine (Some ck.backend))
    (fun () ->
      if ck.self_check then self_check_now ck;
      match ck.backend with Circuit t -> value t | Degraded r -> Reference.value r)

(** Value at a tuple (one element per free variable). *)
let query_checked (ck : 'a checked) (args : int list) : ('a, Robust.error) result =
  Robust.protect
    ~classify:(classify_engine (Some ck.backend))
    (fun () ->
      match ck.backend with
      | Circuit t ->
          let got = query t args in
          if ck.self_check then begin
            let want =
              Reference.eval ck.c_ops ck.c_inst ck.c_weights
                ~env:(List.combine ck.c_fv args) ck.c_expr
            in
            if not (ck.c_ops.Semiring.Intf.equal got want) then
              Robust.divergence
                "self-check: circuit disagrees with reference at query (%s)"
                (String.concat "," (List.map string_of_int args))
          end;
          got
      | Degraded r -> Reference.query r args)

(* The self-healing big hammer behind [`Repair]: a wave's rollback failed,
   so rebuild every derived value from the stored inputs, then push the
   failed batch's own input gates back to the committed weights-store
   values — those gates may have been stamped with the new values before
   the fault, and the weights store is only written after a successful
   wave, so this re-aligns the repaired circuit with the pre-batch state
   the rest of the system still sees. *)
let repair_to_weights (ck : 'a checked) (t : 'a t)
    (updates : (string * int list * 'a) list) : unit =
  Circuits.Dyn.repair t.dyn;
  let pre =
    List.filter_map
      (fun (w, tuple, _) ->
        let key = (w, tuple) in
        if Circuits.Dyn.has_input t.dyn key then
          Some (key, Db.Weights.get (Db.Weights.find ck.c_weights w) tuple)
        else None)
      updates
  in
  Circuits.Dyn.set_inputs t.dyn pre

(* Run one circuit update wave under the checked recovery policy: retry
   rolled-back waves with exponential backoff, optionally repair a
   poisoned structure, and re-raise for the classifier once the attempt
   budget is spent. Invariant on every exit, normal or exceptional (bar a
   fault during recovery itself under persistent fault injection): the
   circuit agrees either with the pre-batch or with the post-batch
   weights, never a third state. *)
let apply_with_recovery (ck : 'a checked) (t : 'a t)
    (updates : (string * int list * 'a) list) (f : unit -> unit) : unit =
  let backoff attempt =
    Obs.Counter.incr m_retries;
    !retry_sleep (ck.backoff_ms *. (2. ** float_of_int attempt) /. 1000.)
  in
  let rec go attempt =
    try f ()
    with e ->
      if Circuits.Dyn.poisoned t.dyn <> None then
        if ck.recover = `Repair then begin
          repair_to_weights ck t updates;
          if attempt < ck.retries then begin
            backoff attempt;
            go (attempt + 1)
          end
          else raise e
        end
        else raise e
      else
        match (e, ck.recover) with
        | Circuits.Dyn.Rolled_back _, (`Rollback | `Repair) when attempt < ck.retries ->
            backoff attempt;
            go (attempt + 1)
        | _ -> raise e
  in
  go 0

(** Update one weight. Unlike the unchecked {!update}, this writes through
    to the weight bundle as well, so the circuit, the reference fallback,
    and the self-check all observe the same state — and only {e after} the
    circuit wave committed, so a rolled-back fault cannot leave the
    weights store disagreeing with circuit state. A fault mid-update is
    handled per the [recover] policy (retry, repair, or report with the
    state rolled back); the error surfaces as [Internal_divergence] and
    never leaves a silently corrupt value behind. *)
let update_checked (ck : 'a checked) (w : string) (tuple : int list) (v : 'a) :
    (unit, Robust.error) result =
  Robust.protect
    ~classify:(classify_engine (Some ck.backend))
    (fun () ->
      (* resolve — and thereby validate — the weight column up front, so a
         bad symbol cannot fail the write-through after the wave committed *)
      let col = Db.Weights.find ck.c_weights w in
      (match ck.backend with
      | Circuit t ->
          apply_with_recovery ck t
            [ (w, tuple, v) ]
            (fun () -> update t w tuple v)
      | Degraded _ -> ());
      Db.Weights.set col tuple v;
      if ck.self_check then self_check_now ck)

(** Batched checked update: the whole batch is validated against the
    weight bundle, then the circuit sees one (transactional) propagation
    wave, and only after it commits does every write go through to the
    weight bundle — so the reference fallback and the self-check observe
    either the full batch or none of it. The self-check, when enabled,
    runs once per batch rather than once per update. A fault mid-batch is
    handled per the [recover] policy exactly like {!update_checked}.
    [?cost] receives the batch's {!Cost.t} (retries included in the
    measured bracket; a degraded backend leaves the cell untouched). *)
let update_many_checked ?(cost : Cost.t option ref option) (ck : 'a checked)
    (updates : (string * int list * 'a) list) : (unit, Robust.error) result =
  Robust.protect
    ~classify:(classify_engine (Some ck.backend))
    (fun () ->
      let cols =
        List.map
          (fun (w, tuple, v) ->
            let col = Db.Weights.find ck.c_weights w in
            if List.length tuple <> Db.Weights.arity col then
              Robust.bad_input "Eval.update_many: %s expects arity %d" w
                (Db.Weights.arity col);
            (col, tuple, v))
          updates
      in
      (match ck.backend with
      | Circuit t -> (
          let run () = apply_with_recovery ck t updates (fun () -> update_many t updates) in
          match cost with
          | None -> run ()
          | Some cell ->
              let (), c = with_cost t run in
              cell := Some c)
      | Degraded _ -> ());
      List.iter (fun (col, tuple, v) -> Db.Weights.set col tuple v) cols;
      if ck.self_check then self_check_now ck)

(* Checked structural update: on the circuit backend run the full
   localized-recompile machinery (which reverts the instance and graph on
   any fault, so the pre-update state is intact under every [Error]) under
   the same recovery policy as weight waves — a rolled-back splice fault
   is retried from the reverted pre-update state, and a poisoned structure
   is repaired in place first under [`Repair] (no weight writes to
   re-align: the revert already restored the instance). On the degraded
   backend mutate the instance only — the reference evaluator always
   reads the live instance, so both backends observe the same tuple set.
   The optional self-check cross-validates the spliced circuit against
   the reference on the post-update instance. *)
let structural_checked (ck : 'a checked) ~insert rel tuple : (unit, Robust.error) result =
  Robust.protect
    ~classify:(classify_engine (Some ck.backend))
    (fun () ->
      (match ck.backend with
      | Circuit t -> apply_with_recovery ck t [] (fun () -> structural t ~insert rel tuple)
      | Degraded _ ->
          if insert then Db.Instance.add ck.c_inst rel tuple
          else if Db.Instance.mem ck.c_inst rel tuple then
            Db.Instance.remove ck.c_inst rel tuple
          else
            Robust.bad_input "Eval.delete_tuple: tuple %s(%s) not present" rel
              (String.concat "," (List.map string_of_int tuple)));
      if ck.self_check then self_check_now ck)

(** Checked {!insert_tuple}: classified errors, pre-update state preserved
    on failure, self-check (when enabled) after the splice commits. *)
let insert_tuple_checked ck rel tuple = structural_checked ck ~insert:true rel tuple

(** Checked {!delete_tuple}. *)
let delete_tuple_checked ck rel tuple = structural_checked ck ~insert:false rel tuple

(** Inject a fault hook into the underlying dynamic circuit (tests only);
    no-op on a degraded backend. *)
let set_fault_hook (ck : 'a checked) (h : (int -> unit) option) : unit =
  match ck.backend with
  | Circuit t -> Circuits.Dyn.set_fault_hook t.dyn h
  | Degraded _ -> ()

(** Inject a fault hook into the rollback path itself (tests only): the
    way to exercise poisoning now that a plain mid-wave fault rolls back
    cleanly. No-op on a degraded backend. *)
let set_rollback_fault_hook (ck : 'a checked) (h : (unit -> unit) option) : unit =
  match ck.backend with
  | Circuit t -> Circuits.Dyn.set_rollback_fault_hook t.dyn h
  | Degraded _ -> ()

(** Rebuild the backing dynamic circuit from its stored inputs, clearing
    any poison (see {!Circuits.Dyn.repair}); no-op on a degraded backend. *)
let repair_checked (ck : 'a checked) : unit =
  match ck.backend with
  | Circuit t -> Circuits.Dyn.repair t.dyn
  | Degraded _ -> ()

(** One-shot checked evaluation of a closed expression: [Ok (v, None)]
    from the circuit pipeline, [Ok (v, Some reason)] from the reference
    fallback after a degradable failure, [Error _] otherwise. [?cost]
    receives the circuit evaluation's {!Cost.t}; the degraded reference
    path leaves the cell untouched (there is no circuit to attribute to). *)
let evaluate_checked (type a) (ops : a Semiring.Intf.ops) ?backend ?domains ?opt
    ?tfa_rounds ?max_depth ?budget ?cost ?(fallback : fallback = `Naive)
    (inst : Db.Instance.t) (weights : a Db.Weights.bundle) (expr : a Logic.Expr.t) :
    (a * Robust.error option, Robust.error) result =
  match
    Robust.protect
      ~classify:(classify_engine None)
      (fun () ->
        evaluate ops ?backend ?domains ?opt ?tfa_rounds ?max_depth ?budget ?cost inst
          weights expr)
  with
  | Ok v -> Ok (v, None)
  | Error e when Robust.degradable e && fallback = `Naive ->
      Obs.Counter.incr m_degraded;
      Robust.protect (fun () -> (Reference.eval ops inst weights expr, Some e))
  | Error e -> Error e
