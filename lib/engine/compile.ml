(** The compilation pipeline of Theorem 6: a fixed closed weighted
    expression and a database from a bounded-expansion class are compiled,
    in time linear in the database, into a circuit with permanent gates
    whose inputs are the tuple weights.

    Pipeline (Figure 2 of the paper, specialized as described in
    DESIGN.md):

    1. normalize the expression into summands Σ_x̄ (coeff · Π lits · Π w)
       (Lemma 28 / Lemma 32);
    2. compute a low-treedepth coloring of the Gaifman graph by
       transitive–fraternal augmentation (Proposition 1);
    3. split the sum over color subsets D of size ≤ p with surjective
       color assignments — identity (12) of Lemma 35;
    4. for each subset, build a low-depth elimination forest of the induced
       subgraph and compile each summand by shapes (Lemmas 29–33), with
       relation literals resolved per shape against the database. *)

type meta = {
  p : int;  (** maximum number of variables in a summand *)
  num_colors : int;
  num_subsets : int;  (** color subsets actually compiled *)
  max_forest_depth : int;
  num_shapes : int;  (** shapes compiled across all subsets *)
  num_summands : int;
  opt : Opt.report;  (** per-pass gate/edge/depth deltas of the optimizer run *)
}

let pp_meta fmt m =
  Format.fprintf fmt "p=%d colors=%d subsets=%d depth<=%d shapes=%d summands=%d gates=%d->%d"
    m.p m.num_colors m.num_subsets m.max_forest_depth m.num_shapes m.num_summands
    m.opt.Opt.r_gates_before m.opt.Opt.r_gates_after

let color_rel c = Printf.sprintf "__color_%d" c

(* Compilation metrics (scope "compile"): per-phase wall time through the
   Figure 2 pipeline, plus the circuit parameters Theorem 6 bounds. The
   gauges hold the most recent compile's values; histograms accumulate
   across compiles. *)
let m_runs = Obs.counter ~scope:"compile" "runs"
let m_shapes = Obs.counter ~scope:"compile" "shapes"
let m_subsets = Obs.counter ~scope:"compile" "subsets"
let h_total_ns = Obs.histogram ~scope:"compile" "total_ns"
let h_normalize_ns = Obs.histogram ~scope:"compile" "normalize_ns"
let h_orientation_ns = Obs.histogram ~scope:"compile" "orientation_ns"
let h_decompose_ns = Obs.histogram ~scope:"compile" "decompose_ns"
let h_emit_ns = Obs.histogram ~scope:"compile" "emit_ns"
let g_gates = Obs.gauge ~scope:"compile" "gates"
let g_depth = Obs.gauge ~scope:"compile" "depth"
let g_fan_out = Obs.gauge ~scope:"compile" "max_fan_out"
let g_perm_rows = Obs.gauge ~scope:"compile" "max_perm_rows"
let g_num_perm = Obs.gauge ~scope:"compile" "num_perm"
let g_inputs = Obs.gauge ~scope:"compile" "num_inputs"

(* all subsets of [colors present] with size in [1, p] *)
let rec subsets_up_to p = function
  | [] -> [ [] ]
  | c :: rest ->
      let without = subsets_up_to p rest in
      let with_c =
        List.filter_map
          (fun s -> if List.length s < p then Some (c :: s) else None)
          without
      in
      without @ with_c

(* all surjective maps from [vars] onto [subset], as assoc lists *)
let surjective_maps vars subset =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        List.concat_map (fun m -> List.map (fun c -> (x, c) :: m) subset) (go rest)
  in
  List.filter
    (fun m -> List.for_all (fun c -> List.exists (fun (_, c') -> c' = c) m) subset)
    (go vars)

(** Compile a closed expression over an instance. [tfa_rounds] overrides
    the number of augmentation rounds; [max_depth] aborts (with
    [Robust.Unsupported_fragment]) if some induced forest is deeper — a
    sign the coloring is not low-treedepth enough for this pattern size.
    [budget] limits emitted gates and wall-clock time, checked
    cooperatively as shapes and subsets are compiled; a violation raises
    [Robust.Error (Budget_exceeded _)] instead of exhausting memory on a
    hostile query.

    The raw circuit is then rewritten by the {!Opt} pipeline ([opt],
    default {!Opt.default_passes}; pass [Opt.none] for the raw output).
    [equal] decides constant equality for identity folding / hash-consing
    and defaults to structural equality — pass the semiring's own
    equality when constants have non-canonical representations. The
    per-pass shrink report lands in [meta.opt]. *)
let compile (type a) ~(zero : a) ~(one : a) ?(equal : a -> a -> bool = ( = ))
    ?(opt = Opt.default_passes) ?(tfa_rounds = -1) ?(max_depth = 10)
    ?(budget = Robust.unlimited) ?(dynamic_rels = []) (inst : Db.Instance.t)
    (expr : a Logic.Expr.t) : a Circuits.Circuit.t * meta =
  Obs.Trace.span ~scope:"compile" "compile" @@ fun () ->
  let monitor = if Robust.is_unlimited budget then None else Some (Robust.start budget) in
  let instrumented = Obs.is_enabled () in
  let t_start = if instrumented then Obs.now_ns () else 0. in
  let t_decomp = ref 0. and t_emit = ref 0. in
  let timed acc f =
    if instrumented then begin
      let t0 = Obs.now_ns () in
      let r = f () in
      acc := !acc +. Obs.elapsed_ns t0;
      r
    end
    else f ()
  in
  (match Logic.Expr.free_vars_unique expr with
  | [] -> ()
  | fv ->
      Robust.bad_input "Compile: expression must be closed; free: %s"
        (String.concat "," fv));
  let t_norm = ref 0. in
  let nf =
    Obs.Trace.span ~scope:"compile" "normalize" (fun () ->
        let nf = timed t_norm (fun () -> Logic.Normal.of_expr expr) in
        Obs.Trace.add_attr "summands" (Obs.Trace.I (List.length nf));
        nf)
  in
  let num_summands = List.length nf in
  let p =
    List.fold_left
      (fun acc s -> max acc (List.length (Logic.Normal.summand_vars s)))
      0 nf
  in
  if p > 4 then
    Robust.unsupported "Compile: %d variables per summand; at most 4 supported" p;
  let n = Db.Instance.n inst in
  let g = Obs.Trace.span ~scope:"compile" "gaifman" (fun () -> Db.Instance.gaifman inst) in
  let t_orient = ref 0. in
  let coloring =
    Obs.Trace.span ~scope:"compile" "orientation" (fun () ->
        let c =
          timed t_orient (fun () ->
              if p = 0 then
                { Graphs.Tfa.color = Array.make n 0; num_colors = min 1 n; rounds = 0 }
              else Graphs.Tfa.low_treedepth_coloring ~rounds:tfa_rounds g ~p)
        in
        Obs.Trace.add_attr "colors" (Obs.Trace.I c.Graphs.Tfa.num_colors);
        Obs.Trace.add_attr "rounds" (Obs.Trace.I c.Graphs.Tfa.rounds);
        c)
  in
  let color = coloring.Graphs.Tfa.color in
  let holds r tuple =
    if String.length r > 8 && String.sub r 0 8 = "__color_" then
      match tuple with
      | [ v ] -> color.(v) = int_of_string (String.sub r 8 (String.length r - 8))
      | _ -> false
    else Db.Instance.mem inst r tuple
  in
  let b = Circuits.Circuit.builder () in
  let check_budget () =
    match monitor with
    | Some m -> Robust.check m ~gates:(Circuits.Circuit.builder_len b)
    | None -> ()
  in
  let gates = ref [] in
  let num_shapes = ref 0 in
  let max_forest_depth = ref 0 in
  let num_subsets = ref 0 in
  (* constant summands (no variables) compile once *)
  List.iter
    (fun (s : a Logic.Normal.summand) ->
      if Logic.Normal.summand_vars s = [] then begin
        (* a variable-free summand has no literals or weights, only coeffs *)
        let gate =
          match s.Logic.Normal.prod.Logic.Normal.coeffs with
          | [] -> Circuits.Circuit.const b one
          | cs -> Circuits.Circuit.mul b (List.map (Circuits.Circuit.const b) cs)
        in
        gates := gate :: !gates;
        check_budget ()
      end)
    nf;
  Obs.Trace.span ~scope:"compile" "subsets" (fun () ->
  if p > 0 && n > 0 then begin
    let colors_present =
      List.sort_uniq compare (Array.to_list (Array.sub color 0 n))
    in
    let by_color = Hashtbl.create 16 in
    Array.iteri
      (fun v c ->
        Hashtbl.replace by_color c (v :: Option.value ~default:[] (Hashtbl.find_opt by_color c)))
      color;
    let subsets = List.filter (fun s -> s <> []) (subsets_up_to p colors_present) in
    let old_to_new = Array.make n (-1) in
    List.iter
      (fun subset ->
        let verts = List.concat_map (fun c -> Hashtbl.find by_color c) subset in
        if verts <> [] then begin
          (* summands needing at least |subset| variables *)
          let relevant =
            List.filter
              (fun s ->
                let q = List.length (Logic.Normal.summand_vars s) in
                q >= List.length subset && q > 0)
              nf
          in
          if relevant <> [] then begin
            Obs.Trace.span ~scope:"compile" "subset"
              ~attrs:
                [
                  ( "colors",
                    Obs.Trace.S (String.concat "," (List.map string_of_int subset)) );
                  ("verts", Obs.Trace.I (List.length verts));
                ]
            @@ fun () ->
            let gates0 = Circuits.Circuit.builder_len b in
            let shapes0 = !num_shapes in
            check_budget ();
            incr num_subsets;
            let verts = List.sort compare verts in
            let orig = Array.of_list verts in
            Array.iteri (fun i v -> old_to_new.(v) <- i) orig;
            let forest =
              timed t_decomp (fun () ->
                  let sub_edges =
                    List.concat_map
                      (fun v ->
                        List.filter_map
                          (fun w ->
                            if w > v && old_to_new.(w) >= 0 then
                              Some (old_to_new.(v), old_to_new.(w))
                            else None)
                          (Graphs.Graph.neighbors g v))
                      verts
                  in
                  let sub_g = Graphs.Graph.of_edges ~n:(Array.length orig) sub_edges in
                  Graphs.Treedepth.best_forest sub_g)
            in
            let d = Graphs.Forest.max_depth forest in
            if d > max_depth then
              Robust.unsupported
                "Compile: induced forest depth %d exceeds %d; increase tfa_rounds" d
                max_depth;
            max_forest_depth := max !max_forest_depth d;
            let fs =
              {
                Shapes.Forest_compile.forest;
                orig;
                holds;
                dynamic = (fun r -> List.mem r dynamic_rels);
              }
            in
            List.iter
              (fun (s : a Logic.Normal.summand) ->
                let vars = Logic.Normal.summand_vars s in
                List.iter
                  (fun cmap ->
                    let color_lits =
                      List.map
                        (fun (x, c) ->
                          {
                            Logic.Normal.pos = true;
                            atom = Logic.Normal.ARel (color_rel c, [ Logic.Term.Var x ]);
                          })
                        cmap
                    in
                    let s' =
                      {
                        s with
                        Logic.Normal.prod =
                          {
                            s.Logic.Normal.prod with
                            Logic.Normal.lits = color_lits @ s.Logic.Normal.prod.Logic.Normal.lits;
                          };
                      }
                    in
                    let d' = Graphs.Forest.max_depth forest in
                    let shapes =
                      timed t_decomp (fun () -> Shapes.Shape.enumerate ~d:d' ~summand:s' ())
                    in
                    num_shapes := !num_shapes + List.length shapes;
                    let sgates =
                      timed t_emit (fun () ->
                          List.map (Shapes.Forest_compile.compile_shape b fs ~zero ~one) shapes)
                    in
                    let body =
                      match sgates with
                      | [] -> Circuits.Circuit.const b zero
                      | gs -> Circuits.Circuit.add b gs
                    in
                    let gate =
                      match s.Logic.Normal.prod.Logic.Normal.coeffs with
                      | [] -> body
                      | cs ->
                          Circuits.Circuit.mul b
                            (List.map (Circuits.Circuit.const b) cs @ [ body ])
                    in
                    gates := gate :: !gates;
                    check_budget ())
                  (surjective_maps vars subset))
              relevant;
            (* reset the shared index map *)
            Array.iter (fun v -> old_to_new.(v) <- -1) orig;
            Obs.Trace.add_attr "depth" (Obs.Trace.I d);
            Obs.Trace.add_attr "shapes" (Obs.Trace.I (!num_shapes - shapes0));
            Obs.Trace.add_attr "gates_emitted"
              (Obs.Trace.I (Circuits.Circuit.builder_len b - gates0))
          end
        end)
      subsets
  end;
  Obs.Trace.add_attr "subsets" (Obs.Trace.I !num_subsets);
  Obs.Trace.add_attr "shapes" (Obs.Trace.I !num_shapes));
  let raw =
    Obs.Trace.span ~scope:"compile" "finish" (fun () ->
        let output =
          match !gates with
          | [] -> Circuits.Circuit.const b zero
          | gs -> Circuits.Circuit.add b gs
        in
        check_budget ();
        Circuits.Circuit.finish b ~output)
  in
  let optimized = Opt.run ~passes:opt ~zero ~one ~equal raw in
  let circuit = optimized.Opt.circuit in
  if instrumented then begin
    Obs.Counter.incr m_runs;
    Obs.Counter.add m_shapes !num_shapes;
    Obs.Counter.add m_subsets !num_subsets;
    Obs.Histogram.observe h_normalize_ns !t_norm;
    Obs.Histogram.observe h_orientation_ns !t_orient;
    Obs.Histogram.observe h_decompose_ns !t_decomp;
    Obs.Histogram.observe h_emit_ns !t_emit;
    Obs.Histogram.observe h_total_ns (Obs.elapsed_ns t_start);
    let s = Circuits.Circuit.stats circuit in
    Obs.Gauge.set_int g_gates s.Circuits.Circuit.gates;
    Obs.Gauge.set_int g_depth s.Circuits.Circuit.depth;
    Obs.Gauge.set_int g_fan_out s.Circuits.Circuit.max_fan_out;
    Obs.Gauge.set_int g_perm_rows s.Circuits.Circuit.max_perm_rows;
    Obs.Gauge.set_int g_num_perm s.Circuits.Circuit.num_perm;
    Obs.Gauge.set_int g_inputs s.Circuits.Circuit.num_inputs;
    Obs.Trace.add_attr "p" (Obs.Trace.I p);
    Obs.Trace.add_attr "colors" (Obs.Trace.I coloring.Graphs.Tfa.num_colors);
    Obs.Trace.add_attr "gates" (Obs.Trace.I s.Circuits.Circuit.gates);
    Obs.Trace.add_attr "depth" (Obs.Trace.I s.Circuits.Circuit.depth);
    Obs.Trace.add_attr "num_perm" (Obs.Trace.I s.Circuits.Circuit.num_perm);
    Obs.Trace.add_attr "max_perm_rows" (Obs.Trace.I s.Circuits.Circuit.max_perm_rows)
  end;
  ( circuit,
    {
      p;
      num_colors = coloring.Graphs.Tfa.num_colors;
      num_subsets = !num_subsets;
      max_forest_depth = !max_forest_depth;
      num_shapes = !num_shapes;
      num_summands;
      opt = optimized.Opt.report;
    } )
