(** The compilation pipeline of Theorem 6: a fixed closed weighted
    expression and a database from a bounded-expansion class are compiled,
    in time linear in the database, into a circuit with permanent gates
    whose inputs are the tuple weights.

    Pipeline (Figure 2 of the paper, specialized as described in
    DESIGN.md):

    1. normalize the expression into summands Σ_x̄ (coeff · Π lits · Π w)
       (Lemma 28 / Lemma 32);
    2. compute a low-treedepth coloring of the Gaifman graph by
       transitive–fraternal augmentation (Proposition 1);
    3. split the sum over color subsets D of size ≤ p with surjective
       color assignments — identity (12) of Lemma 35;
    4. for each subset, build a low-depth elimination forest of the induced
       subgraph and compile each summand by shapes (Lemmas 29–33), with
       relation literals resolved per shape against the database.

    The pipeline is re-entrant: {!compile_plan} additionally returns a
    {!plan} — the live Gaifman graph, the pinned coloring, and the raw
    circuit sliced into per-color-subset {!segment}s — and
    {!recompile_local} rebuilds only the segments a structural update
    (tuple insert/delete) touches, splicing the untouched gates through
    the optimizer remap machinery. When the treedepth witness of an
    affected subset grows past the compiled [max_depth] bound the
    localized path refuses ({!local_result.Fallback}) and the caller runs
    a full recompile with a fresh coloring — the amortization trigger. *)

type meta = {
  p : int;  (** maximum number of variables in a summand *)
  num_colors : int;
  num_subsets : int;  (** color subsets actually compiled *)
  max_forest_depth : int;
  num_shapes : int;  (** shapes compiled across all subsets *)
  num_summands : int;
  opt : Opt.report;  (** per-pass gate/edge/depth deltas of the optimizer run *)
}

let pp_meta fmt m =
  Format.fprintf fmt "p=%d colors=%d subsets=%d depth<=%d shapes=%d summands=%d gates=%d->%d"
    m.p m.num_colors m.num_subsets m.max_forest_depth m.num_shapes m.num_summands
    m.opt.Opt.r_gates_before m.opt.Opt.r_gates_after

let color_rel c = Printf.sprintf "__color_%d" c

(* Compilation metrics (scope "compile"): per-phase wall time through the
   Figure 2 pipeline, plus the circuit parameters Theorem 6 bounds. The
   gauges hold the most recent compile's values; histograms accumulate
   across compiles. *)
let m_runs = Obs.counter ~scope:"compile" "runs"
let m_shapes = Obs.counter ~scope:"compile" "shapes"
let m_subsets = Obs.counter ~scope:"compile" "subsets"
let m_recompiles = Obs.counter ~scope:"compile" "recompiles_local"
let m_recompile_fallbacks = Obs.counter ~scope:"compile" "recompile_fallbacks"
let m_gates_rebuilt = Obs.counter ~scope:"compile" "gates_rebuilt"
let m_gates_copied = Obs.counter ~scope:"compile" "gates_copied"
let h_total_ns = Obs.histogram ~scope:"compile" "total_ns"
let h_normalize_ns = Obs.histogram ~scope:"compile" "normalize_ns"
let h_orientation_ns = Obs.histogram ~scope:"compile" "orientation_ns"
let h_decompose_ns = Obs.histogram ~scope:"compile" "decompose_ns"
let h_emit_ns = Obs.histogram ~scope:"compile" "emit_ns"
let g_gates = Obs.gauge ~scope:"compile" "gates"
let g_depth = Obs.gauge ~scope:"compile" "depth"
let g_fan_out = Obs.gauge ~scope:"compile" "max_fan_out"
let g_perm_rows = Obs.gauge ~scope:"compile" "max_perm_rows"
let g_num_perm = Obs.gauge ~scope:"compile" "num_perm"
let g_inputs = Obs.gauge ~scope:"compile" "num_inputs"

(* all subsets of [colors present] with size in [1, p] *)
let rec subsets_up_to p = function
  | [] -> [ [] ]
  | c :: rest ->
      let without = subsets_up_to p rest in
      let with_c =
        List.filter_map
          (fun s -> if List.length s < p then Some (c :: s) else None)
          without
      in
      without @ with_c

(* all surjective maps from [vars] onto [subset], as assoc lists *)
let surjective_maps vars subset =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        List.concat_map (fun m -> List.map (fun c -> (x, c) :: m) subset) (go rest)
  in
  List.filter
    (fun m -> List.for_all (fun c -> List.exists (fun (_, c') -> c' = c) m) subset)
    (go vars)

(* the compiled [holds] predicate: color pseudo-relations resolve against
   the pinned coloring, everything else against the (mutable) instance *)
let mk_holds inst (color : int array) r tuple =
  if String.length r > 8 && String.sub r 0 8 = "__color_" then
    match tuple with
    | [ v ] -> color.(v) = int_of_string (String.sub r 8 (String.length r - 8))
    | _ -> false
  else Db.Instance.mem inst r tuple

(* instrumented timing combinator shared by compile and recompile paths;
   the record field keeps it polymorphic past the value restriction *)
type timed = { timed : 'a. float ref -> (unit -> 'a) -> 'a }

let mk_timed () =
  let instrumented = Obs.is_enabled () in
  {
    timed =
      (fun acc f ->
        if instrumented then begin
          let t0 = Obs.now_ns () in
          let r = f () in
          acc := !acc +. Obs.elapsed_ns t0;
          r
        end
        else f ());
  }

(** One contiguous slice of the raw circuit: the gates one color subset
    (or the constant-summand preamble, [seg_subset = None]) compiled to.
    Localized recompiles copy unaffected segments gate for gate and re-run
    only the affected ones. *)
type segment = {
  seg_subset : int list option;
  seg_lo : int;  (** raw gate range [seg_lo, seg_hi) *)
  seg_hi : int;
  seg_tops : int list;  (** this segment's top-level gates, emission order *)
  seg_depth : int;  (** elimination-forest depth used (0 for the preamble) *)
  seg_shapes : int;
}

(** Everything a localized recompile needs: the inputs of the one-shot
    pipeline plus the live graph (with its pinned coloring and forest
    cache) and the segmented raw circuit. The instance and live graph are
    shared mutable state with the caller; the rest is immutable — a
    successful [recompile_local] returns a {e new} plan and the caller
    commits it, so a failed splice never leaves a half-updated plan. *)
type 'a plan = {
  pl_inst : Db.Instance.t;
  pl_nf : 'a Logic.Normal.summand list;
  pl_num_summands : int;
  pl_p : int;
  pl_live : Graphs.Live.t;
  pl_zero : 'a;
  pl_one : 'a;
  pl_equal : 'a -> 'a -> bool;
  pl_opt : Opt.pass list;
  pl_tfa_rounds : int;
  pl_max_depth : int;
  pl_budget : Robust.budget;
  pl_dynamic_rels : string list;
  pl_raw : 'a Circuits.Circuit.t;
  pl_opt_remap : int array;  (** raw gate → optimized gate, -1 if dropped *)
  pl_opt_gates : int;  (** gate count of the optimized circuit *)
  pl_segments : segment list;  (** in raw emission order *)
}

(* Compile one color subset into the builder: the induced elimination
   forest comes from the live graph's per-subset cache, then every
   relevant summand × surjective color map is compiled by shapes. Returns
   the subset's top-level gates (emission order), forest depth, and shape
   count — or [None] when the subset has nothing to compile (both
   conditions depend only on the pinned coloring and the summand set, so
   a skipped subset stays skipped across structural updates). *)
let compile_subset (type a) b ~(nf : a Logic.Normal.summand list) ~holds ~dynamic
    ~(zero : a) ~(one : a) ~(live : Graphs.Live.t) ~(verts : int list) ~check_budget
    ~(max_depth : int) ~timed ~t_decomp ~t_emit subset :
    (int list * int * int) option =
  let relevant =
    List.filter
      (fun s ->
        let q = List.length (Logic.Normal.summand_vars s) in
        q >= List.length subset && q > 0)
      nf
  in
  if verts = [] || relevant = [] then None
  else begin
    Obs.Trace.span ~scope:"compile" "subset"
      ~attrs:
        [
          ("colors", Obs.Trace.S (String.concat "," (List.map string_of_int subset)));
          ("verts", Obs.Trace.I (List.length verts));
        ]
    @@ fun () ->
    let gates0 = Circuits.Circuit.builder_len b in
    check_budget ();
    let forest, orig =
      timed.timed t_decomp (fun () -> Graphs.Live.forest live subset ~verts)
    in
    let d = Graphs.Forest.max_depth forest in
    if d > max_depth then
      Robust.unsupported "Compile: induced forest depth %d exceeds %d; increase tfa_rounds"
        d max_depth;
    let fs = { Shapes.Forest_compile.forest; orig; holds; dynamic } in
    let tops = ref [] in
    let num_shapes = ref 0 in
    List.iter
      (fun (s : a Logic.Normal.summand) ->
        let vars = Logic.Normal.summand_vars s in
        List.iter
          (fun cmap ->
            let color_lits =
              List.map
                (fun (x, c) ->
                  {
                    Logic.Normal.pos = true;
                    atom = Logic.Normal.ARel (color_rel c, [ Logic.Term.Var x ]);
                  })
                cmap
            in
            let s' =
              {
                s with
                Logic.Normal.prod =
                  {
                    s.Logic.Normal.prod with
                    Logic.Normal.lits = color_lits @ s.Logic.Normal.prod.Logic.Normal.lits;
                  };
              }
            in
            let shapes =
              timed.timed t_decomp (fun () -> Shapes.Shape.enumerate ~d ~summand:s' ())
            in
            num_shapes := !num_shapes + List.length shapes;
            let sgates =
              timed.timed t_emit (fun () ->
                  List.map (Shapes.Forest_compile.compile_shape b fs ~zero ~one) shapes)
            in
            let body =
              match sgates with
              | [] -> Circuits.Circuit.const b zero
              | gs -> Circuits.Circuit.add b gs
            in
            let gate =
              match s.Logic.Normal.prod.Logic.Normal.coeffs with
              | [] -> body
              | cs ->
                  Circuits.Circuit.mul b (List.map (Circuits.Circuit.const b) cs @ [ body ])
            in
            tops := gate :: !tops;
            check_budget ())
          (surjective_maps vars subset))
      relevant;
    Obs.Trace.add_attr "depth" (Obs.Trace.I d);
    Obs.Trace.add_attr "shapes" (Obs.Trace.I !num_shapes);
    Obs.Trace.add_attr "gates_emitted"
      (Obs.Trace.I (Circuits.Circuit.builder_len b - gates0));
    Some (List.rev !tops, d, !num_shapes)
  end

(* the vertices whose pinned color lies in [subset], ascending *)
let subset_verts (color : int array) n subset =
  let verts = ref [] in
  for v = n - 1 downto 0 do
    if List.mem color.(v) subset then verts := v :: !verts
  done;
  !verts

(** Compile a closed expression over an instance, returning the circuit,
    its meta, and the {!plan} that makes localized recompiles possible.
    [tfa_rounds] overrides the number of augmentation rounds; [max_depth]
    aborts (with [Robust.Unsupported_fragment]) if some induced forest is
    deeper — a sign the coloring is not low-treedepth enough for this
    pattern size. [budget] limits emitted gates and wall-clock time,
    checked cooperatively as shapes and subsets are compiled; a violation
    raises [Robust.Error (Budget_exceeded _)] instead of exhausting memory
    on a hostile query.

    The raw circuit is then rewritten by the {!Opt} pipeline ([opt],
    default {!Opt.default_passes}; pass [Opt.none] for the raw output).
    [equal] decides constant equality for identity folding / hash-consing
    and defaults to structural equality — pass the semiring's own
    equality when constants have non-canonical representations. The
    per-pass shrink report lands in [meta.opt]. *)
let compile_plan (type a) ~(zero : a) ~(one : a) ?(equal : a -> a -> bool = ( = ))
    ?(opt = Opt.default_passes) ?(tfa_rounds = -1) ?(max_depth = 10)
    ?(budget = Robust.unlimited) ?(dynamic_rels = []) (inst : Db.Instance.t)
    (expr : a Logic.Expr.t) : a Circuits.Circuit.t * meta * a plan =
  Obs.Trace.span ~scope:"compile" "compile" @@ fun () ->
  let monitor = if Robust.is_unlimited budget then None else Some (Robust.start budget) in
  let instrumented = Obs.is_enabled () in
  let t_start = if instrumented then Obs.now_ns () else 0. in
  let t_decomp = ref 0. and t_emit = ref 0. in
  let timed = mk_timed () in
  (match Logic.Expr.free_vars_unique expr with
  | [] -> ()
  | fv ->
      Robust.bad_input "Compile: expression must be closed; free: %s"
        (String.concat "," fv));
  let t_norm = ref 0. in
  let nf =
    Obs.Trace.span ~scope:"compile" "normalize" (fun () ->
        let nf = timed.timed t_norm (fun () -> Logic.Normal.of_expr expr) in
        Obs.Trace.add_attr "summands" (Obs.Trace.I (List.length nf));
        nf)
  in
  let num_summands = List.length nf in
  let p =
    List.fold_left
      (fun acc s -> max acc (List.length (Logic.Normal.summand_vars s)))
      0 nf
  in
  if p > 4 then
    Robust.unsupported "Compile: %d variables per summand; at most 4 supported" p;
  let n = Db.Instance.n inst in
  let live =
    Obs.Trace.span ~scope:"compile" "gaifman" (fun () -> Db.Instance.live_gaifman inst)
  in
  let g = Graphs.Live.snapshot live in
  let t_orient = ref 0. in
  let coloring =
    Obs.Trace.span ~scope:"compile" "orientation" (fun () ->
        let c =
          timed.timed t_orient (fun () ->
              if p = 0 then
                { Graphs.Tfa.color = Array.make n 0; num_colors = min 1 n; rounds = 0 }
              else Graphs.Tfa.low_treedepth_coloring ~rounds:tfa_rounds g ~p)
        in
        Obs.Trace.add_attr "colors" (Obs.Trace.I c.Graphs.Tfa.num_colors);
        Obs.Trace.add_attr "rounds" (Obs.Trace.I c.Graphs.Tfa.rounds);
        c)
  in
  Graphs.Live.set_coloring live coloring;
  let color = coloring.Graphs.Tfa.color in
  let holds = mk_holds inst color in
  let dynamic r = List.mem r dynamic_rels in
  let b = Circuits.Circuit.builder () in
  let check_budget () =
    match monitor with
    | Some m -> Robust.check m ~gates:(Circuits.Circuit.builder_len b)
    | None -> ()
  in
  let gates = ref [] in
  let num_shapes = ref 0 in
  let max_forest_depth = ref 0 in
  let num_subsets = ref 0 in
  let segments = ref [] in
  (* constant summands (no variables) compile once, as the preamble *)
  let pre_tops = ref [] in
  List.iter
    (fun (s : a Logic.Normal.summand) ->
      if Logic.Normal.summand_vars s = [] then begin
        (* a variable-free summand has no literals or weights, only coeffs *)
        let gate =
          match s.Logic.Normal.prod.Logic.Normal.coeffs with
          | [] -> Circuits.Circuit.const b one
          | cs -> Circuits.Circuit.mul b (List.map (Circuits.Circuit.const b) cs)
        in
        gates := gate :: !gates;
        pre_tops := gate :: !pre_tops;
        check_budget ()
      end)
    nf;
  if Circuits.Circuit.builder_len b > 0 || !pre_tops <> [] then
    segments :=
      {
        seg_subset = None;
        seg_lo = 0;
        seg_hi = Circuits.Circuit.builder_len b;
        seg_tops = List.rev !pre_tops;
        seg_depth = 0;
        seg_shapes = 0;
      }
      :: !segments;
  Obs.Trace.span ~scope:"compile" "subsets" (fun () ->
      if p > 0 && n > 0 then begin
        let colors_present =
          List.sort_uniq compare (Array.to_list (Array.sub color 0 n))
        in
        let subsets = List.filter (fun s -> s <> []) (subsets_up_to p colors_present) in
        List.iter
          (fun subset ->
            let verts = subset_verts color n subset in
            let lo = Circuits.Circuit.builder_len b in
            match
              compile_subset b ~nf ~holds ~dynamic ~zero ~one ~live ~verts
                ~check_budget ~max_depth ~timed ~t_decomp ~t_emit subset
            with
            | None -> ()
            | Some (tops, d, shapes) ->
                incr num_subsets;
                num_shapes := !num_shapes + shapes;
                max_forest_depth := max !max_forest_depth d;
                List.iter (fun gate -> gates := gate :: !gates) tops;
                segments :=
                  {
                    seg_subset = Some subset;
                    seg_lo = lo;
                    seg_hi = Circuits.Circuit.builder_len b;
                    seg_tops = tops;
                    seg_depth = d;
                    seg_shapes = shapes;
                  }
                  :: !segments)
          subsets
      end;
      Obs.Trace.add_attr "subsets" (Obs.Trace.I !num_subsets);
      Obs.Trace.add_attr "shapes" (Obs.Trace.I !num_shapes));
  let raw =
    Obs.Trace.span ~scope:"compile" "finish" (fun () ->
        let output =
          match !gates with
          | [] -> Circuits.Circuit.const b zero
          | gs -> Circuits.Circuit.add b gs
        in
        check_budget ();
        Circuits.Circuit.finish b ~output)
  in
  let optimized = Opt.run ~passes:opt ~zero ~one ~equal raw in
  let circuit = optimized.Opt.circuit in
  if instrumented then begin
    Obs.Counter.incr m_runs;
    Obs.Counter.add m_shapes !num_shapes;
    Obs.Counter.add m_subsets !num_subsets;
    Obs.Histogram.observe h_normalize_ns !t_norm;
    Obs.Histogram.observe h_orientation_ns !t_orient;
    Obs.Histogram.observe h_decompose_ns !t_decomp;
    Obs.Histogram.observe h_emit_ns !t_emit;
    Obs.Histogram.observe h_total_ns (Obs.elapsed_ns t_start);
    let s = Circuits.Circuit.stats circuit in
    Obs.Gauge.set_int g_gates s.Circuits.Circuit.gates;
    Obs.Gauge.set_int g_depth s.Circuits.Circuit.depth;
    Obs.Gauge.set_int g_fan_out s.Circuits.Circuit.max_fan_out;
    Obs.Gauge.set_int g_perm_rows s.Circuits.Circuit.max_perm_rows;
    Obs.Gauge.set_int g_num_perm s.Circuits.Circuit.num_perm;
    Obs.Gauge.set_int g_inputs s.Circuits.Circuit.num_inputs;
    Obs.Trace.add_attr "p" (Obs.Trace.I p);
    Obs.Trace.add_attr "colors" (Obs.Trace.I coloring.Graphs.Tfa.num_colors);
    Obs.Trace.add_attr "gates" (Obs.Trace.I s.Circuits.Circuit.gates);
    Obs.Trace.add_attr "depth" (Obs.Trace.I s.Circuits.Circuit.depth);
    Obs.Trace.add_attr "num_perm" (Obs.Trace.I s.Circuits.Circuit.num_perm);
    Obs.Trace.add_attr "max_perm_rows" (Obs.Trace.I s.Circuits.Circuit.max_perm_rows)
  end;
  let meta =
    {
      p;
      num_colors = coloring.Graphs.Tfa.num_colors;
      num_subsets = !num_subsets;
      max_forest_depth = !max_forest_depth;
      num_shapes = !num_shapes;
      num_summands;
      opt = optimized.Opt.report;
    }
  in
  let plan =
    {
      pl_inst = inst;
      pl_nf = nf;
      pl_num_summands = num_summands;
      pl_p = p;
      pl_live = live;
      pl_zero = zero;
      pl_one = one;
      pl_equal = equal;
      pl_opt = opt;
      pl_tfa_rounds = tfa_rounds;
      pl_max_depth = max_depth;
      pl_budget = budget;
      pl_dynamic_rels = dynamic_rels;
      pl_raw = raw;
      pl_opt_remap = optimized.Opt.remap;
      pl_opt_gates = Array.length circuit.Circuits.Circuit.nodes;
      pl_segments = List.rev !segments;
    }
  in
  (circuit, meta, plan)

(** One-shot form: {!compile_plan} with the plan dropped. *)
let compile (type a) ~(zero : a) ~(one : a) ?equal ?opt ?tfa_rounds ?max_depth ?budget
    ?dynamic_rels (inst : Db.Instance.t) (expr : a Logic.Expr.t) :
    a Circuits.Circuit.t * meta =
  let circuit, meta, _plan =
    compile_plan ~zero ~one ?equal ?opt ?tfa_rounds ?max_depth ?budget ?dynamic_rels inst
      expr
  in
  (circuit, meta)

(* exact structural copy of one raw gate into the builder, children
   remapped through [splice]; Add/Mul go through [push] (not the
   singleton-collapsing smart constructors) so copies are gate-for-gate *)
let copy_gate (type a) b (nodes : a Circuits.Circuit.node array) splice id =
  match nodes.(id) with
  | Circuits.Circuit.Input key -> Circuits.Circuit.input b key
  | Circuits.Circuit.Const s -> Circuits.Circuit.const b s
  | Circuits.Circuit.Add gs ->
      Circuits.Circuit.push b (Circuits.Circuit.Add (Array.map (fun g -> splice.(g)) gs))
  | Circuits.Circuit.Mul gs ->
      Circuits.Circuit.push b (Circuits.Circuit.Mul (Array.map (fun g -> splice.(g)) gs))
  | Circuits.Circuit.Perm rows ->
      Circuits.Circuit.push b
        (Circuits.Circuit.Perm (Array.map (Array.map (fun g -> splice.(g))) rows))

(** Result of {!recompile_local}. [Localized] carries the new optimized
    circuit plus the two remap tables the splice layer needs:

    - [remap]: old optimized gate → new optimized gate, [-1] for gates
      that were dropped (their subset was rebuilt);
    - [carry]: new optimized gate → old optimized gate, [-1] for gates
      that must be (re)computed. A carried gate is a structural copy of
      its old self over carried children, so its cached value is still
      valid — this is what makes the splice O(affected subtree).

    [Fallback] is the amortization trigger: the update grew some affected
    subset's elimination-forest depth past the compiled bound, so the
    caller must run a full {!compile_plan} (fresh coloring) instead. *)
type 'a local_result =
  | Localized of {
      circuit : 'a Circuits.Circuit.t;
      meta : meta;
      plan : 'a plan;
      remap : int array;
      carry : int array;
      gates_rebuilt : int;
      gates_copied : int;
    }
  | Fallback of string

(** Rebuild only the color-subset segments affected by a structural
    update touching the vertices [touched] (the tuple's elements): a
    segment is affected iff its subset contains every touched color. The
    untouched segments are copied gate for gate; the whole circuit is
    then re-optimized and the old→new / new→old remap tables are composed
    across the splice. The caller is responsible for having already
    applied the tuple change to the instance and the live graph. *)
let recompile_local (type a) (plan : a plan) ~(touched : int list) : a local_result =
  Obs.Trace.span ~scope:"compile" "recompile_local"
    ~attrs:[ ("touched", Obs.Trace.I (List.length touched)) ]
  @@ fun () ->
  let live = plan.pl_live in
  let coloring =
    match Graphs.Live.coloring live with
    | Some c -> c
    | None -> Robust.divergence "recompile_local: plan has no pinned coloring"
  in
  let color = coloring.Graphs.Tfa.color in
  let n = Db.Instance.n plan.pl_inst in
  let touched_colors = Graphs.Live.colors_of live touched in
  ignore (Graphs.Live.invalidate live ~touched_colors);
  let affected seg =
    match seg.seg_subset with
    | None -> false
    | Some subset -> Graphs.Live.subset_affected ~touched_colors subset
  in
  (* pre-flight: rebuild the affected subsets' forests against the updated
     graph and check the treedepth witness still fits the compiled bound —
     if not, this is the amortization trigger and the caller recompiles
     from scratch with a fresh coloring *)
  let too_deep =
    List.find_map
      (fun seg ->
        match seg.seg_subset with
        | Some subset when affected seg ->
            let verts = subset_verts color n subset in
            let forest, _ = Graphs.Live.forest live subset ~verts in
            let d = Graphs.Forest.max_depth forest in
            if d > plan.pl_max_depth then Some (subset, d) else None
        | _ -> None)
      plan.pl_segments
  in
  match too_deep with
  | Some (subset, d) ->
      Obs.Counter.incr m_recompile_fallbacks;
      Fallback
        (Printf.sprintf
           "treedepth witness of subset {%s} grew to %d, past the compiled bound %d"
           (String.concat "," (List.map string_of_int subset))
           d plan.pl_max_depth)
  | None ->
      let monitor =
        if Robust.is_unlimited plan.pl_budget then None
        else Some (Robust.start plan.pl_budget)
      in
      let timed = mk_timed () in
      let t_decomp = ref 0. and t_emit = ref 0. in
      let holds = mk_holds plan.pl_inst color in
      let dynamic r = List.mem r plan.pl_dynamic_rels in
      let old_raw = plan.pl_raw in
      let old_nodes = old_raw.Circuits.Circuit.nodes in
      let splice = Array.make (Array.length old_nodes) (-1) in
      let b = Circuits.Circuit.builder () in
      let check_budget () =
        match monitor with
        | Some m -> Robust.check m ~gates:(Circuits.Circuit.builder_len b)
        | None -> ()
      in
      let gates = ref [] in
      let segments = ref [] in
      let gates_rebuilt = ref 0 in
      let gates_copied = ref 0 in
      let num_shapes = ref 0 in
      let num_subsets = ref 0 in
      let max_forest_depth = ref 0 in
      List.iter
        (fun seg ->
          let lo = Circuits.Circuit.builder_len b in
          if affected seg then begin
            let subset = Option.get seg.seg_subset in
            (* inputs first created inside this segment's range may be
               referenced by later (copied) segments: re-emit them all so
               the hash-consing resolves; unused ones are DCE'd by opt *)
            for id = seg.seg_lo to seg.seg_hi - 1 do
              match old_nodes.(id) with
              | Circuits.Circuit.Input key ->
                  splice.(id) <- Circuits.Circuit.input b key
              | _ -> ()
            done;
            let verts = subset_verts color n subset in
            match
              compile_subset b ~nf:plan.pl_nf ~holds ~dynamic ~zero:plan.pl_zero
                ~one:plan.pl_one ~live ~verts ~check_budget
                ~max_depth:plan.pl_max_depth ~timed ~t_decomp ~t_emit subset
            with
            | None ->
                (* verts and relevance are static given the pinned
                   coloring, so a compiled subset cannot become empty *)
                Robust.divergence "recompile_local: compiled subset became empty"
            | Some (tops, d, shapes) ->
                let hi = Circuits.Circuit.builder_len b in
                gates_rebuilt := !gates_rebuilt + (hi - lo);
                incr num_subsets;
                num_shapes := !num_shapes + shapes;
                max_forest_depth := max !max_forest_depth d;
                List.iter (fun gate -> gates := gate :: !gates) tops;
                segments :=
                  {
                    seg_subset = Some subset;
                    seg_lo = lo;
                    seg_hi = hi;
                    seg_tops = tops;
                    seg_depth = d;
                    seg_shapes = shapes;
                  }
                  :: !segments
          end
          else begin
            for id = seg.seg_lo to seg.seg_hi - 1 do
              splice.(id) <- copy_gate b old_nodes splice id
            done;
            let hi = Circuits.Circuit.builder_len b in
            gates_copied := !gates_copied + (seg.seg_hi - seg.seg_lo);
            let tops = List.map (fun g -> splice.(g)) seg.seg_tops in
            if seg.seg_subset <> None then begin
              incr num_subsets;
              num_shapes := !num_shapes + seg.seg_shapes;
              max_forest_depth := max !max_forest_depth seg.seg_depth
            end;
            List.iter (fun gate -> gates := gate :: !gates) tops;
            segments := { seg with seg_lo = lo; seg_hi = hi; seg_tops = tops } :: !segments;
            check_budget ()
          end)
        plan.pl_segments;
      let output =
        match !gates with
        | [] -> Circuits.Circuit.const b plan.pl_zero
        | gs -> Circuits.Circuit.add b gs
      in
      check_budget ();
      let raw = Circuits.Circuit.finish b ~output in
      let optimized =
        Opt.run ~passes:plan.pl_opt ~zero:plan.pl_zero ~one:plan.pl_one
          ~equal:plan.pl_equal raw
      in
      let circuit = optimized.Opt.circuit in
      let r_new = optimized.Opt.remap in
      (* compose the remaps across the splice: every old raw gate that was
         copied links its old optimized image to its new optimized image *)
      let remap = Array.make plan.pl_opt_gates (-1) in
      let carry = Array.make (Array.length circuit.Circuits.Circuit.nodes) (-1) in
      Array.iteri
        (fun i j ->
          if j >= 0 then begin
            let a = plan.pl_opt_remap.(i) and bb = r_new.(j) in
            if a >= 0 && bb >= 0 then begin
              if remap.(a) < 0 then remap.(a) <- bb;
              if carry.(bb) < 0 then carry.(bb) <- a
            end
          end)
        splice;
      Obs.Counter.incr m_recompiles;
      Obs.Counter.add m_gates_rebuilt !gates_rebuilt;
      Obs.Counter.add m_gates_copied !gates_copied;
      Obs.Trace.add_attr "gates_rebuilt" (Obs.Trace.I !gates_rebuilt);
      Obs.Trace.add_attr "gates_copied" (Obs.Trace.I !gates_copied);
      let meta =
        {
          p = plan.pl_p;
          num_colors = coloring.Graphs.Tfa.num_colors;
          num_subsets = !num_subsets;
          max_forest_depth = !max_forest_depth;
          num_shapes = !num_shapes;
          num_summands = plan.pl_num_summands;
          opt = optimized.Opt.report;
        }
      in
      let plan' =
        {
          plan with
          pl_raw = raw;
          pl_opt_remap = r_new;
          pl_opt_gates = Array.length circuit.Circuits.Circuit.nodes;
          pl_segments = List.rev !segments;
        }
      in
      Localized
        {
          circuit;
          meta;
          plan = plan';
          remap;
          carry;
          gates_rebuilt = !gates_rebuilt;
          gates_copied = !gates_copied;
        }
