(** Level-parallel evaluation of frozen {!Compact} circuits on OCaml 5
    domains.

    The paper's circuits are bounded-depth and topologically ordered, so a
    full bottom-up evaluation is embarrassingly level-parallel: group gate
    ids by depth at freeze time (a CSR {e level index}, {!plan}), then have
    N domains each evaluate a contiguous chunk of every level, with a
    barrier between levels. All writes land in the existing {!Compact}
    value plane at the writer's own gate ids — chunks are disjoint and
    reads only touch strictly lower levels, so no per-gate synchronization
    is needed: the inter-level barrier is the only ordering edge, and it
    publishes every write of the previous level (release/acquire through
    the barrier's [Atomic]).

    The domain pool is hand-rolled and zero-dependency: workers are
    spawned once (grow-only, up to {!max_domains}) and reused across
    calls, idling on a condition variable between evaluations. Faults
    inside a worker are captured first-fault-wins in an [Atomic] cell —
    every participant keeps hitting the barriers so nothing hangs — and
    re-raised by the caller as a structured {!Robust} error.

    [~domains:1] bypasses all of this and runs {!Compact.eval_into}
    unchanged, so the sequential path stays byte-identical. Concurrent
    parallel evaluations serialize on the pool (one evaluation owns all
    workers at a time). *)

(* --- level index --- *)

type plan = {
  plan_n : int;  (** gate count of the circuit the plan was built for *)
  n_levels : int;
  level_off : int array;  (** n_levels+1 CSR offsets into [level_gates] *)
  level_gates : int array;  (** gate ids grouped by depth, ascending per level *)
}

(** Build the level index of a compact circuit: gate depth is 0 for
    leaves, 1 + max child depth otherwise; one counting sort groups the
    ids. O(gates + wires), done once per frozen circuit. *)
let plan (t : 'a Compact.t) : plan =
  let n = t.Compact.n in
  let child_off = t.Compact.child_off and children = t.Compact.children in
  let depth = Array.make n 0 in
  let max_depth = ref 0 in
  for id = 0 to n - 1 do
    let d = ref 0 in
    for i = child_off.(id) to child_off.(id + 1) - 1 do
      let cd = depth.(children.(i)) + 1 in
      if cd > !d then d := cd
    done;
    depth.(id) <- !d;
    if !d > !max_depth then max_depth := !d
  done;
  let n_levels = !max_depth + 1 in
  let level_off = Array.make (n_levels + 1) 0 in
  Array.iter (fun d -> level_off.(d + 1) <- level_off.(d + 1) + 1) depth;
  for l = 0 to n_levels - 1 do
    level_off.(l + 1) <- level_off.(l + 1) + level_off.(l)
  done;
  let cursor = Array.sub level_off 0 n_levels in
  let level_gates = Array.make n 0 in
  for id = 0 to n - 1 do
    let d = depth.(id) in
    level_gates.(cursor.(d)) <- id;
    cursor.(d) <- cursor.(d) + 1
  done;
  { plan_n = n; n_levels; level_off; level_gates }

let levels (p : plan) = p.n_levels

(* --- pool telemetry ---

   Per-participant busy / barrier-wait nanoseconds for every parallel
   evaluation, plus worker idle time between jobs — the "where does the
   --domains N time actually go" view. Totals accumulate in counters;
   the latest evaluation's per-slot split lands in slot gauges, and each
   barrier crossing feeds a wait histogram (so wait outliers show up in
   the windowed p99). Everything is gated on [Obs.is_enabled]: the
   telemetry-off cost is one load and branch per evaluation and per
   level, never per gate. *)

let m_evals = Obs.counter ~scope:"par" "evals"
let g_domains = Obs.gauge ~scope:"par" "domains"
let h_barrier_wait = Obs.histogram ~scope:"par" "barrier_wait_ns"
let m_busy = Obs.counter ~scope:"par" "busy_ns"
let m_wait = Obs.counter ~scope:"par" "wait_ns"
let m_idle = Obs.counter ~scope:"par" "idle_ns"

(* Lazily registered: slots that never run never appear in snapshots. *)
let slot_gauge slot which = Obs.gauge ~scope:"par" (Printf.sprintf "slot%d_%s" slot which)

(* --- sense-reversing hybrid barrier --- *)

(* Spin briefly on the sense flag (useful only when real cores are
   available), then fall back to a condition variable. The publisher
   flips the sense inside the mutex, and waiters re-check it under the
   same mutex before sleeping, so a wakeup cannot be lost. *)
type barrier = {
  parties : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  bm : Mutex.t;
  bc : Condition.t;
}

let spin_budget = if Domain.recommended_domain_count () > 1 then 4096 else 0

let barrier_make parties =
  {
    parties;
    count = Atomic.make 0;
    sense = Atomic.make false;
    bm = Mutex.create ();
    bc = Condition.create ();
  }

let barrier_await b local_sense =
  if Atomic.fetch_and_add b.count 1 = b.parties - 1 then begin
    (* last arriver: reset and release everyone into the new sense *)
    Atomic.set b.count 0;
    Mutex.lock b.bm;
    Atomic.set b.sense local_sense;
    Condition.broadcast b.bc;
    Mutex.unlock b.bm
  end
  else begin
    let spins = ref 0 in
    while Atomic.get b.sense <> local_sense && !spins < spin_budget do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get b.sense <> local_sense then begin
      Mutex.lock b.bm;
      while Atomic.get b.sense <> local_sense do
        Condition.wait b.bc b.bm
      done;
      Mutex.unlock b.bm
    end
  end

(* --- the domain pool --- *)

(** Hard cap on pool size; also bounds [~domains] (the runtime itself
    refuses to spawn unboundedly many domains). *)
let max_domains = 64

type pool = {
  mutex : Mutex.t;  (** guards every mutable field below *)
  work_cond : Condition.t;  (** workers wait here for a new generation *)
  done_cond : Condition.t;  (** the submitter waits here for completion *)
  submit : Mutex.t;  (** serializes whole evaluations *)
  mutable job : int -> unit;  (** current job, by worker slot (1-based) *)
  mutable gen : int;  (** bumped once per submitted job *)
  mutable pending : int;  (** workers that have not finished the current gen *)
  mutable size : int;  (** spawned workers *)
  mutable workers : unit Domain.t list;
  mutable stop : bool;
}

let the_pool =
  {
    mutex = Mutex.create ();
    work_cond = Condition.create ();
    done_cond = Condition.create ();
    submit = Mutex.create ();
    job = ignore;
    gen = 0;
    pending = 0;
    size = 0;
    workers = [];
    stop = false;
  }

let rec worker_loop (p : pool) (slot : int) (my_gen : int) =
  (* time spent parked between jobs: the idle leg of busy/wait/idle *)
  let idle0 = if Obs.is_enabled () then Obs.now_ns () else Float.nan in
  Mutex.lock p.mutex;
  while p.gen = my_gen && not p.stop do
    Condition.wait p.work_cond p.mutex
  done;
  if p.stop then Mutex.unlock p.mutex
  else begin
    let gen = p.gen and job = p.job in
    Mutex.unlock p.mutex;
    if not (Float.is_nan idle0) then begin
      let idle = Obs.elapsed_ns idle0 in
      Obs.Counter.add m_idle (int_of_float idle);
      Obs.Gauge.set (slot_gauge slot "idle_ns") idle
    end;
    (* jobs capture their own faults; this is a last-ditch guard so a
       leak can never wedge the completion accounting *)
    (try job slot with _ -> ());
    Mutex.lock p.mutex;
    p.pending <- p.pending - 1;
    if p.pending = 0 then Condition.broadcast p.done_cond;
    Mutex.unlock p.mutex;
    worker_loop p slot gen
  end

let shutdown_registered = ref false

(** Stop and join every pooled worker. Runs automatically at exit; safe
    to call when the pool is empty, and the pool is reusable afterwards. *)
let shutdown () =
  let p = the_pool in
  Mutex.lock p.submit;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.submit) @@ fun () ->
  Mutex.lock p.mutex;
  p.stop <- true;
  Condition.broadcast p.work_cond;
  let ws = p.workers in
  p.workers <- [];
  p.size <- 0;
  Mutex.unlock p.mutex;
  List.iter Domain.join ws;
  Mutex.lock p.mutex;
  p.stop <- false;
  Mutex.unlock p.mutex

(* Grow the pool to [k] workers (best-effort: if the runtime refuses to
   spawn more domains we keep what we got). Caller holds [p.submit].
   Returns the worker count actually available. *)
let ensure_workers (p : pool) (k : int) : int =
  Mutex.lock p.mutex;
  let target = min k (max_domains - 1) in
  (try
     while p.size < target do
       let slot = p.size + 1 in
       let gen = p.gen in
       let d = Domain.spawn (fun () -> worker_loop p slot gen) in
       p.workers <- d :: p.workers;
       p.size <- p.size + 1
     done
   with _ -> ());
  if p.size > 0 && not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  let got = p.size in
  Mutex.unlock p.mutex;
  got

(** Current pooled worker count (for tests). *)
let pool_size () =
  Mutex.lock the_pool.mutex;
  let s = the_pool.size in
  Mutex.unlock the_pool.mutex;
  s

(* Run [job slot] on the caller (slot 0) and [parties - 1] workers, and
   wait for all of them. Caller holds [p.submit]. Workers beyond the
   participant count wake, no-op, and go back to sleep — they still count
   toward [pending] so completion accounting stays uniform. *)
let run_job (p : pool) (job : int -> unit) =
  Mutex.lock p.mutex;
  p.job <- job;
  p.gen <- p.gen + 1;
  p.pending <- p.size;
  Condition.broadcast p.work_cond;
  Mutex.unlock p.mutex;
  job 0;
  Mutex.lock p.mutex;
  while p.pending > 0 do
    Condition.wait p.done_cond p.mutex
  done;
  Mutex.unlock p.mutex

(* --- chunked gate evaluation --- *)

(* Evaluate [pl.level_gates.(lo..hi-1)] into the plane — the same
   per-opcode dispatch as {!Compact.eval_into}, restricted to one chunk
   of one level. The plane match is hoisted out of the gate loop exactly
   as in the sequential evaluator. *)
let eval_chunk (type a) (ops : a Semiring.Intf.ops) (t : a Compact.t)
    (valuation : Circuit.input_key -> a) (vals : a Compact.plane) (pl : plan)
    (lo : int) (hi : int) : unit =
  let open Semiring.Intf in
  let opcode = t.Compact.opcode
  and arg = t.Compact.arg
  and child_off = t.Compact.child_off
  and children = t.Compact.children
  and gates = pl.level_gates in
  match vals with
  | Compact.PInt b ->
      for k = lo to hi - 1 do
        let id = Array.unsafe_get gates k in
        let v =
          match Array.unsafe_get opcode id with
          | 0 -> valuation t.Compact.input_keys.(Array.unsafe_get arg id)
          | 1 -> t.Compact.consts.(Array.unsafe_get arg id)
          | 2 ->
              let acc = ref ops.zero in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.add !acc (Bigarray.Array1.unsafe_get b (Array.unsafe_get children i))
              done;
              !acc
          | 3 ->
              let acc = ref ops.one in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.mul !acc (Bigarray.Array1.unsafe_get b (Array.unsafe_get children i))
              done;
              !acc
          | _ -> Perm.Static.perm ops (Compact.perm_matrix t vals id)
        in
        Bigarray.Array1.unsafe_set b id v
      done
  | Compact.PBox a ->
      for k = lo to hi - 1 do
        let id = Array.unsafe_get gates k in
        let v =
          match Array.unsafe_get opcode id with
          | 0 -> valuation t.Compact.input_keys.(Array.unsafe_get arg id)
          | 1 -> t.Compact.consts.(Array.unsafe_get arg id)
          | 2 ->
              let acc = ref ops.zero in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.add !acc (Array.unsafe_get a (Array.unsafe_get children i))
              done;
              !acc
          | 3 ->
              let acc = ref ops.one in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.mul !acc (Array.unsafe_get a (Array.unsafe_get children i))
              done;
              !acc
          | _ -> Perm.Static.perm ops (Compact.perm_matrix t vals id)
        in
        Array.unsafe_set a id v
      done

(* --- fault injection (tests only) --- *)

(** When set, called by every participant at the top of every level with
    [(slot, level)]; an exception it raises takes the normal worker-fault
    path. Used by the chaos tests to prove a faulting domain surfaces as a
    structured error instead of a hang. *)
let chaos_hook : (int -> int -> unit) option Atomic.t = Atomic.make None

(* --- evaluation --- *)

let eval_parallel (type a) (ops : a Semiring.Intf.ops) (t : a Compact.t)
    (valuation : Circuit.input_key -> a) (vals : a Compact.plane) (pl : plan)
    (domains : int) : unit =
  let p = the_pool in
  Mutex.lock p.submit;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.submit) @@ fun () ->
  let workers = ensure_workers p (domains - 1) in
  let parties = 1 + workers in
  if parties = 1 then Compact.eval_into ops t valuation vals
  else begin
    let fault : exn option Atomic.t = Atomic.make None in
    let bar = barrier_make parties in
    let instrumented = Obs.is_enabled () in
    if instrumented then begin
      Obs.Counter.incr m_evals;
      Obs.Gauge.set_int g_domains parties
    end;
    let job slot =
      if slot < parties then begin
        let sense = ref false in
        let job0 = if instrumented then Obs.now_ns () else 0. in
        let busy = ref 0. and wait = ref 0. in
        for level = 0 to pl.n_levels - 1 do
          (* after a fault, keep hitting the barriers (cheaply) so the
             other participants drain instead of deadlocking *)
          (if Atomic.get fault = None then
             try
               (match Atomic.get chaos_hook with
               | Some f -> f slot level
               | None -> ());
               let lo = pl.level_off.(level) and hi = pl.level_off.(level + 1) in
               let len = hi - lo in
               let c_lo = lo + (slot * len / parties)
               and c_hi = lo + ((slot + 1) * len / parties) in
               if c_hi > c_lo then
                 if instrumented then begin
                   let t0 = Obs.now_ns () in
                   eval_chunk ops t valuation vals pl c_lo c_hi;
                   busy := !busy +. Obs.elapsed_ns t0
                 end
                 else eval_chunk ops t valuation vals pl c_lo c_hi
             with e -> ignore (Atomic.compare_and_set fault None (Some e)));
          sense := not !sense;
          if instrumented then begin
            let t0 = Obs.now_ns () in
            barrier_await bar !sense;
            let w = Obs.elapsed_ns t0 in
            wait := !wait +. w;
            Obs.Histogram.observe h_barrier_wait w
          end
          else barrier_await bar !sense
        done;
        if instrumented then begin
          Obs.Counter.add m_busy (int_of_float !busy);
          Obs.Counter.add m_wait (int_of_float !wait);
          Obs.Gauge.set (slot_gauge slot "busy_ns") !busy;
          Obs.Gauge.set (slot_gauge slot "wait_ns") !wait;
          let wall = Obs.elapsed_ns job0 in
          Obs.Gauge.set (slot_gauge slot "util") (if wall > 0. then !busy /. wall else 0.)
        end
      end
    in
    run_job p job;
    match Atomic.get fault with
    | None -> ()
    | Some (Robust.Error _ as e) -> raise e
    | Some e ->
        Robust.divergence "Par.eval: worker domain faulted: %s" (Printexc.to_string e)
  end

(** Evaluate every gate bottom-up into [vals], like {!Compact.eval_into},
    using up to [domains] domains (the calling domain participates, so
    [domains = 4] means the caller plus three pooled workers).
    [?plan] reuses a prebuilt level index; it must come from the same
    circuit. [~domains:1] is exactly the sequential evaluator. *)
let eval_into (type a) ?plan:(pl : plan option) ~(domains : int)
    (ops : a Semiring.Intf.ops) (t : a Compact.t)
    (valuation : Circuit.input_key -> a) (vals : a Compact.plane) : unit =
  let domains = if domains < 1 then 1 else min domains max_domains in
  if domains = 1 || t.Compact.n = 1 then Compact.eval_into ops t valuation vals
  else begin
    let pl =
      match pl with
      | Some p ->
          if p.plan_n <> t.Compact.n then
            Robust.bad_input
              "Par.eval_into: plan built for a %d-gate circuit, got %d gates" p.plan_n
              t.Compact.n;
          p
      | None -> plan t
    in
    eval_parallel ops t valuation vals pl domains
  end

(** Evaluate under a valuation of the input gates and return the output
    gate's value; the parallel counterpart of {!Compact.eval}. *)
let eval (type a) ?plan ~(domains : int) (ops : a Semiring.Intf.ops)
    (t : a Compact.t) (valuation : Circuit.input_key -> a) : a =
  let vals = Compact.make_plane ops t.Compact.n in
  eval_into ?plan ~domains ops t valuation vals;
  Compact.plane_get vals t.Compact.output
