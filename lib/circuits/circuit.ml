(** Circuits over semirings with permanent gates (paper, Section 3).

    A circuit is a DAG of gates: inputs (identified by a weight symbol and
    a tuple), constants, additions (arbitrary fan-in), multiplications
    (arbitrary fan-in; compiled circuits keep these bounded), and permanent
    gates whose inputs form a rows × columns matrix of gates. Gate ids are
    assigned in creation order, which is a topological order.

    The same circuit can be evaluated in any semiring containing its
    constants — the universality at the heart of Theorem 6. *)

type input_key = string * int list
(** (weight symbol, tuple) — the pair (w, ā) indexing an input gate. *)

type 'a node =
  | Input of input_key
  | Const of 'a
  | Add of int array
  | Mul of int array
  | Perm of int array array  (** rows × columns of gate ids *)

type 'a t = {
  nodes : 'a node array;
  output : int;
  input_ids : (input_key, int) Hashtbl.t;
}

(* --- builder --- *)

type 'a builder = {
  mutable buf : 'a node array;
  mutable len : int;
  inputs : (input_key, int) Hashtbl.t;
}

let builder () =
  { buf = Array.make 64 (Add [||]); len = 0; inputs = Hashtbl.create 256 }

let push b node =
  if b.len = Array.length b.buf then begin
    let bigger = Array.make (2 * b.len) (Add [||]) in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- node;
  b.len <- b.len + 1;
  b.len - 1

(** Input gate for a weight tuple; hash-consed so each (w, ā) appears once. *)
let input b key =
  match Hashtbl.find_opt b.inputs key with
  | Some id -> id
  | None ->
      let id = push b (Input key) in
      Hashtbl.replace b.inputs key id;
      id

let const b s = push b (Const s)

(* Children must already exist in the builder: referencing a gate that has
   not been emitted yet would break the creation-order-is-topological
   invariant that evaluation and dynamic maintenance rely on. *)
let check_child b ctx g =
  if g < 0 || g >= b.len then
    Robust.bad_input "Circuit.%s: child gate %d out of range (builder has %d gates)" ctx g
      b.len

(** Addition gate; a single summand collapses to the summand itself. *)
let add b = function
  | [ g ] ->
      check_child b "add" g;
      g
  | gs ->
      List.iter (check_child b "add") gs;
      push b (Add (Array.of_list gs))

(** Multiplication gate; a single factor collapses to the factor itself. *)
let mul b = function
  | [ g ] ->
      check_child b "mul" g;
      g
  | gs ->
      List.iter (check_child b "mul") gs;
      push b (Mul (Array.of_list gs))

(** Permanent gate over a rows × columns matrix of gates. Rows must be
    rectangular: dynamic maintenance ({!Dyn.notify}) decodes a child's
    (row, col) position from a flat slot index as slot / ncols, which is
    meaningless on ragged rows — so those are rejected at construction. *)
let perm b (rows : int array array) =
  if Array.length rows > 0 then begin
    let ncols = Array.length rows.(0) in
    Array.iteri
      (fun r row ->
        if Array.length row <> ncols then
          Robust.bad_input
            "Circuit.perm: ragged permanent gate (row 0 has %d columns, row %d has %d)"
            ncols r (Array.length row))
      rows
  end;
  Array.iter (Array.iter (check_child b "perm")) rows;
  push b (Perm rows)

let finish b ~output =
  if output < 0 || output >= b.len then
    Robust.bad_input "Circuit.finish: output gate %d out of range (builder has %d gates)"
      output b.len;
  (* Validate the topological invariant over every gate — including gates
     emitted through the raw [push] — so hand-built circuits cannot
     silently carry forward or self references that [Dyn]'s wave
     propagation (children settle before parents, by id order) would turn
     into stale values. *)
  for id = 0 to b.len - 1 do
    let check g =
      if g < 0 || g >= id then
        Robust.bad_input
          "Circuit.finish: gate %d references child %d; children must have strictly \
           smaller ids (topological order)"
          id g
    in
    match b.buf.(id) with
    | Input _ | Const _ -> ()
    | Add gs | Mul gs -> Array.iter check gs
    | Perm rows -> Array.iter (Array.iter check) rows
  done;
  { nodes = Array.sub b.buf 0 b.len; output; input_ids = b.inputs }

(** Gates emitted so far — the cooperative gate-budget probe used by
    [Engine.Compile] while the circuit is still under construction. *)
let builder_len b = b.len

(* --- evaluation --- *)

(** Evaluate under a valuation of the input gates. Linear in circuit size
    (permanent gates via the O(2ᵏ·k·n) DP).

    Empty-gate convention (relied on by the optimizer, {!Opt}):
    [Add [||]] evaluates to [ops.zero] and [Mul [||]] evaluates to
    [ops.one] — the fold seeds below are the neutral elements, so a gate
    whose children were all folded away denotes the corresponding
    identity, in every semiring. *)
let eval (ops : 'a Semiring.Intf.ops) (c : 'a t) (valuation : input_key -> 'a) : 'a =
  let open Semiring.Intf in
  let values = Array.make (Array.length c.nodes) ops.zero in
  Array.iteri
    (fun id node ->
      values.(id) <-
        (match node with
        | Input key -> valuation key
        | Const s -> s
        | Add gs -> Array.fold_left (fun acc g -> ops.add acc values.(g)) ops.zero gs
        | Mul gs -> Array.fold_left (fun acc g -> ops.mul acc values.(g)) ops.one gs
        | Perm rows -> Perm.Static.perm ops (Array.map (Array.map (fun g -> values.(g))) rows)))
    c.nodes;
  values.(c.output)

(* --- statistics (the bounded-ness claims of Theorem 6) --- *)

type stats = {
  gates : int;
  edges : int;
  depth : int;
  max_fan_in : int;
  max_fan_out : int;
  max_perm_rows : int;
  num_perm : int;
  num_inputs : int;
  dead_gates : int;  (** gates outside the output cone *)
}

let stats (c : 'a t) : stats =
  let n = Array.length c.nodes in
  let depth = Array.make n 0 in
  let fan_out = Array.make n 0 in
  let live = Array.make n false in
  let edges = ref 0 in
  let max_fan_in = ref 0 in
  let max_perm_rows = ref 0 in
  let num_perm = ref 0 in
  let num_inputs = ref 0 in
  Array.iteri
    (fun id node ->
      let fan_in = ref 0 in
      let visit g =
        incr fan_in;
        if depth.(g) >= depth.(id) then depth.(id) <- depth.(g) + 1;
        fan_out.(g) <- fan_out.(g) + 1
      in
      (match node with
      | Input _ -> incr num_inputs
      | Const _ -> ()
      | Add gs | Mul gs -> Array.iter visit gs
      | Perm rows ->
          incr num_perm;
          max_perm_rows := max !max_perm_rows (Array.length rows);
          Array.iter (Array.iter visit) rows);
      edges := !edges + !fan_in;
      max_fan_in := max !max_fan_in !fan_in)
    c.nodes;
  (* Output-cone liveness: one reverse sweep suffices since children have
     smaller ids than their parents (topological order). *)
  if n > 0 then live.(c.output) <- true;
  for id = n - 1 downto 0 do
    if live.(id) then
      match c.nodes.(id) with
      | Input _ | Const _ -> ()
      | Add gs | Mul gs -> Array.iter (fun g -> live.(g) <- true) gs
      | Perm rows -> Array.iter (Array.iter (fun g -> live.(g) <- true)) rows
  done;
  let dead = ref 0 in
  Array.iter (fun l -> if not l then incr dead) live;
  {
    gates = n;
    edges = !edges;
    depth = Array.fold_left max 0 depth;
    max_fan_in = !max_fan_in;
    max_fan_out = Array.fold_left max 0 fan_out;
    max_perm_rows = !max_perm_rows;
    num_perm = !num_perm;
    num_inputs = !num_inputs;
    dead_gates = !dead;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "gates=%d edges=%d depth=%d fan_in<=%d fan_out<=%d perm_gates=%d perm_rows<=%d inputs=%d dead=%d"
    s.gates s.edges s.depth s.max_fan_in s.max_fan_out s.num_perm s.max_perm_rows s.num_inputs
    s.dead_gates
