(** Circuits over semirings with permanent gates (paper, Section 3).

    A circuit is a DAG of gates: inputs (identified by a weight symbol and
    a tuple), constants, additions (arbitrary fan-in), multiplications
    (arbitrary fan-in; compiled circuits keep these bounded), and permanent
    gates whose inputs form a rows × columns matrix of gates. Gate ids are
    assigned in creation order, which is a topological order.

    The same circuit can be evaluated in any semiring containing its
    constants — the universality at the heart of Theorem 6. *)

type input_key = string * int list
(** (weight symbol, tuple) — the pair (w, ā) indexing an input gate. *)

type 'a node =
  | Input of input_key
  | Const of 'a
  | Add of int array
  | Mul of int array
  | Perm of int array array  (** rows × columns of gate ids *)

type 'a t = {
  nodes : 'a node array;
  output : int;
  input_ids : (input_key, int) Hashtbl.t;
}

(* --- builder --- *)

type 'a builder = {
  mutable buf : 'a node array;
  mutable len : int;
  inputs : (input_key, int) Hashtbl.t;
}

let builder () =
  { buf = Array.make 64 (Add [||]); len = 0; inputs = Hashtbl.create 256 }

let push b node =
  if b.len = Array.length b.buf then begin
    let bigger = Array.make (2 * b.len) (Add [||]) in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- node;
  b.len <- b.len + 1;
  b.len - 1

(** Input gate for a weight tuple; hash-consed so each (w, ā) appears once. *)
let input b key =
  match Hashtbl.find_opt b.inputs key with
  | Some id -> id
  | None ->
      let id = push b (Input key) in
      Hashtbl.replace b.inputs key id;
      id

let const b s = push b (Const s)

(** Addition gate; a single summand collapses to the summand itself. *)
let add b = function [ g ] -> g | gs -> push b (Add (Array.of_list gs))

(** Multiplication gate; a single factor collapses to the factor itself. *)
let mul b = function [ g ] -> g | gs -> push b (Mul (Array.of_list gs))

(** Permanent gate over a rows × columns matrix of gates. Rows must be
    rectangular: dynamic maintenance ({!Dyn.notify}) decodes a child's
    (row, col) position from a flat slot index as slot / ncols, which is
    meaningless on ragged rows — so those are rejected at construction. *)
let perm b (rows : int array array) =
  if Array.length rows > 0 then begin
    let ncols = Array.length rows.(0) in
    Array.iteri
      (fun r row ->
        if Array.length row <> ncols then
          Robust.bad_input
            "Circuit.perm: ragged permanent gate (row 0 has %d columns, row %d has %d)"
            ncols r (Array.length row))
      rows
  end;
  push b (Perm rows)

let finish b ~output =
  if output < 0 || output >= b.len then invalid_arg "Circuit.finish: bad output gate";
  { nodes = Array.sub b.buf 0 b.len; output; input_ids = b.inputs }

(** Gates emitted so far — the cooperative gate-budget probe used by
    [Engine.Compile] while the circuit is still under construction. *)
let builder_len b = b.len

(* --- evaluation --- *)

(** Evaluate under a valuation of the input gates. Linear in circuit size
    (permanent gates via the O(2ᵏ·k·n) DP). *)
let eval (ops : 'a Semiring.Intf.ops) (c : 'a t) (valuation : input_key -> 'a) : 'a =
  let open Semiring.Intf in
  let values = Array.make (Array.length c.nodes) ops.zero in
  Array.iteri
    (fun id node ->
      values.(id) <-
        (match node with
        | Input key -> valuation key
        | Const s -> s
        | Add gs -> Array.fold_left (fun acc g -> ops.add acc values.(g)) ops.zero gs
        | Mul gs -> Array.fold_left (fun acc g -> ops.mul acc values.(g)) ops.one gs
        | Perm rows -> Perm.Static.perm ops (Array.map (Array.map (fun g -> values.(g))) rows)))
    c.nodes;
  values.(c.output)

(* --- statistics (the bounded-ness claims of Theorem 6) --- *)

type stats = {
  gates : int;
  edges : int;
  depth : int;
  max_fan_in : int;
  max_fan_out : int;
  max_perm_rows : int;
  num_perm : int;
  num_inputs : int;
}

let children = function
  | Input _ | Const _ -> [||]
  | Add gs | Mul gs -> gs
  | Perm rows -> Array.concat (Array.to_list rows)

let stats (c : 'a t) : stats =
  let n = Array.length c.nodes in
  let depth = Array.make n 0 in
  let fan_out = Array.make n 0 in
  let edges = ref 0 in
  let max_fan_in = ref 0 in
  let max_perm_rows = ref 0 in
  let num_perm = ref 0 in
  let num_inputs = ref 0 in
  Array.iteri
    (fun id node ->
      (match node with
      | Perm rows ->
          incr num_perm;
          max_perm_rows := max !max_perm_rows (Array.length rows)
      | Input _ -> incr num_inputs
      | _ -> ());
      let cs = children node in
      edges := !edges + Array.length cs;
      max_fan_in := max !max_fan_in (Array.length cs);
      let d = Array.fold_left (fun acc g -> max acc (depth.(g) + 1)) 0 cs in
      depth.(id) <- d;
      Array.iter (fun g -> fan_out.(g) <- fan_out.(g) + 1) cs)
    c.nodes;
  {
    gates = n;
    edges = !edges;
    depth = Array.fold_left max 0 depth;
    max_fan_in = !max_fan_in;
    max_fan_out = Array.fold_left max 0 fan_out;
    max_perm_rows = !max_perm_rows;
    num_perm = !num_perm;
    num_inputs = !num_inputs;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "gates=%d edges=%d depth=%d fan_in<=%d fan_out<=%d perm_gates=%d perm_rows<=%d inputs=%d"
    s.gates s.edges s.depth s.max_fan_in s.max_fan_out s.num_perm s.max_perm_rows s.num_inputs
