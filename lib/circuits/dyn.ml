(** Dynamic circuit evaluation under input updates (Section 4).

    Three strategies, chosen from the semiring's capabilities:

    - {b General} (Corollary 13): wide additions and multiplications are
      rebalanced into binary trees and every permanent gate carries a
      segment-tree permanent, so an input update costs
      O(3ᵏ log n · reach-out) — logarithmic, and tight by Proposition 14.
    - {b Ring} (Corollary 17): additions keep a running sum updated by
      x ↦ x − old + new; permanent gates carry power-sum permanents.
      Constant-time updates for circuits of bounded depth and fan-in.
    - {b Finite} (Corollary 20): additions keep per-element counters (the
      counting gates of Lemma 18) and permanent gates carry column-type
      counting permanents. Constant-time updates.

    The strategy is picked automatically: [elements] ⇒ Finite,
    else [neg] ⇒ Ring, else General. *)

type mode = General | Ring | Finite

(** Which gate-storage the wave engine runs over: [Compact] (default) is
    the CSR/struct-of-arrays runtime of {!Compact} — flat opcode and
    child arrays, CSR parent lists, and a Bigarray value plane for
    machine-int semirings; [Boxed] is the pointer-graph runtime, kept as
    the sequential twin for differential testing and benchmarking. Both
    run the same heap/undo-log/journal machinery and are observationally
    identical. *)
type backend = Boxed | Compact

(* Update reach-out metrics (scope "dyn"): Corollary 13 claims O(3ᵏ log n)
   touched gates per update for general semirings, Corollaries 17/20 claim
   O(1) for rings and finite semirings. [touched_per_update] is the direct
   observable for those bounds; [update_ns] its wall-clock shadow. Batched
   updates are tracked separately: [batch_size] is how many writes arrived
   per {!set_inputs} call and [touched_per_batch] how many gate
   recomputations the single shared wave needed — the ratio against
   [batch_size] × [touched_per_update] is the ancestor-dedup win. *)
let m_creates_general = Obs.counter ~scope:"dyn" "creates_general"
let m_creates_ring = Obs.counter ~scope:"dyn" "creates_ring"
let m_creates_finite = Obs.counter ~scope:"dyn" "creates_finite"
let m_updates = Obs.counter ~scope:"dyn" "updates"
let m_touched = Obs.counter ~scope:"dyn" "touched_gates"
let h_touched = Obs.histogram ~scope:"dyn" "touched_per_update"
let h_update_ns = Obs.histogram ~scope:"dyn" "update_ns"
let m_batches = Obs.counter ~scope:"dyn" "batches"
let h_batch_size = Obs.histogram ~scope:"dyn" "batch_size"
let h_touched_batch = Obs.histogram ~scope:"dyn" "touched_per_batch"
let h_batch_ns = Obs.histogram ~scope:"dyn" "batch_ns"

(* Recovery observables (scope "dyn"): waves unwound by the undo log, and
   full rebuilds that cleared a poisoned structure. *)
let m_rollbacks = Obs.counter ~scope:"dyn" "rollbacks"
let m_repairs = Obs.counter ~scope:"dyn" "repairs"

(* Structural-splice observables: circuits spliced after a localized
   recompile, and how many gates each splice carried over vs rebuilt. *)
let m_splices = Obs.counter ~scope:"dyn" "splices"
let m_splice_carried = Obs.counter ~scope:"dyn" "splice_carried_gates"
let m_splice_rebuilt = Obs.counter ~scope:"dyn" "splice_rebuilt_gates"

(** Raised by every read/update once a fault mid-update has left the
    incremental state inconsistent {e and} the rollback that should have
    undone the wave failed too; carries the original failure. The only
    ways out are {!repair} or a fresh {!create}. *)
exception Poisoned of string

(** Raised by {!set_input}/{!set_inputs} when a mid-wave fault was caught
    and the undo log restored the structure bit-for-bit to its pre-wave
    state: the update did {e not} apply, but the circuit stays healthy and
    every later read or update works; carries the original failure. *)
exception Rolled_back of string

let () =
  Printexc.register_printer (function
    | Poisoned m -> Some ("Circuits.Dyn.Poisoned (" ^ m ^ ")")
    | Rolled_back m -> Some ("Circuits.Dyn.Rolled_back (" ^ m ^ ")")
    | _ -> None)

type 'a perm_state =
  | PSeg of 'a Perm.Segtree.t
  | PRing of 'a Perm.Ring.t
  | PFin of 'a Perm.Finite.t

type 'a aux =
  | ANone
  | APerm of 'a perm_state * int  (** columns count, for slot decoding *)
  | ACount of int array  (** finite-mode addition: per-element counters *)

(** One cell of the per-wave undo log, recorded {e before} the mutation it
    covers. Unwinding the log in reverse restores the structure exactly:
    when a cell was mutated several times in one wave, its first-logged
    (pre-wave) value is applied last and wins. *)
type 'a undo_entry =
  | UNop  (** consumed / free slot *)
  | UTouch of int * 'a
      (** first contact with a gate this wave: restores its pre-wave value
          and re-establishes the between-waves invariants ([wave_in] false,
          [pending] empty) — one entry covers every later mutation of the
          gate's value, flag, and pending list in this wave *)
  | UCounts of int array * int array
      (** counting gate touched this wave: (live counters, pre-wave copy) —
          the per-element array is small (|S| entries), so one snapshot at
          first contact replaces logging every counter move *)
  | USeg of 'a Perm.Segtree.t * 'a Perm.Segtree.undo
  | URing of 'a Perm.Ring.t * 'a Perm.Ring.undo
  | UFin of 'a Perm.Finite.t * 'a Perm.Finite.undo

(** Gate topology, per backend. Parent edges carry (parent id, slot in
    the parent's child order) — the boxed twin keeps them as per-gate
    lists, the compact runtime as one CSR triple so a wave's parent scan
    is a flat array walk with no pointer chasing. *)
type 'a topo =
  | TBoxed of {
      nodes : 'a Circuit.node array;
      parents : (int * int) list array;
    }
  | TFlat of {
      cc : 'a Compact.t;
      par_off : int array;  (** n+1 CSR offsets *)
      par_gate : int array;  (** parent gate ids *)
      par_slot : int array;  (** slot of the child in that parent *)
    }

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  mode : mode;
  n : int;  (** gate count *)
  topo : 'a topo;
  output : int;
  input_ids : (Circuit.input_key, int) Hashtbl.t;
  values : 'a Compact.plane;
      (** current gate values; Bigarray-backed on the compact backend for
          machine-int semirings, a boxed array otherwise *)
  aux : 'a aux array;
  fin_ctx : 'a Perm.Finite.ctx option;
  mutable wave_heap : int array;
      (** binary min-heap of queued gate ids; reused across waves so the
          hot loop allocates nothing *)
  mutable wave_len : int;  (** live prefix of [wave_heap] *)
  wave_in : bool array;
      (** per gate: queued in the current wave (snapshot saved)? doubles as
          the stamped-flag for inputs during {!set_inputs}' stamp phase *)
  wave_saved : 'a array;  (** per queued gate: value before the wave *)
  pending : (int * int * 'a) list array;
      (** per permanent gate: (row, col, v) entry writes accumulated since
          its last recomputation, flushed in one {!Perm.Segtree.set_many}
          (resp. Ring/Finite) when the wave reaches the gate *)
  mutable update_ops : int;  (** gate recomputations since creation (for benches) *)
  mutable obs_tick : int;
      (** single-wave update counter driving the 1-in-64 systematic
          sample of the per-update latency/size histograms and flight
          spans: counters stay exact (cost attribution and the
          cross-checks read those), while the histograms trade
          completeness for keeping the whole telemetry layer inside its
          ≤5% budget on sub-µs updates *)
  mutable cost_log : int list ref option;
      (** when attached ({!set_cost_log}), the touched-gate count of every
          {e committed} wave is pushed onto the list — the raw material of
          per-query cost attribution (rolled-back waves never commit, so
          the log agrees with the "dyn" touched counters by construction) *)
  mutable undo_log : 'a undo_entry array;
      (** reusable scratch log of the running wave's prior cells; unwound
          in reverse on a mid-wave fault, reset on commit *)
  mutable undo_len : int;  (** live prefix of [undo_log] *)
  mutable journal : 'a Journal.t option;
      (** when attached, every committed update batch is appended (queries'
          temporary flips and {!replay} itself are excluded) *)
  mutable poisoned : string option;
      (** set when a mid-propagation exception escaped {e and} the rollback
          failed: gate values may be stale, so every subsequent read raises
          {!Poisoned} until {!repair} rebuilds the state *)
  mutable fault_hook : (int -> unit) option;
      (** test-only fault injection, called with the gate id before each
          recomputation; a raise here simulates a mid-update crash *)
  mutable rollback_fault_hook : (unit -> unit) option;
      (** test-only fault injection at the start of a rollback; a raise
          here simulates a crash during recovery itself (→ poisoned) *)
  ext_remap : int array;
      (** external (pre-balance) gate id → internal gate id; identity
          outside General mode. Lets {!splice} translate a carry table
          expressed over the optimizer's circuit into internal ids *)
  synth : int array array;
      (** per external gate: the internal gates [balance] synthesized for
          its binary tree, in emission order — structurally equal external
          gates get positionally corresponding trees, so a splice can
          carry the synthesized subtree values too *)
}

(* Rebalance wide Add/Mul gates into binary trees (General mode); also
   returns the external→internal remap and, per external gate, the
   synthesized tree-internal gates in emission order. The tree shape is a
   pure function of the fan-in, so structurally equal external gates have
   positionally corresponding synth arrays. *)
let balance (c : 'a Circuit.t) : 'a Circuit.t * int array * int array array =
  let b = Circuit.builder () in
  let n = Array.length c.Circuit.nodes in
  let remap = Array.make n (-1) in
  let synth = Array.make n [||] in
  let rec tree mk = function
    | [] -> invalid_arg "Dyn.balance: empty gate list"
    | [ g ] -> g
    | gs ->
        let n = List.length gs in
        let left = List.filteri (fun i _ -> i < n / 2) gs in
        let right = List.filteri (fun i _ -> i >= n / 2) gs in
        mk [ tree mk left; tree mk right ]
  in
  Array.iteri
    (fun id node ->
      let len0 = Circuit.builder_len b in
      let nid =
        match node with
        | Circuit.Input key -> Circuit.input b key
        | Circuit.Const s -> Circuit.const b s
        | Circuit.Add [||] -> Circuit.push b (Circuit.Add [||])
        | Circuit.Mul [||] -> Circuit.push b (Circuit.Mul [||])
        | Circuit.Add gs ->
            tree (fun l -> Circuit.push b (Circuit.Add (Array.of_list l)))
              (List.map (fun g -> remap.(g)) (Array.to_list gs))
        | Circuit.Mul gs ->
            tree (fun l -> Circuit.push b (Circuit.Mul (Array.of_list l)))
              (List.map (fun g -> remap.(g)) (Array.to_list gs))
        | Circuit.Perm rows -> Circuit.perm b (Array.map (Array.map (fun g -> remap.(g))) rows)
      in
      let len1 = Circuit.builder_len b in
      if len1 - len0 > 1 then begin
        (* everything created for this gate except the gate itself *)
        let extra = ref [] in
        for g = len1 - 1 downto len0 do
          if g <> nid then extra := g :: !extra
        done;
        synth.(id) <- Array.of_list !extra
      end;
      remap.(id) <- nid)
    c.Circuit.nodes;
  (Circuit.finish b ~output:remap.(c.Circuit.output), remap, synth)

let pick_mode (ops : 'a Semiring.Intf.ops) =
  match (ops.Semiring.Intf.elements, ops.Semiring.Intf.neg) with
  | Some _, _ -> Finite
  | None, Some _ -> Ring
  | None, None -> General

let mode_name = function General -> "general" | Ring -> "ring" | Finite -> "finite"
let backend_name = function Boxed -> "boxed" | Compact -> "compact"

(* (Re)compute every derived gate value and auxiliary structure bottom-up
   from the current input/const values: one topological pass, exactly the
   initial-evaluation semantics on either gate layout. Shared by [create]
   and [repair]. With [~prefilled:true] (compact backend only) every gate
   value is already in the plane — a parallel full evaluation ran first —
   and this pass only builds the auxiliary structures: permanent
   maintenance state (whose [perm] rewrites the gate value with the same
   permanent) and Finite-mode counters.

   [skip] marks gates whose value and aux were already carried over by
   {!splice} — they are left untouched; [on_build] fires before each gate
   that is (re)built, carrying the fault-injection and cost-accounting
   hooks of the splice path. *)
let init_derived ?(prefilled = false) ?(skip = fun _ -> false) ?(on_build = fun _ -> ())
    (ops : 'a Semiring.Intf.ops) mode fin_ctx (topo : 'a topo)
    (values : 'a Compact.plane) (aux : 'a aux array) =
  let open Semiring.Intf in
  let vget g = Compact.plane_get values g in
  let vset id v = Compact.plane_set values id v in
  let mk_perm id m ncols =
    let st =
      match mode with
      | General -> PSeg (Perm.Segtree.create ops m)
      | Ring -> PRing (Perm.Ring.create ops m)
      | Finite -> PFin (Perm.Finite.create ops m)
    in
    aux.(id) <- APerm (st, ncols);
    vset id
      (match st with
      | PSeg s -> Perm.Segtree.perm s
      | PRing s -> Perm.Ring.perm s
      | PFin s -> Perm.Finite.perm s)
  in
  (* Finite mode: a counting gate's per-element counters (Lemma 18). *)
  let mk_counts id iter_children =
    match fin_ctx with
    | Some ctx ->
        let counts = Array.make (Array.length ctx.Perm.Finite.elems) 0 in
        iter_children (fun g ->
            let i = Perm.Finite.index_of ctx (vget g) in
            counts.(i) <- counts.(i) + 1);
        aux.(id) <- ACount counts
    | None -> ()
  in
  match topo with
  | TBoxed b ->
      Array.iteri
        (fun id node ->
          if not (skip id) then
            match node with
            | Circuit.Input _ -> ()
            | Circuit.Const s ->
                on_build id;
                vset id s
            | Circuit.Add gs ->
                on_build id;
                vset id (Array.fold_left (fun acc g -> ops.add acc (vget g)) ops.zero gs);
                mk_counts id (fun visit -> Array.iter visit gs)
            | Circuit.Mul gs ->
                on_build id;
                vset id (Array.fold_left (fun acc g -> ops.mul acc (vget g)) ops.one gs)
            | Circuit.Perm rows ->
                on_build id;
                let m = Array.map (Array.map vget) rows in
                let ncols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
                mk_perm id m ncols)
        b.nodes
  | TFlat fl ->
      let cc = fl.cc in
      let off = cc.Compact.child_off and ch = cc.Compact.children in
      for id = 0 to cc.Compact.n - 1 do
        if not (skip id) then
          match cc.Compact.opcode.(id) with
          | 0 (* input *) -> ()
          | 1 (* const *) ->
              if not prefilled then begin
                on_build id;
                vset id cc.Compact.consts.(cc.Compact.arg.(id))
              end
          | 2 (* add *) ->
              if not prefilled then begin
                on_build id;
                let acc = ref ops.zero in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := ops.add !acc (vget ch.(i))
                done;
                vset id !acc
              end;
              mk_counts id (fun visit ->
                  for i = off.(id) to off.(id + 1) - 1 do
                    visit ch.(i)
                  done)
          | 3 (* mul *) ->
              if not prefilled then begin
                on_build id;
                let acc = ref ops.one in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := ops.mul !acc (vget ch.(i))
                done;
                vset id !acc
              end
          | _ (* perm *) ->
              on_build id;
              let ncols = cc.Compact.perm_cols.(cc.Compact.arg.(id)) in
              mk_perm id (Compact.perm_matrix cc values id) ncols
      done

(* Build the per-backend gate storage for a circuit: the topology (boxed
   parent lists or the CSR triple), the input-key table, and an
   uninitialized value plane. Shared by [create] and [splice]. *)
let make_structure (type a) backend (ops : a Semiring.Intf.ops) (c : a Circuit.t) :
    a topo * (Circuit.input_key, int) Hashtbl.t * a Compact.plane =
  let n = Array.length c.Circuit.nodes in
  match backend with
  | Boxed ->
      let parents = Array.make n [] in
      Array.iteri
        (fun id node ->
          match node with
          | Circuit.Input _ | Circuit.Const _ -> ()
          | Circuit.Add gs | Circuit.Mul gs ->
              Array.iteri (fun slot g -> parents.(g) <- (id, slot) :: parents.(g)) gs
          | Circuit.Perm rows ->
              let ncols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
              Array.iteri
                (fun r row ->
                  Array.iteri
                    (fun cidx g -> parents.(g) <- (id, (r * ncols) + cidx) :: parents.(g))
                    row)
                rows)
        c.Circuit.nodes;
      ( TBoxed { nodes = c.Circuit.nodes; parents },
        c.Circuit.input_ids,
        Compact.boxed_plane ops n )
  | Compact ->
      let cc = Compact.of_circuit c in
      let nch = Array.length cc.Compact.children in
      (* parent CSR: count, prefix-sum, fill (parents end up in
         ascending parent-id order) *)
      let par_off = Array.make (n + 1) 0 in
      Array.iter (fun g -> par_off.(g + 1) <- par_off.(g + 1) + 1) cc.Compact.children;
      for g = 0 to n - 1 do
        par_off.(g + 1) <- par_off.(g + 1) + par_off.(g)
      done;
      let par_gate = Array.make nch 0 and par_slot = Array.make nch 0 in
      let cursor = Array.sub par_off 0 n in
      let coff = cc.Compact.child_off in
      for id = 0 to n - 1 do
        for i = coff.(id) to coff.(id + 1) - 1 do
          let g = cc.Compact.children.(i) in
          par_gate.(cursor.(g)) <- id;
          par_slot.(cursor.(g)) <- i - coff.(id);
          cursor.(g) <- cursor.(g) + 1
        done
      done;
      ( TFlat { cc; par_off; par_gate; par_slot },
        cc.Compact.input_ids,
        Compact.make_plane ops n )

(* identity external↔internal mapping for the modes that do not balance *)
let identity_remap n = (Array.init n (fun i -> i), Array.make n [||])

let create ?mode ?(backend = Compact) ?(domains = 1) (ops : 'a Semiring.Intf.ops)
    (c : 'a Circuit.t) (valuation : Circuit.input_key -> 'a) : 'a t =
  let mode = match mode with Some m -> m | None -> pick_mode ops in
  Obs.Trace.span ~scope:"dyn" "create"
    ~attrs:
      [
        ("mode", Obs.Trace.S (mode_name mode));
        ("backend", Obs.Trace.S (backend_name backend));
        ("domains", Obs.Trace.I domains);
        ("gates", Obs.Trace.I (Array.length c.Circuit.nodes));
      ]
  @@ fun () ->
  let c, ext_remap, synth =
    if mode = General then balance c
    else
      let r, s = identity_remap (Array.length c.Circuit.nodes) in
      (c, r, s)
  in
  let n = Array.length c.Circuit.nodes in
  let topo, input_ids, values = make_structure backend ops c in
  (* seed input values *)
  (match topo with
  | TBoxed b ->
      Array.iteri
        (fun id node ->
          match node with
          | Circuit.Input key -> Compact.plane_set values id (valuation key)
          | _ -> ())
        b.nodes
  | TFlat fl ->
      let cc = fl.cc in
      Array.iteri
        (fun id op ->
          if op = 0 then
            Compact.plane_set values id
              (valuation cc.Compact.input_keys.(cc.Compact.arg.(id))))
        cc.Compact.opcode);
  let aux = Array.make n ANone in
  let fin_ctx = if mode = Finite then Some (Perm.Finite.make_ctx ops) else None in
  (* With extra domains and the compact backend, the O(size) initial
     bottom-up evaluation runs level-parallel; the remaining sequential
     pass only builds aux structures (identical final state — the aux
     [perm] recomputes the same permanents the parallel pass wrote). *)
  (match topo with
  | TFlat fl when domains > 1 ->
      Par.eval_into ~domains ops fl.cc valuation values;
      init_derived ~prefilled:true ops mode fin_ctx topo values aux
  | _ -> init_derived ops mode fin_ctx topo values aux);
  Obs.Counter.incr
    (match mode with
    | General -> m_creates_general
    | Ring -> m_creates_ring
    | Finite -> m_creates_finite);
  {
    ops;
    mode;
    n;
    topo;
    output = c.Circuit.output;
    input_ids;
    values;
    aux;
    fin_ctx;
    wave_heap = Array.make 16 0;
    wave_len = 0;
    wave_in = Array.make n false;
    wave_saved = Array.make n ops.Semiring.Intf.zero;
    pending = Array.make n [];
    update_ops = 0;
    obs_tick = 0;
    cost_log = None;
    undo_log = Array.make 64 UNop;
    undo_len = 0;
    journal = None;
    poisoned = None;
    fault_hook = None;
    rollback_fault_hook = None;
    ext_remap;
    synth;
  }

let poisoned t = t.poisoned
let set_fault_hook t h = t.fault_hook <- h
let set_rollback_fault_hook t h = t.rollback_fault_hook <- h

(** Total gate recomputations since creation; the cumulative counter the
    per-query cost reports are cross-checked against. *)
let update_ops t = t.update_ops

(** Attach (or detach, with [None]) a per-wave cost sink: each committed
    wave appends its touched-gate count. One sink at a time; [Eval]'s cost
    measurement owns the attach/detach bracket. *)
let set_cost_log t sink = t.cost_log <- sink

let num_gates t = t.n
let backend t = match t.topo with TBoxed _ -> Boxed | TFlat _ -> Compact

(* Plane accessors for the current gate values. *)
let vget t id = Compact.plane_get t.values id
let vset t id v = Compact.plane_set t.values id v

let check_live t =
  match t.poisoned with Some msg -> raise (Poisoned msg) | None -> ()

let value t =
  check_live t;
  vget t t.output

let gate_value t id =
  check_live t;
  vget t id

(* Reusable binary min-heap over gate ids (creation order = topological
   order), stored in the structure so propagation waves allocate nothing.
   Gates are deduplicated through [wave_in] before pushing, so the heap
   never holds duplicates. *)
let heap_push t g =
  let len = t.wave_len in
  if len = Array.length t.wave_heap then begin
    let bigger = Array.make (2 * len) 0 in
    Array.blit t.wave_heap 0 bigger 0 len;
    t.wave_heap <- bigger
  end;
  t.wave_heap.(len) <- g;
  t.wave_len <- len + 1;
  let i = ref len in
  while !i > 0 && t.wave_heap.((!i - 1) / 2) > t.wave_heap.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = t.wave_heap.(p) in
    t.wave_heap.(p) <- t.wave_heap.(!i);
    t.wave_heap.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  let g = t.wave_heap.(0) in
  t.wave_len <- t.wave_len - 1;
  t.wave_heap.(0) <- t.wave_heap.(t.wave_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < t.wave_len && t.wave_heap.(l) < t.wave_heap.(!s) then s := l;
    if r < t.wave_len && t.wave_heap.(r) < t.wave_heap.(!s) then s := r;
    if !s = !i then continue := false
    else begin
      let tmp = t.wave_heap.(!s) in
      t.wave_heap.(!s) <- t.wave_heap.(!i);
      t.wave_heap.(!i) <- tmp;
      i := !s
    end
  done;
  g

(* --- the per-wave undo log --- *)

let push_undo t e =
  let len = t.undo_len in
  if len = Array.length t.undo_log then begin
    let bigger = Array.make (2 * len) UNop in
    Array.blit t.undo_log 0 bigger 0 len;
    t.undo_log <- bigger
  end;
  t.undo_log.(len) <- e;
  t.undo_len <- len + 1

(* Drop the log on a successful commit; slots are blanked so the old
   values (and any superseded perm node arrays they keep alive) can be
   collected, but the array itself is reused by the next wave. *)
let undo_reset t =
  for i = 0 to t.undo_len - 1 do
    t.undo_log.(i) <- UNop
  done;
  t.undo_len <- 0

(* Unwind the running wave: reverse-apply every logged prior cell, then
   drain the heap. The wave_in flags of still-queued gates are cleared by
   their UFlag entries (between waves the flag is false everywhere), and
   [wave_saved] is pure scratch, so after this the structure is
   bit-for-bit the pre-wave one. Raises only if the undo itself faults —
   the caller then falls back to poisoning. *)
let rollback t =
  (match t.rollback_fault_hook with Some h -> h () | None -> ());
  for i = t.undo_len - 1 downto 0 do
    (match t.undo_log.(i) with
    | UNop -> ()
    | UTouch (id, v) ->
        vset t id v;
        t.wave_in.(id) <- false;
        t.pending.(id) <- []
    | UCounts (live, snap) -> Array.blit snap 0 live 0 (Array.length snap)
    | USeg (s, u) -> Perm.Segtree.undo_apply s u
    | URing (s, u) -> Perm.Ring.undo_apply s u
    | UFin (s, u) -> Perm.Finite.undo_apply s u);
    t.undo_log.(i) <- UNop
  done;
  t.undo_len <- 0;
  t.wave_len <- 0

(* A wave committed: forget the undo log and journal the batch. *)
let commit_wave t (writes : (Circuit.input_key * 'a) list) =
  undo_reset t;
  match t.journal with None -> () | Some j -> Journal.append j writes

(* A wave faulted: try to unwind it. On success the structure is healthy
   again and the caller's update reports [Rolled_back]; if the rollback
   itself raises, the structure is truly inconsistent — poison it as the
   last resort (only {!repair} clears it). The flight recorder fires in
   both cases, tagged with the outcome. *)
let fault_wave t (e : exn) : 'b =
  match rollback t with
  | () ->
      Obs.Counter.incr m_rollbacks;
      Obs.Trace.dump_flight
        ~reason:("Circuits.Dyn rolled_back mid-wave fault: " ^ Printexc.to_string e)
        ();
      raise (Rolled_back (Printexc.to_string e))
  | exception re ->
      t.poisoned <- Some (Printexc.to_string e);
      Obs.Trace.dump_flight
        ~reason:
          (Printf.sprintf "Circuits.Dyn poisoned mid-wave: %s (rollback failed: %s)"
             (Printexc.to_string e) (Printexc.to_string re))
        ();
      raise e

(* Is this gate an addition? The only kind query [notify] needs beyond
   what the aux array already encodes (APerm ⇔ Perm, ACount ⇔ Finite-mode
   Add): Ring mode must not apply the add-delta to Mul gates. *)
let gate_is_add t id =
  match t.topo with
  | TBoxed b -> ( match b.nodes.(id) with Circuit.Add _ -> true | _ -> false)
  | TFlat fl -> fl.cc.Compact.opcode.(id) = 2

(* Apply the effect of a child's value change on a parent's auxiliary
   state; cheap bookkeeping only, no recomputation. Permanent gates only
   accumulate the entry write — the wave flushes all of a gate's pending
   writes through one [set_many] when it recomputes the gate, so a batch
   touching many columns pays each leaf-to-root path segment once. Every
   mutation logs its prior cell first. *)
let notify t parent slot ~old_v ~new_v =
  let open Semiring.Intf in
  match t.aux.(parent) with
  | APerm (_, ncols) ->
      (* the cons chain is dropped wholesale by the parent's UTouch
         (between waves every pending list is empty) *)
      let row = slot / ncols and col = slot mod ncols in
      t.pending.(parent) <- (row, col, new_v) :: t.pending.(parent)
  | ACount counts ->
      (* counter drift is covered by the UCounts snapshot pushed at the
         gate's first contact this wave *)
      let ctx = Option.get t.fin_ctx in
      let oi = Perm.Finite.index_of ctx old_v and ni = Perm.Finite.index_of ctx new_v in
      counts.(oi) <- counts.(oi) - 1;
      counts.(ni) <- counts.(ni) + 1
  | ANone ->
      if t.mode = Ring && gate_is_add t parent then begin
        (* value drift is covered by the parent's first-contact UTouch *)
        let neg = Option.get t.ops.neg in
        vset t parent (t.ops.add (t.ops.add (vget t parent) (neg old_v)) new_v)
      end

(* Counting gate readout: Σ_e count_e · e via the lasso (Lemma 18). *)
let count_value t counts =
  let open Semiring.Intf in
  let ctx = Option.get t.fin_ctx in
  let acc = ref t.ops.zero in
  Array.iteri
    (fun i cnt ->
      if cnt > 0 then
        acc :=
          t.ops.add !acc
            (Perm.Finite.scale ctx (Perm.Finite.count_of_int ctx cnt) ctx.Perm.Finite.elems.(i)))
    counts;
  !acc

(* Flush a permanent gate's accumulated pending entry writes through one
   batched [set_many], then read the permanent. The perm undo cell is
   pushed before the flush starts, so a flush interrupted halfway is
   still fully covered by the log. *)
let perm_value t id st =
  (match t.pending.(id) with
  | [] -> ()
  | pend ->
      (* the gate's UTouch already restores pending to [] on rollback *)
      t.pending.(id) <- [];
      (* accumulated newest-first; sequential order = reverse *)
      let writes = List.rev pend in
      (match st with
      | PSeg s ->
          let u = Perm.Segtree.undo_create () in
          push_undo t (USeg (s, u));
          Perm.Segtree.set_many_logged s u writes
      | PRing s ->
          let u = Perm.Ring.undo_create () in
          push_undo t (URing (s, u));
          Perm.Ring.set_many_logged s u writes
      | PFin s ->
          let u = Perm.Finite.undo_create () in
          push_undo t (UFin (s, u));
          Perm.Finite.set_many_logged s u writes));
  match st with
  | PSeg s -> Perm.Segtree.perm s
  | PRing s -> Perm.Ring.perm s
  | PFin s -> Perm.Finite.perm s

(* Recompute a gate's value from its children/auxiliary state. *)
let recompute t id =
  let open Semiring.Intf in
  (match t.fault_hook with Some h -> h id | None -> ());
  t.update_ops <- t.update_ops + 1;
  match t.topo with
  | TBoxed b -> (
      match (b.nodes.(id), t.aux.(id)) with
      | Circuit.Input _, _ | Circuit.Const _, _ -> vget t id
      | Circuit.Add _, ANone when t.mode = Ring -> vget t id (* maintained by deltas *)
      | Circuit.Add _, ACount counts -> count_value t counts
      | Circuit.Add gs, _ ->
          Array.fold_left (fun acc g -> t.ops.add acc (vget t g)) t.ops.zero gs
      | Circuit.Mul gs, _ ->
          Array.fold_left (fun acc g -> t.ops.mul acc (vget t g)) t.ops.one gs
      | Circuit.Perm _, APerm (st, _) -> perm_value t id st
      | Circuit.Perm _, _ -> invalid_arg "Dyn: permanent gate without state")
  | TFlat fl -> (
      let cc = fl.cc in
      match cc.Compact.opcode.(id) with
      | 0 | 1 -> vget t id
      | 4 -> (
          match t.aux.(id) with
          | APerm (st, _) -> perm_value t id st
          | _ -> invalid_arg "Dyn: permanent gate without state")
      | opc -> (
          match t.aux.(id) with
          | ACount counts -> count_value t counts
          | _ when opc = 2 && t.mode = Ring -> vget t id (* maintained by deltas *)
          | _ ->
              let off = cc.Compact.child_off and ch = cc.Compact.children in
              if opc = 2 then begin
                let acc = ref t.ops.zero in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := t.ops.add !acc (vget t ch.(i))
                done;
                !acc
              end
              else begin
                let acc = ref t.ops.one in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := t.ops.mul !acc (vget t ch.(i))
                done;
                !acc
              end))

(* Queue one parent for recomputation (saving its pre-wave value on first
   contact) and push the child's delta into its auxiliary state. *)
let enqueue_one t p slot ~old_v ~new_v =
  if not t.wave_in.(p) then begin
    push_undo t (UTouch (p, vget t p));
    (match t.aux.(p) with
    | ACount counts -> push_undo t (UCounts (counts, Array.copy counts))
    | _ -> ());
    t.wave_in.(p) <- true;
    t.wave_saved.(p) <- vget t p;
    heap_push t p
  end;
  notify t p slot ~old_v ~new_v

(* Queue [g]'s parents for recomputation; a flat parent scan on the
   compact backend, a list walk on the boxed twin. *)
let enqueue_parents t g ~old_v ~new_v =
  match t.topo with
  | TBoxed b -> List.iter (fun (p, slot) -> enqueue_one t p slot ~old_v ~new_v) b.parents.(g)
  | TFlat fl ->
      for i = fl.par_off.(g) to fl.par_off.(g + 1) - 1 do
        enqueue_one t fl.par_gate.(i) fl.par_slot.(i) ~old_v ~new_v
      done

(* Drain the heap in topological (gate-id) order. Children always have
   smaller ids than parents, so when a gate is popped every queued child
   has already settled — each touched gate is recomputed exactly once per
   wave no matter how many dirty inputs reach it. *)
let run_wave t =
  while t.wave_len > 0 do
    let g = heap_pop t in
    (* no undo cell for this clear: false is the between-waves state *)
    t.wave_in.(g) <- false;
    let old_g = t.wave_saved.(g) in
    let new_g = recompute t g in
    (* the write is covered by the gate's first-contact UTouch *)
    vset t g new_g;
    if not (t.ops.Semiring.Intf.equal old_g new_g) then
      enqueue_parents t g ~old_v:old_g ~new_v:new_g
  done

(** Update one input weight; propagates along all ancestor paths in
    topological order. The wave is transactional: if anything raises
    mid-propagation (crash, fault injection) the undo log restores the
    structure bit-for-bit to its pre-wave state and {!Rolled_back} is
    raised — the circuit stays healthy and retryable. Only when the
    rollback itself faults is the structure poisoned: gate values may then
    be stale, so rather than silently returning corrupt answers every
    later read or update raises {!Poisoned} until {!repair}. *)
let set_input t (key : Circuit.input_key) v =
  check_live t;
  match Hashtbl.find_opt t.input_ids key with
  | None -> invalid_arg "Dyn.set_input: unknown input (weight symbol, tuple)"
  | Some id ->
      let old_v = vget t id in
      if not (t.ops.Semiring.Intf.equal old_v v) then begin
        let instrumented = Obs.is_enabled () in
        (* 1-in-64 systematic sample: the wall-clock reads, histogram
           observes and flight-ring span below cost more than a small
           wave itself; the exact counters carry the totals, while the
           latency/size histograms and the flight context see every 64th
           wave (and every wave while a trace is being recorded) *)
        let sampled =
          instrumented
          &&
          (t.obs_tick <- t.obs_tick + 1;
           t.obs_tick land 63 = 0)
        in
        let t0 = if sampled then Obs.now_ns () else 0. in
        let ops0 = t.update_ops in
        (try
          (* The wave span lands in the flight recorder during unwinding,
             before the recovery handler below fires — span_hot
             materializes the span on a fault even when this wave was not
             sampled, so a post-mortem dump always contains the fatal
             wave. *)
          Obs.Trace.span_hot ~force:sampled ~scope:"dyn" "update" (fun () ->
              push_undo t (UTouch (id, vget t id));
              vset t id v;
              enqueue_parents t id ~old_v ~new_v:v;
              run_wave t;
              (* only a live span can carry the attribute; skipping the
                 call on the bare path saves a boxed attr per wave *)
              if sampled || Obs.Trace.is_recording () then
                Obs.Trace.add_attr "touched" (Obs.Trace.I (t.update_ops - ops0)))
        with e -> fault_wave t e);
        commit_wave t [ (key, v) ];
        (match t.cost_log with
        | Some sink -> sink := (t.update_ops - ops0) :: !sink
        | None -> ());
        if instrumented then begin
          let touched = t.update_ops - ops0 in
          (* touched_gates stays exact per wave (cost attribution
             cross-checks it); the updates counter advances in blocks of
             64 on the sampled tick — ≤63 single waves per instance are
             in flight at any instant, a diagnostic-grade lag *)
          Obs.Counter.add m_touched touched;
          if sampled then begin
            Obs.Counter.add m_updates 64;
            Obs.Histogram.observe h_touched (float_of_int touched);
            Obs.Histogram.observe h_update_ns (Obs.elapsed_ns t0)
          end
        end
      end

(** Batched update: stamp every dirty input first, then run a {e single}
    topological propagation wave. A gate reachable from several dirty
    inputs is recomputed once per wave instead of once per constituent
    update, so the per-touched-gate costs of Corollaries 13/17/20 are
    unchanged while shared ancestors are deduplicated. Semantically
    equivalent to applying the assignments with {!set_input} left to right
    (later writes to the same input win). Unknown keys are rejected before
    any mutation; an exception mid-wave rolls the whole batch back (or, if
    the rollback itself faults, poisons the structure) exactly like
    {!set_input}. *)
let set_inputs t (assignments : (Circuit.input_key * 'a) list) =
  check_live t;
  match assignments with
  | [] -> ()
  | [ (key, v) ] -> set_input t key v
  | _ ->
      let resolved =
        List.map
          (fun (key, v) ->
            match Hashtbl.find_opt t.input_ids key with
            | Some id -> (id, v)
            | None -> invalid_arg "Dyn.set_inputs: unknown input (weight symbol, tuple)")
          assignments
      in
      let instrumented = Obs.is_enabled () in
      let t0 = if instrumented then Obs.now_ns () else 0. in
      let ops0 = t.update_ops in
      let dirty = ref 0 in
      (try
        Obs.Trace.span ~scope:"dyn" "batch"
          ~attrs:[ ("writes", Obs.Trace.I (List.length assignments)) ]
          (fun () ->
            (* Stamp phase: apply every write, remembering each input's
               pre-batch value on first contact ([wave_in] doubles as the
               stamped flag — inputs have no children, so they are never
               heap-queued and the flag cannot collide with the wave's use). *)
            let stamped =
              List.filter_map
                (fun (id, v) ->
                  if t.wave_in.(id) then begin
                    (* re-stamped input: its first UTouch already holds the
                       pre-batch value *)
                    vset t id v;
                    None
                  end
                  else if t.ops.Semiring.Intf.equal (vget t id) v then None
                  else begin
                    push_undo t (UTouch (id, vget t id));
                    t.wave_in.(id) <- true;
                    t.wave_saved.(id) <- vget t id;
                    vset t id v;
                    Some id
                  end)
                resolved
            in
            (* Propagation phase: one shared wave over every net change. *)
            List.iter
              (fun id ->
                t.wave_in.(id) <- false;
                let old_v = t.wave_saved.(id) and new_v = vget t id in
                if not (t.ops.Semiring.Intf.equal old_v new_v) then begin
                  incr dirty;
                  enqueue_parents t id ~old_v ~new_v
                end)
              stamped;
            run_wave t;
            Obs.Trace.add_attr "dirty" (Obs.Trace.I !dirty);
            Obs.Trace.add_attr "touched" (Obs.Trace.I (t.update_ops - ops0)))
      with e -> fault_wave t e);
      commit_wave t assignments;
      (match t.cost_log with
      | Some sink -> sink := (t.update_ops - ops0) :: !sink
      | None -> ());
      if instrumented then begin
        let touched = t.update_ops - ops0 in
        Obs.Counter.incr m_batches;
        Obs.Counter.add m_updates !dirty;
        Obs.Counter.add m_touched touched;
        Obs.Histogram.observe h_batch_size (float_of_int (List.length assignments));
        Obs.Histogram.observe h_touched_batch (float_of_int touched);
        Obs.Histogram.observe h_batch_ns (Obs.elapsed_ns t0)
      end

(** Current value of an input gate. *)
let input_value t key =
  match Hashtbl.find_opt t.input_ids key with
  | Some id -> Some (vget t id)
  | None -> None

let has_input t key = Hashtbl.mem t.input_ids key

(** Temporarily set some inputs, run [f], restore — the free-variable query
    mechanism in the proof of Theorem 8. Both directions go through
    {!set_inputs}, so the 2·|x̄| weight flips of a tuple query cost two
    propagation waves instead of 2·|x̄|. The restore runs under
    [Fun.protect] (in reverse order, so duplicate keys land back on their
    first-saved value): a raising [f] no longer leaves the temporary
    weights stuck and silently corrupting every later read. The journal
    is suspended for the duration — a query's temporary flips are not
    committed state and must not bloat (or corrupt) a later replay. *)
let with_temp t (assignments : (Circuit.input_key * 'a) list) (f : unit -> 'b) : 'b =
  check_live t;
  let known = List.filter (fun (key, _) -> has_input t key) assignments in
  let saved =
    List.filter_map
      (fun (key, _) -> Option.map (fun old_v -> (key, old_v)) (input_value t key))
      known
  in
  let journal = t.journal in
  t.journal <- None;
  Fun.protect
    ~finally:(fun () -> t.journal <- journal)
    (fun () ->
      set_inputs t known;
      Fun.protect
        ~finally:(fun () ->
          (* If [f] poisoned the structure the incremental state is already
             unrecoverable and restoring would raise [Poisoned] out of
             [~finally], masking [f]'s own exception. *)
          if t.poisoned = None then set_inputs t (List.rev saved))
        f)

(* --- recovery and durability --- *)

(** Rebuild every derived gate value, auxiliary structure and pending
    buffer from the currently stored input values in one full-eval pass —
    the self-healing big hammer. Clears the poison (and any half-applied
    wave state), so a structure whose rollback failed becomes consistent
    with its inputs again; the cost is the same as the initial build. Safe
    (and idempotent) on a healthy structure. *)
let repair t =
  Obs.Trace.span ~scope:"dyn" "repair"
    ~attrs:[ ("gates", Obs.Trace.I t.n) ]
  @@ fun () ->
  for i = 0 to t.n - 1 do
    t.wave_in.(i) <- false;
    t.pending.(i) <- []
  done;
  t.wave_len <- 0;
  undo_reset t;
  init_derived t.ops t.mode t.fin_ctx t.topo t.values t.aux;
  t.poisoned <- None;
  Obs.Counter.incr m_repairs

(* --- structural splice --- *)

type splice_report = {
  sp_carried : int;  (** gates whose value/aux crossed over untouched *)
  sp_rebuilt : int;  (** gates recomputed bottom-up *)
  sp_retired : int;  (** old gates with no image in the new structure *)
}

(* Uniform structural view of one gate on either backend, for the carry
   check ([Perm] children row-major on both). *)
type 'a view =
  | VInput of Circuit.input_key
  | VConst of 'a
  | VAdd of int array
  | VMul of int array
  | VPerm of int array * int  (** row-major children, column count *)

let gate_view (topo : 'a topo) id : 'a view =
  match topo with
  | TBoxed b -> (
      match b.nodes.(id) with
      | Circuit.Input key -> VInput key
      | Circuit.Const s -> VConst s
      | Circuit.Add gs -> VAdd gs
      | Circuit.Mul gs -> VMul gs
      | Circuit.Perm rows ->
          let ncols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
          VPerm (Array.concat (Array.to_list rows), ncols))
  | TFlat fl -> (
      let cc = fl.cc in
      let kids () =
        Array.sub cc.Compact.children
          cc.Compact.child_off.(id)
          (cc.Compact.child_off.(id + 1) - cc.Compact.child_off.(id))
      in
      match cc.Compact.opcode.(id) with
      | 0 -> VInput cc.Compact.input_keys.(cc.Compact.arg.(id))
      | 1 -> VConst cc.Compact.consts.(cc.Compact.arg.(id))
      | 2 -> VAdd (kids ())
      | 3 -> VMul (kids ())
      | _ -> VPerm (kids (), cc.Compact.perm_cols.(cc.Compact.arg.(id))))

(** Replace the compiled circuit by [c] — the output of a localized
    recompile — building the new runtime structure {e aside} and carrying
    over every gate the recompile left untouched. [carry.(j)] names, for
    new (optimizer-level) gate [j], the old optimizer-level gate whose
    value it must equal, or [-1] if the gate was rebuilt; [valuation]
    supplies values for input keys the old structure does not hold (new
    keys; existing carried inputs keep their old values).

    The wave is transactional by construction: the old structure is never
    mutated while the new one is built, so a mid-splice fault (e.g. the
    fault-injection hook) discards the new structure and raises
    {!Rolled_back} with the old structure intact — or, if the
    rollback-fault hook raises too, poisons the old structure and
    re-raises, exactly the three outcomes of a weight wave.

    On success the returned structure supersedes [t]: permanent
    maintenance state is transferred by pointer, so the old [t] is
    poisoned and must not be updated again (reads raise {!Poisoned};
    {!repair} would resurrect it with fresh aux, deliberately). The
    carry is re-verified gate by gate against the actual topologies —
    a carried gate must have the same shape and carried children as its
    source, else it is demoted to rebuilt — so a wrong carry table
    degrades splice cost, never correctness. *)
let splice (t : 'a t) (c : 'a Circuit.t) ~(carry : int array)
    (valuation : Circuit.input_key -> 'a) : 'a t * splice_report =
  check_live t;
  if Array.length carry <> Array.length c.Circuit.nodes then
    Robust.bad_input "Dyn.splice: carry table has %d entries for %d gates"
      (Array.length carry) (Array.length c.Circuit.nodes);
  Obs.Trace.span ~scope:"dyn" "splice"
    ~attrs:
      [
        ("old_gates", Obs.Trace.I t.n);
        ("new_gates", Obs.Trace.I (Array.length c.Circuit.nodes));
      ]
  @@ fun () ->
  let c, ext_remap, synth =
    if t.mode = General then balance c
    else
      let r, s = identity_remap (Array.length c.Circuit.nodes) in
      (c, r, s)
  in
  let n = Array.length c.Circuit.nodes in
  let topo, input_ids, values = make_structure (backend t) t.ops c in
  (* Translate the optimizer-level carry into internal ids. Balance tree
     shape is a pure function of the fan-in, so when a carried gate's
     synthesized-subtree sizes agree on both sides the tree-internal
     gates correspond positionally and cross over too. *)
  let src = Array.make n (-1) in
  Array.iteri
    (fun ext_new old_ext ->
      if old_ext >= 0 then begin
        src.(ext_remap.(ext_new)) <- t.ext_remap.(old_ext);
        let s_new = synth.(ext_new) and s_old = t.synth.(old_ext) in
        if Array.length s_new = Array.length s_old then
          Array.iteri (fun k g -> src.(g) <- s_old.(k)) s_new
      end)
    carry;
  (* Index the old circuit's derived gates by (kind, children, arity) so
     the promotion step below can recover correspondences the carry table
     missed — chiefly the fan-in trees the optimizer's balance pass
     synthesizes, which have no raw-circuit preimage and so can never be
     carried through the raw-level remap composition. First occurrence
     wins; the promotion walk is ascending, so a resolved child set
     uniquely keys the matching old gate. *)
  let old_shape : (int * int array * int, int list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let old_consts = ref [] in
  (* Addition is commutative in every semiring, so Add gates are keyed
     (and later compared) as sorted child multisets — re-optimization is
     free to permute a sum's operands. Mul and Perm stay order-exact.
     Buckets hold every old gate with a given shape: balance trees
     routinely mint several gates over the same children (e.g. chunked
     sums of a repeated operand), and each needs its own source because
     the final map must stay injective. *)
  let sorted ks =
    let s = Array.copy ks in
    Array.sort compare s;
    s
  in
  for i = 0 to t.n - 1 do
    let key =
      match gate_view t.topo i with
      | VInput _ -> None
      | VConst _ ->
          old_consts := i :: !old_consts;
          None
      | VAdd ks -> Some (2, sorted ks, 0)
      | VMul ks -> Some (3, ks, 0)
      | VPerm (ks, nc) -> Some (4, ks, nc)
    in
    match key with
    | Some k -> (
        match Hashtbl.find_opt old_shape k with
        | Some bucket -> bucket := i :: !bucket
        | None -> Hashtbl.add old_shape k (ref [ i ]))
    | None -> ()
  done;
  let old_consts = List.rev !old_consts in
  let find_unclaimed claimed key =
    match Hashtbl.find_opt old_shape key with
    | None -> None
    | Some bucket -> List.find_opt (fun i -> not claimed.(i)) !bucket
  in
  (* Ascending promotion + defensive demotion. Promotion: an unmatched
     new gate whose children all resolved adopts the old gate with the
     identical shape over those sources, if any. Demotion: a gate stays
     carried only if its source has the identical shape — equal key for
     inputs, equal value for constants — and every child is carried from
     the corresponding old child (children precede the gate, so their
     final verdict is already in [src]). [claimed] keeps the final map
     injective: permanent-tracking aux transfers by pointer, so two new
     gates must never share one old source. *)
  let claimed = Array.make t.n false in
  for j = 0 to n - 1 do
    (if src.(j) < 0 then
       match gate_view topo j with
       | VInput key -> (
           match Hashtbl.find_opt t.input_ids key with
           | Some i when not claimed.(i) -> src.(j) <- i
           | _ -> ())
       | VConst v -> (
           match
             List.find_opt
               (fun i ->
                 (not claimed.(i))
                 &&
                 match gate_view t.topo i with
                 | VConst b -> t.ops.Semiring.Intf.equal v b
                 | _ -> false)
               old_consts
           with
           | Some i -> src.(j) <- i
           | None -> ())
       | VAdd ks | VMul ks | VPerm (ks, _) ->
           let resolved = Array.map (fun ch -> src.(ch)) ks in
           if Array.for_all (fun i -> i >= 0) resolved then begin
             let key =
               match gate_view topo j with
               | VMul _ -> (3, resolved, 0)
               | VPerm (_, nc) -> (4, resolved, nc)
               | _ -> (2, sorted resolved, 0)
             in
             match find_unclaimed claimed key with
             | Some i -> src.(j) <- i
             | None -> ()
           end);
    if src.(j) >= 0 then begin
      let i = src.(j) in
      let kids_match c_new c_old =
        Array.length c_new = Array.length c_old
        && begin
             let ok = ref true in
             Array.iteri (fun l ch -> if src.(ch) <> c_old.(l) then ok := false) c_new;
             !ok
           end
      in
      let ok =
        (not claimed.(i))
        &&
        match (gate_view topo j, gate_view t.topo i) with
        | VInput k1, VInput k2 -> k1 = k2
        | VConst a, VConst b -> t.ops.Semiring.Intf.equal a b
        | VAdd c1, VAdd c2 ->
            (* Commutative: the multiset of carried sources must equal
               the multiset of old children; order is free to differ. *)
            Array.length c1 = Array.length c2
            && Array.for_all (fun ch -> src.(ch) >= 0) c1
            && sorted (Array.map (fun ch -> src.(ch)) c1) = sorted c2
        | VMul c1, VMul c2 -> kids_match c1 c2
        | VPerm (c1, nc1), VPerm (c2, nc2) -> nc1 = nc2 && kids_match c1 c2
        | _ -> false
      in
      if ok then claimed.(i) <- true else src.(j) <- -1
    end
  done;
  (* Seed: carried gates copy their value (and transfer aux — permanent
     state by pointer, Finite counters by copy); fresh inputs take the
     valuation. Fresh derived gates are computed below. *)
  let aux = Array.make n ANone in
  let carried = ref 0 in
  let old_used = Array.make t.n false in
  for j = 0 to n - 1 do
    let i = src.(j) in
    if i >= 0 then begin
      incr carried;
      old_used.(i) <- true;
      Compact.plane_set values j (vget t i);
      match t.aux.(i) with
      | ANone -> ()
      | ACount counts -> aux.(j) <- ACount (Array.copy counts)
      | APerm (st, ncols) -> aux.(j) <- APerm (st, ncols)
    end
    else
      match gate_view topo j with
      | VInput key -> Compact.plane_set values j (valuation key)
      | _ -> ()
  done;
  let retired = ref 0 in
  Array.iter (fun used -> if not used then incr retired) old_used;
  let rebuilt = ref 0 in
  let on_build id =
    (match t.fault_hook with Some h -> h id | None -> ());
    incr rebuilt
  in
  (match init_derived ~skip:(fun j -> src.(j) >= 0) ~on_build t.ops t.mode t.fin_ctx
           topo values aux
   with
  | () -> ()
  | exception e -> (
      (* The old structure was never touched: discarding the half-built
         twin IS the rollback. The hooks still get their say so the chaos
         battery can drive all three outcomes. *)
      match (match t.rollback_fault_hook with Some h -> h () | None -> ()) with
      | () ->
          Obs.Counter.incr m_rollbacks;
          Obs.Trace.dump_flight
            ~reason:("Circuits.Dyn rolled_back mid-splice fault: " ^ Printexc.to_string e)
            ();
          raise (Rolled_back (Printexc.to_string e))
      | exception re ->
          t.poisoned <- Some (Printexc.to_string e);
          Obs.Trace.dump_flight
            ~reason:
              (Printf.sprintf "Circuits.Dyn poisoned mid-splice: %s (rollback failed: %s)"
                 (Printexc.to_string e) (Printexc.to_string re))
            ();
          raise e));
  let t' =
    {
      ops = t.ops;
      mode = t.mode;
      n;
      topo;
      output = c.Circuit.output;
      input_ids;
      values;
      aux;
      fin_ctx = t.fin_ctx;
      wave_heap = Array.make 16 0;
      wave_len = 0;
      wave_in = Array.make n false;
      wave_saved = Array.make n t.ops.Semiring.Intf.zero;
      pending = Array.make n [];
      update_ops = t.update_ops + !rebuilt;
      obs_tick = t.obs_tick;
      cost_log = t.cost_log;
      undo_log = Array.make 64 UNop;
      undo_len = 0;
      journal = t.journal;
      poisoned = None;
      fault_hook = t.fault_hook;
      rollback_fault_hook = t.rollback_fault_hook;
      ext_remap;
      synth;
    }
  in
  (* Splice cost flows into the same accounting as weight waves, so the
     Σ cost_log = update_ops delta = touched_gates delta cross-check in
     [stats --cost] keeps holding across structural updates. *)
  (match t.cost_log with Some sink -> sink := !rebuilt :: !sink | None -> ());
  Obs.Counter.add m_touched !rebuilt;
  Obs.Counter.incr m_splices;
  Obs.Counter.add m_splice_carried !carried;
  Obs.Counter.add m_splice_rebuilt !rebuilt;
  t.poisoned <- Some "superseded by a splice; use the spliced structure";
  (t', { sp_carried = !carried; sp_rebuilt = !rebuilt; sp_retired = !retired })

(** Attach (or return the already-attached) update journal: from now on
    every committed {!set_input}/{!set_inputs} batch is appended. *)
let enable_journal t =
  match t.journal with
  | Some j -> j
  | None ->
      let j = Journal.create () in
      t.journal <- Some j;
      j

let journal t = t.journal

(** Attach/detach a specific journal — the way an already-running journal
    survives a structure replacement ({!splice} inherits it implicitly;
    the full-rebuild fallback re-attaches it here). *)
let set_journal t j = t.journal <- j

(** Transfer the cross-structure bookkeeping — journal, cost sink, gate
    odometer, fault hooks — from a superseded structure onto its
    full-rebuild replacement: the fallback twin of what {!splice}
    inherits, so cost brackets spanning a structural fallback stay
    coherent. *)
let adopt_accounting ~(from : 'a t) (t : 'a t) =
  t.journal <- from.journal;
  t.cost_log <- from.cost_log;
  t.update_ops <- from.update_ops + t.update_ops;
  t.obs_tick <- from.obs_tick;
  t.fault_hook <- from.fault_hook;
  t.rollback_fault_hook <- from.rollback_fault_hook

(** Charge [k] gate recomputations to this structure's odometer, cost
    sink and the global touched counter — what a full structural rebuild
    costs, kept on the same books as waves and splices so the
    Σ cost_log = Δ update_ops = Δ touched_gates identity holds across
    every kind of update. *)
let charge t k =
  t.update_ops <- t.update_ops + k;
  (match t.cost_log with Some sink -> sink := k :: !sink | None -> ());
  Obs.Counter.add m_touched k

(** Re-apply a journal's committed batches in order. Run against a fresh
    {!create} from the same pre-journal valuation this reconstructs the
    exact served state (gate values, aux state, pending buffers) the
    journaling structure reached — checksums are verified first, and the
    structure's own journal is suspended while replaying so the batches
    are not re-appended.

    Structural records are forwarded to [structural] in commit order —
    the caller (normally [Engine.Eval.replay]) re-runs the tuple op and
    splices; a bare [Dyn] cannot change its own circuit, so the default
    rejects them rather than silently replaying a wrong state. *)
let replay ?structural t (j : 'a Journal.t) =
  Obs.Trace.span ~scope:"dyn" "replay"
    ~attrs:[ ("batches", Obs.Trace.I (Journal.length j)) ]
  @@ fun () ->
  (match Journal.verify j with
  | Some seq -> Robust.bad_input "Dyn.replay: journal batch %d fails its checksum" seq
  | None -> ());
  let structural =
    match structural with
    | Some f -> f
    | None ->
        fun (_ : Journal.structural_op) ->
          Robust.bad_input
            "Dyn.replay: journal holds structural ops; replay through Engine.Eval"
  in
  let journal = t.journal in
  t.journal <- None;
  Fun.protect
    ~finally:(fun () -> t.journal <- journal)
    (fun () ->
      List.iter
        (fun b ->
          match Journal.structural b with
          | Some s -> structural s
          | None -> set_inputs t (Journal.writes b))
        (Journal.batches j))
