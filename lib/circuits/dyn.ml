(** Dynamic circuit evaluation under input updates (Section 4).

    Three strategies, chosen from the semiring's capabilities:

    - {b General} (Corollary 13): wide additions and multiplications are
      rebalanced into binary trees and every permanent gate carries a
      segment-tree permanent, so an input update costs
      O(3ᵏ log n · reach-out) — logarithmic, and tight by Proposition 14.
    - {b Ring} (Corollary 17): additions keep a running sum updated by
      x ↦ x − old + new; permanent gates carry power-sum permanents.
      Constant-time updates for circuits of bounded depth and fan-in.
    - {b Finite} (Corollary 20): additions keep per-element counters (the
      counting gates of Lemma 18) and permanent gates carry column-type
      counting permanents. Constant-time updates.

    The strategy is picked automatically: [elements] ⇒ Finite,
    else [neg] ⇒ Ring, else General. *)

type mode = General | Ring | Finite

(** Which gate-storage the wave engine runs over: [Compact] (default) is
    the CSR/struct-of-arrays runtime of {!Compact} — flat opcode and
    child arrays, CSR parent lists, and a Bigarray value plane for
    machine-int semirings; [Boxed] is the pointer-graph runtime, kept as
    the sequential twin for differential testing and benchmarking. Both
    run the same heap/undo-log/journal machinery and are observationally
    identical. *)
type backend = Boxed | Compact

(* Update reach-out metrics (scope "dyn"): Corollary 13 claims O(3ᵏ log n)
   touched gates per update for general semirings, Corollaries 17/20 claim
   O(1) for rings and finite semirings. [touched_per_update] is the direct
   observable for those bounds; [update_ns] its wall-clock shadow. Batched
   updates are tracked separately: [batch_size] is how many writes arrived
   per {!set_inputs} call and [touched_per_batch] how many gate
   recomputations the single shared wave needed — the ratio against
   [batch_size] × [touched_per_update] is the ancestor-dedup win. *)
let m_creates_general = Obs.counter ~scope:"dyn" "creates_general"
let m_creates_ring = Obs.counter ~scope:"dyn" "creates_ring"
let m_creates_finite = Obs.counter ~scope:"dyn" "creates_finite"
let m_updates = Obs.counter ~scope:"dyn" "updates"
let m_touched = Obs.counter ~scope:"dyn" "touched_gates"
let h_touched = Obs.histogram ~scope:"dyn" "touched_per_update"
let h_update_ns = Obs.histogram ~scope:"dyn" "update_ns"
let m_batches = Obs.counter ~scope:"dyn" "batches"
let h_batch_size = Obs.histogram ~scope:"dyn" "batch_size"
let h_touched_batch = Obs.histogram ~scope:"dyn" "touched_per_batch"
let h_batch_ns = Obs.histogram ~scope:"dyn" "batch_ns"

(* Recovery observables (scope "dyn"): waves unwound by the undo log, and
   full rebuilds that cleared a poisoned structure. *)
let m_rollbacks = Obs.counter ~scope:"dyn" "rollbacks"
let m_repairs = Obs.counter ~scope:"dyn" "repairs"

(** Raised by every read/update once a fault mid-update has left the
    incremental state inconsistent {e and} the rollback that should have
    undone the wave failed too; carries the original failure. The only
    ways out are {!repair} or a fresh {!create}. *)
exception Poisoned of string

(** Raised by {!set_input}/{!set_inputs} when a mid-wave fault was caught
    and the undo log restored the structure bit-for-bit to its pre-wave
    state: the update did {e not} apply, but the circuit stays healthy and
    every later read or update works; carries the original failure. *)
exception Rolled_back of string

let () =
  Printexc.register_printer (function
    | Poisoned m -> Some ("Circuits.Dyn.Poisoned (" ^ m ^ ")")
    | Rolled_back m -> Some ("Circuits.Dyn.Rolled_back (" ^ m ^ ")")
    | _ -> None)

type 'a perm_state =
  | PSeg of 'a Perm.Segtree.t
  | PRing of 'a Perm.Ring.t
  | PFin of 'a Perm.Finite.t

type 'a aux =
  | ANone
  | APerm of 'a perm_state * int  (** columns count, for slot decoding *)
  | ACount of int array  (** finite-mode addition: per-element counters *)

(** One cell of the per-wave undo log, recorded {e before} the mutation it
    covers. Unwinding the log in reverse restores the structure exactly:
    when a cell was mutated several times in one wave, its first-logged
    (pre-wave) value is applied last and wins. *)
type 'a undo_entry =
  | UNop  (** consumed / free slot *)
  | UTouch of int * 'a
      (** first contact with a gate this wave: restores its pre-wave value
          and re-establishes the between-waves invariants ([wave_in] false,
          [pending] empty) — one entry covers every later mutation of the
          gate's value, flag, and pending list in this wave *)
  | UCounts of int array * int array
      (** counting gate touched this wave: (live counters, pre-wave copy) —
          the per-element array is small (|S| entries), so one snapshot at
          first contact replaces logging every counter move *)
  | USeg of 'a Perm.Segtree.t * 'a Perm.Segtree.undo
  | URing of 'a Perm.Ring.t * 'a Perm.Ring.undo
  | UFin of 'a Perm.Finite.t * 'a Perm.Finite.undo

(** Gate topology, per backend. Parent edges carry (parent id, slot in
    the parent's child order) — the boxed twin keeps them as per-gate
    lists, the compact runtime as one CSR triple so a wave's parent scan
    is a flat array walk with no pointer chasing. *)
type 'a topo =
  | TBoxed of {
      nodes : 'a Circuit.node array;
      parents : (int * int) list array;
    }
  | TFlat of {
      cc : 'a Compact.t;
      par_off : int array;  (** n+1 CSR offsets *)
      par_gate : int array;  (** parent gate ids *)
      par_slot : int array;  (** slot of the child in that parent *)
    }

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  mode : mode;
  n : int;  (** gate count *)
  topo : 'a topo;
  output : int;
  input_ids : (Circuit.input_key, int) Hashtbl.t;
  values : 'a Compact.plane;
      (** current gate values; Bigarray-backed on the compact backend for
          machine-int semirings, a boxed array otherwise *)
  aux : 'a aux array;
  fin_ctx : 'a Perm.Finite.ctx option;
  mutable wave_heap : int array;
      (** binary min-heap of queued gate ids; reused across waves so the
          hot loop allocates nothing *)
  mutable wave_len : int;  (** live prefix of [wave_heap] *)
  wave_in : bool array;
      (** per gate: queued in the current wave (snapshot saved)? doubles as
          the stamped-flag for inputs during {!set_inputs}' stamp phase *)
  wave_saved : 'a array;  (** per queued gate: value before the wave *)
  pending : (int * int * 'a) list array;
      (** per permanent gate: (row, col, v) entry writes accumulated since
          its last recomputation, flushed in one {!Perm.Segtree.set_many}
          (resp. Ring/Finite) when the wave reaches the gate *)
  mutable update_ops : int;  (** gate recomputations since creation (for benches) *)
  mutable obs_tick : int;
      (** single-wave update counter driving the 1-in-64 systematic
          sample of the per-update latency/size histograms and flight
          spans: counters stay exact (cost attribution and the
          cross-checks read those), while the histograms trade
          completeness for keeping the whole telemetry layer inside its
          ≤5% budget on sub-µs updates *)
  mutable cost_log : int list ref option;
      (** when attached ({!set_cost_log}), the touched-gate count of every
          {e committed} wave is pushed onto the list — the raw material of
          per-query cost attribution (rolled-back waves never commit, so
          the log agrees with the "dyn" touched counters by construction) *)
  mutable undo_log : 'a undo_entry array;
      (** reusable scratch log of the running wave's prior cells; unwound
          in reverse on a mid-wave fault, reset on commit *)
  mutable undo_len : int;  (** live prefix of [undo_log] *)
  mutable journal : 'a Journal.t option;
      (** when attached, every committed update batch is appended (queries'
          temporary flips and {!replay} itself are excluded) *)
  mutable poisoned : string option;
      (** set when a mid-propagation exception escaped {e and} the rollback
          failed: gate values may be stale, so every subsequent read raises
          {!Poisoned} until {!repair} rebuilds the state *)
  mutable fault_hook : (int -> unit) option;
      (** test-only fault injection, called with the gate id before each
          recomputation; a raise here simulates a mid-update crash *)
  mutable rollback_fault_hook : (unit -> unit) option;
      (** test-only fault injection at the start of a rollback; a raise
          here simulates a crash during recovery itself (→ poisoned) *)
}

(* Rebalance wide Add/Mul gates into binary trees (General mode). *)
let balance (c : 'a Circuit.t) : 'a Circuit.t =
  let b = Circuit.builder () in
  let remap = Array.make (Array.length c.Circuit.nodes) (-1) in
  let rec tree mk = function
    | [] -> invalid_arg "Dyn.balance: empty gate list"
    | [ g ] -> g
    | gs ->
        let n = List.length gs in
        let left = List.filteri (fun i _ -> i < n / 2) gs in
        let right = List.filteri (fun i _ -> i >= n / 2) gs in
        mk [ tree mk left; tree mk right ]
  in
  Array.iteri
    (fun id node ->
      let nid =
        match node with
        | Circuit.Input key -> Circuit.input b key
        | Circuit.Const s -> Circuit.const b s
        | Circuit.Add [||] -> Circuit.push b (Circuit.Add [||])
        | Circuit.Mul [||] -> Circuit.push b (Circuit.Mul [||])
        | Circuit.Add gs ->
            tree (fun l -> Circuit.push b (Circuit.Add (Array.of_list l)))
              (List.map (fun g -> remap.(g)) (Array.to_list gs))
        | Circuit.Mul gs ->
            tree (fun l -> Circuit.push b (Circuit.Mul (Array.of_list l)))
              (List.map (fun g -> remap.(g)) (Array.to_list gs))
        | Circuit.Perm rows -> Circuit.perm b (Array.map (Array.map (fun g -> remap.(g))) rows)
      in
      remap.(id) <- nid)
    c.Circuit.nodes;
  Circuit.finish b ~output:remap.(c.Circuit.output)

let pick_mode (ops : 'a Semiring.Intf.ops) =
  match (ops.Semiring.Intf.elements, ops.Semiring.Intf.neg) with
  | Some _, _ -> Finite
  | None, Some _ -> Ring
  | None, None -> General

let mode_name = function General -> "general" | Ring -> "ring" | Finite -> "finite"
let backend_name = function Boxed -> "boxed" | Compact -> "compact"

(* (Re)compute every derived gate value and auxiliary structure bottom-up
   from the current input/const values: one topological pass, exactly the
   initial-evaluation semantics on either gate layout. Shared by [create]
   and [repair]. With [~prefilled:true] (compact backend only) every gate
   value is already in the plane — a parallel full evaluation ran first —
   and this pass only builds the auxiliary structures: permanent
   maintenance state (whose [perm] rewrites the gate value with the same
   permanent) and Finite-mode counters. *)
let init_derived ?(prefilled = false) (ops : 'a Semiring.Intf.ops) mode fin_ctx
    (topo : 'a topo) (values : 'a Compact.plane) (aux : 'a aux array) =
  let open Semiring.Intf in
  let vget g = Compact.plane_get values g in
  let vset id v = Compact.plane_set values id v in
  let mk_perm id m ncols =
    let st =
      match mode with
      | General -> PSeg (Perm.Segtree.create ops m)
      | Ring -> PRing (Perm.Ring.create ops m)
      | Finite -> PFin (Perm.Finite.create ops m)
    in
    aux.(id) <- APerm (st, ncols);
    vset id
      (match st with
      | PSeg s -> Perm.Segtree.perm s
      | PRing s -> Perm.Ring.perm s
      | PFin s -> Perm.Finite.perm s)
  in
  (* Finite mode: a counting gate's per-element counters (Lemma 18). *)
  let mk_counts id iter_children =
    match fin_ctx with
    | Some ctx ->
        let counts = Array.make (Array.length ctx.Perm.Finite.elems) 0 in
        iter_children (fun g ->
            let i = Perm.Finite.index_of ctx (vget g) in
            counts.(i) <- counts.(i) + 1);
        aux.(id) <- ACount counts
    | None -> ()
  in
  match topo with
  | TBoxed b ->
      Array.iteri
        (fun id node ->
          match node with
          | Circuit.Input _ -> ()
          | Circuit.Const s -> vset id s
          | Circuit.Add gs ->
              vset id (Array.fold_left (fun acc g -> ops.add acc (vget g)) ops.zero gs);
              mk_counts id (fun visit -> Array.iter visit gs)
          | Circuit.Mul gs ->
              vset id (Array.fold_left (fun acc g -> ops.mul acc (vget g)) ops.one gs)
          | Circuit.Perm rows ->
              let m = Array.map (Array.map vget) rows in
              let ncols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
              mk_perm id m ncols)
        b.nodes
  | TFlat fl ->
      let cc = fl.cc in
      let off = cc.Compact.child_off and ch = cc.Compact.children in
      for id = 0 to cc.Compact.n - 1 do
        match cc.Compact.opcode.(id) with
        | 0 (* input *) -> ()
        | 1 (* const *) -> if not prefilled then vset id cc.Compact.consts.(cc.Compact.arg.(id))
        | 2 (* add *) ->
            if not prefilled then begin
              let acc = ref ops.zero in
              for i = off.(id) to off.(id + 1) - 1 do
                acc := ops.add !acc (vget ch.(i))
              done;
              vset id !acc
            end;
            mk_counts id (fun visit ->
                for i = off.(id) to off.(id + 1) - 1 do
                  visit ch.(i)
                done)
        | 3 (* mul *) ->
            if not prefilled then begin
              let acc = ref ops.one in
              for i = off.(id) to off.(id + 1) - 1 do
                acc := ops.mul !acc (vget ch.(i))
              done;
              vset id !acc
            end
        | _ (* perm *) ->
            let ncols = cc.Compact.perm_cols.(cc.Compact.arg.(id)) in
            mk_perm id (Compact.perm_matrix cc values id) ncols
      done

let create ?mode ?(backend = Compact) ?(domains = 1) (ops : 'a Semiring.Intf.ops)
    (c : 'a Circuit.t) (valuation : Circuit.input_key -> 'a) : 'a t =
  let mode = match mode with Some m -> m | None -> pick_mode ops in
  Obs.Trace.span ~scope:"dyn" "create"
    ~attrs:
      [
        ("mode", Obs.Trace.S (mode_name mode));
        ("backend", Obs.Trace.S (backend_name backend));
        ("domains", Obs.Trace.I domains);
        ("gates", Obs.Trace.I (Array.length c.Circuit.nodes));
      ]
  @@ fun () ->
  let c = if mode = General then balance c else c in
  let n = Array.length c.Circuit.nodes in
  let topo, input_ids, values =
    match backend with
    | Boxed ->
        let parents = Array.make n [] in
        Array.iteri
          (fun id node ->
            match node with
            | Circuit.Input _ | Circuit.Const _ -> ()
            | Circuit.Add gs | Circuit.Mul gs ->
                Array.iteri (fun slot g -> parents.(g) <- (id, slot) :: parents.(g)) gs
            | Circuit.Perm rows ->
                let ncols = if Array.length rows = 0 then 0 else Array.length rows.(0) in
                Array.iteri
                  (fun r row ->
                    Array.iteri
                      (fun cidx g -> parents.(g) <- (id, (r * ncols) + cidx) :: parents.(g))
                      row)
                  rows)
          c.Circuit.nodes;
        ( TBoxed { nodes = c.Circuit.nodes; parents },
          c.Circuit.input_ids,
          Compact.boxed_plane ops n )
    | Compact ->
        let cc = Compact.of_circuit c in
        let nch = Array.length cc.Compact.children in
        (* parent CSR: count, prefix-sum, fill (parents end up in
           ascending parent-id order) *)
        let par_off = Array.make (n + 1) 0 in
        Array.iter (fun g -> par_off.(g + 1) <- par_off.(g + 1) + 1) cc.Compact.children;
        for g = 0 to n - 1 do
          par_off.(g + 1) <- par_off.(g + 1) + par_off.(g)
        done;
        let par_gate = Array.make nch 0 and par_slot = Array.make nch 0 in
        let cursor = Array.sub par_off 0 n in
        let coff = cc.Compact.child_off in
        for id = 0 to n - 1 do
          for i = coff.(id) to coff.(id + 1) - 1 do
            let g = cc.Compact.children.(i) in
            par_gate.(cursor.(g)) <- id;
            par_slot.(cursor.(g)) <- i - coff.(id);
            cursor.(g) <- cursor.(g) + 1
          done
        done;
        ( TFlat { cc; par_off; par_gate; par_slot },
          cc.Compact.input_ids,
          Compact.make_plane ops n )
  in
  (* seed input values *)
  (match topo with
  | TBoxed b ->
      Array.iteri
        (fun id node ->
          match node with
          | Circuit.Input key -> Compact.plane_set values id (valuation key)
          | _ -> ())
        b.nodes
  | TFlat fl ->
      let cc = fl.cc in
      Array.iteri
        (fun id op ->
          if op = 0 then
            Compact.plane_set values id
              (valuation cc.Compact.input_keys.(cc.Compact.arg.(id))))
        cc.Compact.opcode);
  let aux = Array.make n ANone in
  let fin_ctx = if mode = Finite then Some (Perm.Finite.make_ctx ops) else None in
  (* With extra domains and the compact backend, the O(size) initial
     bottom-up evaluation runs level-parallel; the remaining sequential
     pass only builds aux structures (identical final state — the aux
     [perm] recomputes the same permanents the parallel pass wrote). *)
  (match topo with
  | TFlat fl when domains > 1 ->
      Par.eval_into ~domains ops fl.cc valuation values;
      init_derived ~prefilled:true ops mode fin_ctx topo values aux
  | _ -> init_derived ops mode fin_ctx topo values aux);
  Obs.Counter.incr
    (match mode with
    | General -> m_creates_general
    | Ring -> m_creates_ring
    | Finite -> m_creates_finite);
  {
    ops;
    mode;
    n;
    topo;
    output = c.Circuit.output;
    input_ids;
    values;
    aux;
    fin_ctx;
    wave_heap = Array.make 16 0;
    wave_len = 0;
    wave_in = Array.make n false;
    wave_saved = Array.make n ops.Semiring.Intf.zero;
    pending = Array.make n [];
    update_ops = 0;
    obs_tick = 0;
    cost_log = None;
    undo_log = Array.make 64 UNop;
    undo_len = 0;
    journal = None;
    poisoned = None;
    fault_hook = None;
    rollback_fault_hook = None;
  }

let poisoned t = t.poisoned
let set_fault_hook t h = t.fault_hook <- h
let set_rollback_fault_hook t h = t.rollback_fault_hook <- h

(** Total gate recomputations since creation; the cumulative counter the
    per-query cost reports are cross-checked against. *)
let update_ops t = t.update_ops

(** Attach (or detach, with [None]) a per-wave cost sink: each committed
    wave appends its touched-gate count. One sink at a time; [Eval]'s cost
    measurement owns the attach/detach bracket. *)
let set_cost_log t sink = t.cost_log <- sink

let num_gates t = t.n
let backend t = match t.topo with TBoxed _ -> Boxed | TFlat _ -> Compact

(* Plane accessors for the current gate values. *)
let vget t id = Compact.plane_get t.values id
let vset t id v = Compact.plane_set t.values id v

let check_live t =
  match t.poisoned with Some msg -> raise (Poisoned msg) | None -> ()

let value t =
  check_live t;
  vget t t.output

let gate_value t id =
  check_live t;
  vget t id

(* Reusable binary min-heap over gate ids (creation order = topological
   order), stored in the structure so propagation waves allocate nothing.
   Gates are deduplicated through [wave_in] before pushing, so the heap
   never holds duplicates. *)
let heap_push t g =
  let len = t.wave_len in
  if len = Array.length t.wave_heap then begin
    let bigger = Array.make (2 * len) 0 in
    Array.blit t.wave_heap 0 bigger 0 len;
    t.wave_heap <- bigger
  end;
  t.wave_heap.(len) <- g;
  t.wave_len <- len + 1;
  let i = ref len in
  while !i > 0 && t.wave_heap.((!i - 1) / 2) > t.wave_heap.(!i) do
    let p = (!i - 1) / 2 in
    let tmp = t.wave_heap.(p) in
    t.wave_heap.(p) <- t.wave_heap.(!i);
    t.wave_heap.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  let g = t.wave_heap.(0) in
  t.wave_len <- t.wave_len - 1;
  t.wave_heap.(0) <- t.wave_heap.(t.wave_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < t.wave_len && t.wave_heap.(l) < t.wave_heap.(!s) then s := l;
    if r < t.wave_len && t.wave_heap.(r) < t.wave_heap.(!s) then s := r;
    if !s = !i then continue := false
    else begin
      let tmp = t.wave_heap.(!s) in
      t.wave_heap.(!s) <- t.wave_heap.(!i);
      t.wave_heap.(!i) <- tmp;
      i := !s
    end
  done;
  g

(* --- the per-wave undo log --- *)

let push_undo t e =
  let len = t.undo_len in
  if len = Array.length t.undo_log then begin
    let bigger = Array.make (2 * len) UNop in
    Array.blit t.undo_log 0 bigger 0 len;
    t.undo_log <- bigger
  end;
  t.undo_log.(len) <- e;
  t.undo_len <- len + 1

(* Drop the log on a successful commit; slots are blanked so the old
   values (and any superseded perm node arrays they keep alive) can be
   collected, but the array itself is reused by the next wave. *)
let undo_reset t =
  for i = 0 to t.undo_len - 1 do
    t.undo_log.(i) <- UNop
  done;
  t.undo_len <- 0

(* Unwind the running wave: reverse-apply every logged prior cell, then
   drain the heap. The wave_in flags of still-queued gates are cleared by
   their UFlag entries (between waves the flag is false everywhere), and
   [wave_saved] is pure scratch, so after this the structure is
   bit-for-bit the pre-wave one. Raises only if the undo itself faults —
   the caller then falls back to poisoning. *)
let rollback t =
  (match t.rollback_fault_hook with Some h -> h () | None -> ());
  for i = t.undo_len - 1 downto 0 do
    (match t.undo_log.(i) with
    | UNop -> ()
    | UTouch (id, v) ->
        vset t id v;
        t.wave_in.(id) <- false;
        t.pending.(id) <- []
    | UCounts (live, snap) -> Array.blit snap 0 live 0 (Array.length snap)
    | USeg (s, u) -> Perm.Segtree.undo_apply s u
    | URing (s, u) -> Perm.Ring.undo_apply s u
    | UFin (s, u) -> Perm.Finite.undo_apply s u);
    t.undo_log.(i) <- UNop
  done;
  t.undo_len <- 0;
  t.wave_len <- 0

(* A wave committed: forget the undo log and journal the batch. *)
let commit_wave t (writes : (Circuit.input_key * 'a) list) =
  undo_reset t;
  match t.journal with None -> () | Some j -> Journal.append j writes

(* A wave faulted: try to unwind it. On success the structure is healthy
   again and the caller's update reports [Rolled_back]; if the rollback
   itself raises, the structure is truly inconsistent — poison it as the
   last resort (only {!repair} clears it). The flight recorder fires in
   both cases, tagged with the outcome. *)
let fault_wave t (e : exn) : 'b =
  match rollback t with
  | () ->
      Obs.Counter.incr m_rollbacks;
      Obs.Trace.dump_flight
        ~reason:("Circuits.Dyn rolled_back mid-wave fault: " ^ Printexc.to_string e)
        ();
      raise (Rolled_back (Printexc.to_string e))
  | exception re ->
      t.poisoned <- Some (Printexc.to_string e);
      Obs.Trace.dump_flight
        ~reason:
          (Printf.sprintf "Circuits.Dyn poisoned mid-wave: %s (rollback failed: %s)"
             (Printexc.to_string e) (Printexc.to_string re))
        ();
      raise e

(* Is this gate an addition? The only kind query [notify] needs beyond
   what the aux array already encodes (APerm ⇔ Perm, ACount ⇔ Finite-mode
   Add): Ring mode must not apply the add-delta to Mul gates. *)
let gate_is_add t id =
  match t.topo with
  | TBoxed b -> ( match b.nodes.(id) with Circuit.Add _ -> true | _ -> false)
  | TFlat fl -> fl.cc.Compact.opcode.(id) = 2

(* Apply the effect of a child's value change on a parent's auxiliary
   state; cheap bookkeeping only, no recomputation. Permanent gates only
   accumulate the entry write — the wave flushes all of a gate's pending
   writes through one [set_many] when it recomputes the gate, so a batch
   touching many columns pays each leaf-to-root path segment once. Every
   mutation logs its prior cell first. *)
let notify t parent slot ~old_v ~new_v =
  let open Semiring.Intf in
  match t.aux.(parent) with
  | APerm (_, ncols) ->
      (* the cons chain is dropped wholesale by the parent's UTouch
         (between waves every pending list is empty) *)
      let row = slot / ncols and col = slot mod ncols in
      t.pending.(parent) <- (row, col, new_v) :: t.pending.(parent)
  | ACount counts ->
      (* counter drift is covered by the UCounts snapshot pushed at the
         gate's first contact this wave *)
      let ctx = Option.get t.fin_ctx in
      let oi = Perm.Finite.index_of ctx old_v and ni = Perm.Finite.index_of ctx new_v in
      counts.(oi) <- counts.(oi) - 1;
      counts.(ni) <- counts.(ni) + 1
  | ANone ->
      if t.mode = Ring && gate_is_add t parent then begin
        (* value drift is covered by the parent's first-contact UTouch *)
        let neg = Option.get t.ops.neg in
        vset t parent (t.ops.add (t.ops.add (vget t parent) (neg old_v)) new_v)
      end

(* Counting gate readout: Σ_e count_e · e via the lasso (Lemma 18). *)
let count_value t counts =
  let open Semiring.Intf in
  let ctx = Option.get t.fin_ctx in
  let acc = ref t.ops.zero in
  Array.iteri
    (fun i cnt ->
      if cnt > 0 then
        acc :=
          t.ops.add !acc
            (Perm.Finite.scale ctx (Perm.Finite.count_of_int ctx cnt) ctx.Perm.Finite.elems.(i)))
    counts;
  !acc

(* Flush a permanent gate's accumulated pending entry writes through one
   batched [set_many], then read the permanent. The perm undo cell is
   pushed before the flush starts, so a flush interrupted halfway is
   still fully covered by the log. *)
let perm_value t id st =
  (match t.pending.(id) with
  | [] -> ()
  | pend ->
      (* the gate's UTouch already restores pending to [] on rollback *)
      t.pending.(id) <- [];
      (* accumulated newest-first; sequential order = reverse *)
      let writes = List.rev pend in
      (match st with
      | PSeg s ->
          let u = Perm.Segtree.undo_create () in
          push_undo t (USeg (s, u));
          Perm.Segtree.set_many_logged s u writes
      | PRing s ->
          let u = Perm.Ring.undo_create () in
          push_undo t (URing (s, u));
          Perm.Ring.set_many_logged s u writes
      | PFin s ->
          let u = Perm.Finite.undo_create () in
          push_undo t (UFin (s, u));
          Perm.Finite.set_many_logged s u writes));
  match st with
  | PSeg s -> Perm.Segtree.perm s
  | PRing s -> Perm.Ring.perm s
  | PFin s -> Perm.Finite.perm s

(* Recompute a gate's value from its children/auxiliary state. *)
let recompute t id =
  let open Semiring.Intf in
  (match t.fault_hook with Some h -> h id | None -> ());
  t.update_ops <- t.update_ops + 1;
  match t.topo with
  | TBoxed b -> (
      match (b.nodes.(id), t.aux.(id)) with
      | Circuit.Input _, _ | Circuit.Const _, _ -> vget t id
      | Circuit.Add _, ANone when t.mode = Ring -> vget t id (* maintained by deltas *)
      | Circuit.Add _, ACount counts -> count_value t counts
      | Circuit.Add gs, _ ->
          Array.fold_left (fun acc g -> t.ops.add acc (vget t g)) t.ops.zero gs
      | Circuit.Mul gs, _ ->
          Array.fold_left (fun acc g -> t.ops.mul acc (vget t g)) t.ops.one gs
      | Circuit.Perm _, APerm (st, _) -> perm_value t id st
      | Circuit.Perm _, _ -> invalid_arg "Dyn: permanent gate without state")
  | TFlat fl -> (
      let cc = fl.cc in
      match cc.Compact.opcode.(id) with
      | 0 | 1 -> vget t id
      | 4 -> (
          match t.aux.(id) with
          | APerm (st, _) -> perm_value t id st
          | _ -> invalid_arg "Dyn: permanent gate without state")
      | opc -> (
          match t.aux.(id) with
          | ACount counts -> count_value t counts
          | _ when opc = 2 && t.mode = Ring -> vget t id (* maintained by deltas *)
          | _ ->
              let off = cc.Compact.child_off and ch = cc.Compact.children in
              if opc = 2 then begin
                let acc = ref t.ops.zero in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := t.ops.add !acc (vget t ch.(i))
                done;
                !acc
              end
              else begin
                let acc = ref t.ops.one in
                for i = off.(id) to off.(id + 1) - 1 do
                  acc := t.ops.mul !acc (vget t ch.(i))
                done;
                !acc
              end))

(* Queue one parent for recomputation (saving its pre-wave value on first
   contact) and push the child's delta into its auxiliary state. *)
let enqueue_one t p slot ~old_v ~new_v =
  if not t.wave_in.(p) then begin
    push_undo t (UTouch (p, vget t p));
    (match t.aux.(p) with
    | ACount counts -> push_undo t (UCounts (counts, Array.copy counts))
    | _ -> ());
    t.wave_in.(p) <- true;
    t.wave_saved.(p) <- vget t p;
    heap_push t p
  end;
  notify t p slot ~old_v ~new_v

(* Queue [g]'s parents for recomputation; a flat parent scan on the
   compact backend, a list walk on the boxed twin. *)
let enqueue_parents t g ~old_v ~new_v =
  match t.topo with
  | TBoxed b -> List.iter (fun (p, slot) -> enqueue_one t p slot ~old_v ~new_v) b.parents.(g)
  | TFlat fl ->
      for i = fl.par_off.(g) to fl.par_off.(g + 1) - 1 do
        enqueue_one t fl.par_gate.(i) fl.par_slot.(i) ~old_v ~new_v
      done

(* Drain the heap in topological (gate-id) order. Children always have
   smaller ids than parents, so when a gate is popped every queued child
   has already settled — each touched gate is recomputed exactly once per
   wave no matter how many dirty inputs reach it. *)
let run_wave t =
  while t.wave_len > 0 do
    let g = heap_pop t in
    (* no undo cell for this clear: false is the between-waves state *)
    t.wave_in.(g) <- false;
    let old_g = t.wave_saved.(g) in
    let new_g = recompute t g in
    (* the write is covered by the gate's first-contact UTouch *)
    vset t g new_g;
    if not (t.ops.Semiring.Intf.equal old_g new_g) then
      enqueue_parents t g ~old_v:old_g ~new_v:new_g
  done

(** Update one input weight; propagates along all ancestor paths in
    topological order. The wave is transactional: if anything raises
    mid-propagation (crash, fault injection) the undo log restores the
    structure bit-for-bit to its pre-wave state and {!Rolled_back} is
    raised — the circuit stays healthy and retryable. Only when the
    rollback itself faults is the structure poisoned: gate values may then
    be stale, so rather than silently returning corrupt answers every
    later read or update raises {!Poisoned} until {!repair}. *)
let set_input t (key : Circuit.input_key) v =
  check_live t;
  match Hashtbl.find_opt t.input_ids key with
  | None -> invalid_arg "Dyn.set_input: unknown input (weight symbol, tuple)"
  | Some id ->
      let old_v = vget t id in
      if not (t.ops.Semiring.Intf.equal old_v v) then begin
        let instrumented = Obs.is_enabled () in
        (* 1-in-64 systematic sample: the wall-clock reads, histogram
           observes and flight-ring span below cost more than a small
           wave itself; the exact counters carry the totals, while the
           latency/size histograms and the flight context see every 64th
           wave (and every wave while a trace is being recorded) *)
        let sampled =
          instrumented
          &&
          (t.obs_tick <- t.obs_tick + 1;
           t.obs_tick land 63 = 0)
        in
        let t0 = if sampled then Obs.now_ns () else 0. in
        let ops0 = t.update_ops in
        (try
          (* The wave span lands in the flight recorder during unwinding,
             before the recovery handler below fires — span_hot
             materializes the span on a fault even when this wave was not
             sampled, so a post-mortem dump always contains the fatal
             wave. *)
          Obs.Trace.span_hot ~force:sampled ~scope:"dyn" "update" (fun () ->
              push_undo t (UTouch (id, vget t id));
              vset t id v;
              enqueue_parents t id ~old_v ~new_v:v;
              run_wave t;
              (* only a live span can carry the attribute; skipping the
                 call on the bare path saves a boxed attr per wave *)
              if sampled || Obs.Trace.is_recording () then
                Obs.Trace.add_attr "touched" (Obs.Trace.I (t.update_ops - ops0)))
        with e -> fault_wave t e);
        commit_wave t [ (key, v) ];
        (match t.cost_log with
        | Some sink -> sink := (t.update_ops - ops0) :: !sink
        | None -> ());
        if instrumented then begin
          let touched = t.update_ops - ops0 in
          (* touched_gates stays exact per wave (cost attribution
             cross-checks it); the updates counter advances in blocks of
             64 on the sampled tick — ≤63 single waves per instance are
             in flight at any instant, a diagnostic-grade lag *)
          Obs.Counter.add m_touched touched;
          if sampled then begin
            Obs.Counter.add m_updates 64;
            Obs.Histogram.observe h_touched (float_of_int touched);
            Obs.Histogram.observe h_update_ns (Obs.elapsed_ns t0)
          end
        end
      end

(** Batched update: stamp every dirty input first, then run a {e single}
    topological propagation wave. A gate reachable from several dirty
    inputs is recomputed once per wave instead of once per constituent
    update, so the per-touched-gate costs of Corollaries 13/17/20 are
    unchanged while shared ancestors are deduplicated. Semantically
    equivalent to applying the assignments with {!set_input} left to right
    (later writes to the same input win). Unknown keys are rejected before
    any mutation; an exception mid-wave rolls the whole batch back (or, if
    the rollback itself faults, poisons the structure) exactly like
    {!set_input}. *)
let set_inputs t (assignments : (Circuit.input_key * 'a) list) =
  check_live t;
  match assignments with
  | [] -> ()
  | [ (key, v) ] -> set_input t key v
  | _ ->
      let resolved =
        List.map
          (fun (key, v) ->
            match Hashtbl.find_opt t.input_ids key with
            | Some id -> (id, v)
            | None -> invalid_arg "Dyn.set_inputs: unknown input (weight symbol, tuple)")
          assignments
      in
      let instrumented = Obs.is_enabled () in
      let t0 = if instrumented then Obs.now_ns () else 0. in
      let ops0 = t.update_ops in
      let dirty = ref 0 in
      (try
        Obs.Trace.span ~scope:"dyn" "batch"
          ~attrs:[ ("writes", Obs.Trace.I (List.length assignments)) ]
          (fun () ->
            (* Stamp phase: apply every write, remembering each input's
               pre-batch value on first contact ([wave_in] doubles as the
               stamped flag — inputs have no children, so they are never
               heap-queued and the flag cannot collide with the wave's use). *)
            let stamped =
              List.filter_map
                (fun (id, v) ->
                  if t.wave_in.(id) then begin
                    (* re-stamped input: its first UTouch already holds the
                       pre-batch value *)
                    vset t id v;
                    None
                  end
                  else if t.ops.Semiring.Intf.equal (vget t id) v then None
                  else begin
                    push_undo t (UTouch (id, vget t id));
                    t.wave_in.(id) <- true;
                    t.wave_saved.(id) <- vget t id;
                    vset t id v;
                    Some id
                  end)
                resolved
            in
            (* Propagation phase: one shared wave over every net change. *)
            List.iter
              (fun id ->
                t.wave_in.(id) <- false;
                let old_v = t.wave_saved.(id) and new_v = vget t id in
                if not (t.ops.Semiring.Intf.equal old_v new_v) then begin
                  incr dirty;
                  enqueue_parents t id ~old_v ~new_v
                end)
              stamped;
            run_wave t;
            Obs.Trace.add_attr "dirty" (Obs.Trace.I !dirty);
            Obs.Trace.add_attr "touched" (Obs.Trace.I (t.update_ops - ops0)))
      with e -> fault_wave t e);
      commit_wave t assignments;
      (match t.cost_log with
      | Some sink -> sink := (t.update_ops - ops0) :: !sink
      | None -> ());
      if instrumented then begin
        let touched = t.update_ops - ops0 in
        Obs.Counter.incr m_batches;
        Obs.Counter.add m_updates !dirty;
        Obs.Counter.add m_touched touched;
        Obs.Histogram.observe h_batch_size (float_of_int (List.length assignments));
        Obs.Histogram.observe h_touched_batch (float_of_int touched);
        Obs.Histogram.observe h_batch_ns (Obs.elapsed_ns t0)
      end

(** Current value of an input gate. *)
let input_value t key =
  match Hashtbl.find_opt t.input_ids key with
  | Some id -> Some (vget t id)
  | None -> None

let has_input t key = Hashtbl.mem t.input_ids key

(** Temporarily set some inputs, run [f], restore — the free-variable query
    mechanism in the proof of Theorem 8. Both directions go through
    {!set_inputs}, so the 2·|x̄| weight flips of a tuple query cost two
    propagation waves instead of 2·|x̄|. The restore runs under
    [Fun.protect] (in reverse order, so duplicate keys land back on their
    first-saved value): a raising [f] no longer leaves the temporary
    weights stuck and silently corrupting every later read. The journal
    is suspended for the duration — a query's temporary flips are not
    committed state and must not bloat (or corrupt) a later replay. *)
let with_temp t (assignments : (Circuit.input_key * 'a) list) (f : unit -> 'b) : 'b =
  check_live t;
  let known = List.filter (fun (key, _) -> has_input t key) assignments in
  let saved =
    List.filter_map
      (fun (key, _) -> Option.map (fun old_v -> (key, old_v)) (input_value t key))
      known
  in
  let journal = t.journal in
  t.journal <- None;
  Fun.protect
    ~finally:(fun () -> t.journal <- journal)
    (fun () ->
      set_inputs t known;
      Fun.protect
        ~finally:(fun () ->
          (* If [f] poisoned the structure the incremental state is already
             unrecoverable and restoring would raise [Poisoned] out of
             [~finally], masking [f]'s own exception. *)
          if t.poisoned = None then set_inputs t (List.rev saved))
        f)

(* --- recovery and durability --- *)

(** Rebuild every derived gate value, auxiliary structure and pending
    buffer from the currently stored input values in one full-eval pass —
    the self-healing big hammer. Clears the poison (and any half-applied
    wave state), so a structure whose rollback failed becomes consistent
    with its inputs again; the cost is the same as the initial build. Safe
    (and idempotent) on a healthy structure. *)
let repair t =
  Obs.Trace.span ~scope:"dyn" "repair"
    ~attrs:[ ("gates", Obs.Trace.I t.n) ]
  @@ fun () ->
  for i = 0 to t.n - 1 do
    t.wave_in.(i) <- false;
    t.pending.(i) <- []
  done;
  t.wave_len <- 0;
  undo_reset t;
  init_derived t.ops t.mode t.fin_ctx t.topo t.values t.aux;
  t.poisoned <- None;
  Obs.Counter.incr m_repairs

(** Attach (or return the already-attached) update journal: from now on
    every committed {!set_input}/{!set_inputs} batch is appended. *)
let enable_journal t =
  match t.journal with
  | Some j -> j
  | None ->
      let j = Journal.create () in
      t.journal <- Some j;
      j

let journal t = t.journal

(** Re-apply a journal's committed batches in order. Run against a fresh
    {!create} from the same pre-journal valuation this reconstructs the
    exact served state (gate values, aux state, pending buffers) the
    journaling structure reached — checksums are verified first, and the
    structure's own journal is suspended while replaying so the batches
    are not re-appended. *)
let replay t (j : 'a Journal.t) =
  Obs.Trace.span ~scope:"dyn" "replay"
    ~attrs:[ ("batches", Obs.Trace.I (Journal.length j)) ]
  @@ fun () ->
  (match Journal.verify j with
  | Some seq -> Robust.bad_input "Dyn.replay: journal batch %d fails its checksum" seq
  | None -> ());
  let journal = t.journal in
  t.journal <- None;
  Fun.protect
    ~finally:(fun () -> t.journal <- journal)
    (fun () -> List.iter (fun b -> set_inputs t b.Journal.writes) (Journal.batches j))
