(** Compact CSR/struct-of-arrays circuit runtime.

    {!Circuit.t} is a boxed variant graph: every gate is a heap block and
    every child reference a pointer chase, so after the optimizer has
    shrunk the DAG the evaluation and update loops are cache-miss bound
    rather than compute bound. This module stores the same Theorem 6
    circuit as parallel flat arrays:

    {v
      opcode    : int array          0=Input 1=Const 2=Add 3=Mul 4=Perm
      arg       : int array          per-gate immediate (see below)
      child_off : int array (n+1)    CSR offsets into [children]
      children  : int array          child gate ids, per gate contiguous
                                     (Perm children row-major)
      perm_rows : int array          per Perm descriptor: matrix rows
      perm_cols : int array          per Perm descriptor: matrix columns
      consts    : 'a array           constant pool
      input_keys: input_key array    input pool, in gate order
    v}

    [arg] holds the index into the pool the opcode selects: the input-key
    pool for [Input], the constant pool for [Const], the Perm descriptor
    table for [Perm]; [-1] for [Add]/[Mul]. Pools are filled in gate order,
    so the k-th Input gate has [arg = k] — {!validate} enforces this
    canonical form, which also makes the serialized bytes deterministic.

    Gate values live in a {e plane}: a Bigarray [int] vector when the
    semiring carrier is machine-int ({!Semiring.Intf.Machine_int} — no GC
    scanning, no float-array check on access), a boxed ['a array]
    otherwise. The same circuit evaluates in either plane — the
    universality of Theorem 6 is untouched by the representation.

    A compact circuit can be persisted: {!save}/{!load} use a versioned
    length-prefixed binary format ([SPQC1], FNV-1a section checksums like
    {!Journal}) so a compiled+optimized circuit is written once and loaded
    back in O(size), with corruption surfacing as [Robust.Bad_input]
    rather than as wrong answers. *)

let op_input = 0
let op_const = 1
let op_add = 2
let op_mul = 3
let op_perm = 4

type 'a t = {
  n : int;  (** gate count *)
  opcode : int array;  (** n entries, each in 0..4 *)
  arg : int array;  (** n entries: pool index per opcode, -1 for Add/Mul *)
  child_off : int array;  (** n+1 CSR offsets into [children] *)
  children : int array;  (** flat child ids; strictly smaller than their gate *)
  perm_rows : int array;  (** per Perm descriptor *)
  perm_cols : int array;  (** per Perm descriptor *)
  consts : 'a array;
  input_keys : Circuit.input_key array;
  input_ids : (Circuit.input_key, int) Hashtbl.t;  (** key → gate id (derived) *)
  output : int;
}

(* --- value planes --- *)

(** Flat gate-value storage; [PInt] is unboxed (Bigarray), [PBox] the
    fallback for arbitrary carriers. *)
type 'a plane =
  | PInt : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t -> int plane
  | PBox : 'a array -> 'a plane

(** Plane matching the semiring's representation witness, filled with
    [ops.zero]. *)
let make_plane (type a) (ops : a Semiring.Intf.ops) (n : int) : a plane =
  match ops.Semiring.Intf.repr with
  | Semiring.Intf.Machine_int ->
      let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
      Bigarray.Array1.fill b ops.Semiring.Intf.zero;
      PInt b
  | Semiring.Intf.Boxed_repr -> PBox (Array.make n ops.Semiring.Intf.zero)

(** Always-boxed plane — the storage of the sequential (boxed) twin,
    regardless of the representation witness. *)
let boxed_plane (ops : 'a Semiring.Intf.ops) (n : int) : 'a plane =
  PBox (Array.make n ops.Semiring.Intf.zero)

let plane_get : type a. a plane -> int -> a =
 fun p i -> match p with PInt b -> Bigarray.Array1.get b i | PBox a -> a.(i)

let plane_set : type a. a plane -> int -> a -> unit =
 fun p i v -> match p with PInt b -> Bigarray.Array1.set b i v | PBox a -> a.(i) <- v

let plane_length : type a. a plane -> int =
 fun p -> match p with PInt b -> Bigarray.Array1.dim b | PBox a -> Array.length a

(* --- conversion --- *)

(** One-shot conversion from the boxed graph, meant to run on the output
    of the {!Opt} pipeline. Child references are re-validated here even
    though {!Circuit.finish} already checks them: optimized circuits carry
    remap tables in which dropped gates map to [-1], and a Perm matrix
    rebuilt from such a table must fail with a structured error, not a
    bounds [Invalid_argument] deep inside an array blit. *)
let of_circuit (c : 'a Circuit.t) : 'a t =
  let nodes = c.Circuit.nodes in
  let n = Array.length nodes in
  if n = 0 then Robust.bad_input "Compact.of_circuit: empty circuit";
  if c.Circuit.output < 0 || c.Circuit.output >= n then
    Robust.bad_input "Compact.of_circuit: output gate %d out of range (%d gates)"
      c.Circuit.output n;
  let check_child id g =
    if g < 0 then
      Robust.bad_input
        "Compact.of_circuit: gate %d references dropped child %d (an optimizer remap \
         maps dead gates to -1; rebuild the matrix from live gate ids)"
        id g
    else if g >= id then
      Robust.bad_input
        "Compact.of_circuit: gate %d references child %d; children must have strictly \
         smaller ids (topological order)"
        id g
  in
  let opcode = Array.make n 0 in
  let arg = Array.make n (-1) in
  let child_off = Array.make (n + 1) 0 in
  let nchildren = ref 0 in
  let rev_consts = ref [] and nconsts = ref 0 in
  let rev_keys = ref [] and nkeys = ref 0 in
  let rev_rows = ref [] and rev_cols = ref [] and nperm = ref 0 in
  Array.iteri
    (fun id node ->
      (match node with
      | Circuit.Input key ->
          opcode.(id) <- op_input;
          arg.(id) <- !nkeys;
          rev_keys := key :: !rev_keys;
          incr nkeys
      | Circuit.Const s ->
          opcode.(id) <- op_const;
          arg.(id) <- !nconsts;
          rev_consts := s :: !rev_consts;
          incr nconsts
      | Circuit.Add gs ->
          opcode.(id) <- op_add;
          Array.iter (check_child id) gs;
          nchildren := !nchildren + Array.length gs
      | Circuit.Mul gs ->
          opcode.(id) <- op_mul;
          Array.iter (check_child id) gs;
          nchildren := !nchildren + Array.length gs
      | Circuit.Perm rows ->
          opcode.(id) <- op_perm;
          arg.(id) <- !nperm;
          let r = Array.length rows in
          let cols = if r = 0 then 0 else Array.length rows.(0) in
          Array.iteri
            (fun ri row ->
              if Array.length row <> cols then
                Robust.bad_input
                  "Compact.of_circuit: gate %d has a ragged permanent matrix (row 0 has \
                   %d columns, row %d has %d)"
                  id cols ri (Array.length row);
              Array.iter (check_child id) row)
            rows;
          rev_rows := r :: !rev_rows;
          rev_cols := cols :: !rev_cols;
          incr nperm;
          nchildren := !nchildren + (r * cols));
      child_off.(id + 1) <- !nchildren)
    nodes;
  let children = Array.make !nchildren 0 in
  Array.iteri
    (fun id node ->
      let pos = ref child_off.(id) in
      let put g =
        children.(!pos) <- g;
        incr pos
      in
      match node with
      | Circuit.Input _ | Circuit.Const _ -> ()
      | Circuit.Add gs | Circuit.Mul gs -> Array.iter put gs
      | Circuit.Perm rows -> Array.iter (Array.iter put) rows)
    nodes;
  let input_keys = Array.of_list (List.rev !rev_keys) in
  let input_ids = Hashtbl.create (max 16 (2 * !nkeys)) in
  Array.iteri
    (fun id node ->
      match node with
      | Circuit.Input key ->
          if Hashtbl.mem input_ids key then
            Robust.bad_input
              "Compact.of_circuit: duplicate input gate for (%s, [%s])" (fst key)
              (String.concat ";" (List.map string_of_int (snd key)));
          Hashtbl.replace input_ids key id
      | _ -> ())
    nodes;
  {
    n;
    opcode;
    arg;
    child_off;
    children;
    perm_rows = Array.of_list (List.rev !rev_rows);
    perm_cols = Array.of_list (List.rev !rev_cols);
    consts = Array.of_list (List.rev !rev_consts);
    input_keys;
    input_ids;
    output = c.Circuit.output;
  }

(** Back to the boxed graph — O(size); used by the loaded-circuit path so
    dynamic maintenance can rebalance and rebuild exactly as it does for a
    freshly compiled circuit. *)
let to_circuit (t : 'a t) : 'a Circuit.t =
  let nodes =
    Array.init t.n (fun id ->
        let base = t.child_off.(id) in
        let deg = t.child_off.(id + 1) - base in
        match t.opcode.(id) with
        | 0 -> Circuit.Input t.input_keys.(t.arg.(id))
        | 1 -> Circuit.Const t.consts.(t.arg.(id))
        | 2 -> Circuit.Add (Array.init deg (fun i -> t.children.(base + i)))
        | 3 -> Circuit.Mul (Array.init deg (fun i -> t.children.(base + i)))
        | _ ->
            let d = t.arg.(id) in
            let rows = t.perm_rows.(d) and cols = t.perm_cols.(d) in
            Circuit.Perm
              (Array.init rows (fun r ->
                   Array.init cols (fun c -> t.children.(base + (r * cols) + c)))))
  in
  { Circuit.nodes; output = t.output; input_ids = Hashtbl.copy t.input_ids }

(* --- evaluation --- *)

(* Permanent gate: materialize the matrix from the plane and run the
   static O(2ᵏ·k·n) DP — identical to the boxed evaluator's Perm case. *)
let perm_matrix (type a) (t : a t) (vals : a plane) (id : int) : a array array =
  let d = t.arg.(id) in
  let rows = t.perm_rows.(d) and cols = t.perm_cols.(d) in
  let base = t.child_off.(id) in
  Array.init rows (fun r ->
      Array.init cols (fun c -> plane_get vals t.children.(base + (r * cols) + c)))

(** Evaluate every gate bottom-up into [vals] (length ≥ n), seeding input
    gates from [valuation]. Exposed for callers that want to keep the
    plane (e.g. to read several gate values). *)
let eval_into (type a) (ops : a Semiring.Intf.ops) (t : a t)
    (valuation : Circuit.input_key -> a) (vals : a plane) : unit =
  let open Semiring.Intf in
  let opcode = t.opcode
  and arg = t.arg
  and child_off = t.child_off
  and children = t.children in
  (* dispatch on the plane once, not per access: this loop is the whole
     point of the flat layout. unsafe_get is sound — every index was
     validated by of_circuit/load ([children] ids < gate < n). *)
  match vals with
  | PInt b ->
      for id = 0 to t.n - 1 do
        let v =
          match Array.unsafe_get opcode id with
          | 0 -> valuation t.input_keys.(Array.unsafe_get arg id)
          | 1 -> t.consts.(Array.unsafe_get arg id)
          | 2 ->
              let acc = ref ops.zero in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.add !acc (Bigarray.Array1.unsafe_get b (Array.unsafe_get children i))
              done;
              !acc
          | 3 ->
              let acc = ref ops.one in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.mul !acc (Bigarray.Array1.unsafe_get b (Array.unsafe_get children i))
              done;
              !acc
          | _ -> Perm.Static.perm ops (perm_matrix t vals id)
        in
        Bigarray.Array1.unsafe_set b id v
      done
  | PBox a ->
      for id = 0 to t.n - 1 do
        let v =
          match Array.unsafe_get opcode id with
          | 0 -> valuation t.input_keys.(Array.unsafe_get arg id)
          | 1 -> t.consts.(Array.unsafe_get arg id)
          | 2 ->
              let acc = ref ops.zero in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.add !acc (Array.unsafe_get a (Array.unsafe_get children i))
              done;
              !acc
          | 3 ->
              let acc = ref ops.one in
              for i = Array.unsafe_get child_off id to Array.unsafe_get child_off (id + 1) - 1 do
                acc := ops.mul !acc (Array.unsafe_get a (Array.unsafe_get children i))
              done;
              !acc
          | _ -> Perm.Static.perm ops (perm_matrix t vals id)
        in
        Array.unsafe_set a id v
      done

(** Evaluate under a valuation of the input gates; same empty-gate
    conventions as {!Circuit.eval} ([Add [||]] = zero, [Mul [||]] = one). *)
let eval (type a) (ops : a Semiring.Intf.ops) (t : a t)
    (valuation : Circuit.input_key -> a) : a =
  let vals = make_plane ops t.n in
  eval_into ops t valuation vals;
  plane_get vals t.output

(* --- structural validation --- *)

(** Check every invariant the runtime relies on; raises [Robust.Bad_input]
    on the first violation. {!load} runs this on everything it reads, so a
    file that passes the checksums but encodes a malformed DAG still
    cannot crash the evaluator or the wave engine. *)
let validate (t : 'a t) : unit =
  let fail fmt = Robust.bad_input fmt in
  let n = t.n in
  if n <= 0 then fail "Compact.validate: empty circuit";
  if Array.length t.opcode <> n then fail "Compact.validate: opcode array length mismatch";
  if Array.length t.arg <> n then fail "Compact.validate: arg array length mismatch";
  if Array.length t.child_off <> n + 1 then
    fail "Compact.validate: child_off must have %d entries" (n + 1);
  if t.output < 0 || t.output >= n then fail "Compact.validate: output gate out of range";
  if Array.length t.perm_rows <> Array.length t.perm_cols then
    fail "Compact.validate: perm descriptor tables disagree in length";
  if t.child_off.(0) <> 0 then fail "Compact.validate: child_off must start at 0";
  if t.child_off.(n) <> Array.length t.children then
    fail "Compact.validate: child_off must end at the children count";
  let seen_inputs = ref 0 and seen_consts = ref 0 and seen_perms = ref 0 in
  for id = 0 to n - 1 do
    let base = t.child_off.(id) in
    let next = t.child_off.(id + 1) in
    if next < base then fail "Compact.validate: child_off decreases at gate %d" id;
    let deg = next - base in
    for i = base to next - 1 do
      let g = t.children.(i) in
      if g < 0 || g >= id then
        fail "Compact.validate: gate %d references child %d (not strictly smaller)" id g
    done;
    match t.opcode.(id) with
    | 0 ->
        if deg <> 0 then fail "Compact.validate: input gate %d has children" id;
        if t.arg.(id) <> !seen_inputs then
          fail "Compact.validate: input gate %d breaks pool order" id;
        incr seen_inputs
    | 1 ->
        if deg <> 0 then fail "Compact.validate: const gate %d has children" id;
        if t.arg.(id) <> !seen_consts then
          fail "Compact.validate: const gate %d breaks pool order" id;
        incr seen_consts
    | 2 | 3 ->
        if t.arg.(id) <> -1 then fail "Compact.validate: add/mul gate %d has an arg" id
    | 4 ->
        let d = t.arg.(id) in
        if d <> !seen_perms then fail "Compact.validate: perm gate %d breaks pool order" id;
        incr seen_perms;
        let rows = t.perm_rows.(d) and cols = t.perm_cols.(d) in
        if rows < 0 || cols < 0 then
          fail "Compact.validate: perm gate %d has negative dimensions" id;
        if deg <> rows * cols then
          fail "Compact.validate: perm gate %d has %d children for a %dx%d matrix" id deg
            rows cols
    | op -> fail "Compact.validate: gate %d has unknown opcode %d" id op
  done;
  if !seen_inputs <> Array.length t.input_keys then
    fail "Compact.validate: input pool size disagrees with input gate count";
  if !seen_consts <> Array.length t.consts then
    fail "Compact.validate: constant pool size disagrees with const gate count";
  if !seen_perms <> Array.length t.perm_rows then
    fail "Compact.validate: perm descriptor count disagrees with perm gate count";
  let keys = Hashtbl.create (max 16 (2 * Array.length t.input_keys)) in
  Array.iter
    (fun key ->
      if Hashtbl.mem keys key then
        fail "Compact.validate: duplicate input key (%s, [%s])" (fst key)
          (String.concat ";" (List.map string_of_int (snd key)));
      Hashtbl.replace keys key ())
    t.input_keys

(* --- serialization (SPQC1) --- *)

let magic = "SPQC1\n"

(* Section payloads are individually protected: [4-byte length | 4-byte
   FNV-1a checksum | payload], the same frame as Journal's SPQJ1 records.
   All lengths and array entries fit comfortably in 32 bits (gate counts
   are bounded by in-memory array sizes and validated on load). *)
let checksum_bytes (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

let encode_ints (a : int array) : string =
  let b = Bytes.create (4 * Array.length a) in
  Array.iteri (fun i x -> Bytes.set_int32_be b (4 * i) (Int32.of_int x)) a;
  Bytes.unsafe_to_string b

let max_section = 1 lsl 30

(** Serialize to [path]. [tag] is a free-form caller string (the CLI
    stores the semiring name) checked by the caller after {!load} — the
    constant pool goes through [Marshal], so evaluating a circuit in a
    semiring other than the one it was saved under is undefined; the tag
    lets callers refuse early. The writer is deterministic: saving a
    loaded circuit reproduces the input file byte for byte. *)
let save ?(tag = "") (t : 'a t) (path : string) : unit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let section payload =
    Buffer.add_int32_be buf (Int32.of_int (String.length payload));
    Buffer.add_int32_be buf (Int32.of_int (checksum_bytes payload));
    Buffer.add_string buf payload
  in
  section
    (encode_ints
       [|
         t.n;
         t.output;
         Array.length t.children;
         Array.length t.perm_rows;
         Array.length t.consts;
         Array.length t.input_keys;
       |]);
  section tag;
  section (encode_ints t.opcode);
  section (encode_ints t.arg);
  section (encode_ints t.child_off);
  section (encode_ints t.children);
  section (encode_ints t.perm_rows);
  section (encode_ints t.perm_cols);
  section (Marshal.to_string t.consts []);
  section (Marshal.to_string t.input_keys []);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

(** Read a circuit back. Every frame's length is bounds-checked against
    the bytes actually remaining {e before} any allocation, every checksum
    is re-derived from the bytes actually read, and the decoded structure
    goes through {!validate} — bit flips, truncations and version bumps
    all surface as [Robust.Bad_input], never as a crash, a hang, or an
    over-allocation. Returns the circuit and the saved tag. *)
let load (path : string) : 'a t * string =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let file_len = in_channel_length ic in
  (match really_input_string ic (String.length magic) with
  | m when m = magic -> ()
  | m when String.length m >= 4 && String.sub m 0 4 = "SPQC" ->
      Robust.bad_input "Compact.load: %s uses an unsupported circuit format version" path
  | _ -> Robust.bad_input "Compact.load: %s is not a compact circuit file (bad magic)" path
  | exception End_of_file ->
      Robust.bad_input "Compact.load: %s is not a compact circuit file (too short)" path);
  let read_int32 what =
    try Int32.to_int (Bytes.get_int32_be (Bytes.of_string (really_input_string ic 4)) 0)
    with End_of_file -> Robust.bad_input "Compact.load: %s truncated in %s" path what
  in
  let read_section name =
    let len = read_int32 name in
    if len < 0 || len > max_section then
      Robust.bad_input "Compact.load: %s section %s has implausible length %d" path name
        len;
    if len + 4 > file_len - pos_in ic then
      Robust.bad_input "Compact.load: %s truncated inside section %s" path name;
    let stored = read_int32 name land 0xFFFFFFFF in
    let payload =
      try really_input_string ic len
      with End_of_file ->
        Robust.bad_input "Compact.load: %s truncated inside section %s" path name
    in
    if checksum_bytes payload <> stored then
      Robust.bad_input "Compact.load: %s section %s fails its checksum" path name;
    payload
  in
  let decode_ints name payload =
    let len = String.length payload in
    if len mod 4 <> 0 then
      Robust.bad_input "Compact.load: %s section %s is not an int array" path name;
    Array.init (len / 4)
      (fun i -> Int32.to_int (Bytes.get_int32_be (Bytes.unsafe_of_string payload) (4 * i)))
  in
  let header = decode_ints "header" (read_section "header") in
  if Array.length header <> 6 then
    Robust.bad_input "Compact.load: %s has a malformed header" path;
  let n = header.(0) in
  if n <= 0 || n > max_section then
    Robust.bad_input "Compact.load: %s declares an implausible gate count %d" path n;
  let tag = read_section "tag" in
  let opcode = decode_ints "opcode" (read_section "opcode") in
  let arg = decode_ints "arg" (read_section "arg") in
  let child_off = decode_ints "child_off" (read_section "child_off") in
  let children = decode_ints "children" (read_section "children") in
  let perm_rows = decode_ints "perm_rows" (read_section "perm_rows") in
  let perm_cols = decode_ints "perm_cols" (read_section "perm_cols") in
  let consts_payload = read_section "consts" in
  let keys_payload = read_section "input_keys" in
  if pos_in ic <> file_len then
    Robust.bad_input "Compact.load: %s has trailing bytes after the last section" path;
  let unmarshal name payload =
    (* the checksum already passed, so this only fails on a file written
       with an incompatible runtime — still a Bad_input, not a crash *)
    try Marshal.from_string payload 0
    with _ ->
      Robust.bad_input "Compact.load: %s section %s does not decode" path name
  in
  let consts : 'a array = unmarshal "consts" consts_payload in
  let input_keys : Circuit.input_key array = unmarshal "input_keys" keys_payload in
  if
    header.(2) <> Array.length children
    || header.(3) <> Array.length perm_rows
    || header.(4) <> Array.length consts
    || header.(5) <> Array.length input_keys
  then Robust.bad_input "Compact.load: %s header disagrees with its sections" path;
  let input_ids = Hashtbl.create (max 16 (2 * Array.length input_keys)) in
  let t =
    {
      n;
      opcode;
      arg;
      child_off;
      children;
      perm_rows;
      perm_cols;
      consts;
      input_keys;
      input_ids;
      output = header.(1);
    }
  in
  validate t;
  Array.iteri
    (fun id op -> if op = op_input then Hashtbl.replace input_ids input_keys.(arg.(id)) id)
    opcode;
  (t, tag)
