(** Append-only journal of committed update batches — the durability
    primitive under {!Dyn.replay}: a fresh compile plus a replay of the
    journal reconstructs the exact served state, so a process restart (or
    a repair-from-scratch) never loses committed writes.

    Two record kinds share the commit sequence:

    - {b weight batches} — the input-key assignments of one committed
      propagation wave (the only record kind before structural updates);
    - {b structural ops} — one committed tuple insert or delete, recorded
      by the localized-recompile path so a replay can re-run the same
      splice against a fresh compile.

    Each record carries a checksum of its marshalled payload; {!verify}
    and {!load} re-derive the checksum so silent corruption (in memory or
    on disk) is detected before a replay can serve wrong answers. The
    optional file form is a small length-prefixed binary format:

      magic "SPQJ1\n", then per record
      [4-byte length | 4-byte FNV-1a checksum | payload],

    payload = [Marshal] of the record body, records oldest-first. Weight
    batches keep the pre-structural encoding bit for bit (payload = the
    assignment list, length positive); a structural op is framed with the
    {e negated} payload length — readers from before the extension reject
    the negative length as implausible instead of misdecoding it, and
    weight-only journals written today remain byte-identical to the
    committed golden fixture. *)

(** One committed tuple insert or delete against a relation. *)
type structural_op = {
  s_insert : bool;  (** true = insert, false = delete *)
  s_rel : string;
  s_tup : int list;
}

type 'a record =
  | Weights of (Circuit.input_key * 'a) list  (** committed assignments, oldest first *)
  | Structural of structural_op

type 'a batch = {
  seq : int;  (** 0-based position in commit order *)
  op : 'a record;
  checksum : int;  (** FNV-1a (32-bit) of the marshalled payload *)
}

(** The weight assignments of a batch ([[]] for a structural op) — the
    accessor most consumers of pre-structural journals used. *)
let writes (b : 'a batch) : (Circuit.input_key * 'a) list =
  match b.op with Weights ws -> ws | Structural _ -> []

let structural (b : 'a batch) : structural_op option =
  match b.op with Weights _ -> None | Structural s -> Some s

type 'a t = {
  mutable rev_batches : 'a batch list;  (** newest first *)
  mutable count : int;
  mutable total_bytes : int;  (** marshalled payload bytes appended so far *)
}

(* Durability observables (scope "dyn", next to the update-wave metrics the
   journal shadows): committed batches and their payload volume. *)
let m_journal_batches = Obs.counter ~scope:"dyn" "journal_batches"
let m_journal_bytes = Obs.counter ~scope:"dyn" "journal_bytes"
let m_journal_structural = Obs.counter ~scope:"dyn" "journal_structural_ops"

let create () : 'a t = { rev_batches = []; count = 0; total_bytes = 0 }

(* FNV-1a, 32-bit: cheap, stdlib-only, and stable across runs (unlike
   [Hashtbl.hash] on structured data it is defined on the exact bytes). *)
let checksum_bytes (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

(* The two payload encoders are kept separate (rather than marshalling the
   [record] variant) so weight batches stay byte-compatible with journals
   written before structural ops existed. *)
let encode_record (op : 'a record) : string =
  match op with
  | Weights ws -> Marshal.to_string ws []
  | Structural s -> Marshal.to_string s []

let append_record (t : 'a t) (op : 'a record) : unit =
  let payload = encode_record op in
  let b = { seq = t.count; op; checksum = checksum_bytes payload } in
  t.rev_batches <- b :: t.rev_batches;
  t.count <- t.count + 1;
  t.total_bytes <- t.total_bytes + String.length payload;
  Obs.Counter.incr m_journal_batches;
  (match op with Structural _ -> Obs.Counter.incr m_journal_structural | Weights _ -> ());
  Obs.Counter.add m_journal_bytes (String.length payload)

(** Record one committed weight batch (empty batches are kept too: replay
    must preserve commit positions for the seq numbers to line up). *)
let append (t : 'a t) (writes : (Circuit.input_key * 'a) list) : unit =
  append_record t (Weights writes)

(** Record one committed structural update (tuple insert/delete). *)
let append_structural (t : 'a t) ~(insert : bool) ~(rel : string) ~(tup : int list) : unit =
  append_record t (Structural { s_insert = insert; s_rel = rel; s_tup = tup })

(** Batches oldest-first (commit order). *)
let batches (t : 'a t) : 'a batch list = List.rev t.rev_batches

let length (t : 'a t) : int = t.count
let bytes (t : 'a t) : int = t.total_bytes

let structural_count (t : 'a t) : int =
  List.fold_left
    (fun acc b -> match b.op with Structural _ -> acc + 1 | Weights _ -> acc)
    0 t.rev_batches

(** Re-derive every checksum; [Some seq] is the first corrupt batch. *)
let verify (t : 'a t) : int option =
  List.fold_left
    (fun acc b ->
      match acc with
      | Some _ -> acc
      | None -> if checksum_bytes (encode_record b.op) <> b.checksum then Some b.seq else None)
    None (batches t)

let magic = "SPQJ1\n"

(** Write the journal to [path] in the length-prefixed binary format. *)
let save (t : 'a t) (path : string) : unit =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  List.iter
    (fun b ->
      let payload = encode_record b.op in
      (* structural ops are framed with the negated length; weight batches
         keep the original positive-length frame *)
      (match b.op with
      | Weights _ -> output_binary_int oc (String.length payload)
      | Structural _ -> output_binary_int oc (-String.length payload));
      output_binary_int oc b.checksum;
      output_string oc payload)
    (batches t)

(** Read a journal back; every record's checksum is re-derived from the
    payload actually read, so truncation and bit flips surface as
    [Robust.Bad_input] here rather than as a wrong replayed state. *)
let load (path : string) : 'a t =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match really_input_string ic (String.length magic) with
  | m when m = magic -> ()
  | _ -> Robust.bad_input "Journal.load: %s is not an update journal (bad magic)" path
  | exception End_of_file ->
      Robust.bad_input "Journal.load: %s is not an update journal (too short)" path);
  let t = create () in
  let rec loop () =
    match input_binary_int ic with
    | exception End_of_file -> ()
    | tagged_len ->
        let structural = tagged_len < 0 in
        let len = abs tagged_len in
        if len = 0 && structural then
          Robust.bad_input "Journal.load: %s batch %d has implausible length %d" path
            t.count tagged_len;
        if len > 1 lsl 30 then
          Robust.bad_input "Journal.load: %s batch %d has implausible length %d" path
            t.count len;
        let stored = input_binary_int ic land 0xFFFFFFFF in
        let payload =
          try really_input_string ic len
          with End_of_file ->
            Robust.bad_input "Journal.load: %s truncated inside batch %d" path t.count
        in
        if checksum_bytes payload <> stored then
          Robust.bad_input "Journal.load: %s batch %d fails its checksum" path t.count;
        if structural then begin
          let s : structural_op = Marshal.from_string payload 0 in
          if s.s_rel = "" || List.exists (fun v -> v < 0) s.s_tup then
            Robust.bad_input "Journal.load: %s batch %d has a malformed structural op"
              path t.count;
          append_record t (Structural s)
        end
        else append_record t (Weights (Marshal.from_string payload 0));
        loop ()
  in
  loop ();
  t
