(** Append-only journal of committed update batches — the durability
    primitive under {!Dyn.replay}: a fresh compile plus a replay of the
    journal reconstructs the exact served state, so a process restart (or
    a repair-from-scratch) never loses committed writes.

    Each batch records the input-key assignments of one committed wave
    together with a checksum of its marshalled payload; {!verify} and
    {!load} re-derive the checksum so silent corruption (in memory or on
    disk) is detected before a replay can serve wrong answers. The
    optional file form is a small length-prefixed binary format:

      magic "SPQJ1\n", then per batch
      [4-byte length | 4-byte FNV-1a checksum | payload],

    payload = [Marshal] of the assignment list, batches oldest-first. *)

type 'a batch = {
  seq : int;  (** 0-based position in commit order *)
  writes : (Circuit.input_key * 'a) list;  (** committed assignments, oldest first *)
  checksum : int;  (** FNV-1a (32-bit) of the marshalled writes *)
}

type 'a t = {
  mutable rev_batches : 'a batch list;  (** newest first *)
  mutable count : int;
  mutable total_bytes : int;  (** marshalled payload bytes appended so far *)
}

(* Durability observables (scope "dyn", next to the update-wave metrics the
   journal shadows): committed batches and their payload volume. *)
let m_journal_batches = Obs.counter ~scope:"dyn" "journal_batches"
let m_journal_bytes = Obs.counter ~scope:"dyn" "journal_bytes"

let create () : 'a t = { rev_batches = []; count = 0; total_bytes = 0 }

(* FNV-1a, 32-bit: cheap, stdlib-only, and stable across runs (unlike
   [Hashtbl.hash] on structured data it is defined on the exact bytes). *)
let checksum_bytes (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF) s;
  !h

let encode_writes (writes : (Circuit.input_key * 'a) list) : string =
  Marshal.to_string writes []

(** Record one committed batch (empty batches are kept too: replay must
    preserve commit positions for the seq numbers to line up). *)
let append (t : 'a t) (writes : (Circuit.input_key * 'a) list) : unit =
  let payload = encode_writes writes in
  let b = { seq = t.count; writes; checksum = checksum_bytes payload } in
  t.rev_batches <- b :: t.rev_batches;
  t.count <- t.count + 1;
  t.total_bytes <- t.total_bytes + String.length payload;
  Obs.Counter.incr m_journal_batches;
  Obs.Counter.add m_journal_bytes (String.length payload)

(** Batches oldest-first (commit order). *)
let batches (t : 'a t) : 'a batch list = List.rev t.rev_batches

let length (t : 'a t) : int = t.count
let bytes (t : 'a t) : int = t.total_bytes

(** Re-derive every checksum; [Some seq] is the first corrupt batch. *)
let verify (t : 'a t) : int option =
  List.fold_left
    (fun acc b ->
      match acc with
      | Some _ -> acc
      | None -> if checksum_bytes (encode_writes b.writes) <> b.checksum then Some b.seq else None)
    None (batches t)

let magic = "SPQJ1\n"

(** Write the journal to [path] in the length-prefixed binary format. *)
let save (t : 'a t) (path : string) : unit =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  List.iter
    (fun b ->
      let payload = encode_writes b.writes in
      output_binary_int oc (String.length payload);
      output_binary_int oc b.checksum;
      output_string oc payload)
    (batches t)

(** Read a journal back; every record's checksum is re-derived from the
    payload actually read, so truncation and bit flips surface as
    [Robust.Bad_input] here rather than as a wrong replayed state. *)
let load (path : string) : 'a t =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match really_input_string ic (String.length magic) with
  | m when m = magic -> ()
  | _ -> Robust.bad_input "Journal.load: %s is not an update journal (bad magic)" path
  | exception End_of_file ->
      Robust.bad_input "Journal.load: %s is not an update journal (too short)" path);
  let t = create () in
  let rec loop () =
    match input_binary_int ic with
    | exception End_of_file -> ()
    | len ->
        if len < 0 || len > 1 lsl 30 then
          Robust.bad_input "Journal.load: %s batch %d has implausible length %d" path t.count len;
        let stored = input_binary_int ic land 0xFFFFFFFF in
        let payload =
          try really_input_string ic len
          with End_of_file ->
            Robust.bad_input "Journal.load: %s truncated inside batch %d" path t.count
        in
        if checksum_bytes payload <> stored then
          Robust.bad_input "Journal.load: %s batch %d fails its checksum" path t.count;
        append t (Marshal.from_string payload 0);
        loop ()
  in
  loop ();
  t
