(** Nested weighted queries — the logic FOG[C] and its evaluation
    (Section 7, Theorem 26).

    Formulas carry a per-node output semiring over the universal
    {!Semiring.Value.t}; connectives transfer between semirings and must be
    guarded: [Guarded (r, x̄, c, φs)] denotes [R(x̄)]_S · c(φ¹, …, φᵏ) where
    R is a boolean relation of the structure and x̄ contains all free
    variables of the φⁱ.

    Evaluation follows the Theorem 26 induction: innermost guarded
    connectives are replaced by fresh S-valued relations materialized by
    querying their subformulas at every guard tuple (each query costs
    O(log n), or O(1) for ring/finite semirings, via Theorem 8); the
    resulting connective-free formula is a weighted expression compiled by
    Theorem 6. Boolean-valued results additionally support constant-delay
    enumeration of their answers (Theorem 24). *)

open Semiring

type formula =
  | Srel of string * Logic.Term.t list  (** S-valued relation lookup *)
  | Const of Value.t * Value.descr
  | Add of formula list  (** ∨ when boolean *)
  | Mul of formula list  (** ∧ when boolean *)
  | Sum of string list * formula  (** Σ_x φ; ∃ when boolean *)
  | Iverson of formula * Value.descr  (** [φ]_S, φ boolean-valued *)
  | Brel of string * Logic.Term.t list  (** classical boolean relation *)
  | Eq of Logic.Term.t * Logic.Term.t
  | Not of formula  (** boolean only *)
  | Guarded of string * string list * Value.connective * formula list
      (** [R(x̄)]·c(φ¹ … φᵏ): guard relation, guard variables, connective *)

(** A structure interpreting both boolean relations (in [inst]) and
    S-valued relations (as weights with their semirings). *)
type structure = {
  inst : Db.Instance.t;
  srels : Value.t Db.Weights.bundle;
  stypes : (string * Value.descr) list;  (** semiring of each S-relation *)
}

let make_structure inst (srels : (Value.t Db.Weights.t * Value.descr) list) =
  {
    inst;
    srels = Db.Weights.bundle (List.map fst srels);
    stypes = List.map (fun (w, d) -> (Db.Weights.name w, d)) srels;
  }

exception Ill_typed of string

let ill_typed fmt = Printf.ksprintf (fun s -> raise (Ill_typed s)) fmt

(** Output semiring of a formula; raises {!Ill_typed}. *)
let rec type_of (st : structure) : formula -> Value.descr = function
  | Srel (r, _) -> (
      match List.assoc_opt r st.stypes with
      | Some d -> d
      | None -> ill_typed "unknown S-relation %s" r)
  | Const (_, d) -> d
  | Add [] | Mul [] -> ill_typed "empty connective"
  | Add (f :: fs) | Mul (f :: fs) ->
      let d = type_of st f in
      List.iter
        (fun g ->
          if not (Value.same_sr (type_of st g) d) then
            ill_typed "mixed semirings in +/· (%s vs %s)" d.Value.name (type_of st g).Value.name)
        fs;
      d
  | Sum (_, f) -> type_of st f
  | Iverson (f, d) ->
      if not (Value.same_sr (type_of st f) Value.bool_sr) then
        ill_typed "Iverson bracket over non-boolean formula";
      d
  | Brel (r, _) ->
      if not (Db.Schema.has_rel (Db.Instance.schema st.inst) r) then
        ill_typed "unknown boolean relation %s" r;
      Value.bool_sr
  | Eq _ -> Value.bool_sr
  | Not f ->
      if not (Value.same_sr (type_of st f) Value.bool_sr) then
        ill_typed "negation of non-boolean formula";
      Value.bool_sr
  | Guarded (r, gvars, c, fs) ->
      if not (Db.Schema.has_rel (Db.Instance.schema st.inst) r) then
        ill_typed "unknown guard relation %s" r;
      if Db.Schema.arity (Db.Instance.schema st.inst) r <> List.length gvars then
        ill_typed "guard arity mismatch on %s" r;
      if List.length fs <> List.length c.Value.args then
        ill_typed "connective %s arity mismatch" c.Value.cname;
      List.iter2
        (fun f expected ->
          let d = type_of st f in
          if not (Value.same_sr d expected) then
            ill_typed "connective %s: argument has semiring %s, expected %s" c.Value.cname
              d.Value.name expected.Value.name;
          List.iter
            (fun x ->
              if not (List.mem x gvars) then
                ill_typed "free variable %s of a connective argument is not guarded" x)
            (free_vars f))
        fs c.Value.args;
      c.Value.out

and free_vars : formula -> string list = function
  | Srel (_, ts) | Brel (_, ts) -> List.map Logic.Term.base ts
  | Const _ -> []
  | Add fs | Mul fs -> List.sort_uniq compare (List.concat_map free_vars fs)
  | Sum (xs, f) -> List.filter (fun v -> not (List.mem v xs)) (free_vars f)
  | Iverson (f, _) -> free_vars f
  | Eq (a, b) -> List.sort_uniq compare [ Logic.Term.base a; Logic.Term.base b ]
  | Not f -> free_vars f
  | Guarded (_, gvars, _, fs) ->
      List.sort_uniq compare (gvars @ List.concat_map free_vars fs)

(* --- translation of connective-free formulas --- *)

(* boolean-valued, connective-free → classical FO formula *)
let rec to_fo : formula -> Logic.Formula.t = function
  | Brel (r, ts) -> Logic.Formula.Rel (r, ts)
  | Srel (r, ts) -> Logic.Formula.Rel (r, ts) (* boolean S-relations materialized as relations *)
  | Eq (a, b) -> Logic.Formula.Eq (a, b)
  | Const (Value.B true, _) -> Logic.Formula.True
  | Const (Value.B false, _) -> Logic.Formula.False
  | Const _ -> invalid_arg "Nested: non-boolean constant in boolean context"
  | Not f -> Logic.Formula.Not (to_fo f)
  | Add fs -> Logic.Formula.Or (List.map to_fo fs)
  | Mul fs -> Logic.Formula.And (List.map to_fo fs)
  | Sum (xs, f) -> List.fold_right (fun x acc -> Logic.Formula.Exists (x, acc)) xs (to_fo f)
  | Iverson (f, _) -> to_fo f
  | Guarded _ -> invalid_arg "Nested: guard not materialized"

(* S-valued, connective-free → weighted expression *)
let rec to_expr (st : structure) (f : formula) : Value.t Logic.Expr.t =
  match f with
  | Srel (r, ts) -> Logic.Expr.Weight (r, ts)
  | Const (v, _) -> Logic.Expr.Const v
  | Add fs -> Logic.Expr.Add (List.map (to_expr st) fs)
  | Mul fs -> Logic.Expr.Mul (List.map (to_expr st) fs)
  | Sum (xs, f) -> Logic.Expr.Sum (xs, to_expr st f)
  | Iverson (f, _) -> Logic.Expr.Guard (to_fo f)
  | Brel (r, ts) -> Logic.Expr.Guard (Logic.Formula.Rel (r, ts))
  | Eq (a, b) -> Logic.Expr.Guard (Logic.Formula.Eq (a, b))
  | Not f -> Logic.Expr.Guard (Logic.Formula.Not (to_fo f))
  | Guarded _ -> invalid_arg "Nested: guard not materialized"

(* Quantifiers inside expression guards are eliminated by the guarded
   materialization of Fo_enum; returns the extended structure. *)
let eliminate_guard_quantifiers (st : structure) (e : Value.t Logic.Expr.t) :
    structure * Value.t Logic.Expr.t =
  let inst = ref st.inst in
  let rec go : Value.t Logic.Expr.t -> Value.t Logic.Expr.t = function
    | Logic.Expr.Guard f when not (Logic.Formula.is_quantifier_free f) ->
        let inst', f' = Fo_enum.materialize_guarded !inst f in
        inst := inst';
        Logic.Expr.Guard f'
    | (Logic.Expr.Guard _ | Logic.Expr.Const _ | Logic.Expr.Weight _) as e -> e
    | Logic.Expr.Add es -> Logic.Expr.Add (List.map go es)
    | Logic.Expr.Mul es -> Logic.Expr.Mul (List.map go es)
    | Logic.Expr.Sum (xs, e) -> Logic.Expr.Sum (xs, go e)
  in
  let e' = go e in
  ({ st with inst = !inst }, e')

(* --- the Theorem 26 induction --- *)

(* Theorem 26 observables (scope "nested"): evaluations run and guarded
   connectives replaced by materialized relations/weights. *)
let m_evals = Obs.counter ~scope:"nested" "evals"
let m_connectives = Obs.counter ~scope:"nested" "connectives_materialized"
let h_eval_ns = Obs.histogram ~scope:"nested" "eval_ns"

let fresh_counter = ref 0

(* Materialize every guarded connective, innermost-first. *)
let rec materialize ?budget (st : structure) (f : formula) : structure * formula =
  match f with
  | Srel _ | Const _ | Brel _ | Eq _ -> (st, f)
  | Add fs ->
      let st, fs = materialize_list ?budget st fs in
      (st, Add fs)
  | Mul fs ->
      let st, fs = materialize_list ?budget st fs in
      (st, Mul fs)
  | Sum (xs, f) ->
      let st, f = materialize ?budget st f in
      (st, Sum (xs, f))
  | Iverson (f, d) ->
      let st, f = materialize ?budget st f in
      (st, Iverson (f, d))
  | Not f ->
      let st, f = materialize ?budget st f in
      (st, Not f)
  | Guarded (r, gvars, c, fs) ->
      Obs.Counter.incr m_connectives;
      Obs.Trace.span ~scope:"nested" "connective"
        ~attrs:
          [
            ("name", Obs.Trace.S c.Value.cname);
            ("guard", Obs.Trace.S r);
            ("args", Obs.Trace.I (List.length fs));
          ]
      @@ fun () ->
      let st, fs = materialize_list ?budget st fs in
      (* evaluate each argument as a query over the guard variables *)
      let queries =
        List.map
          (fun f ->
            let q = query_of ?budget st f ~order:gvars in
            q)
          fs
      in
      incr fresh_counter;
      let out = c.Value.out in
      if Value.same_sr out Value.bool_sr then begin
        (* boolean output: materialize as a classical relation so that the
           result stays enumerable *)
        let rname = Printf.sprintf "__conn%d" !fresh_counter in
        let tuples = ref [] in
        Db.Instance.iter_tuples st.inst r (fun tup ->
            let v = c.Value.apply (List.map (fun q -> q tup) queries) in
            if Value.as_bool v then tuples := tup :: !tuples);
        let inst =
          Db.Instance.with_relation st.inst rname ~arity:(List.length gvars) !tuples
        in
        (( { st with inst } : structure ),
         Brel (rname, List.map (fun x -> Logic.Term.Var x) gvars))
      end
      else begin
        let wname = Printf.sprintf "__conn%d" !fresh_counter in
        let w = Db.Weights.create ~name:wname ~arity:(List.length gvars) ~zero:out.Value.zero in
        Db.Instance.iter_tuples st.inst r (fun tup ->
            let v = c.Value.apply (List.map (fun q -> q tup) queries) in
            Db.Weights.set w tup v);
        Hashtbl.replace st.srels wname w;
        let st = { st with stypes = (wname, out) :: st.stypes } in
        (st, Srel (wname, List.map (fun x -> Logic.Term.Var x) gvars))
      end

and materialize_list ?budget st fs =
  List.fold_left
    (fun (st, acc) f ->
      let st, f = materialize ?budget st f in
      (st, acc @ [ f ]))
    (st, []) fs

(* A query function for a connective-free formula with free variables
   [order]: one Theorem 8 preparation, then one O(log n) query per tuple. *)
and query_of ?budget (st : structure) (f : formula) ~(order : string list) :
    int list -> Value.t =
  let d = type_of st f in
  let fv = free_vars f in
  let expr = to_expr st f in
  let st, expr = eliminate_guard_quantifiers st expr in
  let ops = Value.ops_of_descr d in
  let ev = Engine.Eval.prepare ops ?budget st.inst st.srels expr in
  let positions =
    (* Engine sorts free variables; map guard-order tuples accordingly *)
    List.map (fun x -> if List.mem x fv then Some x else None) order
  in
  let engine_fv = Logic.Expr.free_vars_unique expr in
  fun tuple ->
    let env = List.filteri (fun _ _ -> true) (List.combine positions tuple) in
    let env = List.filter_map (fun (x, a) -> Option.map (fun x -> (x, a)) x) env in
    let args = List.map (fun x -> List.assoc x env) engine_fv in
    Engine.Eval.query ev args

(** Evaluate a closed nested weighted query; O(n log n) in general, O(n)
    when all semirings involved are rings or finite. *)
let eval ?budget (st : structure) (f : formula) : Value.t =
  Obs.Counter.incr m_evals;
  Obs.Trace.span ~scope:"nested" "eval" @@ fun () ->
  Obs.Timer.time h_eval_ns @@ fun () ->
  let d = type_of st f in
  if free_vars f <> [] then
    Robust.bad_input "Nested.eval: formula has free variables %s"
      (String.concat "," (free_vars f));
  let st, f = materialize ?budget st f in
  if Value.same_sr d Value.bool_sr then begin
    (* evaluate through the boolean pipeline *)
    let expr = Logic.Expr.Guard (to_fo f) in
    let st, expr = eliminate_guard_quantifiers st expr in
    let ops = Value.ops_of_descr Value.bool_sr in
    Engine.Eval.evaluate ops ?budget st.inst st.srels expr
  end
  else begin
    let expr = to_expr st f in
    let st, expr = eliminate_guard_quantifiers st expr in
    let ops = Value.ops_of_descr d in
    Engine.Eval.evaluate ops ?budget st.inst st.srels expr
  end

(* Exceptions the nested pipeline can raise, mapped into the taxonomy. *)
let classify_nested = function
  | Ill_typed msg -> Some (Robust.Ill_typed msg)
  | Value.Type_error msg -> Some (Robust.Ill_typed msg)
  | Circuits.Dyn.Poisoned msg ->
      Some (Robust.Internal_divergence ("dynamic circuit poisoned: " ^ msg))
  | Logic.Normal.Not_quantifier_free f ->
      Some
        (Robust.Unsupported_fragment
           (Format.asprintf "quantifier inside a compiled guard: %a" Logic.Formula.pp f))
  | _ -> None

(** Checked evaluation of a closed nested query: type errors come back as
    [Ill_typed], malformed inputs as [Bad_input], fragment and budget
    violations as their own categories — nothing escapes unclassified. *)
let eval_checked ?budget (st : structure) (f : formula) : (Value.t, Robust.error) result
    =
  Robust.protect ~classify:classify_nested (fun () -> eval ?budget st f)

(** Prepare a query function for a nested weighted query with free
    variables: linear-time preprocessing, then per-tuple queries as in
    Theorem 26. Returns the free variables (query-argument order) and the
    query function. *)
let query (st : structure) (f : formula) : string list * (int list -> Value.t) =
  ignore (type_of st f);
  let fv = free_vars f in
  let st, f = materialize st f in
  (fv, query_of st f ~order:fv)

(** Constant-delay enumeration of the answers of a boolean-valued nested
    query (the final part of Theorem 26). *)
let enumerate (st : structure) (f : formula) : string list * int array Enum.Iter.t =
  let d = type_of st f in
  if not (Value.same_sr d Value.bool_sr) then
    invalid_arg "Nested.enumerate: boolean-valued formulas only";
  let st, f = materialize st f in
  let phi = to_fo f in
  let t = Fo_enum.prepare st.inst phi in
  (Fo_enum.free_vars t, Fo_enum.enumerate t)
