(* Structural updates: tuple insert/delete with localized incremental
   recompile. The spliced circuit must agree exactly with the brute-force
   reference AND with a compile-from-scratch twin after every update; the
   amortization fallback must fire when the treedepth witness outgrows
   the compiled bound; journal replay of mixed weight + structural
   batches must reconstruct the served state; and a mid-splice fault must
   leave the pre-update state untouched. *)

open Semiring

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let triangle_count =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]) )

let edge_weight =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "x"; v "y" ]) ] )

(* insert/delete an undirected edge = both stored arcs *)
let ins t u w =
  Engine.Eval.insert_tuple t "E" [ u; w ];
  Engine.Eval.insert_tuple t "E" [ w; u ]

let del t u w =
  Engine.Eval.delete_tuple t "E" [ u; w ];
  Engine.Eval.delete_tuple t "E" [ w; u ]

(* after every op: incremental value = reference on the live instance
   = compile-from-scratch on the live instance *)
let agree name t inst weights expr =
  let got = Engine.Eval.value t in
  let reference = Logic.Expr.eval (module Instances.Nat) inst weights expr () in
  check_int (name ^ " vs reference") reference got;
  let scratch = Engine.Eval.evaluate nat_ops inst weights expr in
  check_int (name ^ " vs scratch compile") scratch got

let counting_churn () =
  let inst = Db.Instance.of_graph (Graphs.Gen.grid 4 4) in
  let weights = Db.Weights.bundle [] in
  let t = Engine.Eval.prepare nat_ops inst weights triangle_count in
  check_int "no triangles in the grid" 0 (Engine.Eval.value t);
  (* diagonals create triangles; removing a side destroys them *)
  ins t 0 5;
  agree "after ins 0-5" t inst weights triangle_count;
  check_bool "grid diagonal makes triangles" true (Engine.Eval.value t > 0);
  ins t 1 6;
  agree "after ins 1-6" t inst weights triangle_count;
  del t 0 1;
  agree "after del 0-1" t inst weights triangle_count;
  ins t 10 15;
  agree "after ins 10-15" t inst weights triangle_count;
  del t 1 6;
  agree "after del 1-6" t inst weights triangle_count;
  let c = Engine.Eval.churn_stats t in
  check_int "inserts counted" 6 c.Engine.Eval.ch_inserts;
  check_int "deletes counted" 4 c.Engine.Eval.ch_deletes;
  (* the in-test localization claim: every op was served by a localized
     splice, and across the run far more gates crossed over than were
     rebuilt — the whole point of the affected-subtree machinery *)
  check_int "all ops localized" 10 c.Engine.Eval.ch_localized;
  check_int "no fallbacks" 0 c.Engine.Eval.ch_fallbacks;
  check_bool
    (Printf.sprintf "localized: rebuilt %d < carried %d" c.Engine.Eval.ch_gates_rebuilt
       c.Engine.Eval.ch_gates_carried)
    true
    (c.Engine.Eval.ch_gates_rebuilt < c.Engine.Eval.ch_gates_carried)

let weighted_churn () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 8) in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation w inst "E" (fun tup -> List.fold_left ( + ) 1 tup);
  let weights = Db.Weights.bundle [ w ] in
  let t = Engine.Eval.prepare nat_ops inst weights edge_weight in
  agree "initial" t inst weights edge_weight;
  (* a structural insert followed by a weight update on the new tuple:
     the spliced circuit must expose the new input key *)
  ins t 2 6;
  Db.Weights.set w [ 2; 6 ] 11;
  Engine.Eval.update t "w" [ 2; 6 ] 11;
  agree "after ins 2-6 + weight" t inst weights edge_weight;
  (* deleting a tuple silences its weight even though the store keeps it *)
  del t 3 4;
  agree "after del 3-4" t inst weights edge_weight;
  (* weight updates on carried tuples still propagate after the splice *)
  Db.Weights.set w [ 0; 1 ] 9;
  Engine.Eval.update t "w" [ 0; 1 ] 9;
  agree "after weight on carried edge" t inst weights edge_weight;
  (* and re-inserting a deleted tuple resurrects its (kept) weight *)
  ins t 3 4;
  agree "after re-insert 3-4" t inst weights edge_weight

(* a duplicate insert / absent delete is a structured error and leaves
   the engine fully intact *)
let bad_deltas_rejected () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 5) in
  let weights = Db.Weights.bundle [] in
  let t = Engine.Eval.prepare nat_ops inst weights triangle_count in
  let before = Engine.Eval.value t in
  check_bool "duplicate insert rejected" true
    (try
       Engine.Eval.insert_tuple t "E" [ 0; 1 ];
       false
     with Robust.Error (Robust.Bad_input _) -> true);
  check_bool "absent delete rejected" true
    (try
       Engine.Eval.delete_tuple t "E" [ 0; 3 ];
       false
     with Robust.Error (Robust.Bad_input _) -> true);
  check_int "value untouched" before (Engine.Eval.value t);
  agree "still consistent" t inst weights triangle_count

(* growing a treedepth witness past the compiled bound must trip the
   amortization trigger: the update is served by a full recompile with a
   fresh coloring, and stays exactly correct *)
let fallback_on_depth_growth () =
  let inst = Db.Instance.create Db.Schema.graph_schema ~n:8 in
  let weights = Db.Weights.bundle [] in
  (* edgeless start: one color, one subset, forest of roots (depth 0) *)
  let t = Engine.Eval.prepare nat_ops ~max_depth:2 inst weights triangle_count in
  ins t 0 1;
  agree "after first edge" t inst weights triangle_count;
  check_int "single edge stays localized" 0
    (Engine.Eval.churn_stats t).Engine.Eval.ch_fallbacks;
  (* grow the path to 0-…-7 under the pinned single-color witness: any
     elimination forest of P8 has depth ≥ 3 (0-based), so the compiled
     bound of 2 must trip the amortization trigger along the way and
     re-pin a fresh multi-color coloring *)
  for i = 1 to 6 do
    ins t i (i + 1)
  done;
  agree "after path grew" t inst weights triangle_count;
  let c = Engine.Eval.churn_stats t in
  check_bool "fallback triggered" true (c.Engine.Eval.ch_fallbacks > 0);
  (* post-fallback the fresh plan keeps absorbing updates *)
  ins t 0 2;
  agree "triangle after fallback" t inst weights triangle_count;
  check_bool "triangle seen" true (Engine.Eval.value t > 0);
  del t 1 2;
  agree "delete after fallback" t inst weights triangle_count

(* replaying a journal of interleaved weight batches and structural ops
   against a fresh prepare on the pre-journal state reconstructs the
   exact served value *)
let journal_replay_mixed () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 6) in
  let inst0 = Db.Instance.copy inst in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation w inst "E" (fun _ -> 1);
  let weights = Db.Weights.bundle [ w ] in
  let t = Engine.Eval.prepare nat_ops inst weights edge_weight in
  let j = Engine.Eval.enable_journal t in
  Engine.Eval.update t "w" [ 0; 1 ] 7;
  ins t 1 4;
  Engine.Eval.update t "w" [ 1; 4 ] 5;
  del t 2 3;
  Engine.Eval.update t "w" [ 4; 5 ] 3;
  ins t 0 2;
  let served = Engine.Eval.value t in
  check_int "journal holds the structural ops" 6
    (Circuits.Journal.structural_count j);
  (* fresh compile on the pre-journal instance; the weight store was
     never written through (unchecked updates), so the same bundle is the
     pre-journal one *)
  let t2 = Engine.Eval.prepare nat_ops inst0 weights edge_weight in
  Engine.Eval.replay t2 j;
  check_int "replay reconstructs the served value" served (Engine.Eval.value t2);
  let c2 = Engine.Eval.churn_stats t2 in
  check_int "replay re-ran the inserts" 4 c2.Engine.Eval.ch_inserts;
  check_int "replay re-ran the deletes" 2 c2.Engine.Eval.ch_deletes;
  (* replay must not have re-appended to a journal *)
  check_int "no double journaling" 6 (Circuits.Journal.structural_count j);
  (* and both engines keep agreeing on subsequent updates *)
  Engine.Eval.update t "w" [ 0; 2 ] 2;
  Engine.Eval.update t2 "w" [ 0; 2 ] 2;
  check_int "post-replay update agreement" (Engine.Eval.value t) (Engine.Eval.value t2)

(* a fault mid-splice rolls the whole structural wave back: instance,
   live graph, circuit and value are the pre-update ones *)
let splice_fault_rolls_back () =
  let inst = Db.Instance.of_graph (Graphs.Gen.grid 3 3) in
  let weights = Db.Weights.bundle [] in
  let t = Engine.Eval.prepare nat_ops inst weights triangle_count in
  let before = Engine.Eval.value t in
  Circuits.Dyn.set_fault_hook t.Engine.Eval.dyn
    (Some (fun _ -> failwith "injected splice fault"));
  check_bool "splice fault surfaces as Rolled_back" true
    (try
       Engine.Eval.insert_tuple t "E" [ 0; 4 ];
       false
     with Circuits.Dyn.Rolled_back _ -> true);
  Circuits.Dyn.set_fault_hook t.Engine.Eval.dyn None;
  check_bool "tuple reverted" false (Db.Instance.mem inst "E" [ 0; 4 ]);
  check_int "value unchanged" before (Engine.Eval.value t);
  check_int "no churn recorded"
    0 (Engine.Eval.churn_stats t).Engine.Eval.ch_inserts;
  (* with the hook gone the same insert commits *)
  ins t 0 4;
  agree "insert after rollback" t inst weights triangle_count

(* checked variants: structured errors out, state preserved, degraded
   backend observes the same tuple set *)
let checked_structural () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 6) in
  let weights = Db.Weights.bundle [] in
  let ck =
    match Engine.Eval.prepare_checked nat_ops inst weights triangle_count with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "prepare_checked: %s" (Robust.to_string e)
  in
  (match Engine.Eval.insert_tuple_checked ck "E" [ 0; 2 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert_checked: %s" (Robust.to_string e));
  (match Engine.Eval.insert_tuple_checked ck "E" [ 0; 2 ] with
  | Ok () -> Alcotest.fail "duplicate insert accepted"
  | Error (Robust.Bad_input _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Robust.to_string e));
  (match Engine.Eval.delete_tuple_checked ck "E" [ 5; 0 ] with
  | Ok () -> Alcotest.fail "absent delete accepted"
  | Error (Robust.Bad_input _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Robust.to_string e));
  (match Engine.Eval.insert_tuple_checked ck "E" [ 2; 0 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "insert_checked: %s" (Robust.to_string e));
  match Engine.Eval.value_checked ck with
  | Ok got ->
      check_int "checked value vs reference"
        (Logic.Expr.eval (module Instances.Nat) inst weights triangle_count ())
        got
  | Error e -> Alcotest.failf "value_checked: %s" (Robust.to_string e)

let suite =
  [
    Alcotest.test_case "counting churn (localized)" `Quick counting_churn;
    Alcotest.test_case "weighted churn" `Quick weighted_churn;
    Alcotest.test_case "bad deltas rejected" `Quick bad_deltas_rejected;
    Alcotest.test_case "fallback on depth growth" `Quick fallback_on_depth_growth;
    Alcotest.test_case "journal replay (mixed batches)" `Quick journal_replay_mixed;
    Alcotest.test_case "splice fault rolls back" `Quick splice_fault_rolls_back;
    Alcotest.test_case "checked structural ops" `Quick checked_structural;
  ]
