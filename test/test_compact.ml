(* Tests for the compact CSR circuit runtime and its persisted form:

   1. qcheck differential eval: [Compact.eval] over the flat arrays agrees
      with the boxed [Circuit.eval] on random *optimized* circuits in all
      four semirings (nat / int-ring / bool / zmod6) — nat and int-ring
      additionally through the machine-int Bigarray plane
      ([Intf.with_int_repr]), bool and zmod6 through the boxed plane
      fallback;
   2. qcheck dynamic twins: a compact and a boxed [Dyn] over the identical
      optimized circuit, fed the same [set_inputs] batches, agree on every
      gate value in all three permanent strategies (General/Segtree,
      Ring, Finite), and end-to-end [Eval.prepare]/[update_many] twins
      agree with [Engine.Reference] on random sparse databases;
   3. qcheck rollback: a fault injected at a random position of an update
      wave on the *compact* runtime rolls back to the exact pre-wave state
      (rollback ∘ partial-wave = identity), and the structure stays usable;
   4. loader fuzz, mirroring the PR 6 journal corruption tests: random bit
      flips, truncations, and version-byte mutations of a serialized
      circuit are rejected as [Robust.Bad_input] — never a crash, hang, or
      blind allocation — and save → load → save is byte-identical;
   5. format stability: the two golden .spqc files committed under
      test/golden/ (written by test/gen_golden.ml) load under the current
      reader and evaluate to their recorded values. *)

open Semiring
module Circuit = Circuits.Circuit
module Compact = Circuits.Compact
module Dyn = Circuits.Dyn

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let z6_ops = Intf.ops_of_finite (module Zmod.Z6)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let t p = QCheck_alcotest.to_alcotest p

(* random circuit over inputs ("w", [0..n-1]), same shape as the optimizer
   and recovery tests: adds, muls, 2x2 permanents, and constants *)
let random_circuit (type a) ~(zero : a) ~(one : a) ~(mk : int -> a) seed n_inputs :
    a Circuit.t =
  let rng = Graphs.Rand.create seed in
  let b = Circuit.builder () in
  let inputs = List.init n_inputs (fun i -> Circuit.input b ("w", [ i ])) in
  let pool = ref (Array.of_list (Circuit.const b zero :: Circuit.const b one :: inputs)) in
  let pick () = !pool.(Graphs.Rand.int rng (Array.length !pool)) in
  for _ = 1 to 14 do
    let g =
      match Graphs.Rand.int rng 6 with
      | 0 -> Circuit.add b [ pick (); pick (); pick () ]
      | 1 -> Circuit.add b [ pick (); pick () ]
      | 2 -> Circuit.mul b [ pick (); pick () ]
      | 3 -> Circuit.mul b [ pick (); pick (); pick () ]
      | 4 -> Circuit.perm b [| [| pick (); pick () |]; [| pick (); pick () |] |]
      | _ -> Circuit.const b (mk (Graphs.Rand.int rng 100))
    in
    pool := Array.append !pool [| g |]
  done;
  let out = Circuit.add b (Array.to_list !pool) in
  Circuit.finish b ~output:out

(* ------------------------------ 1. compact eval = boxed eval ----------- *)

let compact_eval_eq_boxed (type a) name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:60
       ~name:(Printf.sprintf "compact eval = boxed eval: %s" name)
       QCheck.(int_range 0 100000)
       (fun seed ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let o = Opt.run ~zero ~one ~equal:ops.Intf.equal c in
         let cc = Compact.of_circuit o.Opt.circuit in
         let v = function "w", [ i ] -> mk ((i * 31) + seed) | _ -> zero in
         ops.Intf.equal (Compact.eval ops cc v) (Circuit.eval ops o.Opt.circuit v)))

(* ------------------------------ 2. dynamic twins ----------------------- *)

let dyn_twins (type a) mode name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:40
       ~name:(Printf.sprintf "compact Dyn = boxed Dyn: %s" name)
       QCheck.(
         pair (int_range 0 1000)
           (small_list (small_list (pair (int_range 0 5) (int_range 0 50)))))
       (fun (seed, batches) ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let o = Opt.run ~zero ~one ~equal:ops.Intf.equal c in
         let valuation = function "w", [ i ] -> mk i | _ -> zero in
         (* the identical circuit object, so gate ids line up by
            construction on both runtimes *)
         let dc = Dyn.create ~mode ~backend:Dyn.Compact ops o.Opt.circuit valuation in
         let db = Dyn.create ~mode ~backend:Dyn.Boxed ops o.Opt.circuit valuation in
         check_bool "backends" true (Dyn.backend dc = Dyn.Compact && Dyn.backend db = Dyn.Boxed);
         List.for_all
           (fun batch ->
             let writes =
               List.filter_map
                 (fun (i, x) ->
                   let key = ("w", [ i ]) in
                   if Dyn.has_input dc key then Some (key, mk x) else None)
                 batch
             in
             Dyn.set_inputs dc writes;
             Dyn.set_inputs db writes;
             let ok = ref (Dyn.num_gates dc = Dyn.num_gates db) in
             for id = 0 to Dyn.num_gates dc - 1 do
               if not (ops.Intf.equal (Dyn.gate_value dc id) (Dyn.gate_value db id)) then
                 ok := false
             done;
             !ok && ops.Intf.equal (Dyn.value dc) (Dyn.value db))
           batches))

(* end-to-end through the engine on random sparse databases: both storage
   backends and the brute-force reference agree after batched updates *)
let vx x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ vx x; vx y ])

let expr_wedge =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ vx "x" ]);
          Logic.Expr.Weight ("w", [ vx "y" ]);
        ] )

let engine_backend_twins (type a) name (ops : a Intf.ops) (mk : int -> a) ~count =
  t
    (QCheck.Test.make ~count
       ~name:(Printf.sprintf "engine compact = boxed = reference: %s" name)
       QCheck.(pair (int_range 4 30) (int_range 0 10000))
       (fun (n, seed) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         let inst = Db.Instance.of_graph g in
         let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
         Db.Weights.fill_unary w ~n (fun i -> mk ((i * 7) + seed));
         let weights = Db.Weights.bundle [ w ] in
         let prep backend =
           Engine.Eval.prepare ops ~backend ~tfa_rounds:1 inst weights expr_wedge
         in
         let evc = prep Dyn.Compact and evb = prep Dyn.Boxed in
         let rng = Graphs.Rand.create (seed + 1) in
         let ok = ref true in
         for round = 1 to 3 do
           let batch =
             List.init 5 (fun j ->
                 ("w", [ Graphs.Rand.int rng n ], mk (seed + (round * 17) + j)))
           in
           (* write through so the reference sees the same weights *)
           List.iter (fun (_, tup, v) -> Db.Weights.set w tup v) batch;
           Engine.Eval.update_many evc batch;
           Engine.Eval.update_many evb batch;
           let want = Engine.Reference.eval ops inst weights expr_wedge in
           if
             not
               (ops.Intf.equal (Engine.Eval.value evc) (Engine.Eval.value evb)
               && ops.Intf.equal (Engine.Eval.value evc) want)
           then ok := false
         done;
         !ok))

(* ------------------------------ 3. rollback on the compact runtime ----- *)

let snapshot d = Array.init (Dyn.num_gates d) (Dyn.gate_value d)

let same_values (type a) (ops : a Intf.ops) (xs : a array) (ys : a array) =
  Array.length xs = Array.length ys
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (ops.Intf.equal x ys.(i)) then ok := false) xs;
  !ok

let rollback_identity_compact (type a) mode name (ops : a Intf.ops) ~(zero : a)
    ~(one : a) ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:60
       ~name:(Printf.sprintf "compact rollback is the identity: %s" name)
       QCheck.(
         triple (int_range 0 100000) (int_range 1 12)
           (small_list (pair (int_range 0 5) (int_range 0 50))))
       (fun (seed, fuse, batch) ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let vals = Array.init 6 (fun i -> mk ((i * 3) + seed)) in
         let valuation = function "w", [ i ] -> vals.(i) | _ -> zero in
         let d = Dyn.create ~mode ~backend:Dyn.Compact ops c valuation in
         let writes =
           List.filter_map
             (fun (i, x) ->
               let key = ("w", [ i ]) in
               if Dyn.has_input d key then Some (key, i, mk x) else None)
             batch
         in
         let dyn_writes = List.map (fun (key, _, v) -> (key, v)) writes in
         let pre = snapshot d in
         let ticks = ref 0 in
         Dyn.set_fault_hook d
           (Some
              (fun _ ->
                incr ticks;
                if !ticks = fuse then failwith "scheduled fault"));
         let commit () =
           List.iter (fun (_, i, v) -> vals.(i) <- v) writes;
           ops.Intf.equal (Dyn.value d) (Circuit.eval ops c valuation)
         in
         match Dyn.set_inputs d dyn_writes with
         | () ->
             Dyn.set_fault_hook d None;
             commit ()
         | exception Dyn.Rolled_back _ ->
             Dyn.set_fault_hook d None;
             if Dyn.poisoned d <> None then
               QCheck.Test.fail_report "rolled-back circuit must not be poisoned";
             if not (same_values ops pre (snapshot d)) then
               QCheck.Test.fail_report
                 "rollback did not restore every compact gate value";
             Dyn.set_inputs d dyn_writes;
             commit ()))

(* ------------------------------ 4. loader fuzz ------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_tmp f =
  let path = Filename.temp_file "sparseq_test" ".spqc" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      f path)

(* a serialized random optimized circuit, as bytes *)
let serialized seed =
  let c = random_circuit ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) seed 6 in
  let o = Opt.run ~zero:0 ~one:1 c in
  let cc = Compact.of_circuit o.Opt.circuit in
  with_tmp (fun path ->
      Compact.save ~tag:"nat" cc path;
      read_file path)

let rejected bytes =
  with_tmp (fun path ->
      write_file path bytes;
      match Compact.load path with
      | exception Robust.Error (Robust.Bad_input _) -> true
      | exception e ->
          QCheck.Test.fail_reportf "wrong exception %s" (Printexc.to_string e)
      | _ -> false)

let fuzz_bit_flips =
  t
    (QCheck.Test.make ~count:120 ~name:"loader fuzz: any bit flip is Bad_input"
       QCheck.(pair (int_range 0 1000) (int_range 0 1_000_000))
       (fun (seed, flip) ->
         let bytes = serialized seed in
         let bit = flip mod (String.length bytes * 8) in
         let corrupt = Bytes.of_string bytes in
         let i = bit / 8 in
         Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor (1 lsl (bit mod 8))));
         rejected (Bytes.to_string corrupt)))

let fuzz_truncations =
  t
    (QCheck.Test.make ~count:120 ~name:"loader fuzz: any truncation is Bad_input"
       QCheck.(pair (int_range 0 1000) (int_range 0 1_000_000))
       (fun (seed, cut) ->
         let bytes = serialized seed in
         let keep = cut mod String.length bytes in
         rejected (String.sub bytes 0 keep)))

let fuzz_version_byte =
  t
    (QCheck.Test.make ~count:40 ~name:"loader fuzz: version mutations are Bad_input"
       QCheck.(pair (int_range 0 1000) (int_range 0 255))
       (fun (seed, b) ->
         let bytes = serialized seed in
         (* byte 4 is the version digit of "SPQC1\n"; any other value must
            be rejected as an unsupported version, not mis-parsed *)
         QCheck.assume (Char.chr b <> bytes.[4]);
         let corrupt = Bytes.of_string bytes in
         Bytes.set corrupt 4 (Char.chr b);
         rejected (Bytes.to_string corrupt)))

let fuzz_trailing_garbage () =
  let bytes = serialized 7 in
  check_bool "trailing bytes rejected" true (rejected (bytes ^ "\x00"));
  check_bool "doubled file rejected" true (rejected (bytes ^ bytes));
  check_bool "empty file rejected" true (rejected "")

let save_load_save_identity =
  t
    (QCheck.Test.make ~count:40 ~name:"save -> load -> save is byte-identical"
       QCheck.(int_range 0 100000)
       (fun seed ->
         let c = random_circuit ~zero:0 ~one:1 ~mk:(fun i -> (i mod 9) - 4) seed 6 in
         let o = Opt.run ~zero:0 ~one:1 c in
         let cc = Compact.of_circuit o.Opt.circuit in
         with_tmp (fun p1 ->
             with_tmp (fun p2 ->
                 Compact.save ~tag:"int" cc p1;
                 let cc2, tag = Compact.load p1 in
                 check_string "tag survives" "int" tag;
                 Compact.save ~tag cc2 p2;
                 read_file p1 = read_file p2))))

let roundtrip_eval () =
  (* save → load preserves evaluation bit-for-bit, machine-int plane included *)
  List.iter
    (fun seed ->
      let c = random_circuit ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) seed 6 in
      let o = Opt.run ~zero:0 ~one:1 c in
      let cc = Compact.of_circuit o.Opt.circuit in
      let v = function "w", [ i ] -> i + 2 | _ -> 0 in
      let iops = Intf.with_int_repr nat_ops in
      with_tmp (fun path ->
          Compact.save ~tag:"nat" cc path;
          let cc2, _ = Compact.load path in
          check_int (Printf.sprintf "seed %d reload eval" seed) (Compact.eval iops cc v)
            (Compact.eval iops cc2 v)))
    [ 3; 44; 512; 9000 ]

(* ------------------------------ 5. golden format stability ------------- *)

(* The two .spqc files under test/golden/ were written by test/gen_golden.ml
   when the SPQC1 format was introduced; every future reader must keep
   loading them to these exact values. Regenerating the files instead of
   keeping them loadable is a format break. *)
let golden_path name =
  (* `dune runtest` runs the binary from _build/default/test with the
     (deps) stanza's copy of golden/ beside it; a bare `dune exec` from
     the project root finds the source-tree fixtures instead *)
  let candidates =
    [
      Filename.concat (Filename.concat (Filename.dirname Sys.executable_name) "golden") name;
      Filename.concat "golden" name;
      Filename.concat "test/golden" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let golden_stability () =
  let cc_nat, tag_nat = Compact.load (golden_path "nat_small.spqc") in
  check_string "nat tag" "nat" tag_nat;
  let v = function "w", [ i ] -> i + 1 | _ -> 0 in
  check_int "nat golden value" 43 (Compact.eval (Intf.with_int_repr nat_ops) cc_nat v);
  let cc_int, tag_int = Compact.load (golden_path "int_perm.spqc") in
  check_string "int tag" "int" tag_int;
  check_int "int golden value" (-5)
    (Compact.eval (Intf.with_int_repr int_ops) cc_int (function
      | "w", [ i ] -> (2 * i) - 3
      | _ -> 0))

(* journal_weights.spqj was written by gen_golden before SPQJ1 grew the
   structural-op record type: the current reader must keep decoding it to
   the exact recorded batches, and re-saving it must be byte-identical —
   the weight-batch encoding is pinned forever. *)
let golden_journal_stability () =
  let module Journal = Circuits.Journal in
  let path = golden_path "journal_weights.spqj" in
  let j : int Journal.t = Journal.load path in
  check_int "batch count" 3 (Journal.length j);
  check_int "structural count" 0 (Journal.structural_count j);
  check_bool "verifies" true (Journal.verify j = None);
  (match Journal.batches j with
  | [ b0; b1; b2 ] ->
      check_int "seq 0" 0 b0.Journal.seq;
      check_int "seq 1" 1 b1.Journal.seq;
      check_int "seq 2" 2 b2.Journal.seq;
      check_bool "batch 0 writes" true
        (Journal.writes b0 = [ (("w", [ 0 ]), 5); (("w", [ 1 ]), 7) ]);
      check_bool "batch 1 empty" true (Journal.writes b1 = []);
      check_bool "batch 2 writes" true
        (Journal.writes b2 = [ (("__qv0", [ 2 ]), 1); (("w", [ 0 ]), 0) ]);
      List.iter
        (fun b -> check_bool "no structural op" true (Journal.structural b = None))
        [ b0; b1; b2 ]
  | bs -> Alcotest.failf "expected 3 batches, got %d" (List.length bs));
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  in
  let tmp = Filename.temp_file "sparseq_golden_journal" ".spqj" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  Journal.save j tmp;
  check_bool "re-save byte-identical" true (read_file tmp = read_file path)

(* mixed weight + structural journal round trip: the negative-length frame
   introduced for structural ops survives save/load, and a pre-extension
   reader's plausibility check would reject it rather than misdecode. *)
let journal_structural_round_trip () =
  let module Journal = Circuits.Journal in
  let j : int Journal.t = Journal.create () in
  Journal.append j [ (("w", [ 0 ]), 3) ];
  Journal.append_structural j ~insert:true ~rel:"E" ~tup:[ 1; 2 ];
  Journal.append j [];
  Journal.append_structural j ~insert:false ~rel:"E" ~tup:[ 1; 2 ];
  check_int "structural count" 2 (Journal.structural_count j);
  check_bool "verifies" true (Journal.verify j = None);
  let tmp = Filename.temp_file "sparseq_struct_journal" ".spqj" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  Journal.save j tmp;
  let j2 : int Journal.t = Journal.load tmp in
  check_int "batch count" 4 (Journal.length j2);
  check_int "structural count survives" 2 (Journal.structural_count j2);
  List.iter2
    (fun (b : int Journal.batch) (b2 : int Journal.batch) ->
      check_int "seq" b.Journal.seq b2.Journal.seq;
      check_bool "writes" true (Journal.writes b = Journal.writes b2);
      check_bool "structural" true (Journal.structural b = Journal.structural b2))
    (Journal.batches j) (Journal.batches j2);
  match Journal.structural (List.nth (Journal.batches j2) 1) with
  | Some { Journal.s_insert = true; s_rel = "E"; s_tup = [ 1; 2 ] } -> ()
  | _ -> Alcotest.fail "structural op did not survive the round trip"

let suite =
  [
    compact_eval_eq_boxed "nat (Bigarray plane)" (Intf.with_int_repr nat_ops) ~zero:0
      ~one:1 ~mk:(fun i -> i mod 7);
    compact_eval_eq_boxed "nat (boxed plane)" nat_ops ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    compact_eval_eq_boxed "int-ring (Bigarray plane)" (Intf.with_int_repr int_ops)
      ~zero:0 ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    compact_eval_eq_boxed "bool" bool_ops ~zero:false ~one:true ~mk:(fun i -> i mod 3 = 0);
    compact_eval_eq_boxed "zmod6" z6_ops ~zero:Zmod.Z6.zero ~one:Zmod.Z6.one
      ~mk:Zmod.Z6.of_int;
    dyn_twins Dyn.General "general/nat" (Intf.with_int_repr nat_ops) ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    dyn_twins Dyn.Ring "ring/int" (Intf.with_int_repr int_ops) ~zero:0 ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    dyn_twins Dyn.Finite "finite/zmod6" z6_ops ~zero:Zmod.Z6.zero ~one:Zmod.Z6.one
      ~mk:Zmod.Z6.of_int;
    engine_backend_twins "wedge/nat" nat_ops (fun i -> i mod 5) ~count:15;
    engine_backend_twins "wedge/int-ring" int_ops (fun i -> (i mod 9) - 4) ~count:15;
    rollback_identity_compact Dyn.General "general/nat" (Intf.with_int_repr nat_ops)
      ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    rollback_identity_compact Dyn.Ring "ring/int" (Intf.with_int_repr int_ops) ~zero:0
      ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    rollback_identity_compact Dyn.Finite "finite/zmod6" z6_ops ~zero:Zmod.Z6.zero
      ~one:Zmod.Z6.one ~mk:Zmod.Z6.of_int;
    fuzz_bit_flips;
    fuzz_truncations;
    fuzz_version_byte;
    Alcotest.test_case "loader fuzz: trailing/empty" `Quick fuzz_trailing_garbage;
    save_load_save_identity;
    Alcotest.test_case "save/load eval round trip" `Quick roundtrip_eval;
    Alcotest.test_case "golden format stability" `Quick golden_stability;
    Alcotest.test_case "golden journal stability" `Quick golden_journal_stability;
    Alcotest.test_case "journal structural round trip" `Quick
      journal_structural_round_trip;
  ]
