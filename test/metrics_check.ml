(* metrics_check FILE... — validate that each file is a well-formed
   OpenMetrics text exposition using the same checker the test suite
   applies to `Obs.Openmetrics.render` output. CI runs this over the
   `--metrics-out` artifacts; any failure exits nonzero. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: metrics_check FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Om_check.validate (read_file path) with
      | Ok () -> Printf.printf "%s: ok\n" path
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          failed := true
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          failed := true)
    args;
  if !failed then exit 1
