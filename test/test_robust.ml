(* Tests for the robustness layer: the error taxonomy, compile budgets,
   graceful degradation to the reference evaluator, self-checking, and
   fault-injected dynamic updates. *)

open Semiring

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])
let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)

module Z4 = Zmod.Make (struct
  let modulus = 4
end)

let z4_ops = { (Intf.ops_of_finite (module Z4)) with Intf.neg = Some Z4.neg }

let triangle = Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]
let path2 = Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]

let count_expr phi =
  Logic.Expr.Sum (Logic.Formula.free_vars_unique phi, Logic.Expr.Guard phi)

(* Σ_{x,y} [E(x,y)] · w(x) · w(y): a closed weighted expression whose
   circuit reads every unary weight, so updates and faults reach it. *)
let edge_weight_expr =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ v "x" ]);
          Logic.Expr.Weight ("w", [ v "y" ]);
        ] )

let weighted_setup ~of_int g =
  let inst = Db.Instance.of_graph g in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:(of_int 0) in
  Db.Weights.fill_unary w ~n:(Db.Instance.n inst) (fun i -> of_int (((i * 5) + 2) mod 11));
  (inst, w, Db.Weights.bundle [ w ])

let unwrap what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: unexpected error %s" what (Robust.to_string e)

(* --- taxonomy basics --- *)

let taxonomy () =
  check_bool "budget degradable" true (Robust.degradable (Robust.Budget_exceeded "b"));
  check_bool "fragment degradable" true (Robust.degradable (Robust.Unsupported_fragment "f"));
  check_bool "bad input is not" false (Robust.degradable (Robust.Bad_input "i"));
  check_bool "ill-typed is not" false (Robust.degradable (Robust.Ill_typed "t"));
  check_bool "divergence is not" false (Robust.degradable (Robust.Internal_divergence "d"));
  (match Robust.protect (fun () -> invalid_arg "quantifier depth not supported") with
  | Error (Robust.Unsupported_fragment _) -> ()
  | _ -> Alcotest.fail "expected Unsupported_fragment from the message classifier");
  (match Robust.protect (fun () -> raise Not_found) with
  | Error (Robust.Bad_input _) -> ()
  | _ -> Alcotest.fail "expected Bad_input for Not_found");
  check_int "protect passes values" 7 (unwrap "protect" (Robust.protect (fun () -> 7)));
  (* unclassifiable exceptions are re-raised, not swallowed *)
  match Robust.protect (fun () -> raise Exit) with
  | exception Exit -> ()
  | _ -> Alcotest.fail "expected Exit to escape protect"

(* --- budgets and graceful degradation --- *)

let budget_degrades () =
  let inst = Db.Instance.of_graph (Graphs.Gen.triangulated_grid 4 4) in
  let weights = Db.Weights.bundle [] in
  let expr = count_expr triangle in
  let full = Engine.Eval.evaluate nat_ops ~tfa_rounds:1 inst weights expr in
  check_bool "workload has triangles" true (full > 0);
  (* a 1-gate budget cannot fit any circuit: the checked path must degrade
     to the reference evaluator and still return the same value *)
  let budget = Robust.budget ~max_gates:1 () in
  let ck =
    unwrap "prepare under budget"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~budget inst weights expr)
  in
  (match Engine.Eval.degraded ck with
  | Some (Robust.Budget_exceeded _) -> ()
  | Some err -> Alcotest.failf "wrong degradation reason: %s" (Robust.to_string err)
  | None -> Alcotest.fail "expected a degraded backend under a 1-gate budget");
  check_int "reference value = circuit value" full
    (unwrap "value_checked" (Engine.Eval.value_checked ck));
  (* one-shot checked evaluation reports the degradation reason *)
  (match
     Engine.Eval.evaluate_checked nat_ops ~tfa_rounds:1 ~budget inst weights expr
   with
  | Ok (value, Some (Robust.Budget_exceeded _)) ->
      check_int "evaluate_checked fallback value" full value
  | Ok (_, reason) ->
      Alcotest.failf "expected a budget reason, got %s"
        (match reason with None -> "none" | Some e -> Robust.to_string e)
  | Error e -> Alcotest.failf "unexpected error %s" (Robust.to_string e));
  (* ~fallback:`Fail surfaces the error instead of degrading *)
  (match
     Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~budget ~fallback:`Fail inst
       weights expr
   with
  | Error (Robust.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong error under `Fail: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "expected Budget_exceeded under ~fallback:`Fail");
  (* a generous budget compiles normally — no spurious degradation *)
  let roomy = Robust.budget ~max_gates:10_000_000 ~timeout_ms:600_000 () in
  let ck =
    unwrap "prepare under roomy budget"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~budget:roomy inst weights expr)
  in
  check_bool "not degraded" true (Engine.Eval.degraded ck = None);
  check_int "same value" full (unwrap "value" (Engine.Eval.value_checked ck))

(* Degraded backends must answer open queries too, identically to the
   circuit path (acceptance: budget path = circuit path on queries). *)
let degraded_queries_agree () =
  let inst, _, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.grid 3 3) in
  (* deg(x) weighted by w: Σ_y [E(x,y)]·w(y), free variable x *)
  let expr =
    Logic.Expr.Sum
      ( [ "y" ],
        Logic.Expr.Mul
          [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )
  in
  let circuit =
    unwrap "circuit prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 inst weights expr)
  in
  let degraded =
    unwrap "degraded prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1
         ~budget:(Robust.budget ~max_gates:1 ())
         inst weights expr)
  in
  check_bool "is degraded" true (Engine.Eval.degraded degraded <> None);
  for x = 0 to Db.Instance.n inst - 1 do
    check_int
      (Printf.sprintf "query %d agrees" x)
      (unwrap "circuit query" (Engine.Eval.query_checked circuit [ x ]))
      (unwrap "degraded query" (Engine.Eval.query_checked degraded [ x ]))
  done;
  (* updates hit the degraded backend through the shared weight bundle *)
  let () = unwrap "degraded update" (Engine.Eval.update_checked degraded "w" [ 0 ] 100) in
  let () = unwrap "circuit update" (Engine.Eval.update_checked circuit "w" [ 0 ] 100) in
  for x = 0 to Db.Instance.n inst - 1 do
    check_int
      (Printf.sprintf "query %d agrees after update" x)
      (unwrap "circuit query" (Engine.Eval.query_checked circuit [ x ]))
      (unwrap "degraded query" (Engine.Eval.query_checked degraded [ x ]))
  done

(* --- differential fuzzing: circuit pipeline vs reference evaluator --- *)

let differential_fuzz (type a) ~name (ops : a Intf.ops) ~of_int =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:25
       QCheck.(triple (int_range 0 1000) (int_range 2 14) (int_range 0 2))
       (fun (seed, n, which) ->
         let g =
           if seed mod 2 = 0 then Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3
           else Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3
         in
         let inst, _, weights = weighted_setup ~of_int g in
         let expr =
           match which with
           | 0 -> count_expr triangle
           | 1 -> count_expr path2
           | _ -> edge_weight_expr
         in
         let got = Engine.Eval.evaluate ops ~tfa_rounds:1 inst weights expr in
         let want = Engine.Reference.eval ops inst weights expr in
         ops.Intf.equal got want))

(* The prepared/dynamic path must track the reference under random update
   sequences (every semiring exercises a different Dyn strategy). *)
let dynamic_fuzz (type a) ~name (ops : a Intf.ops) ~of_int =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:20
       QCheck.(
         triple (int_range 0 1000) (int_range 2 12)
           (small_list (pair (int_range 0 11) (int_range 0 10))))
       (fun (seed, n, updates) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let inst, _, weights = weighted_setup ~of_int g in
         let ck =
           match
             Engine.Eval.prepare_checked ops ~tfa_rounds:1 inst weights edge_weight_expr
           with
           | Ok ck -> ck
           | Error e -> QCheck.Test.fail_reportf "prepare: %s" (Robust.to_string e)
         in
         List.for_all
           (fun (x, value) ->
             let x = x mod Db.Instance.n inst in
             (match Engine.Eval.update_checked ck "w" [ x ] (of_int value) with
             | Ok () -> ()
             | Error e -> QCheck.Test.fail_reportf "update: %s" (Robust.to_string e));
             let got =
               match Engine.Eval.value_checked ck with
               | Ok got -> got
               | Error e -> QCheck.Test.fail_reportf "value: %s" (Robust.to_string e)
             in
             ops.Intf.equal got
               (Engine.Reference.eval ops inst weights edge_weight_expr))
           updates))

(* --- fault injection: updates never leave silent corruption --- *)

let fault_rolls_back () =
  let inst, _, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.path 6) in
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Fail inst weights
         edge_weight_expr)
  in
  let before = unwrap "initial value" (Engine.Eval.value_checked ck) in
  check_int "healthy update works" before
    (let () = unwrap "update" (Engine.Eval.update_checked ck "w" [ 0 ] 2) in
     let () = unwrap "restore" (Engine.Eval.update_checked ck "w" [ 0 ] 2) in
     unwrap "value" (Engine.Eval.value_checked ck));
  let pre_weight = Db.Weights.get (Db.Weights.find weights "w") [ 1 ] in
  Engine.Eval.set_fault_hook ck (Some (fun _ -> failwith "injected fault"));
  (match Engine.Eval.update_checked ck "w" [ 1 ] 9 with
  | Error (Robust.Internal_divergence _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok () -> Alcotest.fail "faulted update must not report success");
  Engine.Eval.set_fault_hook ck None;
  (* the wave was rolled back: the circuit stays healthy on the pre-update
     state, and the weights store was never written (write-through happens
     only after the wave commits) *)
  check_int "weights store untouched" pre_weight
    (Db.Weights.get (Db.Weights.find weights "w") [ 1 ]);
  check_int "value rolled back" before (unwrap "value" (Engine.Eval.value_checked ck));
  unwrap "rolled-back circuit accepts updates" (Engine.Eval.update_checked ck "w" [ 1 ] 9);
  check_int "retried update lands"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck))

(* When the rollback itself faults the circuit is poisoned (every read
   fails loudly), and [`Repair] heals it mid-update: repair + retry makes
   the faulted update land. *)
let rollback_fault_poisons_and_repairs () =
  let inst, _, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.path 6) in
  (* `Fail policy first: poison and observe *)
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Fail inst weights
         edge_weight_expr)
  in
  Engine.Eval.set_fault_hook ck (Some (fun _ -> failwith "injected fault"));
  Engine.Eval.set_rollback_fault_hook ck (Some (fun () -> failwith "rollback fault"));
  (match Engine.Eval.update_checked ck "w" [ 1 ] 9 with
  | Error (Robust.Internal_divergence _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok () -> Alcotest.fail "faulted update must not report success");
  Engine.Eval.set_fault_hook ck None;
  Engine.Eval.set_rollback_fault_hook ck None;
  (match Engine.Eval.value_checked ck with
  | Error (Robust.Internal_divergence _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "poisoned circuit must not answer value");
  (* manual repair brings it back, agreeing with the (unwritten) weights *)
  Engine.Eval.repair_checked ck;
  (match Engine.Eval.update_checked ck "w" [ 1 ] 9 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-repair update failed: %s" (Robust.to_string e));
  check_int "post-repair value"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck));
  (* `Repair policy: the same double fault self-heals inside the update *)
  let ck2 =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Repair ~retries:2
         inst weights edge_weight_expr)
  in
  Engine.Eval.set_retry_sleep (Some (fun _ -> ()));
  Fun.protect ~finally:(fun () -> Engine.Eval.set_retry_sleep None) @@ fun () ->
  let wave_faults = ref 0 and rb_faults = ref 0 in
  Engine.Eval.set_fault_hook ck2
    (Some
       (fun _ ->
         incr wave_faults;
         if !wave_faults = 1 then failwith "transient wave fault"));
  Engine.Eval.set_rollback_fault_hook ck2
    (Some
       (fun () ->
         incr rb_faults;
         if !rb_faults = 1 then failwith "transient rollback fault"));
  (match Engine.Eval.update_checked ck2 "w" [ 2 ] 7 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "`Repair update failed: %s" (Robust.to_string e));
  check_int "self-healed value"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck2))

(* Fuzzed fault schedules: inject a fault after a random number of gate
   recomputations, run a random update sequence, and assert the new
   transactional invariant — every update either succeeds or rolls back,
   and in both cases the circuit keeps agreeing with the reference
   evaluator on the committed weights store (write-through only happens
   when the wave commits, so the two can never diverge). *)
let fault_schedule_fuzz =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fault schedules: always consistent" ~count:30
       QCheck.(
         triple (int_range 0 1000) (int_range 1 25)
           (small_list (pair (int_range 0 11) (int_range 0 10))))
       (fun (seed, fuse, updates) ->
         let g = Graphs.Gen.random_sparse ~seed ~n:8 ~avg_deg:3 in
         let inst, _, weights = weighted_setup ~of_int:Fun.id g in
         let ck =
           match
             Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Fail inst
               weights edge_weight_expr
           with
           | Ok ck -> ck
           | Error e -> QCheck.Test.fail_reportf "prepare: %s" (Robust.to_string e)
         in
         let ticks = ref 0 in
         Engine.Eval.set_fault_hook ck
           (Some
              (fun _ ->
                incr ticks;
                if !ticks >= fuse then failwith "scheduled fault"));
         List.for_all
           (fun (x, value) ->
             let x = x mod Db.Instance.n inst in
             let consistent label =
               match Engine.Eval.value_checked ck with
               | Ok got ->
                   if got = Engine.Reference.eval nat_ops inst weights edge_weight_expr
                   then true
                   else QCheck.Test.fail_reportf "%s: circuit diverged from reference" label
               | Error e ->
                   QCheck.Test.fail_reportf "%s value: %s" label (Robust.to_string e)
             in
             match Engine.Eval.update_checked ck "w" [ x ] value with
             | Ok () -> consistent "after committed update"
             | Error (Robust.Internal_divergence _) -> consistent "after rolled-back update"
             | Error e ->
                 QCheck.Test.fail_reportf "wrong classification: %s" (Robust.to_string e))
           updates))

(* --- batched checked updates: write-through + one wave + self-check --- *)

let batched_checked_updates () =
  let inst, _, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.grid 3 3) in
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~self_check:true inst weights
         edge_weight_expr)
  in
  (* duplicate targets in one batch: later write wins, like sequential *)
  let () =
    unwrap "update_many"
      (Engine.Eval.update_many_checked ck [ ("w", [ 0 ], 9); ("w", [ 1 ], 3); ("w", [ 0 ], 4) ])
  in
  check_int "batched checked value"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck));
  (* unknown symbols in a batch are Bad_input, reported not raised *)
  match Engine.Eval.update_many_checked ck [ ("nope", [ 0 ], 1) ] with
  | Error (Robust.Bad_input _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok () -> Alcotest.fail "unknown weight symbol in batch must be Bad_input"

(* --- self-check: circuit cross-validated against the reference --- *)

let self_check_divergence () =
  let inst, w, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.grid 3 3) in
  let ck =
    unwrap "prepare with self-check"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~self_check:true inst weights
         edge_weight_expr)
  in
  let v0 = unwrap "self-checked value" (Engine.Eval.value_checked ck) in
  (* write-through updates keep the circuit and the reference in sync *)
  let () = unwrap "checked update" (Engine.Eval.update_checked ck "w" [ 0 ] 9) in
  let v1 = unwrap "value after update" (Engine.Eval.value_checked ck) in
  check_bool "update changed the value" true (v0 <> v1);
  (* mutating the weights behind the circuit's back makes the two disagree:
     the self-check must catch it and report Internal_divergence *)
  Db.Weights.set w [ 0 ] 1000;
  (match Engine.Eval.value_checked ck with
  | Error (Robust.Internal_divergence _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "self-check missed the divergence");
  (* restoring consistency through the checked API heals it *)
  let () = unwrap "healing update" (Engine.Eval.update_checked ck "w" [ 0 ] 9) in
  check_int "healed" v1 (unwrap "value" (Engine.Eval.value_checked ck))

let self_check_open_query () =
  let inst, w, weights = weighted_setup ~of_int:Fun.id (Graphs.Gen.grid 3 3) in
  let expr =
    Logic.Expr.Sum
      ( [ "y" ],
        Logic.Expr.Mul
          [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )
  in
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~self_check:true inst weights
         expr)
  in
  check_int "query 0"
    (Engine.Reference.eval nat_ops inst weights ~env:[ ("x", 0) ] expr)
    (unwrap "query_checked" (Engine.Eval.query_checked ck [ 0 ]));
  Db.Weights.set w [ 1 ] 1000;
  match Engine.Eval.query_checked ck [ 0 ] with
  | Error (Robust.Internal_divergence _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "open-query self-check missed the divergence"

(* --- classification across the engine surfaces --- *)

let classification_surfaces () =
  let inst = Db.Instance.of_graph (Graphs.Gen.grid 3 3) in
  (* unknown weight symbol → Bad_input (not degradable, so no fallback) *)
  (match
     Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [])
       (Logic.Expr.Sum
          ( [ "x"; "y" ],
            Logic.Expr.Mul
              [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("nope", [ v "x" ]) ] ))
   with
  | Error (Robust.Bad_input _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "unknown weight symbol must be Bad_input");
  (* a quantified subformula with two free variables is outside the
     supported enumeration fragment *)
  (match
     Fo_enum.prepare_checked inst
       (Logic.Formula.Exists
          ("y", Logic.Formula.And [ e "x" "y"; e "y" "w" ]))
   with
  | Error (Robust.Unsupported_fragment _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "expected Unsupported_fragment from Fo_enum");
  (* a supported query still prepares fine through the checked surface *)
  let t = unwrap "fo_enum" (Fo_enum.prepare_checked inst triangle) in
  let _, want = Engine.Reference.answers inst triangle in
  check_int "checked enum agrees with reference" (List.length want)
    (List.length (Fo_enum.answers t));
  (* nested queries: type errors come back as Ill_typed *)
  let st = Nested.make_structure inst [] in
  (match Nested.eval_checked st (Nested.Add []) with
  | Error (Robust.Ill_typed _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "empty connective must be Ill_typed");
  (* nested queries: budgets thread through to Budget_exceeded *)
  match
    Nested.eval_checked
      ~budget:(Robust.budget ~max_gates:1 ())
      st
      (Nested.Sum
         ( [ "x"; "y" ],
           Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr) ))
  with
  | Error (Robust.Budget_exceeded _) -> ()
  | Error e -> Alcotest.failf "wrong classification: %s" (Robust.to_string e)
  | Ok _ -> Alcotest.fail "expected Budget_exceeded through Nested.eval_checked"

let suite =
  [
    Alcotest.test_case "error taxonomy" `Quick taxonomy;
    Alcotest.test_case "budgets degrade to reference" `Quick budget_degrades;
    Alcotest.test_case "degraded queries agree with circuit" `Quick degraded_queries_agree;
    differential_fuzz ~name:"differential: nat semiring (General)" nat_ops
      ~of_int:(fun i -> i);
    differential_fuzz ~name:"differential: int ring (Ring)" int_ops ~of_int:(fun i -> i);
    differential_fuzz ~name:"differential: Z/4Z (Finite)" z4_ops ~of_int:Z4.of_int;
    dynamic_fuzz ~name:"dynamic updates track reference: nat" nat_ops ~of_int:(fun i -> i);
    dynamic_fuzz ~name:"dynamic updates track reference: int ring" int_ops
      ~of_int:(fun i -> i);
    dynamic_fuzz ~name:"dynamic updates track reference: Z/4Z" z4_ops ~of_int:Z4.of_int;
    Alcotest.test_case "fault rolls the wave back" `Quick fault_rolls_back;
    Alcotest.test_case "rollback fault poisons, repair heals" `Quick
      rollback_fault_poisons_and_repairs;
    fault_schedule_fuzz;
    Alcotest.test_case "batched checked updates" `Quick batched_checked_updates;
    Alcotest.test_case "self-check catches divergence" `Quick self_check_divergence;
    Alcotest.test_case "self-check on open queries" `Quick self_check_open_query;
    Alcotest.test_case "classification across surfaces" `Quick classification_surfaces;
  ]
