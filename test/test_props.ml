(* Property-test harness (randomized, deterministic under QCHECK_SEED):

   1. the semiring axioms for the composite instances the rest of the
      suite does not cover (product semirings, non-prime moduli), plus the
      additive-group axioms of every ring instance;
   2. end-to-end circuit-vs-reference equality: the Theorem 6/8 pipeline
      and the brute-force Engine.Reference evaluator must agree on random
      sparse databases, in several semirings;
   3. the Theorem 24 constant-delay observables: answer streams are
      duplicate-free and the per-answer iterator work stays bounded by a
      constant as the database grows 10² → 10⁴. *)

open Semiring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let t p = QCheck_alcotest.to_alcotest p

(* --- 1. axioms not covered by test_semiring --- *)

module PBN = Instances.Product (Instances.Bool) (Instances.Nat)
module Z6 = Zmod.Make (struct let modulus = 6 end)

let gen_pbn = QCheck.(map (fun (b, i) -> (b, abs i mod 1000)) (pair bool int))
let gen_z6 = QCheck.map Z6.of_int (QCheck.int_range (-100) 100)

let ring_axiom_tests (type a) name (module R : Intf.RING with type t = a)
    (arb : a QCheck.arbitrary) =
  let open QCheck in
  [
    t (Test.make ~name:(name ^ ": a + (-a) = 0") arb
         (fun a -> R.equal (R.add a (R.neg a)) R.zero));
    t (Test.make ~name:(name ^ ": -(a+b) = -a + -b") (pair arb arb)
         (fun (a, b) -> R.equal (R.neg (R.add a b)) (R.add (R.neg a) (R.neg b))));
    t (Test.make ~name:(name ^ ": sub = add neg") (pair arb arb)
         (fun (a, b) -> R.equal (R.sub a b) (R.add a (R.neg b))));
    t (Test.make ~name:(name ^ ": -(a·b) = (-a)·b") (pair arb arb)
         (fun (a, b) -> R.equal (R.neg (R.mul a b)) (R.mul (R.neg a) b)));
  ]

let axiom_suite =
  Test_semiring.axiom_tests "product(bool,nat)" (module PBN) gen_pbn
  @ Test_semiring.axiom_tests "zmod6" (module Z6) gen_z6
  @ ring_axiom_tests "int-ring" (module Instances.Int_ring) Test_semiring.gen_small_int
  @ ring_axiom_tests "bigint" (module Bigint.Ring) Test_semiring.gen_bigint
  @ ring_axiom_tests "rat" (module Rat.Ring) Test_semiring.gen_rat
  @ ring_axiom_tests "zmod6" (module Z6) gen_z6

(* --- 2. circuit vs reference on random sparse databases --- *)

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* closed test expressions over one unary weight w *)
let expr_wedge =
  (* Σ_xy [E(x,y)]·w(x)·w(y) *)
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ v "x" ]);
          Logic.Expr.Weight ("w", [ v "y" ]);
        ] )

let expr_wtri =
  (* Σ_xyz [E(x,y) ∧ E(y,z) ∧ E(z,x)]·w(x) *)
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]);
          Logic.Expr.Weight ("w", [ v "x" ]);
        ] )

let expr_path2 =
  (* Σ_xyz [E(x,y) ∧ E(y,z) ∧ x≠z] *)
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Guard
        (Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]) )

(* random sparse instance: bounded-degree graph on 4..30 vertices *)
let gen_db = QCheck.(pair (int_range 4 30) (int_range 0 10000))

let circuit_eq_reference (type a) name (ops : a Intf.ops) (mk : int -> a) expr ~count =
  t
    (QCheck.Test.make ~count ~name:(Printf.sprintf "circuit = reference: %s" name) gen_db
       (fun (n, seed) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         let inst = Db.Instance.of_graph g in
         let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
         Db.Weights.fill_unary w ~n (fun i -> mk ((i * 7) + seed));
         let weights = Db.Weights.bundle [ w ] in
         let got = Engine.Eval.evaluate ops ~tfa_rounds:1 inst weights expr in
         let want = Engine.Reference.eval ops inst weights expr in
         ops.Intf.equal got want))

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let trop_ops = Intf.ops_of_module (module Tropical.Min_plus)

let circuit_suite =
  [
    circuit_eq_reference "wedge/nat" nat_ops (fun i -> i mod 5) expr_wedge ~count:40;
    circuit_eq_reference "wedge/int-ring" int_ops (fun i -> (i mod 9) - 4) expr_wedge ~count:40;
    circuit_eq_reference "wedge/bool" bool_ops (fun i -> i mod 3 <> 0) expr_wedge ~count:40;
    circuit_eq_reference "wedge/min-plus" trop_ops
      (fun i -> Instances.Fin (i mod 20))
      expr_wedge ~count:25;
    circuit_eq_reference "triangle/nat" nat_ops (fun i -> (i mod 4) + 1) expr_wtri ~count:15;
    circuit_eq_reference "path2-count/nat" nat_ops (fun _ -> 1) expr_path2 ~count:15;
  ]

(* --- structural churn: incremental = scratch = reference --- *)

module Z6_props = Zmod.Make (struct let modulus = 6 end)

(* A random arc insert/delete sequence served through the localized
   incremental path (Eval.insert_tuple/delete_tuple — splice when the
   treedepth witness survives, fallback recompile when it doesn't) must
   agree after every step with a from-scratch compile of the mutated
   instance and with the brute-force reference. Random toggles on a
   bounded-degree graph hit both regimes: most stay localized, and the
   occasional long-range arc deepens a forest and forces the fallback. *)
let structural_churn_prop (type a) name (ops : a Intf.ops) (mk : int -> a) ~backend ~count =
  t
    (QCheck.Test.make ~count
       ~name:(Printf.sprintf "structural churn = scratch = reference: %s" name)
       QCheck.(pair (int_range 8 16) (int_range 0 10000))
       (fun (n, seed) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         let inst = Db.Instance.of_graph g in
         let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
         Db.Weights.fill_unary w ~n (fun i -> mk ((i * 7) + seed));
         let weights = Db.Weights.bundle [ w ] in
         let ev = Engine.Eval.prepare ops ~backend ~tfa_rounds:1 inst weights expr_wtri in
         let rng = Random.State.make [| seed; 77 |] in
         let ok = ref true in
         for _ = 1 to 8 do
           let u = Random.State.int rng n in
           let v2 = (u + 1 + Random.State.int rng (n - 1)) mod n in
           if Db.Instance.mem inst "E" [ u; v2 ] then
             Engine.Eval.delete_tuple ev "E" [ u; v2 ]
           else Engine.Eval.insert_tuple ev "E" [ u; v2 ];
           let got = Engine.Eval.value ev in
           let scratch = Engine.Eval.evaluate ops ~tfa_rounds:1 inst weights expr_wtri in
           let want = Engine.Reference.eval ops inst weights expr_wtri in
           if not (ops.Intf.equal got scratch && ops.Intf.equal got want) then ok := false
         done;
         !ok))

let z6_ops = Intf.ops_of_ring (module Z6_props)

let structural_churn_suite =
  let b = Circuits.Dyn.Boxed and c = Circuits.Dyn.Compact in
  [
    structural_churn_prop "nat/boxed" nat_ops (fun i -> i mod 5) ~backend:b ~count:10;
    structural_churn_prop "nat/compact" nat_ops (fun i -> i mod 5) ~backend:c ~count:10;
    structural_churn_prop "int-ring/boxed" int_ops (fun i -> (i mod 9) - 4) ~backend:b ~count:10;
    structural_churn_prop "int-ring/compact" int_ops (fun i -> (i mod 9) - 4) ~backend:c
      ~count:10;
    structural_churn_prop "zmod6/boxed" z6_ops (fun i -> Z6_props.of_int i) ~backend:b
      ~count:10;
    structural_churn_prop "zmod6/compact" z6_ops (fun i -> Z6_props.of_int i) ~backend:c
      ~count:10;
  ]

(* --- 3. constant-delay enumeration (Theorem 24 observables) --- *)

let phi_path2 =
  Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]

(* Walk a full enumeration; returns (#answers, max iterator ticks spent on
   any single movement) and fails on a duplicate answer. *)
let drain_measuring name t =
  let it = Fo_enum.enumerate t in
  Enum.Iter.reset it;
  let seen = Hashtbl.create 256 in
  let max_work = ref 0 and count = ref 0 and continue = ref true in
  while !continue do
    let t0 = !Enum.Iter.ticks in
    Enum.Iter.next it;
    let work = !Enum.Iter.ticks - t0 in
    if work > !max_work then max_work := work;
    match Enum.Iter.current it with
    | Some a ->
        incr count;
        let key = Array.to_list a in
        if Hashtbl.mem seen key then
          Alcotest.failf "%s: duplicate answer (%s)" name
            (String.concat "," (List.map string_of_int key));
        Hashtbl.add seen key ()
    | None -> continue := false
  done;
  (!count, !max_work)

let constant_delay_paths () =
  (* per-answer work on path graphs must not grow with n: the delay at
     n = 10⁴ stays within a small factor of the delay at n = 10² *)
  let measure n =
    let inst = Db.Instance.of_graph (Graphs.Gen.path n) in
    let t = Fo_enum.prepare inst phi_path2 in
    let count, work = drain_measuring (Printf.sprintf "path %d" n) t in
    (* a path x–y–z in an n-path: 2 per inner vertex, ordered both ways *)
    check_int (Printf.sprintf "path %d answer count" n) (2 * (n - 2)) count;
    work
  in
  let w100 = measure 100 in
  let w1000 = measure 1_000 in
  let w10000 = measure 10_000 in
  check "per-answer work bounded across 10^2..10^4" true
    (w1000 <= 3 * w100 && w10000 <= 3 * w100)

let duplicate_free_grid () =
  let inst = Db.Instance.of_graph (Graphs.Gen.grid 7 7) in
  let t = Fo_enum.prepare inst phi_path2 in
  let count, _ = drain_measuring "grid 7x7" t in
  let _, want = Engine.Reference.answers inst phi_path2 in
  check_int "grid answers match reference count" (List.length want) count

let enum_work_histogram () =
  (* the fo_enum scope's answer_work histogram observes the same bound *)
  Obs.reset_scope "fo_enum";
  let inst = Db.Instance.of_graph (Graphs.Gen.path 200) in
  let t = Fo_enum.prepare inst phi_path2 in
  ignore (Fo_enum.answers t);
  let h = Obs.histogram ~scope:"fo_enum" "answer_work" in
  check_int "histogram saw every answer" (2 * 198) (Obs.Histogram.count h);
  check "histogram max work is a small constant" true (Obs.Histogram.max_value h < 256.)

let suite =
  axiom_suite @ circuit_suite @ structural_churn_suite
  @ [
      Alcotest.test_case "constant delay on paths 10^2..10^4" `Slow constant_delay_paths;
      Alcotest.test_case "duplicate-free enumeration on grid" `Quick duplicate_free_grid;
      Alcotest.test_case "answer_work histogram bounded" `Quick enum_work_histogram;
    ]
