(* Hand-rolled OpenMetrics text-exposition checker (the environment has
   no prometheus client library, in the same spirit as [Json_parse]): a
   recursive line walk validating the subset `Obs.Openmetrics.render`
   emits, strictly enough to catch real regressions —

   - every line is `# TYPE`, `# HELP`, `# EOF`, or a sample;
   - `# EOF` is present, last, and unique;
   - TYPE lines carry a known kind and arrive in strictly sorted family
     order (the renderer sorts; a duplicate family is also an error);
   - metric and label names match the OpenMetrics charset, sample values
     parse as floats (including +Inf/-Inf/NaN spellings);
   - every sample belongs to the most recently declared family, with a
     kind-appropriate name: counters expose exactly `<family>_total`,
     gauges `<family>`, histograms `<family>_bucket{le="…"}` /
     `<family>_sum` / `<family>_count`;
   - histogram buckets are cumulative (monotone non-decreasing in file
     order), include `le="+Inf"`, and the +Inf count equals `_count`.

   Used three ways: the test suite validates `render ()` output, the
   [metrics_check] executable validates `--metrics-out` files in CI, and
   the qcheck suite throws randomized registries at it. *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> "" && is_name_start s.[0] && String.for_all is_name_char s

let valid_value s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt s with Some _ -> true | None -> false)

let split_lines s =
  (* keep a trailing unterminated fragment as a line so "no final
     newline" is still checked against the EOF rule *)
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

(* "name{label=\"v\",…}" -> (name, Some [(label, v); …]); no brace ->
   (s, None). Label values are quoted strings with \-escapes. *)
let parse_series err s =
  match String.index_opt s '{' with
  | None -> if valid_name s then Ok (s, None) else err (Printf.sprintf "bad metric name %S" s)
  | Some lb ->
      if String.length s = 0 || s.[String.length s - 1] <> '}' then
        err (Printf.sprintf "unterminated label set in %S" s)
      else begin
        let name = String.sub s 0 lb in
        if not (valid_name name) then err (Printf.sprintf "bad metric name %S" name)
        else begin
          let body = String.sub s (lb + 1) (String.length s - lb - 2) in
          let n = String.length body in
          let rec labels i acc =
            if i >= n then Ok (name, Some (List.rev acc))
            else begin
              let j = ref i in
              while !j < n && body.[!j] <> '=' do incr j done;
              if !j >= n then err (Printf.sprintf "label without '=' in %S" s)
              else begin
                let lname = String.sub body i (!j - i) in
                if not (valid_name lname) then err (Printf.sprintf "bad label name %S" lname)
                else if !j + 1 >= n || body.[!j + 1] <> '"' then
                  err (Printf.sprintf "unquoted label value in %S" s)
                else begin
                  let buf = Buffer.create 8 in
                  let k = ref (!j + 2) in
                  let closed = ref false in
                  while (not !closed) && !k < n do
                    (match body.[!k] with
                    | '\\' when !k + 1 < n ->
                        Buffer.add_char buf body.[!k + 1];
                        incr k
                    | '"' -> closed := true
                    | c -> Buffer.add_char buf c);
                    incr k
                  done;
                  if not !closed then err (Printf.sprintf "unterminated label value in %S" s)
                  else
                    let acc = (lname, Buffer.contents buf) :: acc in
                    if !k < n && body.[!k] = ',' then labels (!k + 1) acc
                    else if !k >= n then Ok (name, Some (List.rev acc))
                    else err (Printf.sprintf "junk after label value in %S" s)
                end
              end
            end
          in
          labels 0 []
        end
      end

type family = {
  fam : string;
  kind : string;  (* counter | gauge | histogram *)
  mutable samples : int;  (* samples seen for this family *)
  mutable last_bucket : float option;  (* histogram: last cumulative count *)
  mutable inf_bucket : float option;
  mutable count_val : float option;
  mutable sum_seen : bool;
}

let validate (text : string) : (unit, string) result =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let err m = Error m in
  try
    let lines = split_lines text in
    if lines = [] then fail "empty exposition";
    (* EOF: exactly one, and it is the last line *)
    let n_eof = List.length (List.filter (( = ) "# EOF") lines) in
    if n_eof = 0 then fail "missing # EOF terminator";
    if n_eof > 1 then fail "multiple # EOF lines";
    if List.nth lines (List.length lines - 1) <> "# EOF" then fail "# EOF is not the last line";
    let close_family = function
      | Some f when f.kind = "histogram" -> begin
          if f.samples = 0 then fail "family %s declared but has no samples" f.fam;
          if not f.sum_seen then fail "histogram %s missing _sum" f.fam;
          match (f.inf_bucket, f.count_val) with
          | None, _ -> fail "histogram %s missing le=\"+Inf\" bucket" f.fam
          | _, None -> fail "histogram %s missing _count" f.fam
          | Some b, Some c ->
              if b <> c then fail "histogram %s: +Inf bucket %g <> _count %g" f.fam b c
        end
      | Some f -> if f.samples = 0 then fail "family %s declared but has no samples" f.fam
      | None -> ()
    in
    let current : family option ref = ref None in
    let last_fam = ref "" in
    let sample f series labels value =
      (if not (valid_value value) then fail "bad sample value %S for %s" value series);
      let v = match value with "+Inf" -> infinity | "-Inf" -> neg_infinity | "NaN" -> nan | s -> float_of_string s in
      f.samples <- f.samples + 1;
      match f.kind with
      | "counter" ->
          if series <> f.fam ^ "_total" then
            fail "counter %s exposes %s, expected %s_total" f.fam series f.fam;
          if labels <> None then fail "unexpected labels on counter sample %s" series
      | "gauge" ->
          if series <> f.fam then fail "gauge %s exposes %s" f.fam series;
          if labels <> None then fail "unexpected labels on gauge sample %s" series
      | "histogram" ->
          if series = f.fam ^ "_bucket" then begin
            let le =
              match labels with
              | Some [ ("le", le) ] -> le
              | _ -> fail "histogram bucket of %s needs exactly the le label" f.fam
            in
            if not (valid_value le) then fail "bad le value %S on %s" le series;
            (match f.last_bucket with
            | Some prev when v < prev ->
                fail "histogram %s buckets not cumulative: %g after %g" f.fam v prev
            | _ -> ());
            f.last_bucket <- Some v;
            if le = "+Inf" then f.inf_bucket <- Some v
          end
          else if series = f.fam ^ "_sum" then begin
            if labels <> None then fail "unexpected labels on %s" series;
            f.sum_seen <- true
          end
          else if series = f.fam ^ "_count" then begin
            if labels <> None then fail "unexpected labels on %s" series;
            f.count_val <- Some v
          end
          else fail "histogram %s exposes unexpected series %s" f.fam series
      | k -> fail "unknown kind %s" k
    in
    List.iter
      (fun line ->
        if line = "# EOF" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ "#"; "TYPE"; fam; kind ] ->
              if not (valid_name fam) then fail "bad family name %S" fam;
              if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
                fail "unknown metric kind %S for %s" kind fam;
              if fam <= !last_fam then fail "family %s out of order (after %s)" fam !last_fam;
              close_family !current;
              last_fam := fam;
              current :=
                Some
                  {
                    fam;
                    kind;
                    samples = 0;
                    last_bucket = None;
                    inf_bucket = None;
                    count_val = None;
                    sum_seen = false;
                  }
          | _ -> fail "malformed TYPE line %S" line
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match !current with
          | Some f
            when String.length line >= 8 + String.length f.fam
                 && String.sub line 7 (String.length f.fam) = f.fam
                 && line.[7 + String.length f.fam] = ' ' ->
              ()
          | _ -> fail "HELP line outside its family: %S" line
        end
        else if String.length line >= 1 && line.[0] = '#' then fail "unknown comment line %S" line
        else begin
          (* sample: <series> <value> *)
          match String.rindex_opt line ' ' with
          | None -> fail "malformed sample line %S" line
          | Some sp ->
              let series = String.sub line 0 sp in
              let value = String.sub line (sp + 1) (String.length line - sp - 1) in
              let f = match !current with Some f -> f | None -> fail "sample before any TYPE line: %S" line in
              (match parse_series err series with
              | Ok (name, labels) -> sample f name labels value
              | Error m -> fail "%s" m)
        end)
      lines;
    close_family !current;
    Ok ()
  with Bad m -> Error m
