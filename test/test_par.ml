(* Tests for the level-parallel compact-circuit evaluator
   (lib/circuits/par.ml):

   1. qcheck differential eval: [Par.eval ~domains] agrees with the
      sequential [Compact.eval] and the boxed [Circuit.eval] on random
      *optimized* circuits in all four semirings (nat / int-ring / bool /
      zmod6) — nat and int-ring through the machine-int Bigarray plane
      ([Intf.with_int_repr]), bool and zmod6 through the boxed plane —
      for domains ∈ {1, 2, 4, 8}, which on these 14-gate circuits
      includes domains well above the level count;
   2. plan structure: children sit strictly below their parent's level,
      the level CSR covers every gate exactly once, a plan is reusable
      across evaluations, and a plan from a different circuit is rejected
      as [Robust.Bad_input];
   3. degenerate shapes: a 1-gate circuit (bare constant output) under
      many domains;
   4. end-to-end: [Engine.Eval.evaluate ~domains] = sequential
      [Engine.Eval.evaluate] = [Engine.Reference.eval] on random sparse
      databases;
   5. chaos: a fault injected into a worker domain via [Par.chaos_hook]
      surfaces as a structured [Robust.Error (Internal_divergence _)] —
      not a hang, not a bare exception — and the pool stays usable
      afterwards. *)

open Semiring
module Circuit = Circuits.Circuit
module Compact = Circuits.Compact
module Par = Circuits.Par

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let z6_ops = Intf.ops_of_finite (module Zmod.Z6)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let t p = QCheck_alcotest.to_alcotest p
let all_domains = [ 1; 2; 4; 8 ]

(* same generator as the compact-runtime tests: random circuit over inputs
   ("w", [0..n-1]) with adds, muls, 2x2 permanents, and constants *)
let random_circuit (type a) ~(zero : a) ~(one : a) ~(mk : int -> a) seed n_inputs :
    a Circuit.t =
  let rng = Graphs.Rand.create seed in
  let b = Circuit.builder () in
  let inputs = List.init n_inputs (fun i -> Circuit.input b ("w", [ i ])) in
  let pool = ref (Array.of_list (Circuit.const b zero :: Circuit.const b one :: inputs)) in
  let pick () = !pool.(Graphs.Rand.int rng (Array.length !pool)) in
  for _ = 1 to 14 do
    let g =
      match Graphs.Rand.int rng 6 with
      | 0 -> Circuit.add b [ pick (); pick (); pick () ]
      | 1 -> Circuit.add b [ pick (); pick () ]
      | 2 -> Circuit.mul b [ pick (); pick () ]
      | 3 -> Circuit.mul b [ pick (); pick (); pick () ]
      | 4 -> Circuit.perm b [| [| pick (); pick () |]; [| pick (); pick () |] |]
      | _ -> Circuit.const b (mk (Graphs.Rand.int rng 100))
    in
    pool := Array.append !pool [| g |]
  done;
  let out = Circuit.add b (Array.to_list !pool) in
  Circuit.finish b ~output:out

let optimized_compact (type a) (ops : a Intf.ops) ~zero ~one ~mk seed =
  let c = random_circuit ~zero ~one ~mk seed 6 in
  let o = Opt.run ~zero ~one ~equal:ops.Intf.equal c in
  (Compact.of_circuit o.Opt.circuit, o.Opt.circuit)

(* ------------------- 1. parallel = sequential = boxed ------------------- *)

let par_eq_seq (type a) name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:40
       ~name:(Printf.sprintf "par eval = seq eval = boxed eval: %s" name)
       QCheck.(int_range 0 100000)
       (fun seed ->
         let cc, boxed = optimized_compact ops ~zero ~one ~mk seed in
         let v = function "w", [ i ] -> mk ((i * 31) + seed) | _ -> zero in
         let expect = Compact.eval ops cc v in
         ops.Intf.equal expect (Circuit.eval ops boxed v)
         && List.for_all
              (fun domains -> ops.Intf.equal expect (Par.eval ~domains ops cc v))
              all_domains))

(* ------------------- 2. the level index --------------------------------- *)

(* every gate appears in exactly one level, and a gate's children all live
   in strictly lower levels — the property that makes disjoint per-level
   chunks data-race-free *)
let plan_is_layered =
  t
    (QCheck.Test.make ~count:60 ~name:"plan levels respect wires"
       QCheck.(int_range 0 100000)
       (fun seed ->
         let cc, _ = optimized_compact nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) seed in
         let pl = Par.plan cc in
         let n = cc.Compact.n in
         let level_of = Array.make n (-1) in
         let ok = ref true in
         for l = 0 to Par.levels pl - 1 do
           for k = pl.Par.level_off.(l) to pl.Par.level_off.(l + 1) - 1 do
             let id = pl.Par.level_gates.(k) in
             if level_of.(id) <> -1 then ok := false;
             level_of.(id) <- l
           done
         done;
         Array.iter (fun l -> if l < 0 then ok := false) level_of;
         for id = 0 to n - 1 do
           for k = cc.Compact.child_off.(id) to cc.Compact.child_off.(id + 1) - 1 do
             let child = cc.Compact.children.(k) in
             if level_of.(child) >= level_of.(id) then ok := false
           done
         done;
         !ok))

let plan_reuse () =
  let cc, _ = optimized_compact nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) 77 in
  let pl = Par.plan cc in
  let v = function "w", [ i ] -> i + 3 | _ -> 0 in
  let expect = Compact.eval nat_ops cc v in
  (* the same plan drives many evaluations, including under fresh
     valuations *)
  List.iter
    (fun domains ->
      check_int
        (Printf.sprintf "reused plan, %d domains" domains)
        expect
        (Par.eval ~plan:pl ~domains nat_ops cc v))
    all_domains;
  let v2 = function "w", [ i ] -> (i * 5) + 1 | _ -> 0 in
  check_int "reused plan, new valuation" (Compact.eval nat_ops cc v2)
    (Par.eval ~plan:pl ~domains:4 nat_ops cc v2)

let plan_mismatch_rejected () =
  let cc_a, _ = optimized_compact nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) 5 in
  (* a different seed gives a circuit with a different gate count *)
  let other =
    let rec find s =
      let cc, _ = optimized_compact nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) s in
      if cc.Compact.n <> cc_a.Compact.n then cc else find (s + 1)
    in
    find 6
  in
  let pl = Par.plan other in
  match Par.eval ~plan:pl ~domains:4 nat_ops cc_a (fun _ -> 1) with
  | _ -> Alcotest.fail "foreign plan accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ()

(* ------------------- 3. degenerate shapes ------------------------------- *)

let one_gate_circuit () =
  let b = Circuit.builder () in
  let out = Circuit.const b 42 in
  let c = Circuit.finish b ~output:out in
  let cc = Compact.of_circuit c in
  check_int "single gate" 1 cc.Compact.n;
  List.iter
    (fun domains ->
      check_int
        (Printf.sprintf "1-gate circuit, %d domains" domains)
        42
        (Par.eval ~domains nat_ops cc (fun _ -> 0)))
    all_domains

(* ------------------- 4. engine-level three-way agreement ---------------- *)

let vx x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ vx x; vx y ])

let expr_wedge =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ vx "x" ]);
          Logic.Expr.Weight ("w", [ vx "y" ]);
        ] )

let engine_par_eq_reference =
  t
    (QCheck.Test.make ~count:25 ~name:"engine parallel = sequential = reference"
       QCheck.(pair (int_range 4 30) (int_range 0 10000))
       (fun (n, seed) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         let inst = Db.Instance.of_graph g in
         let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
         Db.Weights.fill_unary w ~n (fun i -> (i * 7) + seed);
         let weights = Db.Weights.bundle [ w ] in
         let expected = Engine.Reference.eval nat_ops inst weights expr_wedge in
         let seq = Engine.Eval.evaluate nat_ops inst weights expr_wedge in
         let par = Engine.Eval.evaluate nat_ops ~domains:4 inst weights expr_wedge in
         expected = seq && seq = par))

(* ------------------- 5. chaos: worker faults surface, never hang -------- *)

let chaos_fault_is_structured () =
  let cc, _ = optimized_compact nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) 1234 in
  let v = function "w", [ i ] -> i + 1 | _ -> 0 in
  let expect = Compact.eval nat_ops cc v in
  Fun.protect
    ~finally:(fun () -> Atomic.set Par.chaos_hook None)
    (fun () ->
      (* fault a *worker* slot (not the caller) at the first level it
         touches; first-fault-wins must convert it into a structured
         divergence on the calling domain *)
      Atomic.set Par.chaos_hook
        (Some (fun slot _level -> if slot = 1 then failwith "injected fault"));
      match Par.eval ~domains:4 nat_ops cc v with
      | _ -> Alcotest.fail "worker fault swallowed"
      | exception Robust.Error (Robust.Internal_divergence _) -> ()
      | exception exn ->
          Alcotest.failf "unstructured escape: %s" (Printexc.to_string exn));
  (* a fault on the calling domain's slot takes the same route *)
  Fun.protect
    ~finally:(fun () -> Atomic.set Par.chaos_hook None)
    (fun () ->
      Atomic.set Par.chaos_hook
        (Some (fun slot _level -> if slot = 0 then failwith "caller fault"));
      match Par.eval ~domains:4 nat_ops cc v with
      | _ -> Alcotest.fail "caller fault swallowed"
      | exception Robust.Error (Robust.Internal_divergence _) -> ());
  (* the pool survived both faults: the next evaluation is clean *)
  check_int "pool usable after fault" expect (Par.eval ~domains:4 nat_ops cc v);
  check_int "sequential path untouched" expect (Par.eval ~domains:1 nat_ops cc v)

let suite =
  [
    par_eq_seq "nat (Bigarray plane)" (Intf.with_int_repr nat_ops) ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    par_eq_seq "int ring (Bigarray plane)" (Intf.with_int_repr int_ops) ~zero:0
      ~one:1
      ~mk:(fun i -> (i mod 11) - 5);
    par_eq_seq "nat (boxed plane)" nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7);
    par_eq_seq "bool (boxed plane)" bool_ops ~zero:false ~one:true
      ~mk:(fun i -> i mod 2 = 1);
    par_eq_seq "zmod6 (boxed plane)" z6_ops ~zero:Zmod.Z6.zero ~one:Zmod.Z6.one
      ~mk:Zmod.Z6.of_int;
    plan_is_layered;
    Alcotest.test_case "plan reuse across evaluations" `Quick plan_reuse;
    Alcotest.test_case "foreign plan rejected as Bad_input" `Quick
      plan_mismatch_rejected;
    Alcotest.test_case "1-gate circuit under many domains" `Quick one_gate_circuit;
    engine_par_eq_reference;
    Alcotest.test_case "chaos: worker fault is structured, pool survives" `Quick
      chaos_fault_is_structured;
  ]
