(* Tests for the database substrate: schemas, instances, weight functions,
   Gaifman graphs, and Gaifman-preserving update checks. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let schema_basics () =
  let s = Db.Schema.make ~funcs:[ "f" ] [ ("E", 2); ("P", 1) ] in
  check_int "arity E" 2 (Db.Schema.arity s "E");
  check_bool "has P" true (Db.Schema.has_rel s "P");
  check_bool "has f" true (Db.Schema.has_func s "f");
  check_bool "no Q" false (Db.Schema.has_rel s "Q");
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Schema: duplicate relation E") (fun () ->
      ignore (Db.Schema.add_rel s ("E", 3)));
  Alcotest.check_raises "arity 0 rejected"
    (Invalid_argument "Schema: relation R has arity 0") (fun () ->
      ignore (Db.Schema.make [ ("R", 0) ]))

let instance_crud () =
  let s = Db.Schema.make [ ("E", 2); ("P", 1) ] in
  let i = Db.Instance.create s ~n:5 in
  Db.Instance.add i "E" [ 0; 1 ];
  (* regression: a duplicate insert used to be a silent last-write-wins
     replace; structural deltas need it to be a structured error *)
  Alcotest.check_raises "duplicate insert rejected"
    (Robust.Error (Robust.Bad_input "Instance: duplicate tuple E(0,1)")) (fun () ->
      Db.Instance.add i "E" [ 0; 1 ]);
  check_int "duplicate left cardinality alone" 1 (Db.Instance.cardinality i "E");
  check_bool "mem" true (Db.Instance.mem i "E" [ 0; 1 ]);
  check_bool "not mem reversed" false (Db.Instance.mem i "E" [ 1; 0 ]);
  Db.Instance.remove i "E" [ 0; 1 ];
  check_int "removed" 0 (Db.Instance.cardinality i "E");
  Alcotest.check_raises "arity check"
    (Robust.Error (Robust.Bad_input "Instance: E expects arity 2")) (fun () ->
      Db.Instance.add i "E" [ 0 ]);
  Alcotest.check_raises "domain check"
    (Robust.Error (Robust.Bad_input "Instance: element 9 out of domain [0, 5)"))
    (fun () -> Db.Instance.add i "E" [ 0; 9 ]);
  Alcotest.check_raises "unknown relation"
    (Robust.Error (Robust.Bad_input "Instance: unknown relation Q")) (fun () ->
      Db.Instance.add i "Q" [ 0 ])

let gaifman_graph () =
  let s = Db.Schema.make [ ("R", 3) ] in
  let i = Db.Instance.create s ~n:6 in
  Db.Instance.add i "R" [ 0; 1; 2 ];
  Db.Instance.add i "R" [ 3; 3; 4 ];
  let g = Db.Instance.gaifman i in
  check_bool "0-1" true (Graphs.Graph.has_edge g 0 1);
  check_bool "1-2" true (Graphs.Graph.has_edge g 1 2);
  check_bool "0-2" true (Graphs.Graph.has_edge g 0 2);
  check_bool "3-4" true (Graphs.Graph.has_edge g 3 4);
  check_bool "no self loop" false (Graphs.Graph.has_edge g 3 3);
  check_bool "0-3 absent" false (Graphs.Graph.has_edge g 0 3);
  (* clique check for Gaifman-preserving updates *)
  check_bool "tuple within clique ok" true (Db.Instance.clique_in g [ 2; 0; 1 ]);
  check_bool "cross-clique tuple rejected" false (Db.Instance.clique_in g [ 0; 3 ]);
  check_bool "tuple with repeats ok" true (Db.Instance.clique_in g [ 3; 3; 4 ])

let functions () =
  let s = Db.Schema.make ~funcs:[ "f" ] [ ("P", 1) ] in
  let i = Db.Instance.create s ~n:4 in
  check_int "identity default" 2 (Db.Instance.apply_func i "f" 2);
  Db.Instance.set_func i "f" [| 1; 2; 3; 3 |];
  check_int "after set" 3 (Db.Instance.apply_func i "f" 2);
  let g = Db.Instance.gaifman i in
  check_bool "function edges in gaifman" true (Graphs.Graph.has_edge g 0 1)

let with_relation_copy () =
  let i = Db.Instance.of_graph (Graphs.Gen.path 4) in
  let i2 = Db.Instance.with_relation i "P" ~arity:1 [ [ 0 ]; [ 2 ] ] in
  check_bool "P in copy" true (Db.Instance.mem i2 "P" [ 0 ]);
  check_bool "original untouched" false (Db.Schema.has_rel (Db.Instance.schema i) "P");
  check_bool "edges copied" true (Db.Instance.mem i2 "E" [ 0; 1 ]);
  (* mutations of the copy do not leak back *)
  Db.Instance.remove i2 "E" [ 0; 1 ];
  check_bool "copy-on-write isolation" true (Db.Instance.mem i "E" [ 0; 1 ])

let weights_basics () =
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  check_int "zero default" 0 (Db.Weights.get w [ 1; 2 ]);
  Db.Weights.set w [ 1; 2 ] 7;
  check_int "after set" 7 (Db.Weights.get w [ 1; 2 ]);
  check_int "support" 1 (Db.Weights.cardinality w);
  Db.Weights.remove w [ 1; 2 ];
  check_int "after remove" 0 (Db.Weights.get w [ 1; 2 ]);
  Alcotest.check_raises "arity check"
    (Robust.Error (Robust.Bad_input "Weights.set: w expects arity 2")) (fun () ->
      Db.Weights.set w [ 1 ] 3);
  (* names under the reserved "__qv" prefix would collide with the engine's
     internal query-variable weights: reject at creation, loudly *)
  check_bool "reserved prefix rejected" true
    (try
       ignore (Db.Weights.create ~name:"__qv0" ~arity:1 ~zero:0);
       false
     with Robust.Error (Robust.Bad_input _) -> true)

let bundle_ops () =
  let u = Db.Weights.create ~name:"u" ~arity:1 ~zero:0 in
  let b = Db.Weights.bundle [ u ] in
  check_bool "find" true (Db.Weights.name (Db.Weights.find b "u") = "u");
  check_bool "mem" true (Db.Weights.mem_bundle b "u");
  check_bool "not mem" false (Db.Weights.mem_bundle b "nope");
  Alcotest.check_raises "unknown"
    (Robust.Error (Robust.Bad_input "Weights: unknown weight symbol v")) (fun () ->
      ignore (Db.Weights.find b "v"))

let instance_size_linear =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"of_graph stores both arc directions" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 2 40))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let inst = Db.Instance.of_graph g in
         Db.Instance.cardinality inst "E" = 2 * Graphs.Graph.m g))

let suite =
  [
    Alcotest.test_case "schema" `Quick schema_basics;
    Alcotest.test_case "instance add/remove/mem" `Quick instance_crud;
    Alcotest.test_case "gaifman graph" `Quick gaifman_graph;
    Alcotest.test_case "unary functions" `Quick functions;
    Alcotest.test_case "with_relation isolation" `Quick with_relation_copy;
    Alcotest.test_case "weights" `Quick weights_basics;
    Alcotest.test_case "weight bundles" `Quick bundle_ops;
    instance_size_linear;
  ]
