(* Tests for the span tracer and flight recorder: structural
   well-formedness of recorded span trees (qcheck), flight-ring wrap
   semantics past the capacity (qcheck), the negative-duration clamp
   under a backwards-stepping wall clock, Chrome trace-event export
   parseability (shared recursive-descent parser), and the post-mortem
   acceptance path — a fault injected mid-wave dumps a flight report
   containing the poisoning wave's span. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nat_ops = Semiring.Intf.ops_of_module (module Semiring.Instances.Nat)

let spans_of records =
  List.filter_map (function Obs.Trace.RSpan s -> Some s | Obs.Trace.REvent _ -> None) records

(* --- qcheck: recorded spans form a properly nested forest --- *)

(* Run a randomly shaped tree of nested spans (shape drawn from the seed)
   and record it; every child interval must sit inside its parent's, and
   every non-root parent id must itself be in the recording. *)
let rec run_shape st depth =
  let kids = if depth >= 3 then 0 else Random.State.int st 3 in
  Obs.Trace.span ~scope:"test" (Printf.sprintf "d%d" depth) (fun () ->
      for _ = 1 to kids do
        run_shape st (depth + 1)
      done)

let spans_nested =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"recorded spans are properly nested" ~count:100
       QCheck.(pair small_int (int_range 1 5))
       (fun (seed, roots) ->
         let st = Random.State.make [| seed |] in
         let (), records =
           Obs.Trace.with_recording (fun () ->
               for _ = 1 to roots do
                 run_shape st 0
               done)
         in
         let spans = spans_of records in
         let by_id = Hashtbl.create 16 in
         List.iter (fun s -> Hashtbl.replace by_id s.Obs.Trace.id s) spans;
         List.for_all
           (fun s ->
             let open Obs.Trace in
             s.end_ns >= s.start_ns
             &&
             match Hashtbl.find_opt by_id s.parent with
             (* no dangling parents: a span either is a root (no enclosing
                span at record time) or its parent is in the recording *)
             | None -> s.parent = -1
             | Some p -> s.start_ns >= p.start_ns && s.end_ns <= p.end_ns)
           spans))

(* forest_of must account for every span exactly once *)
let forest_partitions () =
  let st = Random.State.make [| 7 |] in
  let (), records =
    Obs.Trace.with_recording (fun () ->
        run_shape st 0;
        run_shape st 0)
  in
  let rec count { Obs.Trace.children; _ } =
    1 + List.fold_left (fun a c -> a + count c) 0 children
  in
  let forest = Obs.Trace.forest_of records in
  check_int "forest covers all spans"
    (List.length (spans_of records))
    (List.fold_left (fun a t -> a + count t) 0 forest)

(* --- qcheck: the flight ring retains exactly the last N records --- *)

let flight_ring_wraps =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"flight ring keeps the last N records" ~count:60
       QCheck.(pair (int_range 1 50) (int_range 0 200))
       (fun (cap, count) ->
         Obs.Trace.set_flight_capacity cap;
         Fun.protect
           ~finally:(fun () -> Obs.Trace.set_flight_capacity 256)
           (fun () ->
             for i = 0 to count - 1 do
               Obs.Trace.event ~scope:"test" (Printf.sprintf "e%d" i)
             done;
             let got =
               List.filter_map
                 (function
                   | Obs.Trace.REvent e -> Some e.Obs.Trace.ev_name
                   | Obs.Trace.RSpan _ -> None)
                 (Obs.Trace.flight_records ())
             in
             let want =
               List.init (min count cap) (fun i ->
                   Printf.sprintf "e%d" (count - min count cap + i))
             in
             got = want)))

(* --- the negative-duration clamp (backwards wall clock) --- *)

let backwards_clock_clamps () =
  (* a clock that steps backwards 1ms on every read *)
  let t = ref 1e12 in
  let backwards () =
    t := !t -. 1e6;
    !t
  in
  Fun.protect
    ~finally:(fun () -> Obs.set_clock None)
    (fun () ->
      Obs.set_clock (Some backwards);
      check_bool "elapsed_ns clamps to 0" true (Obs.elapsed_ns (Obs.now_ns ()) = 0.);
      let h = Obs.Histogram.make "backwards" in
      Obs.Histogram.observe h (Obs.elapsed_ns (Obs.now_ns ()));
      Alcotest.(check (float 1e-9)) "timer observes 0" 0. (Obs.Histogram.max_value h);
      let (), records =
        Obs.Trace.with_recording (fun () ->
            Obs.Trace.span ~scope:"test" "negative" (fun () -> ()))
      in
      match spans_of records with
      | [ s ] ->
          check_bool "span end clamps to start" true
            (s.Obs.Trace.end_ns = s.Obs.Trace.start_ns)
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

(* --- Chrome export is machine-parseable (incl. special floats) --- *)

let chrome_parseable () =
  let (), records =
    Obs.Trace.with_recording (fun () ->
        Obs.Trace.span ~scope:"test" "outer"
          ~attrs:[ ("nan", Obs.Trace.F Float.nan); ("inf", Obs.Trace.F Float.infinity) ]
          (fun () ->
            Obs.Trace.event ~scope:"test" "tick";
            Obs.Trace.span ~scope:"test" "inner" (fun () -> Obs.Trace.add_attr "k" (Obs.Trace.I 3))))
  in
  let j = Obs.Json.to_string (Obs.Trace.to_chrome records) in
  (match Json_parse.validate j with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_bool "has traceEvents" true
    (String.length j > 15 && String.sub j 0 15 = "{\"traceEvents\":")

(* --- records carry the emitting domain, end to end into chrome tids --- *)

(* regression for multi-domain attribution: a span opened on a spawned
   domain must carry that domain's id (not the recording domain's), and
   the chrome export must surface exactly that id as the event's [tid] *)
let domain_ids_attributed () =
  let spawned_dom = ref (-1) in
  let (), records =
    Obs.Trace.with_recording (fun () ->
        Obs.Trace.span ~scope:"test" "main_span" (fun () -> ());
        let d =
          Domain.spawn (fun () ->
              Obs.Trace.span ~scope:"test" "worker_span" (fun () ->
                  Obs.Trace.event ~scope:"test" "worker_event");
              (Domain.self () :> int))
        in
        spawned_dom := Domain.join d)
  in
  let main_dom = (Domain.self () :> int) in
  check_bool "spawned domain has its own id" true (!spawned_dom <> main_dom);
  let find name =
    match
      List.find_opt (fun s -> s.Obs.Trace.name = name) (spans_of records)
    with
    | Some s -> s
    | None -> Alcotest.failf "span %s not recorded" name
  in
  check_int "main span carries the main domain" main_dom (find "main_span").Obs.Trace.dom;
  check_int "worker span carries the spawned domain" !spawned_dom
    (find "worker_span").Obs.Trace.dom;
  let ev =
    match
      List.find_opt
        (function Obs.Trace.REvent e -> e.Obs.Trace.ev_name = "worker_event" | _ -> false)
        records
    with
    | Some (Obs.Trace.REvent e) -> e
    | _ -> Alcotest.fail "worker event not recorded"
  in
  check_int "worker event carries the spawned domain" !spawned_dom ev.Obs.Trace.ev_dom;
  (* chrome export: the tid field is exactly the emitting domain id *)
  let j = Obs.Json.to_string (Obs.Trace.to_chrome records) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "chrome export has a lane for the worker" true
    (contains (Printf.sprintf "\"tid\":%d" !spawned_dom) j);
  check_bool "chrome export has a lane for main" true
    (contains (Printf.sprintf "\"tid\":%d" main_dom) j)

(* --- acceptance: a fault mid-wave dumps the faulting wave's span,
   tagged with the rolled_back outcome --- *)

let small_circuit () =
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  let s1 = Circuits.Circuit.add b [ w 1; w 2 ] in
  let s2 = Circuits.Circuit.add b [ w 3; Circuits.Circuit.const b 5 ] in
  Circuits.Circuit.finish b ~output:(Circuits.Circuit.mul b [ s1; s2 ])

let poison_dumps_wave_span () =
  let path = Filename.temp_file "sparseq_flight" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_flight_dest Obs.Trace.Silent;
      Sys.remove path)
    (fun () ->
      Obs.Trace.reset_flight ();
      Obs.Trace.set_flight_dest (Obs.Trace.File path);
      let d =
        Circuits.Dyn.create ~mode:Circuits.Dyn.General nat_ops (small_circuit ())
          (function "w", [ i ] -> i | _ -> 0)
      in
      Circuits.Dyn.set_fault_hook d (Some (fun _ -> failwith "injected fault"));
      (match Circuits.Dyn.set_input d ("w", [ 1 ]) 99 with
      | () -> Alcotest.fail "faulted wave must raise"
      | exception Circuits.Dyn.Rolled_back _ -> ());
      check_bool "structure rolled back, not poisoned" true
        (Circuits.Dyn.poisoned d = None);
      let ic = open_in path in
      let n = in_channel_length ic in
      let report = really_input_string ic n in
      close_in ic;
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool "report is tagged rolled_back" true (contains "rolled_back" report);
      check_bool "report contains the wave span" true (contains "dyn/update" report);
      check_bool "wave span shows the fault" true (contains "injected fault" report))

let suite =
  [
    spans_nested;
    Alcotest.test_case "forest_of covers every span" `Quick forest_partitions;
    flight_ring_wraps;
    Alcotest.test_case "backwards clock clamps durations" `Quick backwards_clock_clamps;
    Alcotest.test_case "chrome export parses" `Quick chrome_parseable;
    Alcotest.test_case "records carry the emitting domain id" `Quick domain_ids_attributed;
    Alcotest.test_case "mid-wave fault dumps the wave span" `Quick poison_dumps_wave_span;
  ]
