(* json_check FILE... — validate that each file is exactly one
   well-formed JSON value using the same parser the test suite applies
   to metrics snapshots and traces. CI runs this over the emitted
   .trace.json artifacts; any failure exits nonzero. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: json_check FILE...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Json_parse.validate (String.trim (read_file path)) with
      | Ok () -> Printf.printf "%s: ok\n" path
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          failed := true
      | exception Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          failed := true)
    args;
  if !failed then exit 1
