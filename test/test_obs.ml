(* Tests for the observability layer: histogram bucket geometry, registry
   scoping and reset semantics, snapshot JSON well-formedness (checked by
   an actual parser, not string poking), the enabled-flag gate, and the
   invariant that the compile gauges equal the real circuit parameters. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- histogram geometry --- *)

let bucket_boundaries () =
  let open Obs.Histogram in
  check_int "0 -> bucket 0" 0 (bucket_of 0.);
  check_int "0.5 -> bucket 0" 0 (bucket_of 0.5);
  check_int "1 -> bucket 1" 1 (bucket_of 1.);
  check_int "1.5 -> bucket 1" 1 (bucket_of 1.5);
  check_int "2 -> bucket 2" 2 (bucket_of 2.);
  check_int "3 -> bucket 2" 2 (bucket_of 3.);
  check_int "4 -> bucket 3" 3 (bucket_of 4.);
  check_int "nan -> bucket 0" 0 (bucket_of Float.nan);
  check_int "huge clamps to last" (nbuckets - 1) (bucket_of 1e300);
  check_float "lower of 0" 0. (bucket_lower 0);
  check_float "upper of 0" 1. (bucket_upper 0);
  check_float "lower of 3" 4. (bucket_lower 3);
  check_float "upper of 3" 8. (bucket_upper 3);
  (* every value lands inside its bucket's [lower, upper) range *)
  List.iter
    (fun v ->
      let i = bucket_of v in
      check (Printf.sprintf "%g within bucket %d" v i) true
        (v >= bucket_lower i && v < bucket_upper i))
    [ 0.; 0.3; 1.; 1.9; 2.; 5.; 1023.; 1024.; 123456789. ]

let histogram_stats () =
  let h = Obs.Histogram.make "t" in
  List.iter (Obs.Histogram.observe h) [ 1.; 2.; 3.; 100. ];
  check_int "count" 4 (Obs.Histogram.count h);
  check_float "sum" 106. (Obs.Histogram.sum h);
  check_float "min" 1. (Obs.Histogram.min_value h);
  check_float "max" 100. (Obs.Histogram.max_value h);
  (* p50: rank 2 of {1,2,3,100} is the value 2, which lives in bucket
     [2,4) — the quantile reports that bucket's upper bound *)
  check_float "p50" 4. (Obs.Histogram.p50 h);
  (* p99: rank 4; bucket upper is 128, clamped to the exact max 100 *)
  check_float "p99 clamps to max" 100. (Obs.Histogram.p99 h);
  check_float "negative clamps to 0" 0.
    (let h2 = Obs.Histogram.make "t2" in
     Obs.Histogram.observe h2 (-5.);
     Obs.Histogram.min_value h2);
  Obs.Histogram.reset h;
  check_int "reset clears" 0 (Obs.Histogram.count h);
  check_float "reset quantile" 0. (Obs.Histogram.p99 h)

(* --- quantile rank/boundary semantics --- *)

(* pins the inclusive boundary rule: a rank exactly equal to a bucket's
   cumulative count selects THAT bucket, never the one above *)
let quantile_boundaries () =
  (* all mass in a single bucket: every quantile is that bucket, clamped
     to the exact observed max *)
  let h = Obs.Histogram.make "qb_single" in
  for _ = 1 to 7 do
    Obs.Histogram.observe h 5.
  done;
  check_float "single bucket p50" 5. (Obs.Histogram.p50 h);
  check_float "single bucket p99" 5. (Obs.Histogram.p99 h);
  check_float "single bucket q=1" 5. (Obs.Histogram.quantile h 1.0);
  (* rank exactly equal to the first bucket's cumulative count: 5 of 10
     observations live in bucket [0,1), so p50 (rank 5) must report that
     bucket's upper bound, not walk on to bucket [2,4) *)
  let h2 = Obs.Histogram.make "qb_edge" in
  for _ = 1 to 5 do
    Obs.Histogram.observe h2 0.5
  done;
  for _ = 1 to 5 do
    Obs.Histogram.observe h2 3.9
  done;
  check_float "rank = cumulative stays in bucket" 1. (Obs.Histogram.p50 h2);
  (* one more observation past the boundary moves the quantile up *)
  check_float "rank past boundary advances" 3.9 (Obs.Histogram.quantile h2 0.51);
  (* rank equal to the total count selects the last occupied bucket *)
  check_float "rank = count hits last bucket" 3.9 (Obs.Histogram.quantile h2 1.0)

(* --- registry scoping and reset --- *)

let registry_scoping () =
  let c1 = Obs.counter ~scope:"test_obs_a" "hits" in
  let c2 = Obs.counter ~scope:"test_obs_a" "hits" in
  let c3 = Obs.counter ~scope:"test_obs_b" "hits" in
  Obs.Counter.reset c1;
  Obs.Counter.reset c3;
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  check_int "same (scope,name) is the same metric" 2 (Obs.Counter.get c1);
  check_int "other scope isolated" 0 (Obs.Counter.get c3);
  Obs.Counter.incr c3;
  Obs.reset_scope "test_obs_a";
  check_int "reset_scope zeroes its metrics" 0 (Obs.Counter.get c1);
  check_int "reset_scope leaves other scopes" 1 (Obs.Counter.get c3);
  check "kind mismatch rejected" true
    (match Obs.gauge ~scope:"test_obs_a" "hits" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "find sees registered metric" true
    (Obs.find ~scope:"test_obs_a" "hits" <> None);
  check "scopes lists both" true
    (List.mem "test_obs_a" (Obs.scopes ()) && List.mem "test_obs_b" (Obs.scopes ()))

let enabled_gate () =
  let c = Obs.counter ~scope:"test_obs_a" "gated" in
  let h = Obs.histogram ~scope:"test_obs_a" "gated_h" in
  Obs.Counter.reset c;
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Histogram.observe h 5.;
  let ran = ref false in
  let r = Obs.Timer.time h (fun () -> ran := true; 42) in
  Obs.set_enabled true;
  check_int "disabled counter frozen" 0 (Obs.Counter.get c);
  check_int "disabled histogram frozen" 0 (Obs.Histogram.count h);
  check "disabled timer still runs the thunk" true (!ran && r = 42)

(* --- snapshot JSON well-formedness (shared recursive-descent parser) --- *)

let parse_json s =
  match Json_parse.validate s with Ok () -> () | Error msg -> Alcotest.fail msg

let snapshot_well_formed () =
  (* populate a few metrics, including a name needing escaping *)
  Obs.Counter.incr (Obs.counter ~scope:"test_obs_a" "with \"quote\"");
  Obs.Histogram.observe (Obs.histogram ~scope:"test_obs_a" "lat") 123.;
  parse_json (Obs.snapshot ());
  (* special floats must not leak as bare nan/inf tokens: nan becomes
     null, infinities clamp to the finite float range *)
  let j =
    Obs.Json.to_string
      (Obs.Json.A
         [
           Obs.Json.F Float.nan;
           Obs.Json.F Float.infinity;
           Obs.Json.F Float.neg_infinity;
           Obs.Json.F 1.5;
         ])
  in
  parse_json j;
  check "nan serializes as null" true (String.sub j 1 4 = "null");
  check "no bare inf token leaks" true
    (not
       (String.exists (fun c -> c = 'i') j
       || String.exists (fun c -> c = 'I') j
       || String.exists (fun c -> c = 'n') (String.sub j 5 (String.length j - 5))))

(* --- compile gauges match the real circuit --- *)

let gauges_match_circuit () =
  let g = Graphs.Gen.grid 6 6 in
  let inst = Db.Instance.of_graph g in
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y" ],
        Logic.Expr.Guard (Logic.Formula.Rel ("E", [ Logic.Term.Var "x"; Logic.Term.Var "y" ]))
      )
  in
  let c, _ = Engine.Compile.compile ~tfa_rounds:1 ~zero:0 ~one:1 inst expr in
  let s = Circuits.Circuit.stats c in
  check_int "stats gates = node count" (Array.length c.Circuits.Circuit.nodes)
    s.Circuits.Circuit.gates;
  let gv name = int_of_float (Obs.Gauge.get (Obs.gauge ~scope:"compile" name)) in
  check_int "gauge gates" s.Circuits.Circuit.gates (gv "gates");
  check_int "gauge depth" s.Circuits.Circuit.depth (gv "depth");
  check_int "gauge max_fan_out" s.Circuits.Circuit.max_fan_out (gv "max_fan_out");
  check_int "gauge num_perm" s.Circuits.Circuit.num_perm (gv "num_perm");
  (* and the run counter moved *)
  check "compile runs counted" true
    (Obs.Counter.get (Obs.counter ~scope:"compile" "runs") > 0)

(* --- sliding-window aggregation (injected clock, deterministic) --- *)

(* Run [f] with a controllable clock and a short epoch, restoring the
   wall clock and the 1s default epoch afterwards — the window clock is
   process-global, so leaking a frozen clock would wedge every later
   test's histograms in one epoch. *)
let with_fake_clock f =
  let t = ref 1e9 in
  Obs.set_clock (Some (fun () -> !t));
  Obs.Window.reset ();
  Obs.Window.set_epoch_ms 100;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock None;
      Obs.Window.set_epoch_ms 1000;
      Obs.Window.reset ())
    (fun () -> f t)

let window_slides () =
  with_fake_clock @@ fun t ->
  let h = Obs.histogram ~scope:"test_obs_win" "lat" in
  Obs.Histogram.reset h;
  Obs.Window.tick ();
  (* epoch 0: five fast observations *)
  List.iter (Obs.Histogram.observe h) [ 1.; 1.; 1.; 1.; 1. ];
  let w = Obs.Histogram.window_stats h in
  check_int "epoch 0 window count" 5 w.Obs.Histogram.wcount;
  check_float "epoch 0 window sum" 5. w.Obs.Histogram.wsum;
  (* one epoch later: one slow observation joins the window *)
  t := !t +. 100e6;
  Obs.Window.tick ();
  Obs.Histogram.observe h 1000.;
  let w = Obs.Histogram.window_stats h in
  check_int "epoch 1 window count" 6 w.Obs.Histogram.wcount;
  check_float "window p50 sees the fast mass" 2. w.Obs.Histogram.wp50;
  check_float "window p99 sees the slow tail" 1000. w.Obs.Histogram.wp99;
  check_float "window max" 1000. w.Obs.Histogram.wmax;
  (* cumulative stats never forget... *)
  check_int "cumulative count keeps everything" 6 (Obs.Histogram.count h);
  (* ...but after [slots] further epochs the early epochs leave the
     window: only observations from the last 8 epochs remain *)
  t := !t +. (float_of_int Obs.Window.slots *. 100e6);
  Obs.Window.tick ();
  Obs.Histogram.observe h 7.;
  let w = Obs.Histogram.window_stats h in
  check_int "old epochs expired" 1 w.Obs.Histogram.wcount;
  check_float "window p99 after expiry" 7. w.Obs.Histogram.wp99;
  check_float "window sum after expiry" 7. w.Obs.Histogram.wsum;
  (* a slot is recycled in place: 9 epochs after its tag it carries the
     new epoch's data only *)
  check_int "cumulative count still grows" 7 (Obs.Histogram.count h)

(* the windowed quantiles must equal a from-scratch recompute over the
   same observations (same bucket geometry, same inclusive-rank rule) *)
let window_matches_naive =
  QCheck.Test.make ~count:100 ~name:"windowed quantiles = naive recompute"
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e6))
    (fun values ->
      with_fake_clock @@ fun _t ->
      let h = Obs.histogram ~scope:"test_obs_win" "qc" in
      Obs.Histogram.reset h;
      Obs.Window.tick ();
      List.iter (Obs.Histogram.observe h) values;
      let w = Obs.Histogram.window_stats h in
      let clean = List.map (fun v -> if v < 0. then 0. else v) values in
      let n = List.length clean in
      let buckets = Array.make Obs.Histogram.nbuckets 0 in
      List.iter
        (fun v ->
          let b = Obs.Histogram.bucket_of v in
          buckets.(b) <- buckets.(b) + 1)
        clean;
      let mx = List.fold_left Float.max 0. clean in
      let naive q =
        let rank = Float.to_int (Float.ceil (q *. float_of_int n)) in
        let rank = if rank < 1 then 1 else if rank > n then n else rank in
        let cum = ref buckets.(0) and i = ref 0 in
        while !cum < rank && !i < Obs.Histogram.nbuckets - 1 do
          incr i;
          cum := !cum + buckets.(!i)
        done;
        Float.min (Obs.Histogram.bucket_upper !i) mx
      in
      w.Obs.Histogram.wcount = n
      && w.Obs.Histogram.wp50 = naive 0.5
      && w.Obs.Histogram.wp99 = naive 0.99
      && Float.abs (w.Obs.Histogram.wsum -. List.fold_left ( +. ) 0. clean) < 1e-6)

(* --- OpenMetrics exposition --- *)

let om_validate s =
  match Om_check.validate s with Ok () -> () | Error msg -> Alcotest.fail msg

let openmetrics_well_formed () =
  (* a populated registry (counters, gauges, histograms with window
     companions, names needing sanitising) must pass the format checker *)
  Obs.Counter.incr (Obs.counter ~scope:"test_obs_om" "hits");
  Obs.Gauge.set (Obs.gauge ~scope:"test_obs_om" "depth") 3.5;
  let h = Obs.histogram ~scope:"test_obs_om" "lat.ns-weird name" in
  List.iter (Obs.Histogram.observe h) [ 1.; 3.; 1000.; 0.2 ];
  om_validate (Obs.Openmetrics.render ());
  (* the checker is not a rubber stamp: hand-broken expositions fail *)
  let rejects what text =
    check (Printf.sprintf "checker rejects %s" what) true
      (match Om_check.validate text with Error _ -> true | Ok () -> false)
  in
  rejects "missing EOF" "# TYPE a counter\n# HELP a x\na_total 1\n";
  rejects "EOF not last" "# EOF\n# TYPE a counter\n# HELP a x\na_total 1\n";
  rejects "unsorted families" "# TYPE b counter\n# HELP b x\nb_total 1\n# TYPE a counter\n# HELP a x\na_total 1\n# EOF\n";
  rejects "counter without _total" "# TYPE a counter\n# HELP a x\na 1\n# EOF\n";
  rejects "unknown kind" "# TYPE a summary\n# HELP a x\na 1\n# EOF\n";
  rejects "bad value" "# TYPE a gauge\n# HELP a x\na wat\n# EOF\n";
  rejects "non-cumulative buckets"
    "# TYPE a histogram\n# HELP a x\na_bucket{le=\"1\"} 5\na_bucket{le=\"2\"} 3\na_bucket{le=\"+Inf\"} 5\na_sum 9\na_count 5\n# EOF\n";
  rejects "+Inf bucket <> count"
    "# TYPE a histogram\n# HELP a x\na_bucket{le=\"+Inf\"} 4\na_sum 9\na_count 5\n# EOF\n";
  rejects "histogram without _sum"
    "# TYPE a histogram\n# HELP a x\na_bucket{le=\"+Inf\"} 5\na_count 5\n# EOF\n";
  rejects "sample before TYPE" "a_total 1\n# EOF\n"

let openmetrics_deterministic () =
  (* with a frozen clock and an untouched registry, two renders are
     byte-identical — the property CI diffing relies on *)
  with_fake_clock @@ fun _t ->
  Obs.Counter.incr (Obs.counter ~scope:"test_obs_om" "det");
  let a = Obs.Openmetrics.render () in
  let b = Obs.Openmetrics.render () in
  check "render is deterministic" true (String.equal a b);
  let ha = Obs.snapshot_human () in
  let hb = Obs.snapshot_human () in
  check "snapshot_human is deterministic" true (String.equal ha hb);
  om_validate a

let openmetrics_writer () =
  let path = Filename.temp_file "sparseq_test_metrics" ".prom" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = Obs.Openmetrics.Writer.create ~path ~interval_ms:0 in
      Obs.Openmetrics.Writer.write_now w;
      Obs.Openmetrics.Writer.tick w;
      (* interval 0: every tick rewrites *)
      check_int "tick with zero interval writes" 2 (Obs.Openmetrics.Writer.writes w);
      check "writer path" true (String.equal path (Obs.Openmetrics.Writer.path w));
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      om_validate text;
      (* the atomic-rename protocol leaves no temp file behind *)
      check "no stale temp file" false (Sys.file_exists (path ^ ".tmp")))

(* --- runtime (GC) telemetry --- *)

let runtime_sampler () =
  Obs.Runtime.reset ();
  Obs.Runtime.sample ();
  let gv name = Obs.Gauge.get (Obs.gauge ~scope:"runtime" name) in
  check "heap gauge populated" true (gv "heap_words" > 0.);
  check "peak >= current heap" true (gv "top_heap_words" >= gv "heap_words");
  let c = Obs.counter ~scope:"runtime" "minor_words" in
  let before = Obs.Counter.get c in
  (* allocate enough to show up in the next delta *)
  let junk = Array.init 100_000 (fun i -> [ i ]) in
  ignore (Sys.opaque_identity junk);
  Obs.Runtime.sample ();
  check "allocation delta accounted" true (Obs.Counter.get c - before > 100_000);
  (* deltas, not absolutes: a third immediate sample adds almost nothing *)
  let mid = Obs.Counter.get c in
  Obs.Runtime.sample ();
  check "delta accounting (not cumulative re-add)" true (Obs.Counter.get c - mid < mid)

(* --- domain-safety hammer --- *)

(* four domains hammer the same counter and concurrently register fresh
   metrics; the Atomic counter must lose no increments and the mutexed
   registry must neither corrupt (every registration findable, no
   duplicate identities) nor deadlock *)
let domain_hammer () =
  let nd = 4 and per = 25_000 in
  let shared = Obs.counter ~scope:"test_obs_par" "hits" in
  Obs.Counter.reset shared;
  let doms =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            let scope = Printf.sprintf "test_obs_par_d%d" d in
            for i = 1 to per do
              Obs.Counter.incr shared;
              (* re-registering the shared name from every domain must
                 keep resolving to the same metric *)
              if i mod 5_000 = 0 then Obs.Counter.add (Obs.counter ~scope:"test_obs_par" "hits") 0;
              if i mod 1_000 = 0 then
                Obs.Histogram.observe
                  (Obs.histogram ~scope (Printf.sprintf "h%d" (i / 1_000)))
                  (float_of_int i)
            done))
  in
  List.iter Domain.join doms;
  check_int "no lost increments" (nd * per) (Obs.Counter.get shared);
  (* registry integrity: every concurrently registered metric is findable
     with its full count, and a snapshot taken now still parses *)
  for d = 0 to nd - 1 do
    let scope = Printf.sprintf "test_obs_par_d%d" d in
    for k = 1 to per / 1_000 do
      let name = Printf.sprintf "h%d" k in
      check (Printf.sprintf "%s/%s registered" scope name) true
        (Obs.find ~scope name <> None);
      check_int
        (Printf.sprintf "%s/%s observation kept" scope name)
        1
        (Obs.Histogram.count (Obs.histogram ~scope name))
    done
  done;
  parse_json (Obs.snapshot ())

(* four domains hammer one histogram's atomic bucket/sum/min/max cells
   and one gauge; increments must not be lost across buckets, the float
   sum must come out exact (integral values, so no rounding slack), and
   gauge reads must never tear (a torn boxed-float read would surface a
   value nobody wrote) *)
let histogram_hammer () =
  let nd = 4 and per = 25_000 in
  let h = Obs.histogram ~scope:"test_obs_par" "lat_hammer" in
  let g = Obs.gauge ~scope:"test_obs_par" "g_hammer" in
  Obs.Histogram.reset h;
  let written = [| 1e300; -1e300; 3.25; -0.5 |] in
  let tear = Atomic.make false in
  let doms =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Obs.Histogram.observe h (float_of_int (i mod 100));
              Obs.Gauge.set g written.(d);
              let v = Obs.Gauge.get g in
              if not (Array.exists (fun w -> w = v) written) && v <> 0. then
                Atomic.set tear true
            done))
  in
  List.iter Domain.join doms;
  check "no torn gauge read" false (Atomic.get tear);
  check "final gauge value was written" true
    (Array.exists (fun w -> w = Obs.Gauge.get g) written);
  check_int "histogram count exact" (nd * per) (Obs.Histogram.count h);
  (* Σ (i mod 100) over 25k iterations = 250 full cycles of 0+…+99 *)
  check_float "histogram sum exact" (float_of_int (nd * 250 * 4950)) (Obs.Histogram.sum h);
  let bucket_total = ref 0 in
  for i = 0 to Obs.Histogram.nbuckets - 1 do
    bucket_total := !bucket_total + Obs.Histogram.bucket_count h i
  done;
  check_int "bucket totals = count" (nd * per) !bucket_total;
  check_float "max survived the hammer" 99. (Obs.Histogram.max_value h);
  (* the merged window view over the same cells is consistent too *)
  let w = Obs.Histogram.window_stats h in
  check_int "window count consistent" (nd * per) w.Obs.Histogram.wcount

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick bucket_boundaries;
    Alcotest.test_case "histogram stats and quantiles" `Quick histogram_stats;
    Alcotest.test_case "quantile rank boundary semantics" `Quick quantile_boundaries;
    Alcotest.test_case "4-domain counter and registry hammer" `Quick domain_hammer;
    Alcotest.test_case "4-domain histogram and gauge hammer" `Quick histogram_hammer;
    Alcotest.test_case "sliding window slides and expires" `Quick window_slides;
    QCheck_alcotest.to_alcotest window_matches_naive;
    Alcotest.test_case "openmetrics exposition is well-formed" `Quick openmetrics_well_formed;
    Alcotest.test_case "openmetrics render is deterministic" `Quick openmetrics_deterministic;
    Alcotest.test_case "openmetrics periodic writer" `Quick openmetrics_writer;
    Alcotest.test_case "runtime GC sampler" `Quick runtime_sampler;
    Alcotest.test_case "registry scoping and reset" `Quick registry_scoping;
    Alcotest.test_case "enabled flag gates writes" `Quick enabled_gate;
    Alcotest.test_case "snapshot JSON is parseable" `Quick snapshot_well_formed;
    Alcotest.test_case "compile gauges match circuit stats" `Quick gauges_match_circuit;
  ]
