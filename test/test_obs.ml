(* Tests for the observability layer: histogram bucket geometry, registry
   scoping and reset semantics, snapshot JSON well-formedness (checked by
   an actual parser, not string poking), the enabled-flag gate, and the
   invariant that the compile gauges equal the real circuit parameters. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- histogram geometry --- *)

let bucket_boundaries () =
  let open Obs.Histogram in
  check_int "0 -> bucket 0" 0 (bucket_of 0.);
  check_int "0.5 -> bucket 0" 0 (bucket_of 0.5);
  check_int "1 -> bucket 1" 1 (bucket_of 1.);
  check_int "1.5 -> bucket 1" 1 (bucket_of 1.5);
  check_int "2 -> bucket 2" 2 (bucket_of 2.);
  check_int "3 -> bucket 2" 2 (bucket_of 3.);
  check_int "4 -> bucket 3" 3 (bucket_of 4.);
  check_int "nan -> bucket 0" 0 (bucket_of Float.nan);
  check_int "huge clamps to last" (nbuckets - 1) (bucket_of 1e300);
  check_float "lower of 0" 0. (bucket_lower 0);
  check_float "upper of 0" 1. (bucket_upper 0);
  check_float "lower of 3" 4. (bucket_lower 3);
  check_float "upper of 3" 8. (bucket_upper 3);
  (* every value lands inside its bucket's [lower, upper) range *)
  List.iter
    (fun v ->
      let i = bucket_of v in
      check (Printf.sprintf "%g within bucket %d" v i) true
        (v >= bucket_lower i && v < bucket_upper i))
    [ 0.; 0.3; 1.; 1.9; 2.; 5.; 1023.; 1024.; 123456789. ]

let histogram_stats () =
  let h = Obs.Histogram.make "t" in
  List.iter (Obs.Histogram.observe h) [ 1.; 2.; 3.; 100. ];
  check_int "count" 4 (Obs.Histogram.count h);
  check_float "sum" 106. (Obs.Histogram.sum h);
  check_float "min" 1. (Obs.Histogram.min_value h);
  check_float "max" 100. (Obs.Histogram.max_value h);
  (* p50: rank 2 of {1,2,3,100} is the value 2, which lives in bucket
     [2,4) — the quantile reports that bucket's upper bound *)
  check_float "p50" 4. (Obs.Histogram.p50 h);
  (* p99: rank 4; bucket upper is 128, clamped to the exact max 100 *)
  check_float "p99 clamps to max" 100. (Obs.Histogram.p99 h);
  check_float "negative clamps to 0" 0.
    (let h2 = Obs.Histogram.make "t2" in
     Obs.Histogram.observe h2 (-5.);
     Obs.Histogram.min_value h2);
  Obs.Histogram.reset h;
  check_int "reset clears" 0 (Obs.Histogram.count h);
  check_float "reset quantile" 0. (Obs.Histogram.p99 h)

(* --- quantile rank/boundary semantics --- *)

(* pins the inclusive boundary rule: a rank exactly equal to a bucket's
   cumulative count selects THAT bucket, never the one above *)
let quantile_boundaries () =
  (* all mass in a single bucket: every quantile is that bucket, clamped
     to the exact observed max *)
  let h = Obs.Histogram.make "qb_single" in
  for _ = 1 to 7 do
    Obs.Histogram.observe h 5.
  done;
  check_float "single bucket p50" 5. (Obs.Histogram.p50 h);
  check_float "single bucket p99" 5. (Obs.Histogram.p99 h);
  check_float "single bucket q=1" 5. (Obs.Histogram.quantile h 1.0);
  (* rank exactly equal to the first bucket's cumulative count: 5 of 10
     observations live in bucket [0,1), so p50 (rank 5) must report that
     bucket's upper bound, not walk on to bucket [2,4) *)
  let h2 = Obs.Histogram.make "qb_edge" in
  for _ = 1 to 5 do
    Obs.Histogram.observe h2 0.5
  done;
  for _ = 1 to 5 do
    Obs.Histogram.observe h2 3.9
  done;
  check_float "rank = cumulative stays in bucket" 1. (Obs.Histogram.p50 h2);
  (* one more observation past the boundary moves the quantile up *)
  check_float "rank past boundary advances" 3.9 (Obs.Histogram.quantile h2 0.51);
  (* rank equal to the total count selects the last occupied bucket *)
  check_float "rank = count hits last bucket" 3.9 (Obs.Histogram.quantile h2 1.0)

(* --- registry scoping and reset --- *)

let registry_scoping () =
  let c1 = Obs.counter ~scope:"test_obs_a" "hits" in
  let c2 = Obs.counter ~scope:"test_obs_a" "hits" in
  let c3 = Obs.counter ~scope:"test_obs_b" "hits" in
  Obs.Counter.reset c1;
  Obs.Counter.reset c3;
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  check_int "same (scope,name) is the same metric" 2 (Obs.Counter.get c1);
  check_int "other scope isolated" 0 (Obs.Counter.get c3);
  Obs.Counter.incr c3;
  Obs.reset_scope "test_obs_a";
  check_int "reset_scope zeroes its metrics" 0 (Obs.Counter.get c1);
  check_int "reset_scope leaves other scopes" 1 (Obs.Counter.get c3);
  check "kind mismatch rejected" true
    (match Obs.gauge ~scope:"test_obs_a" "hits" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "find sees registered metric" true
    (Obs.find ~scope:"test_obs_a" "hits" <> None);
  check "scopes lists both" true
    (List.mem "test_obs_a" (Obs.scopes ()) && List.mem "test_obs_b" (Obs.scopes ()))

let enabled_gate () =
  let c = Obs.counter ~scope:"test_obs_a" "gated" in
  let h = Obs.histogram ~scope:"test_obs_a" "gated_h" in
  Obs.Counter.reset c;
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Histogram.observe h 5.;
  let ran = ref false in
  let r = Obs.Timer.time h (fun () -> ran := true; 42) in
  Obs.set_enabled true;
  check_int "disabled counter frozen" 0 (Obs.Counter.get c);
  check_int "disabled histogram frozen" 0 (Obs.Histogram.count h);
  check "disabled timer still runs the thunk" true (!ran && r = 42)

(* --- snapshot JSON well-formedness (shared recursive-descent parser) --- *)

let parse_json s =
  match Json_parse.validate s with Ok () -> () | Error msg -> Alcotest.fail msg

let snapshot_well_formed () =
  (* populate a few metrics, including a name needing escaping *)
  Obs.Counter.incr (Obs.counter ~scope:"test_obs_a" "with \"quote\"");
  Obs.Histogram.observe (Obs.histogram ~scope:"test_obs_a" "lat") 123.;
  parse_json (Obs.snapshot ());
  (* special floats must not leak as bare nan/inf tokens: nan becomes
     null, infinities clamp to the finite float range *)
  let j =
    Obs.Json.to_string
      (Obs.Json.A
         [
           Obs.Json.F Float.nan;
           Obs.Json.F Float.infinity;
           Obs.Json.F Float.neg_infinity;
           Obs.Json.F 1.5;
         ])
  in
  parse_json j;
  check "nan serializes as null" true (String.sub j 1 4 = "null");
  check "no bare inf token leaks" true
    (not
       (String.exists (fun c -> c = 'i') j
       || String.exists (fun c -> c = 'I') j
       || String.exists (fun c -> c = 'n') (String.sub j 5 (String.length j - 5))))

(* --- compile gauges match the real circuit --- *)

let gauges_match_circuit () =
  let g = Graphs.Gen.grid 6 6 in
  let inst = Db.Instance.of_graph g in
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y" ],
        Logic.Expr.Guard (Logic.Formula.Rel ("E", [ Logic.Term.Var "x"; Logic.Term.Var "y" ]))
      )
  in
  let c, _ = Engine.Compile.compile ~tfa_rounds:1 ~zero:0 ~one:1 inst expr in
  let s = Circuits.Circuit.stats c in
  check_int "stats gates = node count" (Array.length c.Circuits.Circuit.nodes)
    s.Circuits.Circuit.gates;
  let gv name = int_of_float (Obs.Gauge.get (Obs.gauge ~scope:"compile" name)) in
  check_int "gauge gates" s.Circuits.Circuit.gates (gv "gates");
  check_int "gauge depth" s.Circuits.Circuit.depth (gv "depth");
  check_int "gauge max_fan_out" s.Circuits.Circuit.max_fan_out (gv "max_fan_out");
  check_int "gauge num_perm" s.Circuits.Circuit.num_perm (gv "num_perm");
  (* and the run counter moved *)
  check "compile runs counted" true
    (Obs.Counter.get (Obs.counter ~scope:"compile" "runs") > 0)

(* --- domain-safety hammer --- *)

(* four domains hammer the same counter and concurrently register fresh
   metrics; the Atomic counter must lose no increments and the mutexed
   registry must neither corrupt (every registration findable, no
   duplicate identities) nor deadlock *)
let domain_hammer () =
  let nd = 4 and per = 25_000 in
  let shared = Obs.counter ~scope:"test_obs_par" "hits" in
  Obs.Counter.reset shared;
  let doms =
    List.init nd (fun d ->
        Domain.spawn (fun () ->
            let scope = Printf.sprintf "test_obs_par_d%d" d in
            for i = 1 to per do
              Obs.Counter.incr shared;
              (* re-registering the shared name from every domain must
                 keep resolving to the same metric *)
              if i mod 5_000 = 0 then Obs.Counter.add (Obs.counter ~scope:"test_obs_par" "hits") 0;
              if i mod 1_000 = 0 then
                Obs.Histogram.observe
                  (Obs.histogram ~scope (Printf.sprintf "h%d" (i / 1_000)))
                  (float_of_int i)
            done))
  in
  List.iter Domain.join doms;
  check_int "no lost increments" (nd * per) (Obs.Counter.get shared);
  (* registry integrity: every concurrently registered metric is findable
     with its full count, and a snapshot taken now still parses *)
  for d = 0 to nd - 1 do
    let scope = Printf.sprintf "test_obs_par_d%d" d in
    for k = 1 to per / 1_000 do
      let name = Printf.sprintf "h%d" k in
      check (Printf.sprintf "%s/%s registered" scope name) true
        (Obs.find ~scope name <> None);
      check_int
        (Printf.sprintf "%s/%s observation kept" scope name)
        1
        (Obs.Histogram.count (Obs.histogram ~scope name))
    done
  done;
  parse_json (Obs.snapshot ())

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick bucket_boundaries;
    Alcotest.test_case "histogram stats and quantiles" `Quick histogram_stats;
    Alcotest.test_case "quantile rank boundary semantics" `Quick quantile_boundaries;
    Alcotest.test_case "4-domain counter and registry hammer" `Quick domain_hammer;
    Alcotest.test_case "registry scoping and reset" `Quick registry_scoping;
    Alcotest.test_case "enabled flag gates writes" `Quick enabled_gate;
    Alcotest.test_case "snapshot JSON is parseable" `Quick snapshot_well_formed;
    Alcotest.test_case "compile gauges match circuit stats" `Quick gauges_match_circuit;
  ]
