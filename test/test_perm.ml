(* Tests for the permanent algorithms of Section 4: all four strategies
   must agree with the naive enumeration baseline, and the dynamic
   structures must track updates. *)

open Semiring

module Nat_static = Perm.Static.Make (Instances.Nat)
module Nat_naive = Perm.Naive.Make (Instances.Nat)
module Nat_seg = Perm.Segtree.Make (Instances.Nat)
module Int_ring_perm = Perm.Ring.Make (Instances.Int_ring)
module Int_static = Perm.Static.Make (Instances.Int_ring)
module Int_naive = Perm.Naive.Make (Instances.Int_ring)
module Trop_static = Perm.Static.Make (Tropical.Min_plus)
module Trop_naive = Perm.Naive.Make (Tropical.Min_plus)
module Trop_seg = Perm.Segtree.Make (Tropical.Min_plus)
module Bool_fin = Perm.Finite.Make (Instances.Bool)
module Bool_naive = Perm.Naive.Make (Instances.Bool)
module Z4 = Zmod.Z4
module Z4_fin = Perm.Finite.Make (Z4)
module Z4_naive = Perm.Naive.Make (Z4)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let matrix_gen ~k ~maxn ~maxv =
  QCheck.make
    ~print:(fun m ->
      String.concat "\n"
        (Array.to_list (Array.map (fun row -> String.concat " " (Array.to_list (Array.map string_of_int row))) m)))
    QCheck.Gen.(
      int_range 0 maxn >>= fun n ->
      array_size (return k) (array_size (return n) (int_range 0 maxv)))

let known_values () =
  (* perm of 1xN is the sum of entries *)
  check_int "1x3" 6 (Nat_static.perm [| [| 1; 2; 3 |] |]);
  (* classic 2x2: ad' + bc' style: a1 b2 + a2 b1 *)
  check_int "2x2" (1 * 4 + 2 * 3) (Nat_static.perm [| [| 1; 2 |]; [| 3; 4 |] |]);
  (* paper example: 3-row permanent = sum over distinct i,j,k of ai bj ck *)
  let m = [| [| 1; 1; 1 |]; [| 1; 1; 1 |]; [| 1; 1; 1 |] |] in
  check_int "3x3 all ones = 3!" 6 (Nat_static.perm m);
  check_int "k=0" 1 (Nat_static.perm [||]);
  check_int "k > n is zero" 0 (Nat_static.perm [| [| 1 |]; [| 2 |] |])

let increasing_values () =
  (* perm' only counts increasing assignments: for all-ones, C(n, k) *)
  let m = Array.make 2 [| 1; 1; 1; 1 |] in
  check_int "perm' all ones = C(4,2)" 6 (Nat_static.perm_increasing m);
  check_int "perm = sum over orders of perm'" (Nat_static.perm m)
    (2 * Nat_static.perm_increasing m)

let static_vs_naive k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "static perm = naive (k=%d)" k)
       ~count:50 (matrix_gen ~k ~maxn:7 ~maxv:5)
       (fun m -> Nat_static.perm m = Nat_naive.perm m))

let segtree_vs_naive k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "segtree perm = naive (k=%d)" k)
       ~count:50 (matrix_gen ~k ~maxn:7 ~maxv:5)
       (fun m ->
         let t = Nat_seg.create m in
         Nat_seg.perm t = Nat_naive.perm m))

let ring_vs_naive k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "ring power-sum perm = naive (k=%d)" k)
       ~count:50 (matrix_gen ~k ~maxn:7 ~maxv:5)
       (fun m ->
         let t = Int_ring_perm.create m in
         Int_ring_perm.perm t = Int_naive.perm m))

let finite_bool_vs_naive k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "finite counting perm = naive, bool (k=%d)" k)
       ~count:50 (matrix_gen ~k ~maxn:7 ~maxv:1)
       (fun m ->
         let bm = Array.map (Array.map (fun v -> v = 1)) m in
         let t = Bool_fin.create bm in
         Bool_fin.perm t = Bool_naive.perm bm))

let finite_z4_vs_naive k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "finite counting perm = naive, Z4 (k=%d)" k)
       ~count:50 (matrix_gen ~k ~maxn:7 ~maxv:3)
       (fun m ->
         let t = Z4_fin.create m in
         Z4_fin.perm t = Z4_naive.perm m))

let tropical_matches () =
  (* min-plus permanent = minimum-cost assignment *)
  let m =
    Array.map (Array.map (fun v -> Instances.Fin v)) [| [| 5; 1; 9 |]; [| 2; 8; 3 |] |]
  in
  let expected = Trop_naive.perm m in
  check_bool "static tropical" true (Instances.equal_extended expected (Trop_static.perm m));
  let t = Trop_seg.create m in
  check_bool "segtree tropical" true (Instances.equal_extended expected (Trop_seg.perm t));
  check_bool "value is min assignment" true (Instances.equal_extended (Instances.Fin 3) expected)

(* updates tracked by each dynamic structure *)
let update_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"dynamic structures track updates" ~count:50
       QCheck.(
         pair (matrix_gen ~k:3 ~maxn:6 ~maxv:4)
           (small_list (triple (int_range 0 2) (int_range 0 5) (int_range 0 4))))
       (fun (m, updates) ->
         QCheck.assume (Array.length m.(0) > 0);
         let n = Array.length m.(0) in
         let seg = Nat_seg.create m in
         let ring = Int_ring_perm.create m in
         let cur = Array.map Array.copy m in
         List.iter
           (fun (r, c, v) ->
             let c = c mod n in
             cur.(r).(c) <- v;
             Nat_seg.set seg ~row:r ~col:c v;
             Int_ring_perm.set ring ~row:r ~col:c v)
           updates;
         let expected = Nat_naive.perm cur in
         Nat_seg.perm seg = expected && Int_ring_perm.perm ring = expected))

(* batched entry updates: one set_many call must leave every dynamic
   structure in the same state as sequential sets (later entries win on
   duplicate targets), judged against the naive baseline *)
let set_many_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"set_many = sequential sets" ~count:50
       QCheck.(
         pair (matrix_gen ~k:3 ~maxn:6 ~maxv:3)
           (small_list (triple (int_range 0 2) (int_range 0 5) (int_range 0 3))))
       (fun (m, updates) ->
         QCheck.assume (Array.length m.(0) > 0);
         let n = Array.length m.(0) in
         let updates = List.map (fun (r, c, v) -> (r, c mod n, v)) updates in
         let cur = Array.map Array.copy m in
         List.iter (fun (r, c, v) -> cur.(r).(c) <- v) updates;
         let seg = Nat_seg.create m in
         let ring = Int_ring_perm.create m in
         let z4 = Z4_fin.create m in
         Nat_seg.set_many seg updates;
         Int_ring_perm.set_many ring updates;
         Z4_fin.set_many z4 updates;
         Nat_seg.perm seg = Nat_naive.perm cur
         && Int_ring_perm.perm ring = Int_naive.perm cur
         && Z4_fin.perm z4 = Z4_naive.perm cur))

let finite_updates () =
  let m = Array.map (Array.map (fun v -> v = 1)) [| [| 1; 0; 1; 0 |]; [| 0; 1; 0; 1 |] |] in
  let t = Bool_fin.create m in
  check_bool "initial" (Bool_naive.perm m) (Bool_fin.perm t);
  Bool_fin.set t ~row:0 ~col:0 false;
  m.(0).(0) <- false;
  check_bool "after update 1" (Bool_naive.perm m) (Bool_fin.perm t);
  Bool_fin.set t ~row:0 ~col:2 false;
  m.(0).(2) <- false;
  check_bool "after update 2 (now false)" (Bool_naive.perm m) (Bool_fin.perm t);
  check_bool "permanent became false" false (Bool_fin.perm t)

(* large-count lasso: bool semiring, n far beyond the period *)
let lasso_large_counts () =
  let n = 1000 in
  let m = [| Array.make n true; Array.make n true |] in
  let t = Bool_fin.create m in
  check_bool "perm of huge all-true bool matrix" true (Bool_fin.perm t);
  (* Z4: permanent of 1 x n all-ones matrix is n mod 4 *)
  let m1 = [| Array.make n 1 |] in
  let t1 = Z4_fin.create m1 in
  check_int "Z4 1xn all ones = n mod 4" (n mod 4) (Z4_fin.perm t1)

(* the enumerator permanent of Lemma 23 *)
let monomial_mul a b = List.sort compare (a @ b)

let enum_perm_simple () =
  (* 2x2 matrix of singleton monomials: perm enumerates both assignments *)
  let e name = Enum.Iter.singleton [ name ] in
  let m = [| [| e "a1"; e "a2" |]; [| e "b1"; e "b2" |] |] in
  let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] m in
  let results = Enum.Iter.to_list (Perm.Enum_perm.enumerate t) in
  let sorted = List.sort compare results in
  Alcotest.(check (list (list string)))
    "perm monomials"
    [ [ "a1"; "b2" ]; [ "a2"; "b1" ] ]
    sorted

let enum_perm_respects_zeroes () =
  let e name = Enum.Iter.singleton [ name ] in
  let z : string list Enum.Iter.t = Enum.Iter.empty in
  (* row 0 can only use column 0; row 1 can use both *)
  let m = [| [| e "a1"; z |]; [| e "b1"; e "b2" |] |] in
  let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] m in
  let results = List.sort compare (Enum.Iter.to_list (Perm.Enum_perm.enumerate t)) in
  Alcotest.(check (list (list string))) "only valid assignment" [ [ "a1"; "b2" ] ] results;
  Alcotest.(check bool) "nonzero" true (Perm.Enum_perm.nonzero t)

let enum_perm_infeasible () =
  let z : string list Enum.Iter.t = Enum.Iter.empty in
  let e name = Enum.Iter.singleton [ name ] in
  (* both rows restricted to the same single column: no injective choice *)
  let m = [| [| e "a1"; z |]; [| e "b1"; z |] |] in
  let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] m in
  Alcotest.(check bool) "infeasible" false (Perm.Enum_perm.nonzero t);
  Alcotest.(check int) "no monomials" 0 (Enum.Iter.length (Perm.Enum_perm.enumerate t))

let enum_perm_multi_monomial () =
  (* entries that are themselves sums: (x + y) in one cell *)
  let e names = Enum.Iter.of_list (List.map (fun n -> [ n ]) names) in
  let m = [| [| e [ "x"; "y" ]; e [ "z" ] |]; [| e [ "u" ]; e [ "v" ] |] |] in
  let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] m in
  let results = List.sort compare (Enum.Iter.to_list (Perm.Enum_perm.enumerate t)) in
  (* perm = (x+y)·v + z·u, so monomials: xv, yv, zu *)
  Alcotest.(check (list (list string)))
    "expanded monomials"
    [ [ "u"; "z" ]; [ "v"; "x" ]; [ "v"; "y" ] ]
    results

let enum_perm_matches_counting k =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "enum perm count = nat perm of 0/1 matrix (k=%d)" k)
       ~count:30 (matrix_gen ~k ~maxn:6 ~maxv:1)
       (fun m ->
         (* monomial count of enum perm equals permanent over ℕ *)
         let entries =
           Array.mapi
             (fun r row ->
               Array.mapi
                 (fun c v ->
                   if v = 1 then Enum.Iter.singleton [ Printf.sprintf "e%d_%d" r c ]
                   else Enum.Iter.empty)
                 row)
             m
         in
         let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] entries in
         Enum.Iter.length (Perm.Enum_perm.enumerate t) = Nat_naive.perm m))

let enum_perm_update () =
  let e name = Enum.Iter.singleton [ name ] in
  let m = [| [| e "a1"; e "a2" |]; [| e "b1"; e "b2" |] |] in
  let t = Perm.Enum_perm.create ~mul:monomial_mul ~one:[] m in
  Perm.Enum_perm.set_entry t ~row:0 ~col:1 Enum.Iter.empty;
  let results = List.sort compare (Enum.Iter.to_list (Perm.Enum_perm.enumerate t)) in
  Alcotest.(check (list (list string))) "after zeroing a2" [ [ "a1"; "b2" ] ] results;
  Perm.Enum_perm.set_entry t ~row:0 ~col:1 (e "a2'");
  let results = List.sort compare (Enum.Iter.to_list (Perm.Enum_perm.enumerate t)) in
  Alcotest.(check (list (list string)))
    "after restoring" [ [ "a1"; "b2" ]; [ "a2'"; "b1" ] ] results

(* set_many must validate the whole batch before mutating anything: one
   bad entry (row, column, or — for finite semirings — an element outside
   the enumeration) leaves the structure bit-for-bit unchanged *)
let set_many_all_or_nothing () =
  let m = [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let reject what thunk =
    match thunk () with
    | () -> Alcotest.failf "%s: invalid batch must be rejected" what
    | exception Invalid_argument _ -> ()
  in
  (* segtree *)
  let seg = Nat_seg.create m in
  let before = Nat_seg.perm seg in
  reject "segtree col" (fun () -> Nat_seg.set_many seg [ (0, 1, 9); (1, 7, 8) ]);
  check_int "segtree untouched after bad col" before (Nat_seg.perm seg);
  reject "segtree row" (fun () -> Nat_seg.set_many seg [ (5, 0, 9); (0, 0, 8) ]);
  check_int "segtree untouched after bad row" before (Nat_seg.perm seg);
  Nat_seg.set_many seg [ (0, 1, 9) ];
  m.(0).(1) <- 9;
  check_int "segtree still live" (Nat_naive.perm m) (Nat_seg.perm seg);
  m.(0).(1) <- 2;
  (* ring power sums *)
  let ring = Int_ring_perm.create m in
  let before = Int_ring_perm.perm ring in
  reject "ring col" (fun () -> Int_ring_perm.set_many ring [ (0, 1, 9); (1, 7, 8) ]);
  check_int "ring untouched after bad col" before (Int_ring_perm.perm ring);
  reject "ring row" (fun () -> Int_ring_perm.set_many ring [ (5, 0, 9); (0, 0, 8) ]);
  check_int "ring untouched after bad row" before (Int_ring_perm.perm ring);
  Int_ring_perm.set_many ring [ (0, 1, 9) ];
  m.(0).(1) <- 9;
  check_int "ring still live" (Int_naive.perm m) (Int_ring_perm.perm ring);
  m.(0).(1) <- 2;
  (* finite counters, including an element outside the enumeration: GF(2)
     over plain ints claims elements {0, 1}, so 7 must be rejected before
     any counter moves *)
  let gf2_ops =
    {
      Semiring.Intf.zero = 0;
      one = 1;
      add = (fun a b -> (a + b) land 1);
      mul = (fun a b -> a * b land 1);
      equal = Int.equal;
      neg = None;
      elements = Some [ 0; 1 ];
      repr = Machine_int;
    }
  in
  let bm = [| [| 1; 0; 1 |]; [| 0; 1; 1 |] |] in
  let fin = Perm.Finite.create gf2_ops bm in
  let before = Perm.Finite.perm fin in
  reject "finite col" (fun () -> Perm.Finite.set_many fin [ (0, 1, 1); (1, 7, 0) ]);
  check_int "finite untouched after bad col" before (Perm.Finite.perm fin);
  reject "finite row" (fun () -> Perm.Finite.set_many fin [ (5, 0, 1); (0, 0, 0) ]);
  check_int "finite untouched after bad row" before (Perm.Finite.perm fin);
  reject "finite element" (fun () -> Perm.Finite.set_many fin [ (0, 0, 0); (1, 2, 7) ]);
  check_int "finite untouched after bad element" before (Perm.Finite.perm fin);
  Perm.Finite.set_many fin [ (0, 1, 1); (0, 0, 0) ];
  let gf2_naive = [| [| 0; 1; 1 |]; [| 0; 1; 1 |] |] in
  let expected =
    (* naive GF(2) permanent of the updated matrix *)
    let acc = ref 0 in
    for c0 = 0 to 2 do
      for c1 = 0 to 2 do
        if c0 <> c1 then acc := (!acc + (gf2_naive.(0).(c0) * gf2_naive.(1).(c1))) land 1
      done
    done;
    !acc
  in
  check_int "finite still live" expected (Perm.Finite.perm fin)

let suite =
  [
    Alcotest.test_case "known permanents" `Quick known_values;
    Alcotest.test_case "perm' (increasing)" `Quick increasing_values;
    static_vs_naive 1;
    static_vs_naive 2;
    static_vs_naive 3;
    static_vs_naive 4;
    segtree_vs_naive 2;
    segtree_vs_naive 3;
    ring_vs_naive 2;
    ring_vs_naive 3;
    finite_bool_vs_naive 2;
    finite_bool_vs_naive 3;
    finite_z4_vs_naive 2;
    Alcotest.test_case "tropical permanents" `Quick tropical_matches;
    update_agreement;
    set_many_agreement;
    Alcotest.test_case "set_many is all-or-nothing" `Quick set_many_all_or_nothing;
    Alcotest.test_case "finite semiring updates" `Quick finite_updates;
    Alcotest.test_case "lasso with large counts" `Quick lasso_large_counts;
    Alcotest.test_case "enum perm: simple" `Quick enum_perm_simple;
    Alcotest.test_case "enum perm: zero entries" `Quick enum_perm_respects_zeroes;
    Alcotest.test_case "enum perm: infeasible" `Quick enum_perm_infeasible;
    Alcotest.test_case "enum perm: multi-monomial entries" `Quick enum_perm_multi_monomial;
    enum_perm_matches_counting 1;
    enum_perm_matches_counting 2;
    enum_perm_matches_counting 3;
    Alcotest.test_case "enum perm: updates" `Quick enum_perm_update;
  ]
