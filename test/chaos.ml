(* Chaos harness for the transactional update path (standalone test
   executable, also wired into CI as a seedless smoke job).

   For every update strategy (General/nat, Ring/int, Finite/Z4) and all
   three update shapes (single [update_checked], batched
   [update_many_checked], structural [insert_tuple_checked] — the
   localized-recompile + splice wave) it first counts the fault positions
   of one wave — every gate recomputation the wave performs — then injects a crash at {e each}
   position in turn and drives all three recovery policies:

   - [`Fail]     the update reports [Internal_divergence], the circuit
                 rolls back, and both circuit and weights store still agree
                 with the pre-wave reference evaluation (never a silent
                 third state); a clean retry then lands the update;
   - [`Rollback] a transient (one-shot) fault is absorbed by the bounded
                 retry loop: the update reports success and the circuit
                 agrees with the post-wave reference evaluation;
   - [`Repair]   the fault's rollback is {e also} sabotaged, poisoning the
                 structure; the policy repairs it in place, retries, and
                 the update still reports success with post-wave agreement.

   [--smoke] caps the sweep at 3 fault positions per combination for CI;
   the default run is exhaustive. Exits nonzero on any violation. *)

open Semiring

module Z4 = Zmod.Make (struct
  let modulus = 4
end)

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let z4_ops = { (Intf.ops_of_finite (module Z4)) with Intf.neg = Some Z4.neg }

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* Σ_{x,y} [E(x,y)] · w(x) · w(y): reads every unary weight, so faults can
   land anywhere in the cone. *)
let edge_weight_expr =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ v "x" ]);
          Logic.Expr.Weight ("w", [ v "y" ]);
        ] )

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FAIL %s\n%!" s)
    fmt

(* One fresh instance + weights + checked evaluator per probe, so every
   probe sees the same initial state regardless of earlier commits. *)
let setup (type a) (ops : a Intf.ops) mode ~(of_int : int -> a) ~recover ~retries =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 6) in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:(of_int 0) in
  Db.Weights.fill_unary w ~n:(Db.Instance.n inst) (fun i -> of_int (((i * 5) + 2) mod 11));
  let weights = Db.Weights.bundle [ w ] in
  match
    Engine.Eval.prepare_checked ops ~mode ~tfa_rounds:1 ~recover ~retries
      ~backoff_ms:0.0 inst weights edge_weight_expr
  with
  | Ok ck -> (inst, weights, ck)
  | Error err -> failwith ("chaos setup: " ^ Robust.to_string err)

type shape = Single | Batched | Structural

let shape_name = function
  | Single -> "single"
  | Batched -> "batched"
  | Structural -> "structural"

let apply (type a) ~(of_int : int -> a) shape ck =
  match shape with
  | Single -> Engine.Eval.update_checked ck "w" [ 1 ] (of_int 9)
  | Batched ->
      Engine.Eval.update_many_checked ck
        [ ("w", [ 1 ], of_int 50); ("w", [ 3 ], of_int 60) ]
  (* a chord on the path: absent initially, stays within the compiled
     treedepth bound, and its splice rebuilds a faultable set of gates *)
  | Structural -> Engine.Eval.insert_tuple_checked ck "E" [ 0; 3 ]

(* Count the wave's fault positions with a hook that never raises. *)
let count_positions (type a) (ops : a Intf.ops) mode ~(of_int : int -> a) shape =
  let _, _, ck = setup ops mode ~of_int ~recover:`Fail ~retries:0 in
  let ticks = ref 0 in
  Engine.Eval.set_fault_hook ck (Some (fun _ -> incr ticks));
  (match apply ~of_int shape ck with
  | Ok () -> ()
  | Error err -> failwith ("chaos probe wave: " ^ Robust.to_string err));
  !ticks

let probe (type a) name (ops : a Intf.ops) mode ~(of_int : int -> a) shape pos =
  let ctx scen = Printf.sprintf "%s/%s pos=%d %s" name (shape_name shape) pos scen in
  let reference inst weights = Engine.Reference.eval ops inst weights edge_weight_expr in
  let check_value scen inst weights ck =
    match Engine.Eval.value_checked ck with
    | Ok got ->
        if not (ops.Intf.equal got (reference inst weights)) then
          fail "%s: circuit diverged from reference on committed weights" (ctx scen)
    | Error err -> fail "%s: value_checked: %s" (ctx scen) (Robust.to_string err)
  in
  (* --- `Fail: error surfaces, state fully rolled back --- *)
  let inst, weights, ck = setup ops mode ~of_int ~recover:`Fail ~retries:0 in
  let ticks = ref 0 in
  Engine.Eval.set_fault_hook ck
    (Some
       (fun _ ->
         incr ticks;
         if !ticks = pos then failwith "chaos fault"));
  (match apply ~of_int shape ck with
  | Error (Robust.Internal_divergence _) -> ()
  | Error err -> fail "%s: wrong classification: %s" (ctx "fail") (Robust.to_string err)
  | Ok () -> fail "%s: faulted update reported success" (ctx "fail"));
  Engine.Eval.set_fault_hook ck None;
  check_value "fail/rolled-back" inst weights ck;
  (match apply ~of_int shape ck with
  | Ok () -> check_value "fail/retried" inst weights ck
  | Error err -> fail "%s: clean retry failed: %s" (ctx "fail") (Robust.to_string err));
  (* --- `Rollback: a transient fault is retried to success --- *)
  let inst, weights, ck = setup ops mode ~of_int ~recover:`Rollback ~retries:3 in
  let ticks = ref 0 in
  Engine.Eval.set_fault_hook ck
    (Some
       (fun _ ->
         incr ticks;
         if !ticks = pos then failwith "chaos transient fault"));
  (match apply ~of_int shape ck with
  | Ok () -> check_value "rollback/retried" inst weights ck
  | Error err ->
      fail "%s: transient fault not absorbed: %s" (ctx "rollback") (Robust.to_string err));
  (* --- `Repair: rollback is sabotaged too; repair + retry still wins --- *)
  let inst, weights, ck = setup ops mode ~of_int ~recover:`Repair ~retries:3 in
  let ticks = ref 0 and sabotaged = ref false in
  Engine.Eval.set_fault_hook ck
    (Some
       (fun _ ->
         incr ticks;
         if !ticks = pos then failwith "chaos fault"));
  Engine.Eval.set_rollback_fault_hook ck
    (Some
       (fun () ->
         if not !sabotaged then begin
           sabotaged := true;
           failwith "chaos rollback fault"
         end));
  (match apply ~of_int shape ck with
  | Ok () -> check_value "repair/healed" inst weights ck
  | Error err ->
      fail "%s: poisoned circuit not repaired: %s" (ctx "repair") (Robust.to_string err));
  if not !sabotaged then fail "%s: rollback sabotage never fired" (ctx "repair")

let sweep (type a) ~smoke name (ops : a Intf.ops) mode ~(of_int : int -> a) =
  List.iter
    (fun shape ->
      let positions = count_positions ops mode ~of_int shape in
      if positions = 0 then
        fail "%s/%s: wave performed no recomputations" name (shape_name shape)
      else begin
        let step = if smoke then max 1 (positions / 3) else 1 in
        let probed = ref 0 in
        let pos = ref 1 in
        while !pos <= positions do
          probe name ops mode ~of_int shape !pos;
          incr probed;
          pos := !pos + step
        done;
        Printf.printf "chaos: %s/%s — %d fault position(s), %d probed, 3 policies each\n%!"
          name (shape_name shape) positions !probed
      end)
    [ Single; Batched; Structural ]

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  Engine.Eval.set_retry_sleep (Some (fun _ -> ()));
  let rollbacks = Obs.counter ~scope:"dyn" "rollbacks" in
  let repairs = Obs.counter ~scope:"dyn" "repairs" in
  let retries = Obs.counter ~scope:"dyn" "retries" in
  let r0 = Obs.Counter.get rollbacks
  and p0 = Obs.Counter.get repairs
  and t0 = Obs.Counter.get retries in
  sweep ~smoke "general-nat" nat_ops Circuits.Dyn.General ~of_int:(fun i -> i);
  sweep ~smoke "ring-int" int_ops Circuits.Dyn.Ring ~of_int:(fun i -> i);
  sweep ~smoke "finite-z4" z4_ops Circuits.Dyn.Finite ~of_int:Z4.of_int;
  Engine.Eval.set_retry_sleep None;
  if Obs.Counter.get rollbacks <= r0 then fail "dyn/rollbacks counter never moved";
  if Obs.Counter.get repairs <= p0 then fail "dyn/repairs counter never moved";
  if Obs.Counter.get retries <= t0 then fail "dyn/retries counter never moved";
  let snap = Obs.snapshot () in
  List.iter
    (fun m -> if not (contains m snap) then fail "metric %s missing from snapshot" m)
    [ "rollbacks"; "repairs"; "retries"; "journal_batches"; "journal_bytes"; "splices" ];
  if !failures > 0 then begin
    Printf.eprintf "chaos: %d violation(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "chaos: all probes recovered (rollback or repair, never a third state)\n%!"
