(* Tests for per-operation cost attribution (Engine.Eval.Cost): the
   exactness contract — Σ gates_visited over any bracket of operations
   equals the delta of the cumulative dyn/touched_gates counter — plus
   the wave-count semantics of each instrumented entry point (one
   committed wave per batch, two per free-variable query, zero for a
   no-op update and for one-shot evaluation). *)

open Semiring

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat))
let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* weighted degree: Σ_{x,y} [E(x,y)] · w(y) *)
let wdeg_expr =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )

(* f(x) = Σ_y [E(x,y)] · w(y) — one free variable, so a query costs two
   hidden indicator-weight flips *)
let wdeg_query_expr =
  Logic.Expr.Sum
    ( [ "y" ],
      Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )

let make_eval expr =
  let g = Graphs.Gen.triangulated_grid 4 4 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n (fun i -> (i mod 5) + 1);
  (Engine.Eval.prepare nat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ w ]) wdeg_expr, inst, w, expr)

let touched_total () =
  match Obs.find ~scope:"dyn" "touched_gates" with
  | Some (Obs.C c) -> Obs.Counter.get c
  | _ -> 0

(* Σ gates_visited = Δ dyn/touched_gates, exactly, over a mixed bracket
   of single updates and batches — the identity the CLI's `stats --cost`
   cross-check and the bench both rely on *)
let cost_matches_counters () =
  Obs.set_enabled true;
  let ev, inst, _, _ = make_eval wdeg_expr in
  let n = Db.Instance.n inst in
  let rng = Random.State.make [| 2026 |] in
  let agg = ref Engine.Eval.Cost.zero in
  let t0 = touched_total () in
  for _ = 1 to 40 do
    let x = Random.State.int rng n and w' = Random.State.int rng 9 in
    let (), c = Engine.Eval.with_cost ev (fun () -> Engine.Eval.update ev "w" [ x ] w') in
    agg := Engine.Eval.Cost.add !agg c
  done;
  for _ = 1 to 5 do
    let batch =
      List.init 16 (fun _ -> ("w", [ Random.State.int rng n ], Random.State.int rng 9))
    in
    agg := Engine.Eval.Cost.add !agg (Engine.Eval.update_many_cost ev batch)
  done;
  let delta = touched_total () - t0 in
  check_bool "bracket saw real work" true (!agg.Engine.Eval.Cost.gates_visited > 0);
  check_int "sum of gates_visited = counter delta (exact)" delta
    !agg.Engine.Eval.Cost.gates_visited;
  (* the per-wave split re-sums to the total *)
  check_int "wave_touched re-sums to gates_visited" !agg.Engine.Eval.Cost.gates_visited
    (List.fold_left ( + ) 0 !agg.Engine.Eval.Cost.wave_touched);
  check_int "one wave_touched entry per wave" !agg.Engine.Eval.Cost.waves
    (List.length !agg.Engine.Eval.Cost.wave_touched)

let wave_semantics () =
  Obs.set_enabled true;
  let ev, inst, _, _ = make_eval wdeg_expr in
  let n = Db.Instance.n inst in
  (* a real batch commits exactly one shared wave *)
  let batch = List.init 12 (fun i -> ("w", [ i mod n ], 7 + i)) in
  let c = Engine.Eval.update_many_cost ev batch in
  check_int "one committed wave per batch" 1 c.Engine.Eval.Cost.waves;
  check_bool "batch touched gates" true (c.Engine.Eval.Cost.gates_visited > 0);
  (* writing the value already in place is free: no wave, no gates *)
  let (), c0 =
    Engine.Eval.with_cost ev (fun () -> Engine.Eval.update ev "w" [ 0 ] 7)
  in
  check_int "equal-value update commits no wave" 0 c0.Engine.Eval.Cost.waves;
  check_int "equal-value update touches no gate" 0 c0.Engine.Eval.Cost.gates_visited;
  (* a tuple the circuit never reads is filtered before the wave *)
  let (), cx =
    Engine.Eval.with_cost ev (fun () -> Engine.Eval.update ev "nope" [ 0 ] 1)
  in
  check_int "irrelevant weight commits no wave" 0 cx.Engine.Eval.Cost.waves

let query_costs_two_waves () =
  Obs.set_enabled true;
  let g = Graphs.Gen.grid 4 3 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n (fun i -> i + 1);
  let t = Engine.Eval.prepare nat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ w ]) wdeg_query_expr in
  let expected =
    Logic.Expr.eval (module Instances.Nat) inst (Db.Weights.bundle [ w ]) wdeg_query_expr
      ~env:[ ("x", 1) ] ()
  in
  let r, c = Engine.Eval.query_cost t [ 1 ] in
  check_int "query_cost returns the query answer" expected r;
  (* flip the indicator weights in, read, flip them back: two waves *)
  check_int "query = flip + restore waves" 2 c.Engine.Eval.Cost.waves;
  check_bool "both waves did work" true
    (List.for_all (fun g -> g > 0) c.Engine.Eval.Cost.wave_touched)

let one_shot_cost () =
  Obs.set_enabled true;
  let g = Graphs.Gen.grid 5 4 in
  let inst = Db.Instance.of_graph g in
  let cell = ref None in
  let total =
    Engine.Eval.evaluate nat_ops ~tfa_rounds:1 ~cost:cell inst (Db.Weights.bundle [])
      (Logic.Expr.Sum
         ( [ "x"; "y" ],
           Logic.Expr.Guard (e "x" "y") ))
  in
  check_bool "one-shot answer sane (edge endpoints)" true (total > 0);
  match !cell with
  | None -> Alcotest.fail "evaluate ?cost left the cell empty"
  | Some c ->
      check_int "one-shot has no propagation waves" 0 c.Engine.Eval.Cost.waves;
      check_bool "one-shot split is empty" true (c.Engine.Eval.Cost.wave_touched = []);
      (* every gate evaluated exactly once: gates_visited is the compiled
         circuit's gate count, which the compile gauges carry *)
      check_int "gates_visited = compiled gate count"
        (int_of_float (Obs.Gauge.get (Obs.gauge ~scope:"compile" "gates")))
        c.Engine.Eval.Cost.gates_visited

let checked_batch_cost () =
  Obs.set_enabled true;
  let g = Graphs.Gen.triangulated_grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n (fun i -> i + 1);
  match
    Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~self_check:false inst
      (Db.Weights.bundle [ w ]) wdeg_expr
  with
  | Error _ -> Alcotest.fail "prepare_checked failed"
  | Ok ck ->
      let cell = ref None in
      let t0 = touched_total () in
      (match
         Engine.Eval.update_many_checked ~cost:cell ck
           (List.init 6 (fun i -> ("w", [ i mod n ], 50 + i)))
       with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "checked batch failed");
      (match !cell with
      | None -> Alcotest.fail "update_many_checked ~cost left the cell empty"
      | Some c ->
          check_int "checked batch: one wave" 1 c.Engine.Eval.Cost.waves;
          check_int "checked batch: gates = counter delta" (touched_total () - t0)
            c.Engine.Eval.Cost.gates_visited)

let suite =
  [
    Alcotest.test_case "sum of costs = touched counter delta" `Quick cost_matches_counters;
    Alcotest.test_case "wave-count semantics per entry point" `Quick wave_semantics;
    Alcotest.test_case "free-variable query costs two waves" `Quick query_costs_two_waves;
    Alcotest.test_case "one-shot evaluate cost" `Quick one_shot_cost;
    Alcotest.test_case "checked batched update fills the cost cell" `Quick checked_batch_cost;
  ]
