(* End-to-end tests of the Theorem 6 / Theorem 8 pipeline: circuits
   compiled from weighted expressions must agree with the brute-force
   reference evaluator on every graph class, semiring, and query we throw
   at them, including under weight updates and free-variable queries. *)

open Semiring

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let trop_ops = Intf.ops_of_module (module Tropical.Min_plus)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] — directed triangle count *)
let triangle_count =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]) )

(* Σ_{x,y} [E(x,y)] · w(x,y) — total edge weight *)
let edge_weight =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "x"; v "y" ]) ] )

(* Σ_{x,y} [x ≠ y ∧ ¬E(x,y)] · u(x) · v(y) — non-edge pairs, weighted *)
let non_edges =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard
            (Logic.Formula.And
               [ Logic.Formula.neq (v "x") (v "y"); Logic.Formula.Not (e "x" "y") ]);
          Logic.Expr.Weight ("u", [ v "x" ]);
          Logic.Expr.Weight ("vv", [ v "y" ]);
        ] )

(* Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ x ≠ z] · w(x,y) · w(y,z) — weighted paths *)
let path2_weight =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard
            (Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]);
          Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
          Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
        ] )

let unary_weights inst names value =
  Db.Weights.bundle
    (List.map
       (fun name ->
         let w = Db.Weights.create ~name ~arity:1 ~zero:0 in
         Db.Weights.fill_unary w ~n:(Db.Instance.n inst) (value name);
         w)
       names)

let edge_weights_bundle inst value =
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation w inst "E" value;
  Db.Weights.bundle [ w ]

let graphs_under_test seed =
  [
    ("path10", Graphs.Gen.path 10);
    ("cycle9", Graphs.Gen.cycle 9);
    ("grid4x4", Graphs.Gen.grid 4 4);
    ("tri-grid3x4", Graphs.Gen.triangulated_grid 3 4);
    ("star12", Graphs.Gen.star 12);
    ("K5", Graphs.Gen.complete 5);
    ("rand-sparse", Graphs.Gen.random_sparse ~seed ~n:14 ~avg_deg:3);
    ("rand-deg3", Graphs.Gen.random_bounded_degree ~seed:(seed + 1) ~n:14 ~max_deg:3);
    ("tree15", Graphs.Gen.random_tree ~seed:(seed + 2) ~n:15);
    ("caterpillar", Graphs.Gen.caterpillar ~spine:4 ~legs:2);
  ]

(* compiled value = reference value, for a nat query without weights *)
let test_counting_query name expr () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let weights = Db.Weights.bundle [] in
      let expected = Logic.Expr.eval (module Instances.Nat) inst weights expr () in
      let actual = Engine.Eval.evaluate nat_ops inst weights expr in
      check_int (Printf.sprintf "%s on %s" name gname) expected actual)
    (graphs_under_test 7)

let test_weighted_query () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let weights = edge_weights_bundle inst (fun tup -> List.fold_left ( + ) 1 tup) in
      let expected = Logic.Expr.eval (module Instances.Nat) inst weights edge_weight () in
      let actual = Engine.Eval.evaluate nat_ops inst weights edge_weight in
      check_int (Printf.sprintf "edge_weight on %s" gname) expected actual)
    (graphs_under_test 21)

let test_negated_query () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let weights = unary_weights inst [ "u"; "vv" ] (fun name i -> if name = "u" then i + 1 else 2 * i + 1) in
      let expected = Logic.Expr.eval (module Instances.Nat) inst weights non_edges () in
      let actual = Engine.Eval.evaluate nat_ops inst weights non_edges in
      check_int (Printf.sprintf "non_edges on %s" gname) expected actual)
    (graphs_under_test 33)

let test_path2 () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let weights = edge_weights_bundle inst (fun tup -> 1 + (List.fold_left ( + ) 0 tup mod 5)) in
      let expected = Logic.Expr.eval (module Instances.Nat) inst weights path2_weight () in
      let actual = Engine.Eval.evaluate nat_ops inst weights path2_weight in
      check_int (Printf.sprintf "path2 on %s" gname) expected actual)
    (graphs_under_test 45)

(* tropical semiring: minimum-cost triangle *)
let min_cost_triangle () =
  let g = Graphs.Gen.triangulated_grid 4 4 in
  let inst = Db.Instance.of_graph g in
  let open Instances in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:Inf in
  Db.Weights.fill_from_relation w inst "E" (fun tup ->
      Fin (match tup with [ a; b ] -> ((a * 7) + (b * 3)) mod 11 | _ -> 0));
  let weights = Db.Weights.bundle [ w ] in
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]);
            Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
            Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
            Logic.Expr.Weight ("w", [ v "z"; v "x" ]);
          ] )
  in
  let expected = Logic.Expr.eval (module Tropical.Min_plus) inst weights expr () in
  let actual = Engine.Eval.evaluate trop_ops inst weights expr in
  check_bool "min cost triangle" true (equal_extended expected actual)

(* boolean semiring: Σ = ∃ — triangle existence *)
let triangle_existence () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let weights = Db.Weights.bundle [] in
      let expected = Logic.Expr.eval (module Instances.Bool) inst weights triangle_count () in
      let actual = Engine.Eval.evaluate bool_ops inst weights triangle_count in
      check_bool (Printf.sprintf "triangle existence on %s" gname) expected actual)
    (graphs_under_test 57)

(* free-variable queries: f(x) = Σ_y [E(x,y)] · w(y) (weighted degree) *)
let free_variable_query () =
  let g = Graphs.Gen.grid 4 3 in
  let inst = Db.Instance.of_graph g in
  let weights = unary_weights inst [ "w" ] (fun _ i -> (i * i) + 1) in
  let expr =
    Logic.Expr.Sum
      ( [ "y" ],
        Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )
  in
  let t = Engine.Eval.prepare nat_ops inst weights expr in
  for a = 0 to Db.Instance.n inst - 1 do
    let expected = Logic.Expr.eval (module Instances.Nat) inst weights expr ~env:[ ("x", a) ] () in
    check_int (Printf.sprintf "f(%d)" a) expected (Engine.Eval.query t [ a ])
  done

(* dynamic updates tracked across all three strategies *)
let dynamic_updates mode ops_name ops () =
  ignore ops_name;
  let g = Graphs.Gen.triangulated_grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation w inst "E" (fun _ -> 1);
  let weights = Db.Weights.bundle [ w ] in
  let t = Engine.Eval.prepare ops ~mode inst weights path2_weight in
  let edges = Db.Instance.tuples inst "E" in
  let rng = Graphs.Rand.create 99 in
  List.iteri
    (fun step _ ->
      let tup = List.nth edges (Graphs.Rand.int rng (List.length edges)) in
      let nv = Graphs.Rand.int rng 4 in
      Db.Weights.set w tup nv;
      Engine.Eval.update t "w" tup nv;
      if step mod 3 = 0 then begin
        let expected = Logic.Expr.eval (module Instances.Nat) inst weights path2_weight () in
        check_int (Printf.sprintf "after update %d" step) expected (Engine.Eval.value t)
      end)
    (List.init 12 Fun.id)

(* one update_many call per batch = the same writes applied one at a time,
   and both = the reference evaluator, in every dynamic mode *)
let batched_engine_updates mode ops () =
  let g = Graphs.Gen.triangulated_grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation w inst "E" (fun _ -> 1);
  let weights = Db.Weights.bundle [ w ] in
  let batch_t = Engine.Eval.prepare ops ~mode inst weights path2_weight in
  let seq_t = Engine.Eval.prepare ops ~mode inst weights path2_weight in
  let edges = Db.Instance.tuples inst "E" in
  let rng = Graphs.Rand.create 4242 in
  for round = 1 to 6 do
    let batch =
      List.init 8 (fun _ ->
          let tup = List.nth edges (Graphs.Rand.int rng (List.length edges)) in
          ("w", tup, Graphs.Rand.int rng 4))
    in
    List.iter (fun (_, tup, nv) -> Db.Weights.set w tup nv) batch;
    Engine.Eval.update_many batch_t batch;
    List.iter (fun (sym, tup, nv) -> Engine.Eval.update seq_t sym tup nv) batch;
    let expected = Engine.Reference.eval ops inst weights path2_weight in
    check_int (Printf.sprintf "round %d batched" round) expected (Engine.Eval.value batch_t);
    check_int (Printf.sprintf "round %d sequential" round) expected (Engine.Eval.value seq_t)
  done

(* weight symbols starting with the reserved "__qv" prefix collide with the
   engine's internal query-variable weights and must be rejected loudly *)
let reserved_prefix_rejected () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 4) in
  (match
     Engine.Eval.prepare nat_ops inst (Db.Weights.bundle [])
       (Logic.Expr.Sum ([ "x" ], Logic.Expr.Weight ("__qv1", [ v "x" ])))
   with
  | _ -> Alcotest.fail "reserved weight symbol accepted by prepare"
  | exception Robust.Error (Robust.Bad_input _) -> ());
  match Db.Weights.create ~name:"__qv0" ~arity:1 ~zero:0 with
  | _ -> Alcotest.fail "reserved weight name accepted by Weights.create"
  | exception Robust.Error (Robust.Bad_input _) -> ()

(* property: compiled = reference on random sparse graphs for the triangle
   and path queries over ℕ *)
let qcheck_compiled_matches =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"compiled = reference on random graphs" ~count:20
       QCheck.(pair (int_range 0 10000) (int_range 4 16))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let inst = Db.Instance.of_graph g in
         let weights = edge_weights_bundle inst (fun tup -> 1 + (List.hd tup mod 3)) in
         List.for_all
           (fun expr ->
             Logic.Expr.eval (module Instances.Nat) inst weights expr ()
             = Engine.Eval.evaluate nat_ops inst weights expr)
           [ triangle_count; edge_weight; path2_weight ]))

(* shape enumeration sanity *)
let shape_counts () =
  (* one variable at depth ≤ d: d+1 shapes *)
  let summand =
    List.hd
      (Logic.Normal.of_expr
         (Logic.Expr.Sum ([ "x" ], Logic.Expr.Weight ("w", [ Logic.Term.Var "x" ]))))
  in
  check_int "1 var, d=3" 4 (List.length (Shapes.Shape.enumerate ~d:3 ~summand ()));
  (* two variables, d=0: both at depth 0; either equal or distinct *)
  let s2 =
    List.hd
      (Logic.Normal.of_expr
         (Logic.Expr.Sum
            ( [ "x"; "y" ],
              Logic.Expr.Mul
                [ Logic.Expr.Weight ("w", [ v "x" ]); Logic.Expr.Weight ("w", [ v "y" ]) ] )))
  in
  check_int "2 vars, d=0" 2 (List.length (Shapes.Shape.enumerate ~d:0 ~summand:s2 ()))

(* elimination forests *)
let elimination_forest_valid () =
  List.iter
    (fun (gname, g) ->
      let f = Graphs.Treedepth.best_forest g in
      check_bool (Printf.sprintf "elimination property on %s" gname) true
        (Graphs.Forest.is_elimination_forest f g))
    (graphs_under_test 71);
  (* depth is logarithmic on paths *)
  let f = Graphs.Treedepth.elimination_forest (Graphs.Gen.path 1024) in
  check_bool "log depth on path" true (Graphs.Forest.max_depth f <= 10)

let low_treedepth_coloring_works () =
  let g = Graphs.Gen.grid 8 8 in
  let c = Graphs.Tfa.low_treedepth_coloring g ~p:2 in
  check_bool "at least 2 colors" true (c.Graphs.Tfa.num_colors >= 2);
  (* any 2 classes induce small depth on a small grid *)
  let d = Graphs.Tfa.max_induced_depth g c ~p:2 in
  check_bool (Printf.sprintf "induced depth %d reasonable" d) true (d <= 12)


(* the same compiled pipeline in further semirings: Z4, min-max, product *)
module Z4 = Semiring.Zmod.Z4
module MinMax = Instances.Min_max
module CountMin = Instances.Product (Instances.Nat) (Tropical.Min_plus)

let more_semirings =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"compiled = reference in Z4 / min-max / product" ~count:15
       QCheck.(pair (int_range 0 10000) (int_range 4 14))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let inst = Db.Instance.of_graph g in
         (* Z4 *)
         let w4 = Db.Weights.create ~name:"w" ~arity:2 ~zero:Z4.zero in
         Db.Weights.fill_from_relation w4 inst "E" (fun tup -> Z4.of_int (List.hd tup));
         let b4 = Db.Weights.bundle [ w4 ] in
         let ok4 =
           Z4.equal
             (Logic.Expr.eval (module Z4) inst b4 path2_weight ())
             (Engine.Eval.evaluate (Intf.ops_of_finite (module Z4)) inst b4 path2_weight)
         in
         (* min-max: minimized bottleneck edge of a 2-path *)
         let open Instances in
         let wm = Db.Weights.create ~name:"w" ~arity:2 ~zero:Inf in
         Db.Weights.fill_from_relation wm inst "E" (fun tup ->
             Fin (List.fold_left ( + ) 0 tup mod 9));
         let bm = Db.Weights.bundle [ wm ] in
         let okm =
           equal_extended
             (Logic.Expr.eval (module MinMax) inst bm path2_weight ())
             (Engine.Eval.evaluate (Intf.ops_of_module (module MinMax)) inst bm path2_weight)
         in
         (* product: count and min cost in one pass *)
         let wp = Db.Weights.create ~name:"w" ~arity:2 ~zero:CountMin.zero in
         Db.Weights.fill_from_relation wp inst "E" (fun tup -> (1, Fin (List.hd tup mod 5)));
         let bp = Db.Weights.bundle [ wp ] in
         let okp =
           CountMin.equal
             (Logic.Expr.eval (module CountMin) inst bp path2_weight ())
             (Engine.Eval.evaluate (Intf.ops_of_module (module CountMin)) inst bp path2_weight)
         in
         ok4 && okm && okp))

(* updates in finite-semiring mode through the full engine *)
let finite_engine_updates () =
  let g = Graphs.Gen.triangulated_grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:Z4.zero in
  Db.Weights.fill_from_relation w inst "E" (fun _ -> Z4.one);
  let weights = Db.Weights.bundle [ w ] in
  let ops = Intf.ops_of_finite (module Z4) in
  let t = Engine.Eval.prepare ops ~mode:Circuits.Dyn.Finite inst weights path2_weight in
  let edges = Db.Instance.tuples inst "E" in
  let rng = Graphs.Rand.create 7 in
  for step = 1 to 10 do
    let tup = List.nth edges (Graphs.Rand.int rng (List.length edges)) in
    let nv = Z4.of_int (Graphs.Rand.int rng 4) in
    Db.Weights.set w tup nv;
    Engine.Eval.update t "w" tup nv;
    let expected = Logic.Expr.eval (module Z4) inst weights path2_weight () in
    check_int (Printf.sprintf "Z4 after update %d" step) expected (Engine.Eval.value t)
  done


(* error paths: the engine must reject what it cannot compile, loudly *)
let error_paths () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 4) in
  (* free variables at the compile entry point *)
  check_bool "free vars rejected" true
    (try
       ignore
         (Engine.Compile.compile ~zero:0 ~one:1 inst
            (Logic.Expr.Weight ("w", [ v "x" ])));
       false
     with Robust.Error (Robust.Bad_input _) -> true);
  (* five-variable summand *)
  let five =
    Logic.Expr.Sum
      ( [ "a"; "b"; "c"; "d"; "e" ],
        Logic.Expr.Mul
          (List.map (fun x -> Logic.Expr.Weight ("w", [ v x ])) [ "a"; "b"; "c"; "d"; "e" ]) )
  in
  check_bool "5 variables rejected" true
    (try
       ignore (Engine.Compile.compile ~zero:0 ~one:1 inst five);
       false
     with Robust.Error (Robust.Unsupported_fragment _) -> true);
  (* quantifier inside a guard at the compile layer *)
  let quantified =
    Logic.Expr.Sum
      ([ "x" ], Logic.Expr.Guard (Logic.Formula.Exists ("y", e "x" "y")))
  in
  check_bool "quantified guard rejected by normalization" true
    (try
       ignore (Engine.Compile.compile ~zero:0 ~one:1 inst quantified);
       false
     with Logic.Normal.Not_quantifier_free _ -> true);
  (* wrong query arity *)
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n:4 (fun i -> i);
  let t =
    Engine.Eval.prepare nat_ops inst (Db.Weights.bundle [ w ])
      (Logic.Expr.Sum ([ "y" ], Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ]))
  in
  check_bool "wrong arity query rejected" true
    (try
       ignore (Engine.Eval.query t [ 0; 1 ]);
       false
     with Invalid_argument _ -> true);
  (* updates to never-read tuples are ignored, not errors *)
  Engine.Eval.update t "w" [ 0 ] 99;
  Engine.Eval.update t "nonexistent" [ 0 ] 99 |> ignore;
  check_int "still queries fine" 101 (Engine.Eval.query t [ 1 ]) (* w(0)+w(2) = 99+2 *)

(* compile on the empty database and the edgeless database *)
let degenerate_databases () =
  let empty = Db.Instance.create Db.Schema.graph_schema ~n:0 in
  check_int "empty db triangle count" 0
    (Engine.Eval.evaluate nat_ops empty (Db.Weights.bundle []) triangle_count);
  let edgeless = Db.Instance.create Db.Schema.graph_schema ~n:7 in
  check_int "edgeless db triangle count" 0
    (Engine.Eval.evaluate nat_ops edgeless (Db.Weights.bundle []) triangle_count);
  (* constant expressions still evaluate *)
  check_int "pure constant" 6
    (Engine.Eval.evaluate nat_ops edgeless (Db.Weights.bundle [])
       (Logic.Expr.Mul [ Logic.Expr.Const 2; Logic.Expr.Const 3 ]));
  (* Σ_x 1 = n through a permanent over roots *)
  check_int "domain count" 7
    (Engine.Eval.evaluate nat_ops edgeless (Db.Weights.bundle [])
       (Logic.Expr.Sum ([ "x" ], Logic.Expr.Guard Logic.Formula.True)))

let suite =
  [
    Alcotest.test_case "triangle count" `Quick (test_counting_query "triangles" triangle_count);
    Alcotest.test_case "edge weight sum" `Quick test_weighted_query;
    Alcotest.test_case "negated / inequality query" `Quick test_negated_query;
    Alcotest.test_case "weighted 2-paths" `Quick test_path2;
    Alcotest.test_case "min-cost triangle (tropical)" `Quick min_cost_triangle;
    Alcotest.test_case "triangle existence (boolean)" `Quick triangle_existence;
    Alcotest.test_case "free-variable query" `Quick free_variable_query;
    Alcotest.test_case "updates (general mode)" `Quick
      (dynamic_updates Circuits.Dyn.General "nat" nat_ops);
    Alcotest.test_case "updates (ring mode)" `Quick
      (dynamic_updates Circuits.Dyn.Ring "int" int_ops);
    Alcotest.test_case "batched updates (general mode)" `Quick
      (batched_engine_updates Circuits.Dyn.General nat_ops);
    Alcotest.test_case "batched updates (ring mode)" `Quick
      (batched_engine_updates Circuits.Dyn.Ring int_ops);
    Alcotest.test_case "batched updates (finite mode, Z4)" `Quick
      (batched_engine_updates Circuits.Dyn.Finite (Intf.ops_of_finite (module Z4)));
    Alcotest.test_case "reserved weight prefix rejected" `Quick reserved_prefix_rejected;
    qcheck_compiled_matches;
    more_semirings;
    Alcotest.test_case "updates (finite mode, Z4)" `Quick finite_engine_updates;
    Alcotest.test_case "error paths" `Quick error_paths;
    Alcotest.test_case "degenerate databases" `Quick degenerate_databases;
    Alcotest.test_case "shape enumeration counts" `Quick shape_counts;
    Alcotest.test_case "elimination forests" `Quick elimination_forest_valid;
    Alcotest.test_case "low-treedepth coloring" `Quick low_treedepth_coloring_works;
  ]
