(* Tests for circuits with permanent gates: static evaluation, statistics,
   and the three dynamic-update strategies of Section 4 (which must all
   track a from-scratch re-evaluation). *)

open Semiring

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let trop_ops = Intf.ops_of_module (module Tropical.Min_plus)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* (w(1) + w(2)) * (w(3) + c5): a tiny circuit with shared structure *)
let small_circuit () =
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  let s1 = Circuits.Circuit.add b [ w 1; w 2 ] in
  let c5 = Circuits.Circuit.const b 5 in
  let s2 = Circuits.Circuit.add b [ w 3; c5 ] in
  let out = Circuits.Circuit.mul b [ s1; s2 ] in
  Circuits.Circuit.finish b ~output:out

let eval_small () =
  let c = small_circuit () in
  let v = function
    | "w", [ i ] -> i * 10
    | _ -> 0
  in
  check_int "((10+20)*(30+5))" ((10 + 20) * (30 + 5)) (Circuits.Circuit.eval nat_ops c v)

let input_hash_consing () =
  let b = Circuits.Circuit.builder () in
  let g1 = Circuits.Circuit.input b ("w", [ 1 ]) in
  let g2 = Circuits.Circuit.input b ("w", [ 1 ]) in
  check_int "same gate" g1 g2;
  let g3 = Circuits.Circuit.input b ("w", [ 2 ]) in
  check_bool "different tuple different gate" true (g1 <> g3)

let perm_gate_eval () =
  (* permanent of [[w1 w2][w3 w4]] = w1 w4 + w2 w3 *)
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  let p = Circuits.Circuit.perm b [| [| w 1; w 2 |]; [| w 3; w 4 |] |] in
  let c = Circuits.Circuit.finish b ~output:p in
  let v = function "w", [ i ] -> i | _ -> 0 in
  check_int "perm" ((1 * 4) + (2 * 3)) (Circuits.Circuit.eval nat_ops c v)

let stats_small () =
  let c = small_circuit () in
  let s = Circuits.Circuit.stats c in
  check_int "gates" 7 s.Circuits.Circuit.gates;
  check_int "inputs" 3 s.Circuits.Circuit.num_inputs;
  check_int "depth" 2 s.Circuits.Circuit.depth;
  check_int "no perm gates" 0 s.Circuits.Circuit.num_perm

(* a medium random circuit whose dynamic value must track re-evaluation *)
let random_circuit seed n_inputs =
  let rng = Graphs.Rand.create seed in
  let b = Circuits.Circuit.builder () in
  let inputs = List.init n_inputs (fun i -> Circuits.Circuit.input b ("w", [ i ])) in
  let pool = ref (Array.of_list inputs) in
  let pick () = !pool.(Graphs.Rand.int rng (Array.length !pool)) in
  for _ = 1 to 12 do
    let kind = Graphs.Rand.int rng 3 in
    let g =
      match kind with
      | 0 -> Circuits.Circuit.add b [ pick (); pick (); pick () ]
      | 1 -> Circuits.Circuit.mul b [ pick (); pick () ]
      | _ ->
          Circuits.Circuit.perm b
            [| [| pick (); pick (); pick () |]; [| pick (); pick (); pick () |] |]
    in
    pool := Array.append !pool [| g |]
  done;
  let out = Circuits.Circuit.add b (Array.to_list !pool) in
  Circuits.Circuit.finish b ~output:out

let dyn_tracks_reeval mode ops name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:30
       QCheck.(
         pair (int_range 0 1000)
           (small_list (pair (int_range 0 7) (int_range 0 3))))
       (fun (seed, updates) ->
         let c = random_circuit seed 8 in
         let vals = Array.make 8 1 in
         let d = Circuits.Dyn.create ~mode ops c (function "w", [ i ] -> vals.(i) | _ -> 0) in
         List.for_all
           (fun (i, v) ->
             vals.(i) <- v;
             Circuits.Dyn.set_input d ("w", [ i ]) v;
             let expected =
               Circuits.Circuit.eval ops c (function "w", [ j ] -> vals.(j) | _ -> 0)
             in
             Circuits.Dyn.value d = expected)
           updates))

let dyn_bool () =
  (* boolean circuit: perm gate = matching existence *)
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  let p = Circuits.Circuit.perm b [| [| w 0; w 1 |]; [| w 2; w 3 |] |] in
  let c = Circuits.Circuit.finish b ~output:p in
  let vals = [| true; false; false; true |] in
  let d = Circuits.Dyn.create bool_ops c (function "w", [ i ] -> vals.(i) | _ -> false) in
  check_bool "initial true" true (Circuits.Dyn.value d);
  Circuits.Dyn.set_input d ("w", [ 0 ]) false;
  check_bool "broken diagonal still has other" false (Circuits.Dyn.value d);
  Circuits.Dyn.set_input d ("w", [ 1 ]) true;
  Circuits.Dyn.set_input d ("w", [ 2 ]) true;
  check_bool "anti-diagonal" true (Circuits.Dyn.value d)

let dyn_tropical () =
  (* min-plus: value is min-cost assignment; log-update mode *)
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  let p = Circuits.Circuit.perm b [| [| w 0; w 1 |]; [| w 2; w 3 |] |] in
  let c = Circuits.Circuit.finish b ~output:p in
  let open Instances in
  let vals = [| Fin 5; Fin 1; Fin 2; Fin 8 |] in
  let d = Circuits.Dyn.create trop_ops c (function "w", [ i ] -> vals.(i) | _ -> Inf) in
  check_bool "min(5+8, 1+2) = 3" true (equal_extended (Fin 3) (Circuits.Dyn.value d));
  Circuits.Dyn.set_input d ("w", [ 1 ]) (Fin 100);
  check_bool "now 13" true (equal_extended (Fin 13) (Circuits.Dyn.value d))

let with_temp_restores () =
  let c = small_circuit () in
  let d = Circuits.Dyn.create ~mode:Circuits.Dyn.Ring int_ops c (function "w", [ i ] -> i | _ -> 0) in
  let before = Circuits.Dyn.value d in
  let inside =
    Circuits.Dyn.with_temp d [ (("w", [ 1 ]), 100) ] (fun () -> Circuits.Dyn.value d)
  in
  check_int "temp changes value" ((100 + 2) * (3 + 5)) inside;
  check_int "restored" before (Circuits.Dyn.value d)

exception Boom

(* regression: with_temp used to skip the restore when [f] raised, leaving
   the temporary weights permanently applied to the circuit *)
let with_temp_exception_restores () =
  let c = small_circuit () in
  let d =
    Circuits.Dyn.create ~mode:Circuits.Dyn.Ring int_ops c (function "w", [ i ] -> i | _ -> 0)
  in
  let before = Circuits.Dyn.value d in
  (match
     Circuits.Dyn.with_temp d
       [ (("w", [ 1 ]), 100); (("w", [ 3 ]), 50) ]
       (fun () -> raise Boom)
   with
  | _ -> Alcotest.fail "with_temp swallowed the exception"
  | exception Boom -> ());
  check_bool "not poisoned" true (Circuits.Dyn.poisoned d = None);
  check_int "w1 restored" 1 (Option.get (Circuits.Dyn.input_value d ("w", [ 1 ])));
  check_int "w3 restored" 3 (Option.get (Circuits.Dyn.input_value d ("w", [ 3 ])));
  check_int "value restored after raise" before (Circuits.Dyn.value d)

(* one set_inputs wave per batch must equal both sequential set_input
   application and a from-scratch re-evaluation, in every mode *)
let batch_matches_sequential mode ops name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:30
       QCheck.(
         pair (int_range 0 1000)
           (small_list (small_list (pair (int_range 0 7) (int_range 0 3)))))
       (fun (seed, batches) ->
         let c = random_circuit seed 8 in
         let vals = Array.make 8 1 in
         let valuation = function "w", [ i ] -> vals.(i) | _ -> 0 in
         let d_batch = Circuits.Dyn.create ~mode ops c valuation in
         let d_seq = Circuits.Dyn.create ~mode ops c valuation in
         List.for_all
           (fun batch ->
             let assignments = List.map (fun (i, v) -> (("w", [ i ]), v)) batch in
             List.iter (fun (i, v) -> vals.(i) <- v) batch;
             Circuits.Dyn.set_inputs d_batch assignments;
             List.iter (fun (key, v) -> Circuits.Dyn.set_input d_seq key v) assignments;
             let expected =
               Circuits.Circuit.eval ops c (function "w", [ j ] -> vals.(j) | _ -> 0)
             in
             Circuits.Dyn.value d_batch = expected && Circuits.Dyn.value d_seq = expected)
           batches))

(* a fault in the middle of a batch wave must roll the whole batch back:
   the batch raises Rolled_back, the structure stays healthy with its
   pre-batch values, and the batch can simply be re-applied *)
let fault_mid_batch_rolls_back () =
  let c = small_circuit () in
  let valuation = function "w", [ i ] -> i | _ -> 0 in
  let d = Circuits.Dyn.create ~mode:Circuits.Dyn.General nat_ops c valuation in
  let before = Circuits.Dyn.value d in
  let calls = ref 0 in
  Circuits.Dyn.set_fault_hook d
    (Some
       (fun _ ->
         incr calls;
         if !calls = 2 then failwith "mid-batch fault"));
  (match Circuits.Dyn.set_inputs d [ (("w", [ 1 ]), 50); (("w", [ 3 ]), 60) ] with
  | () -> Alcotest.fail "faulted batch must not return normally"
  | exception Circuits.Dyn.Rolled_back _ -> ());
  Circuits.Dyn.set_fault_hook d None;
  check_bool "not poisoned" true (Circuits.Dyn.poisoned d = None);
  check_int "value rolled back" before (Circuits.Dyn.value d);
  check_int "w1 rolled back" 1 (Option.get (Circuits.Dyn.input_value d ("w", [ 1 ])));
  check_int "w3 rolled back" 3 (Option.get (Circuits.Dyn.input_value d ("w", [ 3 ])));
  (* the rolled-back batch applies cleanly on a retry *)
  Circuits.Dyn.set_inputs d [ (("w", [ 1 ]), 50); (("w", [ 3 ]), 60) ];
  check_int "retried batch lands"
    (Circuits.Circuit.eval nat_ops c (function "w", [ 1 ] -> 50 | "w", [ 3 ] -> 60 | k -> valuation k))
    (Circuits.Dyn.value d)

(* when the rollback itself faults, poisoning remains the last resort —
   and repair rebuilds the state from the stored inputs, clearing it *)
let rollback_fault_poisons_then_repair () =
  let c = small_circuit () in
  let valuation = function "w", [ i ] -> i | _ -> 0 in
  let d = Circuits.Dyn.create ~mode:Circuits.Dyn.General nat_ops c valuation in
  let calls = ref 0 in
  Circuits.Dyn.set_fault_hook d
    (Some
       (fun _ ->
         incr calls;
         if !calls = 2 then failwith "mid-batch fault"));
  Circuits.Dyn.set_rollback_fault_hook d (Some (fun () -> failwith "rollback fault"));
  (match Circuits.Dyn.set_inputs d [ (("w", [ 1 ]), 50); (("w", [ 3 ]), 60) ] with
  | () -> Alcotest.fail "faulted batch must not return normally"
  | exception Failure _ -> ());
  Circuits.Dyn.set_fault_hook d None;
  Circuits.Dyn.set_rollback_fault_hook d None;
  check_bool "poisoned" true (Circuits.Dyn.poisoned d <> None);
  (match Circuits.Dyn.value d with
  | _ -> Alcotest.fail "poisoned circuit answered value"
  | exception Circuits.Dyn.Poisoned _ -> ());
  (match Circuits.Dyn.set_input d ("w", [ 2 ]) 9 with
  | () -> Alcotest.fail "poisoned circuit accepted an update"
  | exception Circuits.Dyn.Poisoned _ -> ());
  (* repair: one full-eval pass from the stored inputs clears the poison
     and the structure agrees with a fresh evaluation of those inputs *)
  Circuits.Dyn.repair d;
  check_bool "repair clears poison" true (Circuits.Dyn.poisoned d = None);
  let current key = Option.value ~default:0 (Circuits.Dyn.input_value d key) in
  check_int "repaired value" (Circuits.Circuit.eval nat_ops c current) (Circuits.Dyn.value d);
  (* and the structure is dynamic again *)
  Circuits.Dyn.set_input d ("w", [ 2 ]) 9;
  check_int "post-repair update"
    (Circuits.Circuit.eval nat_ops c (function "w", [ 2 ] -> 9 | k -> current k))
    (Circuits.Dyn.value d)

(* permanent gates are k × n matrices; ragged rows must be rejected at
   construction with a structured error, not fail later in the strategies *)
let ragged_perm_rejected () =
  let b = Circuits.Circuit.builder () in
  let w i = Circuits.Circuit.input b ("w", [ i ]) in
  match Circuits.Circuit.perm b [| [| w 0; w 1 |]; [| w 2 |] |] with
  | _ -> Alcotest.fail "ragged permanent gate accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ()

let balance_preserves_value () =
  let c = random_circuit 42 8 in
  let v = function "w", [ i ] -> i + 1 | _ -> 0 in
  let balanced, _, _ = Circuits.Dyn.balance c in
  check_int "balanced value" (Circuits.Circuit.eval nat_ops c v) (Circuits.Circuit.eval nat_ops balanced v);
  let s = Circuits.Circuit.stats balanced in
  check_bool "fan-in at most 6 after balancing" true (s.Circuits.Circuit.max_fan_in <= 6)

(* --- builder / finish validation of the topological-order invariant --- *)

let builder_rejects_bad_children () =
  let b = Circuits.Circuit.builder () in
  let w0 = Circuits.Circuit.input b ("w", [ 0 ]) in
  (match Circuits.Circuit.add b [ w0; 7 ] with
  | _ -> Alcotest.fail "out-of-range add child accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ());
  (match Circuits.Circuit.mul b [ -1 ] with
  | _ -> Alcotest.fail "negative mul child accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ());
  match Circuits.Circuit.perm b [| [| w0; 42 |]; [| w0; w0 |] |] with
  | _ -> Alcotest.fail "out-of-range perm entry accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ()

let finish_rejects_forward_reference () =
  (* raw [push] bypasses the builder-side checks; [finish] must still
     catch a gate whose child id is not strictly smaller than its own *)
  let b = Circuits.Circuit.builder () in
  let _w0 = Circuits.Circuit.input b ("w", [ 0 ]) in
  let _fwd = Circuits.Circuit.push b (Circuits.Circuit.Add [| 2 |]) in
  let out = Circuits.Circuit.const b 1 in
  (match Circuits.Circuit.finish b ~output:out with
  | _ -> Alcotest.fail "forward-referencing gate accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ());
  let b = Circuits.Circuit.builder () in
  let _self = Circuits.Circuit.push b (Circuits.Circuit.Mul [| 0 |]) in
  (match Circuits.Circuit.finish b ~output:0 with
  | _ -> Alcotest.fail "self-referencing gate accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ());
  let b = Circuits.Circuit.builder () in
  let _w0 = Circuits.Circuit.input b ("w", [ 0 ]) in
  match Circuits.Circuit.finish b ~output:99 with
  | _ -> Alcotest.fail "out-of-range output accepted"
  | exception Robust.Error (Robust.Bad_input _) -> ()

let stats_dead_gates () =
  let c = small_circuit () in
  check_int "fully live circuit" 0 (Circuits.Circuit.stats c).Circuits.Circuit.dead_gates;
  let b = Circuits.Circuit.builder () in
  let w0 = Circuits.Circuit.input b ("w", [ 0 ]) in
  let w9 = Circuits.Circuit.input b ("w", [ 9 ]) in
  let _dead = Circuits.Circuit.add b [ w9; w9 ] in
  let out = Circuits.Circuit.mul b [ w0; w0 ] in
  let c = Circuits.Circuit.finish b ~output:out in
  (* w9 and the add over it are outside the output cone *)
  check_int "dead cone counted" 2 (Circuits.Circuit.stats c).Circuits.Circuit.dead_gates

(* the empty-gate conventions the optimizer relies on: Add [||] is the
   semiring zero, Mul [||] is the semiring one — checked in nat, where
   0/1 are the literal ints, and in min-plus, where they are Inf / Fin 0 *)
let empty_gate_conventions () =
  let empty node =
    let b = Circuits.Circuit.builder () in
    let g = Circuits.Circuit.push b node in
    Circuits.Circuit.finish b ~output:g
  in
  let v _ = Alcotest.fail "no inputs to read" in
  check_int "Add [||] = 0 (nat)" 0 (Circuits.Circuit.eval nat_ops (empty (Circuits.Circuit.Add [||])) v);
  check_int "Mul [||] = 1 (nat)" 1 (Circuits.Circuit.eval nat_ops (empty (Circuits.Circuit.Mul [||])) v);
  let is_inf = function Instances.Inf -> true | _ -> false in
  check_bool "Add [||] = Inf (min-plus)" true
    (is_inf (Circuits.Circuit.eval trop_ops (empty (Circuits.Circuit.Add [||])) v));
  check_bool "Mul [||] = Fin 0 (min-plus)" true
    (Circuits.Circuit.eval trop_ops (empty (Circuits.Circuit.Mul [||])) v = Instances.Fin 0)

let suite =
  [
    Alcotest.test_case "static eval" `Quick eval_small;
    Alcotest.test_case "input hash-consing" `Quick input_hash_consing;
    Alcotest.test_case "perm gate eval" `Quick perm_gate_eval;
    Alcotest.test_case "stats" `Quick stats_small;
    Alcotest.test_case "builder rejects bad children" `Quick builder_rejects_bad_children;
    Alcotest.test_case "finish rejects forward references" `Quick finish_rejects_forward_reference;
    Alcotest.test_case "stats counts dead gates" `Quick stats_dead_gates;
    Alcotest.test_case "empty gate conventions" `Quick empty_gate_conventions;
    dyn_tracks_reeval Circuits.Dyn.General nat_ops "dyn general tracks re-eval";
    dyn_tracks_reeval Circuits.Dyn.Ring int_ops "dyn ring tracks re-eval";
    dyn_tracks_reeval Circuits.Dyn.Finite
      (Intf.ops_of_finite (module Zmod.Z4))
      "dyn finite (Z4) tracks re-eval";
    Alcotest.test_case "dyn boolean perm" `Quick dyn_bool;
    Alcotest.test_case "dyn tropical perm" `Quick dyn_tropical;
    Alcotest.test_case "with_temp restores" `Quick with_temp_restores;
    Alcotest.test_case "with_temp restores on exception" `Quick with_temp_exception_restores;
    batch_matches_sequential Circuits.Dyn.General nat_ops "set_inputs = sequential (general)";
    batch_matches_sequential Circuits.Dyn.Ring int_ops "set_inputs = sequential (ring)";
    batch_matches_sequential Circuits.Dyn.Finite
      (Intf.ops_of_finite (module Zmod.Z4))
      "set_inputs = sequential (finite Z4)";
    Alcotest.test_case "fault mid-batch rolls back" `Quick fault_mid_batch_rolls_back;
    Alcotest.test_case "rollback fault poisons, repair heals" `Quick
      rollback_fault_poisons_then_repair;
    Alcotest.test_case "ragged perm rejected" `Quick ragged_perm_rejected;
    Alcotest.test_case "balance preserves value" `Quick balance_preserves_value;
  ]
