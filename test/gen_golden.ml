(* gen_golden — writes the committed .spqc/.spqj fixtures under test/golden/.

   The fixtures pin the SPQC1 circuit and SPQJ1 journal wire formats:
   test_compact.ml's "golden format stability" case loads them with the
   *current* reader and checks their evaluation against the values this
   program printed when the files were first written. Do not regenerate
   them casually — if a format version is ever bumped, add new fixtures
   for the new version and keep the old ones loading.

   journal_weights.spqj was written before SPQJ1 grew the structural-op
   record type (negative-length frames), so it pins exactly the
   weight-batch encoding every pre-extension journal used.

   Usage: dune exec test/gen_golden.exe -- [DIR]   (default: test/golden) *)

open Semiring
module Circuit = Circuits.Circuit
module Compact = Circuits.Compact

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;

  (* nat_small: every gate kind once over the nat semiring *)
  let b = Circuit.builder () in
  let w = Array.init 4 (fun i -> Circuit.input b ("w", [ i ])) in
  let c2 = Circuit.const b 2 in
  let c3 = Circuit.const b 3 in
  let a = Circuit.add b [ w.(0); w.(1); c2 ] in
  let m = Circuit.mul b [ a; w.(2) ] in
  let p = Circuit.perm b [| [| a; w.(3) |]; [| w.(2); c3 |] |] in
  let out = Circuit.add b [ m; p; w.(0) ] in
  let nat = Compact.of_circuit (Circuit.finish b ~output:out) in
  let nat_path = Filename.concat dir "nat_small.spqc" in
  Compact.save ~tag:"nat" nat nat_path;
  let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)) in
  Printf.printf "%s: eval w[i]=i+1 -> %d\n" nat_path
    (Compact.eval nat_ops nat (function "w", [ i ] -> i + 1 | _ -> 0));

  (* int_perm: negative constants through the ring, permanent on top *)
  let b = Circuit.builder () in
  let w = Array.init 3 (fun i -> Circuit.input b ("w", [ i ])) in
  let cm2 = Circuit.const b (-2) in
  let c5 = Circuit.const b 5 in
  let s = Circuit.add b [ w.(0); c5 ] in
  let m = Circuit.mul b [ s; w.(1); cm2 ] in
  let p = Circuit.perm b [| [| m; w.(2) |]; [| s; cm2 |] |] in
  let out = Circuit.add b [ p; m; w.(0) ] in
  let int_c = Compact.of_circuit (Circuit.finish b ~output:out) in
  let int_path = Filename.concat dir "int_perm.spqc" in
  Compact.save ~tag:"int" int_c int_path;
  let int_ops = Intf.with_int_repr (Intf.ops_of_ring (module Instances.Int_ring)) in
  Printf.printf "%s: eval w[i]=2i-3 -> %d\n" int_path
    (Compact.eval int_ops int_c (function "w", [ i ] -> (2 * i) - 3 | _ -> 0));

  (* journal_weights: three weight batches (one empty — replay must keep
     commit positions), int payloads, every key shape the engine emits *)
  let j : int Circuits.Journal.t = Circuits.Journal.create () in
  Circuits.Journal.append j [ (("w", [ 0 ]), 5); (("w", [ 1 ]), 7) ];
  Circuits.Journal.append j [];
  Circuits.Journal.append j [ (("__qv0", [ 2 ]), 1); (("w", [ 0 ]), 0) ];
  let j_path = Filename.concat dir "journal_weights.spqj" in
  Circuits.Journal.save j j_path;
  Printf.printf "%s: %d batches, %d payload bytes\n" j_path (Circuits.Journal.length j)
    (Circuits.Journal.bytes j)
