(* Minimal recursive-descent JSON validator, shared between the test
   suite (snapshot / trace well-formedness checks) and the json_check
   executable CI runs over emitted trace files. It consumes exactly one
   JSON value and reports the first syntax error with its offset; no
   Alcotest dependency so the standalone checker stays tiny. *)

exception Bad of int * string

(** [validate s] returns [Ok ()] if [s] is exactly one well-formed JSON
    value (numbers must be accepted by [float_of_string]), or
    [Error message] pointing at the offending byte offset. *)
let validate s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while
      !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\r' || s.[!pos] = '\t')
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit = String.iter (fun c -> expect c) lit in
  let string_lit () =
    expect '"';
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          continue := false
      | Some '\\' ->
          advance ();
          advance ()
      | Some _ -> advance ()
    done
  in
  let number () =
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    let start = !pos in
    while match peek () with Some c when is_num c -> true | _ -> false do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let continue = ref true in
          while !continue do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = Some ',' then advance ()
            else begin
              expect '}';
              continue := false
            end
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let continue = ref true in
          while !continue do
            value ();
            skip_ws ();
            if peek () = Some ',' then advance ()
            else begin
              expect ']';
              continue := false
            end
          done
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> number ()
    | None -> fail "empty input"
  in
  match
    value ();
    skip_ws ();
    if !pos <> len then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) -> Error (Printf.sprintf "JSON parse error at %d: %s" at msg)
