let () =
  Alcotest.run "sparseq"
    [
      ("semiring", Test_semiring.suite);
      ("enum", Test_enum.suite);
      ("graphs", Test_graphs.suite);
      ("db", Test_db.suite);
      ("logic", Test_logic.suite);
      ("perm", Test_perm.suite);
      ("circuit", Test_circuit.suite);
      ("opt", Test_opt.suite);
      ("compact", Test_compact.suite);
      ("par", Test_par.suite);
      ("engine", Test_engine.suite);
      ("structural", Test_structural.suite);
      ("shapes", Test_shapes.suite);
      ("fo", Test_fo.suite);
      ("nested", Test_nested.suite);
      ("robust", Test_robust.suite);
      ("recovery", Test_recovery.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("cost", Test_cost.suite);
      ("props", Test_props.suite);
    ]
