(* Optimizer pass-pipeline tests (the "optimize once, consume everywhere"
   layer):

   1. unit tests for the individual passes' contracts: identity folding,
      annihilation, hash-consing of structurally equal gates, dead-gate
      elimination, fan-in capping;
   2. the remap contract: surviving gates keep their value, surviving
      input keys keep their [input_ids] addressability;
   3. qcheck equivalence: optimized and unoptimized circuits agree — on
      random hand-built circuits with 0/1 constants in all four semirings
      (nat / int-ring / bool / zmod6), and end-to-end through
      [Engine.Eval.evaluate] on random sparse databases;
   4. batched-update equivalence: [Dyn.set_inputs] waves on the optimized
      circuit track a from-scratch re-evaluation of the *unoptimized*
      circuit, in every update mode. *)

open Semiring
module Circuit = Circuits.Circuit

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let z6_ops = Intf.ops_of_finite (module Zmod.Z6)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let t p = QCheck_alcotest.to_alcotest p

(* ------------------------------------------------- 1. pass contracts --- *)

let fold_annihilates_and_drops () =
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let c0 = Circuit.const b 0 in
  let c1 = Circuit.const b 1 in
  (* (w0 + 0) * 1 — fold must strip both identities down to w0 *)
  let a = Circuit.add b [ w0; c0 ] in
  let out = Circuit.mul b [ a; c1 ] in
  let c = Circuit.finish b ~output:out in
  let o = Opt.run ~passes:[ Opt.Fold; Opt.Dce ] ~zero:0 ~one:1 c in
  (match o.Opt.circuit.Circuit.nodes.(o.Opt.circuit.Circuit.output) with
  | Circuit.Input ("w", [ 0 ]) -> ()
  | _ -> Alcotest.fail "identity folding should reduce (w0 + 0) * 1 to w0");
  (* w0 * 0 — annihilation must reduce the whole circuit to the constant 0 *)
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let c0 = Circuit.const b 0 in
  let out = Circuit.mul b [ w0; c0 ] in
  let c = Circuit.finish b ~output:out in
  let o = Opt.run ~passes:[ Opt.Fold; Opt.Dce ] ~zero:0 ~one:1 c in
  match o.Opt.circuit.Circuit.nodes.(o.Opt.circuit.Circuit.output) with
  | Circuit.Const 0 -> ()
  | _ -> Alcotest.fail "a zero factor should annihilate the product"

let cse_merges_commutative () =
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let w1 = Circuit.input b ("w", [ 1 ]) in
  (* same multiset of children in different order: one gate after cse *)
  let a1 = Circuit.push b (Circuit.Add [| w0; w1 |]) in
  let a2 = Circuit.push b (Circuit.Add [| w1; w0 |]) in
  let out = Circuit.mul b [ a1; a2 ] in
  let c = Circuit.finish b ~output:out in
  check_int "before cse" 5 (Circuit.stats c).Circuit.gates;
  let o = Opt.run ~passes:[ Opt.Cse ] ~zero:0 ~one:1 c in
  check_int "after cse" 4 (Circuit.stats o.Opt.circuit).Circuit.gates;
  (* the merged gate feeds the product twice: (w0+w1)^2, not dropped *)
  let v = function "w", [ 0 ] -> 2 | _ -> 3 in
  check_int "value kept" 25 (Circuit.eval nat_ops o.Opt.circuit v)

let cse_never_dedups_children () =
  (* a + a must stay a two-child sum: 2a != a outside idempotent semirings *)
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let out = Circuit.add b [ w0; w0 ] in
  let c = Circuit.finish b ~output:out in
  let o = Opt.run ~zero:0 ~one:1 c in
  check_int "a + a = 2a survives the full pipeline" 14
    (Circuit.eval nat_ops o.Opt.circuit (fun _ -> 7))

let dce_drops_dead_cone () =
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let w9 = Circuit.input b ("w", [ 9 ]) in
  let _dead = Circuit.mul b [ w9; w9 ] in
  let out = Circuit.add b [ w0; w0 ] in
  let c = Circuit.finish b ~output:out in
  check_int "dead gates visible in stats" 2 (Circuit.stats c).Circuit.dead_gates;
  let o = Opt.run ~passes:[ Opt.Dce ] ~zero:0 ~one:1 c in
  let s = Circuit.stats o.Opt.circuit in
  check_int "live gates only" 2 s.Circuit.gates;
  check_int "no dead gates left" 0 s.Circuit.dead_gates;
  check_int "dead gate remaps to -1" (-1) o.Opt.remap.(1);
  check_bool "dead input key dropped from input_ids" true
    (Hashtbl.find_opt o.Opt.circuit.Circuit.input_ids ("w", [ 9 ]) = None)

let balance_caps_fan_in () =
  let b = Circuit.builder () in
  let ws = List.init 30 (fun i -> Circuit.input b ("w", [ i ])) in
  let out = Circuit.add b ws in
  let c = Circuit.finish b ~output:out in
  let o = Opt.run ~passes:[ Opt.Balance ] ~zero:0 ~one:1 c in
  let s = Circuit.stats o.Opt.circuit in
  check_bool "fan-in capped" true (s.Circuit.max_fan_in <= Opt.balance_cap);
  check_int "value preserved" (30 * 31 / 2)
    (Circuit.eval nat_ops o.Opt.circuit (function "w", [ i ] -> i + 1 | _ -> 0))

(* ------------------------------------------------- 2. remap contract --- *)

(* evaluate every gate, not just the output *)
let eval_all (type a) (ops : a Intf.ops) (c : a Circuit.t) valuation : a array =
  let values = Array.make (Array.length c.Circuit.nodes) ops.Intf.zero in
  Array.iteri
    (fun id node ->
      values.(id) <-
        (match node with
        | Circuit.Input key -> valuation key
        | Circuit.Const s -> s
        | Circuit.Add gs ->
            Array.fold_left (fun acc g -> ops.Intf.add acc values.(g)) ops.Intf.zero gs
        | Circuit.Mul gs ->
            Array.fold_left (fun acc g -> ops.Intf.mul acc values.(g)) ops.Intf.one gs
        | Circuit.Perm rows ->
            Perm.Static.perm ops (Array.map (Array.map (fun g -> values.(g))) rows)))
    c.Circuit.nodes;
  values

(* random circuit with 0/1/other constants mixed into the gate pool, so
   every pass has work to do *)
let random_circuit (type a) ~(zero : a) ~(one : a) ~(mk : int -> a) seed n_inputs :
    a Circuit.t =
  let rng = Graphs.Rand.create seed in
  let b = Circuit.builder () in
  let inputs = List.init n_inputs (fun i -> Circuit.input b ("w", [ i ])) in
  let pool = ref (Array.of_list (Circuit.const b zero :: Circuit.const b one :: inputs)) in
  let pick () = !pool.(Graphs.Rand.int rng (Array.length !pool)) in
  for _ = 1 to 14 do
    let g =
      match Graphs.Rand.int rng 6 with
      | 0 -> Circuit.add b [ pick (); pick (); pick () ]
      | 1 -> Circuit.add b [ pick (); pick () ]
      | 2 -> Circuit.mul b [ pick (); pick () ]
      | 3 -> Circuit.mul b [ pick (); pick (); pick () ]
      | 4 -> Circuit.perm b [| [| pick (); pick () |]; [| pick (); pick () |] |]
      | _ -> Circuit.const b (mk (Graphs.Rand.int rng 100))
    in
    pool := Array.append !pool [| g |]
  done;
  let out = Circuit.add b (Array.to_list !pool) in
  Circuit.finish b ~output:out

let remap_contract () =
  (* surviving gates keep their value; surviving input keys stay addressable *)
  List.iter
    (fun seed ->
      let c = random_circuit ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) seed 6 in
      let o = Opt.run ~zero:0 ~one:1 c in
      let v = function "w", [ i ] -> i + 2 | _ -> 0 in
      let old_vals = eval_all nat_ops c v in
      let new_vals = eval_all nat_ops o.Opt.circuit v in
      Array.iteri
        (fun g m ->
          if m >= 0 && old_vals.(g) <> new_vals.(m) then
            Alcotest.failf "seed %d: gate %d (value %d) remapped to %d (value %d)" seed g
              old_vals.(g) m new_vals.(m))
        o.Opt.remap;
      check_int "output remaps to output" o.Opt.circuit.Circuit.output
        o.Opt.remap.(c.Circuit.output);
      Hashtbl.iter
        (fun key id ->
          match o.Opt.remap.(id) with
          | -1 -> () (* input fell out of the output cone *)
          | m ->
              if Hashtbl.find_opt o.Opt.circuit.Circuit.input_ids key <> Some m then
                Alcotest.failf "seed %d: input_ids disagrees with remap" seed)
        c.Circuit.input_ids)
    [ 1; 17; 23; 99; 1234 ]

let compact_rejects_dropped_perm_child () =
  (* a consumer that blindly rewrites a Perm matrix through an optimizer
     remap can plant a dropped gate (remap = -1) in a row; the compact
     builder must refuse it with a structured error, not an array-bounds
     [Invalid_argument] from deep inside the CSR packing *)
  let b = Circuit.builder () in
  let w0 = Circuit.input b ("w", [ 0 ]) in
  let w1 = Circuit.input b ("w", [ 1 ]) in
  let p = Circuit.perm b [| [| w0; w1 |]; [| w1; w0 |] |] in
  let c = Circuit.finish b ~output:p in
  c.Circuit.nodes.(p) <- Circuit.Perm [| [| w0; -1 |]; [| w1; w0 |] |];
  match Circuits.Compact.of_circuit c with
  | _ -> Alcotest.fail "of_circuit accepted a -1 perm child"
  | exception Robust.Error (Robust.Bad_input msg) ->
      check_bool "error names the dropped child" true
        (let sub = "dropped" in
         let n = String.length msg and m = String.length sub in
         let rec at i = i + m <= n && (String.sub msg i m = sub || at (i + 1)) in
         at 0)
  | exception Invalid_argument _ ->
      Alcotest.fail "of_circuit leaked Invalid_argument for a -1 perm child"

(* ------------------------------------- 3. optimized = unoptimized ------ *)

let opt_preserves_value (type a) name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:60
       ~name:(Printf.sprintf "opt preserves value: %s" name)
       QCheck.(int_range 0 100000)
       (fun seed ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let o = Opt.run ~zero ~one ~equal:ops.Intf.equal c in
         let v = function "w", [ i ] -> mk ((i * 31) + seed) | _ -> zero in
         ops.Intf.equal (Circuit.eval ops c v) (Circuit.eval ops o.Opt.circuit v)))

(* end-to-end through the engine on random sparse databases: the default
   pipeline, the disabled pipeline, and the brute-force reference must
   agree *)
let vx x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ vx x; vx y ])

let expr_wedge =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ vx "x" ]);
          Logic.Expr.Weight ("w", [ vx "y" ]);
        ] )

let gen_db = QCheck.(pair (int_range 4 30) (int_range 0 10000))

let engine_opt_eq_unopt (type a) name (ops : a Intf.ops) (mk : int -> a) ~count =
  t
    (QCheck.Test.make ~count
       ~name:(Printf.sprintf "engine opt = none = reference: %s" name)
       gen_db
       (fun (n, seed) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         let inst = Db.Instance.of_graph g in
         let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
         Db.Weights.fill_unary w ~n (fun i -> mk ((i * 7) + seed));
         let weights = Db.Weights.bundle [ w ] in
         let opt = Engine.Eval.evaluate ops ~tfa_rounds:1 inst weights expr_wedge in
         let raw =
           Engine.Eval.evaluate ops ~opt:Opt.none ~tfa_rounds:1 inst weights expr_wedge
         in
         let want = Engine.Reference.eval ops inst weights expr_wedge in
         ops.Intf.equal opt raw && ops.Intf.equal opt want))

(* ------------------------------- 4. batched updates on the optimized --- *)

let batch_on_optimized (type a) mode name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:30
       ~name:(Printf.sprintf "set_inputs on optimized circuit: %s" name)
       QCheck.(
         pair (int_range 0 1000)
           (small_list (small_list (pair (int_range 0 5) (int_range 0 50)))))
       (fun (seed, batches) ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let o = Opt.run ~zero ~one ~equal:ops.Intf.equal c in
         let vals = Array.init 6 (fun i -> mk i) in
         let valuation = function "w", [ i ] -> vals.(i) | _ -> zero in
         let d = Circuits.Dyn.create ~mode ops o.Opt.circuit valuation in
         List.for_all
           (fun batch ->
             List.iter (fun (i, x) -> vals.(i) <- mk x) batch;
             (* only the keys the optimized circuit still reads can be set *)
             Circuits.Dyn.set_inputs d
               (List.filter_map
                  (fun (i, x) ->
                    let key = ("w", [ i ]) in
                    if Circuits.Dyn.has_input d key then Some (key, mk x) else None)
                  batch);
             (* ...and the result must still match a from-scratch eval of
                the *unoptimized* circuit: dropped inputs were provably
                irrelevant *)
             ops.Intf.equal (Circuits.Dyn.value d) (Circuit.eval ops c valuation))
           batches))

let suite =
  [
    Alcotest.test_case "fold: identities and annihilation" `Quick fold_annihilates_and_drops;
    Alcotest.test_case "cse: commutative merge" `Quick cse_merges_commutative;
    Alcotest.test_case "cse: children never deduplicated" `Quick cse_never_dedups_children;
    Alcotest.test_case "dce: dead cone dropped" `Quick dce_drops_dead_cone;
    Alcotest.test_case "balance: fan-in capped" `Quick balance_caps_fan_in;
    Alcotest.test_case "remap contract" `Quick remap_contract;
    Alcotest.test_case "compact rejects dropped perm child" `Quick
      compact_rejects_dropped_perm_child;
    opt_preserves_value "nat" nat_ops ~zero:0 ~one:1 ~mk:(fun i -> i mod 7);
    opt_preserves_value "int-ring" int_ops ~zero:0 ~one:1 ~mk:(fun i -> (i mod 9) - 4);
    opt_preserves_value "bool" bool_ops ~zero:false ~one:true ~mk:(fun i -> i mod 3 = 0);
    opt_preserves_value "zmod6" z6_ops ~zero:Zmod.Z6.zero ~one:Zmod.Z6.one
      ~mk:Zmod.Z6.of_int;
    engine_opt_eq_unopt "wedge/nat" nat_ops (fun i -> i mod 5) ~count:20;
    engine_opt_eq_unopt "wedge/int-ring" int_ops (fun i -> (i mod 9) - 4) ~count:20;
    engine_opt_eq_unopt "wedge/bool" bool_ops (fun i -> i mod 3 <> 0) ~count:20;
    engine_opt_eq_unopt "wedge/zmod6" z6_ops Zmod.Z6.of_int ~count:20;
    batch_on_optimized Circuits.Dyn.General "general/nat" nat_ops ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    batch_on_optimized Circuits.Dyn.Ring "ring/int" int_ops ~zero:0 ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    batch_on_optimized Circuits.Dyn.Finite "finite/zmod6" z6_ops ~zero:Zmod.Z6.zero
      ~one:Zmod.Z6.one ~mk:Zmod.Z6.of_int;
  ]
