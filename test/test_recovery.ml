(* Tests for the transactional maintenance layer:

   1. qcheck: rollback is the identity — a fault injected at a random
      position of a random update wave leaves every gate value bit-for-bit
      at its pre-wave state, in all three update modes (General/nat,
      Ring/int, Finite/zmod6), and the rolled-back structure stays fully
      usable (the retried batch lands and agrees with a from-scratch eval);
   2. qcheck: replay = live — after random interleaved update batches and
      repairs on a journaled circuit, a fresh compile plus
      [Dyn.replay] reconstructs the exact served state;
   3. the journal's file round trip: save/load preserves every batch, the
      checksums verify, and corrupted or truncated files are rejected as
      [Bad_input] instead of being half-applied;
   4. satellite regression for write-through ordering: a fault mid-batch
      must leave the weights store at its pre-batch values (weights commit
      only after the circuit wave commits);
   5. the [`Rollback] retry policy: a transient fault is retried after an
      (injected) backoff sleep and the update succeeds, counted in
      dyn/retries. *)

open Semiring
module Circuit = Circuits.Circuit
module Dyn = Circuits.Dyn
module Journal = Circuits.Journal

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let z6_ops = Intf.ops_of_finite (module Zmod.Z6)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let t p = QCheck_alcotest.to_alcotest p

(* random circuit over inputs ("w", [0..n-1]), same shape as the
   optimizer tests: adds, muls, 2x2 permanents, and constants *)
let random_circuit (type a) ~(zero : a) ~(one : a) ~(mk : int -> a) seed n_inputs :
    a Circuit.t =
  let rng = Graphs.Rand.create seed in
  let b = Circuit.builder () in
  let inputs = List.init n_inputs (fun i -> Circuit.input b ("w", [ i ])) in
  let pool = ref (Array.of_list (Circuit.const b zero :: Circuit.const b one :: inputs)) in
  let pick () = !pool.(Graphs.Rand.int rng (Array.length !pool)) in
  for _ = 1 to 14 do
    let g =
      match Graphs.Rand.int rng 6 with
      | 0 -> Circuit.add b [ pick (); pick (); pick () ]
      | 1 -> Circuit.add b [ pick (); pick () ]
      | 2 -> Circuit.mul b [ pick (); pick () ]
      | 3 -> Circuit.mul b [ pick (); pick (); pick () ]
      | 4 -> Circuit.perm b [| [| pick (); pick () |]; [| pick (); pick () |] |]
      | _ -> Circuit.const b (mk (Graphs.Rand.int rng 100))
    in
    pool := Array.append !pool [| g |]
  done;
  let out = Circuit.add b (Array.to_list !pool) in
  Circuit.finish b ~output:out

let snapshot d = Array.init (Dyn.num_gates d) (Dyn.gate_value d)

let same_values (type a) (ops : a Intf.ops) (xs : a array) (ys : a array) =
  Array.length xs = Array.length ys
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (ops.Intf.equal x ys.(i)) then ok := false) xs;
  !ok

(* ------------------------- 1. rollback o partial-wave = identity ------- *)

let rollback_identity (type a) mode name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:60
       ~name:(Printf.sprintf "rollback is the identity: %s" name)
       QCheck.(
         triple (int_range 0 100000) (int_range 1 12)
           (small_list (pair (int_range 0 5) (int_range 0 50))))
       (fun (seed, fuse, batch) ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let vals = Array.init 6 (fun i -> mk ((i * 3) + seed)) in
         let valuation = function "w", [ i ] -> vals.(i) | _ -> zero in
         let d = Dyn.create ~mode ops c valuation in
         let writes =
           List.filter_map
             (fun (i, x) ->
               let key = ("w", [ i ]) in
               if Dyn.has_input d key then Some (key, i, mk x) else None)
             batch
         in
         let dyn_writes = List.map (fun (key, _, v) -> (key, v)) writes in
         let pre = snapshot d in
         let ticks = ref 0 in
         Dyn.set_fault_hook d
           (Some
              (fun _ ->
                incr ticks;
                if !ticks = fuse then failwith "scheduled fault"));
         let commit () =
           List.iter (fun (_, i, v) -> vals.(i) <- v) writes;
           ops.Intf.equal (Dyn.value d) (Circuit.eval ops c valuation)
         in
         match Dyn.set_inputs d dyn_writes with
         | () ->
             (* the fuse outlived the wave: a plain committed update *)
             Dyn.set_fault_hook d None;
             commit ()
         | exception Dyn.Rolled_back _ ->
             Dyn.set_fault_hook d None;
             if Dyn.poisoned d <> None then
               QCheck.Test.fail_report "rolled-back circuit must not be poisoned";
             if not (same_values ops pre (snapshot d)) then
               QCheck.Test.fail_report "rollback did not restore every gate value";
             (* the structure (incl. permanent aux state) must still be
                consistent: the retried batch lands exactly *)
             Dyn.set_inputs d dyn_writes;
             commit ()))

(* ----------------------------------- 2. replay(journal) = live state --- *)

let replay_matches_live (type a) mode name (ops : a Intf.ops) ~(zero : a) ~(one : a)
    ~(mk : int -> a) =
  t
    (QCheck.Test.make ~count:40
       ~name:(Printf.sprintf "replay reconstructs live state: %s" name)
       QCheck.(
         pair (int_range 0 100000)
           (small_list (small_list (pair (int_range 0 5) (int_range 0 50)))))
       (fun (seed, batches) ->
         let c = random_circuit ~zero ~one ~mk seed 6 in
         let valuation = function "w", [ i ] -> mk i | _ -> zero in
         let d = Dyn.create ~mode ops c valuation in
         let j = Dyn.enable_journal d in
         List.iteri
           (fun k batch ->
             Dyn.set_inputs d
               (List.filter_map
                  (fun (i, x) ->
                    let key = ("w", [ i ]) in
                    if Dyn.has_input d key then Some (key, mk x) else None)
                  batch);
             (* interleaved repairs must neither change state nor journal
                anything *)
             if k mod 3 = 2 then Dyn.repair d)
           batches;
         (* empty and no-op batches commit nothing and journal nothing *)
         if Journal.length j > List.length batches then
           QCheck.Test.fail_reportf "journal recorded %d batches for %d applied"
             (Journal.length j) (List.length batches);
         let d2 = Dyn.create ~mode ops c valuation in
         Dyn.replay d2 j;
         (* replay must not append to the replaying circuit's own journal *)
         let j2 = Dyn.enable_journal d2 in
         if Journal.length j2 <> 0 then
           QCheck.Test.fail_report "replay self-appended to the journal";
         same_values ops (snapshot d) (snapshot d2)))

(* --------------------------------------- 3. journal file round trip --- *)

let journal_file_round_trip () =
  let c = random_circuit ~zero:0 ~one:1 ~mk:(fun i -> i mod 7) 42 6 in
  let valuation = function "w", [ i ] -> i + 1 | _ -> 0 in
  let d = Dyn.create ~mode:Dyn.General nat_ops c valuation in
  let j = Dyn.enable_journal d in
  List.iter
    (fun batch ->
      Dyn.set_inputs d
        (List.filter (fun (key, _) -> Dyn.has_input d key) batch))
    [
      [ (("w", [ 0 ]), 9); (("w", [ 3 ]), 2) ];
      [ (("w", [ 1 ]), 5) ];
      [ (("w", [ 2 ]), 7); (("w", [ 4 ]), 1); (("w", [ 5 ]), 4) ];
    ];
  check_bool "live journal verifies" true (Journal.verify j = None);
  let path = Filename.temp_file "sparseq_journal" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Journal.save j path;
  let j2 = Journal.load path in
  check_int "batch count survives" (Journal.length j) (Journal.length j2);
  check_bool "loaded journal verifies" true (Journal.verify j2 = None);
  List.iter2
    (fun (b : int Journal.batch) (b2 : int Journal.batch) ->
      check_int "seq survives" b.Journal.seq b2.Journal.seq;
      check_bool "writes survive" true (Journal.writes b = Journal.writes b2))
    (Journal.batches j) (Journal.batches j2);
  let d2 = Dyn.create ~mode:Dyn.General nat_ops c valuation in
  Dyn.replay d2 j2;
  check_int "replayed value from disk" (Dyn.value d) (Dyn.value d2);
  (* flip one payload byte: the checksum must catch it *)
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  let corrupt = Bytes.of_string bytes in
  Bytes.set corrupt (n - 1) (Char.chr (Char.code (Bytes.get corrupt (n - 1)) lxor 0x5a));
  let oc = open_out_bin path in
  output_bytes oc corrupt;
  close_out oc;
  (match Journal.load path with
  | exception Robust.Error (Robust.Bad_input _) -> ()
  | exception e -> Alcotest.failf "corrupt journal: wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "corrupt journal must not load");
  (* truncate mid-record: rejected, not half-applied *)
  let oc = open_out_bin path in
  output_string oc (String.sub bytes 0 (n - 3));
  close_out oc;
  (match Journal.load path with
  | exception Robust.Error (Robust.Bad_input _) -> ()
  | exception e ->
      Alcotest.failf "truncated journal: wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "truncated journal must not load");
  (* bad magic: rejected *)
  let oc = open_out_bin path in
  output_string oc "NOTME!";
  output_string oc (String.sub bytes 6 (n - 6));
  close_out oc;
  match Journal.load path with
  | exception Robust.Error (Robust.Bad_input _) -> ()
  | exception e -> Alcotest.failf "bad magic: wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "foreign file must not load as a journal"

(* ------------------- 4. write-through ordering under mid-batch fault --- *)

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let edge_weight_expr =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (e "x" "y");
          Logic.Expr.Weight ("w", [ v "x" ]);
          Logic.Expr.Weight ("w", [ v "y" ]);
        ] )

let weighted_setup () =
  let inst = Db.Instance.of_graph (Graphs.Gen.path 6) in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n:(Db.Instance.n inst) (fun i -> ((i * 5) + 2) mod 11);
  (inst, w, Db.Weights.bundle [ w ])

let unwrap what = function
  | Ok x -> x
  | Error err -> Alcotest.failf "%s: unexpected error %s" what (Robust.to_string err)

let write_through_waits_for_commit () =
  let inst, w, weights = weighted_setup () in
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Fail inst weights
         edge_weight_expr)
  in
  let before = unwrap "value" (Engine.Eval.value_checked ck) in
  let pre1 = Db.Weights.get w [ 1 ] and pre3 = Db.Weights.get w [ 3 ] in
  let ticks = ref 0 in
  Engine.Eval.set_fault_hook ck
    (Some
       (fun _ ->
         incr ticks;
         if !ticks = 2 then failwith "mid-batch fault"));
  (match
     Engine.Eval.update_many_checked ck [ ("w", [ 1 ], 50); ("w", [ 3 ], 60) ]
   with
  | Error (Robust.Internal_divergence _) -> ()
  | Error err -> Alcotest.failf "wrong classification: %s" (Robust.to_string err)
  | Ok () -> Alcotest.fail "faulted batch must not report success");
  Engine.Eval.set_fault_hook ck None;
  (* no write-through happened: the store still serves the pre-batch
     weights, matching the rolled-back circuit *)
  check_int "w[1] untouched in store" pre1 (Db.Weights.get w [ 1 ]);
  check_int "w[3] untouched in store" pre3 (Db.Weights.get w [ 3 ]);
  check_int "circuit agrees with store" before
    (unwrap "value" (Engine.Eval.value_checked ck));
  (* sanity: the retried batch commits both sides together *)
  unwrap "retried batch" (Engine.Eval.update_many_checked ck [ ("w", [ 1 ], 50); ("w", [ 3 ], 60) ]);
  check_int "w[1] written after commit" 50 (Db.Weights.get w [ 1 ]);
  check_int "value tracks reference"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck))

(* ----------------------------- 5. bounded retry with injected sleep --- *)

let retry_recovers_transient_fault () =
  let inst, _, weights = weighted_setup () in
  let ck =
    unwrap "prepare"
      (Engine.Eval.prepare_checked nat_ops ~tfa_rounds:1 ~recover:`Rollback ~retries:2
         ~backoff_ms:8.0 inst weights edge_weight_expr)
  in
  let slept = ref [] in
  Engine.Eval.set_retry_sleep (Some (fun s -> slept := s :: !slept));
  Fun.protect ~finally:(fun () -> Engine.Eval.set_retry_sleep None) @@ fun () ->
  let retries_counter = Obs.counter ~scope:"dyn" "retries" in
  let retries0 = Obs.Counter.get retries_counter in
  let fired = ref false in
  Engine.Eval.set_fault_hook ck
    (Some
       (fun _ ->
         if not !fired then (
           fired := true;
           failwith "transient fault")));
  unwrap "update retried to success" (Engine.Eval.update_checked ck "w" [ 2 ] 9);
  Engine.Eval.set_fault_hook ck None;
  check_int "one retry counted" (retries0 + 1) (Obs.Counter.get retries_counter);
  (match !slept with
  | [ s ] -> Alcotest.(check (float 1e-9)) "first backoff is backoff_ms" 0.008 s
  | l -> Alcotest.failf "expected exactly 1 backoff sleep, got %d" (List.length l));
  check_int "retried update landed"
    (Engine.Reference.eval nat_ops inst weights edge_weight_expr)
    (unwrap "value" (Engine.Eval.value_checked ck))

let suite =
  [
    rollback_identity Dyn.General "general/nat" nat_ops ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    rollback_identity Dyn.Ring "ring/int" int_ops ~zero:0 ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    rollback_identity Dyn.Finite "finite/zmod6" z6_ops ~zero:Zmod.Z6.zero
      ~one:Zmod.Z6.one ~mk:Zmod.Z6.of_int;
    replay_matches_live Dyn.General "general/nat" nat_ops ~zero:0 ~one:1
      ~mk:(fun i -> i mod 7);
    replay_matches_live Dyn.Ring "ring/int" int_ops ~zero:0 ~one:1
      ~mk:(fun i -> (i mod 9) - 4);
    replay_matches_live Dyn.Finite "finite/zmod6" z6_ops ~zero:Zmod.Z6.zero
      ~one:Zmod.Z6.one ~mk:Zmod.Z6.of_int;
    Alcotest.test_case "journal file round trip" `Quick journal_file_round_trip;
    Alcotest.test_case "write-through waits for commit" `Quick
      write_through_waits_for_commit;
    Alcotest.test_case "transient fault retried after backoff" `Quick
      retry_recovers_transient_fault;
  ]
