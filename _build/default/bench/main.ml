(* Benchmark harness reproducing the paper's complexity claims.

   "Aggregate Queries on Sparse Databases" is a theory paper with no
   measurement tables; every experiment here regenerates the SHAPE of a
   theorem's claim (linear preprocessing, constant vs logarithmic updates,
   constant delay, crossovers against naive baselines). The experiment ids
   E1–E14 match DESIGN.md §4 and EXPERIMENTS.md.

   Run with: dune exec bench/main.exe            (all experiments)
             dune exec bench/main.exe -- E3 E9   (a subset)            *)

open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let nat_ops = Intf.ops_of_module (module Instances.Nat)
let int_ops = Intf.ops_of_ring (module Instances.Int_ring)
let bool_ops = Intf.ops_of_finite (module Instances.Bool)
let trop_ops = Intf.ops_of_module (module Tropical.Min_plus)

(* --- tiny timing toolkit (CPU seconds) --- *)

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (Sys.time () -. t0, r)

(* time [reps] executions; returns seconds per execution *)
let time_per reps f =
  let t0 = Sys.time () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Sys.time () -. t0) /. float_of_int reps

let pf = Printf.printf
let header title = pf "\n=== %s ===\n" title
let row fmt = pf fmt

(* --- shared queries and workloads --- *)

let triangle_count =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]) )

let phi_path2 =
  Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]

let rng = Graphs.Rand.create 20260705

let random_matrix ~k ~n ~maxv =
  Array.init k (fun _ -> Array.init n (fun _ -> Graphs.Rand.int rng maxv))

(* ---------------------------------------------------------------- E1 *)

let e1 () =
  header "E1  Theorem 6: circuit compilation is linear-time (triangle query)";
  pf "%-22s %8s %10s %10s %8s %8s %8s\n" "workload" "n" "compile_s" "us/elem" "gates/n" "depth"
    "permrows";
  List.iter
    (fun (name, g) ->
      let inst = Db.Instance.of_graph g in
      let n = Db.Instance.n inst in
      let t, (c, _m) =
        time (fun () -> Engine.Compile.compile ~tfa_rounds:1 ~zero:0 ~one:1 inst triangle_count)
      in
      let s = Circuits.Circuit.stats c in
      row "%-22s %8d %10.3f %10.1f %8.1f %8d %8d\n" name n t
        (t *. 1e6 /. float_of_int n)
        (float_of_int s.Circuits.Circuit.gates /. float_of_int n)
        s.Circuits.Circuit.depth s.Circuits.Circuit.max_perm_rows)
    [
      ("tri-grid 15x15", Graphs.Gen.triangulated_grid 15 15);
      ("tri-grid 22x22", Graphs.Gen.triangulated_grid 22 22);
      ("tri-grid 32x32", Graphs.Gen.triangulated_grid 32 32);
      ("tri-grid 45x45", Graphs.Gen.triangulated_grid 45 45);
      ("deg<=3 n=500", Graphs.Gen.random_bounded_degree ~seed:1 ~n:500 ~max_deg:3);
      ("deg<=3 n=1000", Graphs.Gen.random_bounded_degree ~seed:2 ~n:1000 ~max_deg:3);
      ("deg<=3 n=2000", Graphs.Gen.random_bounded_degree ~seed:3 ~n:2000 ~max_deg:3);
      ("deg<=3 n=4000", Graphs.Gen.random_bounded_degree ~seed:4 ~n:4000 ~max_deg:3);
    ];
  pf "claim: time/element roughly flat as n grows (linear data complexity)\n"

(* ---------------------------------------------------------------- E2 *)

module Nat_static = Perm.Static.Make (Instances.Nat)
module Nat_naive = Perm.Naive.Make (Instances.Nat)

let e2 () =
  header "E2  Lemma 11: k x n permanent in O_k(n), vs naive O(n^k)";
  pf "%6s %8s %12s %12s %10s\n" "k" "n" "linear_us" "naive_us" "speedup";
  List.iter
    (fun (k, n) ->
      let m = random_matrix ~k ~n ~maxv:5 in
      let reps = max 20 (2000000 / max 1 n) in
      let t_lin = time_per reps (fun () -> Nat_static.perm m) in
      let t_naive =
        if n <= 400 && k <= 3 then time_per (max 3 (2000000 / (n * n))) (fun () -> Nat_naive.perm m)
        else nan
      in
      row "%6d %8d %12.2f %12.1f %10s\n" k n (t_lin *. 1e6) (t_naive *. 1e6)
        (if Float.is_nan t_naive || t_lin < 1e-9 then "-"
         else Printf.sprintf "%.0fx" (t_naive /. t_lin)))
    [
      (2, 100); (2, 1000); (2, 10000); (3, 50); (3, 100); (3, 200); (3, 400);
      (3, 10000); (3, 100000); (4, 100); (4, 50000);
    ];
  pf "claim: linear algorithm flat per-column; naive grows as n^k\n"

(* ------------------------------------------------------------ E3/4/5 *)

let e3 () =
  header "E3  Corollary 13: general-semiring updates are O(log n) (min-plus segment tree)";
  pf "%8s %14s\n" "n" "ns/update";
  List.iter
    (fun n ->
      let m =
        Array.init 3 (fun _ -> Array.init n (fun _ -> Instances.Fin (Graphs.Rand.int rng 1000)))
      in
      let t = Perm.Segtree.create trop_ops m in
      let per =
        time_per 20000 (fun () ->
            Perm.Segtree.set t ~row:(Graphs.Rand.int rng 3) ~col:(Graphs.Rand.int rng n)
              (Instances.Fin (Graphs.Rand.int rng 1000)))
      in
      row "%8d %14.0f\n" n (per *. 1e9))
    [ 1024; 4096; 16384; 65536; 262144 ];
  pf "claim: grows with log n (tight by Proposition 14)\n"

let e4 () =
  header "E4  Corollary 17: ring updates are O(1) (power-sum permanent over Z)";
  pf "%8s %14s\n" "n" "ns/update";
  List.iter
    (fun n ->
      let m = random_matrix ~k:3 ~n ~maxv:1000 in
      let t = Perm.Ring.create int_ops m in
      let per =
        time_per 20000 (fun () ->
            Perm.Ring.set t ~row:(Graphs.Rand.int rng 3) ~col:(Graphs.Rand.int rng n)
              (Graphs.Rand.int rng 1000))
      in
      row "%8d %14.0f\n" n (per *. 1e9))
    [ 1024; 4096; 16384; 65536; 262144 ];
  pf "claim: flat in n\n"

let e5 () =
  header "E5  Corollary 20: finite-semiring updates are O(1) (boolean counting permanent)";
  pf "%8s %14s %16s\n" "n" "ns/update" "ns/update+query";
  List.iter
    (fun n ->
      let m = Array.init 3 (fun _ -> Array.init n (fun _ -> Graphs.Rand.int rng 2 = 0)) in
      let t = Perm.Finite.create bool_ops m in
      let per =
        time_per 20000 (fun () ->
            Perm.Finite.set t ~row:(Graphs.Rand.int rng 3) ~col:(Graphs.Rand.int rng n)
              (Graphs.Rand.int rng 2 = 0))
      in
      let per_q =
        time_per 2000 (fun () ->
            Perm.Finite.set t ~row:(Graphs.Rand.int rng 3) ~col:(Graphs.Rand.int rng n)
              (Graphs.Rand.int rng 2 = 0);
            Perm.Finite.perm t)
      in
      row "%8d %14.0f %16.0f\n" n (per *. 1e9) (per_q *. 1e9))
    [ 1024; 16384; 262144 ];
  pf "claim: flat in n (counting gates, Lemma 18)\n"

(* ---------------------------------------------------------------- E6 *)

let e6 () =
  header "E6  Theorem 8: weighted query evaluation and per-tuple queries";
  pf "%-16s %8s %12s %14s\n" "workload" "n" "prepare_s" "us/query";
  let wdeg =
    Logic.Expr.Sum
      ( [ "y" ],
        Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )
  in
  List.iter
    (fun side ->
      let g = Graphs.Gen.triangulated_grid side side in
      let inst = Db.Instance.of_graph g in
      let n = Db.Instance.n inst in
      let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
      Db.Weights.fill_unary w ~n (fun i -> (i mod 17) + 1);
      let weights = Db.Weights.bundle [ w ] in
      let tprep, ev = time (fun () -> Engine.Eval.prepare nat_ops ~tfa_rounds:1 inst weights wdeg) in
      let tq = time_per 500 (fun () -> Engine.Eval.query ev [ Graphs.Rand.int rng n ]) in
      row "%-16s %8d %12.3f %14.1f\n"
        (Printf.sprintf "tri-grid %dx%d" side side)
        n tprep (tq *. 1e6))
    [ 12; 18; 25 ];
  pf "claim: preparation linear; per-tuple queries polylog (2|x| temporary updates)\n"

(* ---------------------------------------------------------------- E7 *)

let e7 () =
  header "E7  Proposition 14: sorting through min-plus permanent updates";
  pf "%8s %12s %14s %8s\n" "n" "total_s" "ns/extract" "sorted";
  List.iter
    (fun n ->
      let keys = Array.init n (fun _ -> Graphs.Rand.int rng 1000000) in
      let m = [| Array.map (fun x -> Instances.Fin x) keys |] in
      let t = Perm.Segtree.create trop_ops m in
      let out = Array.make n 0 in
      let total, () =
        time (fun () ->
            for i = 0 to n - 1 do
              (* descend the tree to a position achieving the minimum *)
              let rec descend node =
                if node >= t.Perm.Segtree.size then node - t.Perm.Segtree.size
                else begin
                  let left = t.Perm.Segtree.nodes.(2 * node).(1) in
                  if Instances.equal_extended left t.Perm.Segtree.nodes.(node).(1) then
                    descend (2 * node)
                  else descend ((2 * node) + 1)
                end
              in
              let col = descend 1 in
              (match Perm.Segtree.perm t with
              | Instances.Fin value -> out.(i) <- value
              | Instances.Inf -> failwith "empty");
              Perm.Segtree.set t ~row:0 ~col Instances.Inf
            done)
      in
      let expected = Array.copy keys in
      Array.sort compare expected;
      let sorted = out = expected in
      row "%8d %12.3f %14.0f %8b\n" n total (total *. 1e9 /. float_of_int n) sorted)
    [ 1000; 10000; 100000 ];
  pf "claim: n extract-mins through permanent updates sort correctly in O(n log n);\n";
  pf "       hence sub-logarithmic updates would beat comparison sorting\n"

(* ---------------------------------------------------------------- E8 *)

let e8 () =
  header "E8  Theorem 22: provenance enumeration with constant delay";
  pf "%-16s %8s %10s %10s %12s %14s\n" "workload" "n" "prepare_s" "monomials" "enum_s"
    "ns/monomial";
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
            Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
            Logic.Expr.Weight ("w", [ v "z"; v "x" ]);
          ] )
  in
  List.iter
    (fun side ->
      let g = Graphs.Gen.triangulated_grid side side in
      let inst = Db.Instance.of_graph g in
      let tprep, prov =
        time (fun () ->
            Provenance.Prov_circuit.prepare inst expr ~weight:(fun _ tuple ->
                if Db.Instance.mem inst "E" tuple then [ [ tuple ] ] else []))
      in
      let tenum, count =
        time (fun () -> Enum.Iter.length (Provenance.Prov_circuit.enumerate prov))
      in
      row "%-16s %8d %10.3f %10d %12.3f %14.0f\n"
        (Printf.sprintf "tri-grid %dx%d" side side)
        (Db.Instance.n inst) tprep count tenum
        (tenum *. 1e9 /. float_of_int (max 1 count)))
    [ 10; 16; 24; 34 ];
  pf "claim: ns/monomial roughly flat (constant delay) while n grows\n"

(* ---------------------------------------------------------------- E9 *)

let e9 () =
  header "E9  Theorem 24: FO answer enumeration (linear preprocessing, constant delay)";
  pf "%-16s %8s %10s %10s %12s %12s %12s\n" "workload" "n" "prepare_s" "answers" "ns/answer"
    "first_us" "naive_s";
  List.iter
    (fun side ->
      let g = Graphs.Gen.grid side side in
      let inst = Db.Instance.of_graph g in
      let n = Db.Instance.n inst in
      let tprep, t = time (fun () -> Fo_enum.prepare inst phi_path2) in
      let it = Fo_enum.enumerate t in
      let tfirst, _ =
        time (fun () ->
            Enum.Iter.reset it;
            Enum.Iter.next it;
            Enum.Iter.current it)
      in
      let tenum, count = time (fun () -> Enum.Iter.length (Fo_enum.enumerate t)) in
      let tnaive =
        if n <= 400 then begin
          let c = ref 0 in
          let tn, () =
            time (fun () ->
                for x = 0 to n - 1 do
                  for y = 0 to n - 1 do
                    for z = 0 to n - 1 do
                      if
                        Db.Instance.mem inst "E" [ x; y ]
                        && Db.Instance.mem inst "E" [ y; z ]
                        && x <> z
                      then incr c
                    done
                  done
                done)
          in
          ignore !c;
          tn
        end
        else nan
      in
      row "%-16s %8d %10.3f %10d %12.0f %12.1f %12s\n"
        (Printf.sprintf "grid %dx%d" side side)
        n tprep count
        (tenum *. 1e9 /. float_of_int (max 1 count))
        (tfirst *. 1e6)
        (if Float.is_nan tnaive then "-" else Printf.sprintf "%.3f" tnaive))
    [ 12; 18; 25; 35 ];
  pf "claim: preprocessing linear, delay flat; the naive n^3 scan explodes\n"

(* --------------------------------------------------------------- E10 *)

let e10 () =
  header "E10 Theorem 24 (dynamic): Gaifman-preserving updates";
  let g = Graphs.Gen.grid 20 20 in
  let inst = Db.Instance.of_graph g in
  let gaifman = Db.Instance.gaifman inst in
  let tprep, t = time (fun () -> Fo_enum.prepare ~dynamic:true inst phi_path2) in
  let edges = Array.of_list (Db.Instance.tuples (Fo_enum.instance t) "E") in
  let tupd =
    time_per 2000 (fun () ->
        let tup = edges.(Graphs.Rand.int rng (Array.length edges)) in
        Fo_enum.set_tuple t ~gaifman "E" tup false;
        Fo_enum.set_tuple t ~gaifman "E" tup true)
  in
  let treenum, count = time (fun () -> Enum.Iter.length (Fo_enum.enumerate t)) in
  let trecompile, _ = time (fun () -> Fo_enum.prepare ~dynamic:true inst phi_path2) in
  pf "prepare: %.3fs   update: %.1f us   re-enumerate %d answers: %.3fs   full re-prepare: %.3fs\n"
    tprep
    (tupd *. 1e6 /. 2.)
    count treenum trecompile;
  pf "claim: updates O(1); enumeration resumes without recompiling (%.1fx cheaper)\n"
    (trecompile /. max 1e-9 treenum)

(* --------------------------------------------------------------- E11 *)

let e11 () =
  header "E11 Theorem 26: nested multi-semiring query evaluation (neighbor average)";
  pf "%8s %12s\n" "n" "eval_s";
  List.iter
    (fun n ->
      let g = Graphs.Gen.random_bounded_degree ~seed:11 ~n ~max_deg:4 in
      let inst = Db.Instance.of_graph g in
      let inst = Db.Instance.with_relation inst "V" ~arity:1 (List.init n (fun i -> [ i ])) in
      let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:(Value.I 0) in
      Db.Weights.fill_unary w ~n (fun i -> Value.I ((i mod 23) + 1));
      let st = Nested.make_structure inst [ (w, Value.nat_sr) ] in
      let ewx = Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr) in
      let sum_w = Nested.Sum ([ "y" ], Nested.Mul [ ewx; Nested.Srel ("w", [ v "y" ]) ]) in
      let count = Nested.Sum ([ "y" ], ewx) in
      let avg = Nested.Guarded ("V", [ "x" ], Value.div_nat_rat, [ sum_w; count ]) in
      let best =
        Nested.Sum ([ "x" ], Nested.Guarded ("V", [ "x" ], Value.rat_to_rat_max, [ avg ]))
      in
      let tev, _ = time (fun () -> Nested.eval st best) in
      row "%8d %12.3f\n" n tev)
    [ 200; 400; 800; 1600 ];
  pf "claim: near-linear growth (O(n log n) in general)\n"

(* --------------------------------------------------------------- E12 *)

let e12 () =
  header "E12 Example 9: PageRank round as a weighted query over Q (ring: O(1) updates)";
  pf "%8s %12s %14s %14s\n" "n" "prepare_s" "us/update" "us/query";
  List.iter
    (fun n ->
      let g = Graphs.Gen.random_sparse ~seed:12 ~n ~avg_deg:4 in
      let inst = Db.Instance.of_graph g in
      let d = Rat.of_ints 85 100 in
      let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:Rat.zero in
      Db.Weights.fill_unary w ~n (fun _ -> Rat.of_ints 1 n);
      let linv = Db.Weights.create ~name:"linv" ~arity:1 ~zero:Rat.zero in
      Db.Weights.fill_unary linv ~n (fun y ->
          let deg = Graphs.Graph.degree g y in
          if deg = 0 then Rat.zero else Rat.of_ints 1 deg);
      let expr =
        Logic.Expr.Add
          [
            Logic.Expr.Const (Rat.mul (Rat.sub Rat.one d) (Rat.of_ints 1 n));
            Logic.Expr.Mul
              [
                Logic.Expr.Const d;
                Logic.Expr.Sum
                  ( [ "y" ],
                    Logic.Expr.Mul
                      [
                        Logic.Expr.Guard (Logic.Formula.Rel ("E", [ v "y"; v "x" ]));
                        Logic.Expr.Weight ("w", [ v "y" ]);
                        Logic.Expr.Weight ("linv", [ v "y" ]);
                      ] );
              ];
          ]
      in
      let rat_ops = Intf.ops_of_ring (module Rat.Ring) in
      let tprep, t =
        time (fun () ->
            Engine.Eval.prepare rat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ w; linv ]) expr)
      in
      let tu =
        time_per 500 (fun () ->
            Engine.Eval.update t "w"
              [ Graphs.Rand.int rng n ]
              (Rat.of_ints 1 (2 + Graphs.Rand.int rng 50)))
      in
      let tq = time_per 500 (fun () -> Engine.Eval.query t [ Graphs.Rand.int rng n ]) in
      row "%8d %12.3f %14.1f %14.1f\n" n tprep (tu *. 1e6) (tq *. 1e6))
    [ 300; 1000; 3000 ];
  pf "claim: updates and queries flat in n (constant semiring ops on small rationals)\n"

(* --------------------------------------------------------------- E13 *)

let e13 () =
  header "E13 Example 25: local-search independent set via dynamic enumeration";
  pf "%8s %12s %10s %12s\n" "n" "total_s" "rounds" "us/round";
  List.iter
    (fun side ->
      let g = Graphs.Gen.grid side side in
      let n = Graphs.Graph.n g in
      let inst = Db.Instance.of_graph g in
      let inst = Db.Instance.with_relation inst "S" ~arity:1 [] in
      let inst = Db.Instance.with_relation inst "B" ~arity:1 [] in
      let phi =
        Logic.Formula.And
          [
            Logic.Formula.Not (Logic.Formula.Rel ("S", [ v "x" ]));
            Logic.Formula.Not (Logic.Formula.Rel ("B", [ v "x" ]));
          ]
      in
      let total, rounds =
        time (fun () ->
            let t = Fo_enum.prepare ~dynamic:true inst phi in
            let gaifman = Db.Instance.gaifman (Fo_enum.instance t) in
            let blocked = Array.make n 0 in
            let rounds = ref 0 in
            let continue = ref true in
            while !continue do
              let it = Fo_enum.enumerate t in
              Enum.Iter.next it;
              match Enum.Iter.current it with
              | None -> continue := false
              | Some a ->
                  let x = a.(0) in
                  incr rounds;
                  Fo_enum.set_tuple t ~gaifman "S" [ x ] true;
                  List.iter
                    (fun y ->
                      blocked.(y) <- blocked.(y) + 1;
                      if blocked.(y) = 1 then Fo_enum.set_tuple t ~gaifman "B" [ y ] true)
                    (Graphs.Graph.neighbors g x)
            done;
            !rounds)
      in
      row "%8d %12.3f %10d %12.1f\n" n total rounds (total *. 1e6 /. float_of_int rounds))
    [ 10; 14; 20 ];
  pf "claim: whole local search near-linear; each improvement round cheap\n"

(* --------------------------------------------------------------- E14 *)

let e14 () =
  header "E14 Ablations: coloring rounds, and the three update strategies";
  let g = Graphs.Gen.triangulated_grid 20 20 in
  let inst = Db.Instance.of_graph g in
  pf "(a) tfa rounds on tri-grid 20x20 (n=400), triangle query:\n";
  pf "%8s %8s %10s %8s %12s\n" "rounds" "colors" "subsets" "depth" "compile_s";
  List.iter
    (fun r ->
      let t, (_, m) =
        time (fun () ->
            Engine.Compile.compile ~tfa_rounds:r ~max_depth:12 ~zero:0 ~one:1 inst triangle_count)
      in
      row "%8d %8d %10d %8d %12.3f\n" r m.Engine.Compile.num_colors m.Engine.Compile.num_subsets
        m.Engine.Compile.max_forest_depth t)
    [ 1; 2; 3 ];
  pf "(b) dynamic strategies on the same weighted query (n=400):\n";
  pf "%-22s %14s\n" "strategy" "us/update";
  let wdeg =
    Logic.Expr.Sum
      ( [ "x"; "y" ],
        Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )
  in
  let n = Db.Instance.n inst in
  List.iter
    (fun (name, run) -> row "%-22s %14.1f\n" name (run () *. 1e6))
    [
      ( "general (log n)",
        fun () ->
          let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
          Db.Weights.fill_unary w ~n (fun i -> i mod 7);
          let t =
            Engine.Eval.prepare nat_ops ~mode:Circuits.Dyn.General ~tfa_rounds:1 inst
              (Db.Weights.bundle [ w ]) wdeg
          in
          time_per 1000 (fun () ->
              Engine.Eval.update t "w" [ Graphs.Rand.int rng n ] (Graphs.Rand.int rng 7)) );
      ( "ring (const)",
        fun () ->
          let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
          Db.Weights.fill_unary w ~n (fun i -> i mod 7);
          let t =
            Engine.Eval.prepare int_ops ~mode:Circuits.Dyn.Ring ~tfa_rounds:1 inst
              (Db.Weights.bundle [ w ]) wdeg
          in
          time_per 1000 (fun () ->
              Engine.Eval.update t "w" [ Graphs.Rand.int rng n ] (Graphs.Rand.int rng 7)) );
      ( "finite bool (const)",
        fun () ->
          let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:false in
          Db.Weights.fill_unary w ~n (fun i -> i mod 2 = 0);
          let t =
            Engine.Eval.prepare bool_ops ~mode:Circuits.Dyn.Finite ~tfa_rounds:1 inst
              (Db.Weights.bundle [ w ]) wdeg
          in
          time_per 1000 (fun () ->
              Engine.Eval.update t "w" [ Graphs.Rand.int rng n ] (Graphs.Rand.int rng 2 = 0)) );
    ]

(* --------------------------------------------- Bechamel micro-benches *)

let micro () =
  header "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let open Bechamel in
  let m3 = random_matrix ~k:3 ~n:1000 ~maxv:5 in
  let seg =
    Perm.Segtree.create trop_ops
      (Array.init 3 (fun _ -> Array.init 4096 (fun _ -> Instances.Fin (Graphs.Rand.int rng 100))))
  in
  let ringp = Perm.Ring.create int_ops (random_matrix ~k:3 ~n:4096 ~maxv:100) in
  let finp =
    Perm.Finite.create bool_ops
      (Array.init 3 (fun _ -> Array.init 4096 (fun _ -> Graphs.Rand.bool rng)))
  in
  let tests =
    Test.make_grouped ~name:"perm"
      [
        Test.make ~name:"static-k3-n1000" (Staged.stage (fun () -> Nat_static.perm m3));
        Test.make ~name:"segtree-update-4096"
          (Staged.stage (fun () ->
               Perm.Segtree.set seg ~row:1 ~col:(Graphs.Rand.int rng 4096)
                 (Instances.Fin (Graphs.Rand.int rng 100))));
        Test.make ~name:"ring-update-4096"
          (Staged.stage (fun () ->
               Perm.Ring.set ringp ~row:1 ~col:(Graphs.Rand.int rng 4096) (Graphs.Rand.int rng 100)));
        Test.make ~name:"finite-update-4096"
          (Staged.stage (fun () ->
               Perm.Finite.set finp ~row:1 ~col:(Graphs.Rand.int rng 4096) (Graphs.Rand.bool rng)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          pf "%-32s %12.1f ns/run  (r2=%s)\n" name est
            (match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-")
      | _ -> pf "%-32s (no estimate)\n" name)
    results

(* ----------------------------------------------------------- driver *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13);
    ("E14", e14); ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let selected =
    if requested = [] then experiments
    else List.filter (fun (name, _) -> List.mem name requested) experiments
  in
  pf "sparseq benchmark harness — reproduction of Torunczyk, PODS 2020\n";
  pf "experiment index in DESIGN.md section 4; results recorded in EXPERIMENTS.md\n";
  List.iter (fun (_, f) -> f ()) selected
