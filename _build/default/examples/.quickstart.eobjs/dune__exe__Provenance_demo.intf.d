examples/provenance_demo.mli:
