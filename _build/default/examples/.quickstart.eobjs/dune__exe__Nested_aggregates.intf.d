examples/nested_aggregates.mli:
