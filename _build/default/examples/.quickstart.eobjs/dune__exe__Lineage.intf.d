examples/lineage.mli:
