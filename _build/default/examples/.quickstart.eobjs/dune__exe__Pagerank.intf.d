examples/pagerank.mli:
