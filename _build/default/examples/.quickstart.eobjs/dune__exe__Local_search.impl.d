examples/local_search.ml: Array Db Enum Fo_enum Fun Graphs List Logic Printf
