examples/lineage.ml: Array Db Engine Graphs Hashtbl Instances Intf List Logic Printf Semiring String
