examples/probability.mli:
