examples/provenance_demo.ml: Array Db Enum Graphs List Logic Printf Provenance String
