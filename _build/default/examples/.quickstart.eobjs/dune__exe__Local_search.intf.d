examples/local_search.mli:
