examples/quickstart.ml: Array Db Engine Enum Fo_enum Format Graphs Instances Intf List Logic Printf Semiring String Tropical
