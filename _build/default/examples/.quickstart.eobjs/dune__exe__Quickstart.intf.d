examples/quickstart.mli:
