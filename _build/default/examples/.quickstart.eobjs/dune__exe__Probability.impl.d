examples/probability.ml: Db Engine Graphs Intf List Logic Printf Rat Semiring
