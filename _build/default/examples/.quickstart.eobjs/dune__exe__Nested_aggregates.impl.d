examples/nested_aggregates.ml: Array Db Enum Format Fun Graphs List Logic Nested Printf Semiring String Value
