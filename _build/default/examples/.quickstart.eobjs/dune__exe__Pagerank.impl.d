examples/pagerank.ml: Array Db Engine Graphs Intf Logic Printf Rat Semiring
