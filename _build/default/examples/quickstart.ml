(* Quickstart: compile one weighted query, evaluate it in two semirings,
   and maintain it under weight updates.

   Run with: dune exec examples/quickstart.exe *)

open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let () =
  (* a planar workload: the triangulated 20×20 grid *)
  let g = Graphs.Gen.triangulated_grid 20 20 in
  let inst = Db.Instance.of_graph g in
  Printf.printf "database: %d elements, %d tuples\n" (Db.Instance.n inst)
    (Db.Instance.size inst);

  (* Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x) *)
  let query w_of =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]);
            w_of "x" "y";
            w_of "y" "z";
            w_of "z" "x";
          ] )
  in
  let weighted = query (fun a b -> Logic.Expr.Weight ("w", [ v a; v b ])) in

  (* 1. bag semantics over (ℕ, +, ·): with w ≡ 1 this counts directed
     triangles *)
  let ones = Db.Weights.create ~name:"w" ~arity:2 ~zero:0 in
  Db.Weights.fill_from_relation ones inst "E" (fun _ -> 1);
  let nat_ops = Intf.ops_of_module (module Instances.Nat) in
  let count = Engine.Eval.evaluate nat_ops inst (Db.Weights.bundle [ ones ]) weighted in
  Printf.printf "directed triangles: %d\n" count;

  (* 2. the SAME query in (ℕ ∪ {∞}, min, +): minimum-cost triangle *)
  let open Instances in
  let costs = Db.Weights.create ~name:"w" ~arity:2 ~zero:Inf in
  Db.Weights.fill_from_relation costs inst "E" (fun tup ->
      Fin (match tup with [ a; b ] -> ((a * 13) + (b * 7)) mod 101 | _ -> 0));
  let trop_ops = Intf.ops_of_module (module Tropical.Min_plus) in
  let t = Engine.Eval.prepare trop_ops inst (Db.Weights.bundle [ costs ]) weighted in
  Format.printf "cheapest triangle cost: %a@." pp_extended (Engine.Eval.value t);

  (* 3. dynamic maintenance (Theorem 8): update a few edge costs; the
     value is maintained in O(log n) per update *)
  let edges = Db.Instance.tuples inst "E" in
  List.iteri
    (fun i tup ->
      if i < 5 then begin
        Engine.Eval.update t "w" tup (Fin 0);
        Format.printf "after zeroing w%s: cheapest = %a@."
          (String.concat "," (List.map string_of_int tup) |> Printf.sprintf "(%s)")
          pp_extended (Engine.Eval.value t)
      end)
    edges;

  (* 4. constant-delay enumeration of the triangles themselves (Thm 24) *)
  let phi = Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ] in
  let enum = Fo_enum.prepare inst phi in
  let it = Fo_enum.enumerate enum in
  Printf.printf "first five triangle answers:\n";
  let rec first k =
    if k > 0 then begin
      Enum.Iter.next it;
      match Enum.Iter.current it with
      | Some a ->
          Printf.printf "  (%s)\n" (String.concat "," (Array.to_list (Array.map string_of_int a)));
          first (k - 1)
      | None -> ()
    end
  in
  first 5;
  let all = Fo_enum.answers enum in
  Printf.printf "total answers: %d (= %d, the count above)\n" (List.length all) count
