(* Example 4 of the paper: the probability that a random triple (a,b,c),
   drawn from three independent distributions p1, p2, p3 on the domain,
   satisfies φ(x,y,z) — computed exactly over the rationals as

     f = Σ_{x,y,z} [φ(x,y,z)] · p1(x) · p2(y) · p3(z),

   in linear time, with constant-time maintenance under distribution
   updates (ℚ is a ring, Corollary 17).

   Run with: dune exec examples/probability.exe *)

open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let () =
  let g = Graphs.Gen.grid 12 12 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in

  (* φ(x,y,z) = E(x,y) ∧ E(y,z): a random triple forms a 2-path *)
  let phi = Logic.Formula.And [ e "x" "y"; e "y" "z" ] in
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Guard phi;
            Logic.Expr.Weight ("p1", [ v "x" ]);
            Logic.Expr.Weight ("p2", [ v "y" ]);
            Logic.Expr.Weight ("p3", [ v "z" ]);
          ] )
  in
  (* p1 uniform; p2 proportional to degree; p3 concentrated on a corner *)
  let mk name fill =
    let w = Db.Weights.create ~name ~arity:1 ~zero:Rat.zero in
    Db.Weights.fill_unary w ~n fill;
    w
  in
  let p1 = mk "p1" (fun _ -> Rat.of_ints 1 n) in
  let total_deg = List.init n (Graphs.Graph.degree g) |> List.fold_left ( + ) 0 in
  let p2 = mk "p2" (fun i -> Rat.of_ints (Graphs.Graph.degree g i) total_deg) in
  let p3 = mk "p3" (fun i -> if i < 4 then Rat.of_ints 1 4 else Rat.zero) in

  let rat_ops = Intf.ops_of_ring (module Rat.Ring) in
  let t =
    Engine.Eval.prepare rat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ p1; p2; p3 ]) expr
  in
  let p = Engine.Eval.value t in
  Printf.printf "P[ (a,b,c) forms a 2-path ] = %s ≈ %.8f\n" (Rat.to_string p) (Rat.to_float p);

  (* sanity: Monte Carlo estimate with the same distributions *)
  let rng = Graphs.Rand.create 99 in
  let sample_p2 () =
    let r = Graphs.Rand.int rng total_deg in
    let rec go i acc =
      let acc = acc + Graphs.Graph.degree g i in
      if r < acc then i else go (i + 1) acc
    in
    go 0 0
  in
  let trials = 200000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let a = Graphs.Rand.int rng n in
    let b = sample_p2 () in
    let c = Graphs.Rand.int rng 4 in
    if Db.Instance.mem inst "E" [ a; b ] && Db.Instance.mem inst "E" [ b; c ] then incr hits
  done;
  Printf.printf "Monte Carlo (%d trials): ≈ %.8f\n" trials
    (float_of_int !hits /. float_of_int trials);

  (* dynamic: shift p3's mass and re-read — constant-time updates *)
  Engine.Eval.update t "p3" [ 0 ] Rat.zero;
  Engine.Eval.update t "p3" [ n - 1 ] (Rat.of_ints 1 4);
  let p' = Engine.Eval.value t in
  Printf.printf "after moving p3 mass to the far corner: %.8f\n" (Rat.to_float p')
