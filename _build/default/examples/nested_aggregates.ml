(* Nested weighted queries mixing several semirings (FOG[C], Section 7):
   both queries from the paper's introduction, evaluated by the Theorem 26
   induction, plus constant-delay enumeration of a boolean-valued nested
   query's answers.

   Run with: dune exec examples/nested_aggregates.exe *)

open Semiring

let v x = Logic.Term.Var x

let () =
  let g = Graphs.Gen.random_bounded_degree ~seed:7 ~n:400 ~max_deg:4 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  let inst = Db.Instance.with_relation inst "V" ~arity:1 (List.init n (fun i -> [ i ])) in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:(Value.I 0) in
  Db.Weights.fill_unary w ~n (fun i -> Value.I (((i * 17) + 3) mod 50));
  let st = Nested.make_structure inst [ (w, Value.nat_sr) ] in

  (* 1.  max_x (Σ_y [E(x,y)]·w(y)) / (Σ_y [E(x,y)])
        — runs in ℕ inside, ℚ at the division, (ℚ ∪ {−∞}, max, +) outside *)
  let ewx = Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr) in
  let sum_w = Nested.Sum ([ "y" ], Nested.Mul [ ewx; Nested.Srel ("w", [ v "y" ]) ]) in
  let count = Nested.Sum ([ "y" ], ewx) in
  let avg = Nested.Guarded ("V", [ "x" ], Value.div_nat_rat, [ sum_w; count ]) in
  let best =
    Nested.Sum ([ "x" ], Nested.Guarded ("V", [ "x" ], Value.rat_to_rat_max, [ avg ]))
  in
  Format.printf "max over x of avg weight of x's neighbors: %a@." Value.pp
    (Nested.eval st best);

  (* 2.  f(x) = ∃y. E(x,y) ∧ (w(y) > Σ_z [E(y,z)]·w(z))
        — boolean output: query it, then enumerate its answers *)
  let inner =
    Nested.Sum
      ( [ "z" ],
        Nested.Mul
          [
            Nested.Iverson (Nested.Brel ("E", [ v "y"; v "z" ]), Value.nat_sr);
            Nested.Srel ("w", [ v "z" ]);
          ] )
  in
  let dominant =
    Nested.Guarded ("V", [ "y" ], Value.gt, [ Nested.Srel ("w", [ v "y" ]); inner ])
  in
  let f_x =
    Nested.Sum ([ "y" ], Nested.Mul [ Nested.Brel ("E", [ v "x"; v "y" ]); dominant ])
  in
  let fv, q = Nested.query st f_x in
  Printf.printf "free variables of f: %s\n" (String.concat "," fv);
  let yes = List.filter (fun x -> Value.as_bool (q [ x ])) (List.init n Fun.id) in
  Printf.printf "%d vertices have a dominant neighbor\n" (List.length yes);

  let _, it = Nested.enumerate st f_x in
  let enumerated = List.map (fun a -> a.(0)) (Enum.Iter.to_list it) in
  Printf.printf "enumeration agrees: %b (%d answers, constant delay)\n"
    (List.sort compare enumerated = yes)
    (List.length enumerated);

  (* 3.  an aggregate threshold: count vertices whose weighted degree is
        at least 100, entirely inside the nested framework *)
  let weighted_deg = sum_w in
  let heavy =
    Nested.Guarded
      ("V", [ "x" ], Value.geq, [ weighted_deg; Nested.Const (Value.I 100, Value.nat_sr) ])
  in
  let how_many = Nested.Sum ([ "x" ], Nested.Iverson (heavy, Value.nat_sr)) in
  Format.printf "vertices with weighted degree ≥ 100: %a@." Value.pp (Nested.eval st how_many)
