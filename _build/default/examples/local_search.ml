(* Example 25 of the paper: local search for independent set driven by the
   dynamic enumeration data structure (Theorem 24). The current solution
   lives in unary predicates (which never change the Gaifman graph); each
   improvement step asks the enumerator for a witness in constant time and
   applies a constant number of Gaifman-preserving updates.

   Improvement rule (locality radius 1): add any vertex that is neither in
   the solution S nor blocked by a neighbor in S,

       φ(x) = ¬S(x) ∧ ¬B(x),

   where B (blocked) is maintained alongside S. The loop reaches a maximal
   independent set in a linear number of constant-time rounds.

   Run with: dune exec examples/local_search.exe *)

let () =
  let g = Graphs.Gen.grid 30 30 in
  let n = Graphs.Graph.n g in
  let inst = Db.Instance.of_graph g in
  (* S and B start empty; they are unary, so updates are always
     Gaifman-preserving *)
  let inst = Db.Instance.with_relation inst "S" ~arity:1 [] in
  let inst = Db.Instance.with_relation inst "B" ~arity:1 [] in
  let phi =
    Logic.Formula.And
      [
        Logic.Formula.Not (Logic.Formula.Rel ("S", [ Logic.Term.Var "x" ]));
        Logic.Formula.Not (Logic.Formula.Rel ("B", [ Logic.Term.Var "x" ]));
      ]
  in
  let t = Fo_enum.prepare ~dynamic:true inst phi in
  let gaifman = Db.Instance.gaifman (Fo_enum.instance t) in
  let blocked_count = Array.make n 0 in
  let in_s = Array.make n false in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue do
    let it = Fo_enum.enumerate t in
    Enum.Iter.next it;
    match Enum.Iter.current it with
    | None -> continue := false
    | Some a ->
        let x = a.(0) in
        incr rounds;
        in_s.(x) <- true;
        Fo_enum.set_tuple t ~gaifman "S" [ x ] true;
        List.iter
          (fun y ->
            blocked_count.(y) <- blocked_count.(y) + 1;
            if blocked_count.(y) = 1 then Fo_enum.set_tuple t ~gaifman "B" [ y ] true)
          (Graphs.Graph.neighbors g x)
  done;
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_s in
  Printf.printf "local search on the %d-vertex grid: %d rounds, independent set of size %d\n"
    n !rounds size;
  (* verify independence and maximality *)
  let independent =
    List.for_all (fun (u, v) -> not (in_s.(u) && in_s.(v))) (Graphs.Graph.edges g)
  in
  let maximal =
    List.for_all
      (fun x -> in_s.(x) || List.exists (fun y -> in_s.(y)) (Graphs.Graph.neighbors g x))
      (List.init n Fun.id)
  in
  Printf.printf "independent: %b, maximal: %b\n" independent maximal;
  Printf.printf "(grid optimum is n/2 = %d; local search with radius 1 guarantees only maximality)\n"
    (n / 2)
