(* Example 9 of the paper: one PageRank round as a weighted query over the
   field of rationals,

     f(x) = (1−d)/N + d · Σ_y [E(y,x)] · w(y) · linv(y),

   where w holds the previous round's ranks and linv(y) = 1/outdeg(y).
   ℚ is a ring, so the compiled circuit supports CONSTANT-time weight
   updates (Corollary 17) and each round is n updates + n queries.

   Run with: dune exec examples/pagerank.exe *)

open Semiring

let v x = Logic.Term.Var x

let () =
  let g = Graphs.Gen.random_sparse ~seed:42 ~n:300 ~avg_deg:4 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  let d = Rat.of_ints 85 100 in
  let teleport = Rat.mul (Rat.sub Rat.one d) (Rat.of_ints 1 n) in

  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:Rat.zero in
  Db.Weights.fill_unary w ~n (fun _ -> Rat.of_ints 1 n);
  let linv = Db.Weights.create ~name:"linv" ~arity:1 ~zero:Rat.zero in
  Db.Weights.fill_unary linv ~n (fun y ->
      let deg = Graphs.Graph.degree g y in
      if deg = 0 then Rat.zero else Rat.of_ints 1 deg);

  let expr =
    Logic.Expr.Add
      [
        Logic.Expr.Const teleport;
        Logic.Expr.Mul
          [
            Logic.Expr.Const d;
            Logic.Expr.Sum
              ( [ "y" ],
                Logic.Expr.Mul
                  [
                    Logic.Expr.Guard (Logic.Formula.Rel ("E", [ v "y"; v "x" ]));
                    Logic.Expr.Weight ("w", [ v "y" ]);
                    Logic.Expr.Weight ("linv", [ v "y" ]);
                  ] );
          ];
      ]
  in
  let rat_ops = Intf.ops_of_ring (module Rat.Ring) in
  let t = Engine.Eval.prepare rat_ops inst (Db.Weights.bundle [ w; linv ]) expr in
  Printf.printf "PageRank on %d vertices, %d edges (d = 0.85, exact rationals)\n" n
    (Graphs.Graph.m g);

  let rounds = 8 in
  for round = 1 to rounds do
    (* query the next rank of every vertex, then install it *)
    let next = Array.init n (fun x -> Engine.Eval.query t [ x ]) in
    for x = 0 to n - 1 do
      Db.Weights.set w [ x ] next.(x);
      Engine.Eval.update t "w" [ x ] next.(x)
    done;
    let total = Array.fold_left Rat.add Rat.zero next in
    if round = rounds then begin
      let ranked = Array.mapi (fun i r -> (r, i)) next in
      Array.sort (fun (a, _) (b, _) -> Rat.compare b a) ranked;
      Printf.printf "after %d rounds (mass %.4f):\n" round (Rat.to_float total);
      Array.iteri
        (fun i (r, x) ->
          if i < 5 then
            Printf.printf "  #%d vertex %3d  rank %.6f  (degree %d)\n" (i + 1) x
              (Rat.to_float r) (Graphs.Graph.degree g x))
        ranked
    end
  done;
  (* the dynamic part: perturb one vertex's rank and re-query a neighbor's
     next-round value — two constant-time operations *)
  Engine.Eval.update t "w" [ 0 ] Rat.one;
  let nbr = match Graphs.Graph.neighbors g 0 with x :: _ -> x | [] -> 0 in
  Printf.printf "after boosting vertex 0, next rank of its neighbor %d: %.6f\n" nbr
    (Rat.to_float (Engine.Eval.query t [ nbr ]))
