(* Lineage analysis with a boolean-algebra semiring: every edge is tagged
   with the set of data sources that contributed it, and the SAME compiled
   circuit answers, for a triangle-counting query,

   - in (P(Sources), ∪, ∩):  which sources some derivation depends on
     entirely (intersection along a derivation, union across derivations)
   - in (N, +, ·):           how many derivations there are
   - in the product of both: both answers in one evaluation pass —
     semirings compose, circuits don't change (Theorem 6's universality).

   Run with: dune exec examples/lineage.exe *)

open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

module Sources = Instances.Bitset (struct let universe_size = 4 end)
module CountAndLineage = Instances.Product (Instances.Nat) (Sources)

let source_names = [| "census"; "osm"; "sensors"; "manual" |]

let () =
  let g = Graphs.Gen.triangulated_grid 8 8 in
  let inst = Db.Instance.of_graph g in
  let n = Db.Instance.n inst in
  Printf.printf "lineage demo: %d elements, %d tuples, 4 sources\n" n (Db.Instance.size inst);

  (* tag each edge with a pseudo-random nonempty set of sources *)
  let rng = Graphs.Rand.create 5 in
  let tag = Hashtbl.create 256 in
  Db.Instance.iter_tuples inst "E" (fun tup ->
      let key = match tup with [ a; b ] -> (min a b, max a b) | _ -> (0, 0) in
      if not (Hashtbl.mem tag key) then
        Hashtbl.replace tag key (1 + Graphs.Rand.int rng 15));
  let edge_sources tup =
    match tup with [ a; b ] -> Hashtbl.find tag (min a b, max a b) | _ -> 0
  in

  let query w =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]);
            w "x" "y";
            w "y" "z";
            w "z" "x";
          ] )
  in
  let expr = query (fun a b -> Logic.Expr.Weight ("w", [ v a; v b ])) in

  (* 1. lineage alone: union over triangles of the sources ALL three edges
     share *)
  let wl = Db.Weights.create ~name:"w" ~arity:2 ~zero:Sources.zero in
  Db.Weights.fill_from_relation wl inst "E" edge_sources;
  let lineage_ops = Intf.ops_of_finite (module Sources) in
  let lineage = Engine.Eval.evaluate lineage_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ wl ]) expr in
  let set_to_string s =
    String.concat "," (List.filteri (fun i _ -> s land (1 lsl i) <> 0) (Array.to_list source_names))
  in
  Printf.printf "sources fully supporting at least one triangle: {%s}\n" (set_to_string lineage);

  (* 2. count and lineage simultaneously in the product semiring *)
  let wp = Db.Weights.create ~name:"w" ~arity:2 ~zero:CountAndLineage.zero in
  Db.Weights.fill_from_relation wp inst "E" (fun tup -> (1, edge_sources tup));
  let prod_ops = Intf.ops_of_module (module CountAndLineage) in
  let count, lineage2 =
    Engine.Eval.evaluate prod_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ wp ]) expr
  in
  Printf.printf "product semiring pass: %d derivations, lineage {%s} (agrees: %b)\n" count
    (set_to_string lineage2)
    (Sources.equal lineage lineage2);

  (* 3. what-if: restrict to derivations surviving without source 'osm' *)
  let drop_osm s = s land lnot 2 in
  let wr = Db.Weights.create ~name:"w" ~arity:2 ~zero:CountAndLineage.zero in
  Db.Weights.fill_from_relation wr inst "E" (fun tup ->
      let s = drop_osm (edge_sources tup) in
      if s = 0 then CountAndLineage.zero else (1, s));
  let count', lineage' =
    Engine.Eval.evaluate prod_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ wr ]) expr
  in
  Printf.printf "without osm-only edges: %d derivations, lineage {%s}\n" count'
    (set_to_string lineage')
