(* Provenance analysis in the free semiring (Section 5, Example 21): which
   edges are responsible for each triangle answer? Every edge gets a unique
   identifier; the query value is a formal sum of monomials, one per
   derivation, produced by a constant-delay iterator (Theorem 22).

   Run with: dune exec examples/provenance_demo.exe *)

let v x = Logic.Term.Var x

let () =
  (* the paper's Example 21 graph: vertices a b c d,
     edges ab, bc, ca, bd, da *)
  let names = [| "a"; "b"; "c"; "d" |] in
  let inst = Db.Instance.create Db.Schema.graph_schema ~n:4 in
  List.iter
    (fun t -> Db.Instance.add inst "E" t)
    [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 1; 3 ]; [ 3; 0 ] ];
  let edge_id = function
    | [ a; b ] -> Printf.sprintf "e%s%s" names.(a) names.(b)
    | _ -> assert false
  in
  (* f = Σ_{x,y,z} w(x,y) · w(y,z) · w(z,x), with w(a,b) = e_ab *)
  let expr =
    Logic.Expr.Sum
      ( [ "x"; "y"; "z" ],
        Logic.Expr.Mul
          [
            Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
            Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
            Logic.Expr.Weight ("w", [ v "z"; v "x" ]);
          ] )
  in
  let prov =
    Provenance.Prov_circuit.prepare inst expr ~weight:(fun _w tuple ->
        if Db.Instance.mem inst "E" tuple then [ [ edge_id tuple ] ] else [])
  in
  Printf.printf "triangle provenance of Example 21 (each derivation once):\n";
  let it = Provenance.Prov_circuit.enumerate prov in
  List.iter
    (fun m -> Printf.printf "  %s\n" (String.concat " · " m))
    (Enum.Iter.to_list it);

  (* what-if: delete edge bc — re-enumerate under the update (O(1) to
     record, iterator rebuilt lazily) *)
  Provenance.Prov_circuit.update prov "w" [ 1; 2 ] [];
  Printf.printf "after deleting edge bc:\n";
  List.iter
    (fun m -> Printf.printf "  %s\n" (String.concat " · " m))
    (Enum.Iter.to_list (Provenance.Prov_circuit.enumerate prov));

  (* the same machinery on a bigger planar graph, just counting monomials *)
  let g = Graphs.Gen.triangulated_grid 12 12 in
  let inst2 = Db.Instance.of_graph g in
  let prov2 =
    Provenance.Prov_circuit.prepare inst2 expr ~weight:(fun _w tuple ->
        if Db.Instance.mem inst2 "E" tuple then
          [ [ (match tuple with [ a; b ] -> Printf.sprintf "e%d_%d" a b | _ -> "") ] ]
        else [])
  in
  let count = Enum.Iter.length (Provenance.Prov_circuit.enumerate prov2) in
  Printf.printf "triangulated 12x12 grid: %d triangle derivations enumerated\n" count
