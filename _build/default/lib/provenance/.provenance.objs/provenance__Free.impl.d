lib/provenance/free.ml: Format List Semiring
