lib/provenance/prov_circuit.ml: Array Circuits Db Engine Enum Free Hashtbl List Logic Perm
