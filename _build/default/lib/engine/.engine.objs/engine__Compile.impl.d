lib/engine/compile.ml: Array Circuits Db Format Graphs Hashtbl List Logic Option Printf Shapes String
