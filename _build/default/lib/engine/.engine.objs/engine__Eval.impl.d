lib/engine/eval.ml: Circuits Compile Db List Logic Printf Semiring String
