(** Weighted query evaluation and maintenance (Theorem 8). [prepare]
    compiles the expression once (linear time); the result supports

    - [value] — the current value of a closed expression, O(1);
    - [query] — the value at a tuple, for expressions with free variables,
      implemented by 2·|x̄| temporary weight updates exactly as in the
      proof of Theorem 8;
    - [update] — change one weight, in O(log n) for general semirings and
      O(1) for rings and finite semirings (the Dyn strategies).

    Free variables are handled by the closure trick: f(x̄) becomes
    f′ = Σ_x̄ f · v₁(x₁) ⋯ v_k(x_k) for fresh query weights v_i that
    default to 0. *)

type 'a t = {
  ops : 'a Semiring.Intf.ops;
  dyn : 'a Circuits.Dyn.t;
  free_vars : string list;  (** in query-argument order *)
  meta : Compile.meta;
  circuit : 'a Circuits.Circuit.t;
}

let query_weight i = Printf.sprintf "__qv%d" i

let prepare (type a) (ops : a Semiring.Intf.ops) ?mode ?tfa_rounds ?max_depth
    (inst : Db.Instance.t) (weights : a Db.Weights.bundle) (expr : a Logic.Expr.t) : a t =
  let open Semiring.Intf in
  let fv = Logic.Expr.free_vars_unique expr in
  let expr_closed =
    if fv = [] then expr
    else
      Logic.Expr.Sum
        ( fv,
          Logic.Expr.Mul
            (expr
            :: List.mapi
                 (fun i x -> Logic.Expr.Weight (query_weight i, [ Logic.Term.Var x ]))
                 fv) )
  in
  let circuit, meta =
    Compile.compile ~zero:ops.zero ~one:ops.one ?tfa_rounds ?max_depth inst expr_closed
  in
  let valuation (w, tuple) =
    if String.length w > 4 && String.sub w 0 4 = "__qv" then ops.zero
    else Db.Weights.get (Db.Weights.find weights w) tuple
  in
  let dyn = Circuits.Dyn.create ?mode ops circuit valuation in
  { ops; dyn; free_vars = fv; meta; circuit }

(** Value of a closed expression (or of the wrapped sum, which is 0 until
    queried, for expressions with free variables). *)
let value t = Circuits.Dyn.value t.dyn

(** Value at a tuple (one element per free variable, in the order of
    [free_vars]). *)
let query (type a) (t : a t) (args : int list) : a =
  if List.length args <> List.length t.free_vars then
    invalid_arg "Eval.query: wrong number of arguments";
  let assignments =
    List.mapi (fun i a -> ((query_weight i, [ a ]), t.ops.Semiring.Intf.one)) args
  in
  Circuits.Dyn.with_temp t.dyn assignments (fun () -> Circuits.Dyn.value t.dyn)

(** Update one weight. Tuples that cannot affect the query (their weight
    is never read by the circuit) are ignored. *)
let update t w tuple v =
  let key = (w, tuple) in
  if Circuits.Dyn.has_input t.dyn key then Circuits.Dyn.set_input t.dyn key v

let meta t = t.meta
let stats t = Circuits.Circuit.stats t.circuit

(** One-shot static evaluation of a closed expression through the circuit
    pipeline (compile + one linear evaluation, no dynamic structures). *)
let evaluate (type a) (ops : a Semiring.Intf.ops) ?tfa_rounds ?max_depth
    (inst : Db.Instance.t) (weights : a Db.Weights.bundle) (expr : a Logic.Expr.t) : a =
  let open Semiring.Intf in
  let circuit, _ =
    Compile.compile ~zero:ops.zero ~one:ops.one ?tfa_rounds ?max_depth inst expr
  in
  Circuits.Circuit.eval ops circuit (fun (w, tuple) ->
      Db.Weights.get (Db.Weights.find weights w) tuple)
