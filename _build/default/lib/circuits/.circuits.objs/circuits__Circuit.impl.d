lib/circuits/circuit.ml: Array Format Hashtbl Perm Semiring
