lib/circuits/dyn.ml: Array Circuit Hashtbl Int List Option Perm Semiring Set
