(** Mutable doubly-linked lists with O(1) insertion and removal given a node
    handle. This is the backing store for the per-column-type lists [L_t] of
    Lemma 39: an update moves a column between lists in constant time. *)

type 'a node = {
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : int;  (** id of the list currently containing the node, or -1 *)
}

type 'a t = {
  id : int;
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable length : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  { id = !next_id; first = None; last = None; length = 0 }

let length t = t.length
let is_empty t = t.length = 0
let first t = t.first
let last t = t.last

(** Append a fresh node holding [v] at the back; returns the handle. *)
let push_back t v =
  let node = { value = v; prev = t.last; next = None; owner = t.id } in
  (match t.last with
  | None -> t.first <- Some node
  | Some l -> l.next <- Some node);
  t.last <- Some node;
  t.length <- t.length + 1;
  node

(** Remove [node] from [t]. Raises [Invalid_argument] if the node is not
    currently a member of [t]. *)
let remove t node =
  if node.owner <> t.id then invalid_arg "Dll.remove: node not in this list";
  (match node.prev with None -> t.first <- node.next | Some p -> p.next <- node.next);
  (match node.next with None -> t.last <- node.prev | Some n -> n.prev <- node.prev);
  node.prev <- None;
  node.next <- None;
  node.owner <- -1;
  t.length <- t.length - 1

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.value;
        go n.next
  in
  go t.first

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc
