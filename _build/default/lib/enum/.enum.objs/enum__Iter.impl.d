lib/enum/iter.ml: Array Dll List Option
