lib/enum/dll.ml: List
