(** Heuristic low-depth elimination forests. Any forest in which every
    graph edge joins an ancestor–descendant pair is a valid substrate for
    the forest-stage compilation; depth is pure performance (the shape
    count grows with depth). A DFS forest always works (no cross edges) but
    can be deep; this heuristic recursively roots each component at the
    center of an approximate longest path, giving O(log n) depth on paths
    and near-treedepth behaviour on the path-like subgraphs that low-
    treedepth color classes induce. *)

(* BFS from [s] over alive vertices; returns (farthest vertex, parent map
   over the visited set). *)
let bfs (g : Graph.t) alive s =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  let q = Queue.create () in
  Queue.add s q;
  parent.(s) <- s;
  let last = ref s in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    last := v;
    List.iter
      (fun w ->
        if alive.(w) && parent.(w) = -2 then begin
          parent.(w) <- v;
          Queue.add w q
        end)
      (Graph.neighbors g v)
  done;
  (!last, parent)

(** Elimination forest by recursive center removal. *)
let elimination_forest (g : Graph.t) : Forest.t =
  let n = Graph.n g in
  let alive = Array.make n true in
  let fparent = Array.make n (-1) in
  (* process the component of [s]; attach its chosen root below [above] *)
  let rec component s above =
    (* double BFS to find an approximate longest path, then its middle *)
    let a, _ = bfs g alive s in
    let b, par = bfs g alive a in
    (* path from b back to a *)
    let path = ref [ b ] in
    let v = ref b in
    while par.(!v) <> !v do
      v := par.(!v);
      path := !v :: !path
    done;
    let path = Array.of_list !path in
    let center = path.(Array.length path / 2) in
    fparent.(center) <- (if above < 0 then center else above);
    alive.(center) <- false;
    (* recurse on the remaining components, discovered from the center's
       old neighborhood and the component's other vertices *)
    List.iter
      (fun w -> if alive.(w) && fparent.(w) < 0 then component_from w center)
      (Graph.neighbors g center);
    (* any vertex of the original component not yet reached (disconnected
       from center's neighbors only through center) is found lazily by the
       outer loop *)
    ()
  and component_from s above =
    (* s may have been absorbed by an earlier sibling recursion *)
    if alive.(s) then component s above
  in
  (* note: removing the center splits the component; all pieces touch the
     center's neighborhood, so the recursion above reaches every vertex of
     the component *)
  for s = 0 to n - 1 do
    if alive.(s) then component s (-1)
  done;
  Forest.of_parents fparent

(** The better of the DFS forest and the heuristic elimination forest. *)
let best_forest (g : Graph.t) : Forest.t =
  let dfs = Forest.dfs_forest g in
  let elim = elimination_forest g in
  if Forest.max_depth elim < Forest.max_depth dfs then elim else dfs
