(** Low-treedepth colorings via transitive–fraternal augmentation
    (Nešetřil & Ossona de Mendez, used as Proposition 1 in the paper).

    Starting from a bounded-out-degree acyclic orientation, each
    augmentation round adds
    - transitive arcs  u→w whenever u→v→w, and
    - fraternal edges  u—w whenever u→v←w,
    the fraternal edges being re-oriented by a degeneracy orientation to
    keep out-degrees low. After enough rounds, a proper coloring of the
    underlying augmented graph is a low-treedepth coloring of the original
    graph: any p color classes induce a subgraph of bounded treedepth.

    The engine never relies on the theoretical depth bound: it measures the
    DFS-forest depth of each color-induced subgraph and compiles with the
    observed depth, so correctness is unconditional and the coloring only
    affects performance. *)

type coloring = {
  color : int array;  (** color of each vertex *)
  num_colors : int;
  rounds : int;  (** augmentation rounds performed *)
}

(* One augmentation round over arc set (as adjacency of out-neighbors). *)
let augment ~n (out : int list array) : int list array =
  let arc_set = Hashtbl.create (n * 4) in
  let add_arc u v = if u <> v then Hashtbl.replace arc_set (u, v) () in
  Array.iteri (fun u outs -> List.iter (fun v -> add_arc u v) outs) out;
  let fraternal = ref [] in
  let transitive = ref [] in
  Array.iteri
    (fun u outs ->
      (* transitive: u -> v -> w *)
      List.iter
        (fun v -> List.iter (fun w -> if w <> u then transitive := (u, w) :: !transitive) out.(v))
        outs;
      ignore u)
    out;
  (* fraternal: u -> v <- w; group arcs by head *)
  let in_nbrs = Array.make n [] in
  Array.iteri (fun u outs -> List.iter (fun v -> in_nbrs.(v) <- u :: in_nbrs.(v)) outs) out;
  Array.iter
    (fun ins ->
      let rec pairs = function
        | [] -> ()
        | u :: rest ->
            List.iter
              (fun w ->
                if
                  (not (Hashtbl.mem arc_set (u, w)))
                  && not (Hashtbl.mem arc_set (w, u))
                then fraternal := (u, w) :: !fraternal)
              rest;
            pairs rest
      in
      pairs ins)
    in_nbrs;
  List.iter (fun (u, w) -> add_arc u w) !transitive;
  (* orient the fraternal edges with low out-degree *)
  let fr_unique =
    List.sort_uniq compare
      (List.filter_map
         (fun (u, w) ->
           if u = w then None else Some (min u w, max u w))
         !fraternal)
  in
  let fr_arcs = Orient.orient_edges ~n fr_unique in
  List.iter
    (fun (u, w) ->
      if not (Hashtbl.mem arc_set (w, u)) then add_arc u w)
    fr_arcs;
  let out' = Array.make n [] in
  Hashtbl.iter (fun (u, v) () -> out'.(u) <- v :: out'.(u)) arc_set;
  out'

(* Greedy proper coloring of the underlying undirected graph of the arcs,
   processed in degeneracy order of that graph (colors ≤ degeneracy + 1). *)
let proper_coloring ~n (out : int list array) : int array * int =
  let edges = ref [] in
  Array.iteri (fun u outs -> List.iter (fun v -> edges := (u, v) :: !edges) outs) out;
  let g = Graph.of_edges ~n !edges in
  let o = Orient.degeneracy_order g in
  let color = Array.make n (-1) in
  let num = ref 0 in
  (* color in reverse elimination order so each vertex sees only its
     out-neighbors already colored *)
  for pos = n - 1 downto 0 do
    let v = o.Orient.order.(pos) in
    let used = List.filter_map (fun w -> if color.(w) >= 0 then Some color.(w) else None) (Graph.neighbors g v) in
    let rec smallest c = if List.mem c used then smallest (c + 1) else c in
    let c = smallest 0 in
    color.(v) <- c;
    num := max !num (c + 1)
  done;
  (color, !num)

(** Compute a low-treedepth coloring adequate for patterns of [p] vertices:
    [p − 1] augmentation rounds then a proper coloring of the augmented
    graph. *)
let low_treedepth_coloring ?(rounds = -1) (g : Graph.t) ~p : coloring =
  let n = Graph.n g in
  let rounds = if rounds >= 0 then rounds else max 0 (p - 1) in
  let o = Orient.degeneracy_order g in
  let out = ref (Array.map Array.to_list o.Orient.out) in
  for _ = 1 to rounds do
    out := augment ~n !out
  done;
  let color, num_colors = proper_coloring ~n !out in
  { color; num_colors; rounds }

(** All subsets of {0..num_colors−1} of size ≤ p, as sorted int lists. *)
let color_subsets ~num_colors ~p =
  let rec go start size =
    if size = 0 then [ [] ]
    else
      List.concat_map
        (fun c -> List.map (fun rest -> c :: rest) (go (c + 1) (size - 1)))
        (List.init (max 0 (num_colors - start)) (fun i -> start + i))
  in
  List.concat_map (fun size -> go 0 size) (List.init p (fun i -> i + 1))

(** Validate: the subgraph induced by each pair of color classes should
    have small DFS depth. Returns the max observed DFS-forest depth over
    all ≤ p-subsets (diagnostic; exponential in p, use on small graphs). *)
let max_induced_depth (g : Graph.t) (c : coloring) ~p =
  let subsets = color_subsets ~num_colors:c.num_colors ~p in
  List.fold_left
    (fun acc subset ->
      let keep v = List.mem c.color.(v) subset in
      let sub, _, _ = Graph.induced g keep in
      let f = Forest.dfs_forest sub in
      max acc (Forest.max_depth f))
    0 subsets
