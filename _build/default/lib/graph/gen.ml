(** Workload generators over the graph classes the paper names as canonical
    bounded-expansion classes: bounded degree, planar (grids), forests, and
    graphs excluding dense minors (sparse random graphs of bounded average
    degree behave like these at our scales). All generators are
    deterministic given the seed. *)

let path n = Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then path n
  else Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n = Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete n =
  let es = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      es := (i, j) :: !es
    done
  done;
  Graph.of_edges ~n !es

(** The w × h grid — the standard planar bounded-expansion workload. *)
let grid w h =
  let idx x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (idx x y, idx (x + 1) y) :: !es;
      if y + 1 < h then es := (idx x y, idx x (y + 1)) :: !es
    done
  done;
  Graph.of_edges ~n:(w * h) !es

(** Grid with one diagonal per cell: still planar, higher density. *)
let triangulated_grid w h =
  let idx x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (idx x y, idx (x + 1) y) :: !es;
      if y + 1 < h then es := (idx x y, idx x (y + 1)) :: !es;
      if x + 1 < w && y + 1 < h then es := (idx x y, idx (x + 1) (y + 1)) :: !es
    done
  done;
  Graph.of_edges ~n:(w * h) !es

(** Sparse Erdős–Rényi-style graph with exactly [m = avg_deg · n / 2]
    distinct random edges. *)
let random_sparse ~seed ~n ~avg_deg =
  let rng = Rand.create seed in
  let target = avg_deg * n / 2 in
  let seen = Hashtbl.create (target * 2) in
  let es = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < target && !attempts < target * 20 do
    incr attempts;
    let u = Rand.int rng n and v = Rand.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        es := (u, v) :: !es
      end
    end
  done;
  Graph.of_edges ~n !es

(** Random graph with maximum degree at most [max_deg] (greedy matching of
    half-edges, configuration-model style). *)
let random_bounded_degree ~seed ~n ~max_deg =
  let rng = Rand.create seed in
  let deg = Array.make n 0 in
  let es = ref [] in
  let seen = Hashtbl.create (n * max_deg) in
  let target = n * max_deg / 2 in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < target && !attempts < target * 20 do
    incr attempts;
    let u = Rand.int rng n and v = Rand.int rng n in
    if u <> v && deg.(u) < max_deg && deg.(v) < max_deg then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        es := (u, v) :: !es;
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        incr added
      end
    end
  done;
  Graph.of_edges ~n !es

(** Uniform random recursive tree on [n] vertices. *)
let random_tree ~seed ~n =
  let rng = Rand.create seed in
  let es = ref [] in
  for v = 1 to n - 1 do
    es := (Rand.int rng v, v) :: !es
  done;
  Graph.of_edges ~n !es

(** Random rooted forest of depth at most [depth]: each vertex at level
    l > 0 attaches to a random vertex at level l − 1. Returns the graph and
    the parent array (parent of a root is itself). *)
let random_forest ~seed ~n ~depth ~roots =
  let rng = Rand.create seed in
  let roots = max 1 (min roots n) in
  let parent = Array.make n (-1) in
  let level = Array.make n 0 in
  for v = 0 to roots - 1 do
    parent.(v) <- v
  done;
  let es = ref [] in
  for v = roots to n - 1 do
    (* attach to a random earlier vertex whose level < depth *)
    let rec pick tries =
      let p = Rand.int rng v in
      if level.(p) < depth || tries > 50 then p else pick (tries + 1)
    in
    let p = pick 0 in
    parent.(v) <- p;
    level.(v) <- min depth (level.(p) + 1);
    es := (p, v) :: !es
  done;
  (Graph.of_edges ~n !es, parent)

(** Caterpillar: a path spine with [legs] pendant vertices per spine node. *)
let caterpillar ~spine ~legs =
  let n = spine * (legs + 1) in
  let es = ref [] in
  for i = 0 to spine - 1 do
    if i + 1 < spine then es := (i, i + 1) :: !es;
    for l = 0 to legs - 1 do
      es := (i, spine + (i * legs) + l) :: !es
    done
  done;
  Graph.of_edges ~n !es
