(** Simple undirected graphs on vertices 0 … n−1, stored as adjacency
    arrays. This is the combinatorial substrate for Gaifman graphs,
    degeneracy orientations, and low-treedepth colorings. *)

type t = {
  n : int;
  adj : int list array;  (** sorted, duplicate-free neighbor lists *)
  m : int;  (** number of edges *)
}

let n t = t.n
let m t = t.m
let neighbors t v = t.adj.(v)
let degree t v = List.length t.adj.(v)

(** Build from an edge list; self-loops and duplicate edges are dropped. *)
let of_edges ~n edges =
  let seen = Hashtbl.create (List.length edges * 2) in
  let adj = Array.make n [] in
  let m = ref 0 in
  List.iter
    (fun (u, v) ->
      if u <> v && u >= 0 && u < n && v >= 0 && v < n then begin
        let key = (min u v, max u v) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          adj.(u) <- v :: adj.(u);
          adj.(v) <- u :: adj.(v);
          incr m
        end
      end)
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  { n; adj; m = !m }

let has_edge t u v = List.mem v t.adj.(u)

let edges t =
  let acc = ref [] in
  for u = 0 to t.n - 1 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) t.adj.(u)
  done;
  List.rev !acc

let iter_edges f t = List.iter (fun (u, v) -> f u v) (edges t)

(** Subgraph induced by the vertex set [keep] (given as a predicate).
    Returns the subgraph together with old→new and new→old vertex maps. *)
let induced t keep =
  let old_to_new = Array.make t.n (-1) in
  let new_to_old = ref [] in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if keep v then begin
      old_to_new.(v) <- !count;
      new_to_old := v :: !new_to_old;
      incr count
    end
  done;
  let new_to_old = Array.of_list (List.rev !new_to_old) in
  let es =
    List.filter_map
      (fun (u, v) ->
        if old_to_new.(u) >= 0 && old_to_new.(v) >= 0 then
          Some (old_to_new.(u), old_to_new.(v))
        else None)
      (edges t)
  in
  (of_edges ~n:!count es, old_to_new, new_to_old)

(** Connected components as a vertex → component-id array. *)
let components t =
  let comp = Array.make t.n (-1) in
  let c = ref 0 in
  for s = 0 to t.n - 1 do
    if comp.(s) < 0 then begin
      let stack = ref [ s ] in
      comp.(s) <- !c;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            List.iter
              (fun w ->
                if comp.(w) < 0 then begin
                  comp.(w) <- !c;
                  stack := w :: !stack
                end)
              t.adj.(v)
      done;
      incr c
    end
  done;
  (comp, !c)

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d)" t.n t.m
