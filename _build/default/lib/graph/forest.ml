(** Rooted forests of bounded depth — the base case of the compilation
    (Section A.2). A forest is a parent array where roots point to
    themselves, plus derived depth and children tables.

    A DFS spanning forest of an undirected graph has the key property that
    every graph edge joins an ancestor–descendant pair (there are no cross
    edges in undirected DFS), so it is a valid elimination forest; on a
    graph of treedepth d its depth is at most 2^d (Example 2). *)

type t = {
  parent : int array;  (** parent.(v) = v iff v is a root *)
  depth : int array;  (** depth of each vertex; roots have depth 0 *)
  children : int list array;
  roots : int list;
  max_depth : int;
}

let of_parents parent =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  let children = Array.make n [] in
  let roots = ref [] in
  let rec compute_depth v =
    if depth.(v) >= 0 then depth.(v)
    else if parent.(v) = v then begin
      depth.(v) <- 0;
      0
    end
    else begin
      let d = compute_depth parent.(v) + 1 in
      depth.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    ignore (compute_depth v);
    if parent.(v) = v then roots := v :: !roots
    else children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  {
    parent;
    depth;
    children;
    roots = List.rev !roots;
    max_depth = Array.fold_left max 0 depth;
  }

let n t = Array.length t.parent
let parent t v = t.parent.(v)
let depth t v = t.depth.(v)
let children t v = t.children.(v)
let roots t = t.roots
let max_depth t = t.max_depth
let is_root t v = t.parent.(v) = v

(** [ancestor t v i] is the ancestor of v at [i] steps up (clamped at the
    root, matching parentⁱ with parent(root) = root). *)
let ancestor t v i =
  let rec go v i = if i <= 0 then v else go t.parent.(v) (i - 1) in
  go v i

(** [ancestor_at_depth t v d] is the ancestor of v at depth exactly [d], or
    [None] if depth v < d. *)
let ancestor_at_depth t v d =
  if t.depth.(v) < d then None else Some (ancestor t v (t.depth.(v) - d))

(** Is [a] an ancestor of (or equal to) [v]? Costs O(depth). *)
let is_ancestor t ~anc ~of_:v =
  let rec go v = if v = anc then true else if t.parent.(v) = v then false else go t.parent.(v) in
  go v

(** DFS spanning forest of an undirected graph (iterative with explicit
    neighbor cursors, linear time). A vertex's parent is the vertex from
    which it is *entered*, which is what guarantees the ancestor–descendant
    property for all non-tree edges. *)
let dfs_forest (g : Graph.t) : t =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  for s = 0 to n - 1 do
    if parent.(s) < 0 then begin
      parent.(s) <- s;
      let stack = ref [ (s, ref (Graph.neighbors g s)) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, rest) :: tail -> (
            match !rest with
            | [] -> stack := tail
            | w :: more ->
                rest := more;
                if parent.(w) < 0 then begin
                  parent.(w) <- v;
                  stack := (w, ref (Graph.neighbors g w)) :: !stack
                end)
      done
    end
  done;
  of_parents parent

(** Check the elimination-forest property: every edge of [g] joins an
    ancestor–descendant pair of [t]. *)
let is_elimination_forest t (g : Graph.t) =
  List.for_all
    (fun (u, v) -> is_ancestor t ~anc:u ~of_:v || is_ancestor t ~anc:v ~of_:u)
    (Graph.edges g)
