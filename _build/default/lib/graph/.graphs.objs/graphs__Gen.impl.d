lib/graph/gen.ml: Array Graph Hashtbl List Rand
