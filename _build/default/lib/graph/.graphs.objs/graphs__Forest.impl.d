lib/graph/forest.ml: Array Graph List
