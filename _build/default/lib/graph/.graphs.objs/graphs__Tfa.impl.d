lib/graph/tfa.ml: Array Forest Graph Hashtbl List Orient
