lib/graph/orient.ml: Array Graph List
