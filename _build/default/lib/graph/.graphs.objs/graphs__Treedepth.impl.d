lib/graph/treedepth.ml: Array Forest Graph List Queue
