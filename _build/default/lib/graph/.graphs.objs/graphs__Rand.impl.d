lib/graph/rand.ml: Array Int64
