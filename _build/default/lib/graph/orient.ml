(** Degeneracy orderings and acyclic bounded-out-degree orientations
    (Section A.5). A graph of degeneracy d admits an acyclic orientation of
    out-degree ≤ d, computed in linear time by repeatedly removing a
    minimum-degree vertex with a bucket queue. Lemma 37 uses the out-
    neighbor functions f₁ … f_d to reduce arbitrary arities to unary. *)

type t = {
  order : int array;  (** elimination order: position i holds the i-th removed vertex *)
  rank : int array;  (** rank.(v) = position of v in the order *)
  out : int array array;  (** out.(v) = out-neighbors of v (later in the order) *)
  degeneracy : int;
}

let out_degree t v = Array.length t.out.(v)
let max_out_degree t = Array.fold_left (fun acc o -> max acc (Array.length o)) 0 t.out

(** [nth_out t v i] is the i-th out-neighbor of v (0-based), or [v] itself
    when v has fewer than i+1 out-neighbors — matching the paper's
    convention that fᵢ(a) = a when the i-th out-neighbor does not exist. *)
let nth_out t v i = if i < Array.length t.out.(v) then t.out.(v).(i) else v

(** Linear-time degeneracy ordering via bucket queue. *)
let degeneracy_order (g : Graph.t) : t =
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let maxdeg = Array.fold_left max 0 deg in
  let buckets = Array.make (maxdeg + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let removed = Array.make n false in
  let order = Array.make n 0 in
  let rank = Array.make n 0 in
  let degeneracy = ref 0 in
  let cursor = ref 0 in
  for pos = 0 to n - 1 do
    (* find the nonempty bucket with smallest degree *)
    if !cursor > 0 then decr cursor;
    let rec find d =
      if d > maxdeg then invalid_arg "degeneracy_order: empty buckets"
      else
        match buckets.(d) with
        | [] -> find (d + 1)
        | v :: rest ->
            if removed.(v) || deg.(v) <> d then begin
              buckets.(d) <- rest;
              find d
            end
            else begin
              buckets.(d) <- rest;
              (d, v)
            end
    in
    let d, v = find !cursor in
    cursor := d;
    degeneracy := max !degeneracy d;
    removed.(v) <- true;
    order.(pos) <- v;
    rank.(v) <- pos;
    List.iter
      (fun w ->
        if not removed.(w) then begin
          deg.(w) <- deg.(w) - 1;
          buckets.(deg.(w)) <- w :: buckets.(deg.(w))
        end)
      (Graph.neighbors g v)
  done;
  let out =
    Array.init n (fun v ->
        Graph.neighbors g v
        |> List.filter (fun w -> rank.(w) > rank.(v))
        |> Array.of_list)
  in
  { order; rank; out; degeneracy = !degeneracy }

(** Orient an arbitrary edge list acyclically with low out-degree by
    building the graph and taking its degeneracy orientation; returns
    directed arc list. Used to orient fraternal edges in TFA. *)
let orient_edges ~n edges =
  let g = Graph.of_edges ~n edges in
  let o = degeneracy_order g in
  let arcs = ref [] in
  Array.iteri
    (fun v outs -> Array.iter (fun w -> arcs := (v, w) :: !arcs) outs)
    o.out;
  !arcs
