(** Circuit construction over a rooted forest, per shape (Lemma 29 and its
    Claim 1). For a shape with roots r₁ … r_m and a forest with roots
    v₁ … v_N, the circuit is a permanent gate over the m × N matrix whose
    (r, v) entry is

      [constraints of r hold at v] · Π weights at v · C(subtrees of r, subtree of v),

    recursing in lockstep down the two forests. Injectivity of the
    permanent's assignments is exactly injectivity of forest embeddings.
    Memoizing on (shape node, forest node) keeps the construction linear in
    the forest size for a fixed shape. *)

type fstage = {
  forest : Graphs.Forest.t;  (** reindexed vertices 0 … m−1 *)
  orig : int array;  (** forest vertex → original database element *)
  holds : string -> int list -> bool;
      (** relation membership over original elements (colors included) *)
  dynamic : string -> bool;
      (** relations encoded as ±weight inputs (Lemma 40) instead of being
          checked at compile time — this is what makes Gaifman-preserving
          updates possible without recompiling *)
}

(** Input-key names for the v⁺_R / v⁻_R weights of Lemma 40. *)
let pos_weight rel = "__pos_" ^ rel

let neg_weight rel = "__neg_" ^ rel

(** The (w, ā) input key for a weight anchored at forest node [v] with
    argument depths [wdepths]. *)
let weight_key fs v (w : Shape.weight_spec) : Circuits.Circuit.input_key =
  let tuple =
    List.map
      (fun l ->
        match Graphs.Forest.ancestor_at_depth fs.forest v l with
        | Some a -> fs.orig.(a)
        | None -> invalid_arg "Forest_compile: constraint depth exceeds node depth")
      w.Shape.wdepths
  in
  (w.Shape.sym, tuple)

let constraint_tuple fs v (c : Shape.rel_constraint) =
  List.map
    (fun l ->
      match Graphs.Forest.ancestor_at_depth fs.forest v l with
      | Some a -> fs.orig.(a)
      | None -> invalid_arg "Forest_compile: constraint depth exceeds node depth")
    c.Shape.depths

let rel_holds fs v (c : Shape.rel_constraint) : bool =
  fs.holds c.Shape.rel (constraint_tuple fs v c) = c.Shape.pos

(** Compile one shape into a gate of the builder [b]. *)
let compile_shape (type a) (b : a Circuits.Circuit.builder) (fs : fstage)
    ~(zero : a) ~(one : a) (s : Shape.t) : int =
  if Shape.num_nodes s = 0 then Circuits.Circuit.const b one
  else begin
    let zero_gate = ref (-1) in
    let get_zero () =
      if !zero_gate < 0 then zero_gate := Circuits.Circuit.const b zero;
      !zero_gate
    in
    let one_gate = ref (-1) in
    let get_one () =
      if !one_gate < 0 then one_gate := Circuits.Circuit.const b one;
      !one_gate
    in
    let memo : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
    (* gate computing: shape subtree rooted at [sid] embeds at forest node
       [v] (with sid ↦ v), times the weights along the way *)
    let rec subtree sid v =
      match Hashtbl.find_opt memo (sid, v) with
      | Some g -> g
      | None ->
          let sn = s.nodes.(sid) in
          let static_rels, dynamic_rels =
            List.partition (fun (c : Shape.rel_constraint) -> not (fs.dynamic c.Shape.rel)) sn.Shape.rels
          in
          let g =
            if not (List.for_all (rel_holds fs v) static_rels) then get_zero ()
            else begin
              let wgates =
                List.map (fun w -> Circuits.Circuit.input b (weight_key fs v w)) sn.Shape.weights
                @ List.map
                    (fun (c : Shape.rel_constraint) ->
                      let name = if c.Shape.pos then pos_weight c.Shape.rel else neg_weight c.Shape.rel in
                      Circuits.Circuit.input b (name, constraint_tuple fs v c))
                    dynamic_rels
              in
              let factors =
                match sn.Shape.children with
                | [] -> wgates
                | cs ->
                    let cols = Graphs.Forest.children fs.forest v in
                    let rows =
                      List.map
                        (fun c -> Array.of_list (List.map (fun u -> subtree c u) cols))
                        cs
                    in
                    wgates @ [ Circuits.Circuit.perm b (Array.of_list rows) ]
              in
              match factors with [] -> get_one () | gs -> Circuits.Circuit.mul b gs
            end
          in
          Hashtbl.replace memo (sid, v) g;
          g
    in
    let cols = Graphs.Forest.roots fs.forest in
    let rows =
      List.map (fun r -> Array.of_list (List.map (fun v -> subtree r v) cols)) s.roots
    in
    Circuits.Circuit.perm b (Array.of_list rows)
  end

(** Compile a closed normalized summand over the forest stage: enumerate
    its shapes, compile each, and multiply in the constant coefficients. *)
let compile_summand (type a) (b : a Circuits.Circuit.builder) (fs : fstage)
    ~(zero : a) ~(one : a) (summand : a Logic.Normal.summand) : int =
  let d = Graphs.Forest.max_depth fs.forest in
  let shapes = Shape.enumerate ~d ~summand () in
  let shape_gates = List.map (compile_shape b fs ~zero ~one) shapes in
  let body =
    match shape_gates with [] -> Circuits.Circuit.const b zero | gs -> Circuits.Circuit.add b gs
  in
  match summand.Logic.Normal.prod.Logic.Normal.coeffs with
  | [] -> body
  | coeffs ->
      let cgates = List.map (Circuits.Circuit.const b) coeffs in
      Circuits.Circuit.mul b (cgates @ [ body ])
