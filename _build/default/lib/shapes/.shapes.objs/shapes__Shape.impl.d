lib/shapes/shape.ml: Array Format Hashtbl List Logic Printf String
