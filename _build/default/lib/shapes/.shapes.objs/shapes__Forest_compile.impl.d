lib/shapes/forest_compile.ml: Array Circuits Graphs Hashtbl List Logic Shape
