(** Shapes: forest patterns for summands over rooted forests of bounded
    depth (Section A.2). A shape records, for a tuple of variables, the
    complete ancestor-chain structure: every variable's depth and the level
    at which each pair of chains merges. Every tuple of forest elements
    realizes exactly one shape, so splitting a summand by shapes is a
    mutually exclusive, exhaustive case split — the S-combination of basic
    expressions of Lemma 32.

    Relation literals are resolved *structurally* per shape (this is the
    encoding of Lemma 33 folded into the enumeration): a tuple can belong
    to a relation only if its elements form a clique in the Gaifman graph,
    and in a DFS forest every Gaifman edge joins an ancestor–descendant
    pair. Hence a positive literal R(x̄) forces the variables' nodes onto a
    single chain (otherwise the shape is dead), and a negative literal over
    non-comparable nodes is simply true. For comparable nodes the literal
    becomes a membership constraint attached to the deepest node, recording
    the depths of the other components — checked against the database when
    the circuit is built. Equalities are decided entirely by the shape. *)

type rel_constraint = {
  rel : string;
  depths : int list;  (** depth (level) of each argument's node on the chain *)
  pos : bool;
}

type weight_spec = {
  sym : string;
  wdepths : int list;  (** depth of each argument's node on the chain *)
}

type node = {
  id : int;
  sdepth : int;
  parent : int;  (** shape-node id; roots point to themselves *)
  children : int list;
  rels : rel_constraint list;  (** constraints anchored at this (deepest) node *)
  weights : weight_spec list;  (** weight factors anchored at this node *)
}

type t = {
  nodes : node array;
  roots : int list;
  var_node : (string * int) list;  (** variable → id of its chain-bottom node *)
}

let num_nodes s = Array.length s.nodes

let pp fmt (s : t) =
  Format.fprintf fmt "shape(%d nodes; roots %s; vars %s)" (Array.length s.nodes)
    (String.concat "," (List.map string_of_int s.roots))
    (String.concat ","
       (List.map (fun (v, n) -> Printf.sprintf "%s@%d" v n) s.var_node))

(* All functions 0..p-1 → 0..d as arrays, via a callback. *)
let iter_vectors p d f =
  let v = Array.make p 0 in
  let rec go i =
    if i = p then f v
    else
      for x = 0 to d do
        v.(i) <- x;
        go (i + 1)
      done
  in
  if p = 0 then f v else go 0

exception Dead_shape

(** Enumerate all live shapes of a normalized summand over forests of
    maximum depth [d]. All terms must be plain variables (the engine's
    pipeline guarantees this). *)
let enumerate ~d ~(summand : 'a Logic.Normal.summand) () : t list =
  let prod = summand.Logic.Normal.prod in
  let vars = Array.of_list (Logic.Normal.summand_vars summand) in
  let p = Array.length vars in
  let var_index x =
    let rec go i =
      if i >= p then invalid_arg ("Shape: unknown variable " ^ x)
      else if vars.(i) = x then i
      else go (i + 1)
    in
    go 0
  in
  let term_var t =
    match t with
    | Logic.Term.Var x -> var_index x
    | _ -> invalid_arg "Shape: terms must be plain variables at the forest stage"
  in
  if p = 0 then [ { nodes = [||]; roots = []; var_node = [] } ]
  else begin
    (* variable pairs forced comparable by positive multi-ary literals or
       multi-ary weights: their chains must share the shallower's whole
       depth *)
    let must_compare = Hashtbl.create 8 in
    let record_pairs ts =
      let is' = List.map term_var ts in
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter (fun j -> if i <> j then Hashtbl.replace must_compare (min i j, max i j) ()) rest;
            pairs rest
      in
      pairs is'
    in
    List.iter
      (fun (l : Logic.Normal.literal) ->
        match l.Logic.Normal.atom with
        | Logic.Normal.ARel (_, ts) when l.Logic.Normal.pos && List.length ts >= 2 ->
            record_pairs ts
        | _ -> ())
      prod.Logic.Normal.lits;
    List.iter (fun (_, ts) -> if List.length ts >= 2 then record_pairs ts) prod.Logic.Normal.weights;
    let shapes = ref [] in
    iter_vectors p d (fun dep ->
        let pairs = ref [] in
        for i = 0 to p - 1 do
          for j = i + 1 to p - 1 do
            pairs := (i, j) :: !pairs
          done
        done;
        let pairs = Array.of_list (List.rev !pairs) in
        let m = Array.make_matrix p p (-2) in
        for i = 0 to p - 1 do
          m.(i).(i) <- dep.(i)
        done;
        let set_m i j v =
          m.(i).(j) <- v;
          m.(j).(i) <- v
        in
        let rec go k =
          if k = Array.length pairs then emit ()
          else begin
            let i, j = pairs.(k) in
            let lo =
              if Hashtbl.mem must_compare (i, j) then min dep.(i) dep.(j) else -1
            in
            for v = lo to min dep.(i) dep.(j) do
              set_m i j v;
              let ok = ref true in
              for z = 0 to p - 1 do
                if z <> i && z <> j && m.(i).(z) > -2 && m.(j).(z) > -2 then begin
                  let a = m.(i).(j) and b = m.(i).(z) and c = m.(j).(z) in
                  let mn = min a (min b c) in
                  let cnt =
                    (if a = mn then 1 else 0)
                    + (if b = mn then 1 else 0)
                    + if c = mn then 1 else 0
                  in
                  if cnt < 2 then ok := false
                end
              done;
              if !ok then go (k + 1)
            done;
            set_m i j (-2)
          end
        and emit () =
          (* representative of variable i's chain node at level l *)
          let rep i l =
            let r = ref i in
            for j = 0 to p - 1 do
              if j < !r && m.(i).(j) >= l then r := j
            done;
            !r
          in
          let node_key i = (rep i dep.(i), dep.(i)) in
          ignore node_key;
          try
            (* equality literals are decided by the merge structure *)
            List.iter
              (fun (l : Logic.Normal.literal) ->
                match l.Logic.Normal.atom with
                | Logic.Normal.AEq (a, b) ->
                    let ia = term_var a and ib = term_var b in
                    let same = dep.(ia) = dep.(ib) && m.(ia).(ib) = dep.(ia) in
                    if same <> l.Logic.Normal.pos then raise Dead_shape
                | Logic.Normal.ARel _ -> ())
              prod.Logic.Normal.lits;
            (* comparability of a set of variables: nodes pairwise on one
               chain, i.e. for each pair the shallower's depth is fully
               shared *)
            let comparable is' =
              let rec go = function
                | [] -> true
                | i :: rest ->
                    List.for_all
                      (fun j ->
                        i = j
                        || m.(i).(j) >= min dep.(i) dep.(j))
                      rest
                    && go rest
              in
              go is'
            in
            let deepest is' =
              List.fold_left (fun best i -> if dep.(i) > dep.(best) then i else best) (List.hd is') is'
            in
            (* anchored constraints: (anchor var, constraint) *)
            let rel_anchors = ref [] in
            List.iter
              (fun (l : Logic.Normal.literal) ->
                match l.Logic.Normal.atom with
                | Logic.Normal.AEq _ -> ()
                | Logic.Normal.ARel (r, ts) ->
                    let is' = List.map term_var ts in
                    if comparable is' then
                      rel_anchors :=
                        (deepest is', { rel = r; depths = List.map (fun i -> dep.(i)) is'; pos = l.Logic.Normal.pos })
                        :: !rel_anchors
                    else if l.Logic.Normal.pos then raise Dead_shape
                    (* negative literal over non-comparable nodes: true *))
              prod.Logic.Normal.lits;
            let weight_anchors = ref [] in
            List.iter
              (fun (w, ts) ->
                let is' = List.map term_var ts in
                if comparable is' then
                  weight_anchors :=
                    (deepest is', { sym = w; wdepths = List.map (fun i -> dep.(i)) is' })
                    :: !weight_anchors
                else
                  (* a multi-ary weight on a non-clique tuple is zero *)
                  raise Dead_shape)
              prod.Logic.Normal.weights;
            (* build the node set *)
            let node_ids = Hashtbl.create 16 in
            let next_id = ref 0 in
            let node_of key =
              match Hashtbl.find_opt node_ids key with
              | Some id -> id
              | None ->
                  let id = !next_id in
                  incr next_id;
                  Hashtbl.replace node_ids key id;
                  id
            in
            for i = 0 to p - 1 do
              for l = 0 to dep.(i) do
                ignore (node_of (rep i l, l))
              done
            done;
            let nnodes = !next_id in
            let sdepth = Array.make nnodes 0 in
            let parent = Array.make nnodes (-1) in
            Hashtbl.iter
              (fun (r, l) id ->
                sdepth.(id) <- l;
                parent.(id) <- (if l = 0 then id else node_of (rep r (l - 1), l - 1)))
              node_ids;
            let rels = Array.make nnodes [] in
            let weights = Array.make nnodes [] in
            List.iter
              (fun (i, c) ->
                let id = node_of (rep i dep.(i), dep.(i)) in
                rels.(id) <- c :: rels.(id))
              !rel_anchors;
            List.iter
              (fun (i, w) ->
                let id = node_of (rep i dep.(i), dep.(i)) in
                weights.(id) <- w :: weights.(id))
              !weight_anchors;
            let children = Array.make nnodes [] in
            let roots = ref [] in
            for id = 0 to nnodes - 1 do
              if parent.(id) = id then roots := id :: !roots
              else children.(parent.(id)) <- id :: children.(parent.(id))
            done;
            let nodes =
              Array.init nnodes (fun id ->
                  {
                    id;
                    sdepth = sdepth.(id);
                    parent = parent.(id);
                    children = children.(id);
                    rels = rels.(id);
                    weights = weights.(id);
                  })
            in
            let var_node =
              Array.to_list (Array.mapi (fun i x -> (x, node_of (rep i dep.(i), dep.(i)))) vars)
            in
            shapes := { nodes; roots = !roots; var_node } :: !shapes
          with Dead_shape -> ()
        in
        go 0);
    !shapes
  end
