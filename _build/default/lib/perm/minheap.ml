(** Indexed binary min-heaps — the data structure behind the paper's
    closing remark of Section 4: for selection semirings such as
    (ℕ ∪ {∞}, min, +) or (ℕ ∪ {∞}, min, max), the permanent of a 1 × n
    matrix is its least entry, so a heap gives O(1) *queries* with
    O(log n) updates (whereas temporary-update querying would pay the
    logarithmic update cost on every query).

    The heap is indexed: every column keeps its heap position, so a
    single-entry update is a sift in O(log n). *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  vals : 'a array;  (** current value per column *)
  heap : int array;  (** heap slots → column ids *)
  pos : int array;  (** column ids → heap slots *)
}

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.vals.(t.heap.(i)) t.vals.(t.heap.(parent)) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Array.length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && t.cmp t.vals.(t.heap.(l)) t.vals.(t.heap.(!smallest)) < 0 then smallest := l;
  if r < n && t.cmp t.vals.(t.heap.(r)) t.vals.(t.heap.(!smallest)) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(** Build from the initial column values; O(n). *)
let create ~cmp (vals : 'a array) : 'a t =
  let n = Array.length vals in
  let t = { cmp; vals = Array.copy vals; heap = Array.init n Fun.id; pos = Array.init n Fun.id } in
  for i = (n / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let size t = Array.length t.heap
let is_empty t = Array.length t.heap = 0

(** The 1 × n permanent in a selection semiring: the least entry. O(1). *)
let min_value t =
  if is_empty t then invalid_arg "Minheap.min_value: empty";
  t.vals.(t.heap.(0))

(** A column achieving the minimum. O(1). *)
let argmin t =
  if is_empty t then invalid_arg "Minheap.argmin: empty";
  t.heap.(0)

let get t col = t.vals.(col)

(** Update one column's value; O(log n). *)
let set t col v =
  if col < 0 || col >= Array.length t.vals then invalid_arg "Minheap.set: bad column";
  let old = t.vals.(col) in
  t.vals.(col) <- v;
  let c = t.cmp v old in
  if c < 0 then sift_up t t.pos.(col) else if c > 0 then sift_down t t.pos.(col)
