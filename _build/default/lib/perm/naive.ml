(** Baseline permanent by explicit enumeration of all injective row→column
    assignments — Θ(nᵏ) work. The benchmark harness uses this as the
    comparison point that the linear-time algorithms beat (experiment E2). *)

module Make (S : Semiring.Intf.BASIC) = struct
  let perm (m : S.t array array) : S.t =
    let k = Array.length m in
    if k = 0 then S.one
    else begin
      let n = Array.length m.(0) in
      let used = Array.make n false in
      let rec go r =
        if r = k then S.one
        else begin
          let acc = ref S.zero in
          for c = 0 to n - 1 do
            if not used.(c) then begin
              used.(c) <- true;
              acc := S.add !acc (S.mul m.(r).(c) (go (r + 1)));
              used.(c) <- false
            end
          done;
          !acc
        end
      in
      go 0
    end
end
