(** Static permanent of a k × n matrix over an arbitrary commutative
    semiring in time O(2ᵏ · k · n) — the linear-in-n computation promised
    after Lemma 10. The DP scans the columns once, keeping for every subset
    S ⊆ rows the permanent of the submatrix of the scanned columns with row
    set S (each column hosts at most one row). *)

(** [perm ops m] for [m] a k×n matrix given as rows; k = 0 yields [one]. *)
let perm (ops : 'a Semiring.Intf.ops) (m : 'a array array) : 'a =
  let open Semiring.Intf in
  let k = Array.length m in
  if k = 0 then ops.one
  else begin
    let n = Array.length m.(0) in
    let full = (1 lsl k) - 1 in
    let dp = Array.make (full + 1) ops.zero in
    dp.(0) <- ops.one;
    for c = 0 to n - 1 do
      (* descending mask order: dp.(mask) updated from strictly smaller
         masks of the previous column prefix *)
      for mask = full downto 0 do
        let acc = ref dp.(mask) in
        for r = 0 to k - 1 do
          if mask land (1 lsl r) <> 0 then
            acc := ops.add !acc (ops.mul dp.(mask lxor (1 lsl r)) m.(r).(c))
        done;
        dp.(mask) <- !acc
      done
    done;
    dp.(full)
  end

module Make (S : Semiring.Intf.BASIC) = struct
  let ops = Semiring.Intf.ops_of_module (module S)

  (** [perm m] for [m] a k×n matrix given as rows; k = 0 yields [one]. *)
  let perm (m : S.t array array) : S.t = perm ops m

  (** perm′ (Lemma 10): only order-increasing assignments contribute; the
      rows must be matched to strictly increasing column indices. *)
  let perm_increasing (m : S.t array array) : S.t =
    let k = Array.length m in
    if k = 0 then S.one
    else begin
      let n = Array.length m.(0) in
      (* dp.(i) = perm' of first i rows over scanned column prefix *)
      let dp = Array.make (k + 1) S.zero in
      dp.(0) <- S.one;
      for c = 0 to n - 1 do
        for i = k downto 1 do
          dp.(i) <- S.add dp.(i) (S.mul dp.(i - 1) m.(i - 1).(c))
        done
      done;
      dp.(k)
    end
end
