(** Constant-delay enumerators for permanents of iterator-valued matrices
    (Lemma 23), backed by the column-class lists of Lemma 39.

    Each entry M[r,c] of an R × C matrix is an iterator over the summands
    (monomials) of a free-semiring element. The permanent

        perm(M) = Σ_{f : R → C injective} Π_r M[r, f(r)]

    is enumerated by recursively picking, for the first remaining row r, a
    column c such that (i) M[r,c] is nonzero and (ii) the rest of the rows
    can still be matched to distinct remaining columns. Condition (ii)
    depends on c only through its boolean *column type* (the set of rows
    with a nonzero entry in c), so valid columns come from doubly-linked
    per-type lists with at most k excluded columns skipped on the fly —
    everything a [next] does is O_k(1) in the matrix width.

    Updates to the nonzero pattern move a column between type lists in
    O(1); iterators must be created after the last update (enumeration
    phases and update phases alternate, as in Theorem 22). *)

type 'm t = {
  k : int;
  n : int;
  mul : 'm -> 'm -> 'm;
  one : 'm;
  entries : 'm Enum.Iter.t array array;  (** k × n *)
  type_of : int array;  (** column → row-set bitmask of nonzero entries *)
  lists : int Enum.Dll.t array;  (** per type, the columns of that type *)
  nodes : int Enum.Dll.node array;  (** column → its node *)
}

let create ~mul ~one (entries : 'm Enum.Iter.t array array) : 'm t =
  let k = Array.length entries in
  if k > 16 then invalid_arg "Enum_perm: too many rows";
  let n = if k = 0 then 0 else Array.length entries.(0) in
  let ntypes = 1 lsl k in
  let lists = Array.init ntypes (fun _ -> Enum.Dll.create ()) in
  let type_of =
    Array.init n (fun c ->
        let mask = ref 0 in
        for r = 0 to k - 1 do
          if not (Enum.Iter.is_empty entries.(r).(c)) then mask := !mask lor (1 lsl r)
        done;
        !mask)
  in
  let nodes = Array.init n (fun c -> Enum.Dll.push_back lists.(type_of.(c)) c) in
  { k; n; mul; one; entries; type_of; lists; nodes }

(** Replace an entry's iterator (a weight update). O(1) beyond recomputing
    the column's type bit. *)
let set_entry t ~row ~col it =
  t.entries.(row).(col) <- it;
  let old_type = t.type_of.(col) in
  let bit = 1 lsl row in
  let new_type =
    if Enum.Iter.is_empty it then old_type land lnot bit else old_type lor bit
  in
  if new_type <> old_type then begin
    Enum.Dll.remove t.lists.(old_type) t.nodes.(col);
    t.type_of.(col) <- new_type;
    t.nodes.(col) <- Enum.Dll.push_back t.lists.(new_type) col
  end

(* Hall-style feasibility: can the rows of [rows_mask] be matched to
   distinct columns outside the ≤ k excluded ones? All counts are capped
   at k, so this is O(4^k) worst case — constant. *)
let feasible t rows_mask (excluded : int list) =
  let need = Subsets.popcount rows_mask in
  if need = 0 then true
  else begin
    (* available columns per type, discounted by exclusions *)
    let avail ty =
      let base = min (Enum.Dll.length t.lists.(ty)) (t.k + List.length excluded) in
      base - List.length (List.filter (fun c -> t.type_of.(c) = ty) excluded)
    in
    List.for_all
      (fun sub ->
        if sub = 0 then true
        else begin
          let cnt = ref 0 in
          for ty = 0 to (1 lsl t.k) - 1 do
            if ty land sub <> 0 then cnt := !cnt + max 0 (avail ty)
          done;
          !cnt >= Subsets.popcount sub
        end)
      (Subsets.subsets_of rows_mask)
  end

(* Iterator over valid columns for row [r] given remaining rows and
   exclusions: concatenation over types ty ∋ r such that choosing a column
   of that type leaves the rest feasible; within a type, walk the list
   skipping excluded columns. *)
let valid_columns t ~row ~rest_mask ~excluded =
  let parts = ref [] in
  for ty = (1 lsl t.k) - 1 downto 0 do
    if ty land (1 lsl row) <> 0 && not (Enum.Dll.is_empty t.lists.(ty)) then begin
      (* simulate excluding one column of this type *)
      let has_free =
        Enum.Dll.length t.lists.(ty) > List.length (List.filter (fun c -> t.type_of.(c) = ty) excluded)
      in
      if has_free then begin
        (* pick any free column of this type as representative *)
        let rec rep node =
          match node with
          | None -> None
          | Some (n : int Enum.Dll.node) ->
              if List.mem n.Enum.Dll.value excluded then rep n.Enum.Dll.next
              else Some n.Enum.Dll.value
        in
        match rep (Enum.Dll.first t.lists.(ty)) with
        | None -> ()
        | Some c0 ->
            if feasible t rest_mask (c0 :: excluded) then begin
              let base = Enum.Iter.of_dll t.lists.(ty) in
              (* skip excluded columns: at most k of them, constant work *)
              let skipping dir () =
                (match dir with `F -> base.Enum.Iter.next () | `B -> base.Enum.Iter.prev ());
                let guard = ref (List.length excluded + 1) in
                let rec skip () =
                  match base.Enum.Iter.current () with
                  | Some c when List.mem c excluded && !guard > 0 ->
                      decr guard;
                      (match dir with `F -> base.Enum.Iter.next () | `B -> base.Enum.Iter.prev ());
                      skip ()
                  | _ -> ()
                in
                skip ()
              in
              let filtered =
                {
                  base with
                  Enum.Iter.next = skipping `F;
                  prev = skipping `B;
                  is_empty = (fun () -> false);
                }
              in
              parts := filtered :: !parts
            end
      end
    end
  done;
  Enum.Iter.concat !parts

(** The permanent enumerator. Yields each monomial of perm(M), repetitions
    included, with delay O_k(input access time). *)
let enumerate (t : 'm t) : 'm Enum.Iter.t =
  let rec level rows_mask excluded : 'm Enum.Iter.t =
    if rows_mask = 0 then Enum.Iter.singleton t.one
    else begin
      let row =
        let rec low r = if rows_mask land (1 lsl r) <> 0 then r else low (r + 1) in
        low 0
      in
      let rest = rows_mask lxor (1 lsl row) in
      let cols = valid_columns t ~row ~rest_mask:rest ~excluded in
      Enum.Iter.map
        (fun (_c, (m_entry, m_rest)) -> t.mul m_entry m_rest)
        (Enum.Iter.dep_product cols (fun c ->
             Enum.Iter.product t.entries.(row).(c) (level rest (c :: excluded))))
    end
  in
  if t.k = 0 then Enum.Iter.singleton t.one
  else if not (feasible t ((1 lsl t.k) - 1) []) then Enum.Iter.empty
  else level ((1 lsl t.k) - 1) []

(** Is the permanent nonzero (the boolean projection h of Lemma 23)? *)
let nonzero t = feasible t ((1 lsl t.k) - 1) []
