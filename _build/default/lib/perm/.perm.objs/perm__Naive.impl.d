lib/perm/naive.ml: Array Semiring
