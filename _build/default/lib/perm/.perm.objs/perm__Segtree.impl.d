lib/perm/segtree.ml: Array List Semiring Subsets
