lib/perm/static.ml: Array Semiring
