lib/perm/ring.ml: Array List Semiring Subsets
