lib/perm/subsets.ml: List
