lib/perm/enum_perm.ml: Array Enum List Subsets
