lib/perm/minheap.ml: Array Fun
