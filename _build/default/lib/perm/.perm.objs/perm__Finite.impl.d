lib/perm/finite.ml: Array Hashtbl List Option Semiring
