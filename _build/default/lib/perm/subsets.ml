(** Small-set combinatorics over bitmask-encoded subsets of [k] rows,
    shared by the permanent algorithms (k is the fixed number of rows of a
    permanent gate, so everything here is O_k(1)-sized). *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(** All subsets of [mask], including 0 and [mask] itself. *)
let subsets_of mask =
  let rec go sub acc = if sub = 0 then 0 :: acc else go ((sub - 1) land mask) (sub :: acc) in
  go mask []

(** Elements (bit indices) of a mask. *)
let elements mask =
  let rec go i m acc =
    if m = 0 then List.rev acc
    else go (i + 1) (m lsr 1) (if m land 1 = 1 then i :: acc else acc)
  in
  go 0 mask []

(** All set partitions of {0, …, k−1}, each partition a list of masks. *)
let partitions k =
  let rec go remaining =
    if remaining = 0 then [ [] ]
    else begin
      (* the block containing the lowest remaining element *)
      let low = remaining land -remaining in
      let rest = remaining lxor low in
      List.concat_map
        (fun sub ->
          let block = low lor sub in
          List.map (fun p -> block :: p) (go (remaining lxor block)))
        (subsets_of rest)
    end
  in
  go ((1 lsl k) - 1)

let factorial n =
  let rec go acc n = if n <= 1 then acc else go (acc * n) (n - 1) in
  go 1 n

(** All injective functions from {0, …, k−1} into the elements of [l],
    each returned as a list of length k. *)
let injections k (l : 'a list) : 'a list list =
  let indexed = List.mapi (fun i x -> (i, x)) l in
  let rec go k avail =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun (i, x) ->
          List.map
            (fun rest -> x :: rest)
            (go (k - 1) (List.filter (fun (j, _) -> j <> i) avail)))
        avail
  in
  go k indexed

(** All functions from {0, …, k−1} to the elements of [l]. *)
let functions k (l : 'a list) : 'a list list =
  let rec go k = if k = 0 then [ [] ] else List.concat_map (fun rest -> List.map (fun x -> x :: rest) l) (go (k - 1)) in
  go k
