lib/db/instance.ml: Array Fun Graphs Hashtbl List Printf Schema
