lib/db/weights.ml: Hashtbl Instance List Printf
