lib/db/schema.ml: List Printf
