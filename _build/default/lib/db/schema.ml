(** Relational signatures Σ (paper, Section 2): finitely many relation
    symbols with arities, plus unary function symbols. The compilation
    pipeline only ever introduces unary functions (out-neighbor functions
    of Lemma 37 and the forest [parent]), so functions are unary here. *)

type t = {
  rels : (string * int) list;  (** relation name, arity ≥ 1 *)
  funcs : string list;  (** unary function names *)
}

let empty = { rels = []; funcs = [] }

let make ?(funcs = []) rels =
  List.iter
    (fun (r, a) ->
      if a < 1 then invalid_arg (Printf.sprintf "Schema: relation %s has arity %d" r a))
    rels;
  { rels; funcs }

let arity t name =
  match List.assoc_opt name t.rels with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Schema: unknown relation %s" name)

let has_rel t name = List.mem_assoc name t.rels
let has_func t name = List.mem name t.funcs

let add_rel t (name, arity) =
  if has_rel t name then invalid_arg ("Schema: duplicate relation " ^ name);
  { t with rels = (name, arity) :: t.rels }

let add_func t name =
  if has_func t name then invalid_arg ("Schema: duplicate function " ^ name);
  { t with funcs = name :: t.funcs }

(** The graph signature {E/2}. *)
let graph_schema = make [ ("E", 2) ]
