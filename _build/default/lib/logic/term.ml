(** First-order terms over variables and unary function symbols. After the
    arity reduction of Lemma 37 every function in play is unary, so terms
    are chains f₁(f₂(…(x)…)); we fix that shape from the start. *)

type t = Var of string | App of string * t

let var x = Var x
let app f t = App (f, t)

(** The variable at the bottom of the chain. *)
let rec base = function Var x -> x | App (_, t) -> base t

(** Function symbols applied, outermost first. *)
let rec spine = function Var _ -> [] | App (f, t) -> f :: spine t

let rec depth = function Var _ -> 0 | App (_, t) -> 1 + depth t

let rec rename m = function
  | Var x -> Var (match List.assoc_opt x m with Some y -> y | None -> x)
  | App (f, t) -> App (f, rename m t)

let rec equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | App (f, s), App (g, t) -> String.equal f g && equal s t
  | _ -> false

let compare = Stdlib.compare

let rec pp fmt = function
  | Var x -> Format.pp_print_string fmt x
  | App (f, t) -> Format.fprintf fmt "%s(%a)" f pp t

let to_string t = Format.asprintf "%a" pp t

(** Evaluate in an instance under an environment. *)
let rec eval (inst : Db.Instance.t) env = function
  | Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg ("Term.eval: unbound variable " ^ x))
  | App (f, t) -> Db.Instance.apply_func inst f (eval inst env t)
