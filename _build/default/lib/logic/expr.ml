(** Weighted Σ(w)-expressions (paper, Section 3), parameterized by the
    semiring of constants:

      f ::= s | w(t₁,…,tᵣ) | [α] | f + f | f · f | Σ_x f

    The reference evaluator here is the semantic ground truth against which
    the circuit compiler is tested. *)

type 'a t =
  | Const of 'a
  | Weight of string * Term.t list
  | Guard of Formula.t  (** Iverson bracket [α] *)
  | Add of 'a t list
  | Mul of 'a t list
  | Sum of string list * 'a t

let const s = Const s
let weight w ts = Weight (w, ts)
let guard f = Guard f
let ( +! ) a b = Add [ a; b ]
let ( *! ) a b = Mul [ a; b ]
let sum xs f = Sum (xs, f)

let rec free_vars = function
  | Const _ -> []
  | Weight (_, ts) -> List.map Term.base ts
  | Guard f -> Formula.free_vars f
  | Add fs | Mul fs -> List.concat_map free_vars fs
  | Sum (xs, f) -> List.filter (fun y -> not (List.mem y xs)) (free_vars f)

let free_vars_unique f = List.sort_uniq compare (free_vars f)
let is_closed f = free_vars f = []

let rec weight_symbols = function
  | Const _ | Guard _ -> []
  | Weight (w, ts) -> [ (w, List.length ts) ]
  | Add fs | Mul fs -> List.concat_map weight_symbols fs
  | Sum (_, f) -> weight_symbols f

(** Maximum number of simultaneously live variables in any summand after
    normalization — the pattern size p that drives the low-treedepth
    coloring (Lemma 35). *)
let rec num_vars = function
  | Const _ -> 0
  | Weight (_, ts) -> List.length (List.sort_uniq compare (List.map Term.base ts))
  | Guard f -> List.length (Formula.free_vars_unique f)
  | Add fs -> List.fold_left (fun acc f -> max acc (num_vars f)) 0 fs
  | Mul fs | Sum (_, Mul fs) ->
      List.length
        (List.sort_uniq compare (List.concat_map (fun f -> free_vars f) fs))
      |> max (List.fold_left (fun acc f -> max acc (num_vars f)) 0 fs)
  | Sum (xs, f) ->
      max (num_vars f) (List.length (List.sort_uniq compare (xs @ free_vars f)))

let rec rename m = function
  | Const s -> Const s
  | Weight (w, ts) -> Weight (w, List.map (Term.rename m) ts)
  | Guard f -> Guard (Formula.rename m f)
  | Add fs -> Add (List.map (rename m) fs)
  | Mul fs -> Mul (List.map (rename m) fs)
  | Sum (xs, f) ->
      let m = List.filter (fun (x, _) -> not (List.mem x xs)) m in
      Sum (xs, rename m f)

(** Reference evaluation: brute force over all valuations of summed
    variables (exponential in Σ-nesting; a test oracle, not the algorithm). *)
let eval (type s) (module S : Semiring.Intf.BASIC with type t = s)
    (inst : Db.Instance.t) (weights : s Db.Weights.bundle) (expr : s t)
    ?(env = []) () : s =
  let n = Db.Instance.n inst in
  let rec go env = function
    | Const s -> s
    | Weight (w, ts) ->
        Db.Weights.get (Db.Weights.find weights w) (List.map (Term.eval inst env) ts)
    | Guard f -> if Formula.holds inst env f then S.one else S.zero
    | Add fs -> List.fold_left (fun acc f -> S.add acc (go env f)) S.zero fs
    | Mul fs -> List.fold_left (fun acc f -> S.mul acc (go env f)) S.one fs
    | Sum ([], f) -> go env f
    | Sum (x :: xs, f) ->
        let acc = ref S.zero in
        for v = 0 to n - 1 do
          acc := S.add !acc (go ((x, v) :: env) (Sum (xs, f)))
        done;
        !acc
  in
  go env expr

let rec pp pp_const fmt = function
  | Const s -> pp_const fmt s
  | Weight (w, ts) ->
      Format.fprintf fmt "%s(%a)" w
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Term.pp)
        ts
  | Guard f -> Format.fprintf fmt "[%a]" Formula.pp f
  | Add fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " + ") (pp pp_const))
        fs
  | Mul fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "·") (pp pp_const))
        fs
  | Sum (xs, f) ->
      Format.fprintf fmt "Σ_{%s}%a" (String.concat "," xs) (pp pp_const) f
