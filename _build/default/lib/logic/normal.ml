(** Normalization of weighted expressions into S-combinations of
    "sum-of-product" summands Σ_x̄ (coeff · Π literals · Π weights) —
    the workhorse behind Lemma 28 and Lemma 32.

    Disjunction inside an Iverson bracket is expanded into a *mutually
    exclusive* sum, [α ∨ β] = [α] + [¬α ∧ β], so that the translation is
    correct in every semiring (not only idempotent ones). *)

type atom = ARel of string * Term.t list | AEq of Term.t * Term.t

type literal = { pos : bool; atom : atom }

type 'a product = {
  lits : literal list;
  weights : (string * Term.t list) list;
  coeffs : 'a list;  (** constant factors *)
}

type 'a summand = { vars : string list; prod : 'a product }
(** Σ over [vars] of the product; variables not in [vars] are free. *)

type 'a t = 'a summand list
(** The expression is the sum of the summands. *)

let empty_product = { lits = []; weights = []; coeffs = [] }

let merge_product p q =
  { lits = p.lits @ q.lits; weights = p.weights @ q.weights; coeffs = p.coeffs @ q.coeffs }

let pp_atom fmt = function
  | ARel (r, ts) ->
      Format.fprintf fmt "%s(%a)" r
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Term.pp)
        ts
  | AEq (a, b) -> Format.fprintf fmt "%a=%a" Term.pp a Term.pp b

let pp_literal fmt l =
  if l.pos then pp_atom fmt l.atom else Format.fprintf fmt "¬%a" pp_atom l.atom

(* --- fresh renaming of bound variables --- *)

let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Printf.sprintf "__v%d" !fresh_counter

let rec freshen env = function
  | Expr.Const s -> Expr.Const s
  | Expr.Weight (w, ts) -> Expr.Weight (w, List.map (Term.rename env) ts)
  | Expr.Guard f -> Expr.Guard (Formula.rename env f)
  | Expr.Add fs -> Expr.Add (List.map (freshen env) fs)
  | Expr.Mul fs -> Expr.Mul (List.map (freshen env) fs)
  | Expr.Sum (xs, f) ->
      let fresh = List.map (fun x -> (x, fresh_var ())) xs in
      let env' = fresh @ List.filter (fun (x, _) -> not (List.mem x xs)) env in
      Expr.Sum (List.map snd fresh, freshen env' f)

(* --- formula → exclusive sum of literal lists --- *)

exception Not_quantifier_free of Formula.t

(* Expand an NNF quantifier-free formula into a list of literal lists whose
   disjunction is mutually exclusive and equivalent to the formula. *)
let rec expand_formula (f : Formula.t) : literal list list =
  match f with
  | Formula.True -> [ [] ]
  | Formula.False -> []
  | Formula.Rel (r, ts) -> [ [ { pos = true; atom = ARel (r, ts) } ] ]
  | Formula.Eq (a, b) -> [ [ { pos = true; atom = AEq (a, b) } ] ]
  | Formula.Not (Formula.Rel (r, ts)) -> [ [ { pos = false; atom = ARel (r, ts) } ] ]
  | Formula.Not (Formula.Eq (a, b)) -> [ [ { pos = false; atom = AEq (a, b) } ] ]
  | Formula.Not _ -> expand_formula (Formula.nnf f)
  | Formula.And fs ->
      List.fold_left
        (fun acc g ->
          let eg = expand_formula g in
          List.concat_map (fun ls -> List.map (fun ls' -> ls @ ls') eg) acc)
        [ [] ] fs
  | Formula.Or [] -> []
  | Formula.Or [ g ] -> expand_formula g
  | Formula.Or (g :: rest) ->
      (* [g ∨ rest] = [g] + [¬g ∧ rest] — mutually exclusive *)
      expand_formula g
      @ expand_formula (Formula.And [ Formula.nnf (Formula.Not g); Formula.Or rest ])
  | Formula.Exists _ | Formula.Forall _ -> raise (Not_quantifier_free f)

(* --- expression → sum of summands --- *)

let rec norm_expr : 'a Expr.t -> 'a t = function
  | Expr.Const s -> [ { vars = []; prod = { empty_product with coeffs = [ s ] } } ]
  | Expr.Weight (w, ts) ->
      [ { vars = []; prod = { empty_product with weights = [ (w, ts) ] } } ]
  | Expr.Guard f ->
      List.map
        (fun lits -> { vars = []; prod = { empty_product with lits } })
        (expand_formula (Formula.nnf f))
  | Expr.Add fs -> List.concat_map norm_expr fs
  | Expr.Mul fs ->
      List.fold_left
        (fun acc f ->
          let nf = norm_expr f in
          List.concat_map
            (fun s ->
              List.map
                (fun s' ->
                  { vars = s.vars @ s'.vars; prod = merge_product s.prod s'.prod })
                nf)
            acc)
        [ { vars = []; prod = empty_product } ]
        fs
  | Expr.Sum (xs, f) ->
      List.map (fun s -> { s with vars = xs @ s.vars }) (norm_expr f)

(** Normalize a weighted expression. All bound variables are renamed fresh
    first, so distinct summands never capture each other's variables.
    Raises {!Not_quantifier_free} if a guard contains a quantifier. *)
let of_expr (e : 'a Expr.t) : 'a t = norm_expr (freshen [] e)

let summand_free_vars s =
  let in_prod =
    List.concat_map
      (fun l ->
        match l.atom with
        | ARel (_, ts) -> List.map Term.base ts
        | AEq (a, b) -> [ Term.base a; Term.base b ])
      s.prod.lits
    @ List.concat_map (fun (_, ts) -> List.map Term.base ts) s.prod.weights
  in
  List.sort_uniq compare (List.filter (fun v -> not (List.mem v s.vars)) in_prod)

(** All variables (bound and free) mentioned by a summand. *)
let summand_vars s =
  let in_prod =
    List.concat_map
      (fun l ->
        match l.atom with
        | ARel (_, ts) -> List.map Term.base ts
        | AEq (a, b) -> [ Term.base a; Term.base b ])
      s.prod.lits
    @ List.concat_map (fun (_, ts) -> List.map Term.base ts) s.prod.weights
  in
  List.sort_uniq compare (s.vars @ in_prod)

(** Reference evaluation of a normal form (test oracle). *)
let eval (type s) (module S : Semiring.Intf.BASIC with type t = s)
    (inst : Db.Instance.t) (weights : s Db.Weights.bundle) (nf : s t)
    ?(env = []) () : s =
  let n = Db.Instance.n inst in
  let holds_lit env l =
    let sat =
      match l.atom with
      | ARel (r, ts) -> Db.Instance.mem inst r (List.map (Term.eval inst env) ts)
      | AEq (a, b) -> Term.eval inst env a = Term.eval inst env b
    in
    if l.pos then sat else not sat
  in
  let eval_product env p =
    if List.for_all (holds_lit env) p.lits then
      let wv =
        List.fold_left
          (fun acc (w, ts) ->
            S.mul acc
              (Db.Weights.get (Db.Weights.find weights w) (List.map (Term.eval inst env) ts)))
          S.one p.weights
      in
      List.fold_left S.mul wv p.coeffs
    else S.zero
  in
  let rec eval_summand env vars p =
    match vars with
    | [] -> eval_product env p
    | x :: rest ->
        let acc = ref S.zero in
        for v = 0 to n - 1 do
          acc := S.add !acc (eval_summand ((x, v) :: env) rest p)
        done;
        !acc
  in
  List.fold_left (fun acc s -> S.add acc (eval_summand env s.vars s.prod)) S.zero nf
