lib/logic/formula.ml: Db Format List Term
