lib/logic/term.ml: Db Format List Stdlib String
