lib/logic/normal.ml: Db Expr Format Formula List Printf Semiring Term
