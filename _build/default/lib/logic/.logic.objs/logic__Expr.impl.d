lib/logic/expr.ml: Db Format Formula List Semiring String Term
