(** First-order Σ-formulas. These appear inside Iverson brackets [α] of
    weighted expressions (Section 3) and as the queries of Theorem 24. *)

type t =
  | True
  | False
  | Rel of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

let rel r ts = Rel (r, ts)
let eq a b = Eq (a, b)
let neq a b = Not (Eq (a, b))
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let exists x f = Exists (x, f)
let forall x f = Forall (x, f)

let rec free_vars = function
  | True | False -> []
  | Rel (_, ts) -> List.map Term.base ts
  | Eq (a, b) -> [ Term.base a; Term.base b ]
  | Not f -> free_vars f
  | And fs | Or fs -> List.concat_map free_vars fs
  | Exists (x, f) | Forall (x, f) -> List.filter (fun y -> y <> x) (free_vars f)

let free_vars_unique f = List.sort_uniq compare (free_vars f)

let rec is_quantifier_free = function
  | True | False | Rel _ | Eq _ -> true
  | Not f -> is_quantifier_free f
  | And fs | Or fs -> List.for_all is_quantifier_free fs
  | Exists _ | Forall _ -> false

(** Rename free variables according to the association list [m]. *)
let rec rename m = function
  | True -> True
  | False -> False
  | Rel (r, ts) -> Rel (r, List.map (Term.rename m) ts)
  | Eq (a, b) -> Eq (Term.rename m a, Term.rename m b)
  | Not f -> Not (rename m f)
  | And fs -> And (List.map (rename m) fs)
  | Or fs -> Or (List.map (rename m) fs)
  | Exists (x, f) -> Exists (x, rename (List.remove_assoc x m) f)
  | Forall (x, f) -> Forall (x, rename (List.remove_assoc x m) f)

(** Negation normal form: negation pushed to atoms. *)
let rec nnf = function
  | True -> True
  | False -> False
  | (Rel _ | Eq _) as a -> a
  | And fs -> And (List.map nnf fs)
  | Or fs -> Or (List.map nnf fs)
  | Exists (x, f) -> Exists (x, nnf f)
  | Forall (x, f) -> Forall (x, nnf f)
  | Not f -> neg_nnf f

and neg_nnf = function
  | True -> False
  | False -> True
  | (Rel _ | Eq _) as a -> Not a
  | Not f -> nnf f
  | And fs -> Or (List.map neg_nnf fs)
  | Or fs -> And (List.map neg_nnf fs)
  | Exists (x, f) -> Forall (x, neg_nnf f)
  | Forall (x, f) -> Exists (x, neg_nnf f)

(** Brute-force model checking under an environment (test oracle;
    exponential in quantifier depth). *)
let rec holds (inst : Db.Instance.t) env = function
  | True -> true
  | False -> false
  | Rel (r, ts) -> Db.Instance.mem inst r (List.map (Term.eval inst env) ts)
  | Eq (a, b) -> Term.eval inst env a = Term.eval inst env b
  | Not f -> not (holds inst env f)
  | And fs -> List.for_all (holds inst env) fs
  | Or fs -> List.exists (holds inst env) fs
  | Exists (x, f) ->
      let n = Db.Instance.n inst in
      let rec go v = v < n && (holds inst ((x, v) :: env) f || go (v + 1)) in
      go 0
  | Forall (x, f) ->
      let n = Db.Instance.n inst in
      let rec go v = v >= n || (holds inst ((x, v) :: env) f && go (v + 1)) in
      go 0

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "⊤"
  | False -> Format.pp_print_string fmt "⊥"
  | Rel (r, ts) ->
      Format.fprintf fmt "%s(%a)" r
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Term.pp)
        ts
  | Eq (a, b) -> Format.fprintf fmt "%a=%a" Term.pp a Term.pp b
  | Not (Eq (a, b)) -> Format.fprintf fmt "%a≠%a" Term.pp a Term.pp b
  | Not f -> Format.fprintf fmt "¬(%a)" pp f
  | And fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ∧ ") pp)
        fs
  | Or fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ∨ ") pp)
        fs
  | Exists (x, f) -> Format.fprintf fmt "∃%s.%a" x pp f
  | Forall (x, f) -> Format.fprintf fmt "∀%s.%a" x pp f

let to_string f = Format.asprintf "%a" pp f
