(** Stock semirings used throughout the paper's examples: the boolean
    semiring B, the naturals (ℕ, +, ·), machine-integer and exact rings,
    and the min-max semiring (ℕ ∪ {∞}, min, max). *)

(** B = ({false, true}, ∨, ∧); summation in B is existential
    quantification (Sections 1, 6). *)
module Bool : Intf.FINITE with type t = bool = struct
  type t = bool

  let zero = false
  let one = true
  let add = ( || )
  let mul = ( && )
  let equal = Bool.equal
  let elements = [ false; true ]
  let pp = Format.pp_print_bool
end

(** (ℕ, +, ·) on machine integers — the bag-semantics semiring. Overflow is
    the caller's concern, as in the paper's unit-cost model. *)
module Nat : Intf.BASIC with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let equal = Int.equal
  let pp = Format.pp_print_int
end

(** (ℤ, +, ·) on machine integers, with inverses (a ring, so circuit updates
    are constant-time by Corollary 17). *)
module Int_ring : Intf.RING with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let neg x = -x
  let sub = ( - )
  let equal = Int.equal
  let pp = Format.pp_print_int
end

(** Values of (ℕ ∪ {+∞}, min, max) and the tropical semirings. *)
type extended = Fin of int | Inf

let pp_extended fmt = function
  | Fin n -> Format.pp_print_int fmt n
  | Inf -> Format.pp_print_string fmt "∞"

let equal_extended a b =
  match (a, b) with Fin x, Fin y -> x = y | Inf, Inf -> true | _ -> false

(** (ℕ ∪ {+∞}, min, max): zero = ∞, one = 0. *)
module Min_max : Intf.BASIC with type t = extended = struct
  type t = extended

  let zero = Inf
  let one = Fin 0

  let add a b =
    match (a, b) with
    | Inf, x | x, Inf -> x
    | Fin x, Fin y -> Fin (min x y)

  let mul a b =
    match (a, b) with
    | Inf, _ | _, Inf -> Inf
    | Fin x, Fin y -> Fin (max x y)

  let equal = equal_extended
  let pp = pp_extended
end

(** Subsets of a universe of at most 62 points, as a boolean algebra
    (P(X), ∪, ∩) over an int bitmask. *)
module Bitset (U : sig
  val universe_size : int
end) : Intf.FINITE with type t = int = struct
  type t = int

  let () =
    if U.universe_size < 0 || U.universe_size > 62 then
      invalid_arg "Bitset: universe size must be in [0, 62]"

  let zero = 0
  let one = (1 lsl U.universe_size) - 1
  let add = ( lor )
  let mul = ( land )
  let equal = Int.equal

  let elements =
    if U.universe_size > 16 then
      invalid_arg "Bitset.elements: universe too large to enumerate"
    else List.init (1 lsl U.universe_size) Fun.id

  let pp fmt s =
    Format.pp_print_char fmt '{';
    let first = ref true in
    for i = 0 to U.universe_size - 1 do
      if s land (1 lsl i) <> 0 then begin
        if not !first then Format.pp_print_char fmt ',';
        first := false;
        Format.pp_print_int fmt i
      end
    done;
    Format.pp_print_char fmt '}'
end

(** Product semiring, componentwise operations. *)
module Product (A : Intf.BASIC) (B : Intf.BASIC) :
  Intf.BASIC with type t = A.t * B.t = struct
  type t = A.t * B.t

  let zero = (A.zero, B.zero)
  let one = (A.one, B.one)
  let add (a1, b1) (a2, b2) = (A.add a1 a2, B.add b1 b2)
  let mul (a1, b1) (a2, b2) = (A.mul a1 a2, B.mul b1 b2)
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2
  let pp fmt (a, b) = Format.fprintf fmt "(%a, %a)" A.pp a B.pp b
end
