lib/semiring/intf.ml: Format List
