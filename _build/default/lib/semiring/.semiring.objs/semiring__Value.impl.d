lib/semiring/value.ml: Bool Format Instances Int Intf List Printf Rat String Tropical Zmod
