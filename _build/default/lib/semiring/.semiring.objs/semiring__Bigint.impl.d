lib/semiring/bigint.ml: Array Buffer Char Format Intf List Option Printf Stdlib String
