lib/semiring/tropical.ml: Format Instances Intf
