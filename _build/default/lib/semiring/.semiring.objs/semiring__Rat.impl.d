lib/semiring/rat.ml: Bigint Format Intf
