lib/semiring/instances.ml: Bool Format Fun Int Intf List
