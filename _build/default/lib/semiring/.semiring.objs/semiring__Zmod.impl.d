lib/semiring/zmod.ml: Format Fun Int Intf List
