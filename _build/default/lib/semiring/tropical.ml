(** Tropical semirings: (ℕ ∪ {+∞}, min, +) and (ℚ ∪ {−∞}, max, +) from the
    paper's introduction. Min-plus evaluates a weighted query to the minimum
    total cost of a match (e.g. the cheapest directed triangle); max-plus is
    the outer semiring of the neighbor-average example. *)

type t = Instances.extended

(** (ℕ ∪ {+∞}, min, +): zero = +∞, one = 0. *)
module Min_plus : Intf.BASIC with type t = Instances.extended = struct
  type t = Instances.extended

  open Instances

  let zero = Inf
  let one = Fin 0

  let add a b =
    match (a, b) with Inf, x | x, Inf -> x | Fin x, Fin y -> Fin (min x y)

  let mul a b =
    match (a, b) with Inf, _ | _, Inf -> Inf | Fin x, Fin y -> Fin (x + y)

  let equal = equal_extended
  let pp = pp_extended
end

type maxplus = NegInf | MFin of int

(** (ℤ ∪ {−∞}, max, +): zero = −∞, one = 0. *)
module Max_plus : Intf.BASIC with type t = maxplus = struct
  type t = maxplus

  let zero = NegInf
  let one = MFin 0

  let add a b =
    match (a, b) with
    | NegInf, x | x, NegInf -> x
    | MFin x, MFin y -> MFin (max x y)

  let mul a b =
    match (a, b) with
    | NegInf, _ | _, NegInf -> NegInf
    | MFin x, MFin y -> MFin (x + y)

  let equal a b =
    match (a, b) with
    | NegInf, NegInf -> true
    | MFin x, MFin y -> x = y
    | _ -> false

  let pp fmt = function
    | NegInf -> Format.pp_print_string fmt "−∞"
    | MFin n -> Format.pp_print_int fmt n
end
