(** Arbitrary-precision integers, sign-magnitude over base-2^30 limbs.

    The sealed build environment has no [zarith]; exact arithmetic over the
    rationals (needed e.g. for the PageRank query of Example 9) is built on
    this module. Little-endian limb order; the magnitude array never has a
    trailing zero limb. *)

type t = { sign : int; mag : int array }
(* Invariants: [sign] is -1, 0 or 1; [sign = 0] iff [mag = [||]];
   each limb is in [0, base); the highest limb is nonzero. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

let zero = { sign = 0; mag = [||] }
let is_zero a = a.sign = 0

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else
    let sign = if i < 0 then -1 else 1 in
    let i = abs i in
    let rec limbs i = if i = 0 then [] else (i land mask) :: limbs (i lsr base_bits) in
    { sign; mag = Array.of_list (limbs i) }

let one = of_int 1
let minus_one = of_int (-1)

(* Magnitude comparison: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.mag.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) r
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

(* Multiply a magnitude by a small non-negative int. *)
let mul_small mag k =
  if k = 0 then [||]
  else begin
    let l = Array.length mag in
    let r = Array.make (l + 2) 0 in
    let carry = ref 0 in
    for i = 0 to l - 1 do
      let s = (mag.(i) * k) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    r.(l) <- !carry land mask;
    r.(l + 1) <- !carry lsr base_bits;
    r
  end

(* Shift a magnitude left by [n] whole limbs. *)
let shift_limbs mag n =
  if Array.length mag = 0 then mag
  else Array.append (Array.make n 0) mag

(* Euclidean division of magnitudes: returns (quotient, remainder).
   Quotient limbs are found by binary search over [0, base), using only
   multiplication by a small int and magnitude comparison; O(30) compares
   per quotient limb, which is plenty fast for the sizes we handle. *)
let divmod_mag a b =
  if cmp_mag a b < 0 then ([||], a)
  else begin
    let la = Array.length a and lb = Array.length b in
    let lq = la - lb + 1 in
    let q = Array.make lq 0 in
    let rem = ref a in
    for pos = lq - 1 downto 0 do
      let shifted = shift_limbs b pos in
      (* Largest d with d * shifted <= rem. *)
      let lo = ref 0 and hi = ref mask in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        let prod = normalize 1 (mul_small shifted mid) in
        if cmp_mag prod.mag !rem <= 0 then lo := mid else hi := mid - 1
      done;
      let d = !lo in
      q.(pos) <- d;
      if d > 0 then begin
        let prod = normalize 1 (mul_small shifted d) in
        rem := (normalize 1 (sub_mag !rem prod.mag)).mag
      end
    done;
    (q, !rem)
  end

(** Truncated division and remainder with [rem] having the sign of [a]
    (like OCaml's [/] and [mod]). Raises [Division_by_zero]. *)
let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    (normalize (a.sign * b.sign) q, normalize a.sign r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let abs a = if a.sign < 0 then neg a else a

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let sign a = a.sign

(** [to_int a] if it fits in a native int. *)
let to_int_opt a =
  if Array.length a.mag > 2 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) a.mag 0 in
    if v < 0 then None else Some (a.sign * v)
  end

let to_int_exn a =
  match to_int_opt a with Some v -> v | None -> invalid_arg "Bigint.to_int_exn"

let to_string a =
  if is_zero a then "0"
  else begin
    let chunk = of_int 1_000_000_000 in
    let buf = Buffer.create 32 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else
        let q, r = divmod_mag m chunk.mag in
        let rv = (normalize 1 r) |> to_int_opt |> Option.value ~default:0 in
        go (normalize 1 q).mag (rv :: acc)
    in
    (match go a.mag [] with
    | [] -> Buffer.add_char buf '0'
    | hd :: tl ->
        if a.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int hd);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) tl);
    Buffer.contents buf
  end

let of_string s =
  let s, sign = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1) else (s, 1) in
  let ten = of_int 10 in
  let v =
    String.fold_left
      (fun acc c ->
        if c < '0' || c > '9' then invalid_arg "Bigint.of_string";
        add (mul acc ten) (of_int (Char.code c - Char.code '0')))
      zero s
  in
  if sign < 0 then neg v else v

let pp fmt a = Format.pp_print_string fmt (to_string a)

(** The ring (ℤ, +, ·) packaged as a module. *)
module Ring : Intf.RING with type t = t = struct
  type nonrec t = t

  let zero = zero
  let one = one
  let add = add
  let mul = mul
  let neg = neg
  let sub = sub
  let equal = equal
  let pp = pp
end
