(** Exact rationals over {!Bigint}, always kept in lowest terms with a
    positive denominator. The field (ℚ, +, ·) is the value domain of the
    paper's PageRank example (Example 9) and of the division connective in
    nested weighted queries (Section 7). *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  let g = Bigint.gcd num den in
  let num, den = (Bigint.div num g, Bigint.div den g) in
  if Bigint.sign den < 0 then { num = Bigint.neg num; den = Bigint.neg den }
  else { num; den }

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)

(** [of_ints p q] is the rational p/q. *)
let of_ints p q = make (Bigint.of_int p) (Bigint.of_int q)

let num t = t.num
let den t = t.den
let is_zero t = Bigint.is_zero t.num

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let neg a = { a with num = Bigint.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv a =
  if is_zero a then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

(** Total division as a connective: [p / 0 = 0], following the paper's
    convention for the division connective in Section 7. *)
let div_total a b = if is_zero b then zero else div a b

let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let to_float a =
  (* Good enough for reporting: convert through strings when small. *)
  match (Bigint.to_int_opt a.num, Bigint.to_int_opt a.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ ->
      float_of_string (Bigint.to_string a.num) /. float_of_string (Bigint.to_string a.den)

let pp fmt a =
  if Bigint.equal a.den Bigint.one then Bigint.pp fmt a.num
  else Format.fprintf fmt "%a/%a" Bigint.pp a.num Bigint.pp a.den

let to_string a = Format.asprintf "%a" pp a

(** The field (ℚ, +, ·) packaged as a ring module. *)
module Ring : Intf.RING with type t = t = struct
  type nonrec t = t

  let zero = zero
  let one = one
  let add = add
  let mul = mul
  let neg = neg
  let sub = sub
  let equal = equal
  let pp = pp
end
