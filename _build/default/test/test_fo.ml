(* Tests for Theorem 22 (provenance iterators) and Theorem 24 (constant-
   delay enumeration of FO answers, static and dynamic). *)

(* The explicit free semiring over string generators, as a module for the
   brute-force reference evaluator. *)
module FreeStr = struct
  type t = string Provenance.Free.mono list

  let zero : t = Provenance.Free.Explicit.zero
  let one : t = Provenance.Free.Explicit.one
  let add = Provenance.Free.Explicit.add
  let mul = Provenance.Free.Explicit.mul
  let equal = Provenance.Free.Explicit.equal
  let pp fmt x = Provenance.Free.Explicit.pp Format.pp_print_string fmt x
end

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* Example 21: directed graph a,b,c,d with edges ab, bc, ca, bd, da *)
let example21 () =
  let inst = Db.Instance.create Db.Schema.graph_schema ~n:4 in
  (* a=0 b=1 c=2 d=3 *)
  List.iter (fun t -> Db.Instance.add inst "E" t) [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 1; 3 ]; [ 3; 0 ] ];
  inst

let edge_name = function
  | [ a; b ] -> Printf.sprintf "e%d%d" a b
  | _ -> assert false

let triangle_prov_expr =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
          Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
          Logic.Expr.Weight ("w", [ v "z"; v "x" ]);
        ] )

(* weights nonzero only on E-tuples, value = the edge identifier *)
let prov_weights inst =
  let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:FreeStr.zero in
  Db.Weights.fill_from_relation w inst "E" (fun tup ->
      Provenance.Free.Explicit.of_mono [ edge_name tup ]);
  Db.Weights.bundle [ w ]

let provenance_example21 () =
  let inst = example21 () in
  (* reference: brute-force evaluation in the explicit free semiring *)
  let expected =
    Logic.Expr.eval (module FreeStr) inst (prov_weights inst) triangle_prov_expr ()
  in
  (* enumerated: Theorem 22 through circuits and iterator permanents *)
  let prov =
    Provenance.Prov_circuit.prepare inst triangle_prov_expr ~weight:(fun _w tuple ->
        if Db.Instance.mem inst "E" tuple then [ [ edge_name tuple ] ] else [])
  in
  let monomials = Enum.Iter.to_list (Provenance.Prov_circuit.enumerate prov) in
  let got = List.sort compare monomials in
  Alcotest.(check (list (list string))) "triangle provenance" expected got;
  (* the two directed triangles abc and abd, each in 3 rotations *)
  check_int "six monomials" 6 (List.length got);
  check_bool "contains eab·ebc·eca" true
    (List.mem (List.sort compare [ "e01"; "e12"; "e20" ]) got);
  check_bool "contains eab·ebd·eda" true
    (List.mem (List.sort compare [ "e01"; "e13"; "e30" ]) got)

let provenance_update () =
  let inst = example21 () in
  let prov =
    Provenance.Prov_circuit.prepare inst triangle_prov_expr ~weight:(fun _w tuple ->
        if Db.Instance.mem inst "E" tuple then [ [ edge_name tuple ] ] else [])
  in
  (* kill edge bc: triangle abc disappears *)
  Provenance.Prov_circuit.update prov "w" [ 1; 2 ] [];
  let got = List.sort compare (Enum.Iter.to_list (Provenance.Prov_circuit.enumerate prov)) in
  check_int "three monomials left" 3 (List.length got);
  check_bool "abd survives" true (List.mem (List.sort compare [ "e01"; "e13"; "e30" ]) got);
  (* restore with a renamed identifier *)
  Provenance.Prov_circuit.update prov "w" [ 1; 2 ] [ [ "FRESH" ] ];
  let got = List.sort compare (Enum.Iter.to_list (Provenance.Prov_circuit.enumerate prov)) in
  check_int "six again" 6 (List.length got);
  check_bool "renamed edge appears" true
    (List.mem (List.sort compare [ "e01"; "FRESH"; "e20" ]) got)

(* --- Theorem 24: FO enumeration --- *)

let brute_answers inst fv phi =
  let n = Db.Instance.n inst in
  let rec go env = function
    | [] -> if Logic.Formula.holds inst env phi then [ List.map (fun x -> List.assoc x env) fv ] else []
    | x :: rest ->
        List.concat_map (fun a -> go ((x, a) :: env) rest) (List.init n Fun.id)
  in
  List.sort compare (go [] fv)

let suite_graphs =
  [
    ("grid3x4", Graphs.Gen.grid 3 4);
    ("cycle7", Graphs.Gen.cycle 7);
    ("tri-grid3x3", Graphs.Gen.triangulated_grid 3 3);
    ("rand", Graphs.Gen.random_sparse ~seed:5 ~n:12 ~avg_deg:3);
    ("K4", Graphs.Gen.complete 4);
  ]

let enum_query name phi () =
  List.iter
    (fun (gname, g) ->
      let inst = Db.Instance.of_graph g in
      let t = Fo_enum.prepare inst phi in
      let fv = Fo_enum.free_vars t in
      let got = List.sort compare (List.map Array.to_list (Fo_enum.answers t)) in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "%s on %s" name gname)
        (brute_answers inst fv phi) got;
      check_int
        (Printf.sprintf "%s on %s: distinct" name gname)
        (List.length got)
        (List.length (List.sort_uniq compare got)))
    suite_graphs

let phi_edges = e "x" "y"

let phi_triangle = Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]

let phi_nonedge =
  Logic.Formula.And [ Logic.Formula.neq (v "x") (v "y"); Logic.Formula.Not (e "x" "y") ]

let phi_path2 =
  Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]

(* guarded quantification: x with a neighbor that has degree ≥ 2, via
   materialization of ∃z (E(y,z) ∧ z ≠ x) — wait, that has two free vars;
   use a purely guarded one instead: ∃y E(x,y) *)
let phi_has_neighbor = Logic.Formula.Exists ("y", e "x" "y")

let phi_isolated = Logic.Formula.Not (Logic.Formula.Exists ("y", e "x" "y"))

let materialization () =
  let g = Graphs.Gen.star 6 in
  let inst = Db.Instance.of_graph g in
  (* add an isolated vertex by building a bigger instance *)
  let inst2 = Db.Instance.create Db.Schema.graph_schema ~n:8 in
  Db.Instance.iter_tuples inst "E" (fun t -> Db.Instance.add inst2 "E" t);
  let t = Fo_enum.prepare inst2 phi_has_neighbor in
  check_int "vertices with neighbors" 6 (List.length (Fo_enum.answers t));
  let t2 = Fo_enum.prepare inst2 phi_isolated in
  check_int "isolated vertices" 2 (List.length (Fo_enum.answers t2))

let dynamic_enum () =
  let g = Graphs.Gen.grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let gaifman = Db.Instance.gaifman inst in
  let t = Fo_enum.prepare ~dynamic:true inst phi_path2 in
  let reference inst = brute_answers inst (Fo_enum.free_vars t) phi_path2 in
  let check_now msg inst' =
    Alcotest.(check (list (list int)))
      msg (reference inst')
      (List.sort compare (List.map Array.to_list (Fo_enum.answers t)))
  in
  (* removing and re-adding edges preserves the (initial) Gaifman graph *)
  Fo_enum.set_tuple t ~gaifman "E" [ 0; 1 ] false;
  check_now "after removing 0→1" (Fo_enum.instance t);
  Fo_enum.set_tuple t ~gaifman "E" [ 0; 1 ] true;
  check_now "after re-adding 0→1" (Fo_enum.instance t);
  Fo_enum.set_tuple t ~gaifman "E" [ 1; 0 ] false;
  Fo_enum.set_tuple t ~gaifman "E" [ 3; 4 ] false;
  check_now "after removing two more" (Fo_enum.instance t)


let bidirectional_enumeration () =
  let g = Graphs.Gen.grid 3 3 in
  let inst = Db.Instance.of_graph g in
  let t = Fo_enum.prepare inst phi_edges in
  let it = Fo_enum.enumerate t in
  let fwd = List.map Array.to_list (Enum.Iter.to_list it) in
  let bwd = List.map Array.to_list (Enum.Iter.to_list_rev it) in
  Alcotest.(check (list (list int))) "backward = reverse of forward" (List.rev fwd) bwd;
  (* interleave next/prev: one step forward then one back returns to start *)
  Enum.Iter.reset it;
  Enum.Iter.next it;
  let first = Enum.Iter.current it in
  Enum.Iter.next it;
  Enum.Iter.prev it;
  Alcotest.(check bool) "next;next;prev = next" true (Enum.Iter.current it = first)

let suite =
  [
    Alcotest.test_case "provenance of Example 21" `Quick provenance_example21;
    Alcotest.test_case "provenance updates" `Quick provenance_update;
    Alcotest.test_case "enumerate edges" `Quick (enum_query "edges" phi_edges);
    Alcotest.test_case "enumerate triangles" `Quick (enum_query "triangles" phi_triangle);
    Alcotest.test_case "enumerate non-edges" `Quick (enum_query "non-edges" phi_nonedge);
    Alcotest.test_case "enumerate 2-paths" `Quick (enum_query "2-paths" phi_path2);
    Alcotest.test_case "guarded materialization" `Quick materialization;
    Alcotest.test_case "bi-directional enumeration" `Quick bidirectional_enumeration;
    Alcotest.test_case "dynamic enumeration" `Quick dynamic_enum;
  ]
