(* Tests for bi-directional iterators and doubly-linked lists (paper §5). *)

open Enum

let check_ilist = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let of_list_roundtrip () =
  check_ilist "forward" [ 1; 2; 3 ] (Iter.to_list (Iter.of_list [ 1; 2; 3 ]));
  check_ilist "empty" [] (Iter.to_list (Iter.of_list []));
  check_ilist "backward" [ 3; 2; 1 ] (Iter.to_list_rev (Iter.of_list [ 1; 2; 3 ]))

let cyclic_wraparound () =
  let it = Iter.of_list [ 10; 20 ] in
  Iter.next it;
  Alcotest.(check (option int)) "first" (Some 10) (Iter.current it);
  Iter.next it;
  Alcotest.(check (option int)) "second" (Some 20) (Iter.current it);
  Iter.next it;
  Alcotest.(check (option int)) "bottom" None (Iter.current it);
  Iter.next it;
  Alcotest.(check (option int)) "wrapped to first" (Some 10) (Iter.current it);
  Iter.prev it;
  Alcotest.(check (option int)) "back to bottom" None (Iter.current it);
  Iter.prev it;
  Alcotest.(check (option int)) "back to last" (Some 20) (Iter.current it)

let concat_skips_empty () =
  let it = Iter.concat [ Iter.of_list []; Iter.of_list [ 1 ]; Iter.empty; Iter.of_list [ 2; 3 ] ] in
  check_ilist "concat" [ 1; 2; 3 ] (Iter.to_list it);
  Iter.reset it;
  check_ilist "concat again after reset" [ 1; 2; 3 ] (Iter.to_list it);
  check_ilist "concat backward" [ 3; 2; 1 ] (Iter.to_list_rev it);
  check_bool "emptiness" true (Iter.is_empty (Iter.concat [ Iter.empty; Iter.of_list [] ]))

let product_lexicographic () =
  let p = Iter.product (Iter.of_list [ 1; 2 ]) (Iter.of_list [ 10; 20; 30 ]) in
  Alcotest.(check (list (pair int int)))
    "product order"
    [ (1, 10); (1, 20); (1, 30); (2, 10); (2, 20); (2, 30) ]
    (Iter.to_list p);
  Alcotest.(check (list (pair int int)))
    "product backward"
    [ (2, 30); (2, 20); (2, 10); (1, 30); (1, 20); (1, 10) ]
    (Iter.to_list_rev p);
  check_bool "product with empty" true (Iter.is_empty (Iter.product Iter.empty (Iter.of_list [ 1 ])));
  check_ilist "product with empty drains to nothing" []
    (List.map fst (Iter.to_list (Iter.product (Iter.of_list [ 1 ]) (Iter.of_list ([] : int list)))))

let map_works () =
  check_ilist "map" [ 2; 4; 6 ] (Iter.to_list (Iter.map (fun x -> 2 * x) (Iter.of_list [ 1; 2; 3 ])))

let dep_product_works () =
  (* inner depends on outer; all inners nonempty as required *)
  let it =
    Iter.dep_product (Iter.of_list [ 1; 2; 3 ]) (fun a -> Iter.of_list [ a * 10; a * 10 + 1 ])
  in
  Alcotest.(check (list (pair int int)))
    "dep_product"
    [ (1, 10); (1, 11); (2, 20); (2, 21); (3, 30); (3, 31) ]
    (Iter.to_list it);
  Alcotest.(check (list (pair int int)))
    "dep_product backward"
    [ (3, 31); (3, 30); (2, 21); (2, 20); (1, 11); (1, 10) ]
    (Iter.to_list_rev it)

let nested_products () =
  let triple =
    Iter.product (Iter.of_list [ 0; 1 ]) (Iter.product (Iter.of_list [ 0; 1 ]) (Iter.of_list [ 0; 1 ]))
  in
  check_int "8 binary triples" 8 (Iter.length triple)

let dll_ops () =
  let d = Dll.create () in
  let n1 = Dll.push_back d 1 in
  let _n2 = Dll.push_back d 2 in
  let n3 = Dll.push_back d 3 in
  check_ilist "dll contents" [ 1; 2; 3 ] (Dll.to_list d);
  Dll.remove d n1;
  check_ilist "after removing head" [ 2; 3 ] (Dll.to_list d);
  Dll.remove d n3;
  check_ilist "after removing tail" [ 2 ] (Dll.to_list d);
  check_int "length" 1 (Dll.length d);
  let n4 = Dll.push_back d 4 in
  check_ilist "after push" [ 2; 4 ] (Dll.to_list d);
  Dll.remove d n4;
  Alcotest.check_raises "double remove rejected" (Invalid_argument "Dll.remove: node not in this list")
    (fun () -> Dll.remove d n4)

let dll_iter () =
  let d = Dll.create () in
  List.iter (fun v -> ignore (Dll.push_back d v)) [ 5; 6; 7 ];
  check_ilist "iterate dll" [ 5; 6; 7 ] (Iter.to_list (Iter.of_dll d));
  check_ilist "iterate dll backward" [ 7; 6; 5 ] (Iter.to_list_rev (Iter.of_dll d))

let qcheck_product_count =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"product length = product of lengths"
       QCheck.(pair (list_of_size Gen.(0 -- 8) small_int) (list_of_size Gen.(0 -- 8) small_int))
       (fun (a, b) ->
         Iter.length (Iter.product (Iter.of_list a) (Iter.of_list b))
         = List.length a * List.length b))

let qcheck_concat_order =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"concat = list append"
       QCheck.(pair (small_list small_int) (small_list small_int))
       (fun (a, b) ->
         Iter.to_list (Iter.concat [ Iter.of_list a; Iter.of_list b ]) = a @ b))

let qcheck_bidirectional =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"backward = reverse of forward" QCheck.(small_list small_int)
       (fun l ->
         let it = Iter.of_list l in
         Iter.to_list_rev it = List.rev (Iter.to_list it)))

let suite =
  [
    Alcotest.test_case "of_list roundtrip" `Quick of_list_roundtrip;
    Alcotest.test_case "cyclic wraparound" `Quick cyclic_wraparound;
    Alcotest.test_case "concat skips empty" `Quick concat_skips_empty;
    Alcotest.test_case "product lexicographic" `Quick product_lexicographic;
    Alcotest.test_case "map" `Quick map_works;
    Alcotest.test_case "dep_product" `Quick dep_product_works;
    Alcotest.test_case "nested products" `Quick nested_products;
    Alcotest.test_case "dll operations" `Quick dll_ops;
    Alcotest.test_case "dll iteration" `Quick dll_iter;
    qcheck_product_count;
    qcheck_concat_order;
    qcheck_bidirectional;
  ]
