(* Tests for the graph substrate: generators, degeneracy orientations,
   DFS/elimination forests, and low-treedepth colorings. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let generator_shapes () =
  check_int "path edges" 9 (Graphs.Graph.m (Graphs.Gen.path 10));
  check_int "cycle edges" 9 (Graphs.Graph.m (Graphs.Gen.cycle 9));
  check_int "star edges" 9 (Graphs.Graph.m (Graphs.Gen.star 10));
  check_int "K5 edges" 10 (Graphs.Graph.m (Graphs.Gen.complete 5));
  check_int "grid 4x3 edges" ((3 * 3) + (4 * 2)) (Graphs.Graph.m (Graphs.Gen.grid 4 3));
  let g = Graphs.Gen.caterpillar ~spine:4 ~legs:2 in
  check_int "caterpillar n" 12 (Graphs.Graph.n g);
  check_int "caterpillar edges (tree)" 11 (Graphs.Graph.m g)

let bounded_degree_respected =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random_bounded_degree respects cap" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 4 60))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
         List.for_all (fun v -> Graphs.Graph.degree g v <= 3) (List.init n Fun.id)))

let trees_are_trees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random_tree is connected and acyclic" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 2 60))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_tree ~seed ~n in
         let _, ncomp = Graphs.Graph.components g in
         ncomp = 1 && Graphs.Graph.m g = n - 1))

let induced_subgraph () =
  let g = Graphs.Gen.grid 3 3 in
  let sub, _, new_to_old = Graphs.Graph.induced g (fun v -> v mod 2 = 0) in
  check_int "vertices kept" 5 (Graphs.Graph.n sub);
  (* all surviving edges join originally adjacent pairs *)
  check_bool "edges preserved" true
    (List.for_all
       (fun (u, v) -> Graphs.Graph.has_edge g new_to_old.(u) new_to_old.(v))
       (Graphs.Graph.edges sub))

let degeneracy_orientation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"degeneracy orientation: acyclic, covers edges" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 2 50))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:4 in
         let o = Graphs.Orient.degeneracy_order g in
         (* every arc goes forward in the elimination order *)
         let acyclic = ref true in
         Array.iteri
           (fun v outs ->
             Array.iter
               (fun w -> if o.Graphs.Orient.rank.(w) <= o.Graphs.Orient.rank.(v) then acyclic := false)
               outs)
           o.Graphs.Orient.out;
         (* arc count equals edge count *)
         let arcs = Array.fold_left (fun acc a -> acc + Array.length a) 0 o.Graphs.Orient.out in
         !acyclic && arcs = Graphs.Graph.m g
         && Graphs.Orient.max_out_degree o <= o.Graphs.Orient.degeneracy))

let grid_degeneracy () =
  (* grids are 2-degenerate *)
  let o = Graphs.Orient.degeneracy_order (Graphs.Gen.grid 10 10) in
  check_int "grid degeneracy" 2 o.Graphs.Orient.degeneracy;
  let o = Graphs.Orient.degeneracy_order (Graphs.Gen.random_tree ~seed:3 ~n:50) in
  check_int "tree degeneracy" 1 o.Graphs.Orient.degeneracy

let dfs_forest_props =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"DFS forest: elimination property on random graphs" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 2 40))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let f = Graphs.Forest.dfs_forest g in
         Graphs.Forest.is_elimination_forest f g))

let elim_forest_props =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"center-removal forest: elimination property" ~count:30
       QCheck.(pair (int_range 0 1000) (int_range 2 40))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let f = Graphs.Treedepth.elimination_forest g in
         Graphs.Forest.is_elimination_forest f g))

let forest_navigation () =
  (* a two-level forest: 0 root of {1,2}; 1 parent of {3} *)
  let f = Graphs.Forest.of_parents [| 0; 0; 0; 1 |] in
  check_int "depth 3" 2 (Graphs.Forest.depth f 3);
  check_int "ancestor clamps at root" 0 (Graphs.Forest.ancestor f 3 10);
  Alcotest.(check (option int)) "ancestor at depth 1" (Some 1)
    (Graphs.Forest.ancestor_at_depth f 3 1);
  Alcotest.(check (option int)) "no ancestor deeper than node" None
    (Graphs.Forest.ancestor_at_depth f 1 2);
  check_bool "is_ancestor" true (Graphs.Forest.is_ancestor f ~anc:0 ~of_:3);
  check_bool "not ancestor" false (Graphs.Forest.is_ancestor f ~anc:2 ~of_:3);
  Alcotest.(check (list int)) "roots" [ 0 ] (Graphs.Forest.roots f);
  check_int "max depth" 2 (Graphs.Forest.max_depth f)

let coloring_proper =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"tfa coloring is proper on the input graph" ~count:20
       QCheck.(pair (int_range 0 1000) (int_range 4 40))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let c = Graphs.Tfa.low_treedepth_coloring g ~p:2 in
         List.for_all
           (fun (u, v) -> c.Graphs.Tfa.color.(u) <> c.Graphs.Tfa.color.(v))
           (Graphs.Graph.edges g)))

let color_subsets_count () =
  let subs = Graphs.Tfa.color_subsets ~num_colors:5 ~p:2 in
  (* C(5,1) + C(5,2) = 5 + 10 *)
  check_int "subsets of size <= 2" 15 (List.length subs)

let rand_deterministic () =
  let a = Graphs.Rand.create 7 and b = Graphs.Rand.create 7 in
  check_bool "same stream" true
    (List.for_all
       (fun _ -> Graphs.Rand.int a 1000 = Graphs.Rand.int b 1000)
       (List.init 100 Fun.id));
  let r = Graphs.Rand.create 9 in
  check_bool "bounded" true
    (List.for_all
       (fun _ ->
         let x = Graphs.Rand.int r 17 in
         x >= 0 && x < 17)
       (List.init 1000 Fun.id))

let suite =
  [
    Alcotest.test_case "generator shapes" `Quick generator_shapes;
    bounded_degree_respected;
    trees_are_trees;
    Alcotest.test_case "induced subgraph" `Quick induced_subgraph;
    degeneracy_orientation;
    Alcotest.test_case "known degeneracies" `Quick grid_degeneracy;
    dfs_forest_props;
    elim_forest_props;
    Alcotest.test_case "forest navigation" `Quick forest_navigation;
    coloring_proper;
    Alcotest.test_case "color subsets" `Quick color_subsets_count;
    Alcotest.test_case "deterministic prng" `Quick rand_deterministic;
  ]
