(* Tests for nested weighted queries (FOG[C], Theorem 26): the two worked
   examples from the paper's introduction, the type checker, and
   enumeration of boolean-valued nested queries. *)

open Semiring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let v x = Logic.Term.Var x

(* A small graph with natural vertex weights. *)
let setup () =
  let g = Graphs.Gen.grid 3 3 in
  let inst = Db.Instance.of_graph g in
  (* guard relation V = all vertices *)
  let inst =
    Db.Instance.with_relation inst "V"
      ~arity:1
      (List.init (Db.Instance.n inst) (fun i -> [ i ]))
  in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:(Value.I 0) in
  Db.Weights.fill_unary w ~n:(Db.Instance.n inst) (fun i -> Value.I (((i * 3) + 1) mod 7));
  let st = Nested.make_structure inst [ (w, Value.nat_sr) ] in
  (g, inst, st)

let wval i = ((i * 3) + 1) mod 7

(* Intro example 1: max_x (Σ_y [E(x,y)]·w(y)) / (Σ_y [E(x,y)])
   — maximum over vertices of the average weight of the neighbors. *)
let neighbor_average () =
  let g, _inst, st = setup () in
  let sum_w =
    Nested.Sum
      ( [ "y" ],
        Nested.Mul
          [ Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr); Nested.Srel ("w", [ v "y" ]) ] )
  in
  let count =
    Nested.Sum ([ "y" ], Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr))
  in
  let avg = Nested.Guarded ("V", [ "x" ], Value.div_nat_rat, [ sum_w; count ]) in
  let as_max = Nested.Guarded ("V", [ "x" ], Value.rat_to_rat_max, [ avg ]) in
  let query = Nested.Sum ([ "x" ], as_max) in
  (* type checks to rat-max *)
  check_bool "type" true (Value.same_sr (Nested.type_of st query) Value.rat_max_sr);
  let result = Nested.eval st query in
  (* brute-force expected value *)
  let n = Graphs.Graph.n g in
  let best = ref None in
  for x = 0 to n - 1 do
    let nbrs = Graphs.Graph.neighbors g x in
    if nbrs <> [] then begin
      let avg =
        Rat.of_ints (List.fold_left (fun acc y -> acc + wval y) 0 nbrs) (List.length nbrs)
      in
      match !best with
      | None -> best := Some avg
      | Some b -> if Rat.compare avg b > 0 then best := Some avg
    end
  done;
  match (result, !best) with
  | Value.RM (Some got), Some expected ->
      check_bool
        (Printf.sprintf "max avg = %s vs %s" (Rat.to_string got) (Rat.to_string expected))
        true
        (Rat.equal got expected)
  | _ -> Alcotest.fail "unexpected result shape"

(* Intro example 2: f(x) = ∃y E(x,y) ∧ (w(y) > Σ_z [E(y,z)]·w(z)):
   does x have a neighbor whose weight beats the sum of its neighbors'? *)
let dominant_neighbor () =
  let g, _inst, st = setup () in
  let inner_sum =
    Nested.Sum
      ( [ "z" ],
        Nested.Mul
          [ Nested.Iverson (Nested.Brel ("E", [ v "y"; v "z" ]), Value.nat_sr); Nested.Srel ("w", [ v "z" ]) ] )
  in
  let beats =
    Nested.Guarded ("V", [ "y" ], Value.gt, [ Nested.Srel ("w", [ v "y" ]) ; inner_sum ])
  in
  let f_x = Nested.Sum ([ "y" ], Nested.Mul [ Nested.Brel ("E", [ v "x"; v "y" ]) ; beats ]) in
  check_bool "type bool" true (Value.same_sr (Nested.type_of st f_x) Value.bool_sr);
  (* query at every vertex and compare with brute force *)
  let fv, q = Nested.query st f_x in
  Alcotest.(check (list string)) "free vars" [ "x" ] fv;
  let n = Graphs.Graph.n g in
  let brute x =
    List.exists
      (fun y ->
        let s = List.fold_left (fun acc z -> acc + wval z) 0 (Graphs.Graph.neighbors g y) in
        wval y > s)
      (Graphs.Graph.neighbors g x)
  in
  for x = 0 to n - 1 do
    check_bool (Printf.sprintf "f(%d)" x) (brute x) (Value.as_bool (q [ x ]))
  done;
  (* and enumeration of the answer set (Theorem 26, last part) *)
  let _, it = Nested.enumerate st f_x in
  let answers = List.sort compare (List.map (fun a -> a.(0)) (Enum.Iter.to_list it)) in
  let expected = List.filter brute (List.init n Fun.id) in
  Alcotest.(check (list int)) "enumerated answers" expected answers

(* counting with aggregates: vertices whose degree is at least 3 *)
let high_degree () =
  let g, _inst, st = setup () in
  let count =
    Nested.Sum ([ "y" ], Nested.Iverson (Nested.Brel ("E", [ v "x"; v "y" ]), Value.nat_sr))
  in
  let high =
    Nested.Guarded ("V", [ "x" ], Value.geq, [ count; Nested.Const (Value.I 3, Value.nat_sr) ])
  in
  let total = Nested.Sum ([ "x" ], Nested.Iverson (high, Value.nat_sr)) in
  let result = Nested.eval st total in
  let expected =
    List.length
      (List.filter (fun x -> Graphs.Graph.degree g x >= 3) (List.init (Graphs.Graph.n g) Fun.id))
  in
  check_int "high-degree count" expected (Value.as_int result)

let type_errors () =
  let _, _, st = setup () in
  let mixed = Nested.Add [ Nested.Srel ("w", [ v "x" ]); Nested.Brel ("E", [ v "x"; v "x" ]) ] in
  check_bool "mixed semirings rejected" true
    (try
       ignore (Nested.type_of st mixed);
       false
     with Nested.Ill_typed _ -> true);
  let unguarded =
    Nested.Guarded ("V", [ "x" ], Value.gt,
      [ Nested.Srel ("w", [ v "y" ]); Nested.Const (Value.I 0, Value.nat_sr) ])
  in
  check_bool "unguarded free variable rejected" true
    (try
       ignore (Nested.type_of st unguarded);
       false
     with Nested.Ill_typed _ -> true);
  check_bool "unknown relation rejected" true
    (try
       ignore (Nested.type_of st (Nested.Brel ("NOPE", [ v "x" ])));
       false
     with Nested.Ill_typed _ -> true)

let suite =
  [
    Alcotest.test_case "neighbor average (intro ex. 1)" `Quick neighbor_average;
    Alcotest.test_case "dominant neighbor (intro ex. 2)" `Quick dominant_neighbor;
    Alcotest.test_case "degree threshold aggregate" `Quick high_degree;
    Alcotest.test_case "type checker" `Quick type_errors;
  ]
