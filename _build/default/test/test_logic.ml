(* Tests for the query language layer: terms, formulas (NNF, semantics),
   and the normalization of weighted expressions to sums of products
   (Lemma 28 / Lemma 32) — including a property test with randomly
   generated expressions checked against the direct evaluator. *)

open Logic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let v x = Term.Var x

let term_ops () =
  let t = Term.app "f" (Term.app "g" (v "x")) in
  check_bool "base" true (Term.base t = "x");
  Alcotest.(check (list string)) "spine" [ "f"; "g" ] (Term.spine t);
  check_int "depth" 2 (Term.depth t);
  check_bool "rename" true (Term.equal (Term.rename [ ("x", "y") ] t) (Term.app "f" (Term.app "g" (v "y"))));
  check_bool "pp" true (Term.to_string t = "f(g(x))")

let nnf_correct =
  (* random small formulas over E/2 and P/1: nnf preserves semantics *)
  let rec gen_formula rng depth =
    let leaf () =
      match Graphs.Rand.int rng 3 with
      | 0 -> Formula.Rel ("E", [ v "x"; v "y" ])
      | 1 -> Formula.Rel ("P", [ v "x" ])
      | _ -> Formula.Eq (v "x", v "y")
    in
    if depth = 0 then leaf ()
    else
      match Graphs.Rand.int rng 5 with
      | 0 -> Formula.Not (gen_formula rng (depth - 1))
      | 1 -> Formula.And [ gen_formula rng (depth - 1); gen_formula rng (depth - 1) ]
      | 2 -> Formula.Or [ gen_formula rng (depth - 1); gen_formula rng (depth - 1) ]
      | 3 -> Formula.Exists ("y", gen_formula rng (depth - 1))
      | _ -> leaf ()
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"nnf preserves semantics" ~count:100 QCheck.(int_range 0 100000)
       (fun seed ->
         let rng = Graphs.Rand.create seed in
         let f = gen_formula rng 3 in
         let g = Graphs.Gen.random_sparse ~seed ~n:6 ~avg_deg:2 in
         let inst = Db.Instance.of_graph g in
         let inst = Db.Instance.with_relation inst "P" ~arity:1 [ [ 0 ]; [ 3 ] ] in
         let nnf = Formula.nnf f in
         Formula.is_quantifier_free f = Formula.is_quantifier_free nnf
         && List.for_all
              (fun x ->
                List.for_all
                  (fun y ->
                    let env = [ ("x", x); ("y", y) ] in
                    Formula.holds inst env f = Formula.holds inst env nnf)
                  [ 0; 1; 2; 3; 4; 5 ])
              [ 0; 1; 2; 3; 4; 5 ]))

(* exclusive expansion: at most one product of [expand_formula f] holds *)
let expansion_exclusive_and_exhaustive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"guard expansion: exclusive and exhaustive" ~count:100
       QCheck.(int_range 0 100000)
       (fun seed ->
         let rng = Graphs.Rand.create seed in
         let rec gen depth =
           let leaf () =
             match Graphs.Rand.int rng 2 with
             | 0 -> Formula.Rel ("E", [ v "x"; v "y" ])
             | _ -> Formula.Eq (v "x", v "y")
           in
           if depth = 0 then leaf ()
           else
             match Graphs.Rand.int rng 4 with
             | 0 -> Formula.Not (gen (depth - 1))
             | 1 -> Formula.And [ gen (depth - 1); gen (depth - 1) ]
             | 2 -> Formula.Or [ gen (depth - 1); gen (depth - 1) ]
             | _ -> leaf ()
         in
         let f = gen 3 in
         let products = Normal.expand_formula (Formula.nnf f) in
         let g = Graphs.Gen.random_sparse ~seed ~n:5 ~avg_deg:2 in
         let inst = Db.Instance.of_graph g in
         let holds_product env lits =
           List.for_all
             (fun (l : Normal.literal) ->
               let sat =
                 match l.Normal.atom with
                 | Normal.ARel (r, ts) ->
                     Db.Instance.mem inst r (List.map (Term.eval inst env) ts)
                 | Normal.AEq (a, b) -> Term.eval inst env a = Term.eval inst env b
               in
               if l.Normal.pos then sat else not sat)
             lits
         in
         List.for_all
           (fun x ->
             List.for_all
               (fun y ->
                 let env = [ ("x", x); ("y", y) ] in
                 let sat_count =
                   List.length (List.filter (holds_product env) products)
                 in
                 (* exactly one product holds iff the formula holds *)
                 sat_count = if Formula.holds inst env f then 1 else 0)
               [ 0; 1; 2; 3; 4 ])
           [ 0; 1; 2; 3; 4 ]))

(* random weighted expressions: normal form evaluates like the original *)
let normalization_preserves_value =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"normalization preserves value (Lemma 28)" ~count:60
       QCheck.(int_range 0 100000)
       (fun seed ->
         let rng = Graphs.Rand.create seed in
         let vars = [ "x"; "y" ] in
         let rand_var () = List.nth vars (Graphs.Rand.int rng 2) in
         let rec gen_guard depth =
           if depth = 0 then Formula.Rel ("E", [ v (rand_var ()); v (rand_var ()) ])
           else
             match Graphs.Rand.int rng 4 with
             | 0 -> Formula.Not (gen_guard (depth - 1))
             | 1 -> Formula.And [ gen_guard (depth - 1); gen_guard (depth - 1) ]
             | 2 -> Formula.Or [ gen_guard (depth - 1); gen_guard (depth - 1) ]
             | _ -> Formula.Eq (v (rand_var ()), v (rand_var ()))
         in
         let rec gen_expr depth =
           if depth = 0 then
             match Graphs.Rand.int rng 3 with
             | 0 -> Expr.Const (Graphs.Rand.int rng 4)
             | 1 -> Expr.Weight ("u", [ v (rand_var ()) ])
             | _ -> Expr.Guard (gen_guard 1)
           else
             match Graphs.Rand.int rng 4 with
             | 0 -> Expr.Add [ gen_expr (depth - 1); gen_expr (depth - 1) ]
             | 1 -> Expr.Mul [ gen_expr (depth - 1); gen_expr (depth - 1) ]
             | 2 -> Expr.Sum ([ rand_var () ], gen_expr (depth - 1))
             | _ -> gen_expr 0
         in
         let expr = Expr.Sum ([ "x"; "y" ], gen_expr 3) in
         let g = Graphs.Gen.random_sparse ~seed ~n:5 ~avg_deg:2 in
         let inst = Db.Instance.of_graph g in
         let u = Db.Weights.create ~name:"u" ~arity:1 ~zero:0 in
         Db.Weights.fill_unary u ~n:5 (fun i -> i + 1);
         let weights = Db.Weights.bundle [ u ] in
         let direct = Expr.eval (module Semiring.Instances.Nat) inst weights expr () in
         let nf = Normal.of_expr expr in
         let via_nf = Normal.eval (module Semiring.Instances.Nat) inst weights nf () in
         direct = via_nf))

let expr_metadata () =
  let f =
    Expr.Sum
      ( [ "x" ],
        Expr.Mul [ Expr.Guard (Formula.Rel ("E", [ v "x"; v "y" ])); Expr.Weight ("w", [ v "x" ]) ] )
  in
  Alcotest.(check (list string)) "free vars" [ "y" ] (Expr.free_vars_unique f);
  check_bool "not closed" false (Expr.is_closed f);
  Alcotest.(check (list (pair string int))) "weight symbols" [ ("w", 1) ] (Expr.weight_symbols f)

let formula_metadata () =
  let f = Formula.Exists ("y", Formula.Rel ("E", [ v "x"; v "y" ])) in
  Alcotest.(check (list string)) "free vars" [ "x" ] (Formula.free_vars_unique f);
  check_bool "not qf" false (Formula.is_quantifier_free f);
  check_bool "qf after stripping" true
    (Formula.is_quantifier_free (Formula.Rel ("E", [ v "x"; v "y" ])))

let freshness () =
  (* nested sums over the same variable name must not capture *)
  let f =
    Expr.Sum
      ( [ "x" ],
        Expr.Mul
          [
            Expr.Weight ("u", [ v "x" ]);
            Expr.Sum ([ "x" ], Expr.Weight ("u", [ v "x" ]));
          ] )
  in
  let inst = Db.Instance.of_graph (Graphs.Gen.path 3) in
  let u = Db.Weights.create ~name:"u" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary u ~n:3 (fun i -> i + 1);
  let weights = Db.Weights.bundle [ u ] in
  let direct = Expr.eval (module Semiring.Instances.Nat) inst weights f () in
  let via_nf = Normal.eval (module Semiring.Instances.Nat) inst weights (Normal.of_expr f) () in
  (* Σ_x u(x)·(Σ_x u(x)) = (1+2+3)^2 = 36 *)
  check_int "direct" 36 direct;
  check_int "normal form" 36 via_nf

let suite =
  [
    Alcotest.test_case "terms" `Quick term_ops;
    nnf_correct;
    expansion_exclusive_and_exhaustive;
    normalization_preserves_value;
    Alcotest.test_case "expression metadata" `Quick expr_metadata;
    Alcotest.test_case "formula metadata" `Quick formula_metadata;
    Alcotest.test_case "no variable capture" `Quick freshness;
  ]
