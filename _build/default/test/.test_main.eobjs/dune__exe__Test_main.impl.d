test/test_main.ml: Alcotest Test_circuit Test_db Test_engine Test_enum Test_fo Test_graphs Test_logic Test_nested Test_perm Test_semiring Test_shapes
