test/test_circuit.ml: Alcotest Array Circuits Graphs Instances Intf List QCheck QCheck_alcotest Semiring Tropical Zmod
