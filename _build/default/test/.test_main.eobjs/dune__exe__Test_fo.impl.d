test/test_fo.ml: Alcotest Array Db Enum Fo_enum Format Fun Graphs List Logic Printf Provenance
