test/test_shapes.ml: Alcotest Array Circuits Db Enum Format Gen Graphs Instances Intf List Logic Perm Provenance QCheck QCheck_alcotest Semiring Shapes
