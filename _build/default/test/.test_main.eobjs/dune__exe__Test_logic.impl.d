test/test_logic.ml: Alcotest Db Expr Formula Graphs List Logic Normal QCheck QCheck_alcotest Semiring Term
