test/test_semiring.ml: Alcotest Bigint Instances Intf List QCheck QCheck_alcotest Rat Semiring Test Tropical Value Zmod
