test/test_perm.ml: Alcotest Array Enum Instances List Perm Printf QCheck QCheck_alcotest Semiring String Tropical Zmod
