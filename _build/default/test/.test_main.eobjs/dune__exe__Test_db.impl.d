test/test_db.ml: Alcotest Db Graphs QCheck QCheck_alcotest
