test/test_engine.ml: Alcotest Circuits Db Engine Fun Graphs Instances Intf List Logic Printf QCheck QCheck_alcotest Semiring Shapes Tropical
