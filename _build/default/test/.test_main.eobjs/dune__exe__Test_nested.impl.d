test/test_nested.ml: Alcotest Array Db Enum Fun Graphs List Logic Nested Printf Rat Semiring Value
