test/test_graphs.ml: Alcotest Array Fun Graphs List QCheck QCheck_alcotest
