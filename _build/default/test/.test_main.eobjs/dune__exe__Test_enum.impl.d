test/test_enum.ml: Alcotest Dll Enum Gen Iter List QCheck QCheck_alcotest
