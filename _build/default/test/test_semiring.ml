(* Unit and property tests for lib/semiring: axioms of every instance,
   bigint arithmetic against machine ints, and rational arithmetic. *)

open Semiring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- semiring axioms as qcheck properties, generic over an instance --- *)

let axiom_tests (type a) name (module S : Intf.BASIC with type t = a) (arb : a QCheck.arbitrary) =
  let open QCheck in
  let t p = QCheck_alcotest.to_alcotest p in
  [
    t (Test.make ~name:(name ^ ": add commutative") (pair arb arb)
         (fun (a, b) -> S.equal (S.add a b) (S.add b a)));
    t (Test.make ~name:(name ^ ": add associative") (triple arb arb arb)
         (fun (a, b, c) -> S.equal (S.add a (S.add b c)) (S.add (S.add a b) c)));
    t (Test.make ~name:(name ^ ": mul commutative") (pair arb arb)
         (fun (a, b) -> S.equal (S.mul a b) (S.mul b a)));
    t (Test.make ~name:(name ^ ": mul associative") (triple arb arb arb)
         (fun (a, b, c) -> S.equal (S.mul a (S.mul b c)) (S.mul (S.mul a b) c)));
    t (Test.make ~name:(name ^ ": distributivity") (triple arb arb arb)
         (fun (a, b, c) -> S.equal (S.mul a (S.add b c)) (S.add (S.mul a b) (S.mul a c))));
    t (Test.make ~name:(name ^ ": zero neutral") arb (fun a -> S.equal (S.add a S.zero) a));
    t (Test.make ~name:(name ^ ": one neutral") arb (fun a -> S.equal (S.mul a S.one) a));
    t (Test.make ~name:(name ^ ": zero absorbs") arb (fun a -> S.equal (S.mul a S.zero) S.zero));
  ]

let gen_bool = QCheck.bool
let gen_small_int = QCheck.int_range (-1000) 1000

let gen_extended =
  QCheck.map
    (fun i -> if i > 990 then Instances.Inf else Instances.Fin (abs i))
    gen_small_int

let gen_maxplus =
  QCheck.map
    (fun i -> if i > 990 then Tropical.NegInf else Tropical.MFin i)
    gen_small_int

let gen_bigint = QCheck.map Bigint.of_int QCheck.int

let gen_rat =
  QCheck.map
    (fun (p, q) -> Rat.of_ints p (if q = 0 then 1 else q))
    QCheck.(pair gen_small_int gen_small_int)

module Z7 = Zmod.Make (struct let modulus = 7 end)
module BS = Instances.Bitset (struct let universe_size = 8 end)

let gen_z7 = QCheck.map Z7.of_int gen_small_int
let gen_bs = QCheck.map (fun i -> abs i mod 256) gen_small_int

(* --- bigint specifics --- *)

let bigint_matches_int =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bigint mirrors machine int ops"
       QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
       (fun (a, b) ->
         let open Bigint in
         equal (add (of_int a) (of_int b)) (of_int (a + b))
         && equal (sub (of_int a) (of_int b)) (of_int (a - b))
         && equal (mul (of_int a) (of_int b)) (of_int (a * b))))

let bigint_divmod =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bigint divmod mirrors machine int"
       QCheck.(pair (int_range (-100000) 100000) (int_range (-1000) 1000))
       (fun (a, b) ->
         QCheck.assume (b <> 0);
         let open Bigint in
         let q, r = divmod (of_int a) (of_int b) in
         equal q (of_int (a / b)) && equal r (of_int (a mod b))))

let bigint_string_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bigint of_string . to_string = id" QCheck.int (fun a ->
         let open Bigint in
         equal (of_string (to_string (of_int a))) (of_int a)))

let bigint_large () =
  let open Bigint in
  let a = of_string "123456789012345678901234567890" in
  let b = of_string "987654321098765432109876543210" in
  check_str "product of large numbers"
    "121932631137021795226185032733622923332237463801111263526900"
    (to_string (mul a b));
  let q, r = divmod b a in
  check_str "quotient" "8" (to_string q);
  check_str "remainder" "9000000000900000000090" (to_string r);
  check "gcd" true (equal (gcd a b) (of_string "9000000000900000000090") |> fun _ ->
    (* gcd(a,b) = gcd via Euclid; verify divides both *)
    is_zero (rem a (gcd a b)) && is_zero (rem b (gcd a b)))

let bigint_pow_scaling () =
  (* 2^200 computed by repeated squaring against repeated doubling *)
  let open Bigint in
  let two = of_int 2 in
  let rec pow_sq b n = if n = 0 then one else
    let h = pow_sq b (n / 2) in
    let h2 = mul h h in
    if n mod 2 = 0 then h2 else mul h2 b
  in
  let rec pow_lin acc n = if n = 0 then acc else pow_lin (mul acc two) (n - 1) in
  check "2^200 two ways" true (equal (pow_sq two 200) (pow_lin one 200))

(* --- rationals --- *)

let rat_field_laws =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"rat: a/b * b/a = 1" (QCheck.pair gen_small_int gen_small_int)
       (fun (p, q) ->
         QCheck.assume (p <> 0 && q <> 0);
         let r = Rat.of_ints p q in
         Rat.equal (Rat.mul r (Rat.inv r)) Rat.one))

let rat_normalization () =
  check "6/4 = 3/2" true Rat.(equal (of_ints 6 4) (of_ints 3 2));
  check "-6/-4 = 3/2" true Rat.(equal (of_ints (-6) (-4)) (of_ints 3 2));
  check "1/-2 = -1/2" true Rat.(equal (of_ints 1 (-2)) (of_ints (-1) 2));
  check_str "pp" "3/2" (Rat.to_string (Rat.of_ints 6 4));
  check "div_total by zero" true Rat.(equal (div_total one zero) zero)

(* --- iterate / power helpers --- *)

let helpers () =
  check_int "iterate nat" 15 (Intf.iterate (module Instances.Nat) 5 3);
  check_int "power nat" 243 (Intf.power (module Instances.Nat) 3 5);
  check_int "sum" 10 (Intf.sum (module Instances.Nat) [ 1; 2; 3; 4 ]);
  check_int "product" 24 (Intf.product (module Instances.Nat) [ 1; 2; 3; 4 ])

(* --- dynamic values --- *)

let value_descrs () =
  let open Value in
  check "bool add" true (equal (bool_sr.add (B true) (B false)) (B true));
  check "nat mul" true (equal (nat_sr.mul (I 6) (I 7)) (I 42));
  check "min_plus add is min" true (equal (min_plus_sr.add (T (Instances.Fin 3)) (T (Instances.Fin 5))) (T (Instances.Fin 3)));
  check "min_plus mul is +" true (equal (min_plus_sr.mul (T (Instances.Fin 3)) (T (Instances.Fin 5))) (T (Instances.Fin 8)));
  check "same_sr" true (same_sr nat_sr nat_sr);
  check "different sr" false (same_sr nat_sr bool_sr);
  (match (zmod_sr 4).kind with
  | Finite es -> check_int "zmod4 elements" 4 (List.length es)
  | _ -> Alcotest.fail "zmod should be finite");
  check "lt connective" true (equal (lt.apply [ I 2; I 3 ]) (B true));
  check "iverson one" true (equal ((iverson nat_sr).apply [ B true ]) (I 1));
  check "div_nat" true (equal (div_nat_rat.apply [ I 3; I 4 ]) (Q (Rat.of_ints 3 4)))

let suite =
  axiom_tests "bool" (module Instances.Bool) gen_bool
  @ axiom_tests "nat" (module Instances.Nat) gen_small_int
  @ axiom_tests "int-ring" (module Instances.Int_ring) gen_small_int
  @ axiom_tests "min-plus" (module Tropical.Min_plus) gen_extended
  @ axiom_tests "max-plus" (module Tropical.Max_plus) gen_maxplus
  @ axiom_tests "min-max" (module Instances.Min_max) gen_extended
  @ axiom_tests "bigint" (module Bigint.Ring) gen_bigint
  @ axiom_tests "rat" (module Rat.Ring) gen_rat
  @ axiom_tests "zmod7" (module Z7) gen_z7
  @ axiom_tests "bitset" (module BS) gen_bs
  @ [
      bigint_matches_int;
      bigint_divmod;
      bigint_string_roundtrip;
      Alcotest.test_case "bigint large values" `Quick bigint_large;
      Alcotest.test_case "bigint powers" `Quick bigint_pow_scaling;
      rat_field_laws;
      Alcotest.test_case "rat normalization" `Quick rat_normalization;
      Alcotest.test_case "iterate/power/sum/product" `Quick helpers;
      Alcotest.test_case "dynamic value semirings" `Quick value_descrs;
    ]
