(* Deeper tests of the shape compiler internals (Lemmas 29-33) and a
   property check of the enumerated provenance against the explicit free
   semiring, plus the heap-based selection permanent from the closing
   remark of Section 4. *)

open Semiring

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let v x = Logic.Term.Var x

let nat_ops = Intf.ops_of_module (module Instances.Nat)

(* --- shape enumeration structure --- *)

let summand_of expr =
  match Logic.Normal.of_expr expr with
  | [ s ] -> s
  | _ -> Alcotest.fail "expected one summand"

let chain_forced_by_edges () =
  (* E(x,y) ∧ E(y,z) ∧ E(z,x) forces all three chains pairwise comparable *)
  let s =
    summand_of
      (Logic.Expr.Sum
         ( [ "x"; "y"; "z" ],
           Logic.Expr.Guard
             (Logic.Formula.And
                [
                  Logic.Formula.Rel ("E", [ v "x"; v "y" ]);
                  Logic.Formula.Rel ("E", [ v "y"; v "z" ]);
                  Logic.Formula.Rel ("E", [ v "z"; v "x" ]);
                ]) ))
  in
  let shapes = Shapes.Shape.enumerate ~d:3 ~summand:s () in
  check_bool "some shapes" true (shapes <> []);
  (* every shape is a single chain: exactly one root, nodes totally ordered *)
  List.iter
    (fun (sh : Shapes.Shape.t) ->
      check_int "single root" 1 (List.length sh.Shapes.Shape.roots);
      Array.iter
        (fun (n : Shapes.Shape.node) ->
          check_bool "at most one child on a chain" true
            (List.length n.Shapes.Shape.children <= 1))
        sh.Shapes.Shape.nodes)
    shapes

let distinctness_shapes () =
  (* Σ_{x,y} [x ≠ y] u(x) u(y) at depth 0: only the two-roots shape *)
  let s =
    summand_of
      (Logic.Expr.Sum
         ( [ "x"; "y" ],
           Logic.Expr.Mul
             [
               Logic.Expr.Guard (Logic.Formula.neq (v "x") (v "y"));
               Logic.Expr.Weight ("u", [ v "x" ]);
               Logic.Expr.Weight ("u", [ v "y" ]);
             ] ))
  in
  let shapes = Shapes.Shape.enumerate ~d:0 ~summand:s () in
  check_int "one live shape" 1 (List.length shapes);
  let sh = List.hd shapes in
  check_int "two roots" 2 (List.length sh.Shapes.Shape.roots);
  (* and the permanent gate it compiles to computes Σ_{i≠j} u_i u_j *)
  let forest = Graphs.Forest.of_parents [| 0; 1; 2 |] in
  let fs =
    {
      Shapes.Forest_compile.forest;
      orig = [| 0; 1; 2 |];
      holds = (fun _ _ -> true);
      dynamic = (fun _ -> false);
    }
  in
  let b = Circuits.Circuit.builder () in
  let g = Shapes.Forest_compile.compile_shape b fs ~zero:0 ~one:1 sh in
  let c = Circuits.Circuit.finish b ~output:g in
  let value = Circuits.Circuit.eval nat_ops c (fun (_, t) -> List.hd t + 1) in
  (* u = [1;2;3]: Σ_{i≠j} u_i u_j = (1+2+3)^2 − (1+4+9) = 22 *)
  check_int "permanent value" 22 value

let equality_shapes () =
  (* [x = y] collapses the two variables onto one node *)
  let s =
    summand_of
      (Logic.Expr.Sum
         ( [ "x"; "y" ],
           Logic.Expr.Mul
             [
               Logic.Expr.Guard (Logic.Formula.Eq (v "x", v "y"));
               Logic.Expr.Weight ("u", [ v "x" ]);
               Logic.Expr.Weight ("u", [ v "y" ]);
             ] ))
  in
  List.iter
    (fun (sh : Shapes.Shape.t) ->
      match sh.Shapes.Shape.var_node with
      | [ (_, nx); (_, ny) ] -> check_int "same node" nx ny
      | _ -> Alcotest.fail "expected two variables")
    (Shapes.Shape.enumerate ~d:2 ~summand:s ());
  (* and at depth d there are exactly d+1 such shapes *)
  check_int "d+1 shapes" 3 (List.length (Shapes.Shape.enumerate ~d:2 ~summand:s ()))

(* --- provenance: enumerated = explicit, property-tested --- *)

module FreeInt = struct
  type t = int Provenance.Free.mono list

  let zero : t = []
  let one : t = [ [] ]
  let add = Provenance.Free.Explicit.add
  let mul = Provenance.Free.Explicit.mul
  let equal : t -> t -> bool = ( = )
  let pp fmt (x : t) = Format.fprintf fmt "<%d monomials>" (List.length x)
end

let prov_matches_explicit =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"enumerated provenance = explicit free semiring" ~count:25
       QCheck.(pair (int_range 0 10000) (int_range 4 12))
       (fun (seed, n) ->
         let g = Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3 in
         let inst = Db.Instance.of_graph g in
         (* 2-path provenance: Σ_{x,y,z} w(x,y) · w(y,z) *)
         let expr =
           Logic.Expr.Sum
             ( [ "x"; "y"; "z" ],
               Logic.Expr.Mul
                 [
                   Logic.Expr.Weight ("w", [ v "x"; v "y" ]);
                   Logic.Expr.Weight ("w", [ v "y"; v "z" ]);
                 ] )
         in
         let edge_id tup = match tup with [ a; b ] -> (a * 1000) + b | _ -> -1 in
         let w = Db.Weights.create ~name:"w" ~arity:2 ~zero:FreeInt.zero in
         Db.Weights.fill_from_relation w inst "E" (fun tup -> [ [ edge_id tup ] ]);
         let expected =
           Logic.Expr.eval (module FreeInt) inst (Db.Weights.bundle [ w ]) expr ()
         in
         let prov =
           Provenance.Prov_circuit.prepare inst expr ~weight:(fun _ tup ->
               if Db.Instance.mem inst "E" tup then [ [ edge_id tup ] ] else [])
         in
         let got =
           List.sort compare (Enum.Iter.to_list (Provenance.Prov_circuit.enumerate prov))
         in
         got = expected))

(* --- heap-based selection permanent (Section 4, closing remark) --- *)

let minheap_basics () =
  let h = Perm.Minheap.create ~cmp:compare [| 5; 3; 8; 1; 9 |] in
  check_int "min" 1 (Perm.Minheap.min_value h);
  check_int "argmin" 3 (Perm.Minheap.argmin h);
  Perm.Minheap.set h 3 100;
  check_int "after raising the min" 3 (Perm.Minheap.min_value h);
  Perm.Minheap.set h 4 0;
  check_int "after lowering another" 0 (Perm.Minheap.min_value h);
  check_int "its index" 4 (Perm.Minheap.argmin h);
  check_int "get" 100 (Perm.Minheap.get h 3)

let minheap_tracks_random_updates =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"minheap min = array min under updates" ~count:50
       QCheck.(
         pair
           (array_of_size Gen.(1 -- 40) (int_range 0 1000))
           (small_list (pair (int_range 0 39) (int_range 0 1000))))
       (fun (arr, updates) ->
         let h = Perm.Minheap.create ~cmp:compare arr in
         let arr = Array.copy arr in
         List.for_all
           (fun (i, x) ->
             let i = i mod Array.length arr in
             arr.(i) <- x;
             Perm.Minheap.set h i x;
             Perm.Minheap.min_value h = Array.fold_left min max_int arr)
           updates))

let heap_sort_via_selection () =
  (* the Proposition 14 connection once more, now with O(1) queries *)
  let rng = Graphs.Rand.create 123 in
  let keys = Array.init 1000 (fun _ -> Graphs.Rand.int rng 100000) in
  let h = Perm.Minheap.create ~cmp:compare keys in
  let out =
    Array.init 1000 (fun _ ->
        let m = Perm.Minheap.min_value h in
        Perm.Minheap.set h (Perm.Minheap.argmin h) max_int;
        m)
  in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  check_bool "sorted" true (out = sorted)

let suite =
  [
    Alcotest.test_case "edges force a chain" `Quick chain_forced_by_edges;
    Alcotest.test_case "distinctness shape + permanent" `Quick distinctness_shapes;
    Alcotest.test_case "equality collapses nodes" `Quick equality_shapes;
    prov_matches_explicit;
    Alcotest.test_case "minheap basics" `Quick minheap_basics;
    minheap_tracks_random_updates;
    Alcotest.test_case "heap sort via selection permanent" `Quick heap_sort_via_selection;
  ]
