(* sparseq — command-line driver for the aggregate-query engine.

   Subcommands:
     stats      compile a query and print circuit statistics (Theorem 6)
     count      evaluate a counting/weighted query (Theorem 8)
     enum       enumerate query answers with constant delay (Theorem 24)
     pagerank   run PageRank rounds as a dynamic weighted query (Example 9)

   All subcommands operate on generated workloads: grid, tri-grid,
   bounded-degree random, sparse random, path, tree.

   Guardrails: --budget-gates and --timeout-ms bound compilation (checked
   cooperatively, Robust.Budget_exceeded on violation); --fallback picks
   what happens on a degradable failure (naive = brute-force reference
   evaluator, fail = report the error). Unknown kinds/queries and every
   classified engine error are reported through Cmdliner with a nonzero
   exit code instead of escaping as a raw backtrace. SPARSEQ_SELF_CHECK=1
   cross-validates circuit values against the reference evaluator. *)

open Cmdliner
open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

(* --- workload selection --- *)

let graph_kinds = [ "grid"; "tri-grid"; "deg3"; "deg4"; "sparse"; "path"; "tree" ]

let make_graph kind n seed =
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  match kind with
  | "grid" -> Graphs.Gen.grid side side
  | "tri-grid" -> Graphs.Gen.triangulated_grid side side
  | "deg3" -> Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3
  | "deg4" -> Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:4
  | "sparse" -> Graphs.Gen.random_sparse ~seed ~n ~avg_deg:3
  | "path" -> Graphs.Gen.path n
  | "tree" -> Graphs.Gen.random_tree ~seed ~n
  | _ -> Robust.bad_input "unknown graph kind %s" kind

let query_names = [ "triangle"; "path2"; "edge"; "nonedge"; "has-neighbor" ]

let make_query name =
  match name with
  | "triangle" -> Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]
  | "path2" ->
      Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]
  | "edge" -> e "x" "y"
  | "nonedge" ->
      Logic.Formula.And
        [ Logic.Formula.neq (v "x") (v "y"); Logic.Formula.Not (e "x" "y") ]
  | "has-neighbor" -> Logic.Formula.Exists ("y", e "x" "y")
  | _ -> Robust.bad_input "unknown query %s" name

(* Arg.enum rejects unknown values with a Cmdliner usage error and a
   nonzero exit code — no raw Invalid_argument backtrace. *)
let graph_arg =
  Arg.(
    value
    & opt (enum (List.map (fun k -> (k, k)) graph_kinds)) "tri-grid"
    & info [ "g"; "graph" ] ~docv:"KIND"
        ~doc:("Workload: " ^ String.concat ", " graph_kinds ^ "."))

let n_arg = Arg.(value & opt int 400 & info [ "n" ] ~docv:"N" ~doc:"Approximate domain size.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let query_arg =
  Arg.(
    value
    & opt (enum (List.map (fun q -> (q, q)) query_names)) "triangle"
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:("Query: " ^ String.concat ", " query_names ^ "."))

(* --- guardrail flags --- *)

let budget_term =
  let gates =
    Arg.(
      value & opt int 0
      & info [ "budget-gates" ] ~docv:"GATES"
          ~doc:"Abort compilation after emitting more than $(docv) gates (0 = unlimited).")
  in
  let timeout =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Abort compilation after $(docv) wall-clock milliseconds (0 = unlimited).")
  in
  let mk g t =
    Robust.budget
      ?max_gates:(if g > 0 then Some g else None)
      ?timeout_ms:(if t > 0 then Some t else None)
      ()
  in
  Term.(const mk $ gates $ timeout)

let opt_arg =
  Arg.(
    value
    & opt (enum [ ("default", Opt.default_passes); ("none", Opt.none) ]) Opt.default_passes
    & info [ "opt" ] ~docv:"PIPELINE"
        ~doc:
          "Circuit optimization pipeline: $(b,default) runs the \
           fold/cse/dce/balance passes on the compiled circuit, $(b,none) hands \
           the raw compiler output downstream.")

let compact_arg =
  Arg.(
    value
    & opt ~vopt:Circuits.Dyn.Compact
        (enum [ ("on", Circuits.Dyn.Compact); ("off", Circuits.Dyn.Boxed) ])
        Circuits.Dyn.Compact
    & info [ "compact" ] ~docv:"on|off"
        ~doc:
          "Gate-storage backend for circuit evaluation and maintenance: $(b,on) (the \
           default) uses the CSR/struct-of-arrays compact runtime with Bigarray value \
           planes for machine-int semirings, $(b,off) the boxed pointer-graph twin.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Evaluate circuits level-parallel on $(docv) OCaml domains (compact backend \
           only; the calling domain participates, so $(docv)=4 spawns three pooled \
           workers). $(b,1) (the default) is the unchanged sequential evaluator.")

(* Budget, optimizer pipeline, storage backend and domain count travel
   together so every run function keeps the fixed arity [guarded] expects. *)
let budget_opt =
  Term.(
    const (fun b o c d -> (b, o, c, max 1 d))
    $ budget_term $ opt_arg $ compact_arg $ domains_arg)

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:
          "Load a compact circuit previously written by $(b,sparseq compile --save) \
           instead of compiling the query; the workload flags are ignored.")

(* The semiring names stored as the .spqc tag; a loaded circuit's constant
   pool only makes sense in the semiring it was saved under, so the tag is
   checked before evaluating. *)
let check_tag path tag expect =
  if tag <> expect then
    Robust.bad_input "%s was saved under semiring %S; this command evaluates under %S"
      path tag expect

let fallback_arg =
  Arg.(
    value
    & opt (enum [ ("naive", `Naive); ("fail", `Fail) ]) `Naive
    & info [ "fallback" ] ~docv:"MODE"
        ~doc:
          "On budget exhaustion or an unsupported fragment: $(b,naive) degrades to the \
           brute-force reference evaluator, $(b,fail) reports the error.")

let recover_arg =
  Arg.(
    value
    & opt
        (some (enum [ ("rollback", `Rollback); ("repair", `Repair); ("fail", `Fail) ]))
        None
    & info [ "recover" ] ~docv:"POLICY"
        ~env:(Cmd.Env.info "SPARSEQ_RECOVER")
        ~doc:
          "What a fault during a dynamic update wave does after the wave is rolled \
           back: $(b,rollback) retries the update a bounded number of times with \
           backoff, $(b,repair) additionally rebuilds a poisoned circuit in place \
           before retrying, $(b,fail) reports the error immediately (the circuit \
           still rolls back to its pre-update state). Defaults to $(b,rollback).")

(* Fallback and recovery policy travel together, like budget/opt, to keep
   the fixed arity [guarded] expects. *)
let fallback_recover = Term.(const (fun f r -> (f, r)) $ fallback_arg $ recover_arg)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some `Human)
        (some
           (enum [ ("json", `Json); ("human", `Human); ("openmetrics", `Openmetrics) ]))
        None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Print the engine metrics snapshot (counters, gauges, latency histograms with \
           cumulative and sliding-window quantiles) after the run, as $(b,human) text, \
           $(b,json), or an $(b,openmetrics) text exposition (Prometheus-scrapeable). \
           Printed even when the run fails, so budget violations leave a trace.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Periodically rewrite $(docv) with an OpenMetrics text exposition of the \
           engine metrics during the run, plus once at exit. Rewrites are atomic \
           (temp file + rename), so a concurrent scraper never reads a torn file — \
           this is the scrape surface a future sparseqd would serve at /metrics.")

let metrics_interval_arg =
  Arg.(
    value & opt int 1000
    & info [ "metrics-interval-ms" ] ~docv:"MS"
        ~doc:"Minimum milliseconds between two $(b,--metrics-out) rewrites.")

(* Snapshot format, exposition file and rewrite interval travel together
   so every run function keeps the fixed arity [guarded] expects. *)
let metrics_term =
  Term.(
    const (fun m o i -> (m, o, i)) $ metrics_arg $ metrics_out_arg $ metrics_interval_arg)

let print_metrics = function
  | None -> ()
  | Some `Json -> print_endline (Obs.snapshot ())
  | Some `Human -> print_string (Obs.snapshot_human ())
  | Some `Openmetrics -> print_string (Obs.Openmetrics.render ())

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a hierarchical span trace of the run and write it to $(docv) as \
           Chrome trace-event JSON (open in Perfetto or chrome://tracing). Written \
           even when the run fails, so a budget violation leaves its trace behind.")

let write_trace path records =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome records));
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "trace written to %s (%d records)\n%!" path (List.length records)

(* Unwrap a checked result inside a run function; the uniform handler below
   turns the raise into a Cmdliner error with exit code 1. *)
let ok = function Ok x -> x | Error e -> raise (Robust.Error e)

(* Wrap a run function so classified engine errors become Cmdliner-reported
   errors (nonzero exit) rather than raw backtraces; the metrics snapshot,
   the exposition file and the span trace (when requested) are emitted on
   both paths. *)
let guarded run =
 fun (metrics, metrics_out, interval_ms) trace a b c d e f ->
  let writer =
    Option.map
      (fun path -> Obs.Openmetrics.Writer.create ~path ~interval_ms)
      metrics_out
  in
  (* Long-running loops re-render the file through Obs.Openmetrics.pulse;
     installing makes this run's writer the one they drive. *)
  (match writer with Some w -> Obs.Openmetrics.install w | None -> ());
  if trace <> None then Obs.Trace.start_recording ();
  let finish () =
    (match writer with
    | Some w ->
        Obs.Openmetrics.Writer.write_now w;
        Obs.Openmetrics.uninstall ();
        Printf.eprintf "metrics written to %s (%d writes)\n%!"
          (Obs.Openmetrics.Writer.path w)
          (Obs.Openmetrics.Writer.writes w)
    | None -> ());
    (match trace with
    | Some path -> write_trace path (Obs.Trace.stop_recording ())
    | None -> ());
    print_metrics metrics
  in
  match run a b c d e f with
  | v ->
      finish ();
      `Ok v
  | exception Robust.Error err ->
      finish ();
      `Error (false, Robust.to_string err)

let setup kind n seed =
  let g = make_graph kind n seed in
  let inst = Db.Instance.of_graph g in
  Printf.printf "workload %s: %d elements, %d tuples\n" kind (Db.Instance.n inst)
    (Db.Instance.size inst);
  (g, inst)

let note_degraded = function
  | None -> ()
  | Some reason ->
      Printf.printf "degraded to reference evaluator (%s)\n" (Robust.to_string reason)

(* --- stats --- *)

(* Exact quantile of a sorted sample array (used for the update-latency
   report; same definition as the bench harness). *)
let sample_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. q)))

(* Cumulative dyn/touched_gates counter, the odometer the per-query cost
   reports must agree with exactly. *)
let touched_gates_total () =
  match Obs.find ~scope:"dyn" "touched_gates" with
  | Some (Obs.C c) -> Obs.Counter.get c
  | _ -> 0

let stats_cmd =
  let updates_arg =
    Arg.(
      value & opt int 1000
      & info [ "updates" ] ~docv:"K"
          ~doc:"Random weight updates to time on the dynamic circuit (0 = skip).")
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Apply the timed updates in batches of $(docv) through the batched \
             propagation wave (Eval.update_many); 1 = one wave per update.")
  in
  let cost_arg =
    Arg.(
      value & flag
      & info [ "cost" ]
          ~doc:
            "Attribute cost to each timed update (wall ns, gates recomputed per wave, \
             minor-heap words, GC collections observed), print the aggregate report, \
             and cross-check the summed gate counts against the cumulative dyn/* \
             counters — the two must agree exactly.")
  in
  let churn_arg =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"K"
          ~doc:
            "Mixed churn: $(docv) further operations alternating between random weight \
             updates and structural edge toggles (insert the arc pair if absent, delete \
             it if present) served through the localized-recompile path; reports \
             per-kind latency quantiles plus the localized/fallback split and the \
             gates-rebuilt vs gates-carried totals (0 = skip).")
  in
  let run kind n seed qname (budget, opt, backend, domains) ((updates, batch, cost, churn), load)
      =
    match load with
    | Some path ->
        (* A persisted circuit carries no workload: print what the file holds. *)
        let cc, tag = Circuits.Compact.load path in
        let cs = Circuits.Circuit.stats (Circuits.Compact.to_circuit cc) in
        Printf.printf "loaded %s (tag %S)\n" path tag;
        Format.printf "circuit: %a@." Circuits.Circuit.pp_stats cs
    | None ->
    let _, inst = setup kind n seed in
    let phi = make_query qname in
    let fv = Logic.Formula.free_vars_unique phi in
    let expr = Logic.Expr.Sum (fv, Logic.Expr.Guard phi) in
    let t0 = Unix.gettimeofday () in
    let c, m = Engine.Compile.compile ~tfa_rounds:1 ~budget ~opt ~zero:0 ~one:1 inst expr in
    let dt = Unix.gettimeofday () -. t0 in
    let cs = Circuits.Circuit.stats c in
    Format.printf "compiled %s in %.3fs@." qname dt;
    Format.printf "pipeline: %a@." Engine.Compile.pp_meta m;
    Format.printf "circuit: %a@." Circuits.Circuit.pp_stats cs;
    (* Theorem 8 update latency: the weighted variant Σ_x̄ [φ]·w(x₁) is
       prepared as a dynamic circuit and hit with random weight updates. *)
    if (updates > 0 || churn > 0) && fv <> [] then begin
      let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)) in
      let nn = Db.Instance.n inst in
      let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
      Db.Weights.fill_unary w ~n:nn (fun _ -> 1);
      let wexpr =
        Logic.Expr.Sum
          ( fv,
            Logic.Expr.Mul
              [ Logic.Expr.Guard phi; Logic.Expr.Weight ("w", [ v (List.hd fv) ]) ] )
      in
      let ev =
        Engine.Eval.prepare nat_ops ~opt ~backend ~domains ~tfa_rounds:1 ~budget inst
          (Db.Weights.bundle [ w ]) wexpr
      in
      Printf.printf "backend: %s  domains: %d\n" (Circuits.Dyn.backend_name backend) domains;
      let rng = Random.State.make [| seed; 0x5eed |] in
      let agg = ref Engine.Eval.Cost.zero in
      let touched0 = touched_gates_total () in
      let report_cost () =
        let c = !agg in
        Printf.printf "cost: %s\n" (Engine.Eval.Cost.summary c);
        if updates > 0 then
          Printf.printf "cost/update: %.1f gates  %.0f minor words\n"
            (float_of_int c.Engine.Eval.Cost.gates_visited /. float_of_int updates)
            (c.Engine.Eval.Cost.minor_words /. float_of_int updates);
        let delta = touched_gates_total () - touched0 in
        Printf.printf "cost cross-check: sum(gates_visited) %d vs dyn/touched_gates delta %d (%s)\n"
          c.Engine.Eval.Cost.gates_visited delta
          (if c.Engine.Eval.Cost.gates_visited = delta then "exact" else "MISMATCH")
      in
      if updates > 0 && batch <= 1 then begin
        let samples = Array.make updates 0. in
        for i = 0 to updates - 1 do
          let x = Random.State.int rng nn in
          let w' = Random.State.int rng 5 in
          let u0 = Unix.gettimeofday () in
          if cost then begin
            let (), c =
              Engine.Eval.with_cost ev (fun () -> Engine.Eval.update ev "w" [ x ] w')
            in
            agg := Engine.Eval.Cost.add !agg c
          end
          else Engine.Eval.update ev "w" [ x ] w';
          samples.(i) <- (Unix.gettimeofday () -. u0) *. 1e9;
          Obs.Openmetrics.pulse ()
        done;
        Array.sort compare samples;
        Format.printf "updates: %d  p50 %.0fns  p99 %.0fns  (value now %d)@." updates
          (sample_quantile samples 0.5)
          (sample_quantile samples 0.99)
          (Engine.Eval.value ev);
        if cost then report_cost ()
      end
      else if updates > 0 then begin
        let nbatches = (updates + batch - 1) / batch in
        let samples = Array.make nbatches 0. in
        let total = ref 0. in
        for i = 0 to nbatches - 1 do
          let size = min batch (updates - (i * batch)) in
          let writes =
            List.init size (fun _ ->
                ("w", [ Random.State.int rng nn ], Random.State.int rng 5))
          in
          let u0 = Unix.gettimeofday () in
          if cost then
            agg := Engine.Eval.Cost.add !agg (Engine.Eval.update_many_cost ev writes)
          else Engine.Eval.update_many ev writes;
          samples.(i) <- (Unix.gettimeofday () -. u0) *. 1e9;
          total := !total +. samples.(i);
          Obs.Openmetrics.pulse ()
        done;
        Array.sort compare samples;
        Format.printf
          "updates: %d in %d batches of %d  batch p50 %.0fns  p99 %.0fns  amortized \
           %.0fns/update  (value now %d)@."
          updates nbatches batch
          (sample_quantile samples 0.5)
          (sample_quantile samples 0.99)
          (!total /. float_of_int updates)
          (Engine.Eval.value ev);
        if cost then begin
          report_cost ();
          Printf.printf "cost waves: %d (one committed wave per batch)\n"
            !agg.Engine.Eval.Cost.waves
        end
      end;
      (* Mixed churn: alternate weight updates with structural edge
         toggles. Toggles stay local (v within a few ids of u) so the
         treedepth witness mostly survives and the localized path gets
         exercised; when an op still deepens the forest past the compiled
         bound, the fallback recompile is what gets timed and counted. *)
      if churn > 0 then begin
        let w_samples = ref [] and s_samples = ref [] in
        for i = 0 to churn - 1 do
          let u0 = Unix.gettimeofday () in
          if i mod 2 = 0 then begin
            Engine.Eval.update ev "w" [ Random.State.int rng nn ] (Random.State.int rng 5);
            w_samples := ((Unix.gettimeofday () -. u0) *. 1e9) :: !w_samples
          end
          else begin
            let u = Random.State.int rng nn in
            let v = (u + 1 + Random.State.int rng (min 3 (nn - 1))) mod nn in
            if Db.Instance.mem inst "E" [ u; v ] then begin
              Engine.Eval.delete_tuple ev "E" [ u; v ];
              if Db.Instance.mem inst "E" [ v; u ] then
                Engine.Eval.delete_tuple ev "E" [ v; u ]
            end
            else begin
              Engine.Eval.insert_tuple ev "E" [ u; v ];
              if not (Db.Instance.mem inst "E" [ v; u ]) then
                Engine.Eval.insert_tuple ev "E" [ v; u ]
            end;
            s_samples := ((Unix.gettimeofday () -. u0) *. 1e9) :: !s_samples
          end;
          Obs.Openmetrics.pulse ()
        done;
        let quantiles l =
          let a = Array.of_list l in
          Array.sort compare a;
          (sample_quantile a 0.5, sample_quantile a 0.99)
        in
        let wp50, wp99 = quantiles !w_samples in
        let sp50, sp99 = quantiles !s_samples in
        Printf.printf "churn: %d ops  weight p50 %.0fns p99 %.0fns  structural p50 %.0fns p99 %.0fns\n"
          churn wp50 wp99 sp50 sp99;
        let ch = Engine.Eval.churn_stats ev in
        let total_gates = ch.Engine.Eval.ch_gates_rebuilt + ch.Engine.Eval.ch_gates_carried in
        Printf.printf
          "churn: %d inserts %d deletes  %d localized %d fallbacks  gates rebuilt %d / \
           carried %d (%.1f%% rebuilt)\n"
          ch.Engine.Eval.ch_inserts ch.Engine.Eval.ch_deletes ch.Engine.Eval.ch_localized
          ch.Engine.Eval.ch_fallbacks ch.Engine.Eval.ch_gates_rebuilt
          ch.Engine.Eval.ch_gates_carried
          (if total_gates = 0 then 0.
           else 100. *. float_of_int ch.Engine.Eval.ch_gates_rebuilt /. float_of_int total_gates);
        Printf.printf "churn value now: %d\n" (Engine.Eval.value ev)
      end
    end
  in
  let updates_batch =
    Term.(
      const (fun u b c ch l -> ((u, b, c, ch), l))
      $ updates_arg $ batch_arg $ cost_arg $ churn_arg $ load_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Compile a query, print circuit statistics, and time dynamic updates \
          (Theorems 6 and 8).")
    Term.(
      ret
        (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg $ query_arg
       $ budget_opt $ updates_batch))

(* --- count --- *)

let count_cmd =
  let run kind n seed qname (budget, opt, backend, domains) (fallback, load) =
    match load with
    | Some path ->
        (* Evaluate a persisted circuit directly on the compact runtime.  A
           counting circuit is closed (no Weight gates), so the valuation is
           never consulted; if the file does hold weight inputs, surface that
           as a structured error rather than a silent zero. *)
        let cc, tag = Circuits.Compact.load path in
        check_tag path tag "nat";
        let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)) in
        let t0 = Sys.time () in
        let valuation (w, _) =
          Robust.bad_input
            "%s holds weight input %S; count evaluates closed circuits only" path w
        in
        let value =
          if domains > 1 then Circuits.Par.eval ~domains nat_ops cc valuation
          else Circuits.Compact.eval nat_ops cc valuation
        in
        Printf.printf "answers(%s) = %d   (%.3fs)\n" path value (Sys.time () -. t0)
    | None ->
        let _, inst = setup kind n seed in
        let phi = make_query qname in
        let fv = Logic.Formula.free_vars_unique phi in
        let expr = Logic.Expr.Sum (fv, Logic.Expr.Guard phi) in
        let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)) in
        let t0 = Sys.time () in
        let value, degraded =
          ok
            (Engine.Eval.evaluate_checked nat_ops ~opt ~backend ~domains ~tfa_rounds:1
               ~budget ~fallback inst (Db.Weights.bundle []) expr)
        in
        note_degraded degraded;
        Printf.printf "answers(%s) = %d   (%.3fs)\n" qname value (Sys.time () -. t0)
  in
  let fallback_load = Term.(const (fun f l -> (f, l)) $ fallback_arg $ load_arg) in
  Cmd.v (Cmd.info "count" ~doc:"Count the answers of a query through the circuit pipeline.")
    Term.(
      ret
        (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg $ query_arg
       $ budget_opt $ fallback_load))

(* --- enum --- *)

let enum_cmd =
  let limit_arg =
    Arg.(value & opt int 10 & info [ "k"; "limit" ] ~doc:"How many answers to print.")
  in
  let print_answers limit answers total =
    let printed = ref 0 in
    List.iter
      (fun a ->
        if !printed < limit then begin
          incr printed;
          Printf.printf "  (%s)\n" (String.concat "," (List.map string_of_int a))
        end)
      answers;
    Printf.printf "total answers: %d\n" total
  in
  let run kind n seed qname limit ((budget, opt, _backend, _domains), fallback) =
    let _, inst = setup kind n seed in
    let phi = make_query qname in
    let t0 = Sys.time () in
    match Fo_enum.prepare_checked ~opt ~budget inst phi with
    | Ok t ->
        Printf.printf "preprocessing: %.3fs; free variables: %s\n" (Sys.time () -. t0)
          (String.concat "," (Fo_enum.free_vars t));
        let answers = List.map Array.to_list (Fo_enum.answers t) in
        print_answers limit answers (List.length answers)
    | Error e when Robust.degradable e && fallback = `Naive ->
        note_degraded (Some e);
        let fv, answers = Engine.Reference.answers inst phi in
        Printf.printf "free variables: %s\n" (String.concat "," fv);
        print_answers limit answers (List.length answers)
    | Error e -> raise (Robust.Error e)
  in
  let pair = Term.(const (fun b f -> (b, f)) $ budget_opt $ fallback_arg) in
  Cmd.v
    (Cmd.info "enum" ~doc:"Enumerate query answers with constant delay (Theorem 24).")
    Term.(
      ret
        (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg $ query_arg
       $ limit_arg $ pair))

(* --- pagerank --- *)

let pagerank_cmd =
  let rounds_arg = Arg.(value & opt int 5 & info [ "rounds" ] ~doc:"PageRank rounds.") in
  let run kind n seed rounds (budget, opt, backend, domains) (fallback, recover) =
    let g, inst = setup kind n seed in
    let n = Db.Instance.n inst in
    let d = Rat.of_ints 85 100 in
    let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:Rat.zero in
    Db.Weights.fill_unary w ~n (fun _ -> Rat.of_ints 1 n);
    let linv = Db.Weights.create ~name:"linv" ~arity:1 ~zero:Rat.zero in
    Db.Weights.fill_unary linv ~n (fun y ->
        let deg = Graphs.Graph.degree g y in
        if deg = 0 then Rat.zero else Rat.of_ints 1 deg);
    let expr =
      Logic.Expr.Add
        [
          Logic.Expr.Const (Rat.mul (Rat.sub Rat.one d) (Rat.of_ints 1 n));
          Logic.Expr.Mul
            [
              Logic.Expr.Const d;
              Logic.Expr.Sum
                ( [ "y" ],
                  Logic.Expr.Mul
                    [
                      Logic.Expr.Guard (Logic.Formula.Rel ("E", [ v "y"; v "x" ]));
                      Logic.Expr.Weight ("w", [ v "y" ]);
                      Logic.Expr.Weight ("linv", [ v "y" ]);
                    ] );
            ];
        ]
    in
    let rat_ops = Intf.ops_of_ring (module Rat.Ring) in
    let t =
      ok
        (Engine.Eval.prepare_checked rat_ops ~opt ~backend ~domains ~tfa_rounds:1 ~budget
           ~fallback ?recover inst
           (Db.Weights.bundle [ w; linv ]) expr)
    in
    note_degraded (Engine.Eval.degraded t);
    for _ = 1 to rounds do
      let next = Array.init n (fun x -> ok (Engine.Eval.query_checked t [ x ])) in
      for x = 0 to n - 1 do
        ok (Engine.Eval.update_checked t "w" [ x ] next.(x))
      done;
      Obs.Openmetrics.pulse ()
    done;
    let ranks = Array.init n (fun x -> (Db.Weights.get w [ x ], x)) in
    Array.sort (fun (a, _) (b, _) -> Rat.compare b a) ranks;
    Printf.printf "top-5 after %d rounds:\n" rounds;
    Array.iteri
      (fun i (r, x) ->
        if i < 5 then Printf.printf "  vertex %4d  rank %.6f\n" x (Rat.to_float r))
      ranks
  in
  Cmd.v
    (Cmd.info "pagerank" ~doc:"PageRank rounds as a dynamic weighted query (Example 9).")
    Term.(
      ret
        (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg $ rounds_arg
       $ budget_opt $ fallback_recover))

(* --- explain --- *)

let explain_cmd =
  let semiring_arg =
    Arg.(
      value
      & opt (enum [ ("nat", `Nat); ("int", `Int); ("bool", `Bool) ]) `Nat
      & info [ "semiring" ] ~docv:"S"
          ~doc:
            "Semiring to compile under: $(b,nat), $(b,int) (a ring), or $(b,bool) (a \
             finite semiring). Determines which constant-update permanent-gate \
             strategy the dynamic circuit would pick.")
  in
  let run kind n seed qname (budget, opt, backend, domains) (semiring, load) =
    let sname = match semiring with `Nat -> "nat" | `Int -> "int" | `Bool -> "bool" in
    let strategy (type a) (ops : a Semiring.Intf.ops) =
      Printf.printf "permanent-gate strategy: %s\n"
        (Circuits.Dyn.mode_name (Circuits.Dyn.pick_mode ops));
      Printf.printf "gate storage: %s\n" (Circuits.Dyn.backend_name backend)
    in
    let pick_strategy () =
      match semiring with
      | `Nat -> strategy (Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)))
      | `Int -> strategy (Intf.with_int_repr (Intf.ops_of_ring (module Instances.Int_ring)))
      | `Bool -> strategy (Intf.ops_of_finite (module Instances.Bool))
    in
    match load with
    | Some path ->
        (* No compile happened, so no span tree: explain what the file holds
           and what runtime the chosen semiring would pick for it. *)
        let cc, tag = Circuits.Compact.load path in
        check_tag path tag sname;
        Printf.printf "loaded %s (tag %S)\n" path tag;
        Format.printf "circuit:  %a@." Circuits.Circuit.pp_stats
          (Circuits.Circuit.stats (Circuits.Compact.to_circuit cc));
        pick_strategy ()
    | None ->
    let _, inst = setup kind n seed in
    let phi = make_query qname in
    let fv = Logic.Formula.free_vars_unique phi in
    let expr = Logic.Expr.Sum (fv, Logic.Expr.Guard phi) in
    (* One compile under a recording; the span tree of the pipeline phases
       (normalize → gaifman → orientation → subsets → finish → optimize) is
       the plan. *)
    let explain (type a) (ops : a Semiring.Intf.ops) =
      let (ev : a Engine.Eval.t), records =
        Obs.Trace.with_recording (fun () ->
            Engine.Eval.prepare ops ~opt ~backend ~domains ~tfa_rounds:1 ~budget inst
              (Db.Weights.bundle []) expr)
      in
      print_string (Obs.Trace.render_forest (Obs.Trace.forest_of records));
      Format.printf "pipeline: %a@." Engine.Compile.pp_meta ev.Engine.Eval.meta;
      Format.printf "circuit:  %a@." Circuits.Circuit.pp_stats
        (Circuits.Circuit.stats ev.Engine.Eval.circuit);
      Format.printf "optimizer (per-pass shrink):@.%a@." Opt.pp_report
        ev.Engine.Eval.meta.Engine.Compile.opt;
      strategy ops;
      (* Cost of one cold evaluation of the same query: every gate is computed
         once, so gates_visited is the circuit size and there are no waves. *)
      let cell = ref None in
      ignore
        (Engine.Eval.evaluate ops ~opt ~backend ~domains ~tfa_rounds:1 ~budget ~cost:cell
           inst (Db.Weights.bundle []) expr);
      match !cell with
      | Some c -> Printf.printf "one-shot cost: %s\n" (Engine.Eval.Cost.summary c)
      | None -> ()
    in
    match semiring with
    | `Nat -> explain (Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat)))
    | `Int -> explain (Intf.with_int_repr (Intf.ops_of_ring (module Instances.Int_ring)))
    | `Bool -> explain (Intf.ops_of_finite (module Instances.Bool))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Compile a query and print its explain plan: the hierarchical span tree of \
          the compilation phases with wall-clock timings and coverage, the circuit \
          statistics, and the permanent-gate update strategy the chosen semiring \
          selects.")
    (let semiring_load = Term.(const (fun s l -> (s, l)) $ semiring_arg $ load_arg) in
     Term.(
       ret
         (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg
        $ query_arg $ budget_opt $ semiring_load)))

(* --- compile --- *)

let compile_cmd =
  let save_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Write the compiled+optimized circuit to $(docv) in the versioned SPQC1 \
             binary format; reload it with $(b,--load) on count, stats or explain.")
  in
  let semiring_arg =
    Arg.(
      value
      & opt (enum [ ("nat", `Nat); ("int", `Int); ("bool", `Bool) ]) `Nat
      & info [ "semiring" ] ~docv:"S"
          ~doc:
            "Semiring whose constants are baked into the saved circuit; recorded in \
             the file tag and checked on $(b,--load).")
  in
  let run kind n seed qname (budget, opt, _backend, _domains) (save, semiring) =
    let _, inst = setup kind n seed in
    let phi = make_query qname in
    let fv = Logic.Formula.free_vars_unique phi in
    let expr = Logic.Expr.Sum (fv, Logic.Expr.Guard phi) in
    let go (type a) (ops : a Semiring.Intf.ops) tag =
      let t0 = Unix.gettimeofday () in
      let c, m =
        Engine.Compile.compile ~tfa_rounds:1 ~budget ~opt ~zero:ops.Semiring.Intf.zero
          ~one:ops.Semiring.Intf.one inst expr
      in
      let cc = Circuits.Compact.of_circuit c in
      Circuits.Compact.save ~tag cc save;
      let bytes = (Unix.stat save).Unix.st_size in
      Format.printf "compiled %s in %.3fs@." qname (Unix.gettimeofday () -. t0);
      Format.printf "pipeline: %a@." Engine.Compile.pp_meta m;
      Format.printf "circuit: %a@." Circuits.Circuit.pp_stats (Circuits.Circuit.stats c);
      Printf.printf "saved %s (tag %S, %d bytes)\n" save tag bytes
    in
    match semiring with
    | `Nat -> go (Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat))) "nat"
    | `Int -> go (Intf.with_int_repr (Intf.ops_of_ring (module Instances.Int_ring))) "int"
    | `Bool -> go (Intf.ops_of_finite (module Instances.Bool)) "bool"
  in
  let save_semiring = Term.(const (fun s r -> (s, r)) $ save_arg $ semiring_arg) in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile and optimize a query once, then persist the compact circuit to disk \
          so later runs load it in O(size) instead of recompiling.")
    Term.(
      ret
        (const (guarded run) $ metrics_term $ trace_arg $ graph_arg $ n_arg $ seed_arg $ query_arg
       $ budget_opt $ save_semiring))

let () =
  (* Interactive runs want the post-mortem flight recorder on stderr; the
     SPARSEQ_FLIGHT env var (unset = silent, for the test suite) still wins. *)
  if Sys.getenv_opt "SPARSEQ_FLIGHT" = None then
    Obs.Trace.set_flight_dest Obs.Trace.Stderr;
  let info =
    Cmd.info "sparseq" ~version:"1.0.0"
      ~doc:"Aggregate queries on sparse databases (Torunczyk, PODS 2020)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ stats_cmd; count_cmd; enum_cmd; explain_cmd; pagerank_cmd; compile_cmd ]))
