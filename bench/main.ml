(* Benchmark harness with a machine-readable JSON baseline.

   Each workload exercises one update regime of the paper — General
   (Corollary 13), Ring (Corollary 17), Finite (Corollary 20), the closed
   Theorem 8 pipeline, Example 9's PageRank kernel, and Theorem 24's
   dynamic enumeration — and reports wall time, circuit gates/depth
   (Theorem 6), and exact update-latency p50/p99. Every workload is also
   re-run on a small instance and cross-checked against the brute-force
   Engine.Reference evaluator; any disagreement makes the harness exit
   nonzero, so the baseline file can only come from a correct engine.

   The batch_* workloads run the same hot-key write transactions through a
   sequential-update twin and an Eval.update_many twin, require their final
   values to agree exactly, and (in General mode) require the batched side
   to beat the sequential loop — the PR 3 batched-propagation claim.

   The eval workloads also prepare a twin with the optimizer disabled
   (--opt=none path) and record pre/post-opt gate counts plus the eval and
   per-update-p50 speedups the default pipeline buys; on triangle_nat and
   path2_enum the shrink must reach 20% with eval and p50 no worse than
   the unoptimized twin, and both twins must agree (and match the
   reference) or the workload counts as failed.

   The eval workloads additionally run a compact-vs-boxed runtime twin
   (PR 7): the main evaluator runs on the CSR/struct-of-arrays compact
   backend (the default), a boxed twin replays the byte-identical update
   stream, and the two must agree on every gate value; the full-eval
   observable compares Compact.eval on the flat arrays against the boxed
   Circuit.eval of the same circuit, and the circuit persisted with
   Compact.save must reload to the identical value. path2_enum gets its
   compact twin through the counting circuit of the same formula, whose
   value must equal the enumerated answer count on both runtimes.

   The eval workloads also run a parallel-evaluation twin (PR 8): the
   same compact circuit is fully evaluated level-parallel on N OCaml
   domains (--domains, default 4) and sequentially, interleaved min-of-5,
   and the two values must agree exactly; on the verify instance the
   parallel evaluator, the sequential twin, and Engine.Reference must
   all land on the identical value. The >=2.5x speedup floor on
   triangle_nat/pagerank_rat is enforced only when the host actually has
   that many cores (Domain.recommended_domain_count) — on fewer cores the
   ratio is recorded but not gated, since level-parallel evaluation
   cannot beat sequential on a single-core machine.

   PR 9 adds per-query cost attribution and a telemetry twin: each
   eval/batch workload replays a fresh update stream through
   Eval.with_cost / Eval.update_many_cost and requires the summed
   gates_visited to equal the dyn/touched_gates counter delta exactly
   (a mismatch fails the workload), and every workload times its own
   update kernel with the Obs layer on vs off (min-of-5 interleaved) and
   records the overhead percent — the ≤5% budget, now measured per
   workload instead of only on the synthetic kernel. --metrics-out FILE
   keeps an OpenMetrics exposition of the run refreshed on disk.

   Each workload draws its update streams from a workload-distinct RNG
   salt (within a workload the twin streams share the salt on purpose —
   they must replay the byte-identical writes), so no two workloads
   re-measure each other's key pattern.

   Run with: dune exec bench/main.exe -- --out BENCH_pr9.json
             dune exec bench/main.exe -- --smoke wdeg_ring path2_enum

   The output (default BENCH_pr9.json) carries per-workload numbers, the
   full Obs metrics snapshot, and the measured overhead of the metrics
   layer itself (enabled vs disabled), schema "sparseq-bench/v1".
   bench/compare.exe diffs two baseline files and warns on update-latency
   regressions (CI runs it against the committed BENCH_pr8.json).         *)

open Semiring

let v x = Logic.Term.Var x
let e x y = Logic.Formula.Rel ("E", [ v x; v y ])

let nat_ops = Intf.with_int_repr (Intf.ops_of_module (module Instances.Nat))
let int_ops = Intf.with_int_repr (Intf.ops_of_ring (module Instances.Int_ring))
let bool_ops = Intf.ops_of_finite (module Instances.Bool)

(* --- timing toolkit (wall clock; exact quantiles over raw samples) --- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* run [k] timed operations; returns the sorted per-op latency samples (ns) *)
let time_updates k f =
  let samples = Array.make (max 1 k) 0. in
  for i = 0 to k - 1 do
    let t0 = Unix.gettimeofday () in
    f i;
    samples.(i) <- (Unix.gettimeofday () -. t0) *. 1e9
  done;
  Array.sort compare samples;
  samples

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (float_of_int n *. q)))

(* unoptimized-p50 / optimized-p50; an optimized p50 of 0 (below the ~1µs
   wall-clock resolution) counts as parity, not a division blow-up *)
let p50_ratio ~raw ~opt = if opt <= 0. then 1. else raw /. opt

(* cumulative dyn/touched_gates counter — the odometer per-query cost
   attribution must agree with exactly *)
let touched_gates_total () =
  match Obs.find ~scope:"dyn" "touched_gates" with
  | Some (Obs.C c) -> Obs.Counter.get c
  | _ -> 0

(* The whole-layer overhead of leaving telemetry on for this workload's
   own update kernel: the identical kernel timed with Obs enabled (plus a
   window tick and a GC sample, charged to the enabled side) vs disabled,
   interleaved min-of-5. Sub-resolution noise can make the difference
   negative; that clamps to 0 — "no measurable overhead". *)
let telemetry_overhead_pct kernel =
  let reps = 51 in
  let on = Array.make reps 0. and off = Array.make reps 0. in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let leg_on () =
    Obs.set_enabled true;
    timed (fun () ->
        kernel ();
        Obs.Window.tick ();
        Obs.Runtime.sample ())
  in
  let leg_off () =
    Obs.set_enabled false;
    let dt = timed kernel in
    Obs.set_enabled true;
    dt
  in
  (* warm both legs once so the first timed pair isn't charged the
     enabled side's code-path warm-up *)
  ignore (leg_on ());
  ignore (leg_off ());
  for i = 0 to reps - 1 do
    (* alternate leg order so cache/GC position bias cancels instead of
       always favoring whichever side runs second *)
    if i land 1 = 0 then begin
      on.(i) <- leg_on ();
      off.(i) <- leg_off ()
    end
    else begin
      off.(i) <- leg_off ();
      on.(i) <- leg_on ()
    end
  done;
  (* paired design: host-load drift moves both legs of a pair together,
     so the per-pair difference cancels it; the median over pairs then
     discards the scheduler spikes that would dominate a mean (or hand
     a min to whichever side got luckier) *)
  let diffs = Array.init reps (fun i -> on.(i) -. off.(i)) in
  Array.sort compare diffs;
  Array.sort compare off;
  let m_diff = diffs.(reps / 2) and m_off = off.(reps / 2) in
  Float.max 0. (100. *. m_diff /. Float.max 1e-9 m_off)

(* --- per-workload results --- *)

type result = {
  name : string;
  n : int;  (** elements of the perf instance *)
  wall_s : float;  (** preparation/compile wall time on the perf instance *)
  gates : int;
  depth : int;
  updates : int;
  p50_ns : float;
  p99_ns : float;
  verified : bool;  (** small instance agrees with Engine.Reference *)
  detail : string;
  opt_cmp : opt_cmp option;  (** optimizer twin comparison, when measured *)
  compact_cmp : compact_cmp option;  (** compact-runtime twin, when measured *)
  par_cmp : par_cmp option;  (** parallel-evaluation twin, when measured *)
  cost_cmp : cost_cmp option;  (** per-query cost attribution, when measured *)
  churn_cmp : churn_cmp option;  (** structural-churn twin, when measured *)
  telemetry_pct : float option;
      (** telemetry-on vs telemetry-off overhead on this workload's update
          kernel, percent (min-of-5 interleaved; negative noise clamps to 0) *)
}

(* Costed replay of the workload's own update stream through
   Eval.with_cost / Eval.update_many_cost: the summed per-update
   gates_visited must equal the dyn/touched_gates counter delta over the
   same replay — the attribution and the odometer count the same commits. *)
and cost_cmp = {
  cost_gates : int;  (** Σ gates_visited over the costed replay *)
  cost_counter_delta : int;  (** dyn/touched_gates delta over the same replay *)
  cost_waves : int;
  cost_minor_words : float;
  cost_exact : bool;  (** cost_gates = cost_counter_delta *)
}

(* Structural churn vs full-recompile twin: every insert/delete is served
   once through the localized recompile + splice path and once by
   compiling the mutated instance from scratch; the two must land on the
   identical value after every op, the localized path must win on wall
   clock, and the splices must carry more gates than they rebuild. *)
and churn_cmp = {
  churn_ops : int;  (** structural ops in the mixed stream *)
  churn_localized : int;
  churn_fallbacks : int;
  churn_rebuilt : int;  (** gates rebuilt across all structural ops *)
  churn_carried : int;  (** gates carried across all splices *)
  churn_speedup : float;  (** full-recompile twin wall / incremental wall *)
  churn_ok : bool;
  churn_detail : string;
}

(* Default-pipeline vs --opt=none twin on the same instance and weights:
   gate shrink, full-evaluation speedup, per-update p50 speedup, and exact
   value agreement between the two circuits. *)
and opt_cmp = {
  gates_pre : int;
  shrink : float;  (** percent of gates removed by the default pipeline *)
  eval_speedup : float;  (** unoptimized eval wall / optimized eval wall *)
  p50_speedup : float;  (** unoptimized update p50 / optimized update p50 *)
  opt_ok : bool;  (** twins agree (and enforcement thresholds hold, if any) *)
  opt_detail : string;
}

(* Compact (CSR + value planes) vs boxed (pointer graph) runtime on the
   same optimized circuit: full-eval and per-update-p50 speedups, exact
   gate-level agreement after identical update streams, and a
   save→load→eval round-trip through the SPQC1 binary format. *)
and compact_cmp = {
  c_eval_speedup : float;  (** boxed full-eval wall / compact full-eval wall *)
  c_p50_speedup : float;  (** boxed update p50 / compact update p50 *)
  c_roundtrip : bool;  (** persisted circuit reloads to the identical value *)
  c_ok : bool;  (** twins agree on every gate and the round-trip held *)
  c_detail : string;
}

(* Level-parallel (Circuits.Par, N domains) vs sequential compact full
   evaluation of the same frozen circuit: wall-clock speedup, exact value
   agreement on the perf instance, and a three-way exact-agreement check
   (parallel = sequential = Engine.Reference) on the verify instance. The
   speedup floor is enforced only when the host has enough cores. *)
and par_cmp = {
  par_domains : int;
  par_levels : int;  (** depth levels of the frozen circuit's level index *)
  par_eval_speedup : float;  (** sequential full-eval wall / parallel wall *)
  par_enforced : bool;  (** the speedup floor was actually gated *)
  par_ok : bool;
  par_detail : string;
}

let result_json r =
  Obs.Json.O
    ([
       ("name", Obs.Json.S r.name);
       ("n", Obs.Json.I r.n);
       ("wall_s", Obs.Json.F r.wall_s);
       ("gates", Obs.Json.I r.gates);
       ("depth", Obs.Json.I r.depth);
       ("updates", Obs.Json.I r.updates);
       ("update_p50_ns", Obs.Json.F r.p50_ns);
       ("update_p99_ns", Obs.Json.F r.p99_ns);
       ("verified", Obs.Json.B r.verified);
       ("detail", Obs.Json.S r.detail);
     ]
    @ (match r.opt_cmp with
      | None -> []
      | Some o ->
          [
            ("gates_pre_opt", Obs.Json.I o.gates_pre);
            ("opt_shrink_pct", Obs.Json.F o.shrink);
            ("opt_eval_speedup", Obs.Json.F o.eval_speedup);
            ("opt_p50_speedup", Obs.Json.F o.p50_speedup);
            ("opt_ok", Obs.Json.B o.opt_ok);
            ("opt_detail", Obs.Json.S o.opt_detail);
          ])
    @ (match r.compact_cmp with
      | None -> []
      | Some c ->
          [
            ("compact_eval_speedup", Obs.Json.F c.c_eval_speedup);
            ("compact_p50_speedup", Obs.Json.F c.c_p50_speedup);
            ("compact_roundtrip", Obs.Json.B c.c_roundtrip);
            ("compact_ok", Obs.Json.B c.c_ok);
            ("compact_detail", Obs.Json.S c.c_detail);
          ])
    @ (match r.par_cmp with
      | None -> []
      | Some p ->
          [
            ("par_domains", Obs.Json.I p.par_domains);
            ("par_levels", Obs.Json.I p.par_levels);
            ("par_eval_speedup", Obs.Json.F p.par_eval_speedup);
            ("par_enforced", Obs.Json.B p.par_enforced);
            ("par_ok", Obs.Json.B p.par_ok);
            ("par_detail", Obs.Json.S p.par_detail);
          ])
    @ (match r.cost_cmp with
      | None -> []
      | Some c ->
          [
            ("cost_gates", Obs.Json.I c.cost_gates);
            ("cost_counter_delta", Obs.Json.I c.cost_counter_delta);
            ("cost_waves", Obs.Json.I c.cost_waves);
            ("cost_minor_words", Obs.Json.F c.cost_minor_words);
            ("cost_exact", Obs.Json.B c.cost_exact);
          ])
    @ (match r.churn_cmp with
      | None -> []
      | Some ch ->
          [
            ("churn_ops", Obs.Json.I ch.churn_ops);
            ("churn_localized", Obs.Json.I ch.churn_localized);
            ("churn_fallbacks", Obs.Json.I ch.churn_fallbacks);
            ("churn_gates_rebuilt", Obs.Json.I ch.churn_rebuilt);
            ("churn_gates_carried", Obs.Json.I ch.churn_carried);
            ("churn_speedup", Obs.Json.F ch.churn_speedup);
            ("churn_ok", Obs.Json.B ch.churn_ok);
            ("churn_detail", Obs.Json.S ch.churn_detail);
          ])
    @
    match r.telemetry_pct with
    | None -> []
    | Some pct -> [ ("telemetry_overhead_pct", Obs.Json.F pct) ])

(* --- shared query shapes --- *)

(* weighted degree: f(x) = Σ_y [E(x,y)]·w(y), the running Theorem 8 query *)
let wdeg_expr =
  Logic.Expr.Sum
    ( [ "y" ],
      Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )

(* weighted triangles: Σ_xyz [triangle]·w(x), closed *)
let wtri_expr =
  Logic.Expr.Sum
    ( [ "x"; "y"; "z" ],
      Logic.Expr.Mul
        [
          Logic.Expr.Guard (Logic.Formula.And [ e "x" "y"; e "y" "z"; e "z" "x" ]);
          Logic.Expr.Weight ("w", [ v "x" ]);
        ] )

(* closed weighted degree: Σ_xy [E(x,y)]·w(y) — closed so [value] is the
   live answer, the observable the batched-update workloads compare on *)
let cwdeg_expr =
  Logic.Expr.Sum
    ( [ "x"; "y" ],
      Logic.Expr.Mul [ Logic.Expr.Guard (e "x" "y"); Logic.Expr.Weight ("w", [ v "y" ]) ] )

let phi_path2 =
  Logic.Formula.And [ e "x" "y"; e "y" "z"; Logic.Formula.neq (v "x") (v "z") ]

(* --- the Eval-based workloads (General / Ring / Finite / closed) --- *)

(* Build weights, prepare on a perf instance, hammer random updates, then
   replay the protocol on a small instance checking every query (or the
   closed value) against Engine.Reference after shared-state updates. *)
(* [opt_enforce]: minimum gate-shrink percent the default pipeline must
   reach on this workload (with eval and update p50 no worse than the
   unoptimized twin); [None] records the comparison without enforcing.
   [salt] is this workload's distinct RNG salt: the three twin streams
   below share it (they must replay identical writes), but no two
   workloads may, or one silently re-measures the other's key pattern.
   [par_enforce]: minimum parallel-vs-sequential full-eval speedup to
   require — gated only when the host has [domains] cores. *)
let eval_workload (type a) ~name ~(ops : a Intf.ops) ?mode ?opt_enforce ?par_enforce
    ~(mk : int -> a) ~(graph : int -> Graphs.Graph.t) ~(expr : int -> a Logic.Expr.t)
    ~n_perf ~n_verify ~updates ~seed ~salt ~domains () : result =
  let make n =
    let inst = Db.Instance.of_graph (graph n) in
    let n = Db.Instance.n inst in
    let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
    Db.Weights.fill_unary w ~n (fun i -> mk i);
    (inst, n, w, Db.Weights.bundle [ w ])
  in
  (* perf phase *)
  let inst, n, _w, weights = make n_perf in
  let wall_s, ev =
    time (fun () -> Engine.Eval.prepare ops ?mode ~tfa_rounds:1 inst weights (expr n))
  in
  let s = Engine.Eval.stats ev in
  let rng = Random.State.make [| seed; salt; 1 |] in
  let samples =
    time_updates updates (fun _ ->
        Engine.Eval.update ev "w" [ Random.State.int rng n ] (mk (Random.State.int rng 1000)))
  in
  (* optimizer twin: the same prepare with the pipeline disabled. Updates
     above did not write through to the bundle, so a full Circuit.eval of
     both circuits against the bundle compares the twins on identical
     weights. *)
  let ev_raw =
    Engine.Eval.prepare ops ?mode ~opt:Opt.none ~tfa_rounds:1 inst weights (expr n)
  in
  let valuation (wname, tuple) =
    if String.starts_with ~prefix:Db.Weights.reserved_prefix wname then ops.Intf.zero
    else Db.Weights.get (Db.Weights.find weights wname) tuple
  in
  let time_eval circuit =
    let reps = 3 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Circuits.Circuit.eval ops circuit valuation)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let v_opt = Circuits.Circuit.eval ops ev.Engine.Eval.circuit valuation in
  let v_raw = Circuits.Circuit.eval ops ev_raw.Engine.Eval.circuit valuation in
  let twins_agree = ops.Intf.equal v_opt v_raw in
  let t_opt = time_eval ev.Engine.Eval.circuit in
  let t_raw = time_eval ev_raw.Engine.Eval.circuit in
  (* same salt as [rng] on purpose: the twin replays the identical stream *)
  let rng_raw = Random.State.make [| seed; salt; 1 |] in
  let samples_raw =
    time_updates updates (fun _ ->
        Engine.Eval.update ev_raw "w"
          [ Random.State.int rng_raw n ]
          (mk (Random.State.int rng_raw 1000)))
  in
  let gates_pre = (Engine.Eval.stats ev_raw).Circuits.Circuit.gates in
  let shrink =
    if gates_pre = 0 then 0.
    else
      100.
      *. float_of_int (gates_pre - s.Circuits.Circuit.gates)
      /. float_of_int gates_pre
  in
  let eval_speedup = t_raw /. Float.max 1e-9 t_opt in
  let p50_speedup =
    p50_ratio ~raw:(quantile samples_raw 0.5) ~opt:(quantile samples 0.5)
  in
  let opt_ok =
    twins_agree
    &&
    match opt_enforce with
    | None -> true
    | Some min_shrink ->
        (* "no worse" with a noise allowance on the per-update p50 *)
        shrink >= min_shrink && eval_speedup >= 0.95 && p50_speedup >= 0.8
  in
  let opt_cmp =
    Some
      {
        gates_pre;
        shrink;
        eval_speedup;
        p50_speedup;
        opt_ok;
        opt_detail =
          Printf.sprintf
            "gates %d->%d (%.1f%% shrink) eval x%.2f p50 x%.2f; twins %s%s" gates_pre
            s.Circuits.Circuit.gates shrink eval_speedup p50_speedup
            (if twins_agree then "agree" else "DISAGREE")
            (match opt_enforce with
            | Some m when not opt_ok -> Printf.sprintf " BELOW required %.0f%% shrink" m
            | _ -> "");
      }
  in
  (* compact twin (PR 7): [ev] already runs on the compact CSR backend
     (the default), so spin up a boxed Dyn over the identical circuit
     object (gate ids line up by construction), replay the byte-identical
     update stream through it, and require the two runtimes to agree on
     every gate value. The full-eval observable is Compact.eval over the
     flat arrays vs the boxed Circuit.eval of the same optimized circuit;
     the circuit is also persisted and reloaded, and must evaluate to the
     identical value. *)
  let dyn_box =
    Circuits.Dyn.create ?mode ~backend:Circuits.Dyn.Boxed ops ev.Engine.Eval.circuit
      valuation
  in
  let rng_box = Random.State.make [| seed; salt; 1 |] in
  let samples_box =
    time_updates updates (fun _ ->
        (* draw value before index: [Engine.Eval.update ev "w" [draw] (draw)]
           above evaluates its arguments right to left, and the streams must
           stay in lockstep for the twins to see identical writes *)
        let vv = mk (Random.State.int rng_box 1000) in
        let x = Random.State.int rng_box n in
        let key = ("w", [ x ]) in
        if Circuits.Dyn.has_input dyn_box key then Circuits.Dyn.set_input dyn_box key vv)
  in
  let gates_agree =
    let dc = ev.Engine.Eval.dyn in
    Circuits.Dyn.num_gates dc = Circuits.Dyn.num_gates dyn_box
    &&
    let ok = ref true in
    for id = 0 to Circuits.Dyn.num_gates dc - 1 do
      if
        not
          (ops.Intf.equal (Circuits.Dyn.gate_value dc id)
             (Circuits.Dyn.gate_value dyn_box id))
      then ok := false
    done;
    !ok
  in
  let cc = Circuits.Compact.of_circuit ev.Engine.Eval.circuit in
  (* time boxed and compact eval interleaved, min over rounds: the earlier
     [t_opt] sample ran in a different cache/GC regime, and these sub-ms
     evals are dominated by scheduler noise otherwise *)
  let t_boxed_eval, t_compact =
    let best_b = ref infinity and best_c = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (Circuits.Circuit.eval ops ev.Engine.Eval.circuit valuation);
      let t1 = Unix.gettimeofday () in
      ignore (Circuits.Compact.eval ops cc valuation);
      let t2 = Unix.gettimeofday () in
      best_b := Float.min !best_b (t1 -. t0);
      best_c := Float.min !best_c (t2 -. t1)
    done;
    (!best_b, !best_c)
  in
  let v_compact = Circuits.Compact.eval ops cc valuation in
  let compact_agree = ops.Intf.equal v_compact v_opt in
  let roundtrip =
    let tmp = Filename.temp_file "sparseq_bench" ".spqc" in
    Circuits.Compact.save ~tag:name cc tmp;
    let cc2, tag = Circuits.Compact.load tmp in
    Sys.remove tmp;
    tag = name && ops.Intf.equal (Circuits.Compact.eval ops cc2 valuation) v_compact
  in
  let c_eval_speedup = t_boxed_eval /. Float.max 1e-9 t_compact in
  let c_p50_speedup =
    p50_ratio ~raw:(quantile samples_box 0.5) ~opt:(quantile samples 0.5)
  in
  let c_ok = gates_agree && compact_agree && roundtrip in
  let compact_cmp =
    Some
      {
        c_eval_speedup;
        c_p50_speedup;
        c_roundtrip = roundtrip;
        c_ok;
        c_detail =
          Printf.sprintf "eval x%.2f p50 x%.2f vs boxed; gates %s; eval %s; reload %s"
            c_eval_speedup c_p50_speedup
            (if gates_agree then "agree" else "DISAGREE")
            (if compact_agree then "agree" else "DISAGREE")
            (if roundtrip then "identical" else "DIFFERS");
      }
  in
  (* parallel twin (PR 8): full evaluation of the same frozen compact
     circuit, level-parallel on [domains] OCaml domains vs sequential,
     interleaved min-of-5 like the compact/boxed pair above; the two must
     land on the identical value. The speedup floor (when set) is only
     enforced on hosts that actually have [domains] cores. *)
  let par_cmp =
    let pl = Circuits.Par.plan cc in
    let t_seq, t_par =
      let best_s = ref infinity and best_p = ref infinity in
      for _ = 1 to 5 do
        let t0 = Unix.gettimeofday () in
        ignore (Circuits.Compact.eval ops cc valuation);
        let t1 = Unix.gettimeofday () in
        ignore (Circuits.Par.eval ~plan:pl ~domains ops cc valuation);
        let t2 = Unix.gettimeofday () in
        best_s := Float.min !best_s (t1 -. t0);
        best_p := Float.min !best_p (t2 -. t1)
      done;
      (!best_s, !best_p)
    in
    let v_par = Circuits.Par.eval ~plan:pl ~domains ops cc valuation in
    let par_agree = ops.Intf.equal v_par v_compact in
    let par_eval_speedup = t_seq /. Float.max 1e-9 t_par in
    let enforced =
      par_enforce <> None && Domain.recommended_domain_count () >= domains
    in
    let fast =
      match par_enforce with
      | Some floor when enforced -> par_eval_speedup >= floor
      | _ -> true
    in
    let par_ok = par_agree && fast in
    Some
      {
        par_domains = domains;
        par_levels = Circuits.Par.levels pl;
        par_eval_speedup;
        par_enforced = enforced;
        par_ok;
        par_detail =
          Printf.sprintf "eval x%.2f on %d domains (%d levels%s); values %s%s"
            par_eval_speedup domains (Circuits.Par.levels pl)
            (if enforced then ""
             else
               Printf.sprintf ", floor not gated: host has %d core(s)"
                 (Domain.recommended_domain_count ()))
            (if par_agree then "agree" else "DISAGREE")
            (match par_enforce with
            | Some floor when enforced && not fast ->
                Printf.sprintf " BELOW required %.1fx" floor
            | _ -> "");
      }
  in
  let par_ok = match par_cmp with Some p -> p.par_ok | None -> true in
  (* park the pool before the cost/telemetry phases: idle worker domains
     make every minor GC a full-fleet synchronization, which would tax
     the allocation-heavy enabled legs below far beyond the telemetry
     layer's own cost *)
  Circuits.Par.shutdown ();
  (* costed replay: another [updates]-long stream through the same live
     evaluator, this time attributed via Eval.with_cost; runs after the
     twin comparisons so the extra writes cannot desync the twins *)
  let cost_cmp =
    let rng_c = Random.State.make [| seed; salt; 3 |] in
    let touched0 = touched_gates_total () in
    let agg = ref Engine.Eval.Cost.zero in
    for _ = 1 to updates do
      let (), c =
        Engine.Eval.with_cost ev (fun () ->
            Engine.Eval.update ev "w"
              [ Random.State.int rng_c n ]
              (mk (Random.State.int rng_c 1000)))
      in
      agg := Engine.Eval.Cost.add !agg c
    done;
    let delta = touched_gates_total () - touched0 in
    let c = !agg in
    Some
      {
        cost_gates = c.Engine.Eval.Cost.gates_visited;
        cost_counter_delta = delta;
        cost_waves = c.Engine.Eval.Cost.waves;
        cost_minor_words = c.Engine.Eval.Cost.minor_words;
        cost_exact = c.Engine.Eval.Cost.gates_visited = delta;
      }
  in
  let cost_ok = match cost_cmp with Some c -> c.cost_exact | None -> true in
  let telemetry_pct =
    (* floor of 10000 updates per timed leg: smaller legs sit inside the
       wall-clock jitter and report pure noise. The key sequence restarts
       every leg so both legs of a pair touch the identical gate sets and
       the paired diff isolates the telemetry layer; the value stream is
       offset by a pass counter so replaying the keys never degenerates
       into equal-value no-op updates *)
    let pass = ref 0 in
    Some
      (telemetry_overhead_pct (fun () ->
           incr pass;
           let rng_t = Random.State.make [| seed; salt; 7 |] in
           for _ = 1 to max updates 10_000 do
             Engine.Eval.update ev "w"
               [ Random.State.int rng_t n ]
               (mk (Random.State.int rng_t 1000 + !pass))
           done))
  in
  (* verify phase: updates write through to the bundle so the reference
     evaluator sees the same weights as the circuit *)
  let instv, nv, wv, weightsv = make n_verify in
  let exprv = expr nv in
  let evv = Engine.Eval.prepare ops ?mode ~tfa_rounds:1 instv weightsv exprv in
  let rngv = Random.State.make [| seed; salt; 2 |] in
  for _ = 1 to 25 do
    let x = Random.State.int rngv nv and value = mk (Random.State.int rngv 1000) in
    Db.Weights.set wv [ x ] value;
    Engine.Eval.update evv "w" [ x ] value
  done;
  let fv = Logic.Expr.free_vars_unique exprv in
  let mismatches = ref 0 in
  if fv = [] then begin
    let want = Engine.Reference.eval ops instv weightsv exprv in
    if not (ops.Intf.equal (Engine.Eval.value evv) want) then incr mismatches
  end
  else
    for x = 0 to nv - 1 do
      let want = Engine.Reference.eval ops instv weightsv ~env:[ (List.hd fv, x) ] exprv in
      if not (ops.Intf.equal (Engine.Eval.query evv [ x ]) want) then incr mismatches
    done;
  (* three-way exact agreement on the verify instance: the parallel
     evaluator, the sequential twin, and the brute-force reference must
     all land on the identical value of the closed sum *)
  let trio_ok =
    let exprv_closed = if fv = [] then exprv else Logic.Expr.Sum (fv, exprv) in
    let v_ref = Engine.Reference.eval ops instv weightsv exprv_closed in
    let v_seq = Engine.Eval.evaluate ops ~tfa_rounds:1 instv weightsv exprv_closed in
    let v_par =
      Engine.Eval.evaluate ops ~domains ~tfa_rounds:1 instv weightsv exprv_closed
    in
    ops.Intf.equal v_par v_seq && ops.Intf.equal v_seq v_ref
  in
  {
    name;
    n;
    wall_s;
    gates = s.Circuits.Circuit.gates;
    depth = s.Circuits.Circuit.depth;
    updates;
    p50_ns = quantile samples 0.5;
    p99_ns = quantile samples 0.99;
    verified = !mismatches = 0 && opt_ok && c_ok && par_ok && trio_ok && cost_ok;
    detail =
      (if !mismatches = 0 then
         Printf.sprintf "reference agreed on n=%d after 25 shared updates" nv
       else Printf.sprintf "%d reference mismatches on n=%d" !mismatches nv)
      ^ Printf.sprintf "; opt: %s"
          (match opt_cmp with Some o -> o.opt_detail | None -> "skipped")
      ^ Printf.sprintf "; compact: %s"
          (match compact_cmp with Some c -> c.c_detail | None -> "skipped")
      ^ Printf.sprintf "; par: %s%s"
          (match par_cmp with Some p -> p.par_detail | None -> "skipped")
          (if trio_ok then "; par=seq=reference" else "; par/seq/reference DISAGREE")
      ^ Printf.sprintf "; cost: %s"
          (match cost_cmp with
          | Some c ->
              Printf.sprintf "%d gates in %d waves vs counter delta %d (%s)"
                c.cost_gates c.cost_waves c.cost_counter_delta
                (if c.cost_exact then "exact" else "MISMATCH")
          | None -> "skipped");
    opt_cmp;
    compact_cmp;
    par_cmp;
    cost_cmp;
    churn_cmp = None;
    telemetry_pct;
  }

(* --- the batched-update workloads (PR 3 tentpole) --- *)

(* Twin evaluators on the same instance: one applies each transaction of
   [batch] writes one propagation wave at a time (Eval.update), the other
   as a single Eval.update_many wave. Writes hit a hot key pool
   (|pool| ≪ batch) — the incremental-view-maintenance regime batching
   exists for: the sequential loop pays a wave per write while the batch
   collapses duplicate keys and dedups shared-ancestor recomputation.
   Both twins see the byte-identical write list, so their final closed
   values must agree exactly; the verify phase replays the protocol on a
   small instance with write-through to the weight bundle and additionally
   checks the final value against Engine.Reference. When
   [require_speedup] is set, the batched side must beat the sequential
   loop by that factor or the workload counts as failed. *)
let batch_workload (type a) ~name ~(ops : a Intf.ops) ~mode ~(mk : int -> a)
    ~(graph : int -> Graphs.Graph.t) ~n_perf ~n_verify ~batch ~hot ~rounds ~seed ~salt
    ~require_speedup () : result =
  let make n =
    let inst = Db.Instance.of_graph (graph n) in
    let n = Db.Instance.n inst in
    let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:ops.Intf.zero in
    Db.Weights.fill_unary w ~n (fun i -> mk i);
    (inst, n, w, Db.Weights.bundle [ w ])
  in
  let transactions n rng =
    let pool = Array.init (min hot n) (fun _ -> Random.State.int rng n) in
    List.init rounds (fun _ ->
        List.init batch (fun _ ->
            ( "w",
              [ pool.(Random.State.int rng (Array.length pool)) ],
              mk (Random.State.int rng 1000) )))
  in
  (* perf phase: same write list through both twins *)
  let inst, n, _w, weights = make n_perf in
  let wall_s, ev_seq =
    time (fun () -> Engine.Eval.prepare ops ~mode ~tfa_rounds:1 inst weights cwdeg_expr)
  in
  let ev_batch = Engine.Eval.prepare ops ~mode ~tfa_rounds:1 inst weights cwdeg_expr in
  let txns = transactions n (Random.State.make [| seed; salt; 4 |]) in
  let seq_s, () =
    time (fun () ->
        List.iter
          (List.iter (fun (w, tup, value) -> Engine.Eval.update ev_seq w tup value))
          txns)
  in
  let samples =
    let arr = Array.of_list txns in
    time_updates rounds (fun i -> Engine.Eval.update_many ev_batch arr.(i))
  in
  let batch_s = Array.fold_left ( +. ) 0. samples /. 1e9 in
  let speedup = seq_s /. Float.max 1e-9 batch_s in
  let agree = ops.Intf.equal (Engine.Eval.value ev_seq) (Engine.Eval.value ev_batch) in
  (* costed replay: fresh transactions through the batched twin via
     update_many_cost; runs after the twin agreement is sampled so the
     extra writes cannot desync it. One committed wave per non-trivial
     batch, and the summed gate counts must match the counter delta. *)
  let cost_cmp =
    let txns_c = transactions n (Random.State.make [| seed; salt; 6 |]) in
    let touched0 = touched_gates_total () in
    let agg = ref Engine.Eval.Cost.zero in
    List.iter
      (fun txn ->
        agg := Engine.Eval.Cost.add !agg (Engine.Eval.update_many_cost ev_batch txn))
      txns_c;
    let delta = touched_gates_total () - touched0 in
    let c = !agg in
    Some
      {
        cost_gates = c.Engine.Eval.Cost.gates_visited;
        cost_counter_delta = delta;
        cost_waves = c.Engine.Eval.Cost.waves;
        cost_minor_words = c.Engine.Eval.Cost.minor_words;
        cost_exact =
          c.Engine.Eval.Cost.gates_visited = delta
          && c.Engine.Eval.Cost.waves <= List.length txns_c;
      }
  in
  let cost_ok = match cost_cmp with Some c -> c.cost_exact | None -> true in
  let telemetry_pct =
    (* a cycled pool of pre-generated transaction lists: replaying one
       fixed list would make every write a same-value no-op after the
       first pass (the legs would time hash lookups instead of waves),
       and generating transactions inside the timed leg would add
       allocation jitter that isn't the telemetry layer's *)
    let rng_t = Random.State.make [| seed; salt; 7 |] in
    let pool = Array.init 8 (fun _ -> transactions n rng_t) in
    let li = ref 0 in
    Some
      (telemetry_overhead_pct (fun () ->
           incr li;
           List.iter
             (fun txn -> Engine.Eval.update_many ev_batch txn)
             pool.(!li mod Array.length pool)))
  in
  (* verify phase: write-through on a small instance, checked against the
     reference evaluator *)
  let instv, nv, wv, weightsv = make n_verify in
  let evv = Engine.Eval.prepare ops ~mode ~tfa_rounds:1 instv weightsv cwdeg_expr in
  let txnsv = transactions nv (Random.State.make [| seed; salt; 5 |]) in
  List.iter
    (fun txn ->
      List.iter (fun (_, tup, value) -> Db.Weights.set wv tup value) txn;
      Engine.Eval.update_many evv txn)
    txnsv;
  let want = Engine.Reference.eval ops instv weightsv cwdeg_expr in
  let ref_ok = ops.Intf.equal (Engine.Eval.value evv) want in
  let fast = match require_speedup with None -> true | Some s -> speedup >= s in
  let s = Engine.Eval.stats ev_batch in
  {
    name;
    n;
    wall_s;
    gates = s.Circuits.Circuit.gates;
    depth = s.Circuits.Circuit.depth;
    updates = rounds * batch;
    p50_ns = quantile samples 0.5;
    p99_ns = quantile samples 0.99;
    verified = agree && ref_ok && fast && cost_ok;
    detail =
      Printf.sprintf
        "speedup %.2fx (seq %.1fms vs batch %.1fms; %d txns of %d writes over %d hot \
         keys)%s; twins %s; reference %s on n=%d"
        speedup (seq_s *. 1e3) (batch_s *. 1e3) rounds batch (min hot n)
        (match require_speedup with
        | Some s when speedup < s -> Printf.sprintf " BELOW required %.1fx" s
        | _ -> "")
        (if agree then "agree" else "DISAGREE")
        (if ref_ok then "agreed" else "DISAGREED")
        nv
      ^ Printf.sprintf "; cost: %s"
          (match cost_cmp with
          | Some c ->
              Printf.sprintf "%d gates in %d waves vs counter delta %d (%s)"
                c.cost_gates c.cost_waves c.cost_counter_delta
                (if c.cost_exact then "exact" else "MISMATCH")
          | None -> "skipped");
    opt_cmp = None;
    compact_cmp = None;
    par_cmp = None;
    cost_cmp;
    churn_cmp = None;
    telemetry_pct;
  }

(* --- the Theorem 24 dynamic enumeration workload --- *)

let path2_workload ~smoke ~seed () : result =
  let side_perf = if smoke then 12 else 30 in
  let updates = if smoke then 200 else 1000 in
  ignore seed;
  let inst = Db.Instance.of_graph (Graphs.Gen.grid side_perf side_perf) in
  let n = Db.Instance.n inst in
  let wall_s, t = time (fun () -> Fo_enum.prepare ~dynamic:true inst phi_path2) in
  let s = Fo_enum.stats t in
  let gaifman = Db.Instance.gaifman (Fo_enum.instance t) in
  let edges = Array.of_list (Db.Instance.tuples (Fo_enum.instance t) "E") in
  (* each sample is one set_tuple; pairs of samples toggle an edge off/on *)
  let samples =
    time_updates updates (fun i ->
        let tup = edges.((i / 2) mod Array.length edges) in
        Fo_enum.set_tuple t ~gaifman "E" tup (i mod 2 = 1))
  in
  (* optimizer twin on the same (live) instance: enumeration rebuilds the
     iterator DAG in time linear in the circuit, so the full-answers pass
     is the eval observable; set_tuple is O(1) on the instance either way. *)
  let t_raw = Fo_enum.prepare ~dynamic:true ~opt:Opt.none inst phi_path2 in
  let gates_pre = (Fo_enum.stats t_raw).Circuits.Circuit.gates in
  let enum_opt_s, answers_opt = time (fun () -> Fo_enum.answers t) in
  let enum_raw_s, answers_raw = time (fun () -> Fo_enum.answers t_raw) in
  let twins_agree =
    List.sort compare (List.map Array.to_list answers_opt)
    = List.sort compare (List.map Array.to_list answers_raw)
  in
  let samples_raw =
    let gaifman_raw = Db.Instance.gaifman (Fo_enum.instance t_raw) in
    let edges_raw = Array.of_list (Db.Instance.tuples (Fo_enum.instance t_raw) "E") in
    time_updates updates (fun i ->
        let tup = edges_raw.((i / 2) mod Array.length edges_raw) in
        Fo_enum.set_tuple t_raw ~gaifman:gaifman_raw "E" tup (i mod 2 = 1))
  in
  let shrink =
    if gates_pre = 0 then 0.
    else
      100.
      *. float_of_int (gates_pre - s.Circuits.Circuit.gates)
      /. float_of_int gates_pre
  in
  let eval_speedup = enum_raw_s /. Float.max 1e-9 enum_opt_s in
  let p50_speedup =
    p50_ratio ~raw:(quantile samples_raw 0.5) ~opt:(quantile samples 0.5)
  in
  (* enforced: >=20% shrink, enumeration and update p50 no worse (with a
     noise allowance on the O(1) instance-level updates) *)
  let opt_ok =
    twins_agree && shrink >= 20. && eval_speedup >= 0.95 && p50_speedup >= 0.8
  in
  let opt_detail =
    Printf.sprintf "gates %d->%d (%.1f%% shrink) enum x%.2f p50 x%.2f; twins %s" gates_pre
      s.Circuits.Circuit.gates shrink eval_speedup p50_speedup
      (if twins_agree then "agree" else "DISAGREE")
  in
  (* compact twin (PR 7) through the counting circuit of the same formula:
     its value is the answer count, so compact eval, boxed eval, and the
     enumeration must all land on the same number (the paired set_tuple
     toggles above cancel out, so the instance is back in its initial
     state); the persisted circuit must reload to the same count. The
     set_tuple updates are O(1) instance writes on either runtime, so only
     the full-eval observable is twinned (p50 speedup recorded as parity). *)
  let fvp = Logic.Formula.free_vars_unique phi_path2 in
  let ccirc, _ =
    Engine.Compile.compile ~tfa_rounds:1 ~zero:0 ~one:1 inst
      (Logic.Expr.Sum (fvp, Logic.Expr.Guard phi_path2))
  in
  let cc = Circuits.Compact.of_circuit ccirc in
  (* interleaved min-of-5, as in the eval workloads *)
  let t_boxed, t_compact =
    let best_b = ref infinity and best_c = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (Circuits.Circuit.eval nat_ops ccirc (fun _ -> 0));
      let t1 = Unix.gettimeofday () in
      ignore (Circuits.Compact.eval nat_ops cc (fun _ -> 0));
      let t2 = Unix.gettimeofday () in
      best_b := Float.min !best_b (t1 -. t0);
      best_c := Float.min !best_c (t2 -. t1)
    done;
    (!best_b, !best_c)
  in
  let v_boxed = Circuits.Circuit.eval nat_ops ccirc (fun _ -> 0) in
  let v_compact = Circuits.Compact.eval nat_ops cc (fun _ -> 0) in
  let counts_agree = v_compact = v_boxed && v_compact = List.length answers_opt in
  let roundtrip =
    let tmp = Filename.temp_file "sparseq_bench" ".spqc" in
    Circuits.Compact.save ~tag:"nat" cc tmp;
    let cc2, tag = Circuits.Compact.load tmp in
    Sys.remove tmp;
    tag = "nat" && Circuits.Compact.eval nat_ops cc2 (fun _ -> 0) = v_compact
  in
  let c_eval_speedup = t_boxed /. Float.max 1e-9 t_compact in
  let c_ok = counts_agree && roundtrip in
  let compact_cmp =
    Some
      {
        c_eval_speedup;
        c_p50_speedup = 1.0;
        c_roundtrip = roundtrip;
        c_ok;
        c_detail =
          Printf.sprintf "count eval x%.2f vs boxed; counts %s (%d); reload %s"
            c_eval_speedup
            (if counts_agree then "agree" else "DISAGREE")
            v_compact
            (if roundtrip then "identical" else "DIFFERS");
      }
  in
  (* verify: after removing a few edges, the enumerated answers must match
     the brute-force answers on the live instance *)
  let instv = Db.Instance.of_graph (Graphs.Gen.grid 5 5) in
  let tv = Fo_enum.prepare ~dynamic:true instv phi_path2 in
  let gv = Db.Instance.gaifman (Fo_enum.instance tv) in
  let ev = Array.of_list (Db.Instance.tuples (Fo_enum.instance tv) "E") in
  Array.iteri (fun i tup -> if i mod 7 = 0 then Fo_enum.set_tuple tv ~gaifman:gv "E" tup false) ev;
  let got = List.sort compare (List.map Array.to_list (Fo_enum.answers tv)) in
  let _, want = Engine.Reference.answers (Fo_enum.instance tv) phi_path2 in
  let want = List.sort compare want in
  (* telemetry twin on the set_tuple kernel; the paired toggles cancel, so
     the perf instance is unchanged afterwards (updates is even) *)
  let telemetry_pct =
    Some
      (telemetry_overhead_pct (fun () ->
           for i = 0 to max updates 10_000 - 1 do
             let tup = edges.((i / 2) mod Array.length edges) in
             Fo_enum.set_tuple t ~gaifman "E" tup (i mod 2 = 1)
           done))
  in
  {
    name = "path2_enum";
    n;
    wall_s;
    gates = s.Circuits.Circuit.gates;
    depth = s.Circuits.Circuit.depth;
    updates;
    p50_ns = quantile samples 0.5;
    p99_ns = quantile samples 0.99;
    verified = (got = want) && opt_ok && c_ok;
    detail =
      (if got = want then
         Printf.sprintf "enumeration matched reference (%d answers after edge removals)"
           (List.length want)
       else "enumerated answers disagree with reference")
      ^ "; opt: " ^ opt_detail
      ^ "; compact: "
      ^ (match compact_cmp with Some c -> c.c_detail | None -> "skipped");
    opt_cmp =
      Some { gates_pre; shrink; eval_speedup; p50_speedup; opt_ok; opt_detail };
    compact_cmp;
    par_cmp = None;
    cost_cmp = None;
    churn_cmp = None;
    telemetry_pct;
  }

(* --- metrics-layer overhead (the ≤5% budget) --- *)

(* Per-span cost of the tracer itself, measured on a no-op body: enabled
   spans pay the clock reads plus the flight-ring write; disabled spans
   must be a single flag check (the ≤5% budget applies to the whole
   observability layer, spans included). *)
let span_overhead ~smoke =
  let k = if smoke then 50_000 else 200_000 in
  let sink = ref 0 in
  let run () =
    let t0 = Unix.gettimeofday () in
    for i = 1 to k do
      Obs.Trace.span ~scope:"bench" "noop" (fun () -> sink := !sink + i)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int k
  in
  ignore (run ());
  let enabled_ns = run () in
  Obs.set_enabled false;
  let disabled_ns = run () in
  Obs.set_enabled true;
  (enabled_ns, disabled_ns)

let overhead ~smoke ~seed =
  let n = if smoke then 400 else 2000 in
  let k = if smoke then 5000 else 20000 in
  let inst = Db.Instance.of_graph (Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3) in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n (fun i -> i mod 7);
  let ev = Engine.Eval.prepare nat_ops ~tfa_rounds:1 inst (Db.Weights.bundle [ w ]) wdeg_expr in
  (* same discipline as the per-workload twin: identical key sequence
     every leg, values offset per pass so replays never become no-ops,
     alternating leg order, median over pairs *)
  let pass = ref 0 in
  let run () =
    incr pass;
    let rng = Random.State.make [| seed; 3 |] in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      Engine.Eval.update ev "w" [ Random.State.int rng n ] (Random.State.int rng 7 + !pass)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int k
  in
  let reps = 9 in
  let on = Array.make reps 0. and off = Array.make reps 0. in
  ignore (run ());
  Obs.set_enabled false;
  ignore (run ());
  Obs.set_enabled true;
  for i = 0 to reps - 1 do
    if i land 1 = 0 then begin
      on.(i) <- run ();
      Obs.set_enabled false;
      off.(i) <- run ();
      Obs.set_enabled true
    end
    else begin
      Obs.set_enabled false;
      off.(i) <- run ();
      Obs.set_enabled true;
      on.(i) <- run ()
    end
  done;
  Array.sort compare on;
  Array.sort compare off;
  (on.(reps / 2), off.(reps / 2))

(* --- structural churn workload (PR 10) --- *)

(* Mixed weight + structural churn on weighted triangle counting over a
   grid: each round writes a couple of random weights, then toggles one
   cell-diagonal arc (insert it if absent, delete it if present) through
   Eval.insert_tuple/delete_tuple — the localized-recompile + splice
   path. Single arcs keep the comparison honest: one structural op on
   the incremental side against one scratch pipeline on the twin. A full-recompile twin applies the same mutation to a
   copied instance and re-runs the whole compile+prepare pipeline from
   scratch; after every structural op the two must hold the identical
   value, and at the end the live evaluator must agree with the
   brute-force reference on the mutated instance. Enforced: exact
   agreement throughout, zero fallbacks (diagonal toggles never deepen
   the elimination forest past the compiled bound), more gates carried
   than rebuilt across the splices, and an incremental-vs-scratch
   wall-clock speedup floor. *)
let churn_workload ~smoke ~seed ~salt () : result =
  let side = if smoke then 5 else 7 in
  let inst = Db.Instance.of_graph (Graphs.Gen.grid side side) in
  let n = Db.Instance.n inst in
  let w = Db.Weights.create ~name:"w" ~arity:1 ~zero:0 in
  Db.Weights.fill_unary w ~n (fun i -> (i mod 5) + 1);
  let weights = Db.Weights.bundle [ w ] in
  let wall_s, ev =
    time (fun () -> Engine.Eval.prepare nat_ops ~tfa_rounds:1 inst weights wtri_expr)
  in
  let cs = Circuits.Circuit.stats ev.Engine.Eval.circuit in
  let twin_inst = Db.Instance.copy inst in
  let rng = Random.State.make [| seed; salt |] in
  let ops = if smoke then 10 else 24 in
  let t_inc = ref 0. and t_full = ref 0. in
  let samples = Array.make ops 0. in
  let mismatches = ref 0 in
  for i = 0 to ops - 1 do
    for _ = 1 to 2 do
      let x = Random.State.int rng n and value = Random.State.int rng 5 in
      Db.Weights.set w [ x ] value;
      Engine.Eval.update ev "w" [ x ] value
    done;
    let r = Random.State.int rng (side - 1) and c = Random.State.int rng (side - 1) in
    let u = (r * side) + c and v2 = ((r + 1) * side) + c + 1 in
    let present = Db.Instance.mem inst "E" [ u; v2 ] in
    let dt, () =
      time (fun () ->
          if present then Engine.Eval.delete_tuple ev "E" [ u; v2 ]
          else Engine.Eval.insert_tuple ev "E" [ u; v2 ])
    in
    t_inc := !t_inc +. dt;
    samples.(i) <- dt *. 1e9;
    if present then Db.Instance.remove twin_inst "E" [ u; v2 ]
    else Db.Instance.add twin_inst "E" [ u; v2 ];
    let dt_full, twin_value =
      time (fun () ->
          let evf = Engine.Eval.prepare nat_ops ~tfa_rounds:1 twin_inst weights wtri_expr in
          Engine.Eval.value evf)
    in
    t_full := !t_full +. dt_full;
    if Engine.Eval.value ev <> twin_value then incr mismatches
  done;
  Array.sort compare samples;
  let want = Engine.Reference.eval nat_ops inst weights wtri_expr in
  let ref_ok = Engine.Eval.value ev = want in
  let ch = Engine.Eval.churn_stats ev in
  let speedup = !t_full /. Float.max 1e-9 !t_inc in
  let speedup_floor = if smoke then 0.9 else 1.1 in
  let localization_ok =
    ch.Engine.Eval.ch_fallbacks = 0
    && ch.Engine.Eval.ch_gates_rebuilt < ch.Engine.Eval.ch_gates_carried
  in
  let churn_ok =
    !mismatches = 0 && ref_ok && localization_ok && speedup >= speedup_floor
  in
  let churn_detail =
    Printf.sprintf
      "%d structural ops (%d ins %d del): %d localized %d fallbacks, rebuilt %d vs \
       carried %d, twin speedup %.2fx (floor %.2fx)%s%s"
      ops ch.Engine.Eval.ch_inserts ch.Engine.Eval.ch_deletes
      ch.Engine.Eval.ch_localized ch.Engine.Eval.ch_fallbacks
      ch.Engine.Eval.ch_gates_rebuilt ch.Engine.Eval.ch_gates_carried speedup
      speedup_floor
      (if !mismatches > 0 then Printf.sprintf ", %d twin MISMATCHES" !mismatches else "")
      (if ref_ok then "" else ", reference DISAGREES")
  in
  {
    name = "churn_nat";
    n;
    wall_s;
    gates = cs.Circuits.Circuit.gates;
    depth = cs.Circuits.Circuit.depth;
    updates = ops;
    p50_ns = quantile samples 0.5;
    p99_ns = quantile samples 0.99;
    verified = churn_ok;
    detail = churn_detail;
    opt_cmp = None;
    compact_cmp = None;
    par_cmp = None;
    cost_cmp = None;
    churn_cmp =
      Some
        {
          churn_ops = ops;
          churn_localized = ch.Engine.Eval.ch_localized;
          churn_fallbacks = ch.Engine.Eval.ch_fallbacks;
          churn_rebuilt = ch.Engine.Eval.ch_gates_rebuilt;
          churn_carried = ch.Engine.Eval.ch_gates_carried;
          churn_speedup = speedup;
          churn_ok;
          churn_detail;
        };
    telemetry_pct = None;
  }

(* ----------------------------------------------------------- driver --- *)

let () =
  let seed = ref 20260705 in
  let out = ref "BENCH_pr10.json" in
  let smoke = ref false in
  let trace = ref "" in
  let domains = ref 4 in
  let metrics_out = ref "" in
  let metrics_interval = ref 1000 in
  let only = ref [] in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "INT  PRNG seed (default 20260705)");
      ("--out", Arg.Set_string out, "FILE  JSON baseline output (default BENCH_pr10.json)");
      ("--smoke", Arg.Set smoke, "  small instances and fewer updates (CI mode)");
      ( "--domains",
        Arg.Set_int domains,
        "N  domains for the parallel-evaluation twin (default 4)" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  record a span trace of the run as Chrome trace-event JSON" );
      ( "--metrics-out",
        Arg.Set_string metrics_out,
        "FILE  rewrite the OpenMetrics exposition here as the run progresses" );
      ( "--metrics-interval-ms",
        Arg.Set_int metrics_interval,
        "MS  minimum interval between exposition rewrites (default 1000)" );
    ]
    (fun w -> only := w :: !only)
    "bench [--seed INT] [--out FILE] [--smoke] [--domains N] [--trace FILE] [--metrics-out \
     FILE] [workload ...]";
  let smoke = !smoke and seed = !seed in
  let domains = max 1 !domains in
  if Sys.getenv_opt "SPARSEQ_FLIGHT" = None then
    Obs.Trace.set_flight_dest Obs.Trace.Stderr;
  if !trace <> "" then Obs.Trace.start_recording ();
  if !metrics_out <> "" then
    Obs.Openmetrics.install
      (Obs.Openmetrics.Writer.create ~path:!metrics_out ~interval_ms:!metrics_interval);
  let n_wdeg = if smoke then 400 else 2000 in
  let k = if smoke then 200 else 1000 in
  let deg3 seed n = Graphs.Gen.random_bounded_degree ~seed ~n ~max_deg:3 in
  let workloads =
    [
      ( "wdeg_general",
        fun () ->
          eval_workload ~name:"wdeg_general" ~ops:nat_ops ~mode:Circuits.Dyn.General
            ~mk:(fun i -> i mod 7)
            ~graph:(deg3 (seed + 10))
            ~expr:(fun _ -> wdeg_expr)
            ~n_perf:n_wdeg ~n_verify:40 ~updates:k ~seed ~salt:1 ~domains () );
      ( "wdeg_ring",
        fun () ->
          eval_workload ~name:"wdeg_ring" ~ops:int_ops ~mode:Circuits.Dyn.Ring
            ~mk:(fun i -> (i mod 13) - 6)
            ~graph:(deg3 (seed + 11))
            ~expr:(fun _ -> wdeg_expr)
            ~n_perf:n_wdeg ~n_verify:40 ~updates:k ~seed ~salt:2 ~domains () );
      ( "wdeg_finite",
        fun () ->
          eval_workload ~name:"wdeg_finite" ~ops:bool_ops ~mode:Circuits.Dyn.Finite
            ~mk:(fun i -> i mod 3 = 0)
            ~graph:(deg3 (seed + 12))
            ~expr:(fun _ -> wdeg_expr)
            ~n_perf:n_wdeg ~n_verify:40 ~updates:k ~seed ~salt:3 ~domains () );
      ( "triangle_nat",
        fun () ->
          let side = if smoke then 10 else 22 in
          eval_workload ~name:"triangle_nat" ~ops:nat_ops ~opt_enforce:20.
            ~par_enforce:2.5
            ~mk:(fun i -> (i mod 5) + 1)
            ~graph:(fun _ -> Graphs.Gen.triangulated_grid side side)
            ~expr:(fun _ -> wtri_expr)
            ~n_perf:(side * side) ~n_verify:25 ~updates:k ~seed ~salt:4 ~domains () );
      ( "pagerank_rat",
        fun () ->
          let rat_ops = Intf.ops_of_ring (module Rat.Ring) in
          let n_pr = if smoke then 300 else 1000 in
          let d = Rat.of_ints 85 100 in
          (* linv is folded to 1 here: the update regime, not the ranks,
             is what is measured and verified *)
          eval_workload ~name:"pagerank_rat" ~ops:rat_ops ~mode:Circuits.Dyn.Ring
            ~par_enforce:2.5
            ~mk:(fun i -> Rat.of_ints 1 (1 + (i mod 50)))
            ~graph:(fun n -> Graphs.Gen.random_sparse ~seed:(seed + 13) ~n ~avg_deg:4)
            ~expr:(fun n ->
              Logic.Expr.Add
                [
                  Logic.Expr.Const (Rat.mul (Rat.sub Rat.one d) (Rat.of_ints 1 n));
                  Logic.Expr.Mul
                    [
                      Logic.Expr.Const d;
                      Logic.Expr.Sum
                        ( [ "y" ],
                          Logic.Expr.Mul
                            [
                              Logic.Expr.Guard (Logic.Formula.Rel ("E", [ v "y"; v "x" ]));
                              Logic.Expr.Weight ("w", [ v "y" ]);
                            ] );
                    ];
                ])
            ~n_perf:n_pr ~n_verify:30 ~updates:k ~seed ~salt:5 ~domains () );
      ("path2_enum", fun () -> path2_workload ~smoke ~seed ());
      ( "batch_general",
        fun () ->
          batch_workload ~name:"batch_general" ~ops:nat_ops ~mode:Circuits.Dyn.General
            ~mk:(fun i -> i mod 7)
            ~graph:(deg3 (seed + 14))
            ~n_perf:n_wdeg ~n_verify:40
            ~batch:(if smoke then 256 else 1024)
            ~hot:96
            ~rounds:(if smoke then 8 else 32)
            ~seed ~salt:6
            ~require_speedup:(Some (if smoke then 1.2 else 2.0))
            () );
      ( "batch_ring",
        fun () ->
          batch_workload ~name:"batch_ring" ~ops:int_ops ~mode:Circuits.Dyn.Ring
            ~mk:(fun i -> (i mod 13) - 6)
            ~graph:(deg3 (seed + 15))
            ~n_perf:n_wdeg ~n_verify:40
            ~batch:(if smoke then 256 else 1024)
            ~hot:96
            ~rounds:(if smoke then 8 else 32)
            ~seed ~salt:7 ~require_speedup:None () );
      ( "batch_finite",
        fun () ->
          batch_workload ~name:"batch_finite" ~ops:bool_ops ~mode:Circuits.Dyn.Finite
            ~mk:(fun i -> i mod 3 = 0)
            ~graph:(deg3 (seed + 16))
            ~n_perf:n_wdeg ~n_verify:40
            ~batch:(if smoke then 256 else 1024)
            ~hot:96
            ~rounds:(if smoke then 8 else 32)
            ~seed ~salt:8 ~require_speedup:None () );
      ("churn_nat", fun () -> churn_workload ~smoke ~seed ~salt:9 ());
    ]
  in
  let selected =
    if !only = [] then workloads
    else begin
      List.iter
        (fun w ->
          if not (List.mem_assoc w workloads) then begin
            Printf.eprintf "unknown workload %s (have: %s)\n" w
              (String.concat ", " (List.map fst workloads));
            exit 2
          end)
        !only;
      List.filter (fun (name, _) -> List.mem name !only) workloads
    end
  in
  Printf.printf "sparseq bench — seed %d%s\n" seed (if smoke then " (smoke)" else "");
  Printf.printf "%-14s %8s %10s %8s %6s %12s %12s %9s\n" "workload" "n" "wall_s" "gates"
    "depth" "upd_p50_ns" "upd_p99_ns" "verified";
  let results =
    List.map
      (fun (_, run) ->
        let r = run () in
        (* park the domain pool between workloads: idle worker domains
           are free CPU-wise but every minor GC still synchronizes all
           live domains, which taxes the next workload's allocation-heavy
           update loops (measured ~2x on wdeg_ring p50 on one core) *)
        Circuits.Par.shutdown ();
        (* rewrite the exposition between workloads, outside any timed window *)
        Obs.Openmetrics.pulse ();
        Printf.printf "%-14s %8d %10.3f %8d %6d %12.0f %12.0f %9b" r.name r.n r.wall_s
          r.gates r.depth r.p50_ns r.p99_ns r.verified;
        (match r.telemetry_pct with
        | Some pct -> Printf.printf "  tel %.1f%%\n" pct
        | None -> print_newline ());
        r)
      selected
  in
  let enabled_ns, disabled_ns = overhead ~smoke ~seed in
  Printf.printf "metrics overhead: %.0f ns/update enabled, %.0f disabled (ratio %.3f)\n"
    enabled_ns disabled_ns
    (enabled_ns /. Float.max 1e-9 disabled_ns);
  let span_enabled_ns, span_disabled_ns = span_overhead ~smoke in
  Printf.printf "span overhead: %.1f ns/span enabled, %.1f disabled\n" span_enabled_ns
    span_disabled_ns;
  let json =
    Obs.Json.O
      [
        ("schema", Obs.Json.S "sparseq-bench/v1");
        ("seed", Obs.Json.I seed);
        ("smoke", Obs.Json.B smoke);
        ("workloads", Obs.Json.A (List.map result_json results));
        ( "overhead",
          Obs.Json.O
            [
              ("enabled_ns_per_update", Obs.Json.F enabled_ns);
              ("disabled_ns_per_update", Obs.Json.F disabled_ns);
              ("ratio", Obs.Json.F (enabled_ns /. Float.max 1e-9 disabled_ns));
              ("span_enabled_ns", Obs.Json.F span_enabled_ns);
              ("span_disabled_ns", Obs.Json.F span_disabled_ns);
            ] );
        ("metrics", Obs.snapshot_json ());
      ]
  in
  let oc = open_out !out in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "baseline written to %s\n" !out;
  (match !Obs.Openmetrics.installed with
  | Some w ->
      Obs.Openmetrics.Writer.write_now w;
      Obs.Openmetrics.uninstall ();
      Printf.printf "metrics written to %s (%d writes)\n" (Obs.Openmetrics.Writer.path w)
        (Obs.Openmetrics.Writer.writes w)
  | None -> ());
  if !trace <> "" then begin
    let records = Obs.Trace.stop_recording () in
    let oc = open_out !trace in
    output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome records));
    output_char oc '\n';
    close_out oc;
    Printf.printf "trace written to %s (%d records)\n" !trace (List.length records)
  end;
  let failed = List.filter (fun r -> not r.verified) results in
  if failed <> [] then begin
    List.iter (fun r -> Printf.eprintf "FAIL %s: %s\n" r.name r.detail) failed;
    exit 1
  end
